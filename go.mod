module scmove

go 1.23
