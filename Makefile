GO ?= go

.PHONY: check build test vet race bench benchsmoke benchdiff benchgate detsmoke expsmoke fuzzsmoke statesmoke rpcsmoke shardsmoke experiments

check: vet race detsmoke benchsmoke benchgate expsmoke fuzzsmoke statesmoke rpcsmoke shardsmoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench writes a full performance snapshot as BENCH_<n>.json (next free
# index). Compare two snapshots with `make benchdiff OLD=... NEW=...`.
bench:
	$(GO) run ./cmd/benchsnap

# benchsmoke is the CI-scale sanity pass: a quick snapshot into /tmp plus a
# self-compare, proving the harness and the diff gate both run. Quick-mode
# numbers are too noisy to gate on, so it only checks the machinery.
benchsmoke:
	$(GO) run ./cmd/benchsnap -quick -out /tmp/scmove_bench_smoke.json
	$(GO) run ./cmd/benchdiff /tmp/scmove_bench_smoke.json /tmp/scmove_bench_smoke.json

OLD ?= BENCH_5.json
NEW ?= BENCH_6.json
# Wall-clock gate threshold. This host cannot support a tight time gate:
# same-binary captures drift +/-25% run to run, and binary code layout
# alone moves tight-loop cells up to ~2x (measured: a one-file main-package
# edit shifted evm_tight_loop +95% with zero semantic change — see
# DESIGN.md section 14). allocs/op is deterministic, so it stays strictly
# gated at benchdiff's 5% default; time is a gross-regression backstop.
TIME_GATE ?= 1.5
benchdiff:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

# benchgate diffs the committed baseline against the committed current
# snapshot when both exist (skipped otherwise, so fresh checkouts and
# baseline-only branches still pass check).
benchgate:
	@if [ -f $(OLD) ] && [ -f $(NEW) ]; then \
		$(GO) run ./cmd/benchdiff -threshold $(TIME_GATE) $(OLD) $(NEW); \
	else \
		echo "benchgate: skipped ($(OLD) and $(NEW) not both present)"; \
	fi

# detsmoke runs the seeded cross-GOMAXPROCS (1, 2, NumCPU) determinism
# checks for the parallel crypto pool, the parallel state commit, the
# workload signing pipeline, and both parallel block executors — the
# optimistic engine (randomized differential traffic, per-target cutoff,
# conflict-heavy chaos cell) and the conflict-aware scheduler (three-way
# scheduled/optimistic/serial differential, no-storm counter pin, Kitties
# breeding DAG, grouped batch selection), plus the parallel per-tick
# universe driver (16-chain policy-on scaling cell, serial vs laned
# drivers): bit-identical results at every worker count.
detsmoke:
	$(GO) test -run 'TestVerifyBatchMatchesSerial|TestRecoverSendersMatchesSerialAcrossGOMAXPROCS|TestCommitParallelMatchesSerial|TestHashParallelMatchesRootHashAndProofs|TestApplyBlockParallelDeterminism|TestApplyBlockParallelDifferential|TestParallelAbortFallback|TestParallelPerTargetCutoff|TestApplyBlockScheduledDifferential|TestScheduledConflictingNoStorm|TestScheduledKittiesDAG|TestNextBatchGroupedPreservesFIFO|TestViewPropertyDifferentialRandomOps|TestKittiesReplayCrossGOMAXPROCSDeterminism|TestApplyBlockParallelMatchesSerial|TestChaosCellCrossGOMAXPROCS|TestBackendConformanceDifferential|TestShardedScalingCrossGOMAXPROCSDeterminism|TestRunUntilParallelMatchesSerial' \
		./internal/keys/ ./internal/types/ ./internal/state/ ./internal/chain/ ./internal/txpool/ ./internal/workload/ ./internal/bench/ ./internal/simclock/

# expsmoke is the experiment-output sanity gate: a CI-scale ablations run
# plus a chaos run with metrics and span tracing on, captured to /tmp and
# grepped for error / out-of-gas lines. It catches both broken experiments
# (a stale `granularity n=1000 … out of gas` line once sat in
# results_full.txt unnoticed) and observability wiring that breaks a run.
expsmoke:
	$(GO) run ./cmd/movebench -experiment ablations -scale 0.08 > /tmp/scmove_expsmoke.txt 2>&1 \
		|| { cat /tmp/scmove_expsmoke.txt; exit 1; }
	$(GO) run ./cmd/movebench -experiment chaos -moves 2 -metrics -trace /tmp/scmove_expsmoke_trace.jsonl >> /tmp/scmove_expsmoke.txt 2>&1 \
		|| { cat /tmp/scmove_expsmoke.txt; exit 1; }
	@if grep -Ein 'error|out of gas' /tmp/scmove_expsmoke.txt; then \
		echo "expsmoke: error lines in experiment output (/tmp/scmove_expsmoke.txt)"; exit 1; \
	else \
		echo "expsmoke: clean ($$(wc -l < /tmp/scmove_expsmoke_trace.jsonl) trace spans)"; \
	fi

# fuzzsmoke runs every native fuzz target for ~5s against the committed
# seed corpora under testdata/fuzz/ (go test allows one -fuzz pattern per
# invocation, hence the loop). Any crasher fails the target and leaves the
# reproducer in the package's testdata/fuzz/ directory.
FUZZTIME ?= 5s
fuzzsmoke:
	@set -e; \
	for spec in \
		'./internal/codec FuzzReaderRoundTrip' \
		'./internal/codec FuzzReaderHostile' \
		'./internal/types FuzzDecodeTransaction' \
		'./internal/types FuzzDecodeHeader' \
		'./internal/types FuzzDecodeMove2Payload' \
		'./internal/core FuzzVerifyMove2AccountProof' \
		'./internal/core FuzzVerifyMove2Storage' \
		'./internal/state/backend FuzzSegmentDecode' \
		'./internal/simnet FuzzFrameDecode' \
	; do \
		set -- $$spec; \
		echo "fuzzsmoke: $$2 ($$1, $(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$2$$" -fuzztime $(FUZZTIME) $$1 || exit 1; \
	done

# rpcsmoke is the real-traffic front-door gate: a two-chain universe with
# per-chain RPC servers on loopback, consensus over real TCP sockets, and a
# wall-clock driver; cmd/loadgen fires 10k pre-signed transactions through
# HTTP, requires zero rejected-valid submissions and non-empty wall-clock
# latency histograms, and replays the identical workload on the
# discrete-event path asserting bit-identical final state roots.
rpcsmoke:
	$(GO) run ./cmd/loadgen -txs 10000 -users 16 -interval 300ms -timeout 120s

# statesmoke is the bounded-RSS state-backend gate: a million-account
# genesis on the log-structured file backend with capped resident storage
# trees, an RSS ceiling, a close-and-reopen root check, root identity
# against the in-memory backend on the same update script, and a Kitties
# replay whose deterministic counters must match across backends.
# SCMOVE_STATESMOKE_ACCOUNTS scales the genesis for quicker local runs.
statesmoke:
	SCMOVE_STATESMOKE=1 $(GO) test -run TestStateSmoke -count=1 -timeout 900s ./internal/bench/

# shardsmoke is the sharded-universe scale gate: a 64-chain laned universe
# with a 100k keyed-user population (SCMOVE_SHARDSMOKE_USERS=1000000 for
# the full target), lazy relay mesh, parallel-tick driver, and the
# auto-migration policy engine live. The run must complete with contracts
# actually migrating off the congested home shard.
shardsmoke:
	SCMOVE_SHARDSMOKE=1 $(GO) test -run TestShardSmoke -count=1 -timeout 900s ./internal/workload/

# experiments reruns the paper's figure experiments end to end (the old
# `make bench` behaviour, before bench came to mean performance snapshots).
experiments:
	$(GO) run ./cmd/movebench -experiment all -scale 0.08
