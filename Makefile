GO ?= go

.PHONY: check build test vet race bench

check: vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) run ./cmd/movebench -experiment all -scale 0.08
