// Package scmove is a Go implementation of the Move protocol from
// "Smart Contracts on the Move" (Fynn, Bessani, Pedone — DSN 2020): a
// primitive that lets smart contracts and accounts migrate consistently
// between blockchains, enabling both interoperability and sharding.
//
// The package is the public facade over the full stack implemented in the
// internal packages:
//
//   - an EVM-compatible execution layer with the OP_MOVE opcode and a
//     yellow-paper gas schedule (internal/evm),
//   - journaled world state with per-account location (Lc) and move-nonce
//     fields committed into authenticated state trees — a Merkle Patricia
//     trie for the Ethereum-like chain, a canonical Merkle search tree for
//     the Burrow-like chain (internal/state, internal/mpt, internal/iavl),
//   - the Move protocol itself: Move1 locking, Merkle proof construction,
//     Move2 verification with completeness and replay protection
//     (internal/core),
//   - two chain substrates with real consensus dynamics — a Tendermint-like
//     BFT validator cluster and a simulated-PoW chain — over a discrete-
//     event WAN simulator (internal/tendermint, internal/pow,
//     internal/simnet, internal/simclock),
//   - a movable-contract standard library: the Listing-1 pattern, the
//     SCoin/SAccount scalable token, ScalableKitties, the Fig.-3 currency
//     relay (internal/contracts),
//   - the paper's workloads and every figure's regenerator
//     (internal/workload, internal/bench).
//
// # Quick start
//
//	u, err := scmove.NewUniverse(scmove.TwoChainConfig(1))
//	// deploy a movable contract on the Burrow-like chain (id 2) ...
//	// ... and move it to the Ethereum-like chain (id 1):
//	res, err := u.MoveAndWait(u.Client(0), 2, 1, contractAddr, timeout)
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory and experiment index.
package scmove

import (
	"scmove/internal/bench"
	"scmove/internal/contracts"
	"scmove/internal/core"
	"scmove/internal/hashing"
	"scmove/internal/relay"
	"scmove/internal/universe"
)

// Core protocol and simulation types.
type (
	// Universe is a running multi-blockchain simulation.
	Universe = universe.Universe
	// UniverseConfig describes the chains, clients and wiring.
	UniverseConfig = universe.Config
	// ChainSpec describes one chain (consensus kind, gas schedule, p, ...).
	ChainSpec = universe.ChainSpec
	// Client signs and submits transactions with per-chain nonce tracking.
	Client = relay.Client
	// Mover orchestrates Move1 → proof → wait → Move2 across two chains.
	Mover = relay.Mover
	// MoveResult carries the per-phase latency and gas of one move.
	MoveResult = relay.MoveResult
	// ChainID identifies a blockchain.
	ChainID = hashing.ChainID
	// Address identifies an account or contract on any chain.
	Address = hashing.Address
	// ChainParams are the interoperability parameters of §IV-A.
	ChainParams = core.ChainParams
)

// NewUniverse builds a multi-chain simulation; call Start on the result (or
// use the Run helpers, which drive the discrete-event clock).
func NewUniverse(cfg UniverseConfig) (*Universe, error) {
	u, err := universe.New(cfg)
	if err != nil {
		return nil, err
	}
	u.Start()
	return u, nil
}

// TwoChainConfig returns the paper's IBC deployment: chain 1 is the
// Ethereum-like PoW chain (15 s blocks, p = 6, MPT state), chain 2 the
// Burrow-like BFT chain (10 validators, 5 s blocks, p = 2, IAVL state),
// with the movable contract standard library registered and the given
// number of pre-funded clients.
func TwoChainConfig(clients int) UniverseConfig {
	return universe.DefaultConfig(clients)
}

// ShardedConfig returns an n-shard Burrow-like deployment (the sharding
// experiments of §VII).
func ShardedConfig(shards, clients int) UniverseConfig {
	return universe.ShardedConfig(shards, clients)
}

// MoveToInput builds the standard moveTo(·) calldata for moving a contract
// of the standard library to the target chain.
func MoveToInput(target ChainID) []byte { return core.MoveToInput(target) }

// Contract standard library handles.
const (
	// StoreContract is a movable contract with N 32-byte state variables.
	StoreContract = contracts.StoreName
	// SCoinContract is the scalable token factory of Listing 2.
	SCoinContract = contracts.SCoinName
	// SAccountContract is one user's movable token account.
	SAccountContract = contracts.SAccountName
	// KittiesContract is the ScalableKitties game registry.
	KittiesContract = contracts.KittyRegistryName
	// TokenRelayContract implements the Fig.-3 currency pegging relay.
	TokenRelayContract = contracts.TokenRelayName
)

// Experiment regenerators (see EXPERIMENTS.md).
var (
	// RunFig5 regenerates the sharded ScalableKitties throughput figure.
	RunFig5 = bench.RunFig5
	// RunFig6 regenerates the SCoin cross-shard throughput figure.
	RunFig6 = bench.RunFig6
	// RunFig7 regenerates the latency CDFs (retries selects the panel).
	RunFig7 = bench.RunFig7
	// RunFig8And9 regenerates the IBC latency and gas figures.
	RunFig8And9 = bench.RunFig8And9
)
