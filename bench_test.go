// Benchmarks regenerating the paper's evaluation, one per table/figure
// (run with `go test -bench=. -benchmem`). Each reports the headline
// domain metric via b.ReportMetric; EXPERIMENTS.md records paper-vs-
// measured for the full-scale runs of cmd/movebench.
package scmove

import (
	"testing"
	"time"

	"scmove/internal/bench"
	"scmove/internal/contracts"
	"scmove/internal/u256"
	"scmove/internal/workload"
)

// BenchmarkFig5Kitties replays the synthetic CryptoKitties trace on 1, 2
// and 4 shards (Fig. 5 left; use cmd/movebench for the full 8-shard run).
func BenchmarkFig5Kitties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig5Shards(bench.ScaleCI, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Throughput, "tx/s@4shards")
		b.ReportMetric(last.PeakTPS, "peak-tx/s@4shards")
	}
}

// BenchmarkFig6SCoin measures the cross-shard throughput matrix (Fig. 6).
func BenchmarkFig6SCoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig6Grid(bench.ScaleCI, []int{1, 4}, []float64{0, 0.10})
		if err != nil {
			b.Fatal(err)
		}
		if tps, ok := res.Throughput(4, 10); ok {
			b.ReportMetric(tps, "tx/s@4shards10%")
		}
	}
}

// BenchmarkFig7LatencyCDF measures the conflict-free latency distribution
// (Fig. 7 right).
func BenchmarkFig7LatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7(bench.ScaleCI, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SingleMean.Seconds(), "single-shard-s")
		b.ReportMetric(res.CrossMean.Seconds(), "cross-shard-s")
	}
}

// BenchmarkFig7Retries measures the conflict/retry mode (Fig. 7 left).
func BenchmarkFig7Retries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7(bench.ScaleCI, true)
		if err != nil {
			b.Fatal(err)
		}
		total, once := 0, res.RetryCounts[1]
		for _, n := range res.RetryCounts {
			total += n
		}
		if total > 0 {
			b.ReportMetric(float64(once)/float64(total), "retried-once-frac")
		}
	}
}

// BenchmarkFig8IBCLatency measures the per-phase move latency for the five
// applications in both directions (Fig. 8).
func BenchmarkFig8IBCLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig8And9()
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Row(bench.AppStore1, 1); ok {
			b.ReportMetric(row.TotalLatency().Seconds(), "eth->burrow-total-s")
		}
		if row, ok := res.Row(bench.AppStore1, 2); ok {
			b.ReportMetric(row.TotalLatency().Seconds(), "burrow->eth-total-s")
		}
	}
}

// BenchmarkFig9Gas measures the gas and monetary cost breakdown (Fig. 9).
func BenchmarkFig9Gas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig8And9()
		if err != nil {
			b.Fatal(err)
		}
		if row, ok := res.Row(bench.AppSCoin, 2); ok {
			b.ReportMetric(float64(row.TotalGas())/1e6, "scoin-Mgas")
			b.ReportMetric(row.USD(), "scoin-usd")
		}
		if row, ok := res.Row(bench.AppStore100, 2); ok {
			b.ReportMetric(float64(row.TotalGas())/1e6, "store100-Mgas")
		}
	}
}

// BenchmarkAblationGranularity measures the per-user vs monolithic design
// (DESIGN.md ablation).
func BenchmarkAblationGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAblationGranularity([]uint64{100})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].MonolithicGas)/float64(rows[0].PerUserGas), "mono/per-user")
	}
}

// BenchmarkAblation2PC measures the Move protocol against the 2PC-style
// baseline (DESIGN.md ablation).
func BenchmarkAblation2PC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblation2PC()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MoveLatency.Seconds(), "move-s")
		b.ReportMetric(res.TwoPCLatency.Seconds(), "2pc-s")
	}
}

// BenchmarkSingleMove is the micro benchmark of one full cross-chain move
// (Burrow-like to Ethereum-like) including consensus and relays.
func BenchmarkSingleMove(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u, err := NewUniverse(TwoChainConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		cl := u.Client(0)
		store, err := u.MustDeploy(cl, u.Chain(2), contracts.StoreName,
			contracts.StoreConstructorArgs(cl.Address(), 10), u256.Zero(), 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		res, err := u.MoveAndWait(cl, 2, 1, store, 30*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Total().Seconds(), "sim-latency-s")
	}
}

// BenchmarkKittiesReplayThroughput is the single-config replay micro
// benchmark used to track simulator performance regressions.
func BenchmarkKittiesReplayThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.RunKitties(workload.KittiesConfig{
			Shards: 2, Users: 32, PromoCats: 200, Breeds: 400,
			LocalityBias: 0.93, OutstandingLimit: 250, Seed: 5,
			MaxDuration: 4 * time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Throughput, "sim-tx/s")
	}
}
