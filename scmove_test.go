package scmove

import (
	"testing"
	"time"

	"scmove/internal/contracts"
	"scmove/internal/core"
	"scmove/internal/u256"
)

// TestFacadeQuickstart exercises the README's quick-start path through the
// public facade only.
func TestFacadeQuickstart(t *testing.T) {
	u, err := NewUniverse(TwoChainConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	client := u.Client(0)
	store, err := u.MustDeploy(client, u.Chain(2), StoreContract,
		contracts.StoreConstructorArgs(client.Address(), 10), u256.Zero(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	res, err := u.MoveAndWait(client, 2, 1, store, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() <= 0 {
		t.Fatal("move must take simulated time")
	}
	if u.Chain(1).StateDB().GetLocation(store) != 1 {
		t.Fatal("contract must arrive on chain 1")
	}
}

func TestFacadeShardedConfig(t *testing.T) {
	cfg := ShardedConfig(3, 2)
	if len(cfg.Specs) != 3 {
		t.Fatalf("specs = %d", len(cfg.Specs))
	}
	u, err := NewUniverse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u.Run(30 * time.Second)
	for _, id := range u.ChainIDs() {
		if u.Chain(id).Head().Height == 0 {
			t.Fatalf("shard %s produced no blocks", id)
		}
	}
}

func TestFacadeMoveToInput(t *testing.T) {
	input := MoveToInput(ChainID(5))
	if target, ok := core.ParseMoveToInput(input); !ok || target != 5 {
		t.Fatal("MoveToInput must round-trip through the protocol parser")
	}
}
