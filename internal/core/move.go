package core

import (
	"bytes"
	"fmt"

	"scmove/internal/hashing"
	"scmove/internal/state"
	"scmove/internal/trees"
	"scmove/internal/types"
)

// MoveFinishInput is the calldata with which the chain invokes a contract's
// moveFinish(·) routine at the end of a successful Move2 (Alg. 1 line 13).
// Contracts that do not recognize it simply ignore the call.
var MoveFinishInput = []byte("__move_finish__")

// MoveToInput builds the conventional calldata for a contract's moveTo(·)
// routine: the Move1 transaction of the contract standard library
// (Listing 1). The target chain id is appended big-endian.
func MoveToInput(target hashing.ChainID) []byte {
	return append([]byte("__move_to__"), target.Bytes()...)
}

// ParseMoveToInput recognizes MoveToInput calldata, returning the target.
func ParseMoveToInput(input []byte) (hashing.ChainID, bool) {
	const prefix = "__move_to__"
	if len(input) != len(prefix)+8 || string(input[:len(prefix)]) != prefix {
		return 0, false
	}
	var id uint64
	for _, b := range input[len(prefix):] {
		id = id<<8 | uint64(b)
	}
	return hashing.ChainID(id), true
}

// IsMoveFinishInput recognizes the moveFinish calldata.
func IsMoveFinishInput(input []byte) bool {
	return bytes.Equal(input, MoveFinishInput)
}

// MoveState is the slice of world state that Move2 verification and
// recreation touch: the replay-protection high-water mark and the journaled
// account import. Both the canonical *state.DB and the speculative views of
// the parallel block executor implement it.
type MoveState interface {
	GetMoveNonce(addr hashing.Address) uint64
	ImportAccount(addr hashing.Address, acct state.Account, code []byte, entries []state.StorageEntry)
}

// BuildMoveProof assembles the Move2 payload for a locked contract against
// the source chain's *current committed state* — call it right after the
// block containing Move1 commits, while the database root equals that
// block's state root. The contract is locked, so its record and storage
// cannot change afterwards; the proof stays valid against this height's
// root even as other accounts keep changing in later blocks.
func BuildMoveProof(db *state.DB, contract hashing.Address, height uint64) (*types.Move2Payload, error) {
	acct, ok := db.GetAccount(contract)
	if !ok {
		return nil, fmt.Errorf("core: build proof: no account %s", contract)
	}
	if acct.Location == db.ChainID() || acct.Location == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotLocked, contract)
	}
	accountProof, err := db.ProveAccount(contract)
	if err != nil {
		return nil, fmt.Errorf("core: build proof: %w", err)
	}
	entries := db.StorageEntries(contract)
	storage := make([]types.StorageEntry, len(entries))
	for i, e := range entries {
		storage[i] = types.StorageEntry{Key: e.Key, Value: e.Value}
	}
	return &types.Move2Payload{
		Contract:     contract,
		SourceChain:  db.ChainID(),
		SourceHeight: height,
		AccountProof: accountProof,
		Code:         db.GetCode(contract),
		Storage:      storage,
	}, nil
}

// BuildMoveProofAt assembles the Move2 payload for a locked contract
// against a *past* committed state root, served from the state backend's
// retained-root window. It produces exactly the bytes BuildMoveProof
// produced when root was the head: the account record, its Merkle proof,
// and the storage payload are all rebuilt from the reverse-diff overlay at
// that root, and the code blob is content-addressed (immutable, so the
// current store serves any height). Use it when the proof height has
// already been buried by later blocks — e.g. a relay that must re-prove
// against an older, already-confirmed root instead of waiting for a new
// head to confirm.
func BuildMoveProofAt(db *state.DB, contract hashing.Address, height uint64, root hashing.Hash) (*types.Move2Payload, error) {
	acct, ok, err := db.GetAccountAt(contract, root)
	if err != nil {
		return nil, fmt.Errorf("core: build proof at %d: %w", height, err)
	}
	if !ok {
		return nil, fmt.Errorf("core: build proof at %d: no account %s", height, contract)
	}
	if acct.Location == db.ChainID() || acct.Location == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotLocked, contract)
	}
	accountProof, err := db.ProveAccountAt(contract, root)
	if err != nil {
		return nil, fmt.Errorf("core: build proof at %d: %w", height, err)
	}
	entries, err := db.StorageEntriesAt(contract, root)
	if err != nil {
		return nil, fmt.Errorf("core: build proof at %d: %w", height, err)
	}
	storage := make([]types.StorageEntry, len(entries))
	for i, e := range entries {
		storage[i] = types.StorageEntry{Key: e.Key, Value: e.Value}
	}
	var code []byte
	if !acct.CodeHash.IsZero() {
		code, _ = db.CodeByHash(acct.CodeHash)
	}
	return &types.Move2Payload{
		Contract:     contract,
		SourceChain:  db.ChainID(),
		SourceHeight: height,
		AccountProof: accountProof,
		Code:         code,
		Storage:      storage,
	}, nil
}

// VerifyMove2 checks a Move2 payload on the target chain (Alg. 1 lines
// 5-10 plus the replay and completeness rules of §III-E):
//
//  1. VS — the referenced source state root is known to the light client
//     and at least p blocks deep.
//  2. VP — the account proof verifies against that root and binds the
//     contract identifier to its account record.
//  3. Lc — the proven record's location names this chain.
//  4. The carried code hashes to the proven code hash.
//  5. Completeness — rebuilding the storage tree (in the source chain's
//     tree kind) from the carried entries reproduces the proven storage
//     root, so no entry can be omitted, altered, or injected.
//  6. Replay — the proven move nonce exceeds the target's high-water mark
//     for this contract (Fig. 2).
//
// On success it returns the proven account record; the caller applies it
// with ApplyMove2.
func VerifyMove2(local hashing.ChainID, db MoveState, hs *HeaderStore, p *types.Move2Payload) (state.Account, error) {
	params, err := hs.Params(p.SourceChain)
	if err != nil {
		return state.Account{}, err
	}
	root, err := hs.TrustedStateRoot(p.SourceChain, p.SourceHeight)
	if err != nil {
		return state.Account{}, err
	}
	entry, err := trees.VerifyProof(params.TreeKind, root, p.AccountProof)
	if err != nil {
		return state.Account{}, fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	if !bytes.Equal(entry.Key, p.Contract[:]) {
		return state.Account{}, fmt.Errorf("%w: proof is for %x, not %s", ErrBadProof, entry.Key, p.Contract)
	}
	acct, err := state.DecodeAccount(entry.Value)
	if err != nil {
		return state.Account{}, fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	if acct.Location != local {
		return state.Account{}, fmt.Errorf("%w: Lc = %s, this chain is %s", ErrWrongTarget, acct.Location, local)
	}
	if err := checkCode(acct.CodeHash, p.Code); err != nil {
		return state.Account{}, err
	}
	if err := checkStorageComplete(params, acct.StorageRoot, p.Storage); err != nil {
		return state.Account{}, err
	}
	if seen := db.GetMoveNonce(p.Contract); acct.MoveNonce <= seen {
		return state.Account{}, fmt.Errorf("%w: proven nonce %d, already seen %d",
			ErrReplay, acct.MoveNonce, seen)
	}
	return acct, nil
}

func checkCode(codeHash hashing.Hash, code []byte) error {
	if codeHash.IsZero() {
		if len(code) != 0 {
			return fmt.Errorf("%w: code carried for code-less account", ErrIncompleteCode)
		}
		return nil
	}
	if hashing.Sum(code) != codeHash {
		return fmt.Errorf("%w: H(code) != proven hash", ErrIncompleteCode)
	}
	return nil
}

func checkStorageComplete(params ChainParams, storageRoot hashing.Hash, entries []types.StorageEntry) error {
	tree, err := trees.New(params.TreeKind, 32)
	if err != nil {
		return err
	}
	for _, e := range entries {
		var zero [32]byte
		if e.Value == zero {
			return fmt.Errorf("%w: zero-valued storage entry", ErrIncompleteSet)
		}
		if err := tree.Set(e.Key[:], e.Value[:]); err != nil {
			return fmt.Errorf("%w: %v", ErrIncompleteSet, err)
		}
	}
	if tree.RootHash() != storageRoot {
		return fmt.Errorf("%w: rebuilt root %s, proven %s", ErrIncompleteSet, tree.RootHash(), storageRoot)
	}
	return nil
}

// ApplyMove2 recreates the verified contract locally (Alg. 1 lines 11-12):
// the account record is imported with this chain as its location, the code
// installed, and every storage entry rewritten through the journaled state
// so a later failure in moveFinish rolls the recreation back too.
func ApplyMove2(db MoveState, p *types.Move2Payload, acct state.Account) {
	entries := make([]state.StorageEntry, len(p.Storage))
	for i, e := range p.Storage {
		entries[i] = state.StorageEntry{Key: e.Key, Value: e.Value}
	}
	db.ImportAccount(p.Contract, acct, p.Code, entries)
}
