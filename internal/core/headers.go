// Package core implements the Move protocol of the paper: proof
// construction for locked contracts (Move1 side), verification and state
// recreation (Move2 side, Alg. 1), replay protection (Fig. 2), and the
// light-client header store that gives every chain a trusted view of its
// peers' Merkle roots (§III-A, §IV-A).
package core

import (
	"errors"
	"fmt"

	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/trie"
	"scmove/internal/types"
)

// ChainParams are the per-chain parameters interoperating blockchains agree
// on up front (paper §IV-A): identifier, state tree kind, the confirmation
// depth p, and whether the chain publishes its state root with a one-block
// lag (Tendermint's app-hash rule, §VI).
type ChainParams struct {
	ID       hashing.ChainID
	TreeKind trie.Kind
	// ConfirmationDepth is p: the minimum number of blocks a header must be
	// behind the chain's head before peers accept it (6 for the PoW chain,
	// 2 for the BFT chain in the paper's deployment).
	ConfirmationDepth uint64
	// LaggingStateRoot marks chains whose header at height h+1 carries the
	// state root of height h.
	LaggingStateRoot bool
}

// Errors returned by the header store and move verification.
var (
	ErrUnknownChain   = errors.New("core: chain not configured for interoperability")
	ErrNoHeader       = errors.New("core: header not known to the light client")
	ErrNotConfirmed   = errors.New("core: header not yet p blocks deep")
	ErrBadProof       = errors.New("core: move proof verification failed")
	ErrNotLocked      = errors.New("core: contract is not locked on the source chain")
	ErrWrongTarget    = errors.New("core: contract is being moved to a different chain")
	ErrReplay         = errors.New("core: stale move nonce (replayed Move2)")
	ErrIncompleteCode = errors.New("core: code does not match the proven code hash")
	ErrIncompleteSet  = errors.New("core: storage payload does not rebuild the proven storage root")
)

// HeaderStore is one chain's light-client view of its peers: block headers
// received from header relays, plus each peer's current head height. Nodes
// verify Merkle roots of other blockchains against this store (the VS
// predicate of Alg. 1).
type HeaderStore struct {
	params  map[hashing.ChainID]ChainParams
	headers map[hashing.ChainID]map[uint64]*types.Header
	heads   map[hashing.ChainID]uint64

	counters *metrics.Counters
}

// Observe mirrors rejected-header events ("byzantine.header.conflict") into
// the shared counter set.
func (s *HeaderStore) Observe(c *metrics.Counters) { s.counters = c }

func (s *HeaderStore) inc(name string) {
	if s.counters != nil {
		s.counters.Inc(name)
	}
}

// NewHeaderStore returns a store configured with the given peer parameters.
func NewHeaderStore(params ...ChainParams) *HeaderStore {
	s := &HeaderStore{
		params:  make(map[hashing.ChainID]ChainParams, len(params)),
		headers: make(map[hashing.ChainID]map[uint64]*types.Header, len(params)),
		heads:   make(map[hashing.ChainID]uint64, len(params)),
	}
	for _, p := range params {
		s.params[p.ID] = p
		s.headers[p.ID] = make(map[uint64]*types.Header)
	}
	return s
}

// Params returns the configured parameters of a peer chain.
func (s *HeaderStore) Params(chain hashing.ChainID) (ChainParams, error) {
	p, ok := s.params[chain]
	if !ok {
		return ChainParams{}, fmt.Errorf("%w: %s", ErrUnknownChain, chain)
	}
	return p, nil
}

// Update ingests relayed canonical headers of a peer chain together with
// the peer's current head height. Re-relayed heights overwrite previous
// entries, which is how shallow PoW reorgs are absorbed — depth checks at
// query time make only ≥p-deep headers trustworthy.
//
// Confirmed heights are immutable: once a height is ≥p deep (the depth at
// which TrustedStateRoot starts vouching for it), a conflicting header for
// it — a forged root from a Byzantine relayer, since honest reorgs never
// reach that deep — is recorded and ignored rather than overwriting the
// root peers may already have verified proofs against.
func (s *HeaderStore) Update(chain hashing.ChainID, headers []*types.Header, head uint64) error {
	p, ok := s.params[chain]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownChain, chain)
	}
	byHeight := s.headers[chain]
	for _, h := range headers {
		if h.ChainID != chain {
			return fmt.Errorf("%w: header from %s relayed as %s", ErrUnknownChain, h.ChainID, chain)
		}
		if prev, seen := byHeight[h.Height]; seen && *prev != *h {
			if confirmed := s.heads[chain] >= h.Height+p.ConfirmationDepth; confirmed {
				s.inc("byzantine.header.conflict")
				continue
			}
		}
		byHeight[h.Height] = h
	}
	if head > s.heads[chain] {
		s.heads[chain] = head
	}
	return nil
}

// Head returns the last known head height of a peer chain.
func (s *HeaderStore) Head(chain hashing.ChainID) uint64 { return s.heads[chain] }

// TrustedStateRoot implements VS: it returns the peer chain's state root
// for the given block height, provided the header carrying it is known and
// at least p blocks deep. For lagging chains the root of height h is read
// from header h+1 — the cause of the two-block Burrow wait (§VI).
func (s *HeaderStore) TrustedStateRoot(chain hashing.ChainID, height uint64) (hashing.Hash, error) {
	p, err := s.Params(chain)
	if err != nil {
		return hashing.Hash{}, err
	}
	rootHeight := height
	if p.LaggingStateRoot {
		rootHeight = height + 1
	}
	h, ok := s.headers[chain][rootHeight]
	if !ok {
		return hashing.Hash{}, fmt.Errorf("%w: %s height %d", ErrNoHeader, chain, rootHeight)
	}
	if head := s.heads[chain]; head < rootHeight+p.ConfirmationDepth {
		return hashing.Hash{}, fmt.Errorf("%w: %s height %d is %d deep, need %d",
			ErrNotConfirmed, chain, rootHeight, head-rootHeight, p.ConfirmationDepth)
	}
	return h.StateRoot, nil
}

// ConfirmedAt reports whether a proof against the given height would pass
// the depth check right now — the relayer uses this to time Move2
// submission.
func (s *HeaderStore) ConfirmedAt(chain hashing.ChainID, height uint64) bool {
	_, err := s.TrustedStateRoot(chain, height)
	return err == nil
}
