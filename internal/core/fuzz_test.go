package core

import (
	"testing"

	"scmove/internal/state"
	"scmove/internal/trie"
	"scmove/internal/types"
)

// FuzzVerifyMove2AccountProof mutates the account proof bytes of an
// otherwise valid Move2 payload: verification must never panic and must
// only ever accept the exact original proof.
func FuzzVerifyMove2AccountProof(f *testing.F) {
	src, err := state.NewDB(chainA, trie.KindMPT)
	if err != nil {
		f.Fatal(err)
	}
	contract := addr(0xF0)
	src.CreateContract(contract, []byte("fuzz code"))
	src.SetStorage(contract, word(1), word(2))
	src.SetLocation(contract, chainB)
	src.SetMoveNonce(contract, 1)
	src.Commit()
	payload, err := BuildMoveProof(src, contract, 1)
	if err != nil {
		f.Fatal(err)
	}
	hs := NewHeaderStore(paramsA(), paramsB())
	rootHeader := &types.Header{ChainID: chainA, Height: 1, StateRoot: src.Root()}
	if err := hs.Update(chainA, []*types.Header{rootHeader}, 1+paramsA().ConfirmationDepth); err != nil {
		f.Fatal(err)
	}
	original := append([]byte{}, payload.AccountProof...)

	f.Add(original)
	f.Add(original[:len(original)/2])
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})

	f.Fuzz(func(t *testing.T, proof []byte) {
		dst, err := state.NewDB(chainB, trie.KindIAVL)
		if err != nil {
			t.Fatal(err)
		}
		p := *payload
		p.AccountProof = proof
		acct, err := VerifyMove2(chainB, dst, hs, &p)
		if err != nil {
			return
		}
		// Only the genuine proof verifies, and then the account is exact.
		if string(proof) != string(original) {
			t.Fatalf("mutated proof accepted (%d bytes)", len(proof))
		}
		if acct.MoveNonce != 1 || acct.Location != chainB {
			t.Fatalf("verified account mismatch: %+v", acct)
		}
	})
}

// FuzzVerifyMove2Storage mutates one storage entry: completeness must
// reject any change.
func FuzzVerifyMove2Storage(f *testing.F) {
	src, err := state.NewDB(chainA, trie.KindMPT)
	if err != nil {
		f.Fatal(err)
	}
	contract := addr(0xF1)
	src.CreateContract(contract, []byte("code"))
	for i := byte(1); i <= 4; i++ {
		src.SetStorage(contract, word(i), word(i+10))
	}
	src.SetLocation(contract, chainB)
	src.SetMoveNonce(contract, 1)
	src.Commit()
	payload, err := BuildMoveProof(src, contract, 1)
	if err != nil {
		f.Fatal(err)
	}
	hs := NewHeaderStore(paramsA(), paramsB())
	rootHeader := &types.Header{ChainID: chainA, Height: 1, StateRoot: src.Root()}
	if err := hs.Update(chainA, []*types.Header{rootHeader}, 1+paramsA().ConfirmationDepth); err != nil {
		f.Fatal(err)
	}

	f.Add(uint8(0), uint8(0), uint8(0))  // identity
	f.Add(uint8(1), uint8(31), uint8(1)) // flip value byte
	f.Add(uint8(2), uint8(0), uint8(9))  // flip key byte

	f.Fuzz(func(t *testing.T, entry, pos, delta uint8) {
		dst, err := state.NewDB(chainB, trie.KindIAVL)
		if err != nil {
			t.Fatal(err)
		}
		p := *payload
		p.Storage = append([]types.StorageEntry{}, payload.Storage...)
		mutated := false
		if len(p.Storage) > 0 && delta != 0 {
			i := int(entry) % len(p.Storage)
			e := p.Storage[i]
			if pos%2 == 0 {
				e.Key[pos%32] ^= delta
			} else {
				e.Value[pos%32] ^= delta
			}
			if e != payload.Storage[i] {
				mutated = true
			}
			p.Storage[i] = e
		}
		_, err = VerifyMove2(chainB, dst, hs, &p)
		if mutated && err == nil {
			t.Fatalf("mutated storage accepted (entry %d pos %d delta %d)", entry, pos, delta)
		}
		if !mutated && err != nil {
			t.Fatalf("unmutated payload rejected: %v", err)
		}
	})
}
