package core

import (
	"errors"
	"testing"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/state"
	"scmove/internal/trie"
	"scmove/internal/types"
	"scmove/internal/u256"
)

const (
	chainA = hashing.ChainID(1) // MPT, Ethereum-like, p=6
	chainB = hashing.ChainID(2) // IAVL, Burrow-like, lagging root, p=2
)

func paramsA() ChainParams {
	return ChainParams{ID: chainA, TreeKind: trie.KindMPT, ConfirmationDepth: 6}
}

func paramsB() ChainParams {
	return ChainParams{ID: chainB, TreeKind: trie.KindIAVL, ConfirmationDepth: 2, LaggingStateRoot: true}
}

func addr(b byte) hashing.Address {
	var a hashing.Address
	a[0] = b
	return a
}

func word(b byte) evm.Word {
	var w evm.Word
	w[31] = b
	return w
}

// lockContract installs a contract on db, locks it towards target, commits,
// and returns the committed height's root published as a header.
func lockContract(t *testing.T, db *state.DB, contract hashing.Address, target hashing.ChainID) {
	t.Helper()
	db.CreateContract(contract, []byte("movable code"))
	db.SetStorage(contract, word(1), word(10))
	db.SetStorage(contract, word(2), word(20))
	db.AddBalance(contract, u256.FromUint64(77))
	db.SetNonce(contract, 5)
	db.SetLocation(contract, target)
	db.SetMoveNonce(contract, db.GetMoveNonce(contract)+1)
	db.Commit()
}

// publish feeds hs with a header chain for the given chain id so that the
// root of height is trusted: for lagging chains the root lands in height+1,
// and the head is advanced p blocks past the root-bearing header.
func publish(t *testing.T, hs *HeaderStore, params ChainParams, height uint64, root hashing.Hash) {
	t.Helper()
	rootHeight := height
	if params.LaggingStateRoot {
		rootHeight = height + 1
	}
	head := rootHeight + params.ConfirmationDepth
	var headers []*types.Header
	for h := rootHeight; h <= head; h++ {
		hdr := &types.Header{ChainID: params.ID, Height: h}
		if h == rootHeight {
			hdr.StateRoot = root
		}
		headers = append(headers, hdr)
	}
	if err := hs.Update(params.ID, headers, head); err != nil {
		t.Fatal(err)
	}
}

func newDBs(t *testing.T) (src, dst *state.DB) {
	t.Helper()
	var err error
	src, err = state.NewDB(chainA, trie.KindMPT)
	if err != nil {
		t.Fatal(err)
	}
	dst, err = state.NewDB(chainB, trie.KindIAVL)
	if err != nil {
		t.Fatal(err)
	}
	return src, dst
}

func TestMoveRoundTripMPTtoIAVL(t *testing.T) {
	src, dst := newDBs(t)
	contract := addr(0xc0)
	lockContract(t, src, contract, chainB)

	payload, err := BuildMoveProof(src, contract, 1)
	if err != nil {
		t.Fatal(err)
	}
	hs := NewHeaderStore(paramsA(), paramsB())
	publish(t, hs, paramsA(), 1, src.Root())

	acct, err := VerifyMove2(chainB, dst, hs, payload)
	if err != nil {
		t.Fatal(err)
	}
	ApplyMove2(dst, payload, acct)

	// The contract is recreated identically on the target chain.
	got, ok := dst.GetAccount(contract)
	if !ok {
		t.Fatal("contract must exist on target")
	}
	if got.Nonce != 5 || !got.Balance.Eq(u256.FromUint64(77)) || got.MoveNonce != 1 {
		t.Fatalf("recreated account %+v", got)
	}
	if got.Location != chainB {
		t.Fatal("recreated contract must be local to the target")
	}
	if string(dst.GetCode(contract)) != "movable code" {
		t.Fatal("code must be recreated")
	}
	if dst.GetStorage(contract, word(1)) != word(10) || dst.GetStorage(contract, word(2)) != word(20) {
		t.Fatal("storage must be recreated")
	}
}

func TestMoveRoundTripIAVLtoMPTLaggingRoot(t *testing.T) {
	// Burrow-like source: the root of height h is published in header h+1.
	src, err := state.NewDB(chainB, trie.KindIAVL)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := state.NewDB(chainA, trie.KindMPT)
	if err != nil {
		t.Fatal(err)
	}
	contract := addr(0xc1)
	lockContract(t, src, contract, chainA)

	payload, err := BuildMoveProof(src, contract, 4)
	if err != nil {
		t.Fatal(err)
	}
	hs := NewHeaderStore(paramsA(), paramsB())
	publish(t, hs, paramsB(), 4, src.Root())

	acct, err := VerifyMove2(chainA, dst, hs, payload)
	if err != nil {
		t.Fatal(err)
	}
	ApplyMove2(dst, payload, acct)
	if loc := dst.GetLocation(contract); loc != chainA {
		t.Fatalf("location = %s", loc)
	}
}

func TestBuildProofRequiresLock(t *testing.T) {
	src, _ := newDBs(t)
	contract := addr(0xc2)
	src.CreateContract(contract, []byte("code"))
	src.Commit()
	if _, err := BuildMoveProof(src, contract, 1); !errors.Is(err, ErrNotLocked) {
		t.Fatalf("want ErrNotLocked, got %v", err)
	}
}

func TestVerifyRejectsUnconfirmedHeight(t *testing.T) {
	src, dst := newDBs(t)
	contract := addr(0xc3)
	lockContract(t, src, contract, chainB)
	payload, err := BuildMoveProof(src, contract, 1)
	if err != nil {
		t.Fatal(err)
	}
	hs := NewHeaderStore(paramsA(), paramsB())
	// Publish the header but with head only 3 past it (p=6 required).
	hdr := &types.Header{ChainID: chainA, Height: 1, StateRoot: src.Root()}
	if err := hs.Update(chainA, []*types.Header{hdr}, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyMove2(chainB, dst, hs, payload); !errors.Is(err, ErrNotConfirmed) {
		t.Fatalf("want ErrNotConfirmed, got %v", err)
	}
}

func TestVerifyRejectsWrongTarget(t *testing.T) {
	src, _ := newDBs(t)
	contract := addr(0xc4)
	lockContract(t, src, contract, hashing.ChainID(9)) // destined elsewhere
	payload, err := BuildMoveProof(src, contract, 1)
	if err != nil {
		t.Fatal(err)
	}
	hs := NewHeaderStore(paramsA(), paramsB())
	publish(t, hs, paramsA(), 1, src.Root())
	dst, err := state.NewDB(chainB, trie.KindIAVL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyMove2(chainB, dst, hs, payload); !errors.Is(err, ErrWrongTarget) {
		t.Fatalf("want ErrWrongTarget, got %v", err)
	}
}

func TestVerifyRejectsTamperedStorage(t *testing.T) {
	src, dst := newDBs(t)
	contract := addr(0xc5)
	lockContract(t, src, contract, chainB)
	hs := NewHeaderStore(paramsA(), paramsB())
	publish(t, hs, paramsA(), 1, src.Root())

	build := func() *types.Move2Payload {
		p, err := BuildMoveProof(src, contract, 1)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Omitting an entry breaks completeness.
	p := build()
	p.Storage = p.Storage[:1]
	if _, err := VerifyMove2(chainB, dst, hs, p); !errors.Is(err, ErrIncompleteSet) {
		t.Fatalf("omission: want ErrIncompleteSet, got %v", err)
	}
	// Altering a value breaks completeness.
	p = build()
	p.Storage[0].Value = word(0xff)
	if _, err := VerifyMove2(chainB, dst, hs, p); !errors.Is(err, ErrIncompleteSet) {
		t.Fatalf("alteration: want ErrIncompleteSet, got %v", err)
	}
	// Injecting an entry breaks completeness.
	p = build()
	p.Storage = append(p.Storage, types.StorageEntry{Key: word(0xEE), Value: word(1)})
	if _, err := VerifyMove2(chainB, dst, hs, p); !errors.Is(err, ErrIncompleteSet) {
		t.Fatalf("injection: want ErrIncompleteSet, got %v", err)
	}
}

func TestVerifyRejectsTamperedCode(t *testing.T) {
	src, dst := newDBs(t)
	contract := addr(0xc6)
	lockContract(t, src, contract, chainB)
	payload, err := BuildMoveProof(src, contract, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload.Code = []byte("evil code")
	hs := NewHeaderStore(paramsA(), paramsB())
	publish(t, hs, paramsA(), 1, src.Root())
	if _, err := VerifyMove2(chainB, dst, hs, payload); !errors.Is(err, ErrIncompleteCode) {
		t.Fatalf("want ErrIncompleteCode, got %v", err)
	}
}

// TestReplayProtectionFig2 reproduces the scenario of paper Fig. 2: a
// contract moves B1 → B2 and back B2 → B1; a replay of the original Move2
// on B2 must abort on the stale move nonce.
func TestReplayProtectionFig2(t *testing.T) {
	b1, b2 := newDBs(t)
	contract := addr(0xc7)
	hs := NewHeaderStore(paramsA(), paramsB())

	// Move B1 -> B2 (move nonce becomes 1).
	lockContract(t, b1, contract, chainB)
	originalPayload, err := BuildMoveProof(b1, contract, 1)
	if err != nil {
		t.Fatal(err)
	}
	publish(t, hs, paramsA(), 1, b1.Root())
	acct, err := VerifyMove2(chainB, b2, hs, originalPayload)
	if err != nil {
		t.Fatal(err)
	}
	ApplyMove2(b2, originalPayload, acct)

	// Immediate replay on B2: nonce 1 already seen.
	if _, err := VerifyMove2(chainB, b2, hs, originalPayload); !errors.Is(err, ErrReplay) {
		t.Fatalf("immediate replay: want ErrReplay, got %v", err)
	}

	// Move B2 -> B1 (Move1 on B2 bumps the nonce to 2).
	b2.SetLocation(contract, chainA)
	b2.SetMoveNonce(contract, b2.GetMoveNonce(contract)+1)
	b2.Commit()
	backPayload, err := BuildMoveProof(b2, contract, 1)
	if err != nil {
		t.Fatal(err)
	}
	publish(t, hs, paramsB(), 1, b2.Root())
	acctBack, err := VerifyMove2(chainA, b1, hs, backPayload)
	if err != nil {
		t.Fatal(err)
	}
	ApplyMove2(b1, backPayload, acctBack)
	if b1.GetLocation(contract) != chainA {
		t.Fatal("contract must be back on B1")
	}

	// The attack: replay the original Tmove2 on B2. The tombstone's move
	// nonce (2) exceeds the proof's (1) — abort (Fig. 2's "1 > 3" check).
	if _, err := VerifyMove2(chainB, b2, hs, originalPayload); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay after round trip: want ErrReplay, got %v", err)
	}
}

func TestHeaderStoreUnknownChain(t *testing.T) {
	hs := NewHeaderStore(paramsA())
	if err := hs.Update(hashing.ChainID(42), nil, 0); !errors.Is(err, ErrUnknownChain) {
		t.Fatalf("want ErrUnknownChain, got %v", err)
	}
	if _, err := hs.TrustedStateRoot(hashing.ChainID(42), 0); !errors.Is(err, ErrUnknownChain) {
		t.Fatalf("want ErrUnknownChain, got %v", err)
	}
	if _, err := hs.TrustedStateRoot(chainA, 99); !errors.Is(err, ErrNoHeader) {
		t.Fatalf("want ErrNoHeader, got %v", err)
	}
}

func TestHeaderStoreReorgOverwrite(t *testing.T) {
	hs := NewHeaderStore(paramsA())
	h1 := &types.Header{ChainID: chainA, Height: 5, StateRoot: hashing.Sum([]byte("fork-a"))}
	h2 := &types.Header{ChainID: chainA, Height: 5, StateRoot: hashing.Sum([]byte("fork-b"))}
	if err := hs.Update(chainA, []*types.Header{h1}, 5); err != nil {
		t.Fatal(err)
	}
	if err := hs.Update(chainA, []*types.Header{h2}, 11); err != nil {
		t.Fatal(err)
	}
	root, err := hs.TrustedStateRoot(chainA, 5)
	if err != nil {
		t.Fatal(err)
	}
	if root != h2.StateRoot {
		t.Fatal("reorged header must win")
	}
}

func TestHeaderStoreRejectsMislabeledHeaders(t *testing.T) {
	hs := NewHeaderStore(paramsA(), paramsB())
	alien := &types.Header{ChainID: chainB, Height: 1}
	if err := hs.Update(chainA, []*types.Header{alien}, 1); err == nil {
		t.Fatal("header from another chain must be rejected")
	}
}

func TestMoveToInputRoundTrip(t *testing.T) {
	input := MoveToInput(hashing.ChainID(777))
	id, ok := ParseMoveToInput(input)
	if !ok || id != hashing.ChainID(777) {
		t.Fatalf("parse = %d, %v", id, ok)
	}
	if _, ok := ParseMoveToInput([]byte("garbage")); ok {
		t.Fatal("garbage must not parse")
	}
	if !IsMoveFinishInput(MoveFinishInput) || IsMoveFinishInput(input) {
		t.Fatal("move finish recognition broken")
	}
}
