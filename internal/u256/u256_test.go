package u256

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

var two256 = new(big.Int).Lsh(big.NewInt(1), 256)

func modBig(b *big.Int) *big.Int { return new(big.Int).Mod(b, two256) }

// randInt draws a 256-bit integer biased towards interesting shapes:
// small values, values near 2^256, and single-limb patterns.
func randInt(r *rand.Rand) Int {
	switch r.Intn(5) {
	case 0:
		return FromUint64(r.Uint64() % 1024)
	case 1:
		return zero.Not().Sub(FromUint64(r.Uint64() % 1024)) // near max
	case 2:
		return FromUint64(1).Shl(FromUint64(r.Uint64() % 256))
	default:
		return FromLimbs(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
	}
}

// Generate lets testing/quick draw random Ints.
func (Int) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randInt(r))
}

func TestRoundTripBig(t *testing.T) {
	f := func(x Int) bool { return FromBig(x.Big()).Eq(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripBytes(t *testing.T) {
	f := func(x Int) bool {
		buf := x.Bytes32()
		return FromBytes(buf[:]).Eq(x) && FromBytes(x.Bytes()).Eq(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddMatchesBig(t *testing.T) {
	f := func(x, y Int) bool {
		want := modBig(new(big.Int).Add(x.Big(), y.Big()))
		return x.Add(y).Big().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubMatchesBig(t *testing.T) {
	f := func(x, y Int) bool {
		want := modBig(new(big.Int).Sub(x.Big(), y.Big()))
		return x.Sub(y).Big().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulMatchesBig(t *testing.T) {
	f := func(x, y Int) bool {
		want := modBig(new(big.Int).Mul(x.Big(), y.Big()))
		return x.Mul(y).Big().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivModMatchesBig(t *testing.T) {
	f := func(x, y Int) bool {
		if y.IsZero() {
			return x.Div(y).IsZero() && x.Mod(y).IsZero()
		}
		wantQ := new(big.Int).Div(x.Big(), y.Big())
		wantR := new(big.Int).Mod(x.Big(), y.Big())
		return x.Div(y).Big().Cmp(wantQ) == 0 && x.Mod(y).Big().Cmp(wantR) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivModIdentity(t *testing.T) {
	// x == (x/y)*y + x%y whenever y != 0.
	f := func(x, y Int) bool {
		if y.IsZero() {
			return true
		}
		return x.Div(y).Mul(y).Add(x.Mod(y)).Eq(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignedDivRem(t *testing.T) {
	cases := []struct {
		x, y, div, mod string
	}{
		{"0x0a", "0x03", "0x3", "0x1"},
		// -10 / 3 == -3, rem -1.
		{negHex(10), "0x03", negHexVal(3), negHexVal(1)},
		// 10 / -3 == -3, rem 1.
		{"0x0a", negHex(3), negHexVal(3), "0x1"},
		// -10 / -3 == 3, rem -1.
		{negHex(10), negHex(3), "0x3", negHexVal(1)},
	}
	for _, tc := range cases {
		x, y := MustFromHex(tc.x), MustFromHex(tc.y)
		if got := x.SDiv(y); got.String() != MustFromHex(tc.div).String() {
			t.Errorf("SDiv(%s,%s) = %s, want %s", tc.x, tc.y, got, tc.div)
		}
		if got := x.SMod(y); got.String() != MustFromHex(tc.mod).String() {
			t.Errorf("SMod(%s,%s) = %s, want %s", tc.x, tc.y, got, tc.mod)
		}
	}
}

func negHex(v uint64) string { return FromUint64(v).Neg().String() }

func negHexVal(v uint64) string { return FromUint64(v).Neg().String() }

func TestExpMatchesBig(t *testing.T) {
	f := func(x Int, e uint16) bool {
		y := FromUint64(uint64(e % 300))
		want := new(big.Int).Exp(x.Big(), y.Big(), two256)
		return x.Exp(y).Big().Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExpLargeExponent(t *testing.T) {
	x := FromUint64(3)
	y := zero.Not() // 2^256 - 1
	want := new(big.Int).Exp(x.Big(), y.Big(), two256)
	if got := x.Exp(y); got.Big().Cmp(want) != 0 {
		t.Fatalf("Exp(3, max) = %s, want %s", got, want.Text(16))
	}
}

func TestShiftsMatchBig(t *testing.T) {
	f := func(x Int, nRaw uint16) bool {
		n := uint(nRaw % 300)
		nInt := FromUint64(uint64(n))
		wantShl := modBig(new(big.Int).Lsh(x.Big(), n))
		wantShr := new(big.Int).Rsh(x.Big(), n)
		if x.Shl(nInt).Big().Cmp(wantShl) != 0 {
			return false
		}
		return x.Shr(nInt).Big().Cmp(wantShr) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSar(t *testing.T) {
	minusOne := zero.Not()
	if got := minusOne.Sar(FromUint64(5)); !got.Eq(minusOne) {
		t.Errorf("Sar(-1, 5) = %s, want -1", got)
	}
	if got := minusOne.Sar(FromUint64(999)); !got.Eq(minusOne) {
		t.Errorf("Sar(-1, 999) = %s, want -1", got)
	}
	if got := FromUint64(64).Sar(FromUint64(2)); !got.Eq(FromUint64(16)) {
		t.Errorf("Sar(64, 2) = %s, want 16", got)
	}
	minus8 := FromUint64(8).Neg()
	if got := minus8.Sar(FromUint64(1)); !got.Eq(FromUint64(4).Neg()) {
		t.Errorf("Sar(-8, 1) = %s, want -4", got)
	}
	if got := FromUint64(7).Sar(FromUint64(999)); !got.IsZero() {
		t.Errorf("Sar(7, 999) = %s, want 0", got)
	}
}

func TestSarMatchesBigSigned(t *testing.T) {
	f := func(x Int, nRaw uint8) bool {
		n := uint(nRaw) % 260
		want := new(big.Int).Rsh(x.SignedBig(), n)
		return x.Sar(FromUint64(uint64(n))).SignedBig().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignExtend(t *testing.T) {
	// 0xff extended at byte 0 becomes -1.
	x := FromUint64(0xff)
	if got := x.SignExtend(FromUint64(0)); !got.Eq(zero.Not()) {
		t.Errorf("SignExtend(0xff, 0) = %s, want -1", got)
	}
	// 0x7f stays 0x7f.
	if got := FromUint64(0x7f).SignExtend(FromUint64(0)); !got.Eq(FromUint64(0x7f)) {
		t.Errorf("SignExtend(0x7f, 0) = %s", got)
	}
	// k >= 31 is identity.
	big := MustFromHex("0x8000000000000000000000000000000000000000000000000000000000000001")
	if got := big.SignExtend(FromUint64(31)); !got.Eq(big) {
		t.Errorf("SignExtend(x, 31) = %s, want x", got)
	}
}

func TestByte(t *testing.T) {
	x := MustFromHex("0x0102030405060708091011121314151617181920212223242526272829303132")
	if got := x.Byte(FromUint64(0)); !got.Eq(FromUint64(0x01)) {
		t.Errorf("Byte(0) = %s", got)
	}
	if got := x.Byte(FromUint64(31)); !got.Eq(FromUint64(0x32)) {
		t.Errorf("Byte(31) = %s", got)
	}
	if got := x.Byte(FromUint64(32)); !got.IsZero() {
		t.Errorf("Byte(32) = %s, want 0", got)
	}
}

func TestAddModMulMod(t *testing.T) {
	f := func(x, y, m Int) bool {
		if m.IsZero() {
			return x.AddMod(y, m).IsZero() && x.MulMod(y, m).IsZero()
		}
		wantAdd := new(big.Int).Add(x.Big(), y.Big())
		wantAdd.Mod(wantAdd, m.Big())
		wantMul := new(big.Int).Mul(x.Big(), y.Big())
		wantMul.Mod(wantMul, m.Big())
		return x.AddMod(y, m).Big().Cmp(wantAdd) == 0 &&
			x.MulMod(y, m).Big().Cmp(wantMul) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	f := func(x, y Int) bool {
		bx, by := x.Big(), y.Big()
		if (x.Cmp(y) < 0) != (bx.Cmp(by) < 0) {
			return false
		}
		sx, sy := x.SignedBig(), y.SignedBig()
		return (x.Slt(y) == (sx.Cmp(sy) < 0)) && (x.Sgt(y) == (sx.Cmp(sy) > 0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitwiseMatchesBig(t *testing.T) {
	f := func(x, y Int) bool {
		and := new(big.Int).And(x.Big(), y.Big())
		or := new(big.Int).Or(x.Big(), y.Big())
		xor := new(big.Int).Xor(x.Big(), y.Big())
		return x.And(y).Big().Cmp(and) == 0 &&
			x.Or(y).Big().Cmp(or) == 0 &&
			x.Xor(y).Big().Cmp(xor) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNotInvolution(t *testing.T) {
	f := func(x Int) bool { return x.Not().Not().Eq(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegTwosComplement(t *testing.T) {
	f := func(x Int) bool { return x.Add(x.Neg()).IsZero() }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverflowFlags(t *testing.T) {
	maxInt := zero.Not()
	if _, over := maxInt.AddOverflow(one); !over {
		t.Error("max+1 should overflow")
	}
	if _, over := FromUint64(1).AddOverflow(FromUint64(2)); over {
		t.Error("1+2 should not overflow")
	}
	if _, under := zero.SubUnderflow(one); !under {
		t.Error("0-1 should underflow")
	}
	if _, under := FromUint64(5).SubUnderflow(FromUint64(3)); under {
		t.Error("5-3 should not underflow")
	}
}

func TestBitLen(t *testing.T) {
	if got := Zero().BitLen(); got != 0 {
		t.Errorf("BitLen(0) = %d", got)
	}
	if got := FromUint64(255).BitLen(); got != 8 {
		t.Errorf("BitLen(255) = %d", got)
	}
	if got := One().Shl(FromUint64(200)).BitLen(); got != 201 {
		t.Errorf("BitLen(1<<200) = %d", got)
	}
}

func TestMustFromHexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid hex")
		}
	}()
	MustFromHex("0xzz")
}

func TestStringParsesBack(t *testing.T) {
	f := func(x Int) bool { return MustFromHex(x.String()).Eq(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
