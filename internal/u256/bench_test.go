package u256

import "testing"

var benchSink Int

func benchOperands() (Int, Int) {
	a := MustFromHex("0xfedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210")
	b := MustFromHex("0x0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	return a, b
}

func BenchmarkAdd(b *testing.B) {
	x, y := benchOperands()
	for i := 0; i < b.N; i++ {
		benchSink = x.Add(y)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := benchOperands()
	for i := 0; i < b.N; i++ {
		benchSink = x.Mul(y)
	}
}

func BenchmarkDiv(b *testing.B) {
	x, y := benchOperands()
	for i := 0; i < b.N; i++ {
		benchSink = x.Div(y)
	}
}

func BenchmarkExp(b *testing.B) {
	x := FromUint64(3)
	y := FromUint64(255)
	for i := 0; i < b.N; i++ {
		benchSink = x.Exp(y)
	}
}

func BenchmarkShl(b *testing.B) {
	x, _ := benchOperands()
	n := FromUint64(127)
	for i := 0; i < b.N; i++ {
		benchSink = x.Shl(n)
	}
}

func BenchmarkBytes32RoundTrip(b *testing.B) {
	x, _ := benchOperands()
	for i := 0; i < b.N; i++ {
		buf := x.Bytes32()
		benchSink = FromBytes(buf[:])
	}
}
