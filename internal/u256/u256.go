// Package u256 implements 256-bit unsigned integer arithmetic with the
// wrapping (mod 2^256) semantics of the Ethereum virtual machine word.
//
// Values are represented as four little-endian 64-bit limbs and are plain
// value types: copying an Int copies the number. Addition, subtraction,
// multiplication, comparisons, bit operations and shifts are implemented
// natively on the limbs; the division family delegates to math/big, which
// keeps the hot EVM paths allocation-free while staying obviously correct
// for the rare DIV/MOD/EXP opcodes.
package u256

import (
	"encoding/binary"
	"fmt"
	"math/big"
	"math/bits"
)

// Int is an unsigned 256-bit integer: limbs[0] is the least significant word.
type Int struct {
	limbs [4]uint64
}

// Common constants. These are returned by value; callers cannot mutate them.
var (
	zero = Int{}
	one  = Int{limbs: [4]uint64{1, 0, 0, 0}}
)

// Zero returns the value 0.
func Zero() Int { return zero }

// One returns the value 1.
func One() Int { return one }

// FromUint64 returns v as a 256-bit integer.
func FromUint64(v uint64) Int {
	return Int{limbs: [4]uint64{v, 0, 0, 0}}
}

// FromLimbs builds an Int from little-endian 64-bit limbs.
func FromLimbs(l0, l1, l2, l3 uint64) Int {
	return Int{limbs: [4]uint64{l0, l1, l2, l3}}
}

// FromBig converts b mod 2^256 to an Int. Negative values are taken in
// two's complement, matching EVM semantics for signed pushes.
func FromBig(b *big.Int) Int {
	var x Int
	abs := new(big.Int).Abs(b)
	words := abs.Bits()
	for i := 0; i < len(words) && i < 4; i++ {
		x.limbs[i] = uint64(words[i])
	}
	if b.Sign() < 0 {
		x = x.Neg()
	}
	return x
}

// FromBytes interprets b as a big-endian unsigned integer, using at most the
// last 32 bytes.
func FromBytes(b []byte) Int {
	if len(b) > 32 {
		b = b[len(b)-32:]
	}
	var buf [32]byte
	copy(buf[32-len(b):], b)
	var x Int
	x.limbs[3] = binary.BigEndian.Uint64(buf[0:8])
	x.limbs[2] = binary.BigEndian.Uint64(buf[8:16])
	x.limbs[1] = binary.BigEndian.Uint64(buf[16:24])
	x.limbs[0] = binary.BigEndian.Uint64(buf[24:32])
	return x
}

// MustFromHex parses a 0x-prefixed or bare hexadecimal string. It panics on
// malformed input and is intended for constants in tests and genesis config.
func MustFromHex(s string) Int {
	b, ok := new(big.Int).SetString(trimHexPrefix(s), 16)
	if !ok {
		panic(fmt.Sprintf("u256: invalid hex %q", s))
	}
	if b.Sign() < 0 || b.BitLen() > 256 {
		panic(fmt.Sprintf("u256: hex out of range %q", s))
	}
	return FromBig(b)
}

func trimHexPrefix(s string) string {
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		return s[2:]
	}
	return s
}

// Bytes32 returns the big-endian 32-byte encoding of x.
func (x Int) Bytes32() [32]byte {
	var buf [32]byte
	binary.BigEndian.PutUint64(buf[0:8], x.limbs[3])
	binary.BigEndian.PutUint64(buf[8:16], x.limbs[2])
	binary.BigEndian.PutUint64(buf[16:24], x.limbs[1])
	binary.BigEndian.PutUint64(buf[24:32], x.limbs[0])
	return buf
}

// Bytes returns the minimal big-endian encoding of x (empty for zero).
func (x Int) Bytes() []byte {
	full := x.Bytes32()
	i := 0
	for i < 32 && full[i] == 0 {
		i++
	}
	out := make([]byte, 32-i)
	copy(out, full[i:])
	return out
}

// Big returns x as a math/big integer.
func (x Int) Big() *big.Int {
	buf := x.Bytes32()
	return new(big.Int).SetBytes(buf[:])
}

// Uint64 returns the low 64 bits of x.
func (x Int) Uint64() uint64 { return x.limbs[0] }

// IsUint64 reports whether x fits in a uint64.
func (x Int) IsUint64() bool {
	return x.limbs[1] == 0 && x.limbs[2] == 0 && x.limbs[3] == 0
}

// IsZero reports whether x == 0.
func (x Int) IsZero() bool {
	return x.limbs[0]|x.limbs[1]|x.limbs[2]|x.limbs[3] == 0
}

// Sign reports 0 if x == 0, 1 if x > 0 when interpreted as unsigned.
func (x Int) Sign() int {
	if x.IsZero() {
		return 0
	}
	return 1
}

// IsNegative reports whether x is negative under two's-complement
// interpretation (bit 255 set).
func (x Int) IsNegative() bool { return x.limbs[3]&(1<<63) != 0 }

// String formats x as 0x-prefixed lowercase hex without leading zeros.
func (x Int) String() string { return "0x" + x.Big().Text(16) }

// Eq reports x == y.
func (x Int) Eq(y Int) bool { return x.limbs == y.limbs }

// Cmp returns -1, 0 or +1 comparing x and y as unsigned integers.
func (x Int) Cmp(y Int) int {
	for i := 3; i >= 0; i-- {
		switch {
		case x.limbs[i] < y.limbs[i]:
			return -1
		case x.limbs[i] > y.limbs[i]:
			return 1
		}
	}
	return 0
}

// Lt reports x < y (unsigned).
func (x Int) Lt(y Int) bool { return x.Cmp(y) < 0 }

// Gt reports x > y (unsigned).
func (x Int) Gt(y Int) bool { return x.Cmp(y) > 0 }

// Scmp returns -1, 0 or +1 comparing x and y as signed two's-complement.
func (x Int) Scmp(y Int) int {
	xNeg, yNeg := x.IsNegative(), y.IsNegative()
	switch {
	case xNeg && !yNeg:
		return -1
	case !xNeg && yNeg:
		return 1
	default:
		return x.Cmp(y)
	}
}

// Slt reports x < y (signed).
func (x Int) Slt(y Int) bool { return x.Scmp(y) < 0 }

// Sgt reports x > y (signed).
func (x Int) Sgt(y Int) bool { return x.Scmp(y) > 0 }

// Add returns x + y mod 2^256.
func (x Int) Add(y Int) Int {
	var (
		z Int
		c uint64
	)
	z.limbs[0], c = bits.Add64(x.limbs[0], y.limbs[0], 0)
	z.limbs[1], c = bits.Add64(x.limbs[1], y.limbs[1], c)
	z.limbs[2], c = bits.Add64(x.limbs[2], y.limbs[2], c)
	z.limbs[3], _ = bits.Add64(x.limbs[3], y.limbs[3], c)
	return z
}

// AddOverflow returns x + y mod 2^256 and whether the addition wrapped.
func (x Int) AddOverflow(y Int) (Int, bool) {
	var (
		z Int
		c uint64
	)
	z.limbs[0], c = bits.Add64(x.limbs[0], y.limbs[0], 0)
	z.limbs[1], c = bits.Add64(x.limbs[1], y.limbs[1], c)
	z.limbs[2], c = bits.Add64(x.limbs[2], y.limbs[2], c)
	z.limbs[3], c = bits.Add64(x.limbs[3], y.limbs[3], c)
	return z, c != 0
}

// Sub returns x - y mod 2^256.
func (x Int) Sub(y Int) Int {
	var (
		z Int
		b uint64
	)
	z.limbs[0], b = bits.Sub64(x.limbs[0], y.limbs[0], 0)
	z.limbs[1], b = bits.Sub64(x.limbs[1], y.limbs[1], b)
	z.limbs[2], b = bits.Sub64(x.limbs[2], y.limbs[2], b)
	z.limbs[3], _ = bits.Sub64(x.limbs[3], y.limbs[3], b)
	return z
}

// SubUnderflow returns x - y mod 2^256 and whether the subtraction borrowed.
func (x Int) SubUnderflow(y Int) (Int, bool) {
	var (
		z Int
		b uint64
	)
	z.limbs[0], b = bits.Sub64(x.limbs[0], y.limbs[0], 0)
	z.limbs[1], b = bits.Sub64(x.limbs[1], y.limbs[1], b)
	z.limbs[2], b = bits.Sub64(x.limbs[2], y.limbs[2], b)
	z.limbs[3], b = bits.Sub64(x.limbs[3], y.limbs[3], b)
	return z, b != 0
}

// Neg returns -x mod 2^256 (two's complement).
func (x Int) Neg() Int { return zero.Sub(x) }

// Mul returns x * y mod 2^256 using schoolbook limb multiplication with a
// 128-bit running carry per row (acc + x_i*y_j + carry always fits 128 bits).
func (x Int) Mul(y Int) Int {
	var z Int
	for i := 0; i < 4; i++ {
		var carry uint64
		for j := 0; i+j < 4; j++ {
			z.limbs[i+j], carry = mulStep(z.limbs[i+j], x.limbs[i], y.limbs[j], carry)
		}
	}
	return z
}

// mulStep computes acc + xi*yj + carryIn, returning the low 64 bits and the
// carry into the next limb. The total is at most 2^128 - 1, so it is exact.
func mulStep(acc, xi, yj, carryIn uint64) (lo, carryOut uint64) {
	hi, lo := bits.Mul64(xi, yj)
	var c uint64
	lo, c = bits.Add64(lo, acc, 0)
	hi += c
	lo, c = bits.Add64(lo, carryIn, 0)
	hi += c
	return lo, hi
}

// Div returns x / y (unsigned), or 0 when y == 0, matching EVM DIV.
func (x Int) Div(y Int) Int {
	if y.IsZero() {
		return zero
	}
	return FromBig(new(big.Int).Div(x.Big(), y.Big()))
}

// Mod returns x % y (unsigned), or 0 when y == 0, matching EVM MOD.
func (x Int) Mod(y Int) Int {
	if y.IsZero() {
		return zero
	}
	return FromBig(new(big.Int).Mod(x.Big(), y.Big()))
}

// SDiv returns x / y under signed two's-complement semantics (EVM SDIV).
func (x Int) SDiv(y Int) Int {
	if y.IsZero() {
		return zero
	}
	xb, yb := x.SignedBig(), y.SignedBig()
	return FromBig(new(big.Int).Quo(xb, yb))
}

// SMod returns x % y under signed semantics (EVM SMOD; result takes the
// sign of the dividend).
func (x Int) SMod(y Int) Int {
	if y.IsZero() {
		return zero
	}
	xb, yb := x.SignedBig(), y.SignedBig()
	return FromBig(new(big.Int).Rem(xb, yb))
}

// SignedBig returns x interpreted as a signed two's-complement integer.
func (x Int) SignedBig() *big.Int {
	b := x.Big()
	if x.IsNegative() {
		max := new(big.Int).Lsh(big.NewInt(1), 256)
		b.Sub(b, max)
	}
	return b
}

// AddMod returns (x + y) % m with 257-bit intermediate precision (EVM ADDMOD).
func (x Int) AddMod(y, m Int) Int {
	if m.IsZero() {
		return zero
	}
	s := new(big.Int).Add(x.Big(), y.Big())
	return FromBig(s.Mod(s, m.Big()))
}

// MulMod returns (x * y) % m with 512-bit intermediate precision (EVM MULMOD).
func (x Int) MulMod(y, m Int) Int {
	if m.IsZero() {
		return zero
	}
	p := new(big.Int).Mul(x.Big(), y.Big())
	return FromBig(p.Mod(p, m.Big()))
}

// Exp returns x**y mod 2^256 (EVM EXP).
func (x Int) Exp(y Int) Int {
	result := one
	base := x
	for i := 0; i < 256; i++ {
		limb := y.limbs[i/64]
		if limb&(1<<(uint(i)%64)) != 0 {
			result = result.Mul(base)
		}
		// Skip squaring once no higher bits remain.
		if allHigherBitsZero(y, i) {
			break
		}
		base = base.Mul(base)
	}
	return result
}

func allHigherBitsZero(y Int, bit int) bool {
	limb := bit / 64
	inLimb := uint(bit) % 64
	if y.limbs[limb]>>inLimb>>1 != 0 {
		return false
	}
	for i := limb + 1; i < 4; i++ {
		if y.limbs[i] != 0 {
			return false
		}
	}
	return true
}

// SignExtend implements EVM SIGNEXTEND: extends the sign bit of the byte at
// index k (0 = least significant) through the higher bytes.
func (x Int) SignExtend(k Int) Int {
	if !k.IsUint64() || k.Uint64() >= 31 {
		return x
	}
	byteIndex := k.Uint64() // 0..30
	bitIndex := byteIndex*8 + 7
	signSet := x.Bit(int(bitIndex)) == 1
	var z Int
	for i := 0; i < 256; i++ {
		var b uint
		if uint64(i) <= bitIndex {
			b = x.Bit(i)
		} else if signSet {
			b = 1
		}
		if b == 1 {
			z.limbs[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return z
}

// Bit returns bit i of x (0 or 1). Out-of-range bits are 0.
func (x Int) Bit(i int) uint {
	if i < 0 || i > 255 {
		return 0
	}
	return uint(x.limbs[i/64]>>(uint(i)%64)) & 1
}

// BitLen returns the number of bits required to represent x.
func (x Int) BitLen() int {
	for i := 3; i >= 0; i-- {
		if x.limbs[i] != 0 {
			return i*64 + bits.Len64(x.limbs[i])
		}
	}
	return 0
}

// And returns x & y.
func (x Int) And(y Int) Int {
	return Int{limbs: [4]uint64{
		x.limbs[0] & y.limbs[0], x.limbs[1] & y.limbs[1],
		x.limbs[2] & y.limbs[2], x.limbs[3] & y.limbs[3],
	}}
}

// Or returns x | y.
func (x Int) Or(y Int) Int {
	return Int{limbs: [4]uint64{
		x.limbs[0] | y.limbs[0], x.limbs[1] | y.limbs[1],
		x.limbs[2] | y.limbs[2], x.limbs[3] | y.limbs[3],
	}}
}

// Xor returns x ^ y.
func (x Int) Xor(y Int) Int {
	return Int{limbs: [4]uint64{
		x.limbs[0] ^ y.limbs[0], x.limbs[1] ^ y.limbs[1],
		x.limbs[2] ^ y.limbs[2], x.limbs[3] ^ y.limbs[3],
	}}
}

// Not returns ^x (bitwise complement).
func (x Int) Not() Int {
	return Int{limbs: [4]uint64{
		^x.limbs[0], ^x.limbs[1], ^x.limbs[2], ^x.limbs[3],
	}}
}

// Byte implements EVM BYTE: returns the i-th byte of x counting from the
// most significant (i = 0) as a word; i >= 32 yields 0.
func (x Int) Byte(i Int) Int {
	if !i.IsUint64() || i.Uint64() >= 32 {
		return zero
	}
	buf := x.Bytes32()
	return FromUint64(uint64(buf[i.Uint64()]))
}

// Shl returns x << n (n as unsigned; n >= 256 yields 0).
func (x Int) Shl(n Int) Int {
	if !n.IsUint64() || n.Uint64() >= 256 {
		return zero
	}
	return x.shlUint(uint(n.Uint64()))
}

func (x Int) shlUint(n uint) Int {
	if n == 0 {
		return x
	}
	var z Int
	limbShift := n / 64
	bitShift := n % 64
	for i := 3; i >= int(limbShift); i-- {
		z.limbs[i] = x.limbs[i-int(limbShift)] << bitShift
		if bitShift > 0 && i-int(limbShift)-1 >= 0 {
			z.limbs[i] |= x.limbs[i-int(limbShift)-1] >> (64 - bitShift)
		}
	}
	return z
}

// Shr returns x >> n logically (n >= 256 yields 0).
func (x Int) Shr(n Int) Int {
	if !n.IsUint64() || n.Uint64() >= 256 {
		return zero
	}
	return x.shrUint(uint(n.Uint64()))
}

func (x Int) shrUint(n uint) Int {
	if n == 0 {
		return x
	}
	var z Int
	limbShift := n / 64
	bitShift := n % 64
	for i := 0; i < 4-int(limbShift); i++ {
		z.limbs[i] = x.limbs[i+int(limbShift)] >> bitShift
		if bitShift > 0 && i+int(limbShift)+1 < 4 {
			z.limbs[i] |= x.limbs[i+int(limbShift)+1] << (64 - bitShift)
		}
	}
	return z
}

// Sar returns x >> n arithmetically (sign-propagating; EVM SAR).
func (x Int) Sar(n Int) Int {
	neg := x.IsNegative()
	if !n.IsUint64() || n.Uint64() >= 256 {
		if neg {
			return zero.Not() // all ones
		}
		return zero
	}
	shift := uint(n.Uint64())
	z := x.shrUint(shift)
	if neg && shift > 0 {
		// Fill the vacated high bits with ones.
		mask := zero.Not().shlUint(256 - shift)
		z = z.Or(mask)
	}
	return z
}
