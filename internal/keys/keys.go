// Package keys implements account key pairs and transaction signatures.
//
// The paper's clients hold one asymmetric key pair per account (§II). This
// reproduction uses ECDSA over P-256 from the standard library in place of
// secp256k1; the signature workflow (sign a transaction hash, verify proof
// of account ownership) is identical.
package keys

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"scmove/internal/hashing"
)

// Errors returned by signature verification.
var (
	ErrBadSignature = errors.New("keys: signature verification failed")
	ErrShortKey     = errors.New("keys: malformed public key encoding")
)

// KeyPair is an account key pair. The zero value is unusable; construct
// with Generate or Deterministic.
type KeyPair struct {
	priv *ecdsa.PrivateKey
	pub  []byte // encoded public key, computed once
	addr hashing.Address
}

// Generate creates a new key pair from crypto/rand.
func Generate() (*KeyPair, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate key: %w", err)
	}
	return fromPriv(priv), nil
}

// Deterministic creates a key pair derived from a seed. Simulations use this
// to create reproducible client populations; it must not be used for real
// funds. The private scalar is H(seed) reduced into [1, N-1], which is
// deterministic regardless of how the standard library samples keys.
func Deterministic(seed uint64) *KeyPair {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seed)
	digest := sha256.Sum256(buf[:])

	curve := elliptic.P256()
	nMinusOne := new(big.Int).Sub(curve.Params().N, big.NewInt(1))
	d := new(big.Int).SetBytes(digest[:])
	d.Mod(d, nMinusOne)
	d.Add(d, big.NewInt(1)) // d ∈ [1, N-1]

	priv := &ecdsa.PrivateKey{D: d}
	priv.Curve = curve
	priv.X, priv.Y = curve.ScalarBaseMult(d.Bytes())
	return fromPriv(priv)
}

func fromPriv(priv *ecdsa.PrivateKey) *KeyPair {
	pub := encodePub(&priv.PublicKey)
	return &KeyPair{
		priv: priv,
		pub:  pub,
		addr: hashing.AccountAddress(pub),
	}
}

// Address returns the account identifier derived from the public key. The
// same key pair yields the same address on every chain (§III-G(a)).
func (k *KeyPair) Address() hashing.Address { return k.addr }

// PublicKey returns the encoded public key. The returned slice is shared;
// callers must not mutate it.
func (k *KeyPair) PublicKey() []byte { return k.pub }

// Sign signs digest and returns a signature that carries the public key, so
// verifiers can both check the signature and derive the signer's address.
func (k *KeyPair) Sign(digest hashing.Hash) (Signature, error) {
	r, s, err := ecdsa.Sign(rand.Reader, k.priv, digest[:])
	if err != nil {
		return Signature{}, fmt.Errorf("sign: %w", err)
	}
	return Signature{
		PubKey: k.PublicKey(),
		R:      r.Bytes(),
		S:      s.Bytes(),
	}, nil
}

// Signature is a transaction signature together with the signing public key.
type Signature struct {
	PubKey []byte
	R, S   []byte
}

// SignerAddress returns the address of the key that produced the signature.
func (sig Signature) SignerAddress() (hashing.Address, error) {
	if _, err := decodePub(sig.PubKey); err != nil {
		return hashing.Address{}, err
	}
	return hashing.AccountAddress(sig.PubKey), nil
}

// Verify checks the signature over digest and returns the signer address.
func (sig Signature) Verify(digest hashing.Hash) (hashing.Address, error) {
	pub, err := decodePub(sig.PubKey)
	if err != nil {
		return hashing.Address{}, err
	}
	r := new(big.Int).SetBytes(sig.R)
	s := new(big.Int).SetBytes(sig.S)
	if !ecdsa.Verify(pub, digest[:], r, s) {
		return hashing.Address{}, ErrBadSignature
	}
	return hashing.AccountAddress(sig.PubKey), nil
}

func encodePub(pub *ecdsa.PublicKey) []byte {
	return elliptic.MarshalCompressed(elliptic.P256(), pub.X, pub.Y)
}

func decodePub(enc []byte) (*ecdsa.PublicKey, error) {
	x, y := elliptic.UnmarshalCompressed(elliptic.P256(), enc)
	if x == nil {
		return nil, ErrShortKey
	}
	return &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}, nil
}
