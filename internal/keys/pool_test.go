package keys

import (
	"runtime"
	"sync"
	"testing"

	"scmove/internal/hashing"
)

func signedBatch(t *testing.T, n int) ([]hashing.Hash, []Signature) {
	t.Helper()
	digests := make([]hashing.Hash, n)
	sigs := make([]Signature, n)
	for i := 0; i < n; i++ {
		kp := Deterministic(uint64(i + 1))
		digests[i] = hashing.Sum([]byte{byte(i), byte(i >> 8)})
		sig, err := kp.Sign(digests[i])
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = sig
	}
	return digests, sigs
}

func TestVerifyBatchMatchesSerial(t *testing.T) {
	digests, sigs := signedBatch(t, 9)
	// Corrupt one signature and mismatch one digest so the error slots are
	// exercised alongside the happy path.
	sigs[3].R = []byte{1, 2, 3}
	digests[6] = hashing.Sum([]byte("other content"))

	wantAddrs := make([]hashing.Address, len(sigs))
	wantErrs := make([]error, len(sigs))
	for i := range sigs {
		wantAddrs[i], wantErrs[i] = sigs[i].Verify(digests[i])
	}

	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		addrs, errs := VerifyBatch(digests, sigs)
		runtime.GOMAXPROCS(prev)
		for i := range sigs {
			if addrs[i] != wantAddrs[i] {
				t.Fatalf("GOMAXPROCS=%d index %d: address %s, want %s", procs, i, addrs[i], wantAddrs[i])
			}
			if (errs[i] == nil) != (wantErrs[i] == nil) {
				t.Fatalf("GOMAXPROCS=%d index %d: error %v, want %v", procs, i, errs[i], wantErrs[i])
			}
		}
	}
}

func TestVerifyBatchEmptyAndMismatch(t *testing.T) {
	addrs, errs := VerifyBatch(nil, nil)
	if len(addrs) != 0 || len(errs) != 0 {
		t.Fatal("empty batch must return empty results")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	VerifyBatch(make([]hashing.Hash, 2), make([]Signature, 1))
}

func TestPoolRunsAllJobs(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var mu sync.Mutex
	seen := make(map[int]bool)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		i := i
		wg.Add(1)
		p.Go(func() {
			defer wg.Done()
			mu.Lock()
			seen[i] = true
			mu.Unlock()
		})
	}
	wg.Wait()
	if len(seen) != 50 {
		t.Fatalf("ran %d of 50 jobs", len(seen))
	}
}
