package keys

import (
	"errors"
	"testing"

	"scmove/internal/hashing"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	kp, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	digest := hashing.Sum([]byte("tx payload"))
	sig, err := kp.Sign(digest)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sig.Verify(digest)
	if err != nil {
		t.Fatal(err)
	}
	if addr != kp.Address() {
		t.Fatalf("verified signer %s != key address %s", addr, kp.Address())
	}
}

func TestVerifyRejectsTamperedDigest(t *testing.T) {
	kp := Deterministic(1)
	sig, err := kp.Sign(hashing.Sum([]byte("original")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sig.Verify(hashing.Sum([]byte("tampered"))); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestVerifyRejectsSwappedKey(t *testing.T) {
	digest := hashing.Sum([]byte("msg"))
	sig, err := Deterministic(1).Sign(digest)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the embedded public key with another account's: the signature
	// must no longer verify, so an attacker cannot claim another identity.
	sig.PubKey = Deterministic(2).PublicKey()
	if _, err := sig.Verify(digest); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestVerifyRejectsGarbageKey(t *testing.T) {
	sig := Signature{PubKey: []byte{1, 2, 3}}
	if _, err := sig.Verify(hashing.Hash{}); !errors.Is(err, ErrShortKey) {
		t.Fatalf("want ErrShortKey, got %v", err)
	}
}

func TestDeterministicIsStable(t *testing.T) {
	a := Deterministic(42)
	b := Deterministic(42)
	if a.Address() != b.Address() {
		t.Fatal("same seed must produce the same key")
	}
	if a.Address() == Deterministic(43).Address() {
		t.Fatal("different seeds must produce different keys")
	}
}

func TestAddressMatchesSignerAddress(t *testing.T) {
	kp := Deterministic(7)
	sig, err := kp.Sign(hashing.Sum([]byte("m")))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sig.SignerAddress()
	if err != nil {
		t.Fatal(err)
	}
	if addr != kp.Address() {
		t.Fatal("SignerAddress must match the key pair address")
	}
}

func TestDeterministicKeysSignCorrectly(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		kp := Deterministic(seed)
		digest := hashing.Sum([]byte{byte(seed)})
		sig, err := kp.Sign(digest)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := sig.Verify(digest); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
