package keys

import (
	"runtime"
	"sync"

	"scmove/internal/hashing"
)

// Pool is a bounded worker pool for ECDSA work (signing and verification).
// P-256 operations cost tens of microseconds each and dominate the CPU
// profile of every transaction-heavy experiment, so batch callers fan the
// per-transaction work out to a fixed set of workers instead of running it
// inline on the (otherwise single-threaded) simulation loop.
//
// A Pool only decides *where* crypto runs, never *what* it computes:
// results are always gathered in input order, so any code path is
// bit-identical at every GOMAXPROCS setting.
type Pool struct {
	jobs chan func()
	once sync.Once
}

// NewPool returns a pool with the given number of workers; workers <= 0
// sizes it to GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{jobs: make(chan func(), workers)}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for job := range p.jobs {
		job()
	}
}

// Go runs job on a pool worker. It blocks when every worker is busy and the
// small submission buffer is full — backpressure, not unbounded queueing.
func (p *Pool) Go(job func()) {
	p.jobs <- job
}

// Close stops the workers once queued jobs drain. A closed pool must not be
// used again.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.jobs) })
}

// sharedPool is the process-wide default pool, created on first use and
// never closed (workers idle on an empty channel between batches).
var (
	sharedPoolOnce sync.Once
	sharedPool     *Pool
)

// SharedPool returns the process-wide crypto worker pool, sized to
// GOMAXPROCS at first use. Batch verification, block pre-recovery, and
// deferred client signing all share it, so saturating one phase cannot
// oversubscribe the machine.
func SharedPool() *Pool {
	sharedPoolOnce.Do(func() { sharedPool = NewPool(0) })
	return sharedPool
}

// VerifyBatch verifies sigs[i] over digests[i] on the shared worker pool and
// returns the recovered signer addresses in input order, with a per-index
// error for every signature that failed. len(sigs) must equal len(digests).
//
// Order and content of the results are independent of parallelism: each
// index is computed in isolation and written to its own slot.
func VerifyBatch(digests []hashing.Hash, sigs []Signature) ([]hashing.Address, []error) {
	if len(digests) != len(sigs) {
		panic("keys: VerifyBatch length mismatch")
	}
	addrs := make([]hashing.Address, len(sigs))
	errs := make([]error, len(sigs))
	if len(sigs) == 0 {
		return addrs, errs
	}
	// A single-entry batch (or a single-CPU box) gains nothing from the
	// pool handoff; verify inline.
	if len(sigs) == 1 || runtime.GOMAXPROCS(0) == 1 {
		for i := range sigs {
			addrs[i], errs[i] = sigs[i].Verify(digests[i])
		}
		return addrs, errs
	}
	pool := SharedPool()
	var wg sync.WaitGroup
	wg.Add(len(sigs))
	for i := range sigs {
		i := i
		pool.Go(func() {
			defer wg.Done()
			addrs[i], errs[i] = sigs[i].Verify(digests[i])
		})
	}
	wg.Wait()
	return addrs, errs
}
