// Package trie defines the authenticated key-value tree abstraction shared
// by every blockchain in the system, together with the Merkle-proof contract
// that the Move protocol relies on (paper §II, Fig. 1).
//
// Two implementations exist: internal/mpt, a hex-nibble Merkle Patricia trie
// standing in for Ethereum's state trie, and internal/iavl, a canonical
// Merkle search tree standing in for Tendermint's IAVL tree. Both are
// *canonical*: the root hash is a pure function of the key-value contents,
// independent of the order of insertions and deletions. Move2 depends on
// this property for its completeness check — the target chain rebuilds the
// contract's storage tree from the proof payload and compares roots, which
// detects any omitted or injected storage entry (§III-E).
package trie

import (
	"errors"

	"scmove/internal/hashing"
)

// Kind identifies a state-tree implementation. Chains advertise their kind
// so that peers know how to verify proofs against their state roots.
type Kind uint8

// Supported tree kinds.
const (
	// KindMPT is the hex-nibble Merkle Patricia trie (Ethereum-like chains).
	KindMPT Kind = iota + 1
	// KindIAVL is the canonical Merkle search tree (Burrow-like chains).
	KindIAVL
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindMPT:
		return "mpt"
	case KindIAVL:
		return "iavl"
	default:
		return "unknown"
	}
}

// Errors shared by tree implementations.
var (
	// ErrInvalidProof reports a proof that fails hash verification or is
	// structurally malformed.
	ErrInvalidProof = errors.New("trie: invalid merkle proof")
	// ErrKeyLength reports a key whose length differs from the tree's fixed
	// key length. Fixed-length keys keep both tree shapes canonical.
	ErrKeyLength = errors.New("trie: key length does not match tree key length")
)

// Tree is an authenticated key-value store with membership proofs.
//
// All keys in one tree must have the same length (set at construction).
// Values must be non-empty; Delete removes a key entirely.
type Tree interface {
	// Get returns the value stored under key and whether it exists.
	Get(key []byte) ([]byte, bool)
	// Set stores value under key, replacing any previous value. It returns
	// ErrKeyLength if the key has the wrong length and panics if value is
	// empty (an invariant violation: use Delete to remove keys).
	Set(key, value []byte) error
	// Delete removes key. Deleting an absent key is a no-op.
	Delete(key []byte) error
	// RootHash returns the Merkle root commitment over the full contents.
	RootHash() hashing.Hash
	// Prove returns an encoded membership proof for key, or ErrInvalidProof
	// if the key is absent.
	Prove(key []byte) ([]byte, error)
	// Iterate visits all entries in ascending key order until fn returns
	// false. The callback must not mutate the tree.
	Iterate(fn func(key, value []byte) bool)
	// Len returns the number of entries.
	Len() int
}

// Runner schedules independent closures onto a bounded set of workers; Go
// may block for backpressure but must eventually run the closure.
// keys.Pool satisfies it, so state commits share the crypto worker pool
// instead of spawning their own.
type Runner interface {
	Go(func())
}

// ParallelHasher is implemented by trees that can fan the hashing of
// disjoint dirty subtrees out to a Runner. HashParallel(nil) and
// HashParallel(r) must both return exactly RootHash()'s value — both tree
// kinds here are canonical, and a node hash is a pure function of subtree
// contents, so where it is computed cannot change what it is.
type ParallelHasher interface {
	HashParallel(r Runner) hashing.Hash
}

// SharedReader is implemented by trees whose point reads may run
// concurrently with each other, as long as no writer runs at the same time.
// The speculative execution lanes of the parallel block executor read one
// frozen tree from many goroutines through this interface. Both tree kinds
// here implement it: the MPT routes around its reusable scratch buffers and
// the IAVL read path is a pure traversal already.
type SharedReader interface {
	// GetShared behaves exactly like Tree.Get but must not mutate the tree
	// or any shared scratch state.
	GetShared(key []byte) ([]byte, bool)
}

// ProvenEntry is the result of verifying a membership proof: the key/value
// pair the proof commits to under the given root.
type ProvenEntry struct {
	Key   []byte
	Value []byte
}
