package bench

import (
	"runtime"
	"strings"
	"testing"
)

// byzantineFingerprint runs the Byzantine cell once and reduces it to its
// simulated-results fingerprint.
func byzantineFingerprint(t *testing.T, metricsOn bool) (*ByzantineResult, string) {
	t.Helper()
	cfg := DefaultByzantineConfig()
	cfg.Moves = 2
	cfg.Metrics = metricsOn
	res, err := RunByzantine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, res.Fingerprint()
}

// TestByzantineCellInvariants exercises the full adversarial scenario once:
// corruption on every path, an equivocating validator, replayed and forged
// Move2s, and a forged confirmed header. RunByzantine itself enforces the
// safety invariants (all rejections, evidence recorded, consensus alive);
// the test pins the shape of the result on top.
func TestByzantineCellInvariants(t *testing.T) {
	res, fp := byzantineFingerprint(t, false)
	if got := len(res.Latency); got != 2 {
		t.Fatalf("completed moves = %d, want 2", got)
	}
	for i, d := range res.Latency {
		if d <= 0 {
			t.Fatalf("move %d: non-positive latency %s", i+1, d)
		}
	}
	if res.HostileRejected != 4 {
		t.Fatalf("hostile rejections = %d, want 4 (replay+forgery per move)", res.HostileRejected)
	}
	if len(res.Roots) != 2 {
		t.Fatalf("state roots = %d chains, want 2", len(res.Roots))
	}
	for _, name := range []string{"byzantine.corrupted", "byzantine.equivocation.vote", "byzantine.header.conflict"} {
		if !strings.Contains(fp, name+"=") {
			t.Fatalf("fingerprint missing %s:\n%s", name, fp)
		}
	}
	out := res.String()
	for _, want := range []string{"Byzantine chaos", "Hostile Move2 submissions rejected: 4", "Final state roots"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered result missing %q:\n%s", want, out)
		}
	}
}

// TestByzantineDeterminism is the determinism contract under active
// corruption: the same seed must produce byte-identical latencies, final
// state roots, and fault counters at GOMAXPROCS 1, 2, and the host's CPU
// count, with the observability layer on or off. Corruption decisions and
// tamper bytes all come from seeded RNGs keyed by event index, so any
// divergence means a fault drew from a nondeterministic source.
func TestByzantineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-GOMAXPROCS byzantine runs are slow in -short mode")
	}
	procs := []int{1, 2, runtime.NumCPU()}
	baseline := ""
	for _, p := range procs {
		prev := runtime.GOMAXPROCS(p)
		_, off := byzantineFingerprint(t, false)
		_, on := byzantineFingerprint(t, true)
		runtime.GOMAXPROCS(prev)
		if off != on {
			t.Fatalf("GOMAXPROCS=%d: enabling metrics changed simulated results\noff:\n%son:\n%s", p, off, on)
		}
		if baseline == "" {
			baseline = off
		} else if off != baseline {
			t.Fatalf("GOMAXPROCS=%d: results diverged from GOMAXPROCS=%d\nbase:\n%sgot:\n%s",
				p, procs[0], baseline, off)
		}
	}
}
