package bench

import (
	"reflect"
	"runtime"
	"testing"
)

// TestFig6GridParallelDeterminism pins the parallel harness to sequential
// semantics: the same grid run on a single CPU and with full parallelism
// must produce identical cells in identical order. Each cell owns its
// universe and seeds, so the only way this can fail is cells sharing state
// or the assembly order depending on completion order.
func TestFig6GridParallelDeterminism(t *testing.T) {
	shards := []int{1, 2}
	rates := []float64{0, 0.10}

	prev := runtime.GOMAXPROCS(1)
	serial, err := RunFig6Grid(ScaleCI, shards, rates)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunFig6Grid(ScaleCI, shards, rates)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel grid diverged from serial run:\nserial:   %+v\nparallel: %+v",
			serial.Cells, parallel.Cells)
	}
}

// TestRunCellsOrderAndErrors checks the harness itself: results are
// assembled by input index, and any cell error fails the whole run.
func TestRunCellsOrderAndErrors(t *testing.T) {
	out, err := runCells(8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}

	_, err = runCells(4, func(i int) (int, error) {
		if i == 2 {
			return 0, errTestCell
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("cell error was swallowed")
	}
}

var errTestCell = errForTest("cell failed")

type errForTest string

func (e errForTest) Error() string { return string(e) }
