package bench

import (
	"fmt"
	"time"

	"scmove/internal/contracts"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/u256"
)

// GranularityRow compares moving one monolithic contract holding N users'
// state against the per-user contract design (DESIGN.md ablation 2; the
// paper's introduction argues for per-user granularity).
type GranularityRow struct {
	Users uint64
	// MonolithicGas is the Move2 gas of one contract holding all N entries.
	MonolithicGas uint64
	// PerUserGas is the Move2 gas of moving a single user's contract — the
	// cost actually paid when only one user migrates.
	PerUserGas uint64
}

// RunAblationGranularity measures both designs for growing user counts by
// moving Store contracts from the Burrow-like to the Ethereum-like chain.
func RunAblationGranularity(userCounts []uint64) ([]GranularityRow, error) {
	var perUserGas uint64
	rows := make([]GranularityRow, 0, len(userCounts))
	moveGas := func(slots uint64) (uint64, error) {
		u, err := ibcUniverse()
		if err != nil {
			return 0, err
		}
		u.Start()
		cl := u.Client(0)
		store, err := u.MustDeploy(cl, u.Chain(2), contracts.StoreName,
			contracts.StoreConstructorArgs(cl.Address(), slots), u256.Zero(), 10*time.Minute)
		if err != nil {
			return 0, err
		}
		res, err := u.MoveAndWait(cl, 2, 1, store, 30*time.Minute)
		if err != nil {
			return 0, err
		}
		return res.Move2Gas, nil
	}
	var err error
	if perUserGas, err = moveGas(1); err != nil {
		return nil, fmt.Errorf("granularity per-user: %w", err)
	}
	for _, n := range userCounts {
		mono, err := moveGas(n)
		if err != nil {
			return nil, fmt.Errorf("granularity n=%d: %w", n, err)
		}
		rows = append(rows, GranularityRow{Users: n, MonolithicGas: mono, PerUserGas: perUserGas})
	}
	return rows, nil
}

// GranularityTable renders the ablation.
func GranularityTable(rows []GranularityRow) string {
	tbl := metrics.NewTable("users", "monolithic move2 gas", "per-user move2 gas", "ratio")
	for _, r := range rows {
		tbl.AddRow(r.Users, r.MonolithicGas, r.PerUserGas,
			fmt.Sprintf("%.1fx", float64(r.MonolithicGas)/float64(r.PerUserGas)))
	}
	return "Ablation: contract granularity (per-user contracts vs one map)\n" + tbl.String()
}

// TwoPCResult compares the Move protocol's two-step design against a
// 2PC-style atomic commit that coordinates both chains (DESIGN.md ablation
// 1; the paper's §III-B argues against 2PC coordination).
type TwoPCResult struct {
	// MoveLatency is the end-to-end Move1 → Move2 time.
	MoveLatency time.Duration
	// TwoPCLatency is the simulated atomic commit: a prepare transaction on
	// both chains (wait for both), then a commit transaction on both (wait
	// for both) — four cross-coordinated inclusions.
	TwoPCLatency time.Duration
}

// RunAblation2PC measures both protocols between the Burrow-like and
// Ethereum-like chains.
//
// The 2PC baseline is generous to 2PC: it charges no vote-exchange rounds
// between the two validator sets, only the two lock-step transaction
// inclusions per phase that any atomic-commit embedding needs. Even so,
// the slower chain gates both phases of 2PC, while the Move protocol pays
// the slow chain's confirmation depth only once.
func RunAblation2PC() (*TwoPCResult, error) {
	u, err := ibcUniverse()
	if err != nil {
		return nil, err
	}
	u.Start()
	cl := u.Client(0)
	res := &TwoPCResult{}

	// Move protocol: Store 1 from Burrow to Ethereum.
	store, err := u.MustDeploy(cl, u.Chain(2), contracts.StoreName,
		contracts.StoreConstructorArgs(cl.Address(), 1), u256.Zero(), 10*time.Minute)
	if err != nil {
		return nil, err
	}
	moveRes, err := u.MoveAndWait(cl, 2, 1, store, 30*time.Minute)
	if err != nil {
		return nil, err
	}
	res.MoveLatency = moveRes.Total()

	// 2PC baseline: phase transactions on both chains, barrier between
	// phases. Stand-in state writes exercise the same commit path. The
	// participants must see each phase final before acting, so each phase
	// waits out both chains' confirmation depths (p blocks each).
	targets := map[hashing.ChainID]hashing.Address{}
	for _, id := range u.ChainIDs() {
		addr, err := u.MustDeploy(cl, u.Chain(id), contracts.StoreName,
			contracts.StoreConstructorArgs(cl.Address(), 1), u256.Zero(), 10*time.Minute)
		if err != nil {
			return nil, err
		}
		targets[id] = addr
	}
	start := u.Sched.Now()
	for phase := byte(1); phase <= 2; phase++ {
		type pending struct {
			id     hashing.ChainID
			height uint64
		}
		var waits []pending
		for _, id := range u.ChainIDs() {
			var v evm.Word
			v[31] = phase
			rec, err := u.MustCall(cl, u.Chain(id), targets[id],
				contracts.EncodeCall("set", contracts.ArgUint(0), contracts.ArgWord(v)),
				u256.Zero(), 30*time.Minute)
			if err != nil {
				return nil, fmt.Errorf("2pc phase %d on %s: %w", phase, id, err)
			}
			h, _ := u.Chain(id).TxHeight(rec.TxID)
			waits = append(waits, pending{id: id, height: h})
		}
		// Barrier: both inclusions must be p blocks deep before the next
		// phase (participants act only on finalized outcomes).
		ok := u.RunUntil(func() bool {
			for _, w := range waits {
				c := u.Chain(w.id)
				if c.Head().Height < w.height+c.Config().ConfirmationDepth {
					return false
				}
			}
			return true
		}, time.Hour)
		if !ok {
			return nil, fmt.Errorf("2pc phase %d did not finalize", phase)
		}
	}
	res.TwoPCLatency = u.Sched.Now() - start
	return res, nil
}

// String renders the comparison.
func (r *TwoPCResult) String() string {
	return fmt.Sprintf("Ablation: Move protocol vs 2PC-style atomic commit\n"+
		"  move (Move1 + p-wait + Move2): %s\n"+
		"  2PC (prepare both + finalize, commit both + finalize): %s\n",
		fmtDur(r.MoveLatency), fmtDur(r.TwoPCLatency))
}
