package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"scmove/internal/chain"
	"scmove/internal/contracts"
	"scmove/internal/core"
	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/relay"
	"scmove/internal/simnet"
	"scmove/internal/types"
	"scmove/internal/u256"
	"scmove/internal/universe"
)

// ByzantineConfig tunes the Byzantine chaos cell: cross-chain moves on the
// paper's IBC deployment while every message path corrupts bytes in flight,
// a validator equivocates, and an adversarial client replays and forges
// Move2 payloads.
type ByzantineConfig struct {
	// CorruptRate is the per-message probability of in-flight tampering
	// (bit flips, truncation, extension) on the WAN, submission, and
	// header-relay paths alike.
	CorruptRate float64
	// DropRate / DupRate add message loss and duplication on every path.
	DropRate float64
	DupRate  float64
	// Equivocators is how many validators of each BFT cluster send
	// conflicting proposals and votes (keep it within the fault budget f).
	Equivocators int
	// Seed drives every fault RNG; the same seed reproduces the run exactly.
	Seed int64
	// Moves is how many back-and-forth moves to drive; after each one the
	// adversary replays the genuine Move2 payload and submits a forged
	// variant against the target chain.
	Moves int
	// Metrics / Trace switch on the observability registry.
	Metrics bool
	Trace   bool
}

// DefaultByzantineConfig is the headline Byzantine scenario: 5% corruption
// and 5% drops everywhere, one equivocating validator, an adversary
// replaying and forging every move's proof.
func DefaultByzantineConfig() ByzantineConfig {
	return ByzantineConfig{
		CorruptRate:  0.05,
		DropRate:     0.05,
		DupRate:      0.05,
		Equivocators: 1,
		Seed:         4242,
		Moves:        3,
	}
}

// ByzantineResult reports one Byzantine chaos run.
type ByzantineResult struct {
	Config  ByzantineConfig
	Latency []time.Duration
	// HostileRejected counts adversarial Move2 submissions (replays of the
	// genuine payload plus forged-proof variants) the target chain rejected.
	// RunByzantine fails if any of them is accepted, so on success this is
	// exactly 2×Moves.
	HostileRejected int
	// Roots is every chain's final state root, in configuration order.
	Roots []string
	// Counters is the shared fault/recovery/byzantine counter table.
	Counters map[string]uint64
	counters *metrics.Counters
	// Registry holds stage histograms and gauges; nil unless Metrics/Trace.
	Registry *metrics.Registry
}

// RunByzantine drives cfg.Moves moves of a Store contract between the two
// chains of the paper's deployment while the network corrupts bytes, a
// validator equivocates, and an adversarial client attacks the Move
// protocol, then checks the run's safety invariants:
//
//   - every genuine move completes despite the hostile environment;
//   - every replayed and every forged Move2 is rejected;
//   - equivocation is detected (evidence counters move) yet never stalls
//     consensus;
//   - corrupted messages are observed (corruption counters move) and every
//     rejection is accounted;
//   - a forged conflicting header for a confirmed height is ignored by the
//     light client (the header-conflict counter moves).
//
// Any violation returns an error; the caller gets a result whose
// fingerprint is byte-identical across GOMAXPROCS and same-seed re-runs.
func RunByzantine(cfg ByzantineConfig) (*ByzantineResult, error) {
	if cfg.Moves <= 0 {
		cfg.Moves = 1
	}
	ucfg := universe.DefaultConfig(2)
	ucfg.Metrics = cfg.Metrics || cfg.Trace
	ucfg.Trace = cfg.Trace
	faults := simnet.LinkFaults{
		DropRate:    cfg.DropRate,
		DupRate:     cfg.DupRate,
		CorruptRate: cfg.CorruptRate,
		JitterFrac:  0.1,
	}
	ucfg.Chaos = &universe.ChaosConfig{
		WAN:          faults,
		Submit:       faults,
		HeaderRelay:  faults,
		HeaderWindow: 64,
		Seed:         cfg.Seed,
		Equivocators: cfg.Equivocators,
	}
	u, err := universe.New(ucfg)
	if err != nil {
		return nil, err
	}
	u.Start()
	cl, adv := u.Client(0), u.Client(1)

	store, err := u.MustDeploy(cl, u.Chain(2), contracts.StoreName,
		contracts.StoreConstructorArgs(cl.Address(), 10), u256.Zero(), 30*time.Minute)
	if err != nil {
		return nil, fmt.Errorf("byzantine deploy: %w", err)
	}

	res := &ByzantineResult{Config: cfg, counters: u.Counters(), Registry: u.Metrics()}
	from, to := hashing.ChainID(2), hashing.ChainID(1)
	for i := 0; i < cfg.Moves; i++ {
		m := u.Mover(from, to)
		var result *relay.MoveResult
		m.Move(cl, store, core.MoveToInput(to), func(r *relay.MoveResult) { result = r })
		if !u.RunUntil(func() bool { return result != nil }, 2*time.Hour) {
			return nil, fmt.Errorf("byzantine move %d (%s->%s): did not finish", i+1, from, to)
		}
		if result.Err != nil {
			return nil, fmt.Errorf("byzantine move %d (%s->%s): %w", i+1, from, to, result.Err)
		}
		res.Latency = append(res.Latency, result.Total())

		// The genuine move is done; now attack its proof. The journal holds
		// the exact payload that just recreated the contract on the target.
		entry, ok := m.Journal().Entry(store)
		if !ok || entry.Payload == nil {
			return nil, fmt.Errorf("byzantine move %d: journal lost the proof payload", i+1)
		}
		// Replay the genuine payload verbatim: the target's move-nonce
		// check (Fig. 2) must reject the duplicate recreation.
		if err := submitHostileMove2(u, adv, u.Chain(to), entry.Payload, "replayed"); err != nil {
			return nil, fmt.Errorf("byzantine move %d: %w", i+1, err)
		}
		res.HostileRejected++
		// Forge the proof: same payload with one proof byte flipped must
		// fail Merkle verification against the trusted root.
		forged := *entry.Payload
		forged.AccountProof = append([]byte(nil), entry.Payload.AccountProof...)
		if len(forged.AccountProof) == 0 {
			return nil, fmt.Errorf("byzantine move %d: empty account proof", i+1)
		}
		forged.AccountProof[len(forged.AccountProof)/2] ^= 0x40
		if err := submitHostileMove2(u, adv, u.Chain(to), &forged, "forged"); err != nil {
			return nil, fmt.Errorf("byzantine move %d: %w", i+1, err)
		}
		res.HostileRejected++

		from, to = to, from
	}

	// A Byzantine relayer re-sends an old header of the PoW chain with a
	// forged state root for a long-confirmed height: the BFT chain's light
	// client must keep the root it already vouched for.
	if err := injectConflictingHeader(u); err != nil {
		return nil, err
	}

	res.Counters = u.Counters().Snapshot()
	for _, id := range u.ChainIDs() {
		res.Roots = append(res.Roots, fmt.Sprintf("%s=%s", id, u.Chain(id).Head().StateRoot))
	}

	// Safety invariants of the cell.
	if cfg.CorruptRate > 0 && res.Counters["byzantine.corrupted"] == 0 {
		return nil, fmt.Errorf("byzantine: corruption enabled but no message was ever corrupted")
	}
	if cfg.Equivocators > 0 && res.Counters["byzantine.equivocation.vote"] == 0 {
		return nil, fmt.Errorf("byzantine: equivocating validator produced no vote evidence")
	}
	if res.Counters["byzantine.header.conflict"] == 0 {
		return nil, fmt.Errorf("byzantine: forged confirmed header raised no conflict")
	}
	if loc := u.Chain(1).StateDB().GetLocation(store); cfg.Moves%2 == 1 && loc != 1 {
		return nil, fmt.Errorf("byzantine: contract location = %s, want 1", loc)
	}
	return res, nil
}

// submitHostileMove2 signs the payload with the adversary's key and submits
// it until a receipt lands (resubmitting through the lossy link), then
// demands rejection.
func submitHostileMove2(u *universe.Universe, adv *relay.Client, target *chain.Chain,
	payload *types.Move2Payload, kind string) error {
	tx, err := adv.SignedMove2(target, payload)
	if err != nil {
		return fmt.Errorf("sign %s move2: %w", kind, err)
	}
	id := tx.ID()
	deadline := u.Sched.Now() + 30*time.Minute
	for {
		adv.SubmitSigned(target, tx)
		ok := u.RunUntil(func() bool {
			_, found := target.Receipt(id)
			return found
		}, 30*time.Second)
		if ok {
			break
		}
		if u.Sched.Now() >= deadline {
			return fmt.Errorf("%s move2 never got a receipt", kind)
		}
	}
	rec, _ := target.Receipt(id)
	if rec.Succeeded() {
		return fmt.Errorf("%s move2 was ACCEPTED by %s", kind, target.ChainID())
	}
	return nil
}

// injectConflictingHeader forges a conflicting header for a confirmed PoW
// height in the BFT chain's light client and verifies it is ignored.
func injectConflictingHeader(u *universe.Universe) error {
	dst := u.Chain(2) // its light client tracks chain 1
	hs := dst.Headers()
	head := hs.Head(1)
	var target uint64
	for h := head; h > 0; h-- {
		if hs.ConfirmedAt(1, h) {
			target = h
			break
		}
	}
	if target == 0 {
		return fmt.Errorf("byzantine: no confirmed PoW height to attack")
	}
	genuine, ok := u.Chain(1).HeaderAt(target)
	if !ok {
		return fmt.Errorf("byzantine: source chain lost header %d", target)
	}
	root, err := hs.TrustedStateRoot(1, target)
	if err != nil {
		return fmt.Errorf("byzantine: confirmed height %d has no trusted root: %w", target, err)
	}
	forged := *genuine
	forged.StateRoot[0] ^= 0xFF
	if err := hs.Update(1, []*types.Header{&forged}, head); err != nil {
		return fmt.Errorf("byzantine: header injection errored: %w", err)
	}
	after, err := hs.TrustedStateRoot(1, target)
	if err != nil {
		return fmt.Errorf("byzantine: trusted root lost after forged header: %w", err)
	}
	if after != root {
		return fmt.Errorf("byzantine: forged header OVERWROTE a confirmed root")
	}
	return nil
}

// Fingerprint reduces the run to everything simulated — per-move latencies,
// final state roots, and the counter table minus the process-wide
// sendercache.* and host-strategy parallel.* counters — for byte-exact
// comparison across GOMAXPROCS settings and same-seed re-runs.
func (r *ByzantineResult) Fingerprint() string {
	var sb strings.Builder
	for i, d := range r.Latency {
		fmt.Fprintf(&sb, "move%d=%d\n", i+1, int64(d))
	}
	for _, root := range r.Roots {
		fmt.Fprintf(&sb, "root %s\n", root)
	}
	names := make([]string, 0, len(r.Counters))
	for name := range r.Counters {
		if !strings.HasPrefix(name, "sendercache.") && !strings.HasPrefix(name, "parallel.") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "%s=%d\n", name, r.Counters[name])
	}
	return sb.String()
}

// String renders the per-move latencies, attack tally, and counter table.
func (r *ByzantineResult) String() string {
	out := fmt.Sprintf("Byzantine chaos: %d moves under %.0f%% corruption + %.0f%% drop + %.0f%% duplication, %d equivocator(s) (seed %d)\n",
		r.Config.Moves, r.Config.CorruptRate*100, r.Config.DropRate*100,
		r.Config.DupRate*100, r.Config.Equivocators, r.Config.Seed)
	lat := metrics.NewTable("move", "total latency")
	for i, d := range r.Latency {
		lat.AddRow(fmt.Sprintf("%d", i+1), fmtDur(d))
	}
	out += lat.String()
	out += fmt.Sprintf("\nHostile Move2 submissions rejected: %d (every replay and forgery)\n", r.HostileRejected)
	out += "\nFinal state roots\n"
	for _, root := range r.Roots {
		out += "  " + root + "\n"
	}
	out += "\nFault, recovery, and byzantine counters\n"
	out += r.counters.String()
	if rep := r.Registry.Report(); rep != "" {
		out += "\n" + rep
	}
	return out
}
