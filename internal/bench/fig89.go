package bench

import (
	"fmt"
	"time"

	"scmove/internal/chain"
	"scmove/internal/contracts"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/relay"
	"scmove/internal/state"
	"scmove/internal/types"
	"scmove/internal/u256"
	"scmove/internal/universe"
)

// IBC application names (the five workloads of Figs. 8 and 9).
const (
	AppSCoin    = "SCoin"
	AppKitties  = "ScalableKitties"
	AppStore1   = "Store 1"
	AppStore10  = "Store 10"
	AppStore100 = "Store 100"
)

// IBCApps lists the applications in the paper's presentation order.
var IBCApps = []string{AppSCoin, AppKitties, AppStore1, AppStore10, AppStore100}

// Paper §VIII monetary conversion: 2 Gwei per gas, $144 per ETH
// (December 2019).
const (
	GweiPerGas = 2.0
	USDPerEth  = 144.0
)

// GasToUSD converts a gas amount to dollars at the paper's rates.
func GasToUSD(gas uint64) float64 {
	return float64(gas) * GweiPerGas * 1e-9 * USDPerEth
}

// IBCRow is one bar group of Figs. 8 and 9: one application moved in one
// direction, with the per-phase latency and gas breakdown.
type IBCRow struct {
	App  string
	From hashing.ChainID // 1 = Ethereum-like, 2 = Burrow-like
	To   hashing.ChainID

	// Latency phases (Fig. 8): Move1 inclusion, the p-block wait plus proof
	// acquisition, Move2 inclusion, and the application's follow-up
	// transactions on the target chain.
	Move1, WaitProof, Move2, Complete time.Duration

	// Gas phases (Fig. 9). CreateGas is the portion of Move2Gas plus
	// CompleteGas that pays for contract (re)creation — the hatched bars.
	Move1Gas, Move2Gas, CompleteGas, CreateGas uint64
}

// TotalLatency is the end-to-end operation time.
func (r IBCRow) TotalLatency() time.Duration {
	return r.Move1 + r.WaitProof + r.Move2 + r.Complete
}

// TotalGas sums all phases.
func (r IBCRow) TotalGas() uint64 { return r.Move1Gas + r.Move2Gas + r.CompleteGas }

// USD converts the total gas at the paper's rates.
func (r IBCRow) USD() float64 { return GasToUSD(r.TotalGas()) }

// DirectionName renders the paper's panel title.
func (r IBCRow) DirectionName() string {
	if r.From == 2 {
		return "Burrow to Ethereum"
	}
	return "Ethereum to Burrow"
}

// IBCResult reproduces Figs. 8 and 9.
type IBCResult struct {
	Rows []IBCRow
}

// Row returns the entry for an app and direction.
func (r *IBCResult) Row(app string, from hashing.ChainID) (IBCRow, bool) {
	for _, row := range r.Rows {
		if row.App == app && row.From == from {
			return row, true
		}
	}
	return IBCRow{}, false
}

// RunFig8And9 runs every application in both directions on fresh
// two-chain universes (chain 1 Ethereum-like PoW p=6, chain 2 Burrow-like
// BFT p=2, §VI).
func RunFig8And9() (*IBCResult, error) {
	res := &IBCResult{}
	for _, dir := range []struct{ from, to hashing.ChainID }{{2, 1}, {1, 2}} {
		for _, app := range IBCApps {
			row, err := runIBCApp(app, dir.from, dir.to)
			if err != nil {
				return nil, fmt.Errorf("ibc %s %s->%s: %w", app, dir.from, dir.to, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// ibcUniverse builds the two-chain deployment with the shared factories in
// genesis.
func ibcUniverse() (*universe.Universe, error) {
	owner := universe.ClientKey(0).Address()
	cfg := universe.DefaultConfig(2)
	cfg.ExtraGenesis = func(_ hashing.ChainID, db *state.DB) {
		contracts.GenesisSCoin(db, contracts.WellKnown("scoin-factory"), owner, u256.FromUint64(1_000_000))
		contracts.GenesisKittyRegistry(db, contracts.WellKnown("kitties-registry"), owner)
	}
	return universe.New(cfg)
}

// runIBCApp measures one application in one direction.
func runIBCApp(app string, from, to hashing.ChainID) (IBCRow, error) {
	u, err := ibcUniverse()
	if err != nil {
		return IBCRow{}, err
	}
	u.Start()
	cl := u.Client(0)
	src, dst := u.Chain(from), u.Chain(to)
	row := IBCRow{App: app, From: from, To: to}
	const setupTimeout = 10 * time.Minute

	// followUps runs the app's post-move transactions and accumulates their
	// latency and gas.
	var followUps func(contract hashing.Address) error

	var moved hashing.Address
	switch app {
	case AppStore1, AppStore10, AppStore100:
		n := map[string]uint64{AppStore1: 1, AppStore10: 10, AppStore100: 100}[app]
		moved, err = u.MustDeploy(cl, src, contracts.StoreName,
			contracts.StoreConstructorArgs(cl.Address(), n), u256.Zero(), setupTimeout)
		if err != nil {
			return row, err
		}
		followUps = func(hashing.Address) error { return nil }

	case AppSCoin:
		factory := contracts.WellKnown("scoin-factory")
		accA, err := newTokenAccount(u, cl, src, factory)
		if err != nil {
			return row, err
		}
		accB, err := newTokenAccount(u, cl, dst, factory)
		if err != nil {
			return row, err
		}
		moved = accA.addr
		followUps = func(contract hashing.Address) error {
			// Transfer one token to the account on the target chain.
			rec, err := u.MustCall(cl, dst, contract, contracts.EncodeCall("transfer",
				contracts.ArgAddress(accB.addr), contracts.ArgUint(accB.salt),
				contracts.ArgU256(u256.FromUint64(1))), u256.Zero(), setupTimeout)
			if err != nil {
				return err
			}
			row.CompleteGas += rec.GasUsed
			return nil
		}

	case AppKitties:
		registry := contracts.WellKnown("kitties-registry")
		catA, err := newPromoKitty(u, cl, src, registry, 1)
		if err != nil {
			return row, err
		}
		catB, err := newPromoKitty(u, cl, dst, registry, 2)
		if err != nil {
			return row, err
		}
		moved = catA.addr
		followUps = func(contract hashing.Address) error {
			// Breed the migrated cat with the resident one, then give birth
			// (two transactions, §VIII).
			rec, err := u.MustCall(cl, dst, registry, contracts.EncodeCall("breed",
				contracts.ArgAddress(contract), contracts.ArgUint(catA.salt),
				contracts.ArgAddress(catB.addr), contracts.ArgUint(catB.salt)), u256.Zero(), setupTimeout)
			if err != nil {
				return err
			}
			row.CompleteGas += rec.GasUsed
			pregnancy, ok := pregnancyOf(rec)
			if !ok {
				return fmt.Errorf("no pregnancy event")
			}
			rec, err = u.MustCall(cl, dst, registry,
				contracts.EncodeCall("giveBirth", contracts.ArgUint(pregnancy)), u256.Zero(), setupTimeout)
			if err != nil {
				return err
			}
			row.CompleteGas += rec.GasUsed
			// giveBirth deploys the child contract: creation gas again.
			row.CreateGas += createGasOf(dst.Config().Schedule, dst.Config().Natives,
				evm.NativeCode(contracts.KittyName))
			return nil
		}

	default:
		return row, fmt.Errorf("unknown app %q", app)
	}

	moveRes, err := u.MoveAndWait(cl, from, to, moved, 30*time.Minute)
	if err != nil {
		return row, err
	}
	row.Move1 = moveRes.Move1Latency()
	row.WaitProof = moveRes.WaitProofLatency()
	row.Move2 = moveRes.Move2Latency()
	row.Move1Gas = moveRes.Move1Gas
	row.Move2Gas = moveRes.Move2Gas
	// The recreation inside Move2 pays creation gas (hatched bar share).
	row.CreateGas += createGasOf(dst.Config().Schedule, dst.Config().Natives,
		dst.StateDB().GetCode(moved))

	completeStart := u.Sched.Now()
	if err := followUps(moved); err != nil {
		return row, err
	}
	row.Complete = u.Sched.Now() - completeStart
	return row, nil
}

// createGasOf prices a contract creation under a chain's schedule.
func createGasOf(sched evm.Schedule, reg *evm.Registry, code []byte) uint64 {
	return sched.Create + sched.CodeByte*evm.BillableCodeSize(reg, code)
}

type namedAccount struct {
	addr hashing.Address
	salt uint64
}

// newTokenAccount creates an SAccount via the chain's token factory.
func newTokenAccount(u *universe.Universe, cl *relay.Client, c *chain.Chain,
	factory hashing.Address) (namedAccount, error) {
	rec, err := u.MustCall(cl, c, factory, contracts.EncodeCall("newAccount"),
		u256.Zero(), 10*time.Minute)
	if err != nil {
		return namedAccount{}, err
	}
	for _, log := range rec.Logs {
		if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicCreatedAccount {
			addr, salt, err := contracts.DecodeNewAccountResult(log.Data)
			if err != nil {
				return namedAccount{}, err
			}
			return namedAccount{addr: addr, salt: salt}, nil
		}
	}
	return namedAccount{}, fmt.Errorf("CreatedAccount event missing")
}

// newPromoKitty mints a promotional cat owned by the client.
func newPromoKitty(u *universe.Universe, cl *relay.Client, c *chain.Chain,
	registry hashing.Address, genes byte) (namedAccount, error) {
	var g evm.Word
	g[31] = genes
	rec, err := u.MustCall(cl, c, registry, contracts.EncodeCall("createPromoKitty",
		contracts.ArgWord(g), contracts.ArgAddress(cl.Address())), u256.Zero(), 10*time.Minute)
	if err != nil {
		return namedAccount{}, err
	}
	for i := len(rec.Logs) - 1; i >= 0; i-- {
		log := rec.Logs[i]
		if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicKittyCreated {
			addr, err := contracts.AsAddress(log.Data)
			if err != nil {
				return namedAccount{}, err
			}
			ret, err := c.StaticCall(cl.Address(), addr, contracts.EncodeCall("salt"))
			if err != nil {
				return namedAccount{}, err
			}
			return namedAccount{addr: addr, salt: u256.FromBytes(ret).Uint64()}, nil
		}
	}
	return namedAccount{}, fmt.Errorf("KittyCreated event missing")
}

// pregnancyOf extracts the pregnancy id from a breed receipt.
func pregnancyOf(rec *types.Receipt) (uint64, bool) {
	for _, log := range rec.Logs {
		if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicPregnant {
			return u256.FromBytes(log.Data).Uint64(), true
		}
	}
	return 0, false
}

// String renders the Fig. 8 and Fig. 9 tables.
func (r *IBCResult) String() string {
	out := "Fig. 8: IBC latency per phase (seconds)\n"
	lat := metrics.NewTable("direction", "app", "move1", "wait+proof", "move2", "complete", "total")
	for _, row := range r.Rows {
		lat.AddRow(row.DirectionName(), row.App, fmtDur(row.Move1), fmtDur(row.WaitProof),
			fmtDur(row.Move2), fmtDur(row.Complete), fmtDur(row.TotalLatency()))
	}
	out += lat.String()
	out += "\nFig. 9: IBC gas and monetary cost\n"
	gas := metrics.NewTable("direction", "app", "move1 gas", "move2 gas", "complete gas", "create share", "total Mgas", "price $")
	for _, row := range r.Rows {
		createShare := 0.0
		if row.TotalGas() > 0 {
			createShare = float64(row.CreateGas) / float64(row.TotalGas())
		}
		gas.AddRow(row.DirectionName(), row.App, row.Move1Gas, row.Move2Gas, row.CompleteGas,
			fmt.Sprintf("%.0f%%", createShare*100),
			fmt.Sprintf("%.2f", float64(row.TotalGas())/1e6),
			fmt.Sprintf("%.2f", row.USD()))
	}
	out += gas.String()
	return out
}
