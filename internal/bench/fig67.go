package bench

import (
	"fmt"
	"time"

	"scmove/internal/metrics"
	"scmove/internal/workload"
)

// Fig6Cell is one bar of Fig. 6: SCoin throughput for a shard count at a
// cross-shard transaction rate.
type Fig6Cell struct {
	Shards       int
	CrossPercent float64
	Throughput   float64
}

// Fig6Result reproduces Fig. 6.
type Fig6Result struct {
	Cells []Fig6Cell
}

// RunFig6 measures SCoin throughput for 1/2/4/8 shards at the paper's
// cross-shard rates (0, 1, 5, 10, 30 %).
func RunFig6(scale Scale) (*Fig6Result, error) {
	return RunFig6Grid(scale, []int{1, 2, 4, 8}, []float64{0, 0.01, 0.05, 0.10, 0.30})
}

// RunFig6Grid measures the given grid. Every (cross rate, shard count) pair
// is an independent simulation cell; cells run in parallel and the result
// keeps the sequential cell order (cross-rate major, shard count minor).
func RunFig6Grid(scale Scale, shardCounts []int, crossRates []float64) (*Fig6Result, error) {
	type cell struct {
		shards int
		cross  float64
	}
	var grid []cell
	for _, cross := range crossRates {
		for _, shards := range shardCounts {
			if shards == 1 && cross > 0 {
				// The paper shows the one-shard bar once as a reference.
				continue
			}
			grid = append(grid, cell{shards: shards, cross: cross})
		}
	}
	cells, err := runCells(len(grid), func(i int) (Fig6Cell, error) {
		c := grid[i]
		cfg := workload.SCoinConfig{
			Shards:            c.shards,
			ClientsPerShard:   scale.clients(250),
			ReceiversPerShard: 16,
			CrossFraction:     c.cross,
			Duration:          scale.window(5 * time.Minute),
			Seed:              11,
		}
		out, err := workload.RunSCoin(cfg)
		if err != nil {
			return Fig6Cell{}, fmt.Errorf("fig6 shards=%d cross=%v: %w", c.shards, c.cross, err)
		}
		return Fig6Cell{
			Shards:       c.shards,
			CrossPercent: c.cross * 100,
			Throughput:   out.Throughput,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig6Result{Cells: cells}, nil
}

// Throughput returns the cell value for a configuration.
func (r *Fig6Result) Throughput(shards int, crossPercent float64) (float64, bool) {
	for _, c := range r.Cells {
		if c.Shards == shards && c.CrossPercent == crossPercent {
			return c.Throughput, true
		}
	}
	return 0, false
}

// String renders the paper-style output.
func (r *Fig6Result) String() string {
	tbl := metrics.NewTable("cross-shard %", "shards", "tx/s")
	for _, c := range r.Cells {
		tbl.AddRow(fmt.Sprintf("%.0f", c.CrossPercent), c.Shards, fmtTPS(c.Throughput))
	}
	return "Fig. 6: SCoin throughput vs cross-shard rate\n" + tbl.String()
}

// Fig7Result reproduces Fig. 7: latency CDFs for 4 shards at 10 %
// cross-shard rate, in the conflict-free (right panel) and conflict/retry
// (left panel) modes.
type Fig7Result struct {
	Retries bool
	// CDFs for single-shard, cross-shard, and all operations.
	Single, Cross, Aggregated []metrics.CDFPoint
	// Means for the §VII-B quotes (≈7 s single, ≈34 s cross).
	SingleMean, CrossMean time.Duration
	// FractionAbove30s backs the paper's "around 10 % of the transactions
	// takes more than 30 seconds" observation.
	FractionAbove30s float64
	// RetryCounts histograms retries (conflict mode): the paper reports
	// 66 % of retried transactions retried once, ~1 % more than 3 times.
	RetryCounts map[int]int
}

// RunFig7 measures the latency CDF in the requested mode.
func RunFig7(scale Scale, retries bool) (*Fig7Result, error) {
	duration := scale.window(5 * time.Minute)
	if retries {
		// Conflicts are rare events; give the conflict mode a longer window
		// so the retry histogram has enough samples at small scales.
		duration *= 3
	}
	cfg := workload.SCoinConfig{
		Shards:            4,
		ClientsPerShard:   scale.clients(250),
		ReceiversPerShard: 16,
		CrossFraction:     0.10,
		Duration:          duration,
		Retries:           retries,
		Seed:              13,
	}
	out, err := workload.RunSCoin(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig7 retries=%v: %w", retries, err)
	}
	return &Fig7Result{
		Retries:          retries,
		Single:           out.Single.CDF(40),
		Cross:            out.Cross.CDF(40),
		Aggregated:       out.All.CDF(40),
		SingleMean:       out.Single.Mean(),
		CrossMean:        out.Cross.Mean(),
		FractionAbove30s: out.All.FractionAbove(30 * time.Second),
		RetryCounts:      out.RetryCounts,
	}, nil
}

// String renders the paper-style output.
func (r *Fig7Result) String() string {
	mode := "no conflicts (right panel)"
	if r.Retries {
		mode = "with conflicts and retries (left panel)"
	}
	out := fmt.Sprintf("Fig. 7: latency CDF, 4 shards, 10%% cross-shard, %s\n", mode)
	out += fmt.Sprintf("single-shard mean %s, cross-shard mean %s, >30s fraction %.2f\n",
		fmtDur(r.SingleMean), fmtDur(r.CrossMean), r.FractionAbove30s)
	out += cdfTable("aggregated", r.Aggregated)
	if r.Retries && len(r.RetryCounts) > 0 {
		out += "retries histogram:\n"
		total := 0
		for _, n := range r.RetryCounts {
			total += n
		}
		for k := 1; k <= 10; k++ {
			if n := r.RetryCounts[k]; n > 0 {
				out += fmt.Sprintf("  %dx: %d (%.0f%%)\n", k, n, 100*float64(n)/float64(total))
			}
		}
	}
	return out
}
