// Package bench regenerates every figure of the paper's evaluation:
//
//	Fig. 5 — ScalableKitties throughput vs shard count, and the 8-shard
//	         throughput timeline with per-shard starvation markers.
//	Fig. 6 — SCoin throughput vs cross-shard rate for 1/2/4/8 shards.
//	Fig. 7 — SCoin latency CDFs with and without conflicts/retries.
//	Fig. 8 — per-phase IBC latency for five applications, both directions.
//	Fig. 9 — per-phase IBC gas and monetary cost, both directions.
//
// plus the ablations called out in DESIGN.md (state granularity and a
// 2PC-style coordination baseline). Results carry the raw series so tests
// assert on shapes and the cmd tools print paper-style tables.
package bench

import (
	"fmt"
	"time"

	"scmove/internal/metrics"
)

// Scale shrinks experiment sizes uniformly: 1.0 is the paper-like default
// used by the CLI tools; tests use smaller scales. Scale affects client
// counts and trace sizes, never protocol parameters.
type Scale float64

// Common scales.
const (
	// ScaleFull approximates the paper's population sizes.
	ScaleFull Scale = 1.0
	// ScaleCI is small enough for continuous-integration runs.
	ScaleCI Scale = 0.08
)

func (s Scale) clients(base int) int {
	n := int(float64(base) * float64(s))
	if n < 4 {
		n = 4
	}
	return n
}

func (s Scale) count(base int) int {
	n := int(float64(base) * float64(s))
	if n < 10 {
		n = 10
	}
	return n
}

func (s Scale) window(base time.Duration) time.Duration {
	d := time.Duration(float64(base) * float64(s))
	if d < time.Minute {
		d = time.Minute
	}
	return d
}

// fmtDur renders a duration with one decimal of seconds.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fs", d.Seconds())
}

// fmtTPS renders a throughput value.
func fmtTPS(v float64) string { return fmt.Sprintf("%.1f", v) }

// cdfTable renders a CDF as a two-column table.
func cdfTable(name string, points []metrics.CDFPoint) string {
	tbl := metrics.NewTable("latency", name+" fraction")
	for _, p := range points {
		tbl.AddRow(fmtDur(p.Latency), fmt.Sprintf("%.2f", p.Fraction))
	}
	return tbl.String()
}
