package bench

import (
	"fmt"
	"time"

	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/workload"
)

// Fig5Row is one bar of Fig. 5 (left): ScalableKitties replay throughput
// for a shard count.
type Fig5Row struct {
	Shards int
	// Throughput averages over the whole replay, including the starved
	// tail of the DAG.
	Throughput float64
	// PeakTPS is the best sustained bucket — the plateau of Fig. 5 right,
	// reached while the dependency graph still has ready transactions.
	PeakTPS float64
	// CrossRate is the realized cross-blockchain transaction rate — the
	// paper quotes 5.86 / 7.93 / 7.85 % for 2/4/8 shards (§VII-B).
	CrossRate float64
	// Starved reports whether any shard ran out of ready transactions (the
	// reason the paper's 8-shard bar is below linear).
	Starved bool
}

// Fig5Result reproduces both panels of Fig. 5.
type Fig5Result struct {
	Rows []Fig5Row
	// Timeline is the aggregated throughput over time for the largest shard
	// count (Fig. 5 right).
	Timeline []metrics.Point
	// StarvedAt are the per-shard "limit reached" markers of Fig. 5 right.
	StarvedAt map[hashing.ChainID]time.Duration
}

// RunFig5 replays the synthetic CryptoKitties trace on 1, 2, 4 and 8
// shards.
func RunFig5(scale Scale) (*Fig5Result, error) {
	return RunFig5Shards(scale, []int{1, 2, 4, 8})
}

// RunFig5Shards replays the trace for the given shard counts. Each shard
// count is an independent simulation cell; cells run in parallel and the
// rows are assembled in shardCounts order.
func RunFig5Shards(scale Scale, shardCounts []int) (*Fig5Result, error) {
	outs, err := runCells(len(shardCounts), func(i int) (*workload.KittiesResult, error) {
		// The trace must be wide enough that the DAG, not the client
		// window, limits submission only at the largest shard counts (the
		// paper's 8-shard starvation): keep at least 2000 initial cats so
		// up to ~1000 independent breeds are in flight.
		promos := scale.count(8000)
		if promos < 2000 {
			promos = 2000
		}
		breeds := scale.count(16000)
		if breeds < 3000 {
			breeds = 3000
		}
		users := scale.clients(512)
		if users < 128 {
			users = 128
		}
		cfg := workload.KittiesConfig{
			Shards:           shardCounts[i],
			Users:            users,
			PromoCats:        promos,
			Breeds:           breeds,
			LocalityBias:     0.93,
			OutstandingLimit: 250,
			ShardCapacity:    175,
			Seed:             5,
			MaxDuration:      12 * time.Hour,
		}
		out, err := workload.RunKitties(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig5 shards=%d: %w", shardCounts[i], err)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	for i, out := range outs {
		peak := 0.0
		for _, p := range out.Timeline.Series() {
			if p.TPS > peak {
				peak = p.TPS
			}
		}
		res.Rows = append(res.Rows, Fig5Row{
			Shards:     shardCounts[i],
			Throughput: out.Throughput,
			PeakTPS:    peak,
			CrossRate:  out.CrossRate,
			Starved:    len(out.StarvedAt) > 0,
		})
		if i == len(outs)-1 {
			res.Timeline = out.Timeline.Series()
			res.StarvedAt = out.StarvedAt
		}
	}
	return res, nil
}

// String renders the paper-style output.
func (r *Fig5Result) String() string {
	tbl := metrics.NewTable("shards", "txs/s", "peak txs/s", "cross-chain %", "starved")
	for _, row := range r.Rows {
		tbl.AddRow(row.Shards, fmtTPS(row.Throughput), fmtTPS(row.PeakTPS),
			fmt.Sprintf("%.2f", row.CrossRate*100), row.Starved)
	}
	out := "Fig. 5 (left): ScalableKitties throughput vs shards\n" + tbl.String()
	if len(r.Timeline) > 0 {
		out += "\nFig. 5 (right): aggregated throughput over time (largest run)\n"
		tl := metrics.NewTable("t", "tx/s")
		for _, p := range r.Timeline {
			tl.AddRow(fmtDur(p.At), fmtTPS(p.TPS))
		}
		out += tl.String()
		if len(r.StarvedAt) > 0 {
			out += "limit-reached markers:\n"
			for id, at := range r.StarvedAt {
				out += fmt.Sprintf("  %s at %s\n", id, fmtDur(at))
			}
		}
	}
	return out
}
