package bench

import (
	"fmt"
	"time"

	"scmove/internal/contracts"
	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/simnet"
	"scmove/internal/u256"
	"scmove/internal/universe"
)

// ChaosConfig tunes the chaos experiment: a sequence of cross-chain moves
// on the paper's IBC deployment with fault injection on every message path.
type ChaosConfig struct {
	// DropRate / DupRate apply to the WAN, submission, and header-relay
	// paths alike.
	DropRate float64
	DupRate  float64
	// Seed drives every fault RNG; the same seed reproduces the run exactly.
	Seed int64
	// Moves is how many back-and-forth moves to drive (alternating
	// Burrow→Ethereum and back).
	Moves int
	// Metrics enables the observability registry: per-stage Move latency
	// histograms and queue-depth gauges, rendered next to the counters.
	// Simulated results are identical either way.
	Metrics bool
	// Trace additionally retains a structured span per protocol stage for a
	// JSONL dump (implies Metrics).
	Trace bool
}

// DefaultChaosConfig is the headline scenario of the chaos test suite: 20%
// drops and 20% duplicates everywhere.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{DropRate: 0.20, DupRate: 0.20, Seed: 12345, Moves: 4}
}

// ChaosResult reports the chaos run: per-move latency plus the shared fault
// and recovery counters.
type ChaosResult struct {
	Config   ChaosConfig
	Latency  []time.Duration
	Counters map[string]uint64
	counters *metrics.Counters
	// Registry holds the stage-latency histograms and gauges (and, with
	// Trace, the span dump); nil unless Config.Metrics/Trace.
	Registry *metrics.Registry
}

// RunChaos drives cfg.Moves sequential moves of a Store contract between
// the two chains while every link misbehaves, and returns the latency of
// each move together with the fault/retry counter table. Every move must
// complete — the relayer's retry machinery is the system under test.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	ucfg := universe.DefaultConfig(1)
	ucfg.Metrics = cfg.Metrics || cfg.Trace
	ucfg.Trace = cfg.Trace
	faults := simnet.LinkFaults{DropRate: cfg.DropRate, DupRate: cfg.DupRate, JitterFrac: 0.1}
	ucfg.Chaos = &universe.ChaosConfig{
		WAN:          faults,
		Submit:       faults,
		HeaderRelay:  faults,
		HeaderWindow: 64,
		Seed:         cfg.Seed,
	}
	u, err := universe.New(ucfg)
	if err != nil {
		return nil, err
	}
	u.Start()
	cl := u.Client(0)

	store, err := u.MustDeploy(cl, u.Chain(2), contracts.StoreName,
		contracts.StoreConstructorArgs(cl.Address(), 10), u256.Zero(), 30*time.Minute)
	if err != nil {
		return nil, fmt.Errorf("chaos deploy: %w", err)
	}

	res := &ChaosResult{Config: cfg, counters: u.Counters(), Registry: u.Metrics()}
	from, to := hashing.ChainID(2), hashing.ChainID(1)
	for i := 0; i < cfg.Moves; i++ {
		mv, err := u.MoveAndWait(cl, from, to, store, time.Hour)
		if err != nil {
			return nil, fmt.Errorf("chaos move %d (%s->%s): %w", i+1, from, to, err)
		}
		res.Latency = append(res.Latency, mv.Total())
		from, to = to, from
	}
	res.Counters = u.Counters().Snapshot()
	return res, nil
}

// DefaultChaosSweep is the fault-rate grid of the chaos suite: drops and
// duplicates ramped together from a clean network to the headline 20/20
// scenario, all on the same seed so the sweep is reproducible.
func DefaultChaosSweep() []ChaosConfig {
	var cfgs []ChaosConfig
	for _, rate := range []float64{0, 0.05, 0.10, 0.20} {
		cfgs = append(cfgs, ChaosConfig{DropRate: rate, DupRate: rate, Seed: 12345, Moves: 4})
	}
	return cfgs
}

// RunChaosSweep runs the given chaos configurations as independent parallel
// cells (each with its own universe and fault RNGs) and returns the results
// in cfgs order.
func RunChaosSweep(cfgs []ChaosConfig) ([]*ChaosResult, error) {
	return runCells(len(cfgs), func(i int) (*ChaosResult, error) {
		return RunChaos(cfgs[i])
	})
}

// String renders the per-move latencies and the counter table.
func (r *ChaosResult) String() string {
	out := fmt.Sprintf("Chaos: %d moves under %.0f%% drop + %.0f%% duplication (seed %d)\n",
		r.Config.Moves, r.Config.DropRate*100, r.Config.DupRate*100, r.Config.Seed)
	lat := metrics.NewTable("move", "total latency")
	for i, d := range r.Latency {
		lat.AddRow(fmt.Sprintf("%d", i+1), fmtDur(d))
	}
	out += lat.String()
	out += "\nFault and recovery counters\n"
	out += r.counters.String()
	if rep := r.Registry.Report(); rep != "" {
		out += "\n" + rep
	}
	return out
}
