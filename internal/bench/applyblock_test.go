package bench

import (
	"reflect"
	"runtime"
	"testing"
)

// TestApplyBlockParallelMatchesSerial cross-checks the block-execution
// benchmark workloads themselves: the parallel scheduler must commit the
// same root and receipts as the serial loop for both the embarrassingly
// parallel and the fully conflicting block, at every GOMAXPROCS.
func TestApplyBlockParallelMatchesSerial(t *testing.T) {
	for _, conflicting := range []bool{false, true} {
		name := "disjoint"
		if conflicting {
			name = "conflicting"
		}
		t.Run(name, func(t *testing.T) {
			cfg := ApplyBlockConfig{Senders: 16, Txs: 64, Conflicting: conflicting}

			cfg.ParallelThreshold = -1
			want, err := RunApplyBlock(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.ParallelThreshold = 1
			for _, procs := range []int{2, 4, runtime.NumCPU()} {
				prev := runtime.GOMAXPROCS(procs)
				got, err := RunApplyBlock(cfg)
				runtime.GOMAXPROCS(prev)
				if err != nil {
					t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
				}
				if got.Root != want.Root {
					t.Fatalf("GOMAXPROCS=%d: root %s != serial %s", procs, got.Root, want.Root)
				}
				if !reflect.DeepEqual(got.Receipts, want.Receipts) {
					t.Fatalf("GOMAXPROCS=%d: receipts diverge from serial", procs)
				}
			}
		})
	}
}

// TestChaosCellCrossGOMAXPROCS is the conflict-heavy chaos cell of the
// determinism suite: the full fault-injected Move scenario (20% drops, 20%
// duplicates on every path) must produce identical simulated results whether
// chain blocks execute serially (GOMAXPROCS=1) or through the optimistic
// scheduler (GOMAXPROCS>1) — parallel ≡ serial under faults.
func TestChaosCellCrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-GOMAXPROCS chaos runs are slow in -short mode")
	}
	prev := runtime.GOMAXPROCS(1)
	serial := chaosFingerprint(t, true, false)
	runtime.GOMAXPROCS(runtime.NumCPU())
	parallel := chaosFingerprint(t, true, false)
	runtime.GOMAXPROCS(prev)
	if serial != parallel {
		t.Fatalf("parallel execution changed simulated chaos results\nserial:\n%sparallel:\n%s",
			serial, parallel)
	}
}
