package bench

import (
	"errors"
	"runtime"
	"sync"
)

// runCells executes n independent simulation cells on parallel goroutines,
// bounded by GOMAXPROCS, and assembles the results in input order.
//
// Each cell owns a complete universe — scheduler, chains, clients, RNGs —
// so cells share no mutable state and every cell is bit-for-bit
// deterministic on its own. Because assembly is by index rather than by
// completion order, the combined result is identical to a sequential run
// at any parallelism level (TestFig6GridParallelDeterminism).
func runCells[T any](n int, run func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = run(i)
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}
