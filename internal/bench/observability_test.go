package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// chaosFingerprint reduces one chaos run to everything simulated: per-move
// latencies plus the counter table, minus the sendercache.* counters (the
// cache is process-wide and other parallel tests pollute its hit/miss
// deltas) and the parallel.* counters (they describe the host's execution
// strategy — how many lanes speculated or aborted — not simulated events,
// and legitimately differ between GOMAXPROCS settings and metrics on/off;
// the schedule.* counters are excluded for the same reason; every other
// counter is driven solely by this run's seeded RNGs).
func chaosFingerprint(t *testing.T, metricsOn, trace bool) string {
	t.Helper()
	cfg := ChaosConfig{DropRate: 0.20, DupRate: 0.20, Seed: 12345, Moves: 2,
		Metrics: metricsOn, Trace: trace}
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for i, d := range res.Latency {
		fmt.Fprintf(&sb, "move%d=%d\n", i+1, int64(d))
	}
	names := make([]string, 0, len(res.Counters))
	for name := range res.Counters {
		if !strings.HasPrefix(name, "sendercache.") && !strings.HasPrefix(name, "parallel.") &&
			!strings.HasPrefix(name, "schedule.") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "%s=%d\n", name, res.Counters[name])
	}
	return sb.String()
}

// TestMetricsDoNotPerturbSimulation is the determinism contract of the
// observability layer: running the chaos scenario with histograms, gauges,
// and span tracing fully enabled must produce byte-identical simulated
// results to running with the layer off — at GOMAXPROCS 1, 2, and the
// host's CPU count alike. Recording only reads state inside callbacks that
// already run, so any divergence means an instrumentation point scheduled
// an event, drew randomness, or mutated simulation state.
func TestMetricsDoNotPerturbSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-GOMAXPROCS chaos runs are slow in -short mode")
	}
	procs := []int{1, 2, runtime.NumCPU()}
	baseline := ""
	for _, p := range procs {
		prev := runtime.GOMAXPROCS(p)
		off := chaosFingerprint(t, false, false)
		on := chaosFingerprint(t, true, true)
		runtime.GOMAXPROCS(prev)
		if off != on {
			t.Fatalf("GOMAXPROCS=%d: enabling metrics+trace changed simulated results\noff:\n%son:\n%s",
				p, off, on)
		}
		if baseline == "" {
			baseline = off
		} else if off != baseline {
			t.Fatalf("GOMAXPROCS=%d: simulated results diverged from GOMAXPROCS=%d run\nbase:\n%sgot:\n%s",
				p, procs[0], baseline, off)
		}
	}
}

// TestChaosStageHistogramsPopulated pins the end-to-end wiring: a chaos run
// with metrics on reports every Move-protocol stage in its histograms with
// one sample per completed move, and the rendered result carries the
// stage-latency table next to the counters.
func TestChaosStageHistogramsPopulated(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Moves = 2
	cfg.Metrics = true
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := res.Registry
	if reg == nil {
		t.Fatal("metrics run must carry a registry")
	}
	for _, stage := range []string{"move1.commit", "p.wait", "move2.commit", "move.total"} {
		h := reg.Histogram(stage)
		if h == nil {
			t.Fatalf("stage %q has no histogram", stage)
		}
		if h.Count() != uint64(cfg.Moves) {
			t.Fatalf("stage %q: %d samples, want %d", stage, h.Count(), cfg.Moves)
		}
		if h.Max() <= 0 || h.Max() > 2*time.Hour {
			t.Fatalf("stage %q: implausible max %s", stage, h.Max())
		}
	}
	// move.total must be the sum of its parts per move; with 2 moves the
	// aggregate check is max(total) >= max(move1)+max(p.wait) is too strong
	// across different moves, so check the weaker sum-of-sums identity.
	total := reg.Histogram("move.total").Sum()
	parts := reg.Histogram("move1.commit").Sum() +
		reg.Histogram("p.wait").Sum() + reg.Histogram("move2.commit").Sum()
	if total != parts {
		t.Fatalf("stage sums don't add up: move.total=%s, move1+p.wait+move2=%s", total, parts)
	}
	out := res.String()
	for _, want := range []string{"Stage latency (simulated time)", "p.wait", "move1.commit", "Gauges"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered chaos result missing %q:\n%s", want, out)
		}
	}
	// No tracing requested: spans must not accumulate.
	if len(reg.Spans()) != 0 {
		t.Fatalf("metrics-only run retained %d spans", len(reg.Spans()))
	}
}
