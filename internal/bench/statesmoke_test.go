package bench

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"
	"time"

	"scmove/internal/hashing"
	"scmove/internal/state"
	"scmove/internal/state/backend"
	"scmove/internal/workload"
)

// readRSS returns the process's resident set size in bytes, or -1 when
// /proc is unavailable (non-Linux hosts).
func readRSS() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return -1
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			var kb int64
			fmt.Sscanf(rest, "%d", &kb)
			return kb * 1024
		}
	}
	return -1
}

// TestStateSmoke is the `make statesmoke` gate: a million-account genesis
// on the file backend with bounded resident-tree and flat-cache budgets,
// update blocks, an RSS ceiling, a close-and-reopen root check, root
// identity against the memory backend on the same script, and a Kitties
// replay on the file backend matching the memory replay's deterministic
// counters. Skipped unless SCMOVE_STATESMOKE is set — it takes a couple of
// minutes and over a gigabyte of RSS (the commitment trees live in memory
// by design; the backend bounds the flat state, not the authenticated
// structure).
func TestStateSmoke(t *testing.T) {
	if os.Getenv("SCMOVE_STATESMOKE") == "" {
		t.Skip("set SCMOVE_STATESMOKE=1 (make statesmoke) to run")
	}
	accounts := 1_000_000
	if s := os.Getenv("SCMOVE_STATESMOKE_ACCOUNTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad SCMOVE_STATESMOKE_ACCOUNTS %q", s)
		}
		accounts = n
	}
	const rssCeiling = int64(2) << 30

	dir := t.TempDir()
	cfg := StateDBConfig{
		Accounts:        accounts,
		Contracts:       accounts / 100,
		SlotsPerAccount: 2,
		BlockAccounts:   100_000,
		Options: state.Options{
			Backend:          backend.KindFile,
			Dir:              dir,
			StorageTreeLimit: 1024,
		},
	}

	start := time.Now()
	fdb, err := BuildStateDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("file backend: populated %d accounts in %v", accounts, time.Since(start))

	var roots []hashing.Hash
	for r := 1; r <= 3; r++ {
		roots = append(roots, MutateStateBlock(fdb, cfg, r, 2000))
	}
	finalRoot := roots[len(roots)-1]

	// RSS ceiling, asserted before anything else inflates the process.
	runtime.GC()
	debug.FreeOSMemory()
	if rss := readRSS(); rss < 0 {
		t.Log("RSS unavailable on this platform; ceiling not asserted")
	} else {
		t.Logf("file backend RSS: %d MB", rss>>20)
		if rss > rssCeiling {
			t.Fatalf("RSS %d MB exceeds the %d MB ceiling", rss>>20, rssCeiling>>20)
		}
	}

	// Close and reopen: the rebuilt tree must land on the committed root
	// (OpenDB verifies this internally too) and serve reads.
	kind := fdb.TreeKind()
	if err := fdb.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := state.OpenDB(fdb.ChainID(), kind, cfg.Options)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := re.Root(); got != finalRoot {
		t.Fatalf("reopened root %s, committed %s", got, finalRoot)
	}
	if _, ok := re.GetAccount(StateBenchAddr(accounts / 2)); !ok {
		t.Fatal("reopened store lost an account")
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Root identity: the memory backend on the identical script must land
	// on the identical roots at every block.
	mcfg := cfg
	mcfg.Options = state.Options{}
	mdb, err := BuildStateDB(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mdb.Close()
	for r := 1; r <= 3; r++ {
		if got := MutateStateBlock(mdb, mcfg, r, 2000); got != roots[r-1] {
			t.Fatalf("round %d: memory root %s, file root %s", r, got, roots[r-1])
		}
	}

	// Kitties replay on the file backend: same deterministic outcome as the
	// memory replay.
	kcfg := workload.DefaultKittiesConfig(2)
	kcfg.Breeds = 300
	mem, err := workload.RunKitties(kcfg)
	if err != nil {
		t.Fatalf("kitties (memory): %v", err)
	}
	kcfg.State = state.Options{
		Backend:          backend.KindFile,
		Dir:              t.TempDir(),
		StorageTreeLimit: 256,
	}
	file, err := workload.RunKitties(kcfg)
	if err != nil {
		t.Fatalf("kitties (file): %v", err)
	}
	if file.TxsCommitted != mem.TxsCommitted ||
		file.OpsCompleted != mem.OpsCompleted ||
		file.FailedOps != mem.FailedOps ||
		file.PlannedOps != mem.PlannedOps {
		t.Fatalf("kitties replay diverges across backends:\n memory %+v\n file   %+v",
			[4]int{mem.TxsCommitted, mem.OpsCompleted, mem.FailedOps, mem.PlannedOps},
			[4]int{file.TxsCommitted, file.OpsCompleted, file.FailedOps, file.PlannedOps})
	}
}
