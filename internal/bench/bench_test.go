// Shape tests: every figure regenerator must reproduce the paper's
// qualitative results — who wins, by what rough factor, where the costs
// concentrate. Absolute values differ (the substrate is a simulator).
package bench

import (
	"testing"
	"time"
)

func TestFig5ShapeThroughputScales(t *testing.T) {
	res, err := RunFig5Shards(ScaleCI, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	avg := map[int]float64{}
	peak := map[int]float64{}
	for _, row := range res.Rows {
		avg[row.Shards] = row.Throughput
		peak[row.Shards] = row.PeakTPS
	}
	// Fig. 5 left: near-linear growth while the DAG supplies transactions.
	// The peak isolates the saturated phase; the average also carries the
	// starved tail, which is what bends the paper's 8-shard bar.
	if peak[2] < 1.5*peak[1] {
		t.Errorf("2-shard peak (%.1f) must clearly beat 1 (%.1f)", peak[2], peak[1])
	}
	if peak[4] < 1.3*peak[2] {
		t.Errorf("4-shard peak (%.1f) must clearly beat 2 (%.1f)", peak[4], peak[2])
	}
	if avg[2] < 1.1*avg[1] {
		t.Errorf("2-shard average (%.1f) must beat 1 (%.1f)", avg[2], avg[1])
	}
	if avg[4] < avg[2] {
		t.Errorf("4-shard average (%.1f) must not regress vs 2 (%.1f)", avg[4], avg[2])
	}
	// §VII-B: cross-chain rates in the single-digit percent range.
	for _, row := range res.Rows {
		if row.Shards == 1 {
			if row.CrossRate != 0 {
				t.Errorf("1 shard cross rate = %v", row.CrossRate)
			}
			continue
		}
		if row.CrossRate <= 0 || row.CrossRate > 0.30 {
			t.Errorf("%d shards cross rate = %v", row.Shards, row.CrossRate)
		}
	}
	if len(res.Timeline) == 0 {
		t.Error("Fig. 5 right timeline missing")
	}
}

func TestFig6ShapeCrossShardDegradesThroughput(t *testing.T) {
	res, err := RunFig6Grid(ScaleCI, []int{1, 4}, []float64{0, 0.10, 0.30})
	if err != nil {
		t.Fatal(err)
	}
	t0, ok0 := res.Throughput(4, 0)
	t10, ok10 := res.Throughput(4, 10)
	t30, ok30 := res.Throughput(4, 30)
	t1, ok1 := res.Throughput(1, 0)
	if !ok0 || !ok10 || !ok30 || !ok1 {
		t.Fatalf("cells missing: %+v", res.Cells)
	}
	// More cross-shard traffic, less throughput — but still scaling with
	// shards (Fig. 6's two trends).
	if !(t0 > t10 && t10 > t30) {
		t.Errorf("throughput must degrade with cross rate: %.1f / %.1f / %.1f", t0, t10, t30)
	}
	if t30 < t1 {
		t.Errorf("4 shards at 30%% cross (%.1f) should still beat 1 shard (%.1f)", t30, t1)
	}
}

func TestFig7ShapeLatencyCDF(t *testing.T) {
	res, err := RunFig7(ScaleCI, false)
	if err != nil {
		t.Fatal(err)
	}
	// §VII-B: ≈7 s single-shard, ≈34 s cross-shard.
	if res.SingleMean < 3*time.Second || res.SingleMean > 12*time.Second {
		t.Errorf("single mean = %v, want ≈7 s", res.SingleMean)
	}
	if res.CrossMean < 20*time.Second || res.CrossMean > 50*time.Second {
		t.Errorf("cross mean = %v, want ≈34 s", res.CrossMean)
	}
	// "around 10 % of the transactions takes more than 30 seconds".
	if res.FractionAbove30s < 0.02 || res.FractionAbove30s > 0.25 {
		t.Errorf("fraction above 30 s = %v, want ≈0.10", res.FractionAbove30s)
	}
	if len(res.Aggregated) == 0 || len(res.Single) == 0 || len(res.Cross) == 0 {
		t.Error("CDFs missing")
	}
}

func TestFig7ShapeRetriesSkewed(t *testing.T) {
	res, err := RunFig7(ScaleCI, true)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.RetryCounts {
		total += n
	}
	if total == 0 {
		t.Fatal("conflict mode must produce retries")
	}
	// §VII-B1: the retry distribution is highly skewed towards one retry.
	if res.RetryCounts[1]*2 < total {
		t.Errorf("retry skew: %v", res.RetryCounts)
	}
}

func TestFig8And9Shapes(t *testing.T) {
	res, err := RunFig8And9()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Fig. 8: moving into Burrow is dominated by the 6-block Ethereum wait;
	// that wait exceeds the whole Burrow confirmation phase.
	toB, _ := res.Row(AppStore1, 1)
	toE, _ := res.Row(AppStore1, 2)
	if toB.WaitProof <= toE.WaitProof {
		t.Errorf("Ethereum wait (%v) must exceed Burrow wait (%v)", toB.WaitProof, toE.WaitProof)
	}
	if toB.WaitProof < toB.Move1 || toB.WaitProof < toB.Move2 {
		t.Error("the p-block wait must dominate Ethereum-to-Burrow moves")
	}

	// Fig. 9: gas grows linearly with the moved state.
	s1, _ := res.Row(AppStore1, 2)
	s10, _ := res.Row(AppStore10, 2)
	s100, _ := res.Row(AppStore100, 2)
	d1 := s10.Move2Gas - s1.Move2Gas
	d2 := s100.Move2Gas - s10.Move2Gas
	if d1 == 0 || d2 != 10*d1 {
		t.Errorf("state-linear gas broken: %d %d %d", s1.Move2Gas, s10.Move2Gas, s100.Move2Gas)
	}
	// Creation dominates SCoin and Kitties on Ethereum (≈70 % in Fig. 9).
	scoin, _ := res.Row(AppSCoin, 2) // Burrow → Ethereum: recreation pays code bytes
	share := float64(scoin.CreateGas) / float64(scoin.TotalGas())
	if share < 0.5 || share > 0.95 {
		t.Errorf("SCoin create share = %.2f, want ≈0.7", share)
	}
	// Recreating on Burrow (no per-byte code gas) is much cheaper.
	scoinToB, _ := res.Row(AppSCoin, 1)
	if scoinToB.Move2Gas >= scoin.Move2Gas {
		t.Errorf("Burrow recreation (%d) must be cheaper than Ethereum (%d)",
			scoinToB.Move2Gas, scoin.Move2Gas)
	}
	// Kitties pays creation twice (Move2 recreation + giveBirth).
	kitties, _ := res.Row(AppKitties, 2)
	if kitties.TotalGas() <= scoin.TotalGas() {
		t.Error("ScalableKitties must cost more than SCoin")
	}
	// Monetary conversion sanity (sub-dollar costs, as in the paper).
	for _, row := range res.Rows {
		if row.USD() <= 0 || row.USD() > 2.0 {
			t.Errorf("%s %s: $%.2f out of range", row.DirectionName(), row.App, row.USD())
		}
	}
	// The rendered tables carry every row.
	if out := res.String(); len(out) < 100 {
		t.Error("rendering broken")
	}
}

func TestAblationGranularity(t *testing.T) {
	rows, err := RunAblationGranularity([]uint64{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Moving a monolithic contract costs strictly more than moving one
	// user's contract, and the gap widens with the user count.
	if rows[0].MonolithicGas <= rows[0].PerUserGas {
		t.Error("monolithic move must cost more")
	}
	if rows[1].MonolithicGas <= rows[0].MonolithicGas {
		t.Error("cost must grow with users")
	}
}

func TestAblation2PC(t *testing.T) {
	res, err := RunAblation2PC()
	if err != nil {
		t.Fatal(err)
	}
	if res.MoveLatency <= 0 || res.TwoPCLatency <= 0 {
		t.Fatal("latencies must be positive")
	}
	// 2PC pays the slow chain's finality in both phases; Move pays it once.
	if res.TwoPCLatency < res.MoveLatency {
		t.Errorf("2PC (%v) should not beat Move (%v) across heterogeneous chains",
			res.TwoPCLatency, res.MoveLatency)
	}
}
