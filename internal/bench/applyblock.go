package bench

import (
	"fmt"

	"scmove/internal/chain"
	"scmove/internal/core"
	"scmove/internal/evm"
	"scmove/internal/evm/asm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/state"
	"scmove/internal/trie"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// ApplyBlockConfig describes one block-execution workload for the parallel
// scheduler benchmarks: Senders independent funded accounts each submit
// Txs/Senders contract calls into a single block.
type ApplyBlockConfig struct {
	// Senders is the number of distinct funded accounts (one lane of
	// inherently serial nonce progression each).
	Senders int
	// Txs is the total block size.
	Txs int
	// Conflicting selects the contract: true makes every call read-modify-
	// write one shared storage slot (worst case: every speculation aborts),
	// false makes each call write a caller-keyed slot (best case: no
	// conflicts beyond the commutative coinbase credit).
	Conflicting bool
	// ParallelThreshold is passed through to chain.Config: negative forces
	// the serial loop, 1 parallelizes every block.
	ParallelThreshold int
}

// ApplyBlockResult carries the committed outcome so callers can cross-check
// engines against each other.
type ApplyBlockResult struct {
	Root     hashing.Hash
	Receipts []*types.Receipt
}

const applyBlockFund = 1_000_000_000_000

// applyBlockContract is the fixed address of the workload contract.
var applyBlockContract = hashing.AddressFromBytes([]byte{0xB0})

// conflictingCode bumps shared slot 0 on every call; disjointCode writes the
// calldata word to a caller-keyed slot.
var (
	conflictingCode = asm.MustAssemble("PUSH1 0 SLOAD PUSH1 1 ADD PUSH1 0 SSTORE STOP")
	disjointCode    = asm.MustAssemble("PUSH1 0 CALLDATALOAD CALLER SSTORE STOP")
)

// BuildApplyBlockChain constructs a fresh single chain with the workload
// contract deployed and every sender funded in genesis.
func BuildApplyBlockChain(cfg ApplyBlockConfig) (*chain.Chain, error) {
	ccfg := chain.Config{
		ChainID:           1,
		TreeKind:          trie.KindMPT,
		Schedule:          evm.EthereumSchedule(),
		BlockGasLimit:     1_000_000_000,
		MaxBlockTxs:       cfg.Txs + 1,
		ConfirmationDepth: 6,
		PoolLimit:         cfg.Txs + 1,
		ParallelThreshold: cfg.ParallelThreshold,
	}
	code := disjointCode
	if cfg.Conflicting {
		code = conflictingCode
	}
	return chain.New(ccfg, core.NewHeaderStore(), func(db *state.DB) {
		for s := 0; s < cfg.Senders; s++ {
			db.AddBalance(keys.Deterministic(uint64(s+1)).Address(), u256.FromUint64(applyBlockFund))
		}
		db.CreateContract(applyBlockContract, code)
	})
}

// BuildApplyBlockTxs generates the block: senders round-robin over the
// workload contract, nonces per sender in order. Transactions are decoded
// from wire form so every run re-recovers senders like a consensus-delivered
// block.
func BuildApplyBlockTxs(cfg ApplyBlockConfig) ([]*types.Transaction, error) {
	kps := make([]*keys.KeyPair, cfg.Senders)
	for s := range kps {
		kps[s] = keys.Deterministic(uint64(s + 1))
	}
	nonces := make([]uint64, cfg.Senders)
	txs := make([]*types.Transaction, 0, cfg.Txs)
	for i := 0; i < cfg.Txs; i++ {
		s := i % cfg.Senders
		var data [32]byte
		data[31] = byte(i%250 + 1)
		tx := &types.Transaction{
			ChainID:  1,
			Nonce:    nonces[s],
			Kind:     types.TxCall,
			To:       applyBlockContract,
			GasLimit: 1_000_000,
			GasPrice: u256.FromUint64(2),
			Data:     data[:],
		}
		nonces[s]++
		if err := tx.Sign(kps[s]); err != nil {
			return nil, err
		}
		dec, err := types.DecodeTransaction(tx.Encode())
		if err != nil {
			return nil, err
		}
		txs = append(txs, dec)
	}
	return txs, nil
}

// RunApplyBlock executes one freshly built block on one freshly built chain
// and returns the committed root and receipts.
func RunApplyBlock(cfg ApplyBlockConfig) (*ApplyBlockResult, error) {
	c, err := BuildApplyBlockChain(cfg)
	if err != nil {
		return nil, err
	}
	txs, err := BuildApplyBlockTxs(cfg)
	if err != nil {
		return nil, err
	}
	block, receipts := c.ApplyBlock(txs, 100, chain.ProposerAddress(1, 0))
	for _, rec := range receipts {
		if !rec.Succeeded() {
			return nil, fmt.Errorf("bench: apply block: tx failed: %s", rec.Err)
		}
	}
	root, _ := c.RootAt(block.Header.Height)
	return &ApplyBlockResult{Root: root, Receipts: receipts}, nil
}
