package bench

import (
	"encoding/binary"
	"fmt"

	"scmove/internal/chain"
	"scmove/internal/core"
	"scmove/internal/evm"
	"scmove/internal/evm/asm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/state"
	"scmove/internal/trie"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// ApplyBlockConfig describes one block-execution workload for the parallel
// scheduler benchmarks: Senders independent funded accounts each submit
// Txs/Senders contract calls into a single block.
type ApplyBlockConfig struct {
	// Senders is the number of distinct funded accounts (one lane of
	// inherently serial nonce progression each).
	Senders int
	// Txs is the total block size.
	Txs int
	// Conflicting selects the contract: true makes every call read-modify-
	// write one shared storage slot (worst case: every speculation aborts),
	// false makes each call write a caller-keyed slot (best case: no
	// conflicts beyond the commutative coinbase credit).
	Conflicting bool
	// ParallelThreshold is passed through to chain.Config: negative forces
	// the serial loop, 1 parallelizes every block.
	ParallelThreshold int
	// Strategy selects the parallel engine once the threshold gate opens;
	// the zero value is chain.StrategyScheduled.
	Strategy chain.ParallelStrategy
}

// ApplyBlockResult carries the committed outcome so callers can cross-check
// engines against each other.
type ApplyBlockResult struct {
	Root     hashing.Hash
	Receipts []*types.Receipt
}

const applyBlockFund = 1_000_000_000_000

// applyBlockContract is the fixed address of the workload contract.
var applyBlockContract = hashing.AddressFromBytes([]byte{0xB0})

// conflictingCode bumps shared slot 0 on every call; disjointCode writes the
// calldata word to a caller-keyed slot.
var (
	conflictingCode = asm.MustAssemble("PUSH1 0 SLOAD PUSH1 1 ADD PUSH1 0 SSTORE STOP")
	disjointCode    = asm.MustAssemble("PUSH1 0 CALLDATALOAD CALLER SSTORE STOP")
)

// BuildApplyBlockChain constructs a fresh single chain with the workload
// contract deployed and every sender funded in genesis.
func BuildApplyBlockChain(cfg ApplyBlockConfig) (*chain.Chain, error) {
	ccfg := chain.Config{
		ChainID:           1,
		TreeKind:          trie.KindMPT,
		Schedule:          evm.EthereumSchedule(),
		BlockGasLimit:     1_000_000_000,
		MaxBlockTxs:       cfg.Txs + 1,
		ConfirmationDepth: 6,
		PoolLimit:         cfg.Txs + 1,
		ParallelThreshold: cfg.ParallelThreshold,
		Strategy:          cfg.Strategy,
	}
	code := disjointCode
	if cfg.Conflicting {
		code = conflictingCode
	}
	return chain.New(ccfg, core.NewHeaderStore(), func(db *state.DB) {
		// One extra funded account beyond the senders: the warmup
		// transaction (BuildApplyBlockWarmupTx) teaching the scheduler's
		// pattern cache comes from it, so warmup never perturbs a
		// measured sender's nonce chain.
		for s := 0; s < cfg.Senders+1; s++ {
			db.AddBalance(keys.Deterministic(uint64(s+1)).Address(), u256.FromUint64(applyBlockFund))
		}
		db.CreateContract(applyBlockContract, code)
	})
}

// BuildApplyBlockWarmupTx returns a single-transaction warmup block for the
// scheduled engine: one call to the workload contract from the extra funded
// account, so the first measured block plans against a warm pattern cache
// instead of degenerating into learn-singleton waves.
func BuildApplyBlockWarmupTx(cfg ApplyBlockConfig) ([]*types.Transaction, error) {
	var data [32]byte
	data[31] = 0xFF
	tx := &types.Transaction{
		ChainID:  1,
		Nonce:    0,
		Kind:     types.TxCall,
		To:       applyBlockContract,
		GasLimit: 1_000_000,
		GasPrice: u256.FromUint64(2),
		Data:     data[:],
	}
	if err := tx.Sign(keys.Deterministic(uint64(cfg.Senders + 1))); err != nil {
		return nil, err
	}
	dec, err := types.DecodeTransaction(tx.Encode())
	if err != nil {
		return nil, err
	}
	return []*types.Transaction{dec}, nil
}

// BuildApplyBlockTxs generates the block: senders round-robin over the
// workload contract, nonces per sender in order. Transactions are decoded
// from wire form so every run re-recovers senders like a consensus-delivered
// block.
func BuildApplyBlockTxs(cfg ApplyBlockConfig) ([]*types.Transaction, error) {
	kps := make([]*keys.KeyPair, cfg.Senders)
	for s := range kps {
		kps[s] = keys.Deterministic(uint64(s + 1))
	}
	nonces := make([]uint64, cfg.Senders)
	txs := make([]*types.Transaction, 0, cfg.Txs)
	for i := 0; i < cfg.Txs; i++ {
		s := i % cfg.Senders
		var data [32]byte
		data[31] = byte(i%250 + 1)
		tx := &types.Transaction{
			ChainID:  1,
			Nonce:    nonces[s],
			Kind:     types.TxCall,
			To:       applyBlockContract,
			GasLimit: 1_000_000,
			GasPrice: u256.FromUint64(2),
			Data:     data[:],
		}
		nonces[s]++
		if err := tx.Sign(kps[s]); err != nil {
			return nil, err
		}
		dec, err := types.DecodeTransaction(tx.Encode())
		if err != nil {
			return nil, err
		}
		txs = append(txs, dec)
	}
	return txs, nil
}

// RunApplyBlock executes one freshly built block on one freshly built chain
// and returns the committed root and receipts.
func RunApplyBlock(cfg ApplyBlockConfig) (*ApplyBlockResult, error) {
	c, err := BuildApplyBlockChain(cfg)
	if err != nil {
		return nil, err
	}
	txs, err := BuildApplyBlockTxs(cfg)
	if err != nil {
		return nil, err
	}
	block, receipts := c.ApplyBlock(txs, 100, chain.ProposerAddress(1, 0))
	for _, rec := range receipts {
		if !rec.Succeeded() {
			return nil, fmt.Errorf("bench: apply block: tx failed: %s", rec.Err)
		}
	}
	root, _ := c.RootAt(block.Header.Height)
	return &ApplyBlockResult{Root: root, Receipts: receipts}, nil
}

// --- Kitties-DAG workload --------------------------------------------------

// The breed contract is the scheduler's showcase: child = SLOAD(p1) +
// SLOAD(p2) + 1 stored at SSTORE(child), all three ids taken from calldata.
// A block of breeds is an explicit data DAG — generation g reads what
// generation g-1 wrote — that the planner levelizes into one wide wave per
// generation, while blind speculation executes later generations against
// pre-block state and aborts.
var (
	kittiesBreedAddr = hashing.AddressFromBytes([]byte{0xD7})
	kittiesBreedCode = asm.MustAssemble(
		"PUSH1 0 CALLDATALOAD SLOAD PUSH1 32 CALLDATALOAD SLOAD ADD PUSH1 1 ADD PUSH1 64 CALLDATALOAD SSTORE STOP")
)

const kittiesDAGSenders = 129 // 128 breeders + 1 warmup account

func kittiesBreedData(p1, p2, child uint64) []byte {
	data := make([]byte, 96)
	binary.BigEndian.PutUint64(data[24:32], p1)
	binary.BigEndian.PutUint64(data[56:64], p2)
	binary.BigEndian.PutUint64(data[88:96], child)
	return data
}

// BuildKittiesDAGChain constructs a chain with the breed contract and 64
// promo kitties (slots 1..64) in genesis and every breeder funded.
func BuildKittiesDAGChain(threshold int, strategy chain.ParallelStrategy) (*chain.Chain, error) {
	ccfg := chain.Config{
		ChainID:           1,
		TreeKind:          trie.KindMPT,
		Schedule:          evm.EthereumSchedule(),
		BlockGasLimit:     1_000_000_000,
		MaxBlockTxs:       kittiesDAGSenders,
		ConfirmationDepth: 6,
		PoolLimit:         kittiesDAGSenders,
		ParallelThreshold: threshold,
		Strategy:          strategy,
	}
	return chain.New(ccfg, core.NewHeaderStore(), func(db *state.DB) {
		for s := 0; s < kittiesDAGSenders; s++ {
			db.AddBalance(keys.Deterministic(uint64(s+1)).Address(), u256.FromUint64(applyBlockFund))
		}
		db.CreateContract(kittiesBreedAddr, kittiesBreedCode)
		for i := uint64(1); i <= 64; i++ {
			var key, val evm.Word
			binary.BigEndian.PutUint64(key[24:32], i)
			binary.BigEndian.PutUint64(val[24:32], 1000+i)
			db.SetStorage(kittiesBreedAddr, key, val)
		}
	})
}

// BuildKittiesDAGTxs returns a one-transaction warmup block (teaching the
// breed pattern) and the 4-generation × 32-breed tournament block:
// generation 1 breeds the genesis promo kitties pairwise, later generations
// breed the previous generation's children. 128 distinct senders, so only
// the data DAG orders the transactions.
func BuildKittiesDAGTxs() (warmup, dag []*types.Transaction, err error) {
	sign := func(sender uint64, data []byte) (*types.Transaction, error) {
		tx := &types.Transaction{
			ChainID:  1,
			Nonce:    0,
			Kind:     types.TxCall,
			To:       kittiesBreedAddr,
			GasLimit: 1_000_000,
			GasPrice: u256.FromUint64(2),
			Data:     data,
		}
		if err := tx.Sign(keys.Deterministic(sender)); err != nil {
			return nil, err
		}
		return types.DecodeTransaction(tx.Encode())
	}
	w, err := sign(1, kittiesBreedData(1, 2, 999))
	if err != nil {
		return nil, nil, err
	}
	warmup = []*types.Transaction{w}
	for gen := 1; gen <= 4; gen++ {
		for j := 0; j < 32; j++ {
			var p1, p2 uint64
			if gen == 1 {
				p1, p2 = uint64(2*j+1), uint64(2*j+2)
			} else {
				p1 = uint64(100*(gen-1) + j)
				p2 = uint64(100*(gen-1) + (j+1)%32)
			}
			tx, err := sign(uint64(2+32*(gen-1)+j), kittiesBreedData(p1, p2, uint64(100*gen+j)))
			if err != nil {
				return nil, nil, err
			}
			dag = append(dag, tx)
		}
	}
	return warmup, dag, nil
}
