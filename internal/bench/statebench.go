package bench

import (
	"encoding/binary"
	"fmt"

	"scmove/internal/hashing"
	"scmove/internal/state"
	"scmove/internal/trie"
	"scmove/internal/u256"
)

// StateDBConfig describes a synthetic populated state database for the
// backend benchmark cells and the statesmoke gate: Accounts externally
// owned accounts (hashed addresses, no key generation), the first Contracts
// of which also carry SlotsPerAccount storage slots.
type StateDBConfig struct {
	Accounts        int
	Contracts       int
	SlotsPerAccount int
	// BlockAccounts is how many accounts are funded per commit during
	// population (0 = one commit for everything). Smaller blocks model a
	// chain that grew over many heights and bound the per-commit batch.
	BlockAccounts int
	ChainID       hashing.ChainID
	Kind          trie.Kind
	Options       state.Options
}

// StateBenchAddr returns the i-th synthetic account address — hashed, so
// population needs no ECDSA work and addresses spread across the tree.
func StateBenchAddr(i int) hashing.Address {
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], uint64(i))
	h := hashing.SumTagged('S', seed[:])
	var a hashing.Address
	copy(a[:], h[:])
	return a
}

// BuildStateDB creates and populates a state database per cfg, returning it
// with everything committed. The caller owns Close.
func BuildStateDB(cfg StateDBConfig) (*state.DB, error) {
	kind := cfg.Kind
	if kind == 0 {
		kind = trie.KindMPT
	}
	chainID := cfg.ChainID
	if chainID == 0 {
		chainID = 1
	}
	db, err := state.NewDBWith(chainID, kind, cfg.Options)
	if err != nil {
		return nil, err
	}
	if err := PopulateStateDB(db, cfg); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// PopulateStateDB funds cfg.Accounts synthetic accounts on db in commit
// blocks of cfg.BlockAccounts, giving the first cfg.Contracts of them
// cfg.SlotsPerAccount storage slots each. Deterministic: the same cfg
// produces the same committed root on every backend.
func PopulateStateDB(db *state.DB, cfg StateDBConfig) error {
	blockSize := cfg.BlockAccounts
	if blockSize <= 0 {
		blockSize = cfg.Accounts
	}
	if cfg.Contracts > cfg.Accounts {
		return fmt.Errorf("statebench: %d contracts > %d accounts", cfg.Contracts, cfg.Accounts)
	}
	for i := 0; i < cfg.Accounts; i++ {
		addr := StateBenchAddr(i)
		db.AddBalance(addr, u256.FromUint64(uint64(1_000_000+i)))
		db.SetNonce(addr, uint64(i%7))
		if i < cfg.Contracts {
			for s := 0; s < cfg.SlotsPerAccount; s++ {
				var key, val [32]byte
				binary.BigEndian.PutUint64(key[24:], uint64(s+1))
				binary.BigEndian.PutUint64(val[24:], uint64(i*1000+s+1))
				db.SetStorage(addr, key, val)
			}
		}
		if (i+1)%blockSize == 0 {
			db.Commit()
		}
	}
	if cfg.Accounts%blockSize != 0 {
		db.Commit()
	}
	return nil
}

// MutateStateBlock applies one deterministic update block to a populated
// database: balance churn on a stride of accounts and a storage overwrite
// on a stride of contracts, then a commit. Returns the new root.
func MutateStateBlock(db *state.DB, cfg StateDBConfig, round, touches int) hashing.Hash {
	if touches > cfg.Accounts {
		touches = cfg.Accounts
	}
	for t := 0; t < touches; t++ {
		i := (t*7919 + round*104729) % cfg.Accounts
		addr := StateBenchAddr(i)
		db.AddBalance(addr, u256.FromUint64(uint64(round+1)))
		if i < cfg.Contracts && cfg.SlotsPerAccount > 0 {
			var key, val [32]byte
			binary.BigEndian.PutUint64(key[24:], uint64(i%cfg.SlotsPerAccount+1))
			binary.BigEndian.PutUint64(val[24:], uint64(round*1_000_003+t))
			db.SetStorage(addr, key, val)
		}
	}
	return db.Commit()
}
