package hashing

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSumDeterministic(t *testing.T) {
	a := Sum([]byte("hello"), []byte("world"))
	b := Sum([]byte("helloworld"))
	if a != b {
		t.Fatal("Sum must hash the concatenation of chunks")
	}
	if a == Sum([]byte("helloworld!")) {
		t.Fatal("distinct inputs must not collide")
	}
}

func TestSumTaggedDomainSeparation(t *testing.T) {
	data := []byte("payload")
	if SumTagged(0x01, data) == SumTagged(0x02, data) {
		t.Fatal("distinct tags must produce distinct hashes")
	}
	if SumTagged(0x01, data) == Sum(data) {
		t.Fatal("tagged hash must differ from untagged hash")
	}
}

func TestHashHexRoundTrip(t *testing.T) {
	h := Sum([]byte("x"))
	if !strings.HasPrefix(h.Hex(), "0x") || len(h.Hex()) != 2+64 {
		t.Fatalf("unexpected hex form %q", h.Hex())
	}
	if HashFromBytes(h.Bytes()) != h {
		t.Fatal("Bytes/HashFromBytes must round-trip")
	}
}

func TestAddressFromBytesTruncation(t *testing.T) {
	long := make([]byte, 32)
	for i := range long {
		long[i] = byte(i)
	}
	a := AddressFromBytes(long)
	if a[0] != 12 || a[19] != 31 {
		t.Fatalf("expected trailing 20 bytes, got %x", a)
	}
	short := []byte{0xab}
	b := AddressFromBytes(short)
	if b[19] != 0xab {
		t.Fatalf("short input must right-align, got %x", b)
	}
	for i := 0; i < 19; i++ {
		if b[i] != 0 {
			t.Fatalf("leading bytes must be zero, got %x", b)
		}
	}
}

func TestCreateAddressUniqueness(t *testing.T) {
	var creator Address
	creator[0] = 1

	// Distinct chains must yield distinct identifiers (§III-G(a)).
	a1 := CreateAddress(ChainID(1), creator, 7)
	a2 := CreateAddress(ChainID(2), creator, 7)
	if a1 == a2 {
		t.Fatal("chain id must be mixed into CREATE addresses")
	}
	// Distinct nonces must differ.
	if CreateAddress(ChainID(1), creator, 7) == CreateAddress(ChainID(1), creator, 8) {
		t.Fatal("nonce must be mixed into CREATE addresses")
	}
	// Deterministic.
	if a1 != CreateAddress(ChainID(1), creator, 7) {
		t.Fatal("CREATE address derivation must be deterministic")
	}
}

func TestCreate2AddressProperties(t *testing.T) {
	var creator Address
	creator[5] = 9
	var salt [32]byte
	code := Sum([]byte("code"))

	base := Create2Address(ChainID(3), creator, salt, code)
	if base != Create2Address(ChainID(3), creator, salt, code) {
		t.Fatal("CREATE2 must be deterministic")
	}
	salt[0] = 1
	if base == Create2Address(ChainID(3), creator, salt, code) {
		t.Fatal("salt must change the address")
	}
	salt[0] = 0
	if base == Create2Address(ChainID(3), creator, salt, Sum([]byte("other"))) {
		t.Fatal("code hash must change the address")
	}
}

func TestCreateFamiliesDisjoint(t *testing.T) {
	// CREATE, CREATE2 and account derivations are domain-separated; a
	// contrived collision of their inputs must still give distinct outputs.
	f := func(seed []byte) bool {
		h := Sum(seed)
		creator := AddressFromHash(h)
		var salt [32]byte
		copy(salt[:], seed)
		c1 := CreateAddress(ChainID(1), creator, 0)
		c2 := Create2Address(ChainID(1), creator, salt, h)
		acct := AccountAddress(seed)
		return c1 != c2 && c1 != acct && c2 != acct
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChainIDBytes(t *testing.T) {
	b := ChainID(0x0102).Bytes()
	if len(b) != 8 || b[6] != 1 || b[7] != 2 {
		t.Fatalf("unexpected encoding %x", b)
	}
	if ChainID(5).String() != "chain-5" {
		t.Fatalf("unexpected string %q", ChainID(5))
	}
}

func TestZeroValues(t *testing.T) {
	if !ZeroHash.IsZero() || !ZeroAddress.IsZero() {
		t.Fatal("zero values must report IsZero")
	}
	if Sum([]byte("a")).IsZero() {
		t.Fatal("nonzero hash must not report IsZero")
	}
}
