// Package hashing defines the chain hash, addresses, and identifier
// derivation rules shared by every blockchain in the system.
//
// The paper's implementation uses Keccak-256 (Ethereum) and SHA-256/IAVL
// hashing (Burrow/Tendermint). Both chains in this reproduction use SHA-256:
// the Move protocol only requires a collision-resistant hash, and using one
// function keeps cross-chain proofs uniform (see DESIGN.md, substitutions).
//
// Contract identifiers mix in the blockchain identifier, as required by
// §III-G(a) of the paper, so that the same creator/nonce pair on two chains
// never collides system-wide.
package hashing

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// HashSize is the byte length of the chain hash.
const HashSize = 32

// AddressSize is the byte length of account and contract identifiers.
const AddressSize = 20

// Hash is the output of the chain hash function.
type Hash [HashSize]byte

// Address identifies an account or contract on any chain.
type Address [AddressSize]byte

// ZeroHash is the all-zero hash, used as an empty-tree and nil-parent marker.
var ZeroHash Hash

// ZeroAddress is the all-zero address.
var ZeroAddress Address

// Sum hashes the concatenation of the given byte slices. The single-chunk
// form is allocation-free; multi-chunk input concatenates in a pooled
// buffer instead of a fresh digest.
func Sum(chunks ...[]byte) Hash {
	if len(chunks) == 1 {
		return Hash(sha256.Sum256(chunks[0]))
	}
	h := AcquireHasher()
	for _, c := range chunks {
		h.Write(c)
	}
	out := h.Sum()
	ReleaseHasher(h)
	return out
}

// SumTagged hashes a domain-separation tag followed by the chunks. Distinct
// tags guarantee that, e.g., trie leaves can never be confused with trie
// branches (second-preimage protection in Merkle proofs).
func SumTagged(tag byte, chunks ...[]byte) Hash {
	h := AcquireHasher()
	h.Byte(tag)
	for _, c := range chunks {
		h.Write(c)
	}
	out := h.Sum()
	ReleaseHasher(h)
	return out
}

// Hex returns the 0x-prefixed hex encoding of h.
func (h Hash) Hex() string { return "0x" + hex.EncodeToString(h[:]) }

// String implements fmt.Stringer with a shortened form for logs.
func (h Hash) String() string {
	return fmt.Sprintf("0x%x…%x", h[:4], h[28:])
}

// IsZero reports whether h is the all-zero hash.
func (h Hash) IsZero() bool { return h == ZeroHash }

// Bytes returns a copy of the hash bytes.
func (h Hash) Bytes() []byte {
	out := make([]byte, HashSize)
	copy(out, h[:])
	return out
}

// HashFromBytes converts a byte slice to a Hash; short input is zero-padded
// on the right, long input is truncated.
func HashFromBytes(b []byte) Hash {
	var h Hash
	copy(h[:], b)
	return h
}

// Hex returns the 0x-prefixed hex encoding of a.
func (a Address) Hex() string { return "0x" + hex.EncodeToString(a[:]) }

// String implements fmt.Stringer.
func (a Address) String() string { return a.Hex() }

// IsZero reports whether a is the all-zero address.
func (a Address) IsZero() bool { return a == ZeroAddress }

// Bytes returns a copy of the address bytes.
func (a Address) Bytes() []byte {
	out := make([]byte, AddressSize)
	copy(out, a[:])
	return out
}

// AddressFromBytes converts a byte slice to an Address, taking the last 20
// bytes of longer input (the EVM convention for hash-derived addresses).
func AddressFromBytes(b []byte) Address {
	var a Address
	if len(b) > AddressSize {
		b = b[len(b)-AddressSize:]
	}
	copy(a[AddressSize-len(b):], b)
	return a
}

// AddressFromHash takes the trailing 20 bytes of a hash, the standard way
// identifiers are derived from hashed material.
func AddressFromHash(h Hash) Address {
	return AddressFromBytes(h[:])
}

// ChainID identifies a blockchain participating in the Move protocol.
// Chain id 0 is reserved as "no chain" / unset.
type ChainID uint64

// Bytes returns the big-endian 8-byte encoding of the chain id.
func (c ChainID) Bytes() []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(c))
	return b[:]
}

// String implements fmt.Stringer.
func (c ChainID) String() string { return fmt.Sprintf("chain-%d", uint64(c)) }

// Domain-separation tags for identifier derivation.
const (
	tagCreate  = 0xc0
	tagCreate2 = 0xc2
	tagAccount = 0xca
)

// CreateAddress derives the identifier of a contract created with CREATE:
// H(tag || chainID || creator || nonce). Mixing in the chain id ensures
// system-wide uniqueness across interoperating chains (§III-G(a)).
func CreateAddress(chain ChainID, creator Address, nonce uint64) Address {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], nonce)
	return AddressFromHash(SumTagged(tagCreate, chain.Bytes(), creator[:], n[:]))
}

// Create2Address derives the identifier of a contract created with CREATE2:
// H(tag || chainID || creator || salt || codeHash). Deterministic in the
// salt, which SCoin exploits for cheap sibling-account attestation (§V-A).
//
// Note: unlike CreateAddress, the chain id used here must be the *home*
// chain id configured for the contract family, so that accounts keep the
// same identifier as they move between chains.
func Create2Address(chain ChainID, creator Address, salt [32]byte, codeHash Hash) Address {
	return AddressFromHash(SumTagged(tagCreate2, chain.Bytes(), creator[:], salt[:], codeHash[:]))
}

// AccountAddress derives an externally-owned account identifier from a
// public key encoding. The same key yields the same identifier on every
// chain, as assumed in §III-G(a).
func AccountAddress(pubKey []byte) Address {
	return AddressFromHash(SumTagged(tagAccount, pubKey))
}
