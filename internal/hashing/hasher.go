package hashing

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// Hasher accumulates hash input in a reusable append buffer and hashes it
// in one shot, avoiding both the per-call digest allocation of sha256.New
// and the intermediate concatenation slices callers would otherwise build
// for Sum/SumTagged. The zero value is ready to use; Reset makes one
// reusable across calls.
//
// A Hasher is not safe for concurrent use.
type Hasher struct {
	buf []byte
}

// NewHasher returns a hasher with capacity preallocated for sizeHint bytes.
func NewHasher(sizeHint int) *Hasher {
	return &Hasher{buf: make([]byte, 0, sizeHint)}
}

// Reset discards accumulated input, keeping the buffer capacity.
func (h *Hasher) Reset() { h.buf = h.buf[:0] }

// Len returns the number of input bytes accumulated so far.
func (h *Hasher) Len() int { return len(h.buf) }

// Byte appends a single byte.
func (h *Hasher) Byte(b byte) { h.buf = append(h.buf, b) }

// Write appends raw bytes.
func (h *Hasher) Write(p []byte) { h.buf = append(h.buf, p...) }

// Uvarint appends an unsigned varint, matching codec.Writer.WriteUvarint.
func (h *Hasher) Uvarint(v uint64) { h.buf = binary.AppendUvarint(h.buf, v) }

// LenPrefixed appends a length-prefixed byte string, matching
// codec.Writer.WriteBytes.
func (h *Hasher) LenPrefixed(p []byte) {
	h.Uvarint(uint64(len(p)))
	h.Write(p)
}

// Hash appends a fixed-width hash.
func (h *Hasher) Hash(x Hash) { h.buf = append(h.buf, x[:]...) }

// Sum returns the chain hash of the accumulated input without allocating.
func (h *Hasher) Sum() Hash { return Hash(sha256.Sum256(h.buf)) }

// hasherPool recycles buffers for the variadic Sum/SumTagged helpers.
var hasherPool = sync.Pool{New: func() any { return NewHasher(256) }}

// AcquireHasher returns a reset Hasher from a shared pool. Callers release
// it with ReleaseHasher when done; the buffer is recycled.
func AcquireHasher() *Hasher {
	h, ok := hasherPool.Get().(*Hasher)
	if !ok {
		h = NewHasher(256)
	}
	h.Reset()
	return h
}

// ReleaseHasher returns a pooled hasher. The caller must not use it after.
func ReleaseHasher(h *Hasher) { hasherPool.Put(h) }
