package hashing

import "testing"

// TestSumSingleChunkZeroAlloc pins the fast path: hashing one chunk goes
// straight through sha256.Sum256 with no intermediate buffer.
func TestSumSingleChunkZeroAlloc(t *testing.T) {
	data := make([]byte, 200)
	allocs := testing.AllocsPerRun(200, func() {
		Sum(data)
	})
	if allocs != 0 {
		t.Fatalf("Sum(one chunk) allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSumMultiChunkPooled bounds the slow path: multi-chunk sums draw a
// pooled hasher, so steady-state allocation stays near zero (an occasional
// pool miss after GC is tolerated).
func TestSumMultiChunkPooled(t *testing.T) {
	a, b := make([]byte, 64), make([]byte, 64)
	Sum(a, b) // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		Sum(a, b)
	})
	if allocs > 1 {
		t.Fatalf("Sum(two chunks) allocates %.1f objects/op, want <= 1", allocs)
	}
}

// TestSumTaggedPooled mirrors TestSumMultiChunkPooled for the tagged form.
func TestSumTaggedPooled(t *testing.T) {
	data := make([]byte, 100)
	SumTagged(0x4e, data)
	allocs := testing.AllocsPerRun(200, func() {
		SumTagged(0x4e, data)
	})
	if allocs > 1 {
		t.Fatalf("SumTagged allocates %.1f objects/op, want <= 1", allocs)
	}
}
