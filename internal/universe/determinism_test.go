package universe

import (
	"testing"
	"time"

	"scmove/internal/contracts"
	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// TestUniverseDeterminism runs the same configuration twice and compares
// block hashes on both chains: simulations must be reproducible
// bit-for-bit (DESIGN.md §5.5), which is what makes every experiment in
// EXPERIMENTS.md re-runnable.
func TestUniverseDeterminism(t *testing.T) {
	run := func() []hashing.Hash {
		u, err := New(DefaultConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		u.Start()
		cl := u.Client(0)
		store, err := u.MustDeploy(cl, u.Chain(2), contracts.StoreName,
			contracts.StoreConstructorArgs(cl.Address(), 5), u256.Zero(), time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := u.MoveAndWait(cl, 2, 1, store, 10*time.Minute); err != nil {
			t.Fatal(err)
		}
		u.Run(time.Minute)
		var hashes []hashing.Hash
		for _, id := range u.ChainIDs() {
			c := u.Chain(id)
			for h := uint64(0); h <= c.Head().Height; h++ {
				hdr, _ := c.HeaderAt(h)
				hashes = append(hashes, hdr.Hash())
			}
		}
		return hashes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in block count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("block %d differs between identical runs", i)
		}
	}
}
