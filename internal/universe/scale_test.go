package universe

import (
	"testing"
	"time"

	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// TestLazyRelayMeshIsOActivePairs pins the scaling contract of LazyRelays:
// a 64-chain universe builds with zero relay links, the first mover
// materializes exactly its pair (both directions), and an eager universe
// of the same shape pays for the full quadratic mesh.
func TestLazyRelayMeshIsOActivePairs(t *testing.T) {
	const shards = 64
	cfg := ShardedScaleConfig(shards, 4, 0)
	cfg.Clients = 1
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if got := u.RelayLinkCount(); got != 0 {
		t.Fatalf("lazy 64-chain universe built %d relay links, want 0", got)
	}
	u.Mover(1, 2)
	if got := u.RelayLinkCount(); got != 2 {
		t.Fatalf("one mover materialized %d relay links, want 2", got)
	}
	// Idempotent: a second mover over the same pair creates nothing new.
	u.Mover(2, 1)
	if got := u.RelayLinkCount(); got != 2 {
		t.Fatalf("repeat mover grew the mesh to %d links, want 2", got)
	}
	if u.RelayLink(1, 2) == nil || u.RelayLink(2, 1) == nil {
		t.Fatal("materialized links not visible via RelayLink")
	}
	if u.RelayLink(1, 3) != nil {
		t.Fatal("untouched pair has a link")
	}

	eager := ShardedConfig(8, 1)
	ue, err := New(eager)
	if err != nil {
		t.Fatal(err)
	}
	defer ue.Close()
	if got := ue.RelayLinkCount(); got != 8*7 {
		t.Fatalf("eager 8-chain universe has %d links, want %d", got, 8*7)
	}
}

// TestLazyRelaySeedsArePositionDerived pins that a lazily created link's
// fault stream does not depend on materialization order: two universes
// touching pairs in different orders end with identical link seeds, which
// the test observes through identical delivery schedules.
func TestLazyRelaySeedsArePositionDerived(t *testing.T) {
	build := func(order [][2]hashing.ChainID) map[[2]hashing.ChainID]uint64 {
		cfg := ShardedScaleConfig(6, 4, 0)
		cfg.Clients = 1
		u, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer u.Close()
		for _, p := range order {
			u.EnsureRelay(p[0], p[1])
		}
		// Push traffic through every link and compare delivery counts after
		// a fixed horizon: with jitter active, a seed difference shows up as
		// a different schedule.
		u.Start()
		u.Run(2 * time.Minute)
		out := make(map[[2]hashing.ChainID]uint64)
		for _, p := range order {
			out[p] = u.RelayLink(p[0], p[1]).Stats().Delivered
		}
		return out
	}
	pairs := [][2]hashing.ChainID{{1, 2}, {3, 5}, {2, 6}}
	rev := [][2]hashing.ChainID{{2, 6}, {3, 5}, {1, 2}}
	a := build(pairs)
	b := build(rev)
	for p, n := range a {
		if b[p] != n {
			t.Fatalf("link %v delivered %d vs %d depending on creation order", p, n, b[p])
		}
	}
}

// TestBulkUserProvisioning pins the streamed keyed-user genesis: users land
// funded on exactly their home chain, and the universe never retains their
// keys (UserClient re-derives on demand and can immediately spend).
func TestBulkUserProvisioning(t *testing.T) {
	const shards, users = 4, 10_000
	cfg := ShardedScaleConfig(shards, 4, users)
	cfg.Clients = 1
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if u.Users() != users {
		t.Fatalf("Users() = %d, want %d", u.Users(), users)
	}
	// Spot-check boundaries and a stride of interior users.
	for _, i := range []int{0, 1, shards - 1, shards, 4_321, users - 2, users - 1} {
		home := u.UserHome(i)
		addr := UserKey(i).Address()
		got := u.Chain(home).StateDB().GetBalance(addr)
		if got.IsZero() {
			t.Fatalf("user %d unfunded on home chain %s", i, home)
		}
		if want := u256.FromUint64(1 << 50); got.Cmp(want) != 0 {
			t.Fatalf("user %d home balance = %s, want %s", i, got, want)
		}
		for _, id := range u.ChainIDs() {
			if id == home {
				continue
			}
			if b := u.Chain(id).StateDB().GetBalance(addr); !b.IsZero() {
				t.Fatalf("user %d funded off-home on %s: %s", i, id, b)
			}
		}
	}
}

// TestLanedConfigValidation pins the laned mode's compatibility matrix.
func TestLanedConfigValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Lanes = true
	cfg.Realtime = true
	if _, err := New(cfg); err == nil {
		t.Fatal("Lanes+Realtime accepted")
	}
	cfg = DefaultConfig(1)
	cfg.ParallelTick = true
	if _, err := New(cfg); err == nil {
		t.Fatal("ParallelTick without Lanes accepted")
	}
}
