package universe

import (
	"testing"
	"time"

	"scmove/internal/lang"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// TestMiniSolContractMovesAcrossChains deploys a compiled MiniSol contract
// (bytecode, not a native Go contract) on the Ethereum-like chain and moves
// it to the Burrow-like chain under full consensus timing: the language,
// the OP_MOVE lowering, the dispatcher's protocol-encoding support, and the
// proof machinery all compose.
func TestMiniSolContractMovesAcrossChains(t *testing.T) {
	code := lang.MustCompile(`
contract Ledger {
    storage owner: address
    storage entries: map
    storage movedAt: uint

    func init() {
        require(owner == 0)
        owner = sender
    }
    func record(key: uint, val: uint) {
        require(sender == owner)
        entries[key] = val
        emit Recorded(key)
    }
    func lookup(key: uint) returns uint {
        return entries[key]
    }
    func moveTo(target: uint) {
        require(owner == sender)
        move(target)
    }
    func moveFinish() {
        movedAt = now
    }
}
`)
	u := newIBCUniverse(t, 1)
	cl := u.Client(0)
	eth, bur := u.Chain(1), u.Chain(2)

	// Deploy the raw bytecode via a plain create transaction.
	txid, err := cl.Create(eth, code, u256.Zero())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := u.WaitTx(eth, txid, 3*time.Minute)
	if err != nil || !rec.Succeeded() {
		t.Fatalf("deploy: %v %+v", err, rec)
	}
	ledger := rec.Created

	// Initialize and record a few entries.
	mustCall := func(data []byte) *types.Receipt {
		t.Helper()
		r, err := u.MustCall(cl, eth, ledger, data, u256.Zero(), 3*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	mustCall(lang.EncodeCall("init"))
	mustCall(lang.EncodeCall("record", u256.FromUint64(1), u256.FromUint64(111)))
	recEvent := mustCall(lang.EncodeCall("record", u256.FromUint64(2), u256.FromUint64(222)))
	foundEvent := false
	for _, log := range recEvent.Logs {
		if len(log.Topics) == 1 && log.Topics[0] == lang.TopicOf("Recorded") {
			foundEvent = true
		}
	}
	if !foundEvent {
		t.Fatal("Recorded event missing")
	}

	// Move the compiled contract to the Burrow-like chain. The Mover uses
	// the protocol-level moveTo encoding, which the compiled dispatcher
	// recognizes by its length.
	res, err := u.MoveAndWait(cl, 1, 2, ledger, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Move2Gas == 0 {
		t.Fatal("move2 gas must be recorded")
	}

	// The map entries survived; moveFinish stamped movedAt; the contract
	// answers on the target chain and is writable there.
	for key, want := range map[uint64]uint64{1: 111, 2: 222, 3: 0} {
		ret, err := bur.StaticCall(cl.Address(), ledger, lang.EncodeCall("lookup", u256.FromUint64(key)))
		if err != nil {
			t.Fatal(err)
		}
		if !u256.FromBytes(ret).Eq(u256.FromUint64(want)) {
			t.Fatalf("lookup(%d) = %x, want %d", key, ret, want)
		}
	}
	if _, err := u.MustCall(cl, bur, ledger,
		lang.EncodeCall("record", u256.FromUint64(3), u256.FromUint64(333)), u256.Zero(), time.Minute); err != nil {
		t.Fatal(err)
	}
	// The source copy is locked.
	if _, err := u.MustCall(cl, eth, ledger,
		lang.EncodeCall("record", u256.FromUint64(9), u256.FromUint64(9)), u256.Zero(), 3*time.Minute); err == nil {
		t.Fatal("writes on the locked source copy must fail")
	}
}
