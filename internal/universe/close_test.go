package universe

import (
	"strings"
	"testing"

	"scmove/internal/state"
	"scmove/internal/state/backend"
)

// Close aggregates shutdown failures instead of keeping only the first:
// with two file-backed chains both failing to close, both chains' errors
// must surface through the joined error.
func TestCloseAggregatesAllChainErrors(t *testing.T) {
	cfg := ShardedConfig(2, 1)
	cfg.State = state.Options{Backend: backend.KindFile, Dir: t.TempDir()}
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage both chains: close their stores out from under the universe,
	// so its own Close on each reports a double-close error.
	for _, id := range u.ChainIDs() {
		if err := u.Chain(id).Close(); err != nil {
			t.Fatalf("manual close of %s: %v", id, err)
		}
	}
	err = u.Close()
	if err == nil {
		t.Fatal("Close reported success with both backends already closed")
	}
	for _, id := range u.ChainIDs() {
		if !strings.Contains(err.Error(), "chain "+id.String()) {
			t.Errorf("error does not surface chain %s: %v", id, err)
		}
	}
}

// A clean universe closes cleanly, and RPC-enabled universes close their
// servers idempotently inside Close.
func TestCloseCleanUniverse(t *testing.T) {
	cfg := ShardedConfig(2, 1)
	cfg.RPC = true
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range u.ChainIDs() {
		if u.RPCAddr(id) == "" {
			t.Fatalf("no RPC address for chain %s", id)
		}
	}
	if err := u.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}
}
