package universe

import (
	"errors"
	"strings"
	"testing"
	"time"

	"scmove/internal/contracts"
	"scmove/internal/core"
	"scmove/internal/relay"
	"scmove/internal/simnet"
	"scmove/internal/u256"
)

// chaosConfig returns the paper deployment with fault injection on every
// message path, all driven by the given fixed seed.
func chaosConfig(clients int, seed int64, faults simnet.LinkFaults) Config {
	cfg := DefaultConfig(clients)
	cfg.Chaos = &ChaosConfig{
		WAN:          faults,
		Submit:       faults,
		HeaderRelay:  faults,
		HeaderWindow: 64,
		Seed:         seed,
	}
	return cfg
}

// newChaosUniverse starts a universe under the given per-link faults.
func newChaosUniverse(t *testing.T, clients int, seed int64, faults simnet.LinkFaults) *Universe {
	t.Helper()
	u, err := New(chaosConfig(clients, seed, faults))
	if err != nil {
		t.Fatal(err)
	}
	u.Start()
	return u
}

// TestMoveUnder20PctDropAndDup is the headline chaos scenario: every link in
// the universe — validator WAN, client submissions, header relays — drops
// 20% of messages and duplicates another 20%, with jitter. A full
// cross-chain move must still complete exactly once, carried by the
// relayer's retry/backoff machinery, and the counters must show the faults
// were actually exercised.
func TestMoveUnder20PctDropAndDup(t *testing.T) {
	faults := simnet.LinkFaults{DropRate: 0.20, DupRate: 0.20, JitterFrac: 0.1}
	u := newChaosUniverse(t, 1, 12345, faults)
	cl := u.Client(0)
	bur, eth := u.Chain(2), u.Chain(1)

	store, err := u.MustDeploy(cl, bur, contracts.StoreName,
		contracts.StoreConstructorArgs(cl.Address(), 10), u256.Zero(), 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.MoveAndWait(cl, 2, 1, store, 30*time.Minute); err != nil {
		t.Fatalf("move must survive 20%% drop + 20%% duplication: %v", err)
	}
	if eth.StateDB().GetLocation(store) != 1 {
		t.Fatal("contract must be live on the target chain")
	}
	if bur.StateDB().GetLocation(store) != 1 {
		t.Fatal("source tombstone must point at the target chain")
	}

	c := u.Counters()
	if c.Get("wan.dropped") == 0 || c.Get("wan.duplicated") == 0 {
		t.Fatalf("WAN faults not exercised: %v", c.Snapshot())
	}
	if c.Get("submit.dropped")+c.Get("headers.dropped") == 0 {
		t.Fatalf("relayer-path drops not exercised: %v", c.Snapshot())
	}
	if c.Get("relay.moves_completed") != 1 {
		t.Fatalf("moves_completed = %d, want 1", c.Get("relay.moves_completed"))
	}
}

// TestChaosMoveDeterministic runs the same seeded chaos move twice and
// demands bit-identical timing and counters — the property that makes chaos
// failures reproducible (and keeps the suite stable under -race).
func TestChaosMoveDeterministic(t *testing.T) {
	run := func() (time.Duration, map[string]uint64) {
		faults := simnet.LinkFaults{DropRate: 0.15, DupRate: 0.15, JitterFrac: 0.1}
		u, err := New(chaosConfig(1, 777, faults))
		if err != nil {
			t.Fatal(err)
		}
		u.Start()
		cl := u.Client(0)
		store, err := u.MustDeploy(cl, u.Chain(2), contracts.StoreName,
			contracts.StoreConstructorArgs(cl.Address(), 3), u256.Zero(), 10*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		res, err := u.MoveAndWait(cl, 2, 1, store, 30*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res.Total(), u.Counters().Snapshot()
	}
	total1, counters1 := run()
	total2, counters2 := run()
	if total1 != total2 {
		t.Fatalf("same seed, different timings: %v vs %v", total1, total2)
	}
	if len(counters1) != len(counters2) {
		t.Fatalf("same seed, different counters: %v vs %v", counters1, counters2)
	}
	for name, v := range counters1 {
		if counters2[name] != v {
			t.Fatalf("counter %s: %d vs %d", name, v, counters2[name])
		}
	}
}

// TestMoverCrashRecoveryMidMove crashes the relayer after Move1 is on the
// wire and hands its journal to a replacement Mover: the move resumes from
// the journaled stage and completes, with the recovery counted.
func TestMoverCrashRecoveryMidMove(t *testing.T) {
	u := newIBCUniverse(t, 1)
	cl := u.Client(0)
	bur := u.Chain(2)

	store, err := u.MustDeploy(cl, bur, contracts.StoreName,
		contracts.StoreConstructorArgs(cl.Address(), 5), u256.Zero(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	m1 := u.Mover(2, 1)
	var result *relay.MoveResult
	m1.Move(cl, store, core.MoveToInput(1), func(r *relay.MoveResult) { result = r })

	// Run until the move is journaled in flight past submission, then crash
	// the relayer before Move2 can land.
	ok := u.RunUntil(func() bool {
		e, found := m1.Journal().Entry(store)
		return found && e.Stage >= relay.StageMove1Submitted
	}, time.Minute)
	if !ok {
		t.Fatal("move never reached a submitted stage")
	}
	m1.Crash()
	crashStage, _ := m1.Journal().Entry(store)
	u.Run(30 * time.Second) // the dead relayer misses receipts and polls
	if result != nil {
		t.Fatal("a crashed mover must not complete the move")
	}

	// Restart: a fresh Mover over the same journal resumes the move.
	m2 := relay.NewMoverWith(u.Sched, u.Chain(2), u.Chain(1),
		relay.DefaultMoverConfig(), m1.Journal(), u.Counters())
	if err := m2.Recover(cl); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !u.RunUntil(func() bool { return result != nil }, 30*time.Minute) {
		t.Fatalf("recovered mover must finish the move (crashed at stage %v)", crashStage.Stage)
	}
	if result.Err != nil {
		t.Fatalf("recovered move failed: %v", result.Err)
	}
	if u.Chain(1).StateDB().GetLocation(store) != 1 {
		t.Fatal("contract must arrive on the target chain")
	}
	if got := u.Counters().Get("relay.recoveries"); got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
	if e, _ := m2.Journal().Entry(store); e.Stage != relay.StageDone {
		t.Fatalf("journal stage = %v, want done", e.Stage)
	}
}

// TestDuplicateMove2Rejected delivers the same Move2 payload twice: the
// second application must be rejected by the move-nonce replay check and
// leave the target state untouched (paper Fig. 2).
func TestDuplicateMove2Rejected(t *testing.T) {
	u := newIBCUniverse(t, 2)
	cl := u.Client(0)
	bur, eth := u.Chain(2), u.Chain(1)

	store, err := u.MustDeploy(cl, bur, contracts.StoreName,
		contracts.StoreConstructorArgs(cl.Address(), 5), u256.Zero(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	m := u.Mover(2, 1)
	var result *relay.MoveResult
	m.Move(cl, store, core.MoveToInput(1), func(r *relay.MoveResult) { result = r })
	if !u.RunUntil(func() bool { return result != nil }, 30*time.Minute) {
		t.Fatal("move did not complete")
	}
	if result.Err != nil {
		t.Fatal(result.Err)
	}

	// Replay the journaled proof payload from a different client (fresh
	// account nonce, identical move proof).
	entry, ok := m.Journal().Entry(store)
	if !ok || entry.Payload == nil {
		t.Fatal("journal must retain the move payload")
	}
	before, beforeOK := eth.StateDB().GetAccount(store)
	dup := u.Client(1)
	dupID, err := dup.SubmitMove2(eth, entry.Payload)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := u.WaitTx(eth, dupID, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Succeeded() {
		t.Fatal("duplicated Move2 must be rejected")
	}
	if !strings.Contains(rec.Err, core.ErrReplay.Error()) {
		t.Fatalf("rejection must cite the move nonce, got: %s", rec.Err)
	}
	after, afterOK := eth.StateDB().GetAccount(store)
	if beforeOK != afterOK || before != after {
		t.Fatalf("replay must leave the target account unchanged: %+v vs %+v", before, after)
	}
}

// TestPartitionThenHealCompletesMove cuts every relayer-facing link (client
// submissions and header relays) right after Move1 commits, heals them
// after several blocks, and asserts the move still completes — with the
// confirmation-retry counter reflecting the outage.
func TestPartitionThenHealCompletesMove(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Chaos = &ChaosConfig{HeaderWindow: 64, Seed: 99}
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u.Start()
	cl := u.Client(0)
	bur := u.Chain(2)

	store, err := u.MustDeploy(cl, bur, contracts.StoreName,
		contracts.StoreConstructorArgs(cl.Address(), 5), u256.Zero(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	m := u.Mover(2, 1)
	var result *relay.MoveResult
	m.Move(cl, store, core.MoveToInput(1), func(r *relay.MoveResult) { result = r })

	// Wait for Move1 to commit, then partition the relayer away.
	ok := u.RunUntil(func() bool {
		e, found := m.Journal().Entry(store)
		return found && e.Stage >= relay.StageWaitConfirm
	}, 2*time.Minute)
	if !ok {
		t.Fatal("move1 never committed")
	}
	baseline := u.Counters().Get("relay.confirm_retries")
	u.SetRelayerCut(true)
	// Several blocks on both chains pass with the relayer isolated: the
	// target light client learns nothing, confirmation cannot progress.
	u.Run(2 * time.Minute)
	if result != nil {
		t.Fatalf("move must not finish while partitioned: %+v", result.Err)
	}
	duringOutage := u.Counters().Get("relay.confirm_retries") - baseline
	if duringOutage < 100 {
		t.Fatalf("confirmation polling must keep retrying through the outage, got %d retries", duringOutage)
	}

	u.SetRelayerCut(false)
	if !u.RunUntil(func() bool { return result != nil }, 30*time.Minute) {
		t.Fatal("move must complete after the partition heals")
	}
	if result.Err != nil {
		t.Fatalf("healed move failed: %v", result.Err)
	}
	if u.Chain(1).StateDB().GetLocation(store) != 1 {
		t.Fatal("contract must arrive after healing")
	}
	// The outage is visible in the phase timings: the proof wait spans the
	// partition.
	if result.WaitProofLatency() < 2*time.Minute {
		t.Fatalf("proof wait %v must reflect the ≥2 min outage", result.WaitProofLatency())
	}
}

// TestConfirmDeadlineFailsMoveDistinctly keeps the relayer partitioned
// forever: instead of polling indefinitely, the move must fail with
// ErrConfirmTimeout once the confirmation deadline passes.
func TestConfirmDeadlineFailsMoveDistinctly(t *testing.T) {
	moverCfg := relay.DefaultMoverConfig()
	moverCfg.ConfirmDeadline = 2 * time.Minute
	cfg := DefaultConfig(1)
	cfg.Chaos = &ChaosConfig{Seed: 5, Mover: &moverCfg}
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u.Start()
	cl := u.Client(0)

	store, err := u.MustDeploy(cl, u.Chain(2), contracts.StoreName,
		contracts.StoreConstructorArgs(cl.Address(), 2), u256.Zero(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	m := u.Mover(2, 1)
	var result *relay.MoveResult
	m.Move(cl, store, core.MoveToInput(1), func(r *relay.MoveResult) { result = r })
	ok := u.RunUntil(func() bool {
		e, found := m.Journal().Entry(store)
		return found && e.Stage >= relay.StageWaitConfirm
	}, 2*time.Minute)
	if !ok {
		t.Fatal("move1 never committed")
	}
	// Cut only the header relays: the light client freezes, and the
	// confirmation deadline must fire.
	for _, a := range u.ChainIDs() {
		for _, b := range u.ChainIDs() {
			if a != b {
				u.RelayLink(a, b).SetCut(true)
			}
		}
	}
	if !u.RunUntil(func() bool { return result != nil }, 30*time.Minute) {
		t.Fatal("move must fail instead of polling forever")
	}
	if !errors.Is(result.Err, relay.ErrConfirmTimeout) {
		t.Fatalf("err = %v, want ErrConfirmTimeout", result.Err)
	}
	if got := u.Counters().Get("relay.confirm_timeouts"); got != 1 {
		t.Fatalf("confirm_timeouts = %d, want 1", got)
	}
	if got := u.Counters().Get("relay.moves_failed"); got != 1 {
		t.Fatalf("moves_failed = %d, want 1", got)
	}
}

// TestValidatorCrashRestartSchedule drives the BFT chain through a
// scheduled crash-and-restart of a third of its validators: the chain keeps
// committing through the outage (quorum holds) and a cross-chain move
// completes after the restarts.
func TestValidatorCrashRestartSchedule(t *testing.T) {
	u := newIBCUniverse(t, 1)
	cl := u.Client(0)
	bur := u.Chain(2)

	cluster := u.bft[0].Cluster
	for _, i := range []int{1, 4, 7} {
		cluster.ScheduleCrashRestart(i, 20*time.Second, 3*time.Minute)
	}

	store, err := u.MustDeploy(cl, bur, contracts.StoreName,
		contracts.StoreConstructorArgs(cl.Address(), 5), u256.Zero(), 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	res, err := u.MoveAndWait(cl, 2, 1, store, 15*time.Minute)
	if err != nil {
		t.Fatalf("move must survive scheduled crash-restarts: %v", err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if u.Chain(1).StateDB().GetLocation(store) != 1 {
		t.Fatal("contract must arrive despite validator churn")
	}
	// After the restart window the chain must keep growing with all
	// validators back.
	h1 := bur.Head().Height
	u.Run(time.Minute)
	if bur.Head().Height <= h1 {
		t.Fatal("chain must keep committing after validator restarts")
	}
}

// TestWANPartitionSchedule partitions 4 of 10 Burrow validators away for a
// minute via the simnet schedule: the majority side keeps committing, and
// block production resumes normally after the heal.
func TestWANPartitionSchedule(t *testing.T) {
	u := newIBCUniverse(t, 1)
	bur := u.Chain(2)

	// Node ids 1..10 belong to the PoW chain? No: BFT validators registered
	// first get ids from the universe's sequential assignment. Find the BFT
	// cluster's ids via the cluster itself — partition the first four.
	cluster := u.bft[0].Cluster
	ids := cluster.NodeIDs()
	u.Net.SchedulePartition(30*time.Second, 90*time.Second, ids[:4]...)

	u.Run(3 * time.Minute)
	h := bur.Head().Height
	if h < 10 {
		t.Fatalf("majority partition must keep committing, height = %d", h)
	}
	u.Run(time.Minute)
	if bur.Head().Height <= h {
		t.Fatal("chain must keep committing after the partition heals")
	}
}
