package universe

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"scmove/internal/chain"
	"scmove/internal/contracts"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/rpc"
	"scmove/internal/state"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// realtimeConfig is a two-shard layout shared by the socket run and its
// discrete-event twin: zero-fee workload plus pre-created proposer
// accounts, so both runs reach the same root regardless of block count.
func realtimeConfig(userKeys []*keys.KeyPair) Config {
	registry := contracts.NewRegistry()
	cfg := Config{
		SubmitDelay: 50 * time.Millisecond,
		RelayDelay:  50 * time.Millisecond,
		NetSeed:     7,
		ExtraGenesis: func(id hashing.ChainID, db *state.DB) {
			for _, kp := range userKeys {
				db.AddBalance(kp.Address(), u256.FromUint64(1<<30))
			}
			for k := 0; k < 10; k++ {
				db.AddBalance(chain.ProposerAddress(id, k), u256.Zero())
			}
		},
	}
	for s := 0; s < 2; s++ {
		spec := BurrowSpec(hashing.ChainID(s+1), registry, int64(100+s))
		spec.Validators = 4
		spec.Config.BlockInterval = 150 * time.Millisecond
		cfg.Specs = append(cfg.Specs, spec)
	}
	return cfg
}

// signedTransfers builds each user's nonce-ordered zero-fee transfers.
func signedTransfers(t *testing.T, userKeys []*keys.KeyPair, perUser int) [][]*types.Transaction {
	t.Helper()
	sink := hashing.AddressFromBytes([]byte("rt-sink"))
	out := make([][]*types.Transaction, len(userKeys))
	for ui, kp := range userKeys {
		cid := hashing.ChainID(ui%2 + 1)
		for n := 0; n < perUser; n++ {
			tx := &types.Transaction{
				ChainID: cid, Nonce: uint64(n), Kind: types.TxCall, To: sink,
				Value: u256.FromUint64(1), GasLimit: 100_000, GasPrice: u256.Zero(),
			}
			if err := tx.Sign(kp); err != nil {
				t.Fatal(err)
			}
			out[ui] = append(out[ui], tx)
		}
	}
	return out
}

// The full live stack — HTTP RPC front doors, consensus over loopback TCP,
// wall-clock driver — commits a concurrent workload to the same state root
// the deterministic discrete-event path produces for it.
func TestRealtimeTCPRPCMatchesDiscreteEvent(t *testing.T) {
	userKeys := make([]*keys.KeyPair, 4)
	for i := range userKeys {
		userKeys[i] = keys.Deterministic(uint64(700 + i))
	}
	const perUser = 50
	workload := signedTransfers(t, userKeys, perUser)

	cfg := realtimeConfig(userKeys)
	cfg.RPC, cfg.Realtime, cfg.TCPWan = true, true, true
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u.Start()
	stop := make(chan struct{})
	driverDone := make(chan struct{})
	go func() {
		defer close(driverDone)
		u.Driver().Run(stop)
	}()

	post := func(addr string, req *rpc.Request) *rpc.Response {
		body, _ := json.Marshal(req)
		httpResp, err := http.Post("http://"+addr+"/", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("post: %v", err)
			return &rpc.Response{}
		}
		defer httpResp.Body.Close()
		var resp rpc.Response
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			t.Errorf("decode: %v", err)
		}
		return &resp
	}

	done := make(chan struct{}, len(userKeys))
	for ui, txs := range workload {
		go func(ui int, txs []*types.Transaction) {
			defer func() { done <- struct{}{} }()
			addr := u.RPCAddr(txs[0].ChainID)
			for _, tx := range txs {
				resp := post(addr, &rpc.Request{Method: "submit", Tx: hex.EncodeToString(tx.Encode())})
				if !resp.Ok {
					t.Errorf("user %d: submit rejected: %s", ui, resp.Error)
					return
				}
			}
		}(ui, txs)
	}
	for range workload {
		<-done
	}

	// Drain: the last receipt per user implies its whole nonce sequence.
	deadline := time.Now().Add(60 * time.Second)
	for _, txs := range workload {
		last := txs[len(txs)-1]
		id := last.ID()
		addr := u.RPCAddr(last.ChainID)
		for {
			resp := post(addr, &rpc.Request{Method: "receipt", Tx: hex.EncodeToString(id[:])})
			if resp.Found {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("tx %x never committed", id[:8])
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	close(stop)
	<-driverDone

	if h := u.WallMetrics().Histogram("rpc.submit.wall"); h == nil || h.Count() == 0 {
		t.Error("no wall-clock submit latency samples")
	}
	liveRoots := make(map[hashing.ChainID]hashing.Hash)
	for _, id := range u.ChainIDs() {
		liveRoots[id] = u.Chain(id).StateDB().Root()
	}
	if err := u.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The discrete-event twin: same genesis, same pre-signed transactions,
	// virtual time. Final roots must match bit for bit.
	sim, err := New(realtimeConfig(userKeys))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	sim.Start()
	for _, txs := range workload {
		c := sim.Chain(txs[0].ChainID)
		for _, tx := range txs {
			if err := c.SubmitTx(tx); err != nil {
				t.Fatalf("replay submit: %v", err)
			}
		}
	}
	committed := func() bool {
		for _, txs := range workload {
			last := txs[len(txs)-1]
			if _, ok := sim.Chain(last.ChainID).Receipt(last.ID()); !ok {
				return false
			}
		}
		return true
	}
	if !sim.RunUntil(committed, 10*time.Minute) {
		t.Fatal("replay did not drain in simulated time")
	}
	for _, id := range sim.ChainIDs() {
		if got := sim.Chain(id).StateDB().Root(); got != liveRoots[id] {
			t.Errorf("chain %s: socket run root %x, discrete-event root %x", id, liveRoots[id], got)
		}
	}
}

// Invalid configuration combinations are rejected up front.
func TestRealtimeConfigValidation(t *testing.T) {
	cfg := ShardedConfig(1, 1)
	cfg.TCPWan = true
	if _, err := New(cfg); err == nil {
		t.Error("TCPWan without Realtime accepted")
	}
	cfg = ShardedConfig(1, 1)
	cfg.Realtime = true
	cfg.Chaos = &ChaosConfig{}
	if _, err := New(cfg); err == nil {
		t.Error("Chaos with Realtime accepted")
	}
}
