package universe

import (
	"testing"
	"time"

	"scmove/internal/contracts"
	"scmove/internal/core"
	"scmove/internal/hashing"
	"scmove/internal/relay"
	"scmove/internal/u256"
)

// TestMoveSurvivesValidatorCrashes injects f crash faults into the BFT
// chain's validator set mid-experiment: the chain keeps committing (2f+1
// quorum) and a full cross-chain move still completes.
func TestMoveSurvivesValidatorCrashes(t *testing.T) {
	u := newIBCUniverse(t, 1)
	cl := u.Client(0)
	bur := u.Chain(2)

	store, err := u.MustDeploy(cl, bur, contracts.StoreName,
		contracts.StoreConstructorArgs(cl.Address(), 5), u256.Zero(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Crash f = 3 of the 10 Burrow validators.
	cluster := u.bft[0].Cluster
	cluster.CrashValidator(2)
	cluster.CrashValidator(5)
	cluster.CrashValidator(8)

	res, err := u.MoveAndWait(cl, 2, 1, store, 10*time.Minute)
	if err != nil {
		t.Fatalf("move must survive f crash faults: %v", err)
	}
	if u.Chain(1).StateDB().GetLocation(store) != 1 {
		t.Fatal("contract must arrive despite the faults")
	}
	// The crashed validators may slow rounds (timeouts on their proposer
	// slots) but not by orders of magnitude.
	if res.Total() > 5*time.Minute {
		t.Errorf("move took %v under f faults", res.Total())
	}
}

// TestHeaderRelayDelayPostponesMove2 stretches the header relay latency:
// the move still completes, later, because the target's light client learns
// about source headers late — confirming the relayer is gated by VS, not by
// wall-clock guesses.
func TestHeaderRelayDelayPostponesMove2(t *testing.T) {
	run := func(relayDelay time.Duration) time.Duration {
		cfg := DefaultConfig(1)
		cfg.RelayDelay = relayDelay
		u, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		u.Start()
		cl := u.Client(0)
		store, err := u.MustDeploy(cl, u.Chain(2), contracts.StoreName,
			contracts.StoreConstructorArgs(cl.Address(), 1), u256.Zero(), time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		res, err := u.MoveAndWait(cl, 2, 1, store, 20*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res.WaitProofLatency()
	}
	fast := run(50 * time.Millisecond)
	slow := run(30 * time.Second)
	if slow < fast+20*time.Second {
		t.Errorf("a 30 s header relay must visibly delay Move2: fast=%v slow=%v", fast, slow)
	}
}

// TestConcurrentMovesInterleave runs several moves in both directions at
// once: all complete, none interferes with another.
func TestConcurrentMovesInterleave(t *testing.T) {
	u := newIBCUniverse(t, 6)
	var done int
	for i := 0; i < 6; i++ {
		i := i
		cl := u.Client(i)
		from, to := hashing.ChainID(2), hashing.ChainID(1)
		if i%2 == 1 {
			from, to = to, from
		}
		store, err := u.MustDeploy(cl, u.Chain(from), contracts.StoreName,
			contracts.StoreConstructorArgs(cl.Address(), uint64(i+1)), u256.Zero(), 3*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		u.Mover(from, to).Move(cl, store, core.MoveToInput(to), func(r *relay.MoveResult) {
			if r.Err != nil {
				t.Errorf("move %d: %v", i, r.Err)
			}
			done++
		})
	}
	if !u.RunUntil(func() bool { return done == 6 }, 30*time.Minute) {
		t.Fatalf("only %d of 6 moves completed", done)
	}
}
