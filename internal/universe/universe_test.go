package universe

import (
	"testing"
	"time"

	"scmove/internal/chain"
	"scmove/internal/contracts"
	"scmove/internal/hashing"
	"scmove/internal/relay"
	"scmove/internal/u256"
)

// newIBCUniverse builds the paper's deployment: chain 1 Ethereum-like (PoW,
// 15 s, p=6), chain 2 Burrow-like (BFT, 5 s, p=2).
func newIBCUniverse(t *testing.T, clients int) *Universe {
	t.Helper()
	u, err := New(DefaultConfig(clients))
	if err != nil {
		t.Fatal(err)
	}
	u.Start()
	return u
}

func TestChainsProduceBlocks(t *testing.T) {
	u := newIBCUniverse(t, 1)
	u.Run(2 * time.Minute)
	eth, bur := u.Chain(1), u.Chain(2)
	if eth.Head().Height < 4 || eth.Head().Height > 14 {
		t.Fatalf("eth height after 2 min = %d, want ≈8", eth.Head().Height)
	}
	if bur.Head().Height < 18 || bur.Head().Height > 24 {
		t.Fatalf("burrow height after 2 min = %d, want ≈22", bur.Head().Height)
	}
	// Header relays keep the light clients current.
	if got := bur.Headers().Head(1); got+2 < eth.Head().Height {
		t.Fatalf("burrow's view of eth head = %d, eth at %d", got, eth.Head().Height)
	}
	if got := eth.Headers().Head(2); got+2 < bur.Head().Height {
		t.Fatalf("eth's view of burrow head = %d, burrow at %d", got, bur.Head().Height)
	}
}

// TestMoveBurrowToEthereum runs the full IBC move under consensus timing:
// the Fig. 8 "Burrow to Ethereum" direction.
func TestMoveBurrowToEthereum(t *testing.T) {
	u := newIBCUniverse(t, 1)
	cl := u.Client(0)
	bur, eth := u.Chain(2), u.Chain(1)

	store, err := u.MustDeploy(cl, bur, contracts.StoreName,
		contracts.StoreConstructorArgs(cl.Address(), 10), u256.Zero(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	res, err := u.MoveAndWait(cl, 2, 1, store, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	// The contract now lives on Ethereum with identical state.
	if eth.StateDB().GetLocation(store) != 1 {
		t.Fatal("store must live on chain 1")
	}
	v, err := eth.StaticCall(cl.Address(), store, contracts.EncodeCall("get", contracts.ArgUint(3)))
	if err != nil || u256.FromBytes(v).IsZero() {
		t.Fatalf("state lost: %x err=%v", v, err)
	}
	// Phase shape (paper Fig. 8, Burrow→Ethereum ≈ 30-50 s total):
	// Move1 lands in ~one Burrow block; the wait is ≥ p+lag = 3 blocks of
	// 5 s; Move2 lands in ~one Ethereum block (15 s mean).
	if res.Move1Latency() < 2*time.Second || res.Move1Latency() > 15*time.Second {
		t.Errorf("move1 latency = %v", res.Move1Latency())
	}
	if res.WaitProofLatency() < 10*time.Second || res.WaitProofLatency() > 40*time.Second {
		t.Errorf("wait+proof latency = %v", res.WaitProofLatency())
	}
	if res.Total() > 2*time.Minute {
		t.Errorf("total = %v", res.Total())
	}
	if res.Move1Gas == 0 || res.Move2Gas == 0 {
		t.Error("gas must be recorded")
	}
}

// TestMoveEthereumToBurrow is the opposite direction, dominated by the
// 6-block (≈90 s) Ethereum confirmation wait (Fig. 8, right).
func TestMoveEthereumToBurrow(t *testing.T) {
	u := newIBCUniverse(t, 1)
	cl := u.Client(0)
	eth, bur := u.Chain(1), u.Chain(2)

	store, err := u.MustDeploy(cl, eth, contracts.StoreName,
		contracts.StoreConstructorArgs(cl.Address(), 10), u256.Zero(), 3*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	res, err := u.MoveAndWait(cl, 1, 2, store, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if bur.StateDB().GetLocation(store) != 2 {
		t.Fatal("store must live on chain 2")
	}
	// The p-block wait dominates: 6 blocks × 15 s mean ≈ 90 s expected
	// (exponential intervals make single runs vary widely).
	if res.WaitProofLatency() < 20*time.Second || res.WaitProofLatency() > 5*time.Minute {
		t.Errorf("wait+proof = %v, want ≈90 s", res.WaitProofLatency())
	}
	if res.WaitProofLatency() < res.Move2Latency() {
		t.Errorf("the confirmation wait must dominate: wait=%v move2=%v",
			res.WaitProofLatency(), res.Move2Latency())
	}
	if res.Total() < res.WaitProofLatency() {
		t.Error("total must include the wait")
	}
}

// TestMoveRoundTripReturns moves a contract out and back (Lc tracking,
// §III-G(b)).
func TestMoveRoundTripReturns(t *testing.T) {
	u := newIBCUniverse(t, 1)
	cl := u.Client(0)
	bur := u.Chain(2)

	store, err := u.MustDeploy(cl, bur, contracts.StoreName,
		contracts.StoreConstructorArgs(cl.Address(), 3), u256.Zero(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.MoveAndWait(cl, 2, 1, store, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := u.MoveAndWait(cl, 1, 2, store, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if bur.StateDB().GetLocation(store) != 2 {
		t.Fatal("contract must be home again")
	}
	if bur.StateDB().GetMoveNonce(store) != 2 {
		t.Fatalf("move nonce = %d, want 2", bur.StateDB().GetMoveNonce(store))
	}
	// Both chains' Lc fields point at chain 2 — a client can find the
	// contract from either chain (§III-G(b)).
	if u.Chain(1).StateDB().GetLocation(store) != 2 {
		t.Fatal("source tombstone must point at the contract's home")
	}
}

// TestFig3CurrencyPegging runs the complete Fig. 3 cycle: lock currency on
// the Ethereum-like chain inside a pegged-token contract, move it to the
// Burrow-like chain, mint, transfer the token, burn-and-return, withdraw.
func TestFig3CurrencyPegging(t *testing.T) {
	u := newIBCUniverse(t, 2)
	alice, bob := u.Client(0), u.Client(1)
	eth, bur := u.Chain(1), u.Chain(2)

	relayAddr, err := u.MustDeploy(alice, eth, contracts.TokenRelayName, nil, u256.Zero(), 3*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Tcreate: lock 10^12 wei for bob, destined to chain 2 (large enough
	// that transaction fees are negligible next to it).
	const peg = uint64(1_000_000_000_000)
	rec, err := u.MustCall(alice, eth, relayAddr, contracts.EncodeCall("create",
		contracts.ArgUint(2), contracts.ArgAddress(bob.Address())), u256.FromUint64(peg), 3*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var pegged hashing.Address
	for _, log := range rec.Logs {
		if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicRelayCreated {
			pegged, err = contracts.AsAddress(log.Data)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if pegged.IsZero() {
		t.Fatal("RelayCreated event missing")
	}
	if eth.StateDB().GetLocation(pegged) != 2 {
		t.Fatal("pegged token must be locked towards chain 2")
	}

	// Complete the move (bob finishes it — any client may, §III-B).
	if _, err := u.CompleteAndWait(bob, 1, 2, pegged, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if bur.StateDB().GetLocation(pegged) != 2 {
		t.Fatal("pegged token must live on chain 2")
	}
	// The locked currency traveled with the contract's account record.
	if got := bur.StateDB().GetBalance(pegged); !got.Eq(u256.FromUint64(peg)) {
		t.Fatalf("pegged balance on chain 2 = %s", got)
	}

	// Tmint: bob mints tokens backed by the locked currency.
	if _, err := u.MustCall(bob, bur, pegged, contracts.EncodeCall("mint"), u256.Zero(), time.Minute); err != nil {
		t.Fatal(err)
	}
	bal, err := bur.StaticCall(bob.Address(), pegged,
		contracts.EncodeCall("tokenBalance", contracts.ArgAddress(bob.Address())))
	if err != nil || !u256.FromBytes(bal).Eq(u256.FromUint64(peg)) {
		t.Fatalf("minted balance = %x err=%v", bal, err)
	}
	// Double mint is refused.
	if _, err := u.MustCall(bob, bur, pegged, contracts.EncodeCall("mint"), u256.Zero(), time.Minute); err == nil {
		t.Fatal("second mint must fail")
	}

	// Tokens circulate on the target chain.
	if _, err := u.MustCall(bob, bur, pegged, contracts.EncodeCall("tokenTransfer",
		contracts.ArgAddress(alice.Address()), contracts.ArgU256(u256.FromUint64(2000))), u256.Zero(), time.Minute); err != nil {
		t.Fatal(err)
	}
	// Alice sends them back so bob holds the full amount again.
	if _, err := u.MustCall(alice, bur, pegged, contracts.EncodeCall("tokenTransfer",
		contracts.ArgAddress(bob.Address()), contracts.ArgU256(u256.FromUint64(2000))), u256.Zero(), time.Minute); err != nil {
		t.Fatal(err)
	}

	// Burn and return home (Move1 back to chain 1), then withdraw.
	if _, err := u.MustCall(bob, bur, pegged, contracts.EncodeCall("burnAndReturn"), u256.Zero(), time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := u.CompleteAndWait(bob, 2, 1, pegged, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	before := eth.StateDB().GetBalance(bob.Address())
	if _, err := u.MustCall(bob, eth, pegged, contracts.EncodeCall("withdraw"), u256.Zero(), 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	after := eth.StateDB().GetBalance(bob.Address())
	// Bob gained the locked amount minus the withdraw transaction's fee,
	// which is bounded by gasLimit * gasPrice = 2*10^7.
	gained := after.Sub(before)
	fee := u256.FromUint64(peg).Sub(gained)
	if gained.Gt(u256.FromUint64(peg)) || fee.Gt(u256.FromUint64(100_000_000)) {
		t.Fatalf("withdraw delta = %s (fee %s)", gained, fee)
	}
}

// TestLocateFollowsLcPointers checks §III-G(b): after a contract moves, a
// client who only knows the original chain can find its current home by
// chasing Lc tombstones.
func TestLocateFollowsLcPointers(t *testing.T) {
	u := newIBCUniverse(t, 1)
	cl := u.Client(0)
	store, err := u.MustDeploy(cl, u.Chain(2), contracts.StoreName,
		contracts.StoreConstructorArgs(cl.Address(), 2), u256.Zero(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	chains := []*chain.Chain{u.Chain(1), u.Chain(2)}
	if loc, ok := relay.Locate(chains, store); !ok || loc != 2 {
		t.Fatalf("before move: loc=%v ok=%v", loc, ok)
	}
	if _, err := u.MoveAndWait(cl, 2, 1, store, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if loc, ok := relay.Locate(chains, store); !ok || loc != 1 {
		t.Fatalf("after move: loc=%v ok=%v", loc, ok)
	}
	// An unknown contract is not found anywhere.
	if _, ok := relay.Locate(chains, hashing.AddressFromBytes([]byte{0xEE})); ok {
		t.Fatal("unknown contract must not be located")
	}
}
