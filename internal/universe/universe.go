// Package universe wires complete multi-blockchain simulations: chains with
// their consensus drivers (BFT validator clusters or PoW producers) on a
// shared discrete-event scheduler and simulated WAN, bidirectional header
// relays, the native contract registry, and funded clients. The experiment
// harnesses, examples, and end-to-end tests all build on it.
package universe

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"scmove/internal/chain"
	"scmove/internal/contracts"
	"scmove/internal/core"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/metrics"
	"scmove/internal/relay"
	"scmove/internal/rpc"
	"scmove/internal/simclock"
	"scmove/internal/simnet"
	"scmove/internal/state"
	"scmove/internal/state/backend"
	"scmove/internal/tendermint"
	"scmove/internal/trie"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// ConsensusKind selects a chain's consensus driver.
type ConsensusKind uint8

// Supported consensus drivers.
const (
	// ConsensusBFT is the Tendermint-like validator cluster (Burrow).
	ConsensusBFT ConsensusKind = iota + 1
	// ConsensusPoW is the exponential-interval block producer (Ethereum).
	ConsensusPoW
)

// ChainSpec describes one chain of the universe.
type ChainSpec struct {
	Config    chain.Config
	Consensus ConsensusKind
	// Validators is the cluster size for BFT (the paper runs 10 per shard)
	// or the miner count for PoW.
	Validators int
	// Seed makes the chain's consensus timing reproducible.
	Seed int64
}

// BurrowSpec returns the paper's Burrow shard configuration (§VI): IAVL
// state, Burrow gas schedule, 10 validators, 5 s blocks, lagging state
// root, p = 2.
func BurrowSpec(id hashing.ChainID, registry *evm.Registry, seed int64) ChainSpec {
	return ChainSpec{
		Config: chain.Config{
			ChainID:           id,
			TreeKind:          trie.KindIAVL,
			Schedule:          evm.BurrowSchedule(),
			BlockGasLimit:     100_000_000,
			MaxBlockTxs:       500,
			LaggingStateRoot:  true,
			BlockInterval:     5 * time.Second,
			ConfirmationDepth: 2,
			Natives:           registry,
			PoolLimit:         100_000,
		},
		Consensus:  ConsensusBFT,
		Validators: 10,
		Seed:       seed,
	}
}

// EthereumSpec returns the paper's Ethereum configuration (§VI): MPT state,
// Ethereum gas schedule, 15 s expected blocks, p = 6.
func EthereumSpec(id hashing.ChainID, registry *evm.Registry, seed int64) ChainSpec {
	return ChainSpec{
		Config: chain.Config{
			ChainID:           id,
			TreeKind:          trie.KindMPT,
			Schedule:          evm.EthereumSchedule(),
			BlockGasLimit:     100_000_000,
			MaxBlockTxs:       500,
			BlockInterval:     15 * time.Second,
			ConfirmationDepth: 6,
			Natives:           registry,
			PoolLimit:         100_000,
		},
		Consensus:  ConsensusPoW,
		Validators: 4,
		Seed:       seed,
	}
}

// ChaosConfig switches on systematic fault injection across every message
// path of the universe: the validator WAN, the client-to-chain submission
// links, and the inter-chain header relays. All faults draw from seeded
// RNGs, so chaos runs are deterministic.
type ChaosConfig struct {
	// WAN overrides the consensus network's fault configuration
	// (drop/duplicate/jitter/reorder on every validator link).
	WAN simnet.LinkFaults
	// Submit applies to every client→chain submission link.
	Submit simnet.LinkFaults
	// HeaderRelay applies to every inter-chain header relay link.
	HeaderRelay simnet.LinkFaults
	// HeaderWindow is how many recent headers each relay message re-sends
	// (dropped relay messages heal once any later one arrives). Defaults
	// to 8; raise it to ride out longer partitions.
	HeaderWindow int
	// Equivocators makes the first N non-zero validator indices of every
	// BFT cluster Byzantine: they send conflicting proposals and votes for
	// the same height/round to different peers. Keep N ≤ f (the cluster
	// fault budget) or consensus legitimately stalls.
	Equivocators int
	// Seed decorrelates the chaos RNGs from the base NetSeed.
	Seed int64
	// Mover overrides the relayer's deadline/retry tuning.
	Mover *relay.MoverConfig
}

// Config describes a universe.
type Config struct {
	Specs []ChainSpec
	// Clients is the number of pre-funded client key pairs.
	Clients int
	// ClientFunds is each client's genesis balance on every chain.
	ClientFunds u256.Int
	// SubmitDelay is the client-to-chain submission latency.
	SubmitDelay time.Duration
	// RelayDelay is the header relay latency between chains.
	RelayDelay time.Duration
	// NetSeed seeds the WAN jitter and message timing.
	NetSeed int64
	// Chaos, if set, injects faults into every message path and tunes the
	// relayer for recovery (nil runs a fault-free network).
	Chaos *ChaosConfig
	// Metrics switches on the observability registry: per-stage Move latency
	// histograms, block-interval histograms, and queue-depth gauges, all over
	// simulated time. Off by default; recording never schedules events or
	// draws randomness, so simulated results are identical either way.
	Metrics bool
	// Trace additionally retains one structured span per protocol stage and
	// point events (submissions, retries, recoveries) for a JSONL dump.
	// Implies Metrics.
	Trace bool
	// ExtraGenesis, if set, runs per chain after client funding — used to
	// pre-deploy shared contracts (token factories, game registries) at the
	// same address on every shard.
	ExtraGenesis func(id hashing.ChainID, db *state.DB)
	// State is the default state-storage configuration applied to every
	// chain whose spec does not set its own. With the file backend, each
	// chain stores its segments in a per-chain subdirectory of State.Dir.
	State state.Options
	// RPC starts one JSON-over-HTTP front-door server per chain on an
	// ephemeral loopback port (see RPCAddr): transaction submission, state
	// queries, and receipt lookups, with wall-clock latency histograms in
	// WallMetrics. The servers run real goroutines; combined with Realtime
	// they make the universe a live multi-chain deployment on one machine.
	RPC bool
	// Realtime attaches a wall-clock driver to the scheduler: simulated
	// delays elapse in real time and external goroutines (RPC handlers,
	// socket readers) inject work via Driver().Post. The caller runs the
	// driver; see Driver. Incompatible with Chaos (fault injection is a
	// discrete-event feature).
	Realtime bool
	// TCPWan carries consensus traffic over real loopback TCP sockets —
	// encoded frames between validator goroutines — instead of the
	// discrete-event network. Requires Realtime.
	TCPWan bool
	// Lanes confines each chain — its consensus cluster, WAN instance, and
	// block commits — to its own scheduler lane: same-timestamp events of
	// distinct chains may then execute concurrently under the parallel
	// per-tick driver (ParallelTick) with results bit-identical to the
	// serial driver. Block listeners and tx waiters are re-dispatched onto
	// the global timeline, so cross-chain callbacks (header relays, movers,
	// workload drivers) are unaffected. Incompatible with Realtime/TCPWan.
	Lanes bool
	// LazyRelays skips building the O(chains²) bidirectional header-relay
	// mesh at construction: links come into existence on first use, when
	// Mover (or EnsureRelay) touches a pair. Setup cost becomes
	// O(active pairs) — at 64 chains the eager mesh is 4032 links and
	// listeners, almost all of which a sharded workload never exercises.
	// Link fault seeds derive from the chain pair's positions, not creation
	// order, so lazily created links behave identically no matter which
	// order traffic first touches them.
	LazyRelays bool
	// Users is the number of synthetic keyed user accounts, beyond Clients.
	// User i's key derives from a fixed seed offset (UserKey) and is funded
	// at genesis only on its home chain (position i mod chains), in streamed
	// batches — addresses are not retained, so a million-user universe
	// builds with bounded RSS. Workloads re-derive keys for the users they
	// actually drive (UserClient).
	Users int
	// UserFunds is each user's genesis balance on its home chain (defaults
	// to ClientFunds when zero).
	UserFunds u256.Int
	// ParallelTick runs the simulation with the parallel per-tick driver:
	// within one simulated timestamp, events of distinct chains execute on a
	// bounded worker pool. Requires Lanes. Results are bit-identical to the
	// serial driver.
	ParallelTick bool
	// TickWorkers bounds the parallel driver's worker pool (0 = GOMAXPROCS).
	TickWorkers int
}

// DefaultConfig returns a two-chain (Ethereum + Burrow) universe matching
// the paper's IBC deployment, with the standard contract registry.
func DefaultConfig(clients int) Config {
	registry := contracts.NewRegistry()
	return Config{
		Specs: []ChainSpec{
			EthereumSpec(1, registry, 42),
			BurrowSpec(2, registry, 43),
		},
		Clients:     clients,
		ClientFunds: u256.FromUint64(1 << 60),
		SubmitDelay: 50 * time.Millisecond,
		RelayDelay:  50 * time.Millisecond,
		NetSeed:     7,
	}
}

// ShardedConfig returns an S-shard Burrow deployment (the sharding
// experiments of §VII: 10 validators per shard, 5 s blocks, p=2) with the
// given number of pre-funded clients.
func ShardedConfig(shards, clients int) Config {
	registry := contracts.NewRegistry()
	cfg := Config{
		Clients:     clients,
		ClientFunds: u256.FromUint64(1 << 60),
		SubmitDelay: 50 * time.Millisecond,
		RelayDelay:  50 * time.Millisecond,
		NetSeed:     7,
	}
	for s := 0; s < shards; s++ {
		cfg.Specs = append(cfg.Specs, BurrowSpec(hashing.ChainID(s+1), registry, int64(100+s)))
	}
	return cfg
}

// ShardedScaleConfig returns an S-shard Burrow deployment tuned for the
// scaling experiments: laned chains under the parallel per-tick driver, a
// lazily built header-relay mesh, and a keyed user population funded across
// the shards. validators ≤ 0 keeps the paper's 10 per shard; the scaling
// grid uses 4 to keep the consensus message volume proportionate at 64
// chains. A handful of regular clients ride along as relayer/deployer
// identities.
func ShardedScaleConfig(shards, validators, users int) Config {
	cfg := ShardedConfig(shards, 4)
	cfg.Lanes = true
	cfg.LazyRelays = true
	cfg.ParallelTick = true
	cfg.Users = users
	cfg.UserFunds = u256.FromUint64(1 << 50)
	if validators > 0 {
		for i := range cfg.Specs {
			cfg.Specs[i].Validators = validators
		}
	}
	return cfg
}

// ClientKey returns the deterministic key pair of the i-th universe client;
// genesis allocations and workloads use it to know client addresses before
// the universe exists.
func ClientKey(i int) *keys.KeyPair { return keys.Deterministic(uint64(1000 + i)) }

// userSeedBase offsets user key seeds far above the client range.
const userSeedBase = 10_000_000

// UserKey returns the deterministic key pair of the i-th synthetic user
// (Config.Users). Derivation is pure, so workloads re-derive the keys of
// the users they drive instead of the universe retaining a million pairs.
func UserKey(i int) *keys.KeyPair { return keys.Deterministic(uint64(userSeedBase + i)) }

// userBatch is the streaming granularity of bulk user provisioning: only
// one batch of derived keys is alive at a time per chain genesis.
const userBatch = 2048

// fundUsers credits every user homed on the chain at position pos (user i
// lives on chain i mod stride). Keys are derived in parallel batches on the
// shared crypto pool and the addresses discarded immediately after funding,
// so provisioning a million users costs bounded memory: one batch of key
// pairs, ever.
func fundUsers(db *state.DB, pos, stride, users int, funds u256.Int) {
	addrs := make([]hashing.Address, userBatch)
	var wg sync.WaitGroup
	for base := pos; base < users; base += stride * userBatch {
		n := (users - base + stride - 1) / stride
		if n > userBatch {
			n = userBatch
		}
		wg.Add(n)
		for k := 0; k < n; k++ {
			k := k
			idx := base + k*stride
			keys.SharedPool().Go(func() {
				defer wg.Done()
				addrs[k] = UserKey(idx).Address()
			})
		}
		wg.Wait()
		for k := 0; k < n; k++ {
			db.AddBalance(addrs[k], funds)
		}
	}
}

// Universe is a running multi-chain simulation.
type Universe struct {
	Sched *simclock.Scheduler
	Net   *simnet.Network

	chains  map[hashing.ChainID]*chain.Chain
	order   []hashing.ChainID
	bft     []*chain.BFTNode
	pow     []*chain.PoWNode
	clients []*relay.Client

	counters    *metrics.Counters
	reg         *metrics.Registry      // nil unless Config.Metrics/Trace
	scBase      types.SenderCacheStats // sender-cache stats at creation
	moverCfg    relay.MoverConfig
	submitLinks map[hashing.ChainID]*simnet.Link
	relayLinks  map[[2]hashing.ChainID]*simnet.Link

	// Laned/scaling state (Config.Lanes, LazyRelays, Users, ParallelTick).
	lanes        map[hashing.ChainID]*simclock.Lane
	pos          map[hashing.ChainID]int // chain position in configuration order
	lazyRelays   bool
	relayDelay   time.Duration
	relayFaults  simnet.LinkFaults
	relayWindow  int
	relaySeed    int64
	users        int
	submitDelay  time.Duration
	parallelTick bool
	tickWorkers  int

	driver  *simclock.Realtime // non-nil with Config.Realtime
	tcp     *simnet.TCP        // non-nil with Config.TCPWan
	rpcs    map[hashing.ChainID]*rpc.Server
	wallReg *metrics.Registry // wall-clock RPC latencies; nil without RPC
}

// New builds a universe; call Start to begin block production.
func New(cfg Config) (*Universe, error) {
	if len(cfg.Specs) == 0 {
		return nil, errors.New("universe: no chains configured")
	}
	if cfg.TCPWan && !cfg.Realtime {
		return nil, errors.New("universe: TCPWan requires Realtime (sockets cannot run on virtual time)")
	}
	if cfg.Realtime && cfg.Chaos != nil {
		return nil, errors.New("universe: Chaos is a discrete-event feature, incompatible with Realtime")
	}
	if cfg.Lanes && cfg.Realtime {
		return nil, errors.New("universe: Lanes is a discrete-event feature, incompatible with Realtime")
	}
	if cfg.ParallelTick && !cfg.Lanes {
		return nil, errors.New("universe: ParallelTick requires Lanes")
	}
	sched := simclock.New()
	netCfg := simnet.Config{JitterFrac: 0.1, Seed: cfg.NetSeed}
	chaosSeed := cfg.NetSeed
	if cfg.Chaos != nil {
		chaosSeed = cfg.Chaos.Seed
		wan := cfg.Chaos.WAN
		netCfg.DropRate = wan.DropRate
		netCfg.DupRate = wan.DupRate
		netCfg.ReorderFrac = wan.ReorderFrac
		netCfg.MaxReorderDelay = wan.MaxReorderDelay
		if wan.JitterFrac > 0 {
			netCfg.JitterFrac = wan.JitterFrac
		}
		if wan.CorruptRate > 0 {
			// Consensus messages cross the WAN as typed values, not bytes, so
			// corruption tampers with the fields an attacker on the wire could
			// reach: proposal payload bytes and vote hashes.
			netCfg.CorruptRate = wan.CorruptRate
			netCfg.Tamper = tendermint.WireTamper()
		}
	}
	net := simnet.New(sched, netCfg)
	u := &Universe{
		Sched:       sched,
		Net:         net,
		chains:      make(map[hashing.ChainID]*chain.Chain, len(cfg.Specs)),
		counters:    metrics.NewCounters(),
		scBase:      types.ReadSenderCacheStats(),
		moverCfg:    relay.DefaultMoverConfig(),
		submitLinks: make(map[hashing.ChainID]*simnet.Link, len(cfg.Specs)),
		relayLinks:  make(map[[2]hashing.ChainID]*simnet.Link),
		pos:         make(map[hashing.ChainID]int, len(cfg.Specs)),
		lazyRelays:  cfg.LazyRelays,
		relayDelay:  cfg.RelayDelay,
		relaySeed:   chaosSeed,
		relayWindow: 1,
		users:       cfg.Users,
		submitDelay: cfg.SubmitDelay,
	}
	if cfg.Lanes {
		u.lanes = make(map[hashing.ChainID]*simclock.Lane, len(cfg.Specs))
		u.parallelTick = cfg.ParallelTick
		u.tickWorkers = cfg.TickWorkers
	}
	net.Observe(u.counters)
	if cfg.Realtime {
		u.driver = simclock.NewRealtime(sched)
	}
	// The transport seam: consensus clusters send through this interface.
	// Default is the deterministic discrete-event WAN; TCPWan swaps in real
	// loopback sockets carrying codec-encoded frames, with deliveries
	// funneled back onto the realtime driver's event loop.
	var transport simnet.Transport = net
	if cfg.TCPWan {
		u.tcp = simnet.NewTCP(tendermint.WireMessages(), u.driver.Post, 0)
		transport = u.tcp
	}
	if cfg.Metrics || cfg.Trace {
		u.reg = metrics.NewRegistryWith(u.counters)
		u.reg.EnableTrace(cfg.Trace)
		net.SetRegistry(u.reg)
	}
	if cfg.Chaos != nil && cfg.Chaos.Mover != nil {
		u.moverCfg = *cfg.Chaos.Mover
	}

	// One (possibly lossy) submission link per chain, shared by every
	// client: the client-to-chain path the chaos knobs can degrade.
	var submitFaults simnet.LinkFaults
	if cfg.Chaos != nil {
		submitFaults = cfg.Chaos.Submit
	}
	for i, spec := range cfg.Specs {
		link := simnet.NewLink(sched, cfg.SubmitDelay, submitFaults, chaosSeed+int64(i)*7919+1)
		link.Observe(u.counters, "submit")
		if u.reg != nil {
			link.SetRegistry(u.reg)
		}
		u.submitLinks[spec.Config.ChainID] = link
	}

	// Clients, funded on every chain.
	// Key derivation is pure (seed → key pair) and lands by index, so the
	// population comes up in parallel yet identical to a serial loop.
	clientKeys := make([]*keys.KeyPair, cfg.Clients)
	var kg sync.WaitGroup
	kg.Add(len(clientKeys))
	for i := range clientKeys {
		i := i
		keys.SharedPool().Go(func() {
			defer kg.Done()
			clientKeys[i] = ClientKey(i)
		})
	}
	kg.Wait()
	for i := range clientKeys {
		cl := relay.NewClient(clientKeys[i], sched, cfg.SubmitDelay)
		// All clients sign on the shared crypto pool: the ECDSA overlaps
		// with the event loop's work during the submission delay instead of
		// serializing in front of it. Simulated results are unaffected (the
		// signature is excluded from tx ids and waited on before admission).
		cl.SetSigner(keys.SharedPool())
		for id, link := range u.submitLinks {
			cl.SetSubmitLink(id, link)
		}
		u.clients = append(u.clients, cl)
	}
	userFunds := cfg.UserFunds
	if userFunds.IsZero() {
		userFunds = cfg.ClientFunds
	}
	posOf := make(map[hashing.ChainID]int, len(cfg.Specs))
	for i, spec := range cfg.Specs {
		posOf[spec.Config.ChainID] = i
	}
	genesisFor := func(id hashing.ChainID) func(db *state.DB) {
		return func(db *state.DB) {
			for _, kp := range clientKeys {
				db.AddBalance(kp.Address(), cfg.ClientFunds)
			}
			if cfg.Users > 0 {
				fundUsers(db, posOf[id], len(cfg.Specs), cfg.Users, userFunds)
			}
			if cfg.ExtraGenesis != nil {
				cfg.ExtraGenesis(id, db)
			}
		}
	}

	// Every chain knows every other chain's parameters (§IV-A).
	params := make([]core.ChainParams, 0, len(cfg.Specs))
	for _, spec := range cfg.Specs {
		params = append(params, spec.Config.Params())
	}

	var nextNodeID simnet.NodeID = 1
	for pos, spec := range cfg.Specs {
		if spec.Config.State == (state.Options{}) && cfg.State != (state.Options{}) {
			// Inherit the universe default; file-backed chains each get
			// their own subdirectory so segment files never collide.
			spec.Config.State = cfg.State
			if spec.Config.State.Backend == backend.KindFile {
				spec.Config.State.Dir = filepath.Join(cfg.State.Dir, spec.Config.ChainID.String())
			}
		}
		c, err := chain.New(spec.Config, core.NewHeaderStore(params...), genesisFor(spec.Config.ChainID))
		if err != nil {
			return nil, fmt.Errorf("universe: %w", err)
		}
		u.chains[spec.Config.ChainID] = c
		u.order = append(u.order, spec.Config.ChainID)
		u.pos[spec.Config.ChainID] = pos
		c.Headers().Observe(u.counters)
		if u.reg != nil {
			c.SetObserver(u.reg, sched.Now)
		}

		// In laned mode each chain gets its own lane and its own WAN
		// instance built on it: consensus timers, validator message
		// deliveries, and block commits all become lane events, executable
		// concurrently with other chains' same-timestamp events. Block
		// listeners and tx waiters are re-dispatched onto the global
		// timeline via Post — cross-chain callbacks must run between waves,
		// and routing them in both drivers keeps the serial and parallel
		// event streams identical.
		clk := simclock.Clock(sched)
		tp := transport
		if cfg.Lanes {
			lane := sched.NewLane()
			u.lanes[spec.Config.ChainID] = lane
			clk = lane
			laneNetCfg := netCfg
			laneNetCfg.Seed = netCfg.Seed + int64(pos)*1_000_003 + 11
			cnet := simnet.New(lane, laneNetCfg)
			cnet.Observe(u.counters)
			cnet.SetGaugeLabel("wan." + spec.Config.ChainID.String())
			if u.reg != nil {
				cnet.SetRegistry(u.reg)
			}
			tp = cnet
			c.SetDispatcher(lane.Post)
		}

		switch spec.Consensus {
		case ConsensusBFT:
			n := spec.Validators
			ids := make([]simnet.NodeID, n)
			regions := make([]simnet.Region, n)
			for i := 0; i < n; i++ {
				ids[i] = nextNodeID
				nextNodeID++
				regions[i] = simnet.Region((int(spec.Seed) + i) % simnet.RegionCount)
			}
			tmCfg := tendermint.DefaultConfig()
			tmCfg.Interval = spec.Config.BlockInterval
			node, err := chain.NewBFTNode(clk, tp, c, tmCfg, ids, regions)
			if err != nil {
				return nil, fmt.Errorf("universe: %w", err)
			}
			node.Observe(u.counters)
			if cfg.Chaos != nil {
				for v := 1; v <= cfg.Chaos.Equivocators && v < n; v++ {
					node.Cluster.SetByzantine(v, tendermint.ByzantineBehavior{
						EquivocateProposals: true,
						EquivocateVotes:     true,
					})
				}
			}
			u.bft = append(u.bft, node)
		case ConsensusPoW:
			u.pow = append(u.pow, chain.NewPoWNode(clk, c, spec.Seed, spec.Validators))
		default:
			return nil, fmt.Errorf("universe: unknown consensus kind %d", spec.Consensus)
		}
	}

	// Bidirectional header relays between every pair, each over its own
	// (possibly lossy) link. Each relay message re-sends a window of recent
	// headers, so drops heal as soon as a later message gets through.
	var relayFaults simnet.LinkFaults
	window := 1
	if cfg.Chaos != nil {
		relayFaults = cfg.Chaos.HeaderRelay
		window = cfg.Chaos.HeaderWindow
		if window <= 0 {
			window = 8
		}
	}
	u.relayFaults = relayFaults
	u.relayWindow = window
	if !cfg.LazyRelays {
		pair := 0
		for _, a := range u.order {
			for _, b := range u.order {
				if a != b {
					clk := simclock.Clock(sched)
					if lane, ok := u.lanes[b]; ok {
						// Deliveries touch only the destination chain's
						// header store; build the link on its lane.
						clk = lane
					}
					link := simnet.NewLink(clk, cfg.RelayDelay, relayFaults, chaosSeed+int64(pair)*104729+2)
					link.Observe(u.counters, "headers")
					if u.reg != nil {
						link.SetRegistry(u.reg)
					}
					u.relayLinks[[2]hashing.ChainID{a, b}] = link
					chain.ConnectHeaderRelayVia(u.chains[a], u.chains[b], link, window)
					pair++
				}
			}
		}
	}

	// Front-door RPC servers, one per chain on an ephemeral loopback port.
	// They share one wall-clock metrics registry — latencies here are real
	// time, never simulated time, so they stay out of u.reg.
	if cfg.RPC {
		u.wallReg = metrics.NewRegistry()
		u.rpcs = make(map[hashing.ChainID]*rpc.Server, len(u.order))
		for _, id := range u.order {
			srv := rpc.NewServer(u.chains[id], u.wallReg)
			if err := srv.Start(""); err != nil {
				u.Close()
				return nil, fmt.Errorf("universe: %w", err)
			}
			u.rpcs[id] = srv
		}
	}
	return u, nil
}

// Counters returns the universe's shared fault/retry counter set: simnet
// drops and duplicates, submission and header-relay link events, every
// mover's retry/recovery/timeout counts, and the sender-cache hit/miss
// deltas accumulated since the universe was created (folded in on each
// call — the cache itself is process-wide, the counters per-universe).
func (u *Universe) Counters() *metrics.Counters {
	cur := types.ReadSenderCacheStats()
	u.counters.Add("sendercache.hits", cur.Hits-u.scBase.Hits)
	u.counters.Add("sendercache.misses", cur.Misses-u.scBase.Misses)
	u.counters.Add("sendercache.evictions", cur.Evictions-u.scBase.Evictions)
	u.scBase = cur
	return u.counters
}

// Metrics returns the universe's observability registry, or nil when the
// layer is off (Config.Metrics/Trace unset). The nil registry is safe to
// record into and renders nothing.
func (u *Universe) Metrics() *metrics.Registry { return u.reg }

// SubmitLink returns the client→chain submission link of a chain (cut it to
// isolate clients from the chain).
func (u *Universe) SubmitLink(id hashing.ChainID) *simnet.Link { return u.submitLinks[id] }

// RelayLink returns the header relay link from chain a to chain b, or nil
// when it does not exist yet (Config.LazyRelays defers creation to first
// use; see EnsureRelay).
func (u *Universe) RelayLink(a, b hashing.ChainID) *simnet.Link {
	return u.relayLinks[[2]hashing.ChainID{a, b}]
}

// RelayLinkCount returns how many header-relay links exist right now. With
// LazyRelays it measures the active pair set; the eager mesh is always
// chains×(chains−1).
func (u *Universe) RelayLinkCount() int { return len(u.relayLinks) }

// EnsureRelay returns the a→b header relay link, creating it (and
// registering its OnBlock forwarder) on first use. The link's fault seed
// derives from the pair's configuration positions, so a lazily built mesh
// behaves identically no matter which order traffic first touches the
// pairs. Must be called from a global context (not inside a lane event):
// it registers a block listener on chain a.
func (u *Universe) EnsureRelay(a, b hashing.ChainID) *simnet.Link {
	key := [2]hashing.ChainID{a, b}
	if link, ok := u.relayLinks[key]; ok {
		return link
	}
	clk := simclock.Clock(u.Sched)
	if lane, ok := u.lanes[b]; ok {
		clk = lane
	}
	seed := u.relaySeed + (int64(u.pos[a])*int64(len(u.order))+int64(u.pos[b]))*104729 + 2
	link := simnet.NewLink(clk, u.relayDelay, u.relayFaults, seed)
	link.Observe(u.counters, "headers")
	if u.reg != nil {
		link.SetRegistry(u.reg)
	}
	u.relayLinks[key] = link
	chain.ConnectHeaderRelayVia(u.chains[a], u.chains[b], link, u.relayWindow)
	return link
}

// SetRelayerCut severs (or heals) every relayer-facing link in the
// universe: all client submission paths and all header relays. It models a
// relayer whose network partitions away mid-move.
func (u *Universe) SetRelayerCut(cut bool) {
	for _, link := range u.submitLinks {
		link.SetCut(cut)
	}
	for _, link := range u.relayLinks {
		link.SetCut(cut)
	}
}

// Start launches every chain's consensus. With Realtime the launch is
// posted onto the driver's event loop: the first cluster's proposals hit
// peer sockets the moment it starts, and the resulting deliveries must not
// race the remaining clusters' timer setup on the bare scheduler.
func (u *Universe) Start() {
	if u.driver != nil {
		u.driver.Post(u.startAll)
		return
	}
	u.startAll()
}

func (u *Universe) startAll() {
	for _, n := range u.bft {
		n.Start()
	}
	for _, n := range u.pow {
		n.Start()
	}
}

// Chain returns a chain by id.
func (u *Universe) Chain(id hashing.ChainID) *chain.Chain { return u.chains[id] }

// Close tears the universe down: RPC servers first (no new ingress), then
// the TCP transport's listeners and connections, then every chain's state
// backend (file handles of log-structured stores). The universe must not be
// used afterwards. All shutdown failures are aggregated with errors.Join —
// one chain failing to close must not mask another's error.
func (u *Universe) Close() error {
	var errs []error
	for _, id := range u.order {
		if srv, ok := u.rpcs[id]; ok {
			if err := srv.Close(); err != nil {
				errs = append(errs, fmt.Errorf("rpc %s: %w", id, err))
			}
		}
	}
	if u.tcp != nil {
		if err := u.tcp.Close(); err != nil {
			errs = append(errs, fmt.Errorf("tcp transport: %w", err))
		}
	}
	for _, id := range u.order {
		if err := u.chains[id].Close(); err != nil {
			errs = append(errs, fmt.Errorf("chain %s: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// RPCAddr returns a chain's front-door address (host:port), or "" when
// Config.RPC is off.
func (u *Universe) RPCAddr(id hashing.ChainID) string {
	if srv, ok := u.rpcs[id]; ok {
		return srv.Addr()
	}
	return ""
}

// WallMetrics returns the wall-clock metrics registry the RPC servers
// record into (per-method latency histograms), or nil when RPC is off.
// Quantiles are only safe to read after ingress stops.
func (u *Universe) WallMetrics() *metrics.Registry { return u.wallReg }

// Driver returns the wall-clock driver, or nil without Config.Realtime.
// Run it on its own goroutine; Start enqueues the consensus launch onto it,
// in either order:
//
//	u.Start()
//	go u.Driver().Run(stop)
func (u *Universe) Driver() *simclock.Realtime { return u.driver }

// BFTNodes returns every BFT consensus node, in chain configuration order —
// chaos harnesses inspect their clusters for equivocation evidence.
func (u *Universe) BFTNodes() []*chain.BFTNode { return u.bft }

// ChainIDs returns the chain ids in configuration order.
func (u *Universe) ChainIDs() []hashing.ChainID {
	out := make([]hashing.ChainID, len(u.order))
	copy(out, u.order)
	return out
}

// Client returns the i-th pre-funded client.
func (u *Universe) Client(i int) *relay.Client { return u.clients[i] }

// Users returns the configured synthetic user population size.
func (u *Universe) Users() int { return u.users }

// UserHome returns the chain the i-th synthetic user is funded on.
func (u *Universe) UserHome(i int) hashing.ChainID {
	return u.order[i%len(u.order)]
}

// UserClient builds a client over the i-th synthetic user's key, wired to
// every chain's submission link and the shared signing pool. The universe
// does not retain it — workloads create clients for exactly the users they
// drive, which is what keeps a million-user universe cheap.
func (u *Universe) UserClient(i int) *relay.Client {
	cl := relay.NewClient(UserKey(i), u.Sched, u.submitDelay)
	cl.SetSigner(keys.SharedPool())
	for id, link := range u.submitLinks {
		cl.SetSubmitLink(id, link)
	}
	return cl
}

// Mover returns a mover from src to dst, tuned by the chaos config (when
// set) and wired into the universe's shared counters. Each call returns a
// fresh mover with its own journal; hold on to one to exercise
// crash-recovery via Crash/Recover.
func (u *Universe) Mover(src, dst hashing.ChainID) *relay.Mover {
	if u.lazyRelays {
		// A move needs headers flowing both ways: the destination verifies
		// the Move1 proof against src headers, and the relayer confirms the
		// Move2 result with dst headers on the source side.
		u.EnsureRelay(src, dst)
		u.EnsureRelay(dst, src)
	}
	m := relay.NewMoverWith(u.Sched, u.chains[src], u.chains[dst],
		u.moverCfg, relay.NewJournal(), u.counters)
	m.SetRegistry(u.reg)
	return m
}

// SetParallelTick switches the parallel per-tick driver on or off (only
// meaningful in a laned universe; workers ≤ 0 means GOMAXPROCS). Results
// are bit-identical either way — this is purely a wall-clock knob.
func (u *Universe) SetParallelTick(on bool, workers int) {
	u.parallelTick = on && u.lanes != nil
	u.tickWorkers = workers
}

// Run advances the simulation by d.
func (u *Universe) Run(d time.Duration) {
	u.runTo(u.Sched.Now() + d)
}

// runTo advances to an absolute simulated time on the configured driver.
func (u *Universe) runTo(t time.Duration) {
	if u.parallelTick {
		u.Sched.RunUntilParallel(t, u.tickWorkers)
		return
	}
	u.Sched.RunUntil(t)
}

// RunUntil advances the simulation until cond holds or the timeout elapses,
// returning whether cond held.
func (u *Universe) RunUntil(cond func() bool, timeout time.Duration) bool {
	deadline := u.Sched.Now() + timeout
	for u.Sched.Now() < deadline {
		if cond() {
			return true
		}
		u.runTo(u.Sched.Now() + 100*time.Millisecond)
	}
	return cond()
}

// ErrTxTimeout reports a transaction that did not commit in time.
var ErrTxTimeout = errors.New("universe: transaction did not commit in time")

// WaitTx advances the simulation until the transaction executes on c,
// returning its receipt.
func (u *Universe) WaitTx(c *chain.Chain, id hashing.Hash, timeout time.Duration) (*types.Receipt, error) {
	ok := u.RunUntil(func() bool {
		_, found := c.Receipt(id)
		return found
	}, timeout)
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrTxTimeout, id, c.ChainID())
	}
	rec, _ := c.Receipt(id)
	return rec, nil
}

// waitSigned delivers a signed transaction and advances the simulation
// until it commits, resubmitting the same signed bytes every half minute:
// with a lossy submission link a single delivery attempt would wedge the
// harness on the first dropped message. Resubmission is idempotent (pool
// dedup + stale-nonce drop), so a duplicate can never re-execute.
func (u *Universe) waitSigned(cl *relay.Client, c *chain.Chain, tx *types.Transaction,
	timeout time.Duration) (*types.Receipt, error) {
	const resubmitEvery = 30 * time.Second
	txid := tx.ID()
	deadline := u.Sched.Now() + timeout
	for {
		cl.SubmitSigned(c, tx)
		window := resubmitEvery
		if left := deadline - u.Sched.Now(); left < window {
			window = left
		}
		ok := u.RunUntil(func() bool {
			_, found := c.Receipt(txid)
			return found
		}, window)
		if ok {
			rec, _ := c.Receipt(txid)
			return rec, nil
		}
		if u.Sched.Now() >= deadline {
			return nil, fmt.Errorf("%w: %s on %s", ErrTxTimeout, txid, c.ChainID())
		}
	}
}

// MustDeploy deploys a native contract via the client and runs the
// simulation until it commits, returning the address. The submission is
// retried, so it survives a lossy submission link.
func (u *Universe) MustDeploy(cl *relay.Client, c *chain.Chain, name string, args []byte,
	value u256.Int, timeout time.Duration) (hashing.Address, error) {
	tx, err := cl.SignedCreate(c, evm.NativeDeployment(name, args), value)
	if err != nil {
		return hashing.Address{}, err
	}
	rec, err := u.waitSigned(cl, c, tx, timeout)
	if err != nil {
		return hashing.Address{}, err
	}
	if !rec.Succeeded() {
		return hashing.Address{}, fmt.Errorf("universe: deploy %s: %s", name, rec.Err)
	}
	return rec.Created, nil
}

// MustCall submits a call via the client and runs the simulation until it
// commits, returning the receipt. The submission is retried, so it survives
// a lossy submission link.
func (u *Universe) MustCall(cl *relay.Client, c *chain.Chain, to hashing.Address,
	data []byte, value u256.Int, timeout time.Duration) (*types.Receipt, error) {
	tx, err := cl.SignedCall(c, to, data, value)
	if err != nil {
		return nil, err
	}
	rec, err := u.waitSigned(cl, c, tx, timeout)
	if err != nil {
		return nil, err
	}
	if !rec.Succeeded() {
		return nil, fmt.Errorf("universe: call failed: %s", rec.Err)
	}
	return rec, nil
}

// CompleteAndWait finishes a move whose Move1 already executed and blocks
// (in simulated time) until Move2 commits.
func (u *Universe) CompleteAndWait(cl *relay.Client, src, dst hashing.ChainID,
	contract hashing.Address, timeout time.Duration) (*relay.MoveResult, error) {
	var result *relay.MoveResult
	u.Mover(src, dst).Complete(cl, contract, func(r *relay.MoveResult) {
		result = r
	})
	if !u.RunUntil(func() bool { return result != nil }, timeout) {
		return nil, fmt.Errorf("%w: completion of %s", ErrTxTimeout, contract)
	}
	if result.Err != nil {
		return result, result.Err
	}
	return result, nil
}

// MoveAndWait runs a full contract move and blocks (in simulated time)
// until it finishes.
func (u *Universe) MoveAndWait(cl *relay.Client, src, dst hashing.ChainID,
	contract hashing.Address, timeout time.Duration) (*relay.MoveResult, error) {
	var result *relay.MoveResult
	u.Mover(src, dst).Move(cl, contract, core.MoveToInput(dst), func(r *relay.MoveResult) {
		result = r
	})
	if !u.RunUntil(func() bool { return result != nil }, timeout) {
		return nil, fmt.Errorf("%w: move of %s", ErrTxTimeout, contract)
	}
	if result.Err != nil {
		return result, result.Err
	}
	return result, nil
}
