package shard

import (
	"time"

	"scmove/internal/chain"
	"scmove/internal/core"
	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/relay"
	"scmove/internal/simclock"
	"scmove/internal/types"
)

// Config wires an Engine. The engine takes the pieces it needs explicitly —
// chains, a mover factory, per-contract owner clients — rather than a
// universe handle, so it composes with any harness and imports no wiring
// packages.
type Config struct {
	// Clock is the global scheduler. Ticks, move submissions, and location
	// updates are all global events: in a laned universe the policy reads
	// and steers every chain, so it must run between waves.
	Clock *simclock.Scheduler
	// Chains lists the shards in configuration order.
	Chains []*chain.Chain
	// Mover returns a relayer between two shards (universe.Mover, with
	// lazy relay-link creation riding along for free).
	Mover func(src, dst hashing.ChainID) *relay.Mover
	// Home resolves a transaction sender to its home chain, feeding the
	// affinity signal. Nil disables caller-home attribution; the load
	// signal still works.
	Home func(addr hashing.Address) (hashing.ChainID, bool)
	// Interval is the policy tick spacing (default 30 s).
	Interval time.Duration
	// Policy decides the migrations.
	Policy Policy
	// Counters, when set, receives shard.* event counts.
	Counters *metrics.Counters
	// Registry, when set, receives the shard.moving gauge.
	Registry *metrics.Registry
}

// Stats summarizes an engine's activity.
type Stats struct {
	Ticks     uint64
	Issued    uint64
	Completed uint64
	Failed    uint64
}

// Engine watches traffic and congestion across a universe's shards and
// migrates tracked contracts per its policy. All state is touched only
// from global scheduler events (block listeners arrive re-dispatched onto
// the global timeline, ticks are global by construction), so the engine
// needs no locking and behaves identically under the serial and parallel
// drivers.
type Engine struct {
	cfg      Config
	interval time.Duration
	chains   map[hashing.ChainID]*chain.Chain
	order    []hashing.ChainID

	loc     map[hashing.Address]hashing.ChainID
	owner   map[hashing.Address]*relay.Client
	tracked []hashing.Address // registration order — the policy's iteration order
	window  map[hashing.Address]*ContractLoad
	chWin   map[hashing.ChainID]*ChainLoad
	moving  map[hashing.Address]bool

	stats   Stats
	stopped bool
}

// New builds an engine and registers its block listeners; call Track for
// each managed contract, then Start.
func New(cfg Config) *Engine {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	e := &Engine{
		cfg:      cfg,
		interval: cfg.Interval,
		chains:   make(map[hashing.ChainID]*chain.Chain, len(cfg.Chains)),
		loc:      make(map[hashing.Address]hashing.ChainID),
		owner:    make(map[hashing.Address]*relay.Client),
		window:   make(map[hashing.Address]*ContractLoad),
		chWin:    make(map[hashing.ChainID]*ChainLoad),
		moving:   make(map[hashing.Address]bool),
	}
	for _, c := range cfg.Chains {
		c := c
		id := c.ChainID()
		e.chains[id] = c
		e.order = append(e.order, id)
		e.chWin[id] = &ChainLoad{ID: id, MaxTxs: c.Config().MaxBlockTxs}
		c.OnBlock(func(b *types.Block, _ []*types.Receipt) { e.observe(id, b) })
	}
	return e
}

// observe folds one committed block into the traffic windows.
func (e *Engine) observe(id hashing.ChainID, b *types.Block) {
	if e.stopped {
		return
	}
	w := e.chWin[id]
	w.Blocks++
	w.Txs += uint64(len(b.Txs))
	for _, tx := range b.Txs {
		if tx.Kind != types.TxCall {
			continue
		}
		cw, ok := e.window[tx.To]
		if !ok {
			continue
		}
		cw.Total++
		if e.cfg.Home == nil {
			continue
		}
		if sender, err := tx.Sender(); err == nil {
			if home, ok := e.cfg.Home(sender); ok {
				cw.ByHome[home]++
			}
		}
	}
}

// Track registers a contract the engine may migrate: where it lives now
// and the client that owns it (moveTo is owner-gated, so migrations are
// submitted by the owner).
func (e *Engine) Track(contract hashing.Address, home hashing.ChainID, owner *relay.Client) {
	if _, ok := e.loc[contract]; ok {
		return
	}
	e.loc[contract] = home
	e.owner[contract] = owner
	e.tracked = append(e.tracked, contract)
	e.window[contract] = &ContractLoad{
		Contract: contract,
		ByHome:   make(map[hashing.ChainID]uint64, len(e.order)),
	}
}

// Location returns where the engine believes a contract lives. During a
// migration it still reports the source chain — callers racing a move see
// their transactions fail on the locked contract and retry, exactly as
// users of a real deployment would.
func (e *Engine) Location(contract hashing.Address) hashing.ChainID { return e.loc[contract] }

// Moving reports how many migrations are in flight.
func (e *Engine) Moving() int { return len(e.moving) }

// IsMoving reports whether a contract is mid-migration. Workload drivers
// use it to pause a contract's traffic instead of burning block space on
// calls that the locked contract will reject.
func (e *Engine) IsMoving(contract hashing.Address) bool { return e.moving[contract] }

// Stats returns the engine's activity counts.
func (e *Engine) Stats() Stats { return e.stats }

// Start schedules the recurring policy tick.
func (e *Engine) Start() {
	e.cfg.Clock.After(e.interval, e.tick)
}

// Stop halts ticking and observation; in-flight moves still run to
// completion (the relayer owns them).
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) tick() {
	if e.stopped {
		return
	}
	e.stats.Ticks++
	e.count("shard.ticks")
	snap := e.snapshot()
	for _, m := range e.cfg.Policy.Plan(snap) {
		if e.moving[m.Contract] || e.loc[m.Contract] != m.From || m.From == m.To {
			continue
		}
		e.issue(m)
	}
	e.reset()
	e.cfg.Clock.After(e.interval, e.tick)
}

// snapshot assembles the policy's view: chains in configuration order,
// contracts in registration order, mid-move contracts excluded.
func (e *Engine) snapshot() *Snapshot {
	s := &Snapshot{
		Now:   e.cfg.Clock.Now(),
		Order: e.order,
	}
	for _, id := range e.order {
		w := *e.chWin[id]
		w.Pending = e.chains[id].PendingTxs()
		s.Chains = append(s.Chains, w)
	}
	for _, addr := range e.tracked {
		if e.moving[addr] {
			continue
		}
		w := e.window[addr]
		w.Home = e.loc[addr]
		s.Contracts = append(s.Contracts, w)
	}
	return s
}

// reset ages the traffic windows for the next interval. Contract windows
// are leaky buckets — each tick keeps 3/4 of the count — so a contract
// whose community traffic is thin but persistent (the norm at 64 chains,
// where a congested hot shard spreads a few hundred calls per window over
// a hundred contracts) still accumulates a stable affinity signal instead
// of flickering around the MinTxs floor and never sustaining through
// hysteresis. Chain windows are true per-interval windows and reset hard.
func (e *Engine) reset() {
	for _, w := range e.window {
		w.Total = w.Total * 3 / 4
		for k, n := range w.ByHome {
			if n = n * 3 / 4; n == 0 {
				delete(w.ByHome, k)
			} else {
				w.ByHome[k] = n
			}
		}
	}
	for _, w := range e.chWin {
		w.Blocks, w.Txs = 0, 0
	}
}

// issue launches one migration through the relay.
func (e *Engine) issue(m Migration) {
	e.moving[m.Contract] = true
	e.stats.Issued++
	e.count("shard.moves_issued")
	if m.Reason != "" {
		e.count("shard.moves_" + m.Reason)
	}
	e.gauge()
	mover := e.cfg.Mover(m.From, m.To)
	mover.Move(e.owner[m.Contract], m.Contract, core.MoveToInput(m.To), func(r *relay.MoveResult) {
		delete(e.moving, m.Contract)
		e.gauge()
		if r.Err != nil {
			e.stats.Failed++
			e.count("shard.moves_failed")
			return
		}
		e.loc[m.Contract] = m.To
		e.stats.Completed++
		e.count("shard.moves_completed")
	})
}

func (e *Engine) count(name string) {
	if e.cfg.Counters != nil {
		e.cfg.Counters.Inc(name)
	}
}

func (e *Engine) gauge() {
	if e.cfg.Registry.Enabled() {
		e.cfg.Registry.SetGauge("shard.moving", float64(len(e.moving)))
	}
}
