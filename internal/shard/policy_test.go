package shard

import (
	"testing"

	"scmove/internal/hashing"
)

func addr(b byte) hashing.Address {
	var a hashing.Address
	a[0] = b
	return a
}

func snap3() *Snapshot {
	return &Snapshot{
		Order: []hashing.ChainID{1, 2, 3},
		Chains: []ChainLoad{
			{ID: 1, MaxTxs: 60},
			{ID: 2, MaxTxs: 60},
			{ID: 3, MaxTxs: 60},
		},
	}
}

func TestGreedyAffinityDominance(t *testing.T) {
	g := &Greedy{Affinity: true, Dominance: 0.5, MinTxs: 4}
	s := snap3()
	s.Contracts = []*ContractLoad{
		// Dominated by chain 2 callers: moves.
		{Contract: addr(1), Home: 1, Total: 10,
			ByHome: map[hashing.ChainID]uint64{1: 2, 2: 8}},
		// Majority local: stays.
		{Contract: addr(2), Home: 1, Total: 10,
			ByHome: map[hashing.ChainID]uint64{1: 7, 2: 3}},
		// Dominated remotely but under the MinTxs floor: stays.
		{Contract: addr(3), Home: 1, Total: 3,
			ByHome: map[hashing.ChainID]uint64{3: 3}},
	}
	out := g.Plan(s)
	if len(out) != 1 {
		t.Fatalf("planned %d moves, want 1: %+v", len(out), out)
	}
	if m := out[0]; m.Contract != addr(1) || m.From != 1 || m.To != 2 || m.Reason != "affinity" {
		t.Fatalf("wrong move: %+v", m)
	}
}

func TestGreedyLoadSheddingHalvesImbalance(t *testing.T) {
	g := &Greedy{Capacity: 100, MaxMoves: 8}
	s := snap3()
	s.Chains[0].Pending = 500 // hot
	s.Chains[1].Pending = 50
	s.Chains[2].Pending = 10 // cold
	for i := 0; i < 6; i++ {
		s.Contracts = append(s.Contracts, &ContractLoad{Contract: addr(byte(i + 1)), Home: 1})
	}
	out := g.Plan(s)
	// quota = (6 - 0) / 2 = 3, all hot -> cold.
	if len(out) != 3 {
		t.Fatalf("planned %d moves, want 3: %+v", len(out), out)
	}
	for _, m := range out {
		if m.From != 1 || m.To != 3 || m.Reason != "load" {
			t.Fatalf("wrong move: %+v", m)
		}
	}
	// Below the congestion threshold nothing sheds.
	s.Chains[0].Pending = 90
	if out := g.Plan(s); len(out) != 0 {
		t.Fatalf("uncongested shard shed %d contracts", len(out))
	}
}

// TestGreedyBudgetsArePerSignal pins the starvation fix: a full slate of
// affinity proposals must not consume the load signal's budget — at scale
// the affinity set churns tick to tick while the load set is the stable
// one that survives hysteresis.
func TestGreedyBudgetsArePerSignal(t *testing.T) {
	g := &Greedy{Affinity: true, MinTxs: 1, Capacity: 100, MaxMoves: 2}
	s := snap3()
	s.Chains[0].Pending = 500
	s.Chains[2].Pending = 0
	for i := 0; i < 8; i++ {
		c := &ContractLoad{Contract: addr(byte(i + 1)), Home: 1, Total: 10,
			ByHome: map[hashing.ChainID]uint64{2: 10}}
		s.Contracts = append(s.Contracts, c)
	}
	out := g.Plan(s)
	byReason := map[string]int{}
	for _, m := range out {
		byReason[m.Reason]++
	}
	if byReason["affinity"] != 2 || byReason["load"] != 2 {
		t.Fatalf("per-signal budgets violated: %v (want 2 affinity + 2 load)", byReason)
	}
	// No contract is planned twice across the two signals.
	seen := map[hashing.Address]bool{}
	for _, m := range out {
		if seen[m.Contract] {
			t.Fatalf("contract %v planned twice", m.Contract)
		}
		seen[m.Contract] = true
	}
}

// fixedPolicy proposes a canned plan every tick.
type fixedPolicy struct{ plan []Migration }

func (f *fixedPolicy) Name() string               { return "fixed" }
func (f *fixedPolicy) Plan(*Snapshot) []Migration { return f.plan }

func TestHysteresisSustainAndCooldown(t *testing.T) {
	m := Migration{Contract: addr(1), From: 1, To: 2, Reason: "affinity"}
	inner := &fixedPolicy{plan: []Migration{m}}
	h := &Hysteresis{Inner: inner, Sustain: 2, Cooldown: 3}
	s := snap3()

	if out := h.Plan(s); len(out) != 0 {
		t.Fatalf("fired on first proposal: %+v", out)
	}
	if out := h.Plan(s); len(out) != 1 {
		t.Fatalf("did not fire after sustain: %+v", out)
	}
	// Cooldown: the same proposal is suppressed for the next 3 ticks even
	// though the inner policy keeps making it...
	for i := 0; i < 3; i++ {
		if out := h.Plan(s); len(out) != 0 {
			t.Fatalf("fired during cooldown tick %d: %+v", i, out)
		}
	}
	// ...after which the sustain count starts over.
	if out := h.Plan(s); len(out) != 0 {
		t.Fatal("fired without re-sustaining after cooldown")
	}
	if out := h.Plan(s); len(out) != 1 {
		t.Fatal("did not fire after re-sustaining")
	}
}

func TestHysteresisLapsedStreakResets(t *testing.T) {
	m := Migration{Contract: addr(1), From: 1, To: 2}
	inner := &fixedPolicy{plan: []Migration{m}}
	h := &Hysteresis{Inner: inner, Sustain: 2, Cooldown: 1}
	s := snap3()

	h.Plan(s) // streak 1
	inner.plan = nil
	h.Plan(s) // proposal lapses; streak must reset
	inner.plan = []Migration{m}
	if out := h.Plan(s); len(out) != 0 {
		t.Fatalf("lapsed streak carried over: %+v", out)
	}
	if out := h.Plan(s); len(out) != 1 {
		t.Fatal("did not fire after a fresh sustain")
	}
}

func TestHysteresisTargetChangeResets(t *testing.T) {
	inner := &fixedPolicy{plan: []Migration{{Contract: addr(1), From: 1, To: 2}}}
	h := &Hysteresis{Inner: inner, Sustain: 2, Cooldown: 1}
	s := snap3()
	h.Plan(s) // streak 1 toward chain 2
	inner.plan = []Migration{{Contract: addr(1), From: 1, To: 3}}
	if out := h.Plan(s); len(out) != 0 {
		t.Fatalf("fired on a changed target: %+v", out)
	}
	if out := h.Plan(s); len(out) != 1 {
		t.Fatal("did not fire after sustaining the new target")
	}
}
