// Package shard implements automatic contract migration across the shards
// of a universe: an engine that watches per-contract cross-chain traffic
// and per-shard congestion over decayed windows, and pluggable policies
// that turn those observations into Move1/Move2 migrations through the
// relay. The paper's conclusion names "decentralized load balancing smart
// contracts for sharded blockchains" as the natural application of the
// Move primitive (§X); this package is the centralized version of that
// controller, shared by the rebalancing workload and the scaling
// experiments.
package shard

import (
	"time"

	"scmove/internal/hashing"
)

// Migration is one policy decision: move a contract between shards.
type Migration struct {
	Contract hashing.Address
	From, To hashing.ChainID
	// Reason tags the signal that triggered the move ("affinity" or
	// "load"), for counters and traces.
	Reason string
}

// ContractLoad is one tracked contract's recent traffic: a leaky-bucket
// count that keeps 3/4 of its value across each policy tick, so the
// effective window is about four intervals.
type ContractLoad struct {
	Contract hashing.Address
	// Home is where the contract currently lives.
	Home hashing.ChainID
	// Total is the window's call count.
	Total uint64
	// ByHome buckets the window's calls by the *caller's* home chain: a
	// contract whose callers mostly live elsewhere is cross-chain pressure
	// the affinity policy can relieve. Only populated when the engine has a
	// caller-home resolver.
	ByHome map[hashing.ChainID]uint64
}

// Remote returns the window's calls from users homed off the contract's
// current chain.
func (c *ContractLoad) Remote() uint64 { return c.Total - c.ByHome[c.Home] }

// ChainLoad is one shard's congestion signals over the last window.
type ChainLoad struct {
	ID hashing.ChainID
	// Pending is the current transaction-pool depth.
	Pending int
	// Blocks and Txs count the window's committed blocks and transactions.
	Blocks, Txs uint64
	// MaxTxs is the chain's per-block transaction cap.
	MaxTxs int
}

// Fullness is the window's mean block utilization in [0, 1].
func (c ChainLoad) Fullness() float64 {
	if c.Blocks == 0 || c.MaxTxs <= 0 {
		return 0
	}
	return float64(c.Txs) / (float64(c.Blocks) * float64(c.MaxTxs))
}

// Snapshot is what a policy sees at each tick. All slices are in
// deterministic order (chains in configuration order, contracts in
// registration order), and policies must not iterate Go maps directly —
// walk Order instead — so plans are reproducible.
type Snapshot struct {
	Now time.Duration
	// Order lists the chain ids in configuration order.
	Order []hashing.ChainID
	// Chains is indexed like Order.
	Chains []ChainLoad
	// Contracts holds every tracked contract not currently mid-move.
	Contracts []*ContractLoad
}

// Policy turns a load snapshot into migrations. Implementations may keep
// state between ticks (sustain windows, cooldowns); they are called from
// one goroutine only.
type Policy interface {
	Name() string
	Plan(s *Snapshot) []Migration
}

// Greedy migrates eagerly on the current window alone. Two independent
// signals, both optional:
//
//   - Affinity: a contract whose window traffic is dominated by callers
//     homed on another chain moves to that chain.
//   - Load (Capacity > 0): the shard with the deepest transaction pool,
//     once past Capacity, sheds contracts to the shallowest shard until
//     the contract-count imbalance would halve.
type Greedy struct {
	// Affinity enables caller-home dominance migration.
	Affinity bool
	// Dominance is the traffic share the winning chain must hold
	// (default 0.5).
	Dominance float64
	// MinTxs ignores contracts with fewer window calls (default 8).
	MinTxs uint64
	// Capacity is the pool depth past which a shard counts as congested;
	// 0 disables load shedding.
	Capacity int
	// MaxMoves caps migrations per tick *per signal* (default 8). The
	// budgets are independent: at scale the affinity set is noisy (thin
	// per-contract windows churn which contracts qualify each tick) and
	// under a shared budget it starves the load signal, whose stable
	// proposals are the ones that survive hysteresis and actually unstick
	// a congested shard.
	MaxMoves int
}

// Name implements Policy.
func (g *Greedy) Name() string { return "greedy" }

// Plan implements Policy.
func (g *Greedy) Plan(s *Snapshot) []Migration {
	budget := g.MaxMoves
	if budget <= 0 {
		budget = 8
	}
	dom := g.Dominance
	if dom <= 0 {
		dom = 0.5
	}
	minTxs := g.MinTxs
	if minTxs == 0 {
		minTxs = 8
	}
	var out []Migration
	planned := make(map[hashing.Address]bool)

	if g.Affinity {
		remaining := budget
		for _, c := range s.Contracts {
			if remaining == 0 {
				break
			}
			if c.Total < minTxs {
				continue
			}
			best, bestN := c.Home, c.ByHome[c.Home]
			for _, id := range s.Order {
				if n := c.ByHome[id]; n > bestN {
					best, bestN = id, n
				}
			}
			if best != c.Home && float64(bestN) >= dom*float64(c.Total) {
				out = append(out, Migration{Contract: c.Contract, From: c.Home, To: best, Reason: "affinity"})
				planned[c.Contract] = true
				remaining--
			}
		}
	}

	if g.Capacity > 0 && len(s.Chains) > 1 {
		hot, cold := s.Chains[0], s.Chains[0]
		for _, cl := range s.Chains[1:] {
			if cl.Pending > hot.Pending {
				hot = cl
			}
			if cl.Pending < cold.Pending {
				cold = cl
			}
		}
		if hot.ID != cold.ID && hot.Pending > g.Capacity {
			counts := make(map[hashing.ChainID]int)
			for _, c := range s.Contracts {
				counts[c.Home]++
			}
			// Halve the contract-count imbalance, a few at a time.
			quota := (counts[hot.ID] - counts[cold.ID]) / 2
			if quota > budget {
				quota = budget
			}
			for _, c := range s.Contracts {
				if quota <= 0 {
					break
				}
				if c.Home != hot.ID || planned[c.Contract] {
					continue
				}
				out = append(out, Migration{Contract: c.Contract, From: hot.ID, To: cold.ID, Reason: "load"})
				planned[c.Contract] = true
				quota--
			}
		}
	}
	return out
}

// Hysteresis wraps an inner policy with sustain and cooldown windows: a
// migration must be re-proposed for Sustain consecutive ticks before it is
// issued, and a contract that just moved is immovable for Cooldown ticks.
// It trades reaction time for stability — a contract bouncing between two
// shards on alternating windows costs two moves per oscillation and helps
// nobody.
type Hysteresis struct {
	Inner Policy
	// Sustain is how many consecutive ticks the same (contract, target)
	// proposal must recur before it fires (default 2).
	Sustain int
	// Cooldown is how many ticks a contract rests after a move (default 3).
	Cooldown int

	streak map[hashing.Address]sustained
	cool   map[hashing.Address]int
}

type sustained struct {
	to    hashing.ChainID
	count int
}

// Name implements Policy.
func (h *Hysteresis) Name() string { return h.Inner.Name() + "+hysteresis" }

// Plan implements Policy.
func (h *Hysteresis) Plan(s *Snapshot) []Migration {
	if h.streak == nil {
		h.streak = make(map[hashing.Address]sustained)
		h.cool = make(map[hashing.Address]int)
	}
	sustain := h.Sustain
	if sustain <= 0 {
		sustain = 2
	}
	cooldown := h.Cooldown
	if cooldown <= 0 {
		cooldown = 3
	}
	for c, left := range h.cool {
		if left <= 0 {
			delete(h.cool, c)
		} else {
			h.cool[c] = left - 1
		}
	}
	proposed := h.Inner.Plan(s)
	seen := make(map[hashing.Address]bool, len(proposed))
	var out []Migration
	for _, m := range proposed {
		seen[m.Contract] = true
		if _, resting := h.cool[m.Contract]; resting {
			continue
		}
		st := h.streak[m.Contract]
		if st.to == m.To {
			st.count++
		} else {
			st = sustained{to: m.To, count: 1}
		}
		if st.count >= sustain {
			out = append(out, m)
			delete(h.streak, m.Contract)
			h.cool[m.Contract] = cooldown
			continue
		}
		h.streak[m.Contract] = st
	}
	// A proposal that lapsed for a tick starts over.
	for c := range h.streak {
		if !seen[c] {
			delete(h.streak, c)
		}
	}
	return out
}
