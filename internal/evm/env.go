package evm

import (
	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// Word is a 32-byte storage key or value.
type Word = [32]byte

// Log is an event emitted by contract execution (LOG0-LOG4 or a native
// contract's Emit). Receipts aggregate the logs of a transaction.
type Log struct {
	Address hashing.Address
	Topics  []hashing.Hash
	Data    []byte
}

// StateAccess is the mutable world state as seen by the interpreter. It is
// implemented by the journaled StateDB in internal/state; tests use a
// lightweight in-memory fake.
//
// Location (the paper's Lc field, §III-C) is carried per account: contracts
// whose location differs from the executing chain are locked — readable but
// not writable. The interpreter enforces the lock; StateAccess only stores
// the field.
type StateAccess interface {
	// Exists reports whether the account has ever been touched (has code,
	// balance, nonce, storage, or an explicit location).
	Exists(addr hashing.Address) bool

	// CreateContract initializes addr as a contract with the given code and
	// the executing chain as its location. It fails the caller's invariants
	// if addr already has code; the interpreter checks for collisions first.
	CreateContract(addr hashing.Address, code []byte)

	GetBalance(addr hashing.Address) u256.Int
	AddBalance(addr hashing.Address, amount u256.Int)
	SubBalance(addr hashing.Address, amount u256.Int)

	GetNonce(addr hashing.Address) uint64
	SetNonce(addr hashing.Address, nonce uint64)

	GetCode(addr hashing.Address) []byte
	GetCodeHash(addr hashing.Address) hashing.Hash

	GetStorage(addr hashing.Address, key Word) Word
	// SetStorage stores value under key; storing the zero word deletes the
	// entry (EVM semantics).
	SetStorage(addr hashing.Address, key, value Word)

	// GetLocation returns the chain the account currently resides on. For
	// accounts created locally this is the local chain id.
	GetLocation(addr hashing.Address) hashing.ChainID
	// SetLocation updates the account's location field Lc.
	SetLocation(addr hashing.Address, chain hashing.ChainID)

	// GetMoveNonce returns the account's move nonce, incremented on every
	// successful Move1/Move2 (replay protection, paper Fig. 2).
	GetMoveNonce(addr hashing.Address) uint64
	SetMoveNonce(addr hashing.Address, nonce uint64)

	// DeleteAccount removes the account entirely (SELFDESTRUCT and stale
	// state pruning, paper §III-G(c)).
	DeleteAccount(addr hashing.Address)

	// Snapshot returns an identifier for the current state revision;
	// RevertToSnapshot rolls back every change made since.
	Snapshot() int
	RevertToSnapshot(id int)

	// AddLog records an emitted event; logs are rolled back with snapshots.
	AddLog(log *Log)
}

// ExecState is the state surface the transaction-application layer drives:
// the interpreter's StateAccess plus per-transaction log draining. It is
// implemented by the canonical journaled DB and by the speculative views
// the parallel block executor hands to each lane.
type ExecState interface {
	StateAccess
	// TakeLogs returns and clears the logs accumulated since the last call
	// (called once per transaction to populate the receipt).
	TakeLogs() []*Log
}

// BlockContext is the immutable per-block execution environment.
type BlockContext struct {
	ChainID    hashing.ChainID
	Number     uint64
	Time       uint64 // unix seconds, simulated clock
	Coinbase   hashing.Address
	GasLimit   uint64
	Difficulty u256.Int
	// BlockHash returns the hash of a recent block by number (BLOCKHASH).
	BlockHash func(number uint64) hashing.Hash
}

// TxContext is the immutable per-transaction environment.
type TxContext struct {
	Origin   hashing.Address
	GasPrice u256.Int
}
