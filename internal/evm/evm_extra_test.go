package evm_test

import (
	"errors"
	"testing"

	"scmove/internal/evm"
	"scmove/internal/evm/asm"
	"scmove/internal/hashing"
	"scmove/internal/u256"
)

func TestDelegateCallRunsInCallerContext(t *testing.T) {
	e := newEnv(t, nil)
	// Library code writes 0x77 to slot 5 of *its caller's* storage and
	// exposes the original msg.sender via CALLER.
	library := addr(0xD1)
	e.db.CreateContract(library, asm.MustAssemble(`
		PUSH1 0x77
		PUSH1 5
		SSTORE
		CALLER
		PUSH1 0
		MSTORE
		PUSH1 32
		PUSH1 0
		RETURN
	`))
	// The proxy delegatecalls the library and returns its output.
	e.deploy(asm.MustAssemble(`
		PUSH1 32    ; outSize
		PUSH1 0     ; outOff
		PUSH1 0     ; inSize
		PUSH1 0     ; inOff
		PUSH20 0xd100000000000000000000000000000000000000
		PUSH3 0x0186a0
		DELEGATECALL
		POP
		PUSH1 32
		PUSH1 0
		RETURN
	`))
	ret, _ := e.call(t, nil)
	// Storage landed in the proxy, not the library.
	if got := e.db.GetStorage(contract, word(5)); got != word(0x77) {
		t.Fatalf("proxy slot5 = %x", got)
	}
	if got := e.db.GetStorage(library, word(5)); got != (evm.Word{}) {
		t.Fatal("library storage must stay untouched")
	}
	// CALLER inside the delegatecall is the original EOA.
	if got := hashing.AddressFromBytes(ret); got != origin {
		t.Fatalf("delegated CALLER = %s, want %s", got, origin)
	}
}

func TestExtCodeCopyAndHash(t *testing.T) {
	e := newEnv(t, nil)
	target := addr(0xD2)
	targetCode := asm.MustAssemble("PUSH1 1 PUSH1 2 ADD STOP")
	e.db.CreateContract(target, targetCode)
	// Copy the first 32 bytes of the target's code into memory and return.
	e.deploy(asm.MustAssemble(`
		PUSH1 32
		PUSH1 0
		PUSH1 0
		PUSH20 0xd200000000000000000000000000000000000000
		EXTCODECOPY
		PUSH1 32
		PUSH1 0
		RETURN
	`))
	ret, _ := e.call(t, nil)
	for i, b := range targetCode {
		if ret[i] != b {
			t.Fatalf("EXTCODECOPY byte %d = %x, want %x", i, ret[i], b)
		}
	}
	// And EXTCODEHASH matches the content-addressed code store.
	e.db.CreateContract(addr(0xD3), asm.MustAssemble(`
		PUSH20 0xd200000000000000000000000000000000000000
		EXTCODEHASH
		PUSH1 0
		MSTORE
		PUSH1 32
		PUSH1 0
		RETURN
	`))
	ret2, _, err := e.evm.Call(origin, addr(0xD3), nil, u256.Zero(), testGas)
	if err != nil {
		t.Fatal(err)
	}
	if hashing.HashFromBytes(ret2) != hashing.Sum(targetCode) {
		t.Fatal("EXTCODEHASH mismatch")
	}
}

func TestMemoryExpansionBounded(t *testing.T) {
	e := newEnv(t, nil)
	// MSTORE at a gigantic offset: the memory guard (or quadratic gas) must
	// stop it without allocating.
	e.deploy(asm.MustAssemble(`
		PUSH1 1
		PUSH32 0x0000000000000000000000000000000000000000000000000000001000000000
		MSTORE
		STOP
	`))
	_, _, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas)
	if err == nil {
		t.Fatal("huge memory expansion must fail")
	}
	if !errors.Is(err, evm.ErrMemoryLimit) && !errors.Is(err, evm.ErrOutOfGas) {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestValueCallStipend(t *testing.T) {
	e := newEnv(t, nil)
	// The callee only STOPs; a value-bearing call must succeed even when the
	// caller forwards zero gas, thanks to the stipend.
	callee := addr(0xD4)
	e.db.CreateContract(callee, []byte{byte(evm.STOP)})
	e.db.AddBalance(contract, u256.FromUint64(100))
	e.deploy(asm.MustAssemble(`
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH1 5      ; value
		PUSH20 0xd400000000000000000000000000000000000000
		PUSH1 0      ; gas: rely on the stipend
		CALL
		PUSH1 0
		SSTORE
		STOP
	`))
	e.call(t, nil)
	if got := e.db.GetStorage(contract, word(0)); got != word(1) {
		t.Fatalf("stipend call success flag = %x", got)
	}
	if got := e.db.GetBalance(callee); !got.Eq(u256.FromUint64(5)) {
		t.Fatalf("callee balance = %s", got)
	}
}

func TestStaticcallValueTransferBlocked(t *testing.T) {
	e := newEnv(t, nil)
	inner := addr(0xD5)
	e.db.CreateContract(inner, asm.MustAssemble(`
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH1 1      ; value transfer inside a static context
		PUSH20 0xd600000000000000000000000000000000000000
		GAS
		CALL
		PUSH1 0
		MSTORE
		PUSH1 32
		PUSH1 0
		RETURN
	`))
	e.db.AddBalance(inner, u256.FromUint64(10))
	e.deploy(asm.MustAssemble(`
		PUSH1 32
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH20 0xd500000000000000000000000000000000000000
		GAS
		STATICCALL
		POP
		PUSH1 32
		PUSH1 0
		RETURN
	`))
	ret, _ := e.call(t, nil)
	// The outer STATICCALL survives, but the inner value transfer failed:
	// the inner frame aborted, so its return data is empty (all zeros).
	if !u256.FromBytes(ret).IsZero() {
		t.Fatalf("inner value transfer must abort, got %x", ret)
	}
	if got := e.db.GetBalance(addr(0xD6)); !got.IsZero() {
		t.Fatal("no value may move inside a static context")
	}
}

func TestReturnDataCopyOutOfBounds(t *testing.T) {
	e := newEnv(t, nil)
	callee := addr(0xD7)
	e.db.CreateContract(callee, asm.MustAssemble(`
		PUSH1 32
		PUSH1 0
		RETURN
	`))
	// Ask RETURNDATACOPY for more bytes than returned: frame must abort.
	e.deploy(asm.MustAssemble(`
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH20 0xd700000000000000000000000000000000000000
		GAS
		CALL
		POP
		PUSH1 64     ; size > returndatasize
		PUSH1 0
		PUSH1 0
		RETURNDATACOPY
		STOP
	`))
	_, _, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas)
	if !errors.Is(err, evm.ErrReturnDataOOB) {
		t.Fatalf("want ErrReturnDataOOB, got %v", err)
	}
}

func TestGasMeterRefundAccounting(t *testing.T) {
	m := evm.NewGasMeter(1000)
	if err := m.Consume(400); err != nil {
		t.Fatal(err)
	}
	if m.Remaining() != 600 || m.Used() != 400 {
		t.Fatalf("remaining %d used %d", m.Remaining(), m.Used())
	}
	m.Refund(100)
	if m.Remaining() != 700 || m.Used() != 300 {
		t.Fatalf("after refund: remaining %d used %d", m.Remaining(), m.Used())
	}
	if err := m.Consume(701); !errors.Is(err, evm.ErrOutOfGas) {
		t.Fatalf("want ErrOutOfGas, got %v", err)
	}
	if m.Remaining() != 0 {
		t.Fatal("exhaustion must drain the meter")
	}
}

func TestBlockHashOpcode(t *testing.T) {
	e := newEnv(t, nil)
	// The test env has no BlockHash function: BLOCKHASH yields zero.
	e.deploy(asm.MustAssemble(`
		PUSH1 3
		BLOCKHASH
		PUSH1 0
		MSTORE
		PUSH1 32
		PUSH1 0
		RETURN
	`))
	ret, _ := e.call(t, nil)
	if !u256.FromBytes(ret).IsZero() {
		t.Fatalf("BLOCKHASH without oracle = %x", ret)
	}
}
