package evm

import (
	"errors"
	"fmt"
	"sync"

	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// EVM executes message calls and contract creations against a StateAccess.
// One EVM value serves one transaction; it is not safe for concurrent use.
type EVM struct {
	sched   Schedule
	state   StateAccess
	block   BlockContext
	tx      TxContext
	natives *Registry
	depth   int
}

// New returns an interpreter bound to the given state and context. natives
// may be nil when only bytecode contracts are executed.
func New(sched Schedule, state StateAccess, block BlockContext, tx TxContext, natives *Registry) *EVM {
	return &EVM{sched: sched, state: state, block: block, tx: tx, natives: natives}
}

// Schedule returns the gas schedule in force.
func (e *EVM) Schedule() *Schedule { return &e.sched }

// Block returns the block context.
func (e *EVM) Block() BlockContext { return e.block }

// State returns the underlying state access.
func (e *EVM) State() StateAccess { return e.state }

// frame is one call frame. Frames are pooled (acquireFrame/releaseFrame):
// the gas meter and stack are embedded by value, and the stack and memory
// backing arrays survive release, so a call frame costs no allocations once
// the pool is warm.
type frame struct {
	self     hashing.Address // storage and balance context
	codeAddr hashing.Address // whose code runs (differs under DELEGATECALL)
	caller   hashing.Address
	code     []byte
	input    []byte
	value    u256.Int
	gas      GasMeter
	static   bool

	mem        memory
	stk        stack
	returnData []byte
}

// framePool recycles call frames across message calls; a frame is acquired
// and released for every call, so pooling removes the frame, stack, and
// memory allocations from the interpreter hot path.
var framePool = sync.Pool{New: func() any { return new(frame) }}

func acquireFrame() *frame { return framePool.Get().(*frame) }

// releaseFrame zeroes the frame for reuse, retaining the stack's and
// memory's backing arrays. Callers must capture gas.Remaining() and must not
// retain the frame (or views into its memory) past release.
func releaseFrame(f *frame) {
	*f = frame{
		mem: memory{data: f.mem.data[:0]},
		stk: stack{data: f.stk.data[:0]},
	}
	framePool.Put(f)
}

// Call runs a message call from caller to to.
func (e *EVM) Call(caller, to hashing.Address, input []byte, value u256.Int, gas uint64) ([]byte, uint64, error) {
	return e.callInner(caller, to, to, input, value, gas, false, true)
}

// StaticCall runs a read-only message call; any state mutation aborts it.
func (e *EVM) StaticCall(caller, to hashing.Address, input []byte, gas uint64) ([]byte, uint64, error) {
	return e.callInner(caller, to, to, input, u256.Zero(), gas, true, false)
}

// callInner executes code at codeAddr in the storage context of self.
func (e *EVM) callInner(caller, self, codeAddr hashing.Address, input []byte,
	value u256.Int, gas uint64, static, doTransfer bool) ([]byte, uint64, error) {
	if e.depth >= e.sched.CallDepth {
		return nil, gas, ErrCallDepth
	}
	snap := e.state.Snapshot()
	if doTransfer && !value.IsZero() {
		if err := e.transfer(caller, self, value); err != nil {
			return nil, gas, err
		}
	}
	f := acquireFrame()
	f.self = self
	f.codeAddr = codeAddr
	f.caller = caller
	f.code = e.state.GetCode(codeAddr)
	f.input = input
	f.value = value
	f.gas = GasMeter{remaining: gas}
	f.static = static
	f.stk.limit = int(e.sched.StackLimit)
	e.depth++
	ret, err := e.execute(f)
	e.depth--
	gasLeft := f.gas.Remaining()
	releaseFrame(f)
	if err != nil {
		e.state.RevertToSnapshot(snap)
		if errors.Is(err, ErrRevert) {
			return ret, gasLeft, err
		}
		return nil, 0, err
	}
	return ret, gasLeft, nil
}

// Create deploys a payload as a new contract whose address is derived from
// the creator's address and nonce, mixed with the chain id (§III-G(a)).
func (e *EVM) Create(caller hashing.Address, payload []byte, value u256.Int, gas uint64) (hashing.Address, uint64, error) {
	code, impl, args, err := e.resolveDeployment(payload)
	if err != nil {
		return hashing.Address{}, gas, err
	}
	nonce := e.state.GetNonce(caller)
	e.state.SetNonce(caller, nonce+1)
	addr := hashing.CreateAddress(e.block.ChainID, caller, nonce)
	gasLeft, err := e.createAt(caller, addr, code, impl, args, value, gas)
	return addr, gasLeft, err
}

// Create2 deploys a payload at the deterministic, chain-agnostic address
// derived from creator, salt and *stored code* hash. Because the chain id
// is not mixed in (and constructor args do not affect the stored code), a
// contract recreated from the same family keeps its identifier on every
// chain — the property SCoin's per-user accounts rely on (§V-A).
func (e *EVM) Create2(caller hashing.Address, payload []byte, salt Word, value u256.Int, gas uint64) (hashing.Address, uint64, error) {
	code, impl, args, err := e.resolveDeployment(payload)
	if err != nil {
		return hashing.Address{}, gas, err
	}
	addr := hashing.Create2Address(0, caller, salt, hashing.Sum(code))
	gasLeft, err := e.createAt(caller, addr, code, impl, args, value, gas)
	return addr, gasLeft, err
}

// resolveDeployment splits a deployment payload into the code to store and,
// for native contracts, the implementation and constructor arguments.
func (e *EVM) resolveDeployment(payload []byte) (code []byte, impl Native, args []byte, err error) {
	if e.natives != nil {
		if name, nativeArgs, ok := ParseNativeDeployment(payload); ok {
			n, found := e.natives.Lookup(name)
			if !found {
				return nil, nil, nil, fmt.Errorf("%w: native %q not registered", ErrNotContract, name)
			}
			return NativeCode(name), n, nativeArgs, nil
		}
	}
	return payload, nil, nil, nil
}

// createAt charges deployment gas, installs code at addr, and runs a native
// contract's constructor.
//
// Deviating from the production EVM, bytecode is deployed directly rather
// than being executed as an init routine; constructor logic exists only for
// native contracts (OnCreate). The gas charged (Create base + CodeByte per
// deposited byte) matches the cost structure the paper measures in Fig. 9.
func (e *EVM) createAt(caller, addr hashing.Address, code []byte, impl Native,
	args []byte, value u256.Int, gas uint64) (uint64, error) {
	if e.depth >= e.sched.CallDepth {
		return gas, ErrCallDepth
	}
	meter := NewGasMeter(gas)
	if err := meter.Consume(e.sched.Create + e.sched.CodeByte*e.codeSizeOf(code)); err != nil {
		return 0, err
	}
	if len(e.state.GetCode(addr)) > 0 || e.state.GetNonce(addr) > 0 {
		return 0, fmt.Errorf("%w: %s", ErrContractCollision, addr)
	}
	snap := e.state.Snapshot()
	e.state.CreateContract(addr, code)
	if !value.IsZero() {
		if err := e.transfer(caller, addr, value); err != nil {
			e.state.RevertToSnapshot(snap)
			return 0, err
		}
	}
	if impl != nil {
		childGas := meter.Remaining()
		if err := meter.Consume(childGas); err != nil {
			return 0, err
		}
		childFrame := acquireFrame()
		childFrame.self = addr
		childFrame.codeAddr = addr
		childFrame.caller = caller
		childFrame.code = code
		childFrame.value = value
		childFrame.gas = GasMeter{remaining: childGas}
		childFrame.stk.limit = int(e.sched.StackLimit)
		childCall := &NativeCall{evm: e, frame: childFrame, impl: impl}
		e.depth++
		err := impl.OnCreate(childCall, args)
		e.depth--
		childLeft := childFrame.gas.Remaining()
		releaseFrame(childFrame)
		if err != nil {
			e.state.RevertToSnapshot(snap)
			return 0, fmt.Errorf("constructor: %w", err)
		}
		meter.Refund(childLeft)
	}
	return meter.Remaining(), nil
}

// codeSizeOf returns the billable size of deployed code: native contracts
// declare an emulated code size so deposit gas reflects the contract they
// stand in for.
func (e *EVM) codeSizeOf(code []byte) uint64 {
	if e.natives != nil {
		if n, ok := e.natives.lookupByCode(code); ok {
			return uint64(n.CodeSize())
		}
	}
	return uint64(len(code))
}

// transfer moves value between accounts, refusing transfers that touch a
// locked (moved) account: balances are part of the locked state (§III-B).
func (e *EVM) transfer(from, to hashing.Address, amount u256.Int) error {
	if e.state.GetLocation(from) != e.block.ChainID {
		return fmt.Errorf("%w: sender %s", ErrContractMoved, from)
	}
	if e.state.GetLocation(to) != e.block.ChainID {
		return fmt.Errorf("%w: recipient %s", ErrContractMoved, to)
	}
	if e.state.GetBalance(from).Lt(amount) {
		return ErrInsufficientBalance
	}
	e.state.SubBalance(from, amount)
	e.state.AddBalance(to, amount)
	return nil
}

// requireWritable rejects mutation when the frame is static or the target
// contract has been locked by Move1.
func (e *EVM) requireWritable(f *frame) error {
	if f.static {
		return ErrWriteProtection
	}
	if e.state.GetLocation(f.self) != e.block.ChainID {
		return fmt.Errorf("%w: %s", ErrContractMoved, f.self)
	}
	return nil
}

// execute dispatches a frame to the native implementation or the bytecode
// interpreter.
func (e *EVM) execute(f *frame) ([]byte, error) {
	if e.natives != nil {
		if n, ok := e.natives.lookupByCode(f.code); ok {
			return e.runNative(f, n)
		}
	}
	if len(f.code) == 0 {
		return nil, nil
	}
	return e.interpret(f)
}

// interpret is the bytecode execution loop.
func (e *EVM) interpret(f *frame) ([]byte, error) {
	var (
		s         = &e.sched
		dests     = cachedJumpdests(e.state.GetCodeHash(f.codeAddr), f.code)
		pc        uint64
		memWords  uint64
		codeLen   = uint64(len(f.code))
		zeroWord  u256.Int
		returnVal []byte
	)
	// expand charges memory expansion gas for [off, off+size) and returns
	// concrete offsets. size == 0 yields (0, 0).
	expand := func(off, size u256.Int) (uint64, uint64, error) {
		if size.IsZero() {
			return 0, 0, nil
		}
		words, ok := f.mem.expansionWords(off, size)
		if !ok {
			return 0, 0, ErrMemoryLimit
		}
		if words > memWords {
			if err := f.gas.Consume(memoryGas(s, words) - memoryGas(s, memWords)); err != nil {
				return 0, 0, err
			}
			f.mem.resize(words)
			memWords = words
		}
		return off.Uint64(), size.Uint64(), nil
	}

	for pc < codeLen {
		op := Opcode(f.code[pc])
		switch {
		case op.IsPush():
			if err := f.gas.Consume(s.VeryLow); err != nil {
				return nil, err
			}
			n := uint64(op.PushSize())
			end := pc + 1 + n
			if end > codeLen {
				end = codeLen
			}
			if err := f.stk.push(u256.FromBytes(f.code[pc+1 : end])); err != nil {
				return nil, err
			}
			pc += 1 + n
			continue

		case op >= DUP1 && op <= DUP16:
			if err := f.gas.Consume(s.VeryLow); err != nil {
				return nil, err
			}
			if err := f.stk.dup(int(op-DUP1) + 1); err != nil {
				return nil, err
			}
			pc++
			continue

		case op >= SWAP1 && op <= SWAP16:
			if err := f.gas.Consume(s.VeryLow); err != nil {
				return nil, err
			}
			if err := f.stk.swap(int(op-SWAP1) + 1); err != nil {
				return nil, err
			}
			pc++
			continue
		}

		switch op {
		case STOP:
			return nil, nil

		case ADD, SUB, AND, OR, XOR, LT, GT, SLT, SGT, EQ:
			if err := f.gas.Consume(s.VeryLow); err != nil {
				return nil, err
			}
			a, b, err := f.stk.pop2()
			if err != nil {
				return nil, err
			}
			var r u256.Int
			switch op {
			case ADD:
				r = a.Add(b)
			case SUB:
				r = a.Sub(b)
			case AND:
				r = a.And(b)
			case OR:
				r = a.Or(b)
			case XOR:
				r = a.Xor(b)
			case LT:
				r = boolWord(a.Lt(b))
			case GT:
				r = boolWord(a.Gt(b))
			case SLT:
				r = boolWord(a.Slt(b))
			case SGT:
				r = boolWord(a.Sgt(b))
			case EQ:
				r = boolWord(a.Eq(b))
			}
			if err := f.stk.push(r); err != nil {
				return nil, err
			}

		case MUL, DIV, SDIV, MOD, SMOD, SIGNEXTEND:
			if err := f.gas.Consume(s.Low); err != nil {
				return nil, err
			}
			a, b, err := f.stk.pop2()
			if err != nil {
				return nil, err
			}
			var r u256.Int
			switch op {
			case MUL:
				r = a.Mul(b)
			case DIV:
				r = a.Div(b)
			case SDIV:
				r = a.SDiv(b)
			case MOD:
				r = a.Mod(b)
			case SMOD:
				r = a.SMod(b)
			case SIGNEXTEND:
				r = b.SignExtend(a)
			}
			if err := f.stk.push(r); err != nil {
				return nil, err
			}

		case ADDMOD, MULMOD:
			if err := f.gas.Consume(s.Mid); err != nil {
				return nil, err
			}
			a, b, m, err := f.stk.pop3()
			if err != nil {
				return nil, err
			}
			var r u256.Int
			if op == ADDMOD {
				r = a.AddMod(b, m)
			} else {
				r = a.MulMod(b, m)
			}
			if err := f.stk.push(r); err != nil {
				return nil, err
			}

		case EXP:
			a, b, err := f.stk.pop2()
			if err != nil {
				return nil, err
			}
			expBytes := uint64((b.BitLen() + 7) / 8)
			if err := f.gas.Consume(s.Exp + s.ExpByte*expBytes); err != nil {
				return nil, err
			}
			if err := f.stk.push(a.Exp(b)); err != nil {
				return nil, err
			}

		case ISZERO, NOT:
			if err := f.gas.Consume(s.VeryLow); err != nil {
				return nil, err
			}
			a, err := f.stk.pop()
			if err != nil {
				return nil, err
			}
			var r u256.Int
			if op == ISZERO {
				r = boolWord(a.IsZero())
			} else {
				r = a.Not()
			}
			if err := f.stk.push(r); err != nil {
				return nil, err
			}

		case BYTE, SHL, SHR, SAR:
			if err := f.gas.Consume(s.VeryLow); err != nil {
				return nil, err
			}
			a, b, err := f.stk.pop2()
			if err != nil {
				return nil, err
			}
			var r u256.Int
			switch op {
			case BYTE:
				r = b.Byte(a)
			case SHL:
				r = b.Shl(a)
			case SHR:
				r = b.Shr(a)
			case SAR:
				r = b.Sar(a)
			}
			if err := f.stk.push(r); err != nil {
				return nil, err
			}

		case SHA3:
			off, size, err := f.stk.pop2()
			if err != nil {
				return nil, err
			}
			offU, sizeU, err := expand(off, size)
			if err != nil {
				return nil, err
			}
			if err := f.gas.Consume(s.Sha3 + s.Sha3Word*toWords(sizeU)); err != nil {
				return nil, err
			}
			h := hashing.Sum(f.mem.read(offU, sizeU))
			if err := f.stk.push(u256.FromBytes(h[:])); err != nil {
				return nil, err
			}

		case ADDRESS, ORIGIN, CALLER, CALLVALUE, CALLDATASIZE, CODESIZE,
			GASPRICE, COINBASE, TIMESTAMP, NUMBER, DIFFICULTY, GASLIMIT,
			CHAINID, PC, MSIZE, GAS, RETURNDATASIZE, LOCATION:
			if err := f.gas.Consume(s.Base); err != nil {
				return nil, err
			}
			var r u256.Int
			switch op {
			case ADDRESS:
				r = addrWord(f.self)
			case ORIGIN:
				r = addrWord(e.tx.Origin)
			case CALLER:
				r = addrWord(f.caller)
			case CALLVALUE:
				r = f.value
			case CALLDATASIZE:
				r = u256.FromUint64(uint64(len(f.input)))
			case CODESIZE:
				r = u256.FromUint64(codeLen)
			case GASPRICE:
				r = e.tx.GasPrice
			case COINBASE:
				r = addrWord(e.block.Coinbase)
			case TIMESTAMP:
				r = u256.FromUint64(e.block.Time)
			case NUMBER:
				r = u256.FromUint64(e.block.Number)
			case DIFFICULTY:
				r = e.block.Difficulty
			case GASLIMIT:
				r = u256.FromUint64(e.block.GasLimit)
			case CHAINID:
				r = u256.FromUint64(uint64(e.block.ChainID))
			case PC:
				r = u256.FromUint64(pc)
			case MSIZE:
				r = u256.FromUint64(f.mem.size())
			case GAS:
				r = u256.FromUint64(f.gas.Remaining())
			case RETURNDATASIZE:
				r = u256.FromUint64(uint64(len(f.returnData)))
			case LOCATION:
				r = u256.FromUint64(uint64(e.state.GetLocation(f.self)))
			}
			if err := f.stk.push(r); err != nil {
				return nil, err
			}

		case BALANCE, EXTCODEHASH:
			if err := f.gas.Consume(s.Balance); err != nil {
				return nil, err
			}
			a, err := f.stk.pop()
			if err != nil {
				return nil, err
			}
			addr := wordAddr(a)
			var r u256.Int
			if op == BALANCE {
				r = e.state.GetBalance(addr)
			} else {
				h := e.state.GetCodeHash(addr)
				r = u256.FromBytes(h[:])
			}
			if err := f.stk.push(r); err != nil {
				return nil, err
			}

		case SELFBALANCE:
			if err := f.gas.Consume(s.Low); err != nil {
				return nil, err
			}
			if err := f.stk.push(e.state.GetBalance(f.self)); err != nil {
				return nil, err
			}

		case EXTCODESIZE:
			if err := f.gas.Consume(s.ExtCode); err != nil {
				return nil, err
			}
			a, err := f.stk.pop()
			if err != nil {
				return nil, err
			}
			size := uint64(len(e.state.GetCode(wordAddr(a))))
			if err := f.stk.push(u256.FromUint64(size)); err != nil {
				return nil, err
			}

		case CALLDATALOAD:
			if err := f.gas.Consume(s.VeryLow); err != nil {
				return nil, err
			}
			off, err := f.stk.pop()
			if err != nil {
				return nil, err
			}
			if err := f.stk.push(loadWord(f.input, off)); err != nil {
				return nil, err
			}

		case CALLDATACOPY, CODECOPY, RETURNDATACOPY:
			memOff, srcOff, size, err := f.stk.pop3()
			if err != nil {
				return nil, err
			}
			dst, n, err := expand(memOff, size)
			if err != nil {
				return nil, err
			}
			if err := f.gas.Consume(s.VeryLow + s.Copy*toWords(n)); err != nil {
				return nil, err
			}
			var src []byte
			switch op {
			case CALLDATACOPY:
				src = f.input
			case CODECOPY:
				src = f.code
			case RETURNDATACOPY:
				src = f.returnData
				end, over := addU64(srcOff, size)
				if !over || end > uint64(len(src)) {
					return nil, ErrReturnDataOOB
				}
			}
			copyPadded(f.mem.data[dst:dst+n], src, srcOff)

		case EXTCODECOPY:
			a, err := f.stk.pop()
			if err != nil {
				return nil, err
			}
			memOff, srcOff, size, err := f.stk.pop3()
			if err != nil {
				return nil, err
			}
			dst, n, err := expand(memOff, size)
			if err != nil {
				return nil, err
			}
			if err := f.gas.Consume(s.ExtCode + s.Copy*toWords(n)); err != nil {
				return nil, err
			}
			copyPadded(f.mem.data[dst:dst+n], e.state.GetCode(wordAddr(a)), srcOff)

		case BLOCKHASH:
			if err := f.gas.Consume(s.BlockHash); err != nil {
				return nil, err
			}
			a, err := f.stk.pop()
			if err != nil {
				return nil, err
			}
			var h hashing.Hash
			if e.block.BlockHash != nil && a.IsUint64() {
				h = e.block.BlockHash(a.Uint64())
			}
			if err := f.stk.push(u256.FromBytes(h[:])); err != nil {
				return nil, err
			}

		case POP:
			if err := f.gas.Consume(s.Base); err != nil {
				return nil, err
			}
			if _, err := f.stk.pop(); err != nil {
				return nil, err
			}

		case MLOAD:
			off, err := f.stk.pop()
			if err != nil {
				return nil, err
			}
			offU, _, err := expand(off, u256.FromUint64(32))
			if err != nil {
				return nil, err
			}
			if err := f.gas.Consume(s.VeryLow); err != nil {
				return nil, err
			}
			if err := f.stk.push(f.mem.readWord(offU)); err != nil {
				return nil, err
			}

		case MSTORE:
			off, v, err := f.stk.pop2()
			if err != nil {
				return nil, err
			}
			offU, _, err := expand(off, u256.FromUint64(32))
			if err != nil {
				return nil, err
			}
			if err := f.gas.Consume(s.VeryLow); err != nil {
				return nil, err
			}
			f.mem.writeWord(offU, v)

		case MSTORE8:
			off, v, err := f.stk.pop2()
			if err != nil {
				return nil, err
			}
			offU, _, err := expand(off, u256.FromUint64(1))
			if err != nil {
				return nil, err
			}
			if err := f.gas.Consume(s.VeryLow); err != nil {
				return nil, err
			}
			f.mem.data[offU] = byte(v.Uint64())

		case SLOAD:
			if err := f.gas.Consume(s.SLoad); err != nil {
				return nil, err
			}
			k, err := f.stk.pop()
			if err != nil {
				return nil, err
			}
			v := e.state.GetStorage(f.self, k.Bytes32())
			if err := f.stk.push(u256.FromBytes(v[:])); err != nil {
				return nil, err
			}

		case SSTORE:
			if err := e.requireWritable(f); err != nil {
				return nil, err
			}
			k, v, err := f.stk.pop2()
			if err != nil {
				return nil, err
			}
			key := k.Bytes32()
			old := e.state.GetStorage(f.self, key)
			cost := s.SStoreRe
			if old == zeroWord.Bytes32() && !v.IsZero() {
				cost = s.SStoreSet
			}
			if err := f.gas.Consume(cost); err != nil {
				return nil, err
			}
			e.state.SetStorage(f.self, key, v.Bytes32())

		case JUMP:
			if err := f.gas.Consume(s.Mid); err != nil {
				return nil, err
			}
			dest, err := f.stk.pop()
			if err != nil {
				return nil, err
			}
			if !dest.IsUint64() || !dests[dest.Uint64()] {
				return nil, fmt.Errorf("%w: pc %s", ErrInvalidJump, dest)
			}
			pc = dest.Uint64()
			continue

		case JUMPI:
			if err := f.gas.Consume(s.High); err != nil {
				return nil, err
			}
			dest, cond, err := f.stk.pop2()
			if err != nil {
				return nil, err
			}
			if !cond.IsZero() {
				if !dest.IsUint64() || !dests[dest.Uint64()] {
					return nil, fmt.Errorf("%w: pc %s", ErrInvalidJump, dest)
				}
				pc = dest.Uint64()
				continue
			}

		case JUMPDEST:
			if err := f.gas.Consume(s.JumpDest); err != nil {
				return nil, err
			}

		case LOG0, LOG1, LOG2, LOG3, LOG4:
			if err := e.requireWritable(f); err != nil {
				return nil, err
			}
			off, size, err := f.stk.pop2()
			if err != nil {
				return nil, err
			}
			offU, sizeU, err := expand(off, size)
			if err != nil {
				return nil, err
			}
			topicCount := int(op - LOG0)
			topics := make([]hashing.Hash, topicCount)
			for i := 0; i < topicCount; i++ {
				t, err := f.stk.pop()
				if err != nil {
					return nil, err
				}
				topics[i] = hashing.HashFromBytes(t.Bytes())
			}
			cost := s.Log + s.LogTopic*uint64(topicCount) + s.LogByte*sizeU
			if err := f.gas.Consume(cost); err != nil {
				return nil, err
			}
			e.state.AddLog(&Log{Address: f.self, Topics: topics, Data: f.mem.read(offU, sizeU)})

		case MOVE:
			// Move1's low-level effect: set Lc to the target chain, locking
			// the contract on this chain (paper Alg. 1 line 3).
			if err := e.requireWritable(f); err != nil {
				return nil, err
			}
			if err := f.gas.Consume(s.Move); err != nil {
				return nil, err
			}
			target, err := f.stk.pop()
			if err != nil {
				return nil, err
			}
			if !target.IsUint64() || target.IsZero() {
				return nil, fmt.Errorf("%w: bad chain id %s", ErrMoveSelfTarget, target)
			}
			dst := hashing.ChainID(target.Uint64())
			if dst == e.block.ChainID {
				return nil, ErrMoveSelfTarget
			}
			e.state.SetLocation(f.self, dst)
			e.state.SetMoveNonce(f.self, e.state.GetMoveNonce(f.self)+1)

		case CREATE, CREATE2:
			if err := e.requireWritable(f); err != nil {
				return nil, err
			}
			value, err := f.stk.pop()
			if err != nil {
				return nil, err
			}
			off, size, err := f.stk.pop2()
			if err != nil {
				return nil, err
			}
			var salt Word
			if op == CREATE2 {
				sv, err := f.stk.pop()
				if err != nil {
					return nil, err
				}
				salt = sv.Bytes32()
			}
			offU, sizeU, err := expand(off, size)
			if err != nil {
				return nil, err
			}
			code := f.mem.read(offU, sizeU)
			childGas := allButOne64th(f.gas.Remaining())
			if err := f.gas.Consume(childGas); err != nil {
				return nil, err
			}
			var addr hashing.Address
			var left uint64
			if op == CREATE {
				addr, left, err = e.Create(f.self, code, value, childGas)
			} else {
				addr, left, err = e.Create2(f.self, code, salt, value, childGas)
			}
			f.gas.Refund(left)
			if err != nil {
				if err := f.stk.push(u256.Zero()); err != nil {
					return nil, err
				}
			} else {
				if err := f.stk.push(addrWord(addr)); err != nil {
					return nil, err
				}
			}

		case CALL, STATICCALL, DELEGATECALL:
			ret, err := e.opCall(f, op, expand)
			if err != nil {
				return nil, err
			}
			if err := f.stk.push(ret); err != nil {
				return nil, err
			}

		case RETURN, REVERT:
			off, size, err := f.stk.pop2()
			if err != nil {
				return nil, err
			}
			offU, sizeU, err := expand(off, size)
			if err != nil {
				return nil, err
			}
			returnVal = f.mem.read(offU, sizeU)
			if op == REVERT {
				return returnVal, ErrRevert
			}
			return returnVal, nil

		case SELFDESTRUCT:
			if err := e.requireWritable(f); err != nil {
				return nil, err
			}
			if err := f.gas.Consume(s.SStoreRe); err != nil {
				return nil, err
			}
			a, err := f.stk.pop()
			if err != nil {
				return nil, err
			}
			beneficiary := wordAddr(a)
			bal := e.state.GetBalance(f.self)
			if !bal.IsZero() {
				if err := e.transfer(f.self, beneficiary, bal); err != nil {
					return nil, err
				}
			}
			e.state.DeleteAccount(f.self)
			return nil, nil

		default:
			return nil, fmt.Errorf("%w: %s at pc %d", ErrInvalidOpcode, op, pc)
		}
		pc++
	}
	return nil, nil
}

// opCall implements the CALL family; it returns the success word to push.
func (e *EVM) opCall(f *frame, op Opcode, expand func(off, size u256.Int) (uint64, uint64, error)) (u256.Int, error) {
	s := &e.sched
	gasReq, err := f.stk.pop()
	if err != nil {
		return u256.Int{}, err
	}
	toW, err := f.stk.pop()
	if err != nil {
		return u256.Int{}, err
	}
	value := u256.Zero()
	if op == CALL {
		if value, err = f.stk.pop(); err != nil {
			return u256.Int{}, err
		}
	}
	inOff, inSize, err := f.stk.pop2()
	if err != nil {
		return u256.Int{}, err
	}
	outOff, outSize, err := f.stk.pop2()
	if err != nil {
		return u256.Int{}, err
	}
	inOffU, inSizeU, err := expand(inOff, inSize)
	if err != nil {
		return u256.Int{}, err
	}
	outOffU, outSizeU, err := expand(outOff, outSize)
	if err != nil {
		return u256.Int{}, err
	}
	cost := s.Call
	if !value.IsZero() {
		cost += s.CallValue
		if !e.state.Exists(wordAddr(toW)) {
			cost += s.NewAccount
		}
	}
	if err := f.gas.Consume(cost); err != nil {
		return u256.Int{}, err
	}
	if op == CALL && !value.IsZero() && f.static {
		return u256.Int{}, ErrWriteProtection
	}

	childGas := allButOne64th(f.gas.Remaining())
	if gasReq.IsUint64() && gasReq.Uint64() < childGas {
		childGas = gasReq.Uint64()
	}
	if err := f.gas.Consume(childGas); err != nil {
		return u256.Int{}, err
	}
	if !value.IsZero() {
		childGas += s.CallStip
	}

	input := f.mem.read(inOffU, inSizeU)
	to := wordAddr(toW)
	var (
		ret  []byte
		left uint64
	)
	switch op {
	case CALL:
		ret, left, err = e.callInner(f.self, to, to, input, value, childGas, f.static, true)
	case STATICCALL:
		ret, left, err = e.callInner(f.self, to, to, input, u256.Zero(), childGas, true, false)
	case DELEGATECALL:
		ret, left, err = e.callInner(f.caller, f.self, to, input, f.value, childGas, f.static, false)
	}
	f.gas.Refund(left)
	f.returnData = ret
	if outSizeU > 0 {
		copyPadded(f.mem.data[outOffU:outOffU+outSizeU], ret, u256.Zero())
	}
	if err != nil {
		return u256.Zero(), nil // push 0: call failed
	}
	return u256.One(), nil
}

// runNative executes a registered native contract within frame f.
func (e *EVM) runNative(f *frame, n Native) ([]byte, error) {
	call := &NativeCall{evm: e, frame: f, impl: n}
	return n.Run(call, f.input)
}

// jumpdestCache memoizes jumpdest analysis by code hash: contracts are
// called many times per run, and rescanning the code for every frame is
// O(len(code)) of pure waste. The cache is package-level and shared across
// EVM instances — including parallel simulation universes — which is safe
// because entries are keyed by content hash. It is bounded by flushing
// wholesale when it reaches jumpdestCacheLimit distinct code blobs.
var jumpdestCache = struct {
	sync.RWMutex
	m map[hashing.Hash][]bool
}{m: make(map[hashing.Hash][]bool)}

const jumpdestCacheLimit = 4096

// cachedJumpdests returns the jumpdest bitmap for code, consulting the cache
// when a non-zero code hash is available.
func cachedJumpdests(codeHash hashing.Hash, code []byte) []bool {
	if codeHash.IsZero() {
		return jumpdests(code)
	}
	jumpdestCache.RLock()
	dests, ok := jumpdestCache.m[codeHash]
	jumpdestCache.RUnlock()
	if ok {
		return dests
	}
	dests = jumpdests(code)
	jumpdestCache.Lock()
	if len(jumpdestCache.m) >= jumpdestCacheLimit {
		jumpdestCache.m = make(map[hashing.Hash][]bool, jumpdestCacheLimit)
	}
	jumpdestCache.m[codeHash] = dests
	jumpdestCache.Unlock()
	return dests
}

// jumpdests scans code and marks valid JUMPDEST positions, skipping PUSH
// immediates.
func jumpdests(code []byte) []bool {
	dests := make([]bool, len(code))
	for i := 0; i < len(code); i++ {
		op := Opcode(code[i])
		if op == JUMPDEST {
			dests[i] = true
		}
		i += op.PushSize()
	}
	return dests
}

func boolWord(b bool) u256.Int {
	if b {
		return u256.One()
	}
	return u256.Zero()
}

func addrWord(a hashing.Address) u256.Int { return u256.FromBytes(a[:]) }

func wordAddr(v u256.Int) hashing.Address {
	w := v.Bytes32()
	return hashing.AddressFromBytes(w[:])
}

// loadWord reads the 32-byte word at offset off from data, zero-padded.
func loadWord(data []byte, off u256.Int) u256.Int {
	if !off.IsUint64() || off.Uint64() >= uint64(len(data)) {
		return u256.Zero()
	}
	start := off.Uint64()
	end := start + 32
	if end > uint64(len(data)) {
		end = uint64(len(data))
	}
	var buf [32]byte
	copy(buf[:], data[start:end])
	return u256.FromBytes(buf[:])
}

// copyPadded copies src[srcOff:] into dst, zero-filling past the end of src.
func copyPadded(dst, src []byte, srcOff u256.Int) {
	for i := range dst {
		dst[i] = 0
	}
	if !srcOff.IsUint64() {
		return
	}
	off := srcOff.Uint64()
	if off >= uint64(len(src)) {
		return
	}
	copy(dst, src[off:])
}

// addU64 adds with overflow detection; ok is false on overflow.
func addU64(a, b u256.Int) (sum uint64, ok bool) {
	if !a.IsUint64() || !b.IsUint64() {
		return 0, false
	}
	s := a.Uint64() + b.Uint64()
	if s < a.Uint64() {
		return 0, false
	}
	return s, true
}

// allButOne64th implements the EIP-150 63/64 child gas cap.
func allButOne64th(gas uint64) uint64 { return gas - gas/64 }
