package evm

import (
	"errors"
	"fmt"
)

// ErrOutOfGas reports gas exhaustion in the current frame.
var ErrOutOfGas = errors.New("evm: out of gas")

// Schedule is a gas cost schedule. Both chains run the same opcode costs
// (modeled on the Istanbul yellow paper constants) but differ in contract
// creation charges: Ethereum pays per byte of deposited code while Burrow
// does not (paper §VIII, Fig. 9 discussion).
type Schedule struct {
	// Name identifies the schedule in logs and experiment output.
	Name string

	Zero    uint64 // STOP, RETURN, REVERT
	Base    uint64 // ADDRESS, CALLER, ... (2)
	VeryLow uint64 // ADD, AND, PUSH, DUP, ... (3)
	Low     uint64 // MUL, DIV, ... (5)
	Mid     uint64 // ADDMOD, JUMP, ... (8)
	High    uint64 // JUMPI (10)

	Exp        uint64 // EXP base cost
	ExpByte    uint64 // per byte of exponent
	Sha3       uint64 // SHA3 base
	Sha3Word   uint64 // per 32-byte word hashed
	Copy       uint64 // per word copied (CALLDATACOPY etc.)
	Balance    uint64 // BALANCE, EXTCODEHASH
	ExtCode    uint64 // EXTCODESIZE/EXTCODECOPY base
	BlockHash  uint64 // BLOCKHASH
	SLoad      uint64
	SStoreSet  uint64 // zero -> non-zero
	SStoreRe   uint64 // non-zero -> non-zero (or -> zero)
	JumpDest   uint64
	Log        uint64 // LOG base
	LogTopic   uint64 // per topic
	LogByte    uint64 // per payload byte
	Create     uint64 // CREATE/CREATE2 base
	CodeByte   uint64 // per byte of deposited code (0 on Burrow)
	Call       uint64 // CALL family base
	CallValue  uint64 // surcharge for value-bearing calls
	CallStip   uint64 // stipend passed to the callee on value transfer
	NewAccount uint64 // surcharge for calls creating the destination
	Move       uint64 // OP_MOVE: write Lc and lock the contract
	Memory     uint64 // per word of memory expansion
	QuadDiv    uint64 // quadratic memory term divisor

	TxBase        uint64 // intrinsic gas per transaction
	TxDataZero    uint64 // per zero calldata byte
	TxDataNonZero uint64 // per non-zero calldata byte

	StackLimit uint64
	CallDepth  int
}

// EthereumSchedule returns the gas schedule of the Ethereum-like chain.
func EthereumSchedule() Schedule {
	s := baseSchedule()
	s.Name = "ethereum"
	s.CodeByte = 200
	return s
}

// BurrowSchedule returns the gas schedule of the Burrow-like chain: same
// opcode costs, but no per-byte charge for deposited contract code.
func BurrowSchedule() Schedule {
	s := baseSchedule()
	s.Name = "burrow"
	s.CodeByte = 0
	return s
}

func baseSchedule() Schedule {
	return Schedule{
		Zero:    0,
		Base:    2,
		VeryLow: 3,
		Low:     5,
		Mid:     8,
		High:    10,

		Exp:        10,
		ExpByte:    50,
		Sha3:       30,
		Sha3Word:   6,
		Copy:       3,
		Balance:    700,
		ExtCode:    700,
		BlockHash:  20,
		SLoad:      800,
		SStoreSet:  20000,
		SStoreRe:   5000,
		JumpDest:   1,
		Log:        375,
		LogTopic:   375,
		LogByte:    8,
		Create:     32000,
		Call:       700,
		CallValue:  9000,
		CallStip:   2300,
		NewAccount: 25000,
		Move:       5000,
		Memory:     3,
		QuadDiv:    512,

		TxBase:        21000,
		TxDataZero:    4,
		TxDataNonZero: 16,

		StackLimit: 1024,
		CallDepth:  1024,
	}
}

// IntrinsicGas returns the gas charged for a transaction before execution.
func (s *Schedule) IntrinsicGas(data []byte, create bool) uint64 {
	gas := s.TxBase
	if create {
		gas += s.Create
	}
	for _, b := range data {
		if b == 0 {
			gas += s.TxDataZero
		} else {
			gas += s.TxDataNonZero
		}
	}
	return gas
}

// GasMeter tracks gas available to one call frame tree.
type GasMeter struct {
	remaining uint64
	used      uint64
}

// NewGasMeter returns a meter with the given gas budget.
func NewGasMeter(limit uint64) *GasMeter {
	return &GasMeter{remaining: limit}
}

// Consume deducts amount, returning ErrOutOfGas if the budget is exhausted.
func (g *GasMeter) Consume(amount uint64) error {
	if amount > g.remaining {
		g.used += g.remaining
		g.remaining = 0
		return fmt.Errorf("%w: need %d", ErrOutOfGas, amount)
	}
	g.remaining -= amount
	g.used += amount
	return nil
}

// Refund returns unused gas to the meter (used when a child frame finishes).
func (g *GasMeter) Refund(amount uint64) {
	g.remaining += amount
	if amount > g.used {
		g.used = 0
		return
	}
	g.used -= amount
}

// Remaining returns the gas still available.
func (g *GasMeter) Remaining() uint64 { return g.remaining }

// Used returns the gas consumed so far.
func (g *GasMeter) Used() uint64 { return g.used }

// memoryGas returns the total gas cost of expanding memory to size bytes.
func memoryGas(s *Schedule, sizeWords uint64) uint64 {
	return s.Memory*sizeWords + sizeWords*sizeWords/s.QuadDiv
}

// toWords rounds a byte size up to 32-byte words.
func toWords(size uint64) uint64 { return (size + 31) / 32 }
