package evm_test

import (
	"errors"
	"strings"
	"testing"

	"scmove/internal/evm"
	"scmove/internal/evm/asm"
	"scmove/internal/hashing"
	"scmove/internal/state"
	"scmove/internal/trie"
	"scmove/internal/u256"
)

const (
	localChain  = hashing.ChainID(1)
	remoteChain = hashing.ChainID(2)
	testGas     = uint64(10_000_000)
)

var (
	origin   = addr(0xee)
	contract = addr(0xcc)
)

func addr(b byte) hashing.Address {
	var a hashing.Address
	a[0] = b
	return a
}

func word(b byte) evm.Word {
	var w evm.Word
	w[31] = b
	return w
}

type env struct {
	db  *state.DB
	evm *evm.EVM
}

func newEnv(t testing.TB, natives *evm.Registry) *env {
	t.Helper()
	db, err := state.NewDB(localChain, trie.KindMPT)
	if err != nil {
		t.Fatal(err)
	}
	db.AddBalance(origin, u256.FromUint64(1_000_000))
	block := evm.BlockContext{
		ChainID:  localChain,
		Number:   10,
		Time:     1_000_000,
		GasLimit: 30_000_000,
	}
	tx := evm.TxContext{Origin: origin, GasPrice: u256.FromUint64(2)}
	return &env{db: db, evm: evm.New(evm.EthereumSchedule(), db, block, tx, natives)}
}

// deploy installs code at the fixed test contract address.
func (e *env) deploy(code []byte) { e.db.CreateContract(contract, code) }

func (e *env) call(t *testing.T, input []byte) ([]byte, uint64) {
	t.Helper()
	ret, gasLeft, err := e.evm.Call(origin, contract, input, u256.Zero(), testGas)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	return ret, testGas - gasLeft
}

func TestArithmeticStoresResult(t *testing.T) {
	e := newEnv(t, nil)
	// (3+4)*5 stored at slot 0.
	e.deploy(asm.MustAssemble(`
		PUSH1 4
		PUSH1 3
		ADD
		PUSH1 5
		MUL
		PUSH1 0
		SSTORE
		STOP
	`))
	e.call(t, nil)
	if got := e.db.GetStorage(contract, word(0)); got != word(35) {
		t.Fatalf("slot0 = %x, want 35", got)
	}
}

func TestLoopComputesSum(t *testing.T) {
	e := newEnv(t, nil)
	// sum = 0; i = 10; while i != 0 { sum += i; i-- }; store sum.
	e.deploy(asm.MustAssemble(`
		PUSH1 0      ; sum
		PUSH1 10     ; i
	@loop:
		JUMPDEST
		DUP1         ; i i sum
		ISZERO
		PUSH @done
		JUMPI
		DUP1         ; i i sum
		SWAP2        ; sum i i
		ADD          ; sum+i i
		SWAP1        ; i sum'
		PUSH1 1
		SWAP1
		SUB          ; i-1 sum'
		PUSH @loop
		JUMP
	@done:
		JUMPDEST
		POP
		PUSH1 0
		SSTORE
		STOP
	`))
	e.call(t, nil)
	if got := e.db.GetStorage(contract, word(0)); got != word(55) {
		t.Fatalf("slot0 = %x, want 55", got)
	}
}

func TestReturnData(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy(asm.MustAssemble(`
		PUSH1 42
		PUSH1 0
		MSTORE
		PUSH1 32
		PUSH1 0
		RETURN
	`))
	ret, _ := e.call(t, nil)
	if !u256.FromBytes(ret).Eq(u256.FromUint64(42)) {
		t.Fatalf("return = %x", ret)
	}
}

func TestCalldataEcho(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy(asm.MustAssemble(`
		PUSH1 0
		CALLDATALOAD
		PUSH1 0
		MSTORE
		PUSH1 32
		PUSH1 0
		RETURN
	`))
	input := u256.FromUint64(777).Bytes32()
	ret, _ := e.call(t, input[:])
	if !u256.FromBytes(ret).Eq(u256.FromUint64(777)) {
		t.Fatalf("echo = %x", ret)
	}
}

func TestRevertRollsBackAndReportsData(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy(asm.MustAssemble(`
		PUSH1 9
		PUSH1 0
		SSTORE      ; write, then revert
		PUSH1 1
		PUSH1 31
		MSTORE8     ; revert payload = 0x01
		PUSH1 32
		PUSH1 0
		REVERT
	`))
	ret, gasLeft, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas)
	if !errors.Is(err, evm.ErrRevert) {
		t.Fatalf("want ErrRevert, got %v", err)
	}
	if gasLeft == 0 {
		t.Fatal("revert must refund remaining gas")
	}
	if !u256.FromBytes(ret).Eq(u256.One()) {
		t.Fatalf("revert data = %x", ret)
	}
	if e.db.GetStorage(contract, word(0)) != (evm.Word{}) {
		t.Fatal("revert must roll back storage")
	}
}

func TestOutOfGasConsumesAll(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy(asm.MustAssemble(`
		PUSH1 1
		PUSH1 0
		SSTORE
		STOP
	`))
	_, gasLeft, err := e.evm.Call(origin, contract, nil, u256.Zero(), 100)
	if !errors.Is(err, evm.ErrOutOfGas) {
		t.Fatalf("want ErrOutOfGas, got %v", err)
	}
	if gasLeft != 0 {
		t.Fatalf("gasLeft = %d, want 0", gasLeft)
	}
}

func TestInvalidJumpFails(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy(asm.MustAssemble(`
		PUSH1 3
		JUMP
		STOP
	`))
	_, _, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas)
	if !errors.Is(err, evm.ErrInvalidJump) {
		t.Fatalf("want ErrInvalidJump, got %v", err)
	}
}

func TestJumpIntoPushImmediateFails(t *testing.T) {
	e := newEnv(t, nil)
	// The byte at pc=2 is the immediate 0x5b (JUMPDEST) of a PUSH — jumping
	// into it must fail because it is data, not an instruction.
	code := []byte{
		byte(evm.PUSH1), 0x5b, // push 0x5b (JUMPDEST byte as data)
		byte(evm.PUSH1), 0x01,
		byte(evm.JUMP),
	}
	e.deploy(code)
	_, _, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas)
	if !errors.Is(err, evm.ErrInvalidJump) {
		t.Fatalf("want ErrInvalidJump, got %v", err)
	}
}

func TestStackUnderflow(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy([]byte{byte(evm.ADD)})
	_, _, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas)
	if !errors.Is(err, evm.ErrStackUnderflow) {
		t.Fatalf("want ErrStackUnderflow, got %v", err)
	}
}

func TestInvalidOpcode(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy([]byte{0xef})
	_, _, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas)
	if !errors.Is(err, evm.ErrInvalidOpcode) {
		t.Fatalf("want ErrInvalidOpcode, got %v", err)
	}
}

func TestEnvironmentOpcodes(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy(asm.MustAssemble(`
		CHAINID
		PUSH1 0
		SSTORE
		NUMBER
		PUSH1 1
		SSTORE
		TIMESTAMP
		PUSH1 2
		SSTORE
		CALLER
		PUSH1 3
		SSTORE
		STOP
	`))
	e.call(t, nil)
	if got := e.db.GetStorage(contract, word(0)); got != word(1) {
		t.Fatalf("CHAINID = %x", got)
	}
	if got := e.db.GetStorage(contract, word(1)); got != word(10) {
		t.Fatalf("NUMBER = %x", got)
	}
	ts := u256.FromUint64(1_000_000).Bytes32()
	if got := e.db.GetStorage(contract, word(2)); got != ts {
		t.Fatalf("TIMESTAMP = %x", got)
	}
	var callerWord evm.Word
	copy(callerWord[12:], origin[:])
	if got := e.db.GetStorage(contract, word(3)); got != callerWord {
		t.Fatalf("CALLER = %x", got)
	}
}

func TestValueTransferViaCall(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy(nil) // empty account, plain transfer
	_, _, err := e.evm.Call(origin, contract, nil, u256.FromUint64(500), testGas)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.db.GetBalance(contract); !got.Eq(u256.FromUint64(500)) {
		t.Fatalf("balance = %s", got)
	}
	// Insufficient balance fails without state change.
	_, _, err = e.evm.Call(origin, contract, nil, u256.FromUint64(10_000_000), testGas)
	if !errors.Is(err, evm.ErrInsufficientBalance) {
		t.Fatalf("want ErrInsufficientBalance, got %v", err)
	}
}

func TestInnerCallWritesCalleeStorage(t *testing.T) {
	e := newEnv(t, nil)
	callee := addr(0xdd)
	e.db.CreateContract(callee, asm.MustAssemble(`
		PUSH1 77
		PUSH1 5
		SSTORE
		STOP
	`))
	// CALL(gas=100000, to=callee, value=0, in=0/0, out=0/0), store success.
	e.deploy(asm.MustAssemble(`
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH20 0xdd00000000000000000000000000000000000000
		PUSH3 0x0186a0
		CALL
		PUSH1 0
		SSTORE
		STOP
	`))
	e.call(t, nil)
	if got := e.db.GetStorage(callee, word(5)); got != word(77) {
		t.Fatalf("callee slot5 = %x", got)
	}
	if got := e.db.GetStorage(contract, word(0)); got != word(1) {
		t.Fatalf("success flag = %x", got)
	}
}

func TestStaticCallBlocksWrites(t *testing.T) {
	e := newEnv(t, nil)
	callee := addr(0xdd)
	e.db.CreateContract(callee, asm.MustAssemble(`
		PUSH1 77
		PUSH1 5
		SSTORE
		STOP
	`))
	e.deploy(asm.MustAssemble(`
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH20 0xdd00000000000000000000000000000000000000
		PUSH3 0x0186a0
		STATICCALL
		PUSH1 0
		SSTORE
		STOP
	`))
	e.call(t, nil)
	if got := e.db.GetStorage(callee, word(5)); got != (evm.Word{}) {
		t.Fatal("static callee must not write")
	}
	if got := e.db.GetStorage(contract, word(0)); got != (evm.Word{}) {
		t.Fatal("static call with write must report failure (0)")
	}
}

func TestMoveOpcodeLocksContract(t *testing.T) {
	e := newEnv(t, nil)
	// moveTo: MOVE(chain 2), then done.
	e.deploy(asm.MustAssemble(`
		PUSH1 2
		MOVE
		STOP
	`))
	e.call(t, nil)
	if got := e.db.GetLocation(contract); got != remoteChain {
		t.Fatalf("location = %s", got)
	}
	if got := e.db.GetMoveNonce(contract); got != 1 {
		t.Fatalf("move nonce = %d", got)
	}
	// A second transaction that writes must now abort.
	e.db.CreateContract(addr(0xaa), asm.MustAssemble(`
		PUSH1 1
		PUSH1 0
		SSTORE
		STOP
	`))
	// Re-point the contract's code to a writer: simpler — call the moved
	// contract again; MOVE itself requires writability, so it aborts.
	_, _, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas)
	if !errors.Is(err, evm.ErrContractMoved) {
		t.Fatalf("want ErrContractMoved, got %v", err)
	}
}

func TestMovedContractStillReadable(t *testing.T) {
	e := newEnv(t, nil)
	// Contract stores 5 at slot 0 on first call; reading code returns slot 0.
	reader := asm.MustAssemble(`
		PUSH1 0
		SLOAD
		PUSH1 0
		MSTORE
		PUSH1 32
		PUSH1 0
		RETURN
	`)
	e.deploy(reader)
	e.db.SetStorage(contract, word(0), word(5))
	e.db.SetLocation(contract, remoteChain)
	ret, _, err := e.evm.StaticCall(origin, contract, nil, testGas)
	if err != nil {
		t.Fatalf("read of moved contract must succeed: %v", err)
	}
	if !u256.FromBytes(ret).Eq(u256.FromUint64(5)) {
		t.Fatalf("read = %x", ret)
	}
}

func TestTransferToMovedContractFails(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy(nil)
	e.db.SetLocation(contract, remoteChain)
	_, _, err := e.evm.Call(origin, contract, nil, u256.FromUint64(5), testGas)
	if !errors.Is(err, evm.ErrContractMoved) {
		t.Fatalf("want ErrContractMoved, got %v", err)
	}
}

func TestMoveToSelfFails(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy(asm.MustAssemble(`
		PUSH1 1
		MOVE
		STOP
	`))
	_, _, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas)
	if !errors.Is(err, evm.ErrMoveSelfTarget) {
		t.Fatalf("want ErrMoveSelfTarget, got %v", err)
	}
}

func TestLocationOpcode(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy(asm.MustAssemble(`
		LOCATION
		PUSH1 0
		MSTORE
		PUSH1 32
		PUSH1 0
		RETURN
	`))
	ret, _ := e.call(t, nil)
	if !u256.FromBytes(ret).Eq(u256.FromUint64(uint64(localChain))) {
		t.Fatalf("LOCATION = %x", ret)
	}
}

func TestCreateFromContract(t *testing.T) {
	e := newEnv(t, nil)
	// Deploy child code {STOP} from memory; store child address at slot 0.
	e.deploy(asm.MustAssemble(`
		PUSH1 0x00   ; child code byte: STOP
		PUSH1 0
		MSTORE8
		PUSH1 0      ; value
		PUSH1 0      ; offset
		PUSH1 1      ; size
		SWAP2        ; size offset value -> order for CREATE: value, offset, size
		SWAP1
		CREATE
		PUSH1 0
		SSTORE
		STOP
	`))
	e.call(t, nil)
	created := e.db.GetStorage(contract, word(0))
	if created == (evm.Word{}) {
		t.Fatal("CREATE must push the new address")
	}
	childAddr := hashing.AddressFromBytes(created[:])
	if !e.db.Exists(childAddr) {
		t.Fatal("child must exist")
	}
	if len(e.db.GetCode(childAddr)) != 1 {
		t.Fatalf("child code = %x", e.db.GetCode(childAddr))
	}
}

func TestCreate2AddressesAreChainAgnostic(t *testing.T) {
	code := []byte{byte(evm.STOP)}
	salt := word(9)
	a1 := hashing.Create2Address(0, contract, salt, hashing.Sum(code))
	a2 := hashing.Create2Address(0, contract, salt, hashing.Sum(code))
	if a1 != a2 {
		t.Fatal("CREATE2 must be deterministic")
	}
}

func TestLogEmission(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy(asm.MustAssemble(`
		PUSH1 0xab
		PUSH1 31
		MSTORE8
		PUSH1 7      ; topic
		PUSH1 32     ; size
		PUSH1 0      ; offset
		LOG1
		STOP
	`))
	e.call(t, nil)
	logs := e.db.TakeLogs()
	if len(logs) != 1 {
		t.Fatalf("logs = %d", len(logs))
	}
	if logs[0].Address != contract || len(logs[0].Topics) != 1 {
		t.Fatalf("log = %+v", logs[0])
	}
	if logs[0].Data[31] != 0xab {
		t.Fatalf("log data = %x", logs[0].Data)
	}
}

func TestSelfDestruct(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy(asm.MustAssemble(`
		PUSH20 0xbb00000000000000000000000000000000000000
		SELFDESTRUCT
	`))
	e.db.AddBalance(contract, u256.FromUint64(123))
	e.call(t, nil)
	if got := e.db.GetBalance(addr(0xbb)); !got.Eq(u256.FromUint64(123)) {
		t.Fatalf("beneficiary balance = %s", got)
	}
	if e.db.Exists(contract) {
		t.Fatal("destroyed contract must be gone")
	}
}

func TestSStoreGasSetVsReset(t *testing.T) {
	e := newEnv(t, nil)
	e.deploy(asm.MustAssemble(`
		PUSH1 1
		PUSH1 0
		SSTORE
		STOP
	`))
	_, gasFresh := e.call(t, nil) // zero -> non-zero: SStoreSet
	_, gasAgain := e.call(t, nil) // non-zero -> non-zero: SStoreRe
	sched := evm.EthereumSchedule()
	if diff := gasFresh - gasAgain; diff != sched.SStoreSet-sched.SStoreRe {
		t.Fatalf("gas diff = %d, want %d", diff, sched.SStoreSet-sched.SStoreRe)
	}
}

func TestIntrinsicGas(t *testing.T) {
	sched := evm.EthereumSchedule()
	data := []byte{0, 1, 0, 2}
	got := sched.IntrinsicGas(data, false)
	want := sched.TxBase + 2*sched.TxDataZero + 2*sched.TxDataNonZero
	if got != want {
		t.Fatalf("intrinsic = %d, want %d", got, want)
	}
	if sched.IntrinsicGas(nil, true) != sched.TxBase+sched.Create {
		t.Fatal("create intrinsic must include create cost")
	}
}

func TestBurrowScheduleSkipsCodeDeposit(t *testing.T) {
	eth, bur := evm.EthereumSchedule(), evm.BurrowSchedule()
	if eth.CodeByte == 0 || bur.CodeByte != 0 {
		t.Fatalf("CodeByte: eth=%d burrow=%d", eth.CodeByte, bur.CodeByte)
	}
	if eth.SStoreSet != bur.SStoreSet {
		t.Fatal("opcode costs must match across schedules")
	}
}

func TestCallDepthLimit(t *testing.T) {
	e := newEnv(t, nil)
	// Contract calls itself recursively, then stores 1 at slot 0 on the way
	// out. Depth must bottom out without panic or error at the top level.
	e.deploy(asm.MustAssemble(`
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH1 0
		PUSH1 0
		ADDRESS
		GAS
		CALL
		POP
		PUSH1 1
		PUSH1 0
		SSTORE
		STOP
	`))
	ret, _, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas)
	if err != nil {
		t.Fatalf("recursive call: %v (ret %x)", err, ret)
	}
	if got := e.db.GetStorage(contract, word(0)); got != word(1) {
		t.Fatal("outer frame must still complete")
	}
}

// --- native contract coverage ---

// counter is a minimal native contract: OnCreate stores an initial value,
// Run("inc") increments it, Run("get") returns it, Run("move:<n>") moves it.
type counter struct{}

func (counter) Name() string  { return "Counter" }
func (counter) CodeSize() int { return 1000 }

func (counter) OnCreate(call *evm.NativeCall, args []byte) error {
	var init evm.Word
	copy(init[:], args)
	return call.SetStorage(word(0), init)
}

func (counter) Run(call *evm.NativeCall, input []byte) ([]byte, error) {
	cmd := string(input)
	switch {
	case cmd == "inc":
		v, err := call.GetStorage(word(0))
		if err != nil {
			return nil, err
		}
		n := u256.FromBytes(v[:]).Add(u256.One())
		if err := call.SetStorage(word(0), n.Bytes32()); err != nil {
			return nil, err
		}
		return nil, nil
	case cmd == "get":
		v, err := call.GetStorage(word(0))
		if err != nil {
			return nil, err
		}
		return v[:], nil
	case strings.HasPrefix(cmd, "move:"):
		return nil, call.Move(hashing.ChainID(cmd[len(cmd)-1] - '0'))
	default:
		return nil, errors.New("counter: unknown method")
	}
}

func TestNativeContractLifecycle(t *testing.T) {
	reg := evm.MustNewRegistry(counter{})
	e := newEnv(t, reg)
	e.deploy(evm.NativeCode("Counter"))

	if _, _, err := e.evm.Call(origin, contract, []byte("inc"), u256.Zero(), testGas); err != nil {
		t.Fatal(err)
	}
	ret, _, err := e.evm.Call(origin, contract, []byte("get"), u256.Zero(), testGas)
	if err != nil {
		t.Fatal(err)
	}
	if !u256.FromBytes(ret).Eq(u256.One()) {
		t.Fatalf("counter = %x", ret)
	}
}

func TestNativeGasMatchesBytecodeStorageCosts(t *testing.T) {
	reg := evm.MustNewRegistry(counter{})
	e := newEnv(t, reg)
	e.deploy(evm.NativeCode("Counter"))
	_, gasLeft, err := e.evm.Call(origin, contract, []byte("inc"), u256.Zero(), testGas)
	if err != nil {
		t.Fatal(err)
	}
	used := testGas - gasLeft
	sched := evm.EthereumSchedule()
	// inc = SLOAD + SSTORE(set): native execution must charge at least the
	// storage schedule costs.
	if used < sched.SLoad+sched.SStoreSet {
		t.Fatalf("native gas %d below storage schedule %d", used, sched.SLoad+sched.SStoreSet)
	}
}

func TestNativeMoveLock(t *testing.T) {
	reg := evm.MustNewRegistry(counter{})
	e := newEnv(t, reg)
	e.deploy(evm.NativeCode("Counter"))
	if _, _, err := e.evm.Call(origin, contract, []byte("move:2"), u256.Zero(), testGas); err != nil {
		t.Fatal(err)
	}
	if e.db.GetLocation(contract) != remoteChain {
		t.Fatal("native move must set the location")
	}
	_, _, err := e.evm.Call(origin, contract, []byte("inc"), u256.Zero(), testGas)
	if !errors.Is(err, evm.ErrContractMoved) {
		t.Fatalf("want ErrContractMoved, got %v", err)
	}
	// Reads still work.
	ret, _, err := e.evm.StaticCall(origin, contract, []byte("get"), testGas)
	if err != nil {
		t.Fatal(err)
	}
	if !u256.FromBytes(ret).IsZero() {
		t.Fatalf("get = %x", ret)
	}
}

func TestNativeCreateNative(t *testing.T) {
	reg := evm.MustNewRegistry(counter{}, factory{})
	e := newEnv(t, reg)
	e.deploy(evm.NativeCode("Factory"))
	ret, _, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas)
	if err != nil {
		t.Fatal(err)
	}
	child := hashing.AddressFromBytes(ret)
	if string(e.db.GetCode(child)) != string(evm.NativeCode("Counter")) {
		t.Fatalf("child code = %q", e.db.GetCode(child))
	}
	// Constructor arg (initial value 7) must have been applied.
	if got := e.db.GetStorage(child, word(0)); got != word(7) {
		t.Fatalf("child slot0 = %x", got)
	}
}

// factory creates a Counter with initial value 7 and returns its address.
type factory struct{}

func (factory) Name() string                           { return "Factory" }
func (factory) CodeSize() int                          { return 500 }
func (factory) OnCreate(*evm.NativeCall, []byte) error { return nil }
func (factory) Run(call *evm.NativeCall, _ []byte) ([]byte, error) {
	init := word(7)
	addr, err := call.CreateNative("Counter", word(1), init[:], u256.Zero())
	if err != nil {
		return nil, err
	}
	return addr[:], nil
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	if _, err := evm.NewRegistry(counter{}, counter{}); err == nil {
		t.Fatal("duplicate names must be rejected")
	}
}
