package evm

import "fmt"

// Opcode is a single EVM instruction byte.
type Opcode byte

// Instruction set. The numbering follows the Ethereum yellow paper for every
// standard opcode; MOVE and LOCATION occupy the unused 0xb0 range, mirroring
// how the paper's prototype extends the EVM with OP_MOVE (§III-C).
const (
	STOP       Opcode = 0x00
	ADD        Opcode = 0x01
	MUL        Opcode = 0x02
	SUB        Opcode = 0x03
	DIV        Opcode = 0x04
	SDIV       Opcode = 0x05
	MOD        Opcode = 0x06
	SMOD       Opcode = 0x07
	ADDMOD     Opcode = 0x08
	MULMOD     Opcode = 0x09
	EXP        Opcode = 0x0a
	SIGNEXTEND Opcode = 0x0b

	LT     Opcode = 0x10
	GT     Opcode = 0x11
	SLT    Opcode = 0x12
	SGT    Opcode = 0x13
	EQ     Opcode = 0x14
	ISZERO Opcode = 0x15
	AND    Opcode = 0x16
	OR     Opcode = 0x17
	XOR    Opcode = 0x18
	NOT    Opcode = 0x19
	BYTE   Opcode = 0x1a
	SHL    Opcode = 0x1b
	SHR    Opcode = 0x1c
	SAR    Opcode = 0x1d

	SHA3 Opcode = 0x20

	ADDRESS        Opcode = 0x30
	BALANCE        Opcode = 0x31
	ORIGIN         Opcode = 0x32
	CALLER         Opcode = 0x33
	CALLVALUE      Opcode = 0x34
	CALLDATALOAD   Opcode = 0x35
	CALLDATASIZE   Opcode = 0x36
	CALLDATACOPY   Opcode = 0x37
	CODESIZE       Opcode = 0x38
	CODECOPY       Opcode = 0x39
	GASPRICE       Opcode = 0x3a
	EXTCODESIZE    Opcode = 0x3b
	EXTCODECOPY    Opcode = 0x3c
	RETURNDATASIZE Opcode = 0x3d
	RETURNDATACOPY Opcode = 0x3e
	EXTCODEHASH    Opcode = 0x3f

	BLOCKHASH   Opcode = 0x40
	COINBASE    Opcode = 0x41
	TIMESTAMP   Opcode = 0x42
	NUMBER      Opcode = 0x43
	DIFFICULTY  Opcode = 0x44
	GASLIMIT    Opcode = 0x45
	CHAINID     Opcode = 0x46
	SELFBALANCE Opcode = 0x47

	POP      Opcode = 0x50
	MLOAD    Opcode = 0x51
	MSTORE   Opcode = 0x52
	MSTORE8  Opcode = 0x53
	SLOAD    Opcode = 0x54
	SSTORE   Opcode = 0x55
	JUMP     Opcode = 0x56
	JUMPI    Opcode = 0x57
	PC       Opcode = 0x58
	MSIZE    Opcode = 0x59
	GAS      Opcode = 0x5a
	JUMPDEST Opcode = 0x5b

	PUSH1  Opcode = 0x60
	PUSH32 Opcode = 0x7f
	DUP1   Opcode = 0x80
	DUP16  Opcode = 0x8f
	SWAP1  Opcode = 0x90
	SWAP16 Opcode = 0x9f

	LOG0 Opcode = 0xa0
	LOG1 Opcode = 0xa1
	LOG2 Opcode = 0xa2
	LOG3 Opcode = 0xa3
	LOG4 Opcode = 0xa4

	// MOVE pops a target chain identifier and sets the executing contract's
	// location field Lc, locking it on this chain (paper §III-C, Move1).
	MOVE Opcode = 0xb0
	// LOCATION pushes the executing contract's current location Lc.
	LOCATION Opcode = 0xb1

	CREATE       Opcode = 0xf0
	CALL         Opcode = 0xf1
	RETURN       Opcode = 0xf3
	DELEGATECALL Opcode = 0xf4
	CREATE2      Opcode = 0xf5
	STATICCALL   Opcode = 0xfa
	REVERT       Opcode = 0xfd
	INVALID      Opcode = 0xfe
	SELFDESTRUCT Opcode = 0xff
)

// IsPush reports whether op is PUSH1..PUSH32.
func (op Opcode) IsPush() bool { return op >= PUSH1 && op <= PUSH32 }

// PushSize returns the number of immediate bytes for a PUSH opcode (0 for
// non-push opcodes).
func (op Opcode) PushSize() int {
	if !op.IsPush() {
		return 0
	}
	return int(op-PUSH1) + 1
}

// Push returns the PUSH opcode carrying n immediate bytes (1 <= n <= 32).
func Push(n int) Opcode {
	if n < 1 || n > 32 {
		panic(fmt.Sprintf("evm: invalid push size %d", n))
	}
	return PUSH1 + Opcode(n-1)
}

// Dup returns DUPn (1 <= n <= 16).
func Dup(n int) Opcode {
	if n < 1 || n > 16 {
		panic(fmt.Sprintf("evm: invalid dup depth %d", n))
	}
	return DUP1 + Opcode(n-1)
}

// Swap returns SWAPn (1 <= n <= 16).
func Swap(n int) Opcode {
	if n < 1 || n > 16 {
		panic(fmt.Sprintf("evm: invalid swap depth %d", n))
	}
	return SWAP1 + Opcode(n-1)
}

// LogN returns LOGn (0 <= n <= 4).
func LogN(n int) Opcode {
	if n < 0 || n > 4 {
		panic(fmt.Sprintf("evm: invalid log topic count %d", n))
	}
	return LOG0 + Opcode(n)
}

var opNames = map[Opcode]string{
	STOP: "STOP", ADD: "ADD", MUL: "MUL", SUB: "SUB", DIV: "DIV",
	SDIV: "SDIV", MOD: "MOD", SMOD: "SMOD", ADDMOD: "ADDMOD",
	MULMOD: "MULMOD", EXP: "EXP", SIGNEXTEND: "SIGNEXTEND",
	LT: "LT", GT: "GT", SLT: "SLT", SGT: "SGT", EQ: "EQ", ISZERO: "ISZERO",
	AND: "AND", OR: "OR", XOR: "XOR", NOT: "NOT", BYTE: "BYTE",
	SHL: "SHL", SHR: "SHR", SAR: "SAR", SHA3: "SHA3",
	ADDRESS: "ADDRESS", BALANCE: "BALANCE", ORIGIN: "ORIGIN",
	CALLER: "CALLER", CALLVALUE: "CALLVALUE", CALLDATALOAD: "CALLDATALOAD",
	CALLDATASIZE: "CALLDATASIZE", CALLDATACOPY: "CALLDATACOPY",
	CODESIZE: "CODESIZE", CODECOPY: "CODECOPY", GASPRICE: "GASPRICE",
	EXTCODESIZE: "EXTCODESIZE", EXTCODECOPY: "EXTCODECOPY",
	RETURNDATASIZE: "RETURNDATASIZE", RETURNDATACOPY: "RETURNDATACOPY",
	EXTCODEHASH: "EXTCODEHASH", BLOCKHASH: "BLOCKHASH", COINBASE: "COINBASE",
	TIMESTAMP: "TIMESTAMP", NUMBER: "NUMBER", DIFFICULTY: "DIFFICULTY",
	GASLIMIT: "GASLIMIT", CHAINID: "CHAINID", SELFBALANCE: "SELFBALANCE",
	POP: "POP", MLOAD: "MLOAD", MSTORE: "MSTORE", MSTORE8: "MSTORE8",
	SLOAD: "SLOAD", SSTORE: "SSTORE", JUMP: "JUMP", JUMPI: "JUMPI",
	PC: "PC", MSIZE: "MSIZE", GAS: "GAS", JUMPDEST: "JUMPDEST",
	LOG0: "LOG0", LOG1: "LOG1", LOG2: "LOG2", LOG3: "LOG3", LOG4: "LOG4",
	MOVE: "MOVE", LOCATION: "LOCATION",
	CREATE: "CREATE", CALL: "CALL", RETURN: "RETURN",
	DELEGATECALL: "DELEGATECALL", CREATE2: "CREATE2",
	STATICCALL: "STATICCALL", REVERT: "REVERT", INVALID: "INVALID",
	SELFDESTRUCT: "SELFDESTRUCT",
}

// String returns the canonical mnemonic for op.
func (op Opcode) String() string {
	if name, ok := opNames[op]; ok {
		return name
	}
	if op.IsPush() {
		return fmt.Sprintf("PUSH%d", op.PushSize())
	}
	if op >= DUP1 && op <= DUP16 {
		return fmt.Sprintf("DUP%d", int(op-DUP1)+1)
	}
	if op >= SWAP1 && op <= SWAP16 {
		return fmt.Sprintf("SWAP%d", int(op-SWAP1)+1)
	}
	return fmt.Sprintf("UNDEFINED(0x%02x)", byte(op))
}

// OpcodeByName resolves a mnemonic (e.g. "PUSH4", "SSTORE") to its opcode.
func OpcodeByName(name string) (Opcode, bool) {
	if op, ok := namesToOps[name]; ok {
		return op, true
	}
	return 0, false
}

var namesToOps = buildNameIndex()

func buildNameIndex() map[string]Opcode {
	m := make(map[string]Opcode, 160)
	for op, name := range opNames {
		m[name] = op
	}
	for n := 1; n <= 32; n++ {
		m[fmt.Sprintf("PUSH%d", n)] = Push(n)
	}
	for n := 1; n <= 16; n++ {
		m[fmt.Sprintf("DUP%d", n)] = Dup(n)
		m[fmt.Sprintf("SWAP%d", n)] = Swap(n)
	}
	return m
}

// valid reports whether op is part of the instruction set.
func (op Opcode) valid() bool {
	if _, ok := opNames[op]; ok {
		return op != INVALID
	}
	return op.IsPush() || (op >= DUP1 && op <= DUP16) || (op >= SWAP1 && op <= SWAP16)
}
