package evm

import "scmove/internal/u256"

// maxMemoryBytes caps a frame's memory; real EVMs bound memory indirectly
// through quadratic gas, but an explicit cap keeps adversarial bytecode from
// forcing huge allocations before the gas check lands.
const maxMemoryBytes = 1 << 26 // 64 MiB

// memory is the byte-addressed volatile memory of one call frame. Gas for
// expansion is charged by the interpreter before resize is called.
type memory struct {
	data []byte
}

// size returns the current memory size in bytes (always a word multiple).
func (m *memory) size() uint64 { return uint64(len(m.data)) }

// expansionWords returns the new total word count if the range [off, off+n)
// must be addressable, or 0 if no expansion is needed. The second return
// value is false when the range overflows sane bounds.
func (m *memory) expansionWords(off, n u256.Int) (uint64, bool) {
	if n.IsZero() {
		return 0, true
	}
	if !off.IsUint64() || !n.IsUint64() {
		return 0, false
	}
	end := off.Uint64() + n.Uint64()
	if end < off.Uint64() || end > maxMemoryBytes {
		return 0, false
	}
	if end <= m.size() {
		return 0, true
	}
	return toWords(end), true
}

// resize grows memory to words*32 bytes. Spare capacity left behind by a
// pooled frame is reused, but must be cleared: EVM memory is defined to be
// zero-initialized, and the capacity may hold bytes from an earlier frame.
func (m *memory) resize(words uint64) {
	newSize := words * 32
	if newSize <= m.size() {
		return
	}
	if newSize <= uint64(cap(m.data)) {
		old := len(m.data)
		m.data = m.data[:newSize]
		clear(m.data[old:])
		return
	}
	grown := make([]byte, newSize)
	copy(grown, m.data)
	m.data = grown
}

// read returns a copy of n bytes at offset off.
func (m *memory) read(off, n uint64) []byte {
	out := make([]byte, n)
	copy(out, m.data[off:off+n])
	return out
}

// write copies b into memory at offset off.
func (m *memory) write(off uint64, b []byte) {
	copy(m.data[off:], b)
}

// writeWord stores a 32-byte big-endian word at offset off.
func (m *memory) writeWord(off uint64, v u256.Int) {
	w := v.Bytes32()
	copy(m.data[off:], w[:])
}

// readWord loads the 32-byte word at offset off.
func (m *memory) readWord(off uint64) u256.Int {
	return u256.FromBytes(m.data[off : off+32])
}
