package evm_test

import (
	"testing"

	"scmove/internal/evm/asm"
	"scmove/internal/u256"
)

// TestInterpreterLoopAllocsBounded is the allocation-regression guard for
// the interpreter hot path: a message call running a tight arithmetic loop
// must stay within a handful of allocations. Frame, stack, and memory come
// from the frame pool and the jumpdest bitmap from the code-hash cache, so
// what remains is the state snapshot/journal machinery and the returned
// copy of memory. A pool miss after GC can add an object or two, which the
// bound tolerates — tripling it cannot happen without losing the pooling.
func TestInterpreterLoopAllocsBounded(t *testing.T) {
	code := asm.MustAssemble(`
		PUSH1 0
		PUSH1 100
	@loop:
		JUMPDEST
		DUP1
		ISZERO
		PUSH @done
		JUMPI
		DUP1
		SWAP2
		ADD
		SWAP1
		PUSH1 1
		SWAP1
		SUB
		PUSH @loop
		JUMP
	@done:
		JUMPDEST
		POP
		PUSH1 0
		MSTORE
		PUSH1 32
		PUSH1 0
		RETURN
	`)
	e := newEnv(t, nil)
	e.db.CreateContract(contract, code)
	// Warm the frame pool and the jumpdest cache.
	if _, _, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 6
	if allocs > maxAllocs {
		t.Fatalf("tight-loop call allocates %.1f objects/op, want <= %d", allocs, maxAllocs)
	}
}
