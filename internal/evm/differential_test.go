package evm_test

import (
	"math/rand"
	"testing"

	"scmove/internal/evm"
	"scmove/internal/evm/asm"
	"scmove/internal/u256"
)

// TestDifferentialArithmetic executes binary arithmetic through the
// interpreter (PUSH32 a, PUSH32 b, OP, return) and cross-checks the result
// against the u256 reference semantics — a differential test between the
// two implementations of EVM word arithmetic.
func TestDifferentialArithmetic(t *testing.T) {
	type opCase struct {
		op   evm.Opcode
		eval func(a, b u256.Int) u256.Int
	}
	// Stack note: the program pushes b then a, so a is on top — the EVM's
	// "first operand on top" convention.
	cases := []opCase{
		{evm.ADD, func(a, b u256.Int) u256.Int { return a.Add(b) }},
		{evm.SUB, func(a, b u256.Int) u256.Int { return a.Sub(b) }},
		{evm.MUL, func(a, b u256.Int) u256.Int { return a.Mul(b) }},
		{evm.DIV, func(a, b u256.Int) u256.Int { return a.Div(b) }},
		{evm.SDIV, func(a, b u256.Int) u256.Int { return a.SDiv(b) }},
		{evm.MOD, func(a, b u256.Int) u256.Int { return a.Mod(b) }},
		{evm.SMOD, func(a, b u256.Int) u256.Int { return a.SMod(b) }},
		{evm.EXP, func(a, b u256.Int) u256.Int { return a.Exp(b) }},
		{evm.AND, func(a, b u256.Int) u256.Int { return a.And(b) }},
		{evm.OR, func(a, b u256.Int) u256.Int { return a.Or(b) }},
		{evm.XOR, func(a, b u256.Int) u256.Int { return a.Xor(b) }},
		{evm.LT, func(a, b u256.Int) u256.Int { return boolWord(a.Lt(b)) }},
		{evm.GT, func(a, b u256.Int) u256.Int { return boolWord(a.Gt(b)) }},
		{evm.SLT, func(a, b u256.Int) u256.Int { return boolWord(a.Slt(b)) }},
		{evm.SGT, func(a, b u256.Int) u256.Int { return boolWord(a.Sgt(b)) }},
		{evm.EQ, func(a, b u256.Int) u256.Int { return boolWord(a.Eq(b)) }},
		{evm.SHL, func(a, b u256.Int) u256.Int { return b.Shl(a) }},
		{evm.SHR, func(a, b u256.Int) u256.Int { return b.Shr(a) }},
		{evm.SAR, func(a, b u256.Int) u256.Int { return b.Sar(a) }},
		{evm.BYTE, func(a, b u256.Int) u256.Int { return b.Byte(a) }},
		{evm.SIGNEXTEND, func(a, b u256.Int) u256.Int { return b.SignExtend(a) }},
	}
	rng := rand.New(rand.NewSource(99))
	for _, tc := range cases {
		tc := tc
		t.Run(tc.op.String(), func(t *testing.T) {
			for i := 0; i < 50; i++ {
				a, b := randWord(rng), randWord(rng)
				got, err := runBinaryOp(t, tc.op, a, b)
				if err != nil {
					t.Fatalf("%s(%s, %s): %v", tc.op, a, b, err)
				}
				if want := tc.eval(a, b); !got.Eq(want) {
					t.Fatalf("%s(%s, %s) = %s, want %s", tc.op, a, b, got, want)
				}
			}
		})
	}
}

// randWord draws operands biased towards interesting shapes: small values,
// values near 2^256, powers of two, and uniform randoms.
func randWord(r *rand.Rand) u256.Int {
	switch r.Intn(5) {
	case 0:
		return u256.FromUint64(r.Uint64() % 1024)
	case 1:
		return u256.Zero().Not().Sub(u256.FromUint64(r.Uint64() % 1024))
	case 2:
		return u256.One().Shl(u256.FromUint64(r.Uint64() % 256))
	default:
		return u256.FromLimbs(r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
	}
}

// runBinaryOp executes "PUSH32 b; PUSH32 a; OP; MSTORE; RETURN 32".
func runBinaryOp(t *testing.T, op evm.Opcode, a, b u256.Int) (u256.Int, error) {
	t.Helper()
	aw, bw := a.Bytes32(), b.Bytes32()
	code := []byte{byte(evm.Push(32))}
	code = append(code, bw[:]...)
	code = append(code, byte(evm.Push(32)))
	code = append(code, aw[:]...)
	code = append(code, byte(op))
	code = append(code, asm.MustAssemble(`
		PUSH1 0
		MSTORE
		PUSH1 32
		PUSH1 0
		RETURN
	`)...)
	e := newEnv(t, nil)
	e.deploy(code)
	ret, _, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas)
	if err != nil {
		return u256.Int{}, err
	}
	return u256.FromBytes(ret), nil
}

func boolWord(v bool) u256.Int {
	if v {
		return u256.One()
	}
	return u256.Zero()
}
