package evm

import "scmove/internal/u256"

// stack is the 256-bit word stack of one call frame. Frames embed it by
// value; the backing array is reused when the frame is pooled.
type stack struct {
	data  []u256.Int
	limit int
}

func (s *stack) len() int { return len(s.data) }

func (s *stack) push(v u256.Int) error {
	if len(s.data) >= s.limit {
		return ErrStackOverflow
	}
	s.data = append(s.data, v)
	return nil
}

func (s *stack) pop() (u256.Int, error) {
	if len(s.data) == 0 {
		return u256.Int{}, ErrStackUnderflow
	}
	v := s.data[len(s.data)-1]
	s.data = s.data[:len(s.data)-1]
	return v, nil
}

// pop2 pops two values (a above b).
func (s *stack) pop2() (a, b u256.Int, err error) {
	if a, err = s.pop(); err != nil {
		return
	}
	b, err = s.pop()
	return
}

// pop3 pops three values.
func (s *stack) pop3() (a, b, c u256.Int, err error) {
	if a, b, err = s.pop2(); err != nil {
		return
	}
	c, err = s.pop()
	return
}

// peek returns the n-th value from the top (0 = top) without popping.
func (s *stack) peek(n int) (u256.Int, error) {
	if n >= len(s.data) {
		return u256.Int{}, ErrStackUnderflow
	}
	return s.data[len(s.data)-1-n], nil
}

// dup pushes a copy of the n-th value from the top (1 = top).
func (s *stack) dup(n int) error {
	v, err := s.peek(n - 1)
	if err != nil {
		return err
	}
	return s.push(v)
}

// swap exchanges the top with the n-th value below it (1 = immediately below).
func (s *stack) swap(n int) error {
	if n >= len(s.data) {
		return ErrStackUnderflow
	}
	top := len(s.data) - 1
	s.data[top], s.data[top-n] = s.data[top-n], s.data[top]
	return nil
}
