package evm

import (
	"fmt"
	"sort"
	"strings"

	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// nativePrefix marks account code that designates a native contract.
const nativePrefix = "native/"

// Native is a contract implemented in Go but executed by the VM host with
// the same gas accounting, storage semantics, and move-lock enforcement as
// bytecode contracts. This stands in for the paper's Solidity contracts
// (DESIGN.md, substitutions): the programming interface — moveTo/moveFinish
// callbacks plus ordinary methods — is exactly the one Listing 1 describes.
type Native interface {
	// Name is the registry key; the deployed code is "native/<Name>".
	Name() string
	// CodeSize is the emulated deployed-code size in bytes. Creation is
	// charged CodeByte * CodeSize so that Fig. 9's contract-creation costs
	// are reproduced faithfully.
	CodeSize() int
	// OnCreate runs once at deployment with the constructor arguments.
	OnCreate(call *NativeCall, args []byte) error
	// Run executes a method call and returns the ABI-encoded result.
	Run(call *NativeCall, input []byte) ([]byte, error)
}

// NativeCode returns the code blob that designates the named native
// contract when stored as account code.
func NativeCode(name string) []byte { return []byte(nativePrefix + name) }

// NativeDeployment encodes a deployment payload for a native contract: the
// code designator followed by constructor arguments. Create/Create2 detect
// this form, store the bare designator as the account code (so code hashes
// — and CREATE2 sibling attestation — do not depend on constructor args),
// and run the contract's OnCreate hook with args.
func NativeDeployment(name string, args []byte) []byte {
	payload := append([]byte(nativePrefix+name), 0x00)
	return append(payload, args...)
}

// ParseNativeDeployment recognizes a NativeDeployment payload.
func ParseNativeDeployment(payload []byte) (name string, args []byte, ok bool) {
	if !strings.HasPrefix(string(payload), nativePrefix) {
		return "", nil, false
	}
	rest := payload[len(nativePrefix):]
	for i, b := range rest {
		if b == 0x00 {
			return string(rest[:i]), rest[i+1:], true
		}
	}
	// A bare designator (no args separator) is also a valid deployment.
	return string(rest), nil, true
}

// Registry resolves native contracts by name. Construct with NewRegistry;
// registries are immutable after construction and safe for concurrent use.
type Registry struct {
	byName map[string]Native
}

// NewRegistry builds a registry from the given implementations.
func NewRegistry(impls ...Native) (*Registry, error) {
	byName := make(map[string]Native, len(impls))
	for _, n := range impls {
		if n.Name() == "" || strings.ContainsRune(n.Name(), '/') {
			return nil, fmt.Errorf("evm: invalid native contract name %q", n.Name())
		}
		if _, dup := byName[n.Name()]; dup {
			return nil, fmt.Errorf("evm: duplicate native contract %q", n.Name())
		}
		byName[n.Name()] = n
	}
	return &Registry{byName: byName}, nil
}

// MustNewRegistry is NewRegistry for statically-known sets; panics on error.
func MustNewRegistry(impls ...Native) *Registry {
	r, err := NewRegistry(impls...)
	if err != nil {
		panic(err)
	}
	return r
}

// Names returns the registered names in sorted order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for name := range r.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup resolves a native contract by name.
func (r *Registry) Lookup(name string) (Native, bool) {
	n, ok := r.byName[name]
	return n, ok
}

// BillableCodeSize returns the gas-billable size of deployed code: native
// contracts declare an emulated size; bytecode is billed by length. A nil
// registry bills everything by length.
func BillableCodeSize(r *Registry, code []byte) uint64 {
	if r != nil {
		if n, ok := r.lookupByCode(code); ok {
			return uint64(n.CodeSize())
		}
	}
	return uint64(len(code))
}

func (r *Registry) lookupByCode(code []byte) (Native, bool) {
	if !strings.HasPrefix(string(code), nativePrefix) {
		return nil, false
	}
	return r.Lookup(string(code[len(nativePrefix):]))
}

// NativeCall is the host environment handed to a native contract. Every
// state-touching method charges gas through the frame's meter and enforces
// the same static/move-lock rules as the corresponding opcodes, so native
// and bytecode contracts are indistinguishable to the protocol and to the
// gas measurements.
type NativeCall struct {
	evm   *EVM
	frame *frame
	impl  Native
}

// Self returns the executing contract's address.
func (c *NativeCall) Self() hashing.Address { return c.frame.self }

// Caller returns the immediate caller.
func (c *NativeCall) Caller() hashing.Address { return c.frame.caller }

// Origin returns the externally-owned account that signed the transaction.
func (c *NativeCall) Origin() hashing.Address { return c.evm.tx.Origin }

// Value returns the currency attached to the call.
func (c *NativeCall) Value() u256.Int { return c.frame.value }

// ChainID returns the executing chain's identifier.
func (c *NativeCall) ChainID() hashing.ChainID { return c.evm.block.ChainID }

// Time returns the current block timestamp (unix seconds, simulated).
func (c *NativeCall) Time() uint64 { return c.evm.block.Time }

// BlockNumber returns the current block height.
func (c *NativeCall) BlockNumber() uint64 { return c.evm.block.Number }

// GasRemaining returns the gas left in this frame.
func (c *NativeCall) GasRemaining() uint64 { return c.frame.gas.Remaining() }

// UseGas consumes extra gas, for contracts that model computation beyond
// their storage traffic.
func (c *NativeCall) UseGas(amount uint64) error { return c.frame.gas.Consume(amount) }

// GetStorage reads a storage word (charged as SLOAD).
func (c *NativeCall) GetStorage(key Word) (Word, error) {
	if err := c.frame.gas.Consume(c.evm.sched.SLoad); err != nil {
		return Word{}, err
	}
	return c.evm.state.GetStorage(c.frame.self, key), nil
}

// SetStorage writes a storage word (charged as SSTORE); the zero value
// deletes the entry.
func (c *NativeCall) SetStorage(key, value Word) error {
	if err := c.evm.requireWritable(c.frame); err != nil {
		return err
	}
	var zero Word
	old := c.evm.state.GetStorage(c.frame.self, key)
	cost := c.evm.sched.SStoreRe
	if old == zero && value != zero {
		cost = c.evm.sched.SStoreSet
	}
	if err := c.frame.gas.Consume(cost); err != nil {
		return err
	}
	c.evm.state.SetStorage(c.frame.self, key, value)
	return nil
}

// Balance returns the executing contract's balance (charged as SELFBALANCE).
func (c *NativeCall) Balance() (u256.Int, error) {
	if err := c.frame.gas.Consume(c.evm.sched.Low); err != nil {
		return u256.Int{}, err
	}
	return c.evm.state.GetBalance(c.frame.self), nil
}

// BalanceOf returns any account's balance (charged as BALANCE).
func (c *NativeCall) BalanceOf(addr hashing.Address) (u256.Int, error) {
	if err := c.frame.gas.Consume(c.evm.sched.Balance); err != nil {
		return u256.Int{}, err
	}
	return c.evm.state.GetBalance(addr), nil
}

// CodeSizeOf returns the byte size of another account's code (charged as
// EXTCODESIZE). Contracts use it to refuse interacting with counterparties
// that are not deployed on this chain.
func (c *NativeCall) CodeSizeOf(addr hashing.Address) (int, error) {
	if err := c.frame.gas.Consume(c.evm.sched.ExtCode); err != nil {
		return 0, err
	}
	return len(c.evm.state.GetCode(addr)), nil
}

// LocationOf returns an account's location field Lc (charged as BALANCE; it
// is an account-trie read of the same shape).
func (c *NativeCall) LocationOf(addr hashing.Address) (hashing.ChainID, error) {
	if err := c.frame.gas.Consume(c.evm.sched.Balance); err != nil {
		return 0, err
	}
	return c.evm.state.GetLocation(addr), nil
}

// Emit records an event log (charged as LOGn).
func (c *NativeCall) Emit(topics []hashing.Hash, data []byte) error {
	if err := c.evm.requireWritable(c.frame); err != nil {
		return err
	}
	s := &c.evm.sched
	cost := s.Log + s.LogTopic*uint64(len(topics)) + s.LogByte*uint64(len(data))
	if err := c.frame.gas.Consume(cost); err != nil {
		return err
	}
	ts := make([]hashing.Hash, len(topics))
	copy(ts, topics)
	d := make([]byte, len(data))
	copy(d, data)
	c.evm.state.AddLog(&Log{Address: c.frame.self, Topics: ts, Data: d})
	return nil
}

// Transfer sends currency from the executing contract to another account
// (charged as a value-bearing CALL).
func (c *NativeCall) Transfer(to hashing.Address, amount u256.Int) error {
	if err := c.evm.requireWritable(c.frame); err != nil {
		return err
	}
	cost := c.evm.sched.Call + c.evm.sched.CallValue
	if !c.evm.state.Exists(to) {
		cost += c.evm.sched.NewAccount
	}
	if err := c.frame.gas.Consume(cost); err != nil {
		return err
	}
	return c.evm.transfer(c.frame.self, to, amount)
}

// Call invokes another contract (charged as CALL). It returns the callee's
// return data; callee failures surface as errors with state rolled back.
func (c *NativeCall) Call(to hashing.Address, input []byte, value u256.Int) ([]byte, error) {
	if !value.IsZero() {
		if err := c.evm.requireWritable(c.frame); err != nil {
			return nil, err
		}
	}
	cost := c.evm.sched.Call
	if !value.IsZero() {
		cost += c.evm.sched.CallValue
		if !c.evm.state.Exists(to) {
			cost += c.evm.sched.NewAccount
		}
	}
	if err := c.frame.gas.Consume(cost); err != nil {
		return nil, err
	}
	childGas := allButOne64th(c.frame.gas.Remaining())
	if err := c.frame.gas.Consume(childGas); err != nil {
		return nil, err
	}
	ret, left, err := c.evm.callInner(c.frame.self, to, to, input, value, childGas, c.frame.static, true)
	c.frame.gas.Refund(left)
	c.frame.returnData = ret
	if err != nil {
		return ret, fmt.Errorf("call %s: %w", to, err)
	}
	return ret, nil
}

// StaticCall invokes another contract read-only.
func (c *NativeCall) StaticCall(to hashing.Address, input []byte) ([]byte, error) {
	if err := c.frame.gas.Consume(c.evm.sched.Call); err != nil {
		return nil, err
	}
	childGas := allButOne64th(c.frame.gas.Remaining())
	if err := c.frame.gas.Consume(childGas); err != nil {
		return nil, err
	}
	ret, left, err := c.evm.callInner(c.frame.self, to, to, input, u256.Zero(), childGas, true, false)
	c.frame.gas.Refund(left)
	c.frame.returnData = ret
	if err != nil {
		return ret, fmt.Errorf("staticcall %s: %w", to, err)
	}
	return ret, nil
}

// CreateNative deploys a new instance of a registered native contract via
// CREATE2, running its OnCreate hook with args. The address is chain-
// agnostic (derived from creator, salt, and code hash), so instances keep
// their identifier as they move between chains (§V-A).
func (c *NativeCall) CreateNative(name string, salt Word, args []byte, value u256.Int) (hashing.Address, error) {
	if err := c.evm.requireWritable(c.frame); err != nil {
		return hashing.Address{}, err
	}
	childGas := allButOne64th(c.frame.gas.Remaining())
	if err := c.frame.gas.Consume(childGas); err != nil {
		return hashing.Address{}, err
	}
	addr, left, err := c.evm.Create2(c.frame.self, NativeDeployment(name, args), salt, value, childGas)
	c.frame.gas.Refund(left)
	if err != nil {
		return hashing.Address{}, fmt.Errorf("create %q: %w", name, err)
	}
	return addr, nil
}

// Move sets the executing contract's location field Lc to the target chain,
// locking it locally (the OP_MOVE effect, Move1 of Alg. 1). Contracts call
// this from their moveTo implementation after their guards pass.
func (c *NativeCall) Move(target hashing.ChainID) error {
	if err := c.evm.requireWritable(c.frame); err != nil {
		return err
	}
	if err := c.frame.gas.Consume(c.evm.sched.Move); err != nil {
		return err
	}
	if target == 0 {
		return fmt.Errorf("%w: zero chain id", ErrMoveSelfTarget)
	}
	if target == c.evm.block.ChainID {
		return ErrMoveSelfTarget
	}
	c.evm.state.SetLocation(c.frame.self, target)
	c.evm.state.SetMoveNonce(c.frame.self, c.evm.state.GetMoveNonce(c.frame.self)+1)
	return nil
}
