package evm_test

import (
	"testing"

	"scmove/internal/evm"
	"scmove/internal/evm/asm"
	"scmove/internal/u256"
)

// BenchmarkInterpreterLoop measures raw interpreter throughput on a tight
// arithmetic loop (sum 1..100).
func BenchmarkInterpreterLoop(b *testing.B) {
	code := asm.MustAssemble(`
		PUSH1 0
		PUSH1 100
	@loop:
		JUMPDEST
		DUP1
		ISZERO
		PUSH @done
		JUMPI
		DUP1
		SWAP2
		ADD
		SWAP1
		PUSH1 1
		SWAP1
		SUB
		PUSH @loop
		JUMP
	@done:
		JUMPDEST
		POP
		PUSH1 0
		MSTORE
		PUSH1 32
		PUSH1 0
		RETURN
	`)
	e := newBenchEnv(b, nil)
	e.db.CreateContract(contract, code)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.evm.Call(origin, contract, nil, u256.Zero(), testGas); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSStoreSLoad measures the storage round trip through the
// journaled state.
func BenchmarkSStoreSLoad(b *testing.B) {
	code := asm.MustAssemble(`
		PUSH1 0
		CALLDATALOAD
		PUSH1 0
		SSTORE
		PUSH1 0
		SLOAD
		PUSH1 0
		MSTORE
		PUSH1 32
		PUSH1 0
		RETURN
	`)
	e := newBenchEnv(b, nil)
	e.db.CreateContract(contract, code)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arg := u256.FromUint64(uint64(i + 1)).Bytes32()
		if _, _, err := e.evm.Call(origin, contract, arg[:], u256.Zero(), testGas); err != nil {
			b.Fatal(err)
		}
	}
}

// newBenchEnv mirrors newEnv for benchmarks.
func newBenchEnv(b *testing.B, natives *evm.Registry) *env {
	b.Helper()
	return newEnv(b, natives)
}
