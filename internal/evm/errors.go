package evm

import "errors"

// Execution errors. ErrRevert carries no message itself; the revert payload
// travels through the frame's return data.
var (
	ErrStackUnderflow      = errors.New("evm: stack underflow")
	ErrStackOverflow       = errors.New("evm: stack overflow")
	ErrInvalidJump         = errors.New("evm: jump to invalid destination")
	ErrInvalidOpcode       = errors.New("evm: invalid opcode")
	ErrRevert              = errors.New("evm: execution reverted")
	ErrWriteProtection     = errors.New("evm: write inside static call")
	ErrContractMoved       = errors.New("evm: contract is locked (moved to another chain)")
	ErrCallDepth           = errors.New("evm: max call depth exceeded")
	ErrInsufficientBalance = errors.New("evm: insufficient balance for transfer")
	ErrContractCollision   = errors.New("evm: contract address collision")
	ErrReturnDataOOB       = errors.New("evm: return data copy out of bounds")
	ErrMemoryLimit         = errors.New("evm: memory expansion beyond limit")
	ErrMoveSelfTarget      = errors.New("evm: move target is the current chain")
	ErrNotContract         = errors.New("evm: account is not a contract")
)
