// Package asm implements a two-pass assembler and a disassembler for the
// EVM bytecode executed by internal/evm. It is how this repository authors
// low-level movable contracts, standing in for the paper's extended
// Solidity toolchain on the bytecode level (§III-D).
//
// Source format: whitespace-separated mnemonics; "; ..." comments to end of
// line; "@name:" defines a label; "PUSH @name" pushes a label address
// (encoded as PUSH2); PUSHn takes one hex (0x...) or decimal immediate.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"scmove/internal/evm"
	"scmove/internal/u256"
)

// Assemble translates assembly source into bytecode.
func Assemble(src string) ([]byte, error) {
	tokens, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	labels, size, err := layout(tokens)
	if err != nil {
		return nil, err
	}
	return emit(tokens, labels, size)
}

// MustAssemble is Assemble for statically-known programs; panics on error.
func MustAssemble(src string) []byte {
	code, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return code
}

type token struct {
	text string
	line int
}

func tokenize(src string) ([]token, error) {
	var tokens []token
	for i, line := range strings.Split(src, "\n") {
		if idx := strings.Index(line, ";"); idx >= 0 {
			line = line[:idx]
		}
		for _, t := range strings.Fields(line) {
			tokens = append(tokens, token{text: t, line: i + 1})
		}
	}
	return tokens, nil
}

// instrSize returns the encoded size of the instruction starting at tokens[i]
// and how many tokens it consumes.
func instrSize(tokens []token, i int) (bytes, consumed int, err error) {
	t := tokens[i]
	switch {
	case strings.HasSuffix(t.text, ":"):
		return 0, 1, nil
	case strings.HasPrefix(strings.ToUpper(t.text), "PUSH"):
		upper := strings.ToUpper(t.text)
		if i+1 >= len(tokens) {
			return 0, 0, fmt.Errorf("asm: line %d: %s needs an immediate", t.line, t.text)
		}
		if strings.HasPrefix(tokens[i+1].text, "@") {
			// Label pushes are always PUSH2 regardless of the mnemonic, and
			// the bare "PUSH" alias is allowed for them.
			if upper != "PUSH" {
				if op, ok := evm.OpcodeByName(upper); !ok || !op.IsPush() {
					return 0, 0, fmt.Errorf("asm: line %d: unknown mnemonic %q", t.line, t.text)
				}
			}
			return 3, 2, nil
		}
		op, ok := evm.OpcodeByName(upper)
		if !ok || !op.IsPush() {
			return 0, 0, fmt.Errorf("asm: line %d: unknown mnemonic %q", t.line, t.text)
		}
		return 1 + op.PushSize(), 2, nil
	default:
		if _, ok := evm.OpcodeByName(strings.ToUpper(t.text)); !ok {
			return 0, 0, fmt.Errorf("asm: line %d: unknown mnemonic %q", t.line, t.text)
		}
		return 1, 1, nil
	}
}

func layout(tokens []token) (map[string]uint16, int, error) {
	labels := make(map[string]uint16)
	offset := 0
	for i := 0; i < len(tokens); {
		t := tokens[i]
		if strings.HasSuffix(t.text, ":") {
			name := strings.TrimSuffix(t.text, ":")
			if !strings.HasPrefix(name, "@") || len(name) < 2 {
				return nil, 0, fmt.Errorf("asm: line %d: labels must look like @name:", t.line)
			}
			if _, dup := labels[name]; dup {
				return nil, 0, fmt.Errorf("asm: line %d: duplicate label %s", t.line, name)
			}
			if offset > 0xffff {
				return nil, 0, fmt.Errorf("asm: line %d: program too large for label addressing", t.line)
			}
			labels[name] = uint16(offset)
			i++
			continue
		}
		size, consumed, err := instrSize(tokens, i)
		if err != nil {
			return nil, 0, err
		}
		offset += size
		i += consumed
	}
	return labels, offset, nil
}

func emit(tokens []token, labels map[string]uint16, size int) ([]byte, error) {
	out := make([]byte, 0, size)
	for i := 0; i < len(tokens); {
		t := tokens[i]
		if strings.HasSuffix(t.text, ":") {
			i++
			continue
		}
		upper := strings.ToUpper(t.text)
		op, known := evm.OpcodeByName(upper)
		if known && !op.IsPush() {
			out = append(out, byte(op))
			i++
			continue
		}
		imm := tokens[i+1]
		if strings.HasPrefix(imm.text, "@") {
			target, ok := labels[imm.text]
			if !ok {
				return nil, fmt.Errorf("asm: line %d: undefined label %s", imm.line, imm.text)
			}
			out = append(out, byte(evm.Push(2)), byte(target>>8), byte(target))
			i += 2
			continue
		}
		val, err := parseImmediate(imm.text)
		if err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", imm.line, err)
		}
		n := op.PushSize()
		full := val.Bytes32()
		if val.BitLen() > n*8 {
			return nil, fmt.Errorf("asm: line %d: immediate %s does not fit PUSH%d", imm.line, imm.text, n)
		}
		out = append(out, byte(op))
		out = append(out, full[32-n:]...)
		i += 2
	}
	return out, nil
}

func parseImmediate(s string) (u256.Int, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		if len(s) == 2 {
			return u256.Int{}, fmt.Errorf("empty hex immediate")
		}
		return safeHex(s)
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return u256.Int{}, fmt.Errorf("bad immediate %q", s)
	}
	return u256.FromUint64(v), nil
}

func safeHex(s string) (v u256.Int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("bad hex immediate %q", s)
		}
	}()
	return u256.MustFromHex(s), nil
}

// Disassemble renders bytecode as one instruction per line.
func Disassemble(code []byte) []string {
	var out []string
	for pc := 0; pc < len(code); {
		op := evm.Opcode(code[pc])
		if n := op.PushSize(); n > 0 {
			end := pc + 1 + n
			if end > len(code) {
				end = len(code)
			}
			out = append(out, fmt.Sprintf("%04x: %s 0x%x", pc, op, code[pc+1:end]))
			pc = end
			continue
		}
		out = append(out, fmt.Sprintf("%04x: %s", pc, op))
		pc++
	}
	return out
}
