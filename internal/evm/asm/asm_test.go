package asm

import (
	"bytes"
	"strings"
	"testing"

	"scmove/internal/evm"
)

func TestAssembleBasics(t *testing.T) {
	code, err := Assemble(`
		PUSH1 0x05 ; five
		PUSH1 3
		ADD
		STOP
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{byte(evm.PUSH1), 5, byte(evm.PUSH1), 3, byte(evm.ADD), byte(evm.STOP)}
	if !bytes.Equal(code, want) {
		t.Fatalf("code = %x, want %x", code, want)
	}
}

func TestAssembleWidePush(t *testing.T) {
	code, err := Assemble("PUSH20 0xdd00000000000000000000000000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 21 || code[0] != byte(evm.Push(20)) || code[1] != 0xdd {
		t.Fatalf("code = %x", code)
	}
}

func TestImmediateTooWideRejected(t *testing.T) {
	if _, err := Assemble("PUSH1 0x1ff"); err == nil {
		t.Fatal("immediate wider than push size must be rejected")
	}
}

func TestLabelsResolve(t *testing.T) {
	code, err := Assemble(`
	@start:
		JUMPDEST
		PUSH @start
		JUMP
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{byte(evm.JUMPDEST), byte(evm.Push(2)), 0, 0, byte(evm.JUMP)}
	if !bytes.Equal(code, want) {
		t.Fatalf("code = %x, want %x", code, want)
	}
}

func TestForwardLabel(t *testing.T) {
	code, err := Assemble(`
		PUSH @end
		JUMP
		STOP
	@end:
		JUMPDEST
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: PUSH2(3) JUMP(1) STOP(1) JUMPDEST@5.
	if code[1] != 0 || code[2] != 5 {
		t.Fatalf("label target = %x", code[1:3])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown mnemonic", "FROBNICATE"},
		{"missing immediate", "PUSH1"},
		{"bad immediate", "PUSH1 zork"},
		{"bad hex", "PUSH1 0xzz"},
		{"undefined label", "PUSH @nowhere JUMP"},
		{"duplicate label", "@a: @a: STOP"},
		{"bad label form", "name: STOP"},
		{"bare push without label", "PUSH 5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Assemble(tc.src); err == nil {
				t.Fatalf("source %q must not assemble", tc.src)
			}
		})
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		PUSH1 0x2a
		PUSH1 0x00
		SSTORE
		STOP
	`
	code := MustAssemble(src)
	lines := Disassemble(code)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"PUSH1 0x2a", "SSTORE", "STOP"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, joined)
		}
	}
}

func TestDisassembleTruncatedPush(t *testing.T) {
	// PUSH32 with only 2 bytes of immediate left must not panic.
	code := []byte{byte(evm.Push(32)), 0xaa, 0xbb}
	lines := Disassemble(code)
	if len(lines) != 1 || !strings.Contains(lines[0], "PUSH32") {
		t.Fatalf("lines = %v", lines)
	}
}

func TestCaseInsensitiveMnemonics(t *testing.T) {
	a := MustAssemble("push1 1 add stop")
	b := MustAssemble("PUSH1 1 ADD STOP")
	if !bytes.Equal(a, b) {
		t.Fatal("mnemonics must be case-insensitive")
	}
}
