package relay

import (
	"errors"
	"fmt"

	"time"

	"scmove/internal/codec"
	"scmove/internal/hashing"
	"scmove/internal/types"
)

// ErrCorruptJournal reports that a serialized journal failed to decode or
// that a journaled entry is not internally consistent with its stage.
var ErrCorruptJournal = errors.New("relay: corrupt journal")

// journalVersion versions the wire format of Journal.Encode.
const journalVersion = 1

// Entry flags: which optional fields are present in the encoding.
const (
	entryHasMoveToInput = 1 << iota
	entryHasMove1
	entryHasMove2
	entryHasPayload
	entryHasErr
)

// validate checks that an entry carries everything its recorded stage needs
// to re-enter the state machine. A journal that came off a disk (or a wire)
// can be arbitrarily mangled; validate is what keeps Recover from
// dereferencing a hole mid-replay.
func (e *Entry) validate() error {
	if e.Result == nil {
		return errors.New("missing result record")
	}
	switch e.Stage {
	case StagePending, StageDone, StageFailed:
	case StageMove1Submitted:
		if e.Move1 == nil {
			return errors.New("stage move1-submitted without a signed Move1 transaction")
		}
	case StageWaitConfirm:
		if e.Payload == nil {
			return errors.New("stage wait-confirm without a proof payload")
		}
	case StageMove2Submitted:
		// Move2 retries fall back to the confirmation wait and rebuild the
		// transaction from the payload, so both must be present.
		if e.Move2 == nil {
			return errors.New("stage move2-submitted without a signed Move2 transaction")
		}
		if e.Payload == nil {
			return errors.New("stage move2-submitted without a proof payload")
		}
	default:
		return fmt.Errorf("unknown stage %d", uint8(e.Stage))
	}
	return nil
}

// Encode serializes the journal: every entry in acceptance order with its
// stage marker, signed transactions, and proof payload — everything a
// replacement Mover needs to Recover after handing the bytes through
// DecodeJournal. Completion callbacks (done) are not serializable and are
// dropped; a decoded journal resumes moves without notifying the original
// caller.
func (j *Journal) Encode() []byte {
	w := codec.NewWriter(256 * len(j.order))
	w.WriteUvarint(journalVersion)
	w.WriteUvarint(uint64(len(j.order)))
	for _, c := range j.order {
		encodeEntry(w, j.entries[c])
	}
	return w.Bytes()
}

func encodeEntry(w *codec.Writer, e *Entry) {
	var flags uint64
	if e.MoveToInput != nil {
		flags |= entryHasMoveToInput
	}
	if e.Move1 != nil {
		flags |= entryHasMove1
	}
	if e.Move2 != nil {
		flags |= entryHasMove2
	}
	if e.Payload != nil {
		flags |= entryHasPayload
	}
	if e.Result.Err != nil {
		flags |= entryHasErr
	}
	w.WriteAddress(e.Contract)
	w.WriteUvarint(flags)
	w.WriteUvarint(uint64(e.Stage))
	if e.MoveToInput != nil {
		w.WriteBytes(e.MoveToInput)
	}
	if e.Move1 != nil {
		_ = e.Move1.WaitSig()
		w.WriteBytes(e.Move1.Encode())
	}
	if e.Move2 != nil {
		_ = e.Move2.WaitSig()
		w.WriteBytes(e.Move2.Encode())
	}
	if e.Payload != nil {
		w.WriteBytes(types.EncodeMove2Payload(e.Payload))
	}
	w.WriteUvarint(uint64(e.Attempts))
	w.WriteHash(e.Result.Move1Tx)
	w.WriteHash(e.Result.Move2Tx)
	w.WriteUvarint(uint64(e.Result.StartedAt))
	w.WriteUvarint(uint64(e.Result.Move1At))
	w.WriteUvarint(uint64(e.Result.ProofReadyAt))
	w.WriteUvarint(uint64(e.Result.Move2At))
	w.WriteUvarint(e.Result.Move1Gas)
	w.WriteUvarint(e.Result.Move2Gas)
	if e.Result.Err != nil {
		w.WriteString(e.Result.Err.Error())
	}
}

// DecodeJournal parses a journal produced by Encode. The input is untrusted:
// any truncation, bit flip, or hostile length prefix yields a wrapped error
// naming the offending entry index, never a panic. Each decoded entry is
// validated against its stage so a later Recover cannot trip over a
// journaled hole.
func DecodeJournal(b []byte) (*Journal, error) {
	r := codec.NewReader(b)
	if v := r.ReadUvarint(); r.Err() != nil || v != journalVersion {
		return nil, fmt.Errorf("%w: unsupported version", ErrCorruptJournal)
	}
	n := r.ReadUvarint()
	j := &Journal{entries: make(map[hashing.Address]*Entry, r.CapCount(n, 32))}
	for i := uint64(0); i < n; i++ {
		e, err := decodeEntry(r)
		if err != nil {
			return nil, fmt.Errorf("%w: decode entry %d: %w", ErrCorruptJournal, i, err)
		}
		if err := e.validate(); err != nil {
			return nil, fmt.Errorf("%w: entry %d (contract %s): %w", ErrCorruptJournal, i, e.Contract, err)
		}
		if _, dup := j.entries[e.Contract]; dup {
			return nil, fmt.Errorf("%w: entry %d: duplicate contract %s", ErrCorruptJournal, i, e.Contract)
		}
		j.put(e)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptJournal, err)
	}
	return j, nil
}

func decodeEntry(r *codec.Reader) (*Entry, error) {
	e := &Entry{Result: &MoveResult{}}
	e.Contract = r.ReadAddress()
	flags := r.ReadUvarint()
	stage := r.ReadUvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if stage > uint64(StageFailed) {
		return nil, fmt.Errorf("unknown stage %d", stage)
	}
	e.Stage = Stage(stage)
	if flags&entryHasMoveToInput != 0 {
		e.MoveToInput = append([]byte(nil), r.ReadBytes()...)
	}
	if flags&entryHasMove1 != 0 {
		tx, err := decodeEntryTx(r, "move1")
		if err != nil {
			return nil, err
		}
		e.Move1 = tx
	}
	if flags&entryHasMove2 != 0 {
		tx, err := decodeEntryTx(r, "move2")
		if err != nil {
			return nil, err
		}
		e.Move2 = tx
	}
	if flags&entryHasPayload != 0 {
		p, err := types.DecodeMove2Payload(r.ReadBytes())
		if err != nil {
			return nil, fmt.Errorf("payload: %w", err)
		}
		e.Payload = p
	}
	e.Attempts = int(r.ReadUvarint())
	e.Result.Contract = e.Contract
	e.Result.Move1Tx = r.ReadHash()
	e.Result.Move2Tx = r.ReadHash()
	e.Result.StartedAt = readDuration(r)
	e.Result.Move1At = readDuration(r)
	e.Result.ProofReadyAt = readDuration(r)
	e.Result.Move2At = readDuration(r)
	e.Result.Move1Gas = r.ReadUvarint()
	e.Result.Move2Gas = r.ReadUvarint()
	if flags&entryHasErr != 0 {
		e.Result.Err = errors.New(r.ReadString())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

func decodeEntryTx(r *codec.Reader, which string) (*types.Transaction, error) {
	enc := r.ReadBytes()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%s transaction: %w", which, err)
	}
	tx, err := types.DecodeTransaction(enc)
	if err != nil {
		return nil, fmt.Errorf("%s transaction: %w", which, err)
	}
	return tx, nil
}

func readDuration(r *codec.Reader) time.Duration { return time.Duration(r.ReadUvarint()) }
