package relay

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/simclock"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// signedTx builds and signs a transaction for journal tests.
func signedTx(t *testing.T, kp *keys.KeyPair, nonce uint64, kind types.TxKind, payload *types.Move2Payload) *types.Transaction {
	t.Helper()
	tx := &types.Transaction{
		ChainID:  1,
		Nonce:    nonce,
		Kind:     kind,
		To:       hashing.AddressFromBytes([]byte{0x42}),
		Value:    u256.FromUint64(7),
		GasLimit: DefaultGasLimit,
		GasPrice: DefaultGasPrice,
		Move2:    payload,
	}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	return tx
}

func testPayload() *types.Move2Payload {
	return &types.Move2Payload{
		Contract:     hashing.AddressFromBytes([]byte{0xc0}),
		SourceChain:  2,
		SourceHeight: 17,
		AccountProof: []byte{1, 2, 3, 4},
		Code:         []byte("contract code"),
		Storage: []types.StorageEntry{
			{Key: evm.Word{1}, Value: evm.Word{2}},
			{Key: evm.Word{3}, Value: evm.Word{4}},
		},
	}
}

// testJournal builds a journal with one entry per interesting stage.
func testJournal(t *testing.T) *Journal {
	t.Helper()
	kp := keys.Deterministic(11)
	payload := testPayload()
	move1 := signedTx(t, kp, 0, types.TxCall, nil)
	move2 := signedTx(t, kp, 1, types.TxMove2, payload)
	j := NewJournal()
	j.put(&Entry{
		Contract:    hashing.AddressFromBytes([]byte{0x01}),
		MoveToInput: []byte{0xaa, 0xbb},
		Stage:       StageMove1Submitted,
		Move1:       move1,
		Attempts:    2,
		Result: &MoveResult{
			Contract:  hashing.AddressFromBytes([]byte{0x01}),
			Move1Tx:   move1.ID(),
			StartedAt: 3 * time.Second,
		},
	})
	j.put(&Entry{
		Contract: hashing.AddressFromBytes([]byte{0x02}),
		Stage:    StageWaitConfirm,
		Payload:  payload,
		Result: &MoveResult{
			Contract:  hashing.AddressFromBytes([]byte{0x02}),
			StartedAt: time.Second,
			Move1At:   2 * time.Second,
		},
	})
	j.put(&Entry{
		Contract: hashing.AddressFromBytes([]byte{0x03}),
		Stage:    StageMove2Submitted,
		Move2:    move2,
		Payload:  payload,
		Result: &MoveResult{
			Contract:     hashing.AddressFromBytes([]byte{0x03}),
			Move2Tx:      move2.ID(),
			StartedAt:    time.Second,
			Move1At:      2 * time.Second,
			ProofReadyAt: 10 * time.Second,
		},
	})
	j.put(&Entry{
		Contract: hashing.AddressFromBytes([]byte{0x04}),
		Stage:    StageDone,
		Result: &MoveResult{
			Contract: hashing.AddressFromBytes([]byte{0x04}),
			Move1Gas: 21_000,
			Move2Gas: 90_000,
			Move2At:  30 * time.Second,
		},
	})
	j.put(&Entry{
		Contract: hashing.AddressFromBytes([]byte{0x05}),
		Stage:    StageFailed,
		Result: &MoveResult{
			Contract: hashing.AddressFromBytes([]byte{0x05}),
			Err:      errors.New("move2: simulated failure"),
		},
	})
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	j := testJournal(t)
	enc := j.Encode()
	dec, err := DecodeJournal(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec.order) != len(j.order) {
		t.Fatalf("entries = %d, want %d", len(dec.order), len(j.order))
	}
	for i, c := range j.order {
		if dec.order[i] != c {
			t.Fatalf("order[%d] = %s, want %s", i, dec.order[i], c)
		}
		a, b := j.entries[c], dec.entries[c]
		if a.Stage != b.Stage || a.Attempts != b.Attempts {
			t.Fatalf("entry %s: stage/attempts %v/%d, want %v/%d", c, b.Stage, b.Attempts, a.Stage, a.Attempts)
		}
		if a.Result.Move1Tx != b.Result.Move1Tx || a.Result.Move2Tx != b.Result.Move2Tx {
			t.Fatalf("entry %s: result tx ids differ", c)
		}
		if (a.Move1 == nil) != (b.Move1 == nil) || (a.Move1 != nil && a.Move1.ID() != b.Move1.ID()) {
			t.Fatalf("entry %s: move1 mismatch", c)
		}
		if (a.Move2 == nil) != (b.Move2 == nil) || (a.Move2 != nil && a.Move2.ID() != b.Move2.ID()) {
			t.Fatalf("entry %s: move2 mismatch", c)
		}
	}
	// The encoding is deterministic, so a decoded journal re-encodes to the
	// same bytes — the strongest equality check for every remaining field.
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("re-encoded journal differs from original encoding")
	}
	// In-flight filtering survives the round trip: pending/submitted/waiting
	// entries are live, done/failed are not.
	if got := len(dec.InFlight()); got != 3 {
		t.Fatalf("in-flight after decode = %d, want 3", got)
	}
}

// TestJournalBitFlips flips every bit of the encoded journal, one at a
// time: decoding must never panic, and must either reject the journal with
// an error or produce a stage-consistent one (a flip in a gas field is
// legitimately undetectable).
func TestJournalBitFlips(t *testing.T) {
	enc := testJournal(t).Encode()
	rejected := 0
	for i := range enc {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), enc...)
			mut[i] ^= 1 << bit
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("flip byte %d bit %d: panic: %v", i, bit, r)
					}
				}()
				if _, err := DecodeJournal(mut); err != nil {
					rejected++
					if !errors.Is(err, ErrCorruptJournal) {
						t.Fatalf("flip byte %d bit %d: error not wrapped as ErrCorruptJournal: %v", i, bit, err)
					}
				}
			}()
		}
	}
	if rejected == 0 {
		t.Fatal("no bit flip was ever rejected")
	}
}

// TestJournalTruncation decodes every strict prefix of the encoding: all
// must fail cleanly (the entry count is recorded up front, so missing bytes
// are always detectable).
func TestJournalTruncation(t *testing.T) {
	enc := testJournal(t).Encode()
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeJournal(enc[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", n, len(enc))
		}
	}
}

// TestJournalErrorNamesEntryIndex corrupts the second entry specifically
// and checks the decode error identifies it by index.
func TestJournalErrorNamesEntryIndex(t *testing.T) {
	j := testJournal(t)
	// Truncate inside the last entry: everything before decodes, the final
	// entry fails, and the error must say which one.
	enc := j.Encode()
	_, err := DecodeJournal(enc[:len(enc)-3])
	if err == nil {
		t.Fatal("truncated journal decoded successfully")
	}
	if !strings.Contains(err.Error(), "entry 4") {
		t.Fatalf("error does not identify the broken entry: %v", err)
	}
}

// TestRecoverRejectsMalformedEntry hands Recover a journal whose in-flight
// entry is missing the transaction its stage requires: Recover must return
// a wrapped error naming the entry instead of panicking mid-replay.
func TestRecoverRejectsMalformedEntry(t *testing.T) {
	j := NewJournal()
	contract := hashing.AddressFromBytes([]byte{0x09})
	j.put(&Entry{
		Contract: contract,
		Stage:    StageMove1Submitted, // but Move1 is nil
		Result:   &MoveResult{Contract: contract},
	})
	m := NewMoverWith(simclock.New(), nil, nil, DefaultMoverConfig(), j, nil)
	err := m.Recover(nil)
	if err == nil {
		t.Fatal("recover accepted a stage-inconsistent entry")
	}
	if !errors.Is(err, ErrCorruptJournal) {
		t.Fatalf("error not wrapped as ErrCorruptJournal: %v", err)
	}
	if !strings.Contains(err.Error(), "entry 0") || !strings.Contains(err.Error(), contract.String()) {
		t.Fatalf("error does not identify the entry: %v", err)
	}
}
