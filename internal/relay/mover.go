package relay

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"scmove/internal/chain"
	"scmove/internal/core"
	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/simclock"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// Errors distinguishing why a move failed.
var (
	// ErrConfirmTimeout reports that the proof's source height did not reach
	// the confirmation depth on the target's light client in time.
	ErrConfirmTimeout = errors.New("relay: confirmation deadline exceeded")
	// ErrRetryBudget reports that a stage exhausted its resubmission budget.
	ErrRetryBudget = errors.New("relay: retry budget exhausted")
)

// MoverConfig tunes the move state machine's deadlines and retry policy.
type MoverConfig struct {
	// PollInterval is how often the relayer re-checks the target light
	// client for confirmation depth.
	PollInterval time.Duration
	// ConfirmDeadline bounds the total wait for the proof height to become
	// p blocks deep on the target; exceeding it fails the move with
	// ErrConfirmTimeout. Zero means no deadline.
	ConfirmDeadline time.Duration
	// StageDeadline bounds the wait for a submitted transaction (Move1 or
	// Move2) to commit before it is resubmitted.
	StageDeadline time.Duration
	// RetryBase is the initial backoff before a resubmission; it doubles
	// per attempt up to RetryMax.
	RetryBase time.Duration
	// RetryMax caps the exponential backoff.
	RetryMax time.Duration
	// MaxAttempts is the per-stage resubmission budget.
	MaxAttempts int
}

// DefaultMoverConfig returns deadlines generous enough for the paper's
// slowest chain (15 s expected PoW blocks, p = 6) with a retry budget that
// rides out double-digit loss rates.
func DefaultMoverConfig() MoverConfig {
	return MoverConfig{
		PollInterval:    500 * time.Millisecond,
		ConfirmDeadline: 15 * time.Minute,
		StageDeadline:   90 * time.Second,
		RetryBase:       2 * time.Second,
		RetryMax:        time.Minute,
		MaxAttempts:     10,
	}
}

// Stage is the durable position of a move in the relayer state machine.
type Stage uint8

// Move stages in order.
const (
	// StagePending: accepted, Move1 not yet submitted.
	StagePending Stage = iota
	// StageMove1Submitted: Move1 signed and on the wire, awaiting receipt.
	StageMove1Submitted
	// StageWaitConfirm: proof built, waiting for p-deep confirmation.
	StageWaitConfirm
	// StageMove2Submitted: Move2 signed and on the wire, awaiting receipt.
	StageMove2Submitted
	// StageDone: Move2 committed successfully.
	StageDone
	// StageFailed: terminal failure, Result.Err is set.
	StageFailed
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StagePending:
		return "pending"
	case StageMove1Submitted:
		return "move1-submitted"
	case StageWaitConfirm:
		return "wait-confirm"
	case StageMove2Submitted:
		return "move2-submitted"
	case StageDone:
		return "done"
	case StageFailed:
		return "failed"
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Entry is one journaled move: everything a restarted Mover needs to resume
// it from the last durable stage — the signed transactions for idempotent
// resubmission, the proof payload, and the stage marker.
type Entry struct {
	Contract    hashing.Address
	MoveToInput []byte // nil for Complete-style moves (Move1 ran elsewhere)
	Stage       Stage
	Move1       *types.Transaction
	Move2       *types.Transaction
	Payload     *types.Move2Payload
	// Attempts counts resubmissions within the current stage.
	Attempts  int
	Result    *MoveResult
	done      func(*MoveResult)
	confirmAt time.Duration // when the confirmation wait started
	// seq invalidates outstanding timers and receipt watchers whenever the
	// entry transitions; a crashed Mover's stale callbacks see a newer seq
	// and stand down.
	seq uint64
}

// InFlight reports whether the move is neither done nor failed.
func (e *Entry) InFlight() bool { return e.Stage != StageDone && e.Stage != StageFailed }

// Journal records every move a Mover has accepted, keyed by contract. It is
// the relayer's durable state: handing the same Journal to a new Mover
// after a crash lets Recover resume every in-flight move from its last
// recorded stage instead of losing it.
type Journal struct {
	entries map[hashing.Address]*Entry
	order   []hashing.Address
}

// NewJournal returns an empty journal.
func NewJournal() *Journal {
	return &Journal{entries: make(map[hashing.Address]*Entry)}
}

// Entry returns the journaled move of a contract.
func (j *Journal) Entry(contract hashing.Address) (*Entry, bool) {
	e, ok := j.entries[contract]
	return e, ok
}

// InFlight returns every move that is neither done nor failed, in
// acceptance order.
func (j *Journal) InFlight() []*Entry {
	var out []*Entry
	for _, c := range j.order {
		if e := j.entries[c]; e.InFlight() {
			out = append(out, e)
		}
	}
	return out
}

// put records a (new) move, replacing any finished entry for the contract.
func (j *Journal) put(e *Entry) {
	if _, ok := j.entries[e.Contract]; !ok {
		j.order = append(j.order, e.Contract)
	}
	j.entries[e.Contract] = e
}

// Mover drives moves from a source to a target chain as a crash-recoverable
// state machine: every stage has a deadline, submissions retry with
// exponential backoff against a budget, resubmission is idempotent (the
// move nonce makes a duplicated Move2 a no-op on the target), and the
// journal lets a restarted Mover resume in-flight moves.
type Mover struct {
	sched    *simclock.Scheduler
	src      *chain.Chain
	dst      *chain.Chain
	cfg      MoverConfig
	journal  *Journal
	counters *metrics.Counters
	reg      *metrics.Registry // optional; nil records nothing
	alive    bool
}

// NewMover returns a mover between two chains with the default
// configuration, a fresh journal, and its own counter set.
func NewMover(sched *simclock.Scheduler, src, dst *chain.Chain) *Mover {
	return NewMoverWith(sched, src, dst, DefaultMoverConfig(), NewJournal(), metrics.NewCounters())
}

// NewMoverWith returns a mover with explicit tuning, journal, and counters.
// Passing a crashed Mover's journal and calling Recover resumes its
// in-flight moves.
func NewMoverWith(sched *simclock.Scheduler, src, dst *chain.Chain,
	cfg MoverConfig, journal *Journal, counters *metrics.Counters) *Mover {
	if journal == nil {
		journal = NewJournal()
	}
	if counters == nil {
		counters = metrics.NewCounters()
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	return &Mover{
		sched: sched, src: src, dst: dst,
		cfg: cfg, journal: journal, counters: counters,
		alive: true,
	}
}

// Journal returns the mover's journal (hand it to a replacement Mover after
// Crash to resume).
func (m *Mover) Journal() *Journal { return m.journal }

// Counters returns the mover's fault/retry counters.
func (m *Mover) Counters() *metrics.Counters { return m.counters }

// SetRegistry attaches an observability registry: the mover then emits one
// span per protocol stage (move1.commit, p.wait, move2.commit, move.total)
// into its histograms, plus point events for submissions, retries,
// recoveries, and failures when tracing is enabled. A nil registry (the
// default) records nothing.
func (m *Mover) SetRegistry(reg *metrics.Registry) { m.reg = reg }

// event traces a point event for a move, tagging it with the contract.
// The attr formatting is skipped entirely unless tracing is on.
func (m *Mover) event(name string, e *Entry, attrs ...metrics.Attr) {
	if !m.reg.TraceEnabled() {
		return
	}
	attrs = append(attrs, metrics.A("contract", e.Contract.String()))
	m.reg.Event(name, m.sched.Now(), attrs...)
}

// stageAttrs tags a stage span with its move's contract (only when the
// span will actually be retained).
func (m *Mover) stageAttrs(e *Entry) []metrics.Attr {
	if !m.reg.TraceEnabled() {
		return nil
	}
	return []metrics.Attr{metrics.A("contract", e.Contract.String())}
}

// Crash simulates a relayer crash: the Mover stops reacting to every
// pending timer and receipt notification. The journal survives; a new
// Mover over the same journal resumes via Recover.
func (m *Mover) Crash() { m.alive = false }

// Move runs the full move of contract via the client: it submits the Move1
// call with the given moveTo calldata, builds the Merkle proof the moment
// the Move1 block commits, waits until the target's light client holds that
// height p blocks deep, submits Move2, and invokes done exactly once —
// retrying lost submissions and failing with a distinct error on deadline
// or budget exhaustion.
func (m *Mover) Move(cl *Client, contract hashing.Address, moveToInput []byte, done func(*MoveResult)) {
	e := &Entry{
		Contract:    contract,
		MoveToInput: moveToInput,
		Stage:       StagePending,
		Result:      &MoveResult{Contract: contract, StartedAt: m.sched.Now()},
		done:        done,
	}
	m.journal.put(e)
	m.submitMove1(cl, e)
}

// Complete finishes a move whose Move1 already executed (any client may do
// this, §III-B): it builds the proof against the current committed state,
// waits for the confirmation depth, and submits Move2. The TokenRelay flow
// uses it because Move1 runs inside the creation transaction (Fig. 3).
func (m *Mover) Complete(cl *Client, contract hashing.Address, done func(*MoveResult)) {
	now := m.sched.Now()
	e := &Entry{
		Contract: contract,
		Stage:    StagePending,
		Result:   &MoveResult{Contract: contract, StartedAt: now, Move1At: now},
		done:     done,
	}
	m.journal.put(e)
	m.startConfirm(cl, e)
}

// Recover resumes every in-flight journaled move on this (restarted)
// Mover, re-entering the state machine at each entry's last durable stage.
// Submitted transactions are resubmitted (idempotently) in case they were
// lost while the previous Mover was down.
//
// The journal may have been deserialized from untrusted bytes, so every
// in-flight entry is validated against its recorded stage before anything
// resumes: a truncated or malformed entry returns a wrapped error naming
// the entry index and contract instead of panicking mid-replay, and no
// entry is resumed (recovery is all-or-nothing so a retry after repairing
// the journal cannot double-submit the entries that were valid).
func (m *Mover) Recover(cl *Client) error {
	inflight := m.journal.InFlight()
	for i, e := range inflight {
		if err := e.validate(); err != nil {
			return fmt.Errorf("%w: recover entry %d (contract %s): %w",
				ErrCorruptJournal, i, e.Contract, err)
		}
	}
	for _, e := range inflight {
		m.counters.Inc("relay.recoveries")
		m.event("relay.recover", e, metrics.A("stage", e.Stage.String()))
		switch e.Stage {
		case StagePending:
			if e.MoveToInput == nil {
				m.startConfirm(cl, e)
			} else {
				m.submitMove1(cl, e)
			}
		case StageMove1Submitted:
			cl.SubmitSigned(m.src, e.Move1)
			m.watchMove1(cl, e)
		case StageWaitConfirm:
			// The confirmation deadline restarts: a recovering relayer has no
			// way to know how long the previous incarnation already waited.
			e.confirmAt = m.sched.Now()
			m.pollConfirm(cl, e)
		case StageMove2Submitted:
			cl.SubmitSigned(m.dst, e.Move2)
			m.watchMove2(cl, e)
		}
	}
	return nil
}

// fail terminates a move with an error.
func (m *Mover) fail(e *Entry, stage string, err error) {
	e.seq++
	e.Stage = StageFailed
	e.Result.Err = fmt.Errorf("%s: %w", stage, err)
	m.counters.Inc("relay.moves_failed")
	m.event("move.failed", e, metrics.A("stage", stage))
	if e.done != nil {
		e.done(e.Result)
	}
}

// backoff returns the exponential delay before resubmission attempt n
// (1-based), capped at RetryMax.
func (m *Mover) backoff(attempt int) time.Duration {
	d := m.cfg.RetryBase
	if d <= 0 {
		d = time.Second
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if m.cfg.RetryMax > 0 && d >= m.cfg.RetryMax {
			return m.cfg.RetryMax
		}
	}
	if m.cfg.RetryMax > 0 && d > m.cfg.RetryMax {
		d = m.cfg.RetryMax
	}
	return d
}

// submitMove1 signs (if needed) and submits the Move1 transaction, then
// watches for its receipt.
func (m *Mover) submitMove1(cl *Client, e *Entry) {
	if e.Move1 == nil {
		tx, err := cl.SignedCall(m.src, e.Contract, e.MoveToInput, u256.Zero())
		if err != nil {
			m.fail(e, "move1 sign", err)
			return
		}
		e.Move1 = tx
		e.Result.Move1Tx = tx.ID()
	}
	e.Stage = StageMove1Submitted
	cl.SubmitSigned(m.src, e.Move1)
	m.event("move1.submit", e, metrics.A("attempt", strconv.Itoa(e.Attempts+1)))
	m.watchMove1(cl, e)
}

// watchMove1 arms the Move1 receipt watcher and the stage deadline.
func (m *Mover) watchMove1(cl *Client, e *Entry) {
	e.seq++
	seq := e.seq
	live := func() bool {
		return m.alive && e.seq == seq && e.Stage == StageMove1Submitted
	}
	m.src.NotifyTx(e.Move1.ID(), func(rec *types.Receipt, _ *types.Block) {
		if !live() {
			return
		}
		e.seq++
		e.Result.Move1At = m.sched.Now()
		e.Result.Move1Gas = rec.GasUsed
		if !rec.Succeeded() {
			// A nonce failure is transient (the client desynced after a lost
			// submission): resync and rebuild. Everything else — a reverting
			// moveTo guard above all — is terminal.
			if strings.Contains(rec.Err, "bad nonce") && m.budget(e) {
				m.counters.Inc("relay.move1_retries")
				m.event("move1.retry", e, metrics.A("reason", "bad nonce"))
				cl.NoteBadNonce(m.src.ChainID())
				e.Move1 = nil
				m.sched.After(m.backoff(e.Attempts), func() {
					if m.alive && e.Stage == StageMove1Submitted {
						m.submitMove1(cl, e)
					}
				})
				return
			}
			m.fail(e, "move1", errors.New(rec.Err))
			return
		}
		m.reg.Span("move1.commit", e.Result.StartedAt, e.Result.Move1At, m.stageAttrs(e)...)
		m.startConfirm(cl, e)
	})
	if m.cfg.StageDeadline <= 0 {
		return
	}
	m.sched.After(m.cfg.StageDeadline, func() {
		if !live() {
			return
		}
		// No receipt inside the deadline: the submission (or its receipt
		// path) was lost. Resubmit the same signed transaction after the
		// backoff — same nonce, same id, idempotent.
		if !m.budget(e) {
			m.fail(e, "move1", fmt.Errorf("%w after %d attempts", ErrRetryBudget, e.Attempts))
			return
		}
		m.counters.Inc("relay.move1_retries")
		m.event("move1.retry", e, metrics.A("reason", "stage deadline"))
		e.seq++
		m.sched.After(m.backoff(e.Attempts), func() {
			if m.alive && e.Stage == StageMove1Submitted {
				cl.SubmitSigned(m.src, e.Move1)
				m.event("move1.submit", e, metrics.A("attempt", strconv.Itoa(e.Attempts+1)))
				m.watchMove1(cl, e)
			}
		})
	})
}

// budget consumes one retry attempt, reporting whether any remain.
func (m *Mover) budget(e *Entry) bool {
	if m.cfg.MaxAttempts > 0 && e.Attempts >= m.cfg.MaxAttempts {
		return false
	}
	e.Attempts++
	return true
}

// startConfirm builds the proof (once) and enters the confirmation wait.
func (m *Mover) startConfirm(cl *Client, e *Entry) {
	if e.Payload == nil {
		// Build the proof against the current committed state: the contract
		// is locked, so its record cannot change, and this head's root will
		// reach the target's light client within p blocks.
		proofHeight := m.src.Head().Height
		payload, err := core.BuildMoveProof(m.src.StateDB(), e.Contract, proofHeight)
		if err != nil {
			m.fail(e, "build proof", err)
			return
		}
		e.Payload = payload
	}
	e.Stage = StageWaitConfirm
	e.Attempts = 0
	e.confirmAt = m.sched.Now()
	m.pollConfirm(cl, e)
}

// pollConfirm polls the target light client until the proof's source height
// is p blocks deep, failing with ErrConfirmTimeout past the deadline.
func (m *Mover) pollConfirm(cl *Client, e *Entry) {
	e.seq++
	seq := e.seq
	if m.dst.Headers().ConfirmedAt(e.Payload.SourceChain, e.Payload.SourceHeight) {
		m.submitMove2(cl, e)
		return
	}
	if m.cfg.ConfirmDeadline > 0 && m.sched.Now()-e.confirmAt >= m.cfg.ConfirmDeadline {
		m.counters.Inc("relay.confirm_timeouts")
		m.fail(e, "confirm", ErrConfirmTimeout)
		return
	}
	m.counters.Inc("relay.confirm_retries")
	m.sched.After(m.cfg.PollInterval, func() {
		if m.alive && e.seq == seq && e.Stage == StageWaitConfirm {
			m.pollConfirm(cl, e)
		}
	})
}

// submitMove2 signs (if needed) and submits the Move2 transaction, then
// watches for its receipt.
func (m *Mover) submitMove2(cl *Client, e *Entry) {
	if e.Result.ProofReadyAt == 0 {
		e.Result.ProofReadyAt = m.sched.Now()
		// The p-block confirmation wait: Move1 inclusion (or move
		// acceptance, for Complete-style moves) to proof-confirmed depth.
		m.reg.Span("p.wait", e.Result.Move1At, e.Result.ProofReadyAt, m.stageAttrs(e)...)
	}
	if e.Move2 == nil {
		tx, err := cl.SignedMove2(m.dst, e.Payload)
		if err != nil {
			m.fail(e, "move2 sign", err)
			return
		}
		e.Move2 = tx
		e.Result.Move2Tx = tx.ID()
	}
	e.Stage = StageMove2Submitted
	cl.SubmitSigned(m.dst, e.Move2)
	m.event("move2.submit", e, metrics.A("attempt", strconv.Itoa(e.Attempts+1)))
	m.watchMove2(cl, e)
}

// transientMove2 reports receipt errors worth a retry: nonce desyncs and
// confirmation races (the depth check can regress only if our poll and the
// chain's header store briefly disagree).
func transientMove2(msg string) bool {
	return strings.Contains(msg, "bad nonce") ||
		strings.Contains(msg, "not yet p blocks deep") ||
		strings.Contains(msg, "header not known")
}

// watchMove2 arms the Move2 receipt watcher and the stage deadline.
func (m *Mover) watchMove2(cl *Client, e *Entry) {
	e.seq++
	seq := e.seq
	live := func() bool {
		return m.alive && e.seq == seq && e.Stage == StageMove2Submitted
	}
	m.dst.NotifyTx(e.Move2.ID(), func(rec *types.Receipt, _ *types.Block) {
		if !live() {
			return
		}
		e.seq++
		e.Result.Move2At = m.sched.Now()
		e.Result.Move2Gas = rec.GasUsed
		if !rec.Succeeded() {
			if transientMove2(rec.Err) && m.budget(e) {
				m.counters.Inc("relay.move2_retries")
				m.event("move2.retry", e, metrics.A("reason", rec.Err))
				if strings.Contains(rec.Err, "bad nonce") {
					cl.NoteBadNonce(m.dst.ChainID())
				}
				// Rebuild with a fresh nonce and re-verify confirmation depth
				// before resubmitting.
				e.Move2 = nil
				e.Stage = StageWaitConfirm
				e.confirmAt = m.sched.Now()
				m.sched.After(m.backoff(e.Attempts), func() {
					if m.alive && e.Stage == StageWaitConfirm {
						m.pollConfirm(cl, e)
					}
				})
				return
			}
			m.fail(e, "move2", errors.New(rec.Err))
			return
		}
		e.seq++
		e.Stage = StageDone
		m.counters.Inc("relay.moves_completed")
		m.reg.Span("move2.commit", e.Result.ProofReadyAt, e.Result.Move2At, m.stageAttrs(e)...)
		m.reg.Span("move.total", e.Result.StartedAt, e.Result.Move2At, m.stageAttrs(e)...)
		if e.done != nil {
			e.done(e.Result)
		}
	})
	if m.cfg.StageDeadline <= 0 {
		return
	}
	m.sched.After(m.cfg.StageDeadline, func() {
		if !live() {
			return
		}
		if !m.budget(e) {
			m.fail(e, "move2", fmt.Errorf("%w after %d attempts", ErrRetryBudget, e.Attempts))
			return
		}
		m.counters.Inc("relay.move2_retries")
		m.event("move2.retry", e, metrics.A("reason", "stage deadline"))
		e.seq++
		m.sched.After(m.backoff(e.Attempts), func() {
			if m.alive && e.Stage == StageMove2Submitted {
				cl.SubmitSigned(m.dst, e.Move2)
				m.event("move2.submit", e, metrics.A("attempt", strconv.Itoa(e.Attempts+1)))
				m.watchMove2(cl, e)
			}
		})
	})
}
