package relay_test

import (
	"testing"
	"time"

	"scmove/internal/chain"
	"scmove/internal/core"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/relay"
	"scmove/internal/simclock"
	"scmove/internal/state"
	"scmove/internal/trie"
	"scmove/internal/u256"
)

// testChain builds a single chain driven manually by the scheduler.
func testChain(t *testing.T, sched *simclock.Scheduler, id hashing.ChainID, funded ...hashing.Address) *chain.Chain {
	t.Helper()
	cfg := chain.Config{
		ChainID: id, TreeKind: trie.KindMPT, Schedule: evm.EthereumSchedule(),
		BlockGasLimit: 100_000_000, MaxBlockTxs: 100, ConfirmationDepth: 2,
		PoolLimit: 1000,
	}
	c, err := chain.New(cfg, core.NewHeaderStore(), func(db *state.DB) {
		for _, a := range funded {
			db.AddBalance(a, u256.FromUint64(1<<50))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Produce a block every second of simulated time.
	var produce func()
	produce = func() {
		c.ApplyBlock(c.ProposeBatch(), sched.NowUnix(), chain.ProposerAddress(id, 0))
		sched.After(time.Second, produce)
	}
	sched.After(time.Second, produce)
	return c
}

func TestClientNonceTracking(t *testing.T) {
	sched := simclock.New()
	kp := keys.Deterministic(1)
	cl := relay.NewClient(kp, sched, 10*time.Millisecond)
	c := testChain(t, sched, 1, kp.Address())

	// Three rapid-fire calls get sequential nonces and all commit.
	var ids []hashing.Hash
	for i := 0; i < 3; i++ {
		id, err := cl.Call(c, hashing.AddressFromBytes([]byte{0x01}), nil, u256.FromUint64(uint64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	sched.RunUntil(5 * time.Second)
	for i, id := range ids {
		rec, ok := c.Receipt(id)
		if !ok || !rec.Succeeded() {
			t.Fatalf("tx %d: %+v ok=%v", i, rec, ok)
		}
	}
	if got := c.StateDB().GetNonce(kp.Address()); got != 3 {
		t.Fatalf("account nonce = %d", got)
	}
}

func TestClientSubmitDelay(t *testing.T) {
	sched := simclock.New()
	kp := keys.Deterministic(2)
	cl := relay.NewClient(kp, sched, 2*time.Second)
	c := testChain(t, sched, 1, kp.Address())

	id, err := cl.Call(c, hashing.AddressFromBytes([]byte{0x02}), nil, u256.One())
	if err != nil {
		t.Fatal(err)
	}
	// Before the submit delay elapses, nothing is pending.
	sched.RunUntil(1 * time.Second)
	if c.PendingTxs() != 0 {
		t.Fatal("tx must not reach the chain before the submission delay")
	}
	if _, ok := c.Receipt(id); ok {
		t.Fatal("tx must not commit before submission")
	}
	sched.RunUntil(5 * time.Second)
	if rec, ok := c.Receipt(id); !ok || !rec.Succeeded() {
		t.Fatal("tx must commit after the delay")
	}
}

func TestClientChainsKeepSeparateNonces(t *testing.T) {
	sched := simclock.New()
	kp := keys.Deterministic(3)
	cl := relay.NewClient(kp, sched, time.Millisecond)
	c1 := testChain(t, sched, 1, kp.Address())
	c2 := testChain(t, sched, 2, kp.Address())

	if _, err := cl.Call(c1, hashing.AddressFromBytes([]byte{1}), nil, u256.One()); err != nil {
		t.Fatal(err)
	}
	id2, err := cl.Call(c2, hashing.AddressFromBytes([]byte{1}), nil, u256.One())
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(3 * time.Second)
	// The chain-2 tx used nonce 0 there despite chain-1 traffic.
	rec, ok := c2.Receipt(id2)
	if !ok || !rec.Succeeded() {
		t.Fatalf("chain-2 tx: %+v", rec)
	}
}

// tinyPoolChain is a chain whose pool holds a single transaction, for
// forcing pool-rejection paths.
func tinyPoolChain(t *testing.T, sched *simclock.Scheduler, id hashing.ChainID, funded ...hashing.Address) *chain.Chain {
	t.Helper()
	cfg := chain.Config{
		ChainID: id, TreeKind: trie.KindMPT, Schedule: evm.EthereumSchedule(),
		BlockGasLimit: 100_000_000, MaxBlockTxs: 100, ConfirmationDepth: 2,
		PoolLimit: 1,
	}
	c, err := chain.New(cfg, core.NewHeaderStore(), func(db *state.DB) {
		for _, a := range funded {
			db.AddBalance(a, u256.FromUint64(1<<50))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var produce func()
	produce = func() {
		c.ApplyBlock(c.ProposeBatch(), sched.NowUnix(), chain.ProposerAddress(id, 0))
		sched.After(time.Second, produce)
	}
	sched.After(time.Second, produce)
	return c
}

func TestClientNonceRollbackAndResyncOnRejection(t *testing.T) {
	sched := simclock.New()
	kp, other := keys.Deterministic(5), keys.Deterministic(6)
	cl := relay.NewClient(kp, sched, time.Millisecond)
	filler := relay.NewClient(other, sched, time.Millisecond)
	c := tinyPoolChain(t, sched, 1, kp.Address(), other.Address())

	// The filler occupies the single pool slot first; the client's two
	// rapid-fire calls (nonces 0 and 1) both bounce off the full pool. The
	// first rejection happens with nonce 1 already handed out, so the
	// counter cannot simply step back — it must flag a resync.
	if _, err := filler.Call(c, hashing.AddressFromBytes([]byte{1}), nil, u256.One()); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(2 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if _, err := cl.Call(c, hashing.AddressFromBytes([]byte{1}), nil, u256.One()); err != nil {
			t.Fatal(err)
		}
	}
	// Both rejections land, then the block commits the filler tx.
	sched.RunUntil(1500 * time.Millisecond)

	// A fresh call must reuse nonce 0 (resynced from committed state), not
	// wedge at nonce 2 behind the two burnt ones.
	id, err := cl.Call(c, hashing.AddressFromBytes([]byte{1}), nil, u256.One())
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(5 * time.Second)
	rec, ok := c.Receipt(id)
	if !ok || !rec.Succeeded() {
		t.Fatalf("post-rollback call must commit: %+v ok=%v", rec, ok)
	}
	if got := c.StateDB().GetNonce(kp.Address()); got != 1 {
		t.Fatalf("account nonce = %d, want 1 (rolled-back nonces reused)", got)
	}
}

func TestSubmitSignedIdempotent(t *testing.T) {
	sched := simclock.New()
	kp := keys.Deterministic(7)
	cl := relay.NewClient(kp, sched, time.Millisecond)
	c := testChain(t, sched, 1, kp.Address())

	tx, err := cl.SignedCall(c, hashing.AddressFromBytes([]byte{0x05}), nil, u256.One())
	if err != nil {
		t.Fatal(err)
	}
	// Triple submission before commit: the pool deduplicates by id.
	for i := 0; i < 3; i++ {
		cl.SubmitSigned(c, tx)
	}
	sched.RunUntil(3 * time.Second)
	rec, ok := c.Receipt(tx.ID())
	if !ok || !rec.Succeeded() {
		t.Fatalf("tx must commit once: %+v ok=%v", rec, ok)
	}
	if got := c.StateDB().GetNonce(kp.Address()); got != 1 {
		t.Fatalf("nonce = %d: duplicates must not execute", got)
	}

	// Resubmission after commit: the stale copy is dropped at proposal time
	// and must not overwrite the success receipt with a nonce failure.
	cl.SubmitSigned(c, tx)
	sched.RunUntil(6 * time.Second)
	rec, _ = c.Receipt(tx.ID())
	if !rec.Succeeded() {
		t.Fatalf("late resubmission overwrote the receipt: %+v", rec)
	}
	if got := c.StateDB().GetNonce(kp.Address()); got != 1 {
		t.Fatalf("nonce moved to %d after stale resubmission", got)
	}
	if c.PendingTxs() != 0 {
		t.Fatal("stale copy must be evicted from the pool")
	}
}

func TestMoveResultPhaseArithmetic(t *testing.T) {
	r := &relay.MoveResult{
		StartedAt:    10 * time.Second,
		Move1At:      17 * time.Second,
		ProofReadyAt: 47 * time.Second,
		Move2At:      55 * time.Second,
	}
	if r.Move1Latency() != 7*time.Second {
		t.Fatalf("move1 = %v", r.Move1Latency())
	}
	if r.WaitProofLatency() != 30*time.Second {
		t.Fatalf("wait = %v", r.WaitProofLatency())
	}
	if r.Move2Latency() != 8*time.Second {
		t.Fatalf("move2 = %v", r.Move2Latency())
	}
	if r.Total() != 45*time.Second {
		t.Fatalf("total = %v", r.Total())
	}
}

func TestMoverFailsFastOnFailedMove1(t *testing.T) {
	sched := simclock.New()
	kp := keys.Deterministic(4)
	cl := relay.NewClient(kp, sched, time.Millisecond)
	src := testChain(t, sched, 1, kp.Address())
	dst := testChain(t, sched, 2, kp.Address())

	// Target a contract that reverts every call: Move1 fails and the mover
	// reports it instead of hanging.
	reverting := hashing.AddressFromBytes([]byte{0x99})
	src.StateDB().CreateContract(reverting, []byte{byte(evm.PUSH1), 0, byte(evm.PUSH1), 0, byte(evm.REVERT)})
	src.StateDB().Commit()

	var result *relay.MoveResult
	relay.NewMover(sched, src, dst).Move(cl, reverting, core.MoveToInput(2), func(r *relay.MoveResult) {
		result = r
	})
	sched.RunUntil(10 * time.Second)
	if result == nil {
		t.Fatal("mover must report the failure")
	}
	if result.Err == nil {
		t.Fatal("failed Move1 must surface as an error")
	}
	if result.Move1Gas == 0 {
		t.Fatal("the failed transaction's gas is still recorded")
	}
}
