// Package relay implements the client side of the Move protocol: a Client
// that signs and submits transactions with realistic submission latency,
// and a Mover that orchestrates the full Move1 → proof → wait-p-blocks →
// Move2 sequence across two chains, recording the per-phase timings and gas
// that the paper's IBC experiments report (Figs. 8 and 9).
package relay

import (
	"errors"
	"fmt"
	"time"

	"scmove/internal/chain"
	"scmove/internal/core"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/simclock"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// DefaultGasLimit is the per-transaction gas limit clients use; generous
// enough for every contract in the standard library, including Store
// deployments and moves with a thousand state variables (~20 Mgas of
// SSTOREs).
const DefaultGasLimit = 40_000_000

// DefaultGasPrice is 2 (interpreted as Gwei in the cost analysis, matching
// the paper's December-2019 conversion).
var DefaultGasPrice = u256.FromUint64(2)

// Client is one transaction-submitting principal: a key pair plus local
// per-chain nonce counters. Closed-loop experiment clients wait for each
// transaction's receipt before sending the next, so local nonce tracking
// never desynchronizes.
type Client struct {
	kp          *keys.KeyPair
	sched       *simclock.Scheduler
	submitDelay time.Duration
	nonces      map[hashing.ChainID]uint64
}

// NewClient returns a client submitting with the given client-to-chain
// latency.
func NewClient(kp *keys.KeyPair, sched *simclock.Scheduler, submitDelay time.Duration) *Client {
	return &Client{
		kp:          kp,
		sched:       sched,
		submitDelay: submitDelay,
		nonces:      make(map[hashing.ChainID]uint64),
	}
}

// Address returns the client's account address.
func (cl *Client) Address() hashing.Address { return cl.kp.Address() }

// Key returns the client's key pair.
func (cl *Client) Key() *keys.KeyPair { return cl.kp }

// nextNonce hands out the next nonce for a chain.
func (cl *Client) nextNonce(id hashing.ChainID) uint64 {
	n := cl.nonces[id]
	cl.nonces[id] = n + 1
	return n
}

// submit signs tx and delivers it to the chain after the submission delay.
func (cl *Client) submit(c *chain.Chain, tx *types.Transaction) (hashing.Hash, error) {
	if err := tx.Sign(cl.kp); err != nil {
		return hashing.Hash{}, err
	}
	id := tx.ID()
	cl.sched.After(cl.submitDelay, func() {
		// Pool rejections (full pool, races) surface through the missing
		// receipt; closed-loop clients time out and retry.
		_ = c.SubmitTx(tx)
	})
	return id, nil
}

// Call submits a contract call (or plain transfer) and returns the tx id.
func (cl *Client) Call(c *chain.Chain, to hashing.Address, data []byte, value u256.Int) (hashing.Hash, error) {
	return cl.submit(c, &types.Transaction{
		ChainID:  c.ChainID(),
		Nonce:    cl.nextNonce(c.ChainID()),
		Kind:     types.TxCall,
		To:       to,
		Value:    value,
		GasLimit: DefaultGasLimit,
		GasPrice: DefaultGasPrice,
		Data:     data,
	})
}

// Create submits a contract deployment.
func (cl *Client) Create(c *chain.Chain, code []byte, value u256.Int) (hashing.Hash, error) {
	return cl.submit(c, &types.Transaction{
		ChainID:  c.ChainID(),
		Nonce:    cl.nextNonce(c.ChainID()),
		Kind:     types.TxCreate,
		Value:    value,
		GasLimit: DefaultGasLimit,
		GasPrice: DefaultGasPrice,
		Data:     code,
	})
}

// SubmitMove2 submits a Move2 transaction carrying the given proof payload.
// Any client may complete an unfinished move this way (§III-B).
func (cl *Client) SubmitMove2(c *chain.Chain, payload *types.Move2Payload) (hashing.Hash, error) {
	return cl.submit(c, &types.Transaction{
		ChainID:  c.ChainID(),
		Nonce:    cl.nextNonce(c.ChainID()),
		Kind:     types.TxMove2,
		GasLimit: DefaultGasLimit,
		GasPrice: DefaultGasPrice,
		Move2:    payload,
	})
}

// Locate finds the chain a contract currently lives on by following the
// location field Lc (§III-G(b)): any chain that has ever hosted the
// contract keeps a tombstone whose Lc names its current home, so a client
// that does not know where a contract is can chase the pointers. Returns
// false if no queried chain knows the contract.
func Locate(chains []*chain.Chain, contract hashing.Address) (hashing.ChainID, bool) {
	byID := make(map[hashing.ChainID]*chain.Chain, len(chains))
	for _, c := range chains {
		byID[c.ChainID()] = c
	}
	for _, c := range chains {
		if !c.StateDB().Exists(contract) {
			continue
		}
		// Follow Lc pointers until they fixpoint (bounded by the chain
		// count: each hop lands on a chain that hosted the contract later).
		cur := c
		for hops := 0; hops <= len(chains); hops++ {
			loc := cur.StateDB().GetLocation(contract)
			if loc == cur.ChainID() {
				return loc, true
			}
			next, ok := byID[loc]
			if !ok {
				// The contract moved to a chain we cannot query; report the
				// pointer anyway.
				return loc, true
			}
			cur = next
		}
		return cur.ChainID(), true
	}
	return 0, false
}

// MoveResult reports a completed (or failed) contract move with the
// per-phase breakdown of Fig. 8 and the gas split of Fig. 9.
type MoveResult struct {
	Contract hashing.Address
	Err      error

	Move1Tx hashing.Hash
	Move2Tx hashing.Hash

	// Phase boundaries (simulated time): start → Move1 included →
	// proof confirmed p-deep → Move2 included → follow-ups complete.
	StartedAt    time.Duration
	Move1At      time.Duration
	ProofReadyAt time.Duration
	Move2At      time.Duration

	Move1Gas uint64
	Move2Gas uint64
}

// Move1Latency is the time to include the lock transaction.
func (r *MoveResult) Move1Latency() time.Duration { return r.Move1At - r.StartedAt }

// WaitProofLatency is the p-block wait plus proof acquisition.
func (r *MoveResult) WaitProofLatency() time.Duration { return r.ProofReadyAt - r.Move1At }

// Move2Latency is the time to include the recreation transaction.
func (r *MoveResult) Move2Latency() time.Duration { return r.Move2At - r.ProofReadyAt }

// Total is the end-to-end move latency.
func (r *MoveResult) Total() time.Duration { return r.Move2At - r.StartedAt }

// Mover drives moves from a source to a target chain.
type Mover struct {
	sched *simclock.Scheduler
	src   *chain.Chain
	dst   *chain.Chain
	// PollInterval is how often the relayer re-checks the target light
	// client for confirmation depth.
	PollInterval time.Duration
}

// NewMover returns a mover between two chains.
func NewMover(sched *simclock.Scheduler, src, dst *chain.Chain) *Mover {
	return &Mover{sched: sched, src: src, dst: dst, PollInterval: 500 * time.Millisecond}
}

// Move runs the full move of contract via the client: it submits the Move1
// call with the given moveTo calldata, builds the Merkle proof the moment
// the Move1 block commits, waits until the target's light client holds that
// height p blocks deep, submits Move2, and invokes done exactly once.
func (m *Mover) Move(cl *Client, contract hashing.Address, moveToInput []byte, done func(*MoveResult)) {
	res := &MoveResult{Contract: contract, StartedAt: m.sched.Now()}
	fail := func(stage string, err error) {
		res.Err = fmt.Errorf("%s: %w", stage, err)
		done(res)
	}

	move1ID, err := cl.Call(m.src, contract, moveToInput, u256.Zero())
	if err != nil {
		fail("move1 submit", err)
		return
	}
	res.Move1Tx = move1ID

	m.src.NotifyTx(move1ID, func(rec *types.Receipt, block *types.Block) {
		res.Move1At = m.sched.Now()
		res.Move1Gas = rec.GasUsed
		if !rec.Succeeded() {
			fail("move1", errors.New(rec.Err))
			return
		}
		m.complete(cl, contract, res, done)
	})
}

// Complete finishes a move whose Move1 already executed (any client may do
// this, §III-B): it builds the proof against the current committed state,
// waits for the confirmation depth, and submits Move2. The TokenRelay flow
// uses it because Move1 runs inside the creation transaction (Fig. 3).
func (m *Mover) Complete(cl *Client, contract hashing.Address, done func(*MoveResult)) {
	res := &MoveResult{Contract: contract, StartedAt: m.sched.Now(), Move1At: m.sched.Now()}
	m.complete(cl, contract, res, done)
}

func (m *Mover) complete(cl *Client, contract hashing.Address,
	res *MoveResult, done func(*MoveResult)) {
	fail := func(stage string, err error) {
		res.Err = fmt.Errorf("%s: %w", stage, err)
		done(res)
	}
	// Build the proof against the current committed state: the contract is
	// locked, so its record cannot change, and this head's root will reach
	// the target's light client within p blocks.
	proofHeight := m.src.Head().Height
	payload, err := core.BuildMoveProof(m.src.StateDB(), contract, proofHeight)
	if err != nil {
		fail("build proof", err)
		return
	}
	m.waitConfirmed(payload, func() {
		res.ProofReadyAt = m.sched.Now()
		move2ID, err := cl.SubmitMove2(m.dst, payload)
		if err != nil {
			fail("move2 submit", err)
			return
		}
		res.Move2Tx = move2ID
		m.dst.NotifyTx(move2ID, func(rec *types.Receipt, _ *types.Block) {
			res.Move2At = m.sched.Now()
			res.Move2Gas = rec.GasUsed
			if !rec.Succeeded() {
				fail("move2", errors.New(rec.Err))
				return
			}
			done(res)
		})
	})
}

// waitConfirmed polls the target light client until the proof's source
// height is p blocks deep.
func (m *Mover) waitConfirmed(payload *types.Move2Payload, then func()) {
	if m.dst.Headers().ConfirmedAt(payload.SourceChain, payload.SourceHeight) {
		then()
		return
	}
	m.sched.After(m.PollInterval, func() { m.waitConfirmed(payload, then) })
}
