// Package relay implements the client side of the Move protocol: a Client
// that signs and submits transactions with realistic submission latency
// (optionally over a lossy fault-injected link), and a Mover that drives
// the full Move1 → proof → wait-p-blocks → Move2 sequence across two
// chains as a crash-recoverable state machine with per-stage deadlines,
// exponential-backoff retries, and an in-memory journal, while recording
// the per-phase timings and gas that the paper's IBC experiments report
// (Figs. 8 and 9).
package relay

import (
	"errors"
	"runtime"
	"time"

	"scmove/internal/chain"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/simclock"
	"scmove/internal/simnet"
	"scmove/internal/txpool"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// DefaultGasLimit is the per-transaction gas limit clients use; generous
// enough for every contract in the standard library, including Store
// deployments and moves with a thousand state variables (~20 Mgas of
// SSTOREs).
const DefaultGasLimit = 40_000_000

// DefaultGasPrice is 2 (interpreted as Gwei in the cost analysis, matching
// the paper's December-2019 conversion).
var DefaultGasPrice = u256.FromUint64(2)

// Client is one transaction-submitting principal: a key pair plus local
// per-chain nonce counters. A failed signing or a pool rejection rolls the
// burnt nonce back (or, when later nonces were already handed out, flags
// the chain for a resync against committed state) so retries never wedge
// behind a permanently missing nonce.
type Client struct {
	kp          *keys.KeyPair
	sched       *simclock.Scheduler
	submitDelay time.Duration
	nonces      map[hashing.ChainID]uint64
	desynced    map[hashing.ChainID]bool
	links       map[hashing.ChainID]*simnet.Link
	signer      *keys.Pool // nil = sign inline on the event loop
}

// NewClient returns a client submitting with the given client-to-chain
// latency.
func NewClient(kp *keys.KeyPair, sched *simclock.Scheduler, submitDelay time.Duration) *Client {
	return &Client{
		kp:          kp,
		sched:       sched,
		submitDelay: submitDelay,
		nonces:      make(map[hashing.ChainID]uint64),
		desynced:    make(map[hashing.ChainID]bool),
		links:       make(map[hashing.ChainID]*simnet.Link),
	}
}

// Address returns the client's account address.
func (cl *Client) Address() hashing.Address { return cl.kp.Address() }

// Key returns the client's key pair.
func (cl *Client) Key() *keys.KeyPair { return cl.kp }

// SetSubmitLink routes this client's submissions to the given chain through
// a (possibly lossy) link instead of the fixed submission delay.
func (cl *Client) SetSubmitLink(id hashing.ChainID, link *simnet.Link) {
	cl.links[id] = link
}

// SetSigner moves this client's ECDSA signing onto the given worker pool.
// The transaction's From and id are still fixed synchronously — nothing the
// simulation orders on can change — while the signature itself overlaps
// with whatever the event loop does until the submission delay elapses; the
// delivery event then waits for it. Simulated timelines are identical with
// and without a signer; only wall-clock changes.
func (cl *Client) SetSigner(pool *keys.Pool) { cl.signer = pool }

// nextNonce hands out the next nonce for a chain, resyncing from committed
// chain state first if a previous submission failure desynchronized the
// local counter. The resync is eventually consistent: it may briefly reuse
// a nonce still pending in the pool, in which case one of the two
// transactions fails its nonce check and the counter resyncs again.
func (cl *Client) nextNonce(c *chain.Chain) uint64 {
	id := c.ChainID()
	if cl.desynced[id] {
		cl.nonces[id] = c.StateDB().GetNonce(cl.kp.Address())
		cl.desynced[id] = false
	}
	n := cl.nonces[id]
	cl.nonces[id] = n + 1
	return n
}

// rollbackNonce returns a burnt nonce after a failed submission. If it is
// the most recently handed out nonce the counter simply steps back;
// otherwise later nonces are already in flight and the counter is flagged
// for a resync from chain state.
func (cl *Client) rollbackNonce(id hashing.ChainID, nonce uint64) {
	if cl.nonces[id] == nonce+1 {
		cl.nonces[id] = nonce
		return
	}
	cl.desynced[id] = true
}

// NoteBadNonce flags the chain's nonce counter for a resync; movers call it
// when a transaction commits with a nonce failure.
func (cl *Client) NoteBadNonce(id hashing.ChainID) { cl.desynced[id] = true }

// deliver hands a signed transaction to the chain over the submission path:
// the chain's lossy link if one is set, the fixed submission delay
// otherwise. Pool rejections roll the nonce back so a retry can reuse it;
// duplicate rejections are expected for idempotent resubmissions and leave
// the counter alone.
func (cl *Client) deliver(c *chain.Chain, tx *types.Transaction) {
	apply := func() {
		// A deferred signature must land before admission reads it. In the
		// common case it finished during the submission delay and this
		// returns immediately.
		if err := tx.WaitSig(); err != nil {
			cl.rollbackNonce(c.ChainID(), tx.Nonce)
			return
		}
		if err := c.SubmitTx(tx); err != nil && !errors.Is(err, txpool.ErrDuplicate) {
			cl.rollbackNonce(c.ChainID(), tx.Nonce)
		}
	}
	link := cl.links[c.ChainID()]
	if link == nil {
		cl.sched.After(cl.submitDelay, apply)
		return
	}
	if !link.Corrupts() {
		link.Deliver(apply)
		return
	}
	// Corrupting link: clean copies take the fast path above (no
	// serialization); corrupted copies are re-encoded, tampered, and pushed
	// through the chain's full untrusted ingest. Their rejection is silent
	// by design — whether a given tamper breaks the *framing* (decode error)
	// or only the *signature* (pool rejection) depends on the encoded
	// signature lengths, which crypto/rand varies run to run, so any
	// rejection-reason counter here would break same-seed determinism. The
	// link's own corrupted counter records the event deterministically, and
	// the nonce is never rolled back: a corrupted copy is a separate forged
	// transaction, not this client's traffic failing.
	link.DeliverBytes(
		func() []byte {
			_ = tx.WaitSig()
			return tx.Encode()
		},
		func(raw []byte, corrupted bool) {
			if !corrupted {
				apply()
				return
			}
			forged, err := types.DecodeTransaction(raw)
			if err != nil {
				return
			}
			_ = c.SubmitTx(forged) // signature admission rejects it
		})
}

// sign signs tx, rolling the consumed nonce back on failure. With a signer
// pool configured the ECDSA is deferred to a worker and a failure (which
// crypto/rand makes all but impossible) surfaces at delivery time instead,
// where the nonce is likewise rolled back.
func (cl *Client) sign(c *chain.Chain, tx *types.Transaction) (*types.Transaction, error) {
	// With one CPU there is nothing to overlap with and the worker handoff
	// is pure overhead, so the deferred path requires real parallelism.
	if cl.signer != nil && runtime.GOMAXPROCS(0) > 1 {
		tx.SignOn(cl.kp, cl.signer)
		return tx, nil
	}
	if err := tx.Sign(cl.kp); err != nil {
		cl.rollbackNonce(c.ChainID(), tx.Nonce)
		return nil, err
	}
	return tx, nil
}

// SubmitSigned re-delivers an already-signed transaction over the
// submission path. Resubmission is idempotent: the pool deduplicates by
// transaction id while the first copy is pending, and stale nonces are
// dropped at proposal time, so a transaction that already committed can
// never re-execute.
func (cl *Client) SubmitSigned(c *chain.Chain, tx *types.Transaction) hashing.Hash {
	cl.deliver(c, tx)
	return tx.ID()
}

// SignedCall builds and signs a call transaction, consuming a nonce,
// without submitting it. Movers use it to keep the signed bytes for
// idempotent resubmission.
func (cl *Client) SignedCall(c *chain.Chain, to hashing.Address, data []byte, value u256.Int) (*types.Transaction, error) {
	return cl.sign(c, &types.Transaction{
		ChainID:  c.ChainID(),
		Nonce:    cl.nextNonce(c),
		Kind:     types.TxCall,
		To:       to,
		Value:    value,
		GasLimit: DefaultGasLimit,
		GasPrice: DefaultGasPrice,
		Data:     data,
	})
}

// SignedMove2 builds and signs a Move2 transaction carrying the given proof
// payload without submitting it.
func (cl *Client) SignedMove2(c *chain.Chain, payload *types.Move2Payload) (*types.Transaction, error) {
	return cl.sign(c, &types.Transaction{
		ChainID:  c.ChainID(),
		Nonce:    cl.nextNonce(c),
		Kind:     types.TxMove2,
		GasLimit: DefaultGasLimit,
		GasPrice: DefaultGasPrice,
		Move2:    payload,
	})
}

// SignedCreate builds and signs a deployment transaction, consuming a
// nonce, without submitting it — for idempotent resubmission by retrying
// harnesses.
func (cl *Client) SignedCreate(c *chain.Chain, code []byte, value u256.Int) (*types.Transaction, error) {
	return cl.sign(c, &types.Transaction{
		ChainID:  c.ChainID(),
		Nonce:    cl.nextNonce(c),
		Kind:     types.TxCreate,
		Value:    value,
		GasLimit: DefaultGasLimit,
		GasPrice: DefaultGasPrice,
		Data:     code,
	})
}

// Call submits a contract call (or plain transfer) and returns the tx id.
func (cl *Client) Call(c *chain.Chain, to hashing.Address, data []byte, value u256.Int) (hashing.Hash, error) {
	tx, err := cl.SignedCall(c, to, data, value)
	if err != nil {
		return hashing.Hash{}, err
	}
	cl.deliver(c, tx)
	return tx.ID(), nil
}

// Create submits a contract deployment.
func (cl *Client) Create(c *chain.Chain, code []byte, value u256.Int) (hashing.Hash, error) {
	tx, err := cl.SignedCreate(c, code, value)
	if err != nil {
		return hashing.Hash{}, err
	}
	cl.deliver(c, tx)
	return tx.ID(), nil
}

// SubmitMove2 submits a Move2 transaction carrying the given proof payload.
// Any client may complete an unfinished move this way (§III-B).
func (cl *Client) SubmitMove2(c *chain.Chain, payload *types.Move2Payload) (hashing.Hash, error) {
	tx, err := cl.SignedMove2(c, payload)
	if err != nil {
		return hashing.Hash{}, err
	}
	cl.deliver(c, tx)
	return tx.ID(), nil
}

// Locate finds the chain a contract currently lives on by following the
// location field Lc (§III-G(b)): any chain that has ever hosted the
// contract keeps a tombstone whose Lc names its current home, so a client
// that does not know where a contract is can chase the pointers. Returns
// false if no queried chain knows the contract.
func Locate(chains []*chain.Chain, contract hashing.Address) (hashing.ChainID, bool) {
	byID := make(map[hashing.ChainID]*chain.Chain, len(chains))
	for _, c := range chains {
		byID[c.ChainID()] = c
	}
	for _, c := range chains {
		if !c.StateDB().Exists(contract) {
			continue
		}
		// Follow Lc pointers until they fixpoint (bounded by the chain
		// count: each hop lands on a chain that hosted the contract later).
		cur := c
		for hops := 0; hops <= len(chains); hops++ {
			loc := cur.StateDB().GetLocation(contract)
			if loc == cur.ChainID() {
				return loc, true
			}
			next, ok := byID[loc]
			if !ok {
				// The contract moved to a chain we cannot query; report the
				// pointer anyway.
				return loc, true
			}
			cur = next
		}
		return cur.ChainID(), true
	}
	return 0, false
}

// MoveResult reports a completed (or failed) contract move with the
// per-phase breakdown of Fig. 8 and the gas split of Fig. 9.
type MoveResult struct {
	Contract hashing.Address
	Err      error

	Move1Tx hashing.Hash
	Move2Tx hashing.Hash

	// Phase boundaries (simulated time): start → Move1 included →
	// proof confirmed p-deep → Move2 included → follow-ups complete.
	StartedAt    time.Duration
	Move1At      time.Duration
	ProofReadyAt time.Duration
	Move2At      time.Duration

	Move1Gas uint64
	Move2Gas uint64
}

// Move1Latency is the time to include the lock transaction.
func (r *MoveResult) Move1Latency() time.Duration { return r.Move1At - r.StartedAt }

// WaitProofLatency is the p-block wait plus proof acquisition.
func (r *MoveResult) WaitProofLatency() time.Duration { return r.ProofReadyAt - r.Move1At }

// Move2Latency is the time to include the recreation transaction.
func (r *MoveResult) Move2Latency() time.Duration { return r.Move2At - r.ProofReadyAt }

// Total is the end-to-end move latency.
func (r *MoveResult) Total() time.Duration { return r.Move2At - r.StartedAt }
