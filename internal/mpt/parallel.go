package mpt

import (
	"runtime"
	"sync"

	"scmove/internal/hashing"
	"scmove/internal/trie"
)

// hashFanDepth is how far below the root HashParallel looks for dirty
// subtrees to hand to workers. Two levels of a hex trie yield up to 256
// disjoint tasks — plenty of parallelism without descending so deep that
// per-task work no longer amortizes the handoff.
const hashFanDepth = 2

// HashParallel returns the Merkle root, hashing dirty subtrees below the
// root on r's workers. It implements trie.ParallelHasher: a node hash is a
// pure function of subtree contents, and the fanned-out subtrees are
// disjoint by construction (distinct branch children), so the result — and
// every cached node hash — is byte-identical to a serial RootHash at any
// worker count. With a nil runner or a single-CPU process it *is* a serial
// RootHash.
func (t *Tree) HashParallel(r trie.Runner) hashing.Hash {
	if t.root == nil {
		return hashing.ZeroHash
	}
	if r != nil && runtime.GOMAXPROCS(0) > 1 {
		var tasks []*node
		collectDirty(t.root, hashFanDepth, &tasks)
		if len(tasks) > 1 {
			var wg sync.WaitGroup
			wg.Add(len(tasks))
			for _, n := range tasks {
				n := n
				r.Go(func() {
					defer wg.Done()
					n.hashNode()
				})
			}
			wg.Wait()
		}
	}
	// The few remaining dirty nodes above the fan-out frontier hash here,
	// finding every frontier subtree already clean.
	return t.root.hashNode()
}

// collectDirty gathers the dirty nodes exactly depth levels below n (or
// shallower dirty leaves, which are too cheap to bother scheduling and are
// left for the final serial pass).
func collectDirty(n *node, depth int, out *[]*node) {
	if n == nil || n.clean {
		return
	}
	if depth == 0 {
		*out = append(*out, n)
		return
	}
	switch n.kind {
	case kindExt:
		collectDirty(n.child, depth-1, out)
	case kindBranch:
		for i := range n.children {
			collectDirty(n.children[i], depth-1, out)
		}
	}
}
