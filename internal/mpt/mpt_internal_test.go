package mpt

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNibbleRoundTrip(t *testing.T) {
	f := func(key []byte) bool {
		nibs := bytesToNibbles(key)
		if len(nibs) != 2*len(key) {
			return false
		}
		for _, n := range nibs {
			if n > 0x0f {
				return false
			}
		}
		return bytes.Equal(nibblesToBytes(nibs), key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCanonicalShapeInvariant checks the structural invariants that make
// the trie canonical after arbitrary deletes: no extension points at an
// extension or leaf (they must be merged), and every branch has at least
// two children.
func TestCanonicalShapeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	tr := New(4)
	live := map[uint32]bool{}
	for op := 0; op < 8000; op++ {
		k := uint32(rng.Intn(512))
		var key [4]byte
		binary.BigEndian.PutUint32(key[:], k)
		if rng.Intn(3) == 0 {
			if err := tr.Delete(key[:]); err != nil {
				t.Fatal(err)
			}
			delete(live, k)
		} else {
			if err := tr.Set(key[:], []byte{byte(k), 1}); err != nil {
				t.Fatal(err)
			}
			live[k] = true
		}
		if op%500 == 0 {
			checkShape(t, tr.root)
			if tr.Len() != len(live) {
				t.Fatalf("op %d: Len %d != %d", op, tr.Len(), len(live))
			}
		}
	}
	checkShape(t, tr.root)
}

func checkShape(t *testing.T, n *node) {
	t.Helper()
	if n == nil {
		return
	}
	switch n.kind {
	case kindLeaf:
		// nothing further
	case kindExt:
		if len(n.nibbles) == 0 {
			t.Fatal("empty extension")
		}
		if n.child == nil || n.child.kind != kindBranch {
			t.Fatalf("extension must point at a branch, points at %v", n.child)
		}
		checkShape(t, n.child)
	case kindBranch:
		count := 0
		for i := 0; i < 16; i++ {
			if n.children[i] != nil {
				count++
				checkShape(t, n.children[i])
			}
		}
		if count < 2 {
			t.Fatalf("branch with %d children survived", count)
		}
	default:
		t.Fatalf("unknown node kind %d", n.kind)
	}
}

// TestDifferentialAgainstFreshTree extends TestHashCacheConsistency to the
// full authenticated surface: after randomized insert/delete/re-insert
// traffic, the long-lived tree — with its populated hash caches, encoding
// caches, and reused scratch buffers — must be indistinguishable from a
// tree built fresh from the surviving entries. Root hashes must match and
// every membership proof must be byte-identical.
func TestDifferentialAgainstFreshTree(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tr := New(4)
	live := map[uint32][]byte{}
	for op := 0; op < 3000; op++ {
		k := uint32(rng.Intn(256))
		var key [4]byte
		binary.BigEndian.PutUint32(key[:], k)
		if rng.Intn(4) == 0 {
			if err := tr.Delete(key[:]); err != nil {
				t.Fatal(err)
			}
			delete(live, k)
		} else {
			v := []byte{byte(op), byte(op >> 8), 3}
			if err := tr.Set(key[:], v); err != nil {
				t.Fatal(err)
			}
			live[k] = v
		}
		if op%250 != 0 || len(live) == 0 {
			continue
		}
		fresh := New(4)
		for lk, lv := range live {
			var fk [4]byte
			binary.BigEndian.PutUint32(fk[:], lk)
			if err := fresh.Set(fk[:], lv); err != nil {
				t.Fatal(err)
			}
		}
		root := tr.RootHash()
		if fresh.RootHash() != root {
			t.Fatalf("op %d: root diverges from fresh tree", op)
		}
		for lk, lv := range live {
			var pk [4]byte
			binary.BigEndian.PutUint32(pk[:], lk)
			p1, err := tr.Prove(pk[:])
			if err != nil {
				t.Fatalf("op %d key %08x: prove (lived): %v", op, lk, err)
			}
			p2, err := fresh.Prove(pk[:])
			if err != nil {
				t.Fatalf("op %d key %08x: prove (fresh): %v", op, lk, err)
			}
			if !bytes.Equal(p1, p2) {
				t.Fatalf("op %d key %08x: proofs diverge", op, lk)
			}
			entry, err := VerifyProof(root, p1)
			if err != nil {
				t.Fatalf("op %d key %08x: verify: %v", op, lk, err)
			}
			if !bytes.Equal(entry.Key, pk[:]) || !bytes.Equal(entry.Value, lv) {
				t.Fatalf("op %d key %08x: proven entry mismatch", op, lk)
			}
		}
	}
}

func TestHashCacheConsistency(t *testing.T) {
	// Interleave reads of RootHash with mutations: the cached hashes must
	// always equal a fresh recomputation.
	rng := rand.New(rand.NewSource(9))
	a := New(4)
	for op := 0; op < 2000; op++ {
		var key [4]byte
		binary.BigEndian.PutUint32(key[:], uint32(rng.Intn(128)))
		if rng.Intn(4) == 0 {
			if err := a.Delete(key[:]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := a.Set(key[:], []byte{byte(op), 2}); err != nil {
				t.Fatal(err)
			}
		}
		if op%100 == 0 {
			cached := a.RootHash()
			rebuilt := New(4)
			a.Iterate(func(k, v []byte) bool {
				if err := rebuilt.Set(k, v); err != nil {
					t.Fatal(err)
				}
				return true
			})
			if rebuilt.RootHash() != cached {
				t.Fatalf("op %d: cached root diverges from recomputation", op)
			}
		}
	}
}
