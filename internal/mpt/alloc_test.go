package mpt

import (
	"encoding/binary"
	"testing"
)

// Allocation-regression tests: the trie sits under every SLOAD/SSTORE of
// the simulator, so its per-op allocation profile is a contract, not an
// accident. testing.AllocsPerRun fails loudly if a future change starts
// allocating on the read path again.

func allocTestTree(tb testing.TB, n int) *Tree {
	tb.Helper()
	tr := New(4)
	for i := 0; i < n; i++ {
		var key [4]byte
		binary.BigEndian.PutUint32(key[:], uint32(i*2654435761))
		if err := tr.Set(key[:], []byte{byte(i), byte(i >> 8), 1}); err != nil {
			tb.Fatal(err)
		}
	}
	return tr
}

// TestGetZeroAlloc pins the headline property of the scratch-buffer work:
// Get on a committed (hashed) tree allocates nothing at all.
func TestGetZeroAlloc(t *testing.T) {
	tr := allocTestTree(t, 512)
	tr.RootHash()
	var key [4]byte
	i := 100
	binary.BigEndian.PutUint32(key[:], uint32(i*2654435761))
	if _, ok := tr.Get(key[:]); !ok {
		t.Fatal("key must be present")
	}
	allocs := testing.AllocsPerRun(200, func() {
		tr.Get(key[:])
	})
	if allocs != 0 {
		t.Fatalf("Get on committed tree allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSetOverwriteAllocsBounded bounds the write path: overwriting an
// existing key copies the value (one allocation) and must not reallocate
// the path nodes or the key nibbles.
func TestSetOverwriteAllocsBounded(t *testing.T) {
	tr := allocTestTree(t, 512)
	tr.RootHash()
	var key [4]byte
	i := 100
	binary.BigEndian.PutUint32(key[:], uint32(i*2654435761))
	val := []byte{9, 9, 9}
	allocs := testing.AllocsPerRun(200, func() {
		if err := tr.Set(key[:], val); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Set overwrite allocates %.1f objects/op, want <= 1 (the value copy)", allocs)
	}
}
