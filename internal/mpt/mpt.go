// Package mpt implements a hex-nibble Merkle Patricia trie with membership
// proofs, the state tree of the Ethereum-like chain in this reproduction.
//
// The trie is canonical: its root hash is a pure function of the key-value
// contents. Deletion fully collapses extension/branch chains so that a tree
// that had entries added and removed hashes identically to a tree built
// fresh from the surviving entries — the property Move2's completeness check
// relies on (paper §III-E).
//
// All keys in one trie share a fixed length, which removes the
// key-is-prefix-of-another case (branches never carry values). Account
// tries use 20-byte address keys and storage tries 32-byte word keys.
package mpt

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"scmove/internal/hashing"
	"scmove/internal/trie"
)

// Node encoding tags (also domain-separate the hash inputs).
const (
	tagLeaf   = 0x4c // 'L'
	tagExt    = 0x45 // 'E'
	tagBranch = 0x42 // 'B'
)

type nodeKind uint8

const (
	kindLeaf nodeKind = iota + 1
	kindExt
	kindBranch
)

type node struct {
	kind     nodeKind
	nibbles  []byte // leaf: remaining key path; ext: shared path
	value    []byte // leaf only
	child    *node  // ext only
	children [16]*node

	// hash and enc cache the node hash and its canonical encoding while the
	// subtree is clean, so unchanged subtrees are neither re-encoded nor
	// re-hashed by RootHash or Prove.
	hash  hashing.Hash
	enc   []byte
	clean bool
}

// Tree is a Merkle Patricia trie. Construct with New; the zero value is not
// usable because the key length must be fixed up front.
//
// A Tree is not safe for concurrent use: lookups share a scratch nibble
// buffer so that reads on a committed tree are allocation-free.
type Tree struct {
	root       *node
	keyLen     int
	count      int
	nibScratch []byte // reusable key-nibble buffer for Get/Set/Delete/Prove
}

var _ trie.Tree = (*Tree)(nil)

// New returns an empty trie whose keys are keyLen bytes long.
func New(keyLen int) *Tree {
	if keyLen <= 0 {
		panic("mpt: key length must be positive")
	}
	return &Tree{keyLen: keyLen}
}

// KeyLen returns the fixed key length in bytes.
func (t *Tree) KeyLen() int { return t.keyLen }

// Len returns the number of entries.
func (t *Tree) Len() int { return t.count }

// Get returns the value stored under key. The traversal is duplicated in
// getNibbles rather than delegated: the loop is too big to inline, and the
// extra call frame showed up as a double-digit regression on the mpt_get
// benchmark.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	if len(key) != t.keyLen {
		return nil, false
	}
	n := t.root
	nibs := t.keyNibbles(key)
	for n != nil {
		switch n.kind {
		case kindLeaf:
			if bytes.Equal(n.nibbles, nibs) {
				return n.value, true
			}
			return nil, false
		case kindExt:
			if !bytes.HasPrefix(nibs, n.nibbles) {
				return nil, false
			}
			nibs = nibs[len(n.nibbles):]
			n = n.child
		case kindBranch:
			if len(nibs) == 0 {
				return nil, false
			}
			n, nibs = n.children[nibs[0]], nibs[1:]
		}
	}
	return nil, false
}

// GetShared implements trie.SharedReader: a read that expands the key into
// a stack buffer instead of the tree's shared nibble scratch, so any number
// of readers can run concurrently on a frozen tree.
func (t *Tree) GetShared(key []byte) ([]byte, bool) {
	if len(key) != t.keyLen {
		return nil, false
	}
	var buf [64]byte // covers 32-byte keys; both state trees are ≤ 32
	var nibs []byte
	if need := len(key) * 2; need <= len(buf) {
		nibs = buf[:need]
		for i, b := range key {
			nibs[i*2] = b >> 4
			nibs[i*2+1] = b & 0x0f
		}
	} else {
		nibs = bytesToNibbles(key)
	}
	return t.getNibbles(nibs)
}

// getNibbles walks the trie for an already-expanded key.
func (t *Tree) getNibbles(nibs []byte) ([]byte, bool) {
	n := t.root
	for n != nil {
		switch n.kind {
		case kindLeaf:
			if bytes.Equal(n.nibbles, nibs) {
				return n.value, true
			}
			return nil, false
		case kindExt:
			if !bytes.HasPrefix(nibs, n.nibbles) {
				return nil, false
			}
			nibs = nibs[len(n.nibbles):]
			n = n.child
		case kindBranch:
			if len(nibs) == 0 {
				return nil, false
			}
			n, nibs = n.children[nibs[0]], nibs[1:]
		}
	}
	return nil, false
}

// Set stores value under key.
func (t *Tree) Set(key, value []byte) error {
	if len(key) != t.keyLen {
		return fmt.Errorf("%w: got %d want %d", trie.ErrKeyLength, len(key), t.keyLen)
	}
	if len(value) == 0 {
		panic("mpt: empty value; use Delete to remove keys")
	}
	val := make([]byte, len(value))
	copy(val, value)
	var added bool
	// keyNibbles is a scratch buffer: insert copies any path it retains.
	t.root, added = insert(t.root, t.keyNibbles(key), val)
	if added {
		t.count++
	}
	return nil
}

// Delete removes key from the trie.
func (t *Tree) Delete(key []byte) error {
	if len(key) != t.keyLen {
		return fmt.Errorf("%w: got %d want %d", trie.ErrKeyLength, len(key), t.keyLen)
	}
	var removed bool
	t.root, removed = remove(t.root, t.keyNibbles(key))
	if removed {
		t.count--
	}
	return nil
}

// RootHash returns the Merkle root. The empty trie hashes to the zero hash.
func (t *Tree) RootHash() hashing.Hash {
	if t.root == nil {
		return hashing.ZeroHash
	}
	return t.root.hashNode()
}

// Iterate visits entries in ascending key order.
func (t *Tree) Iterate(fn func(key, value []byte) bool) {
	var walk func(n *node, prefix []byte) bool
	walk = func(n *node, prefix []byte) bool {
		if n == nil {
			return true
		}
		switch n.kind {
		case kindLeaf:
			key := nibblesToBytes(append(prefix, n.nibbles...))
			return fn(key, n.value)
		case kindExt:
			return walk(n.child, append(prefix, n.nibbles...))
		default: // branch
			for i := 0; i < 16; i++ {
				if n.children[i] == nil {
					continue
				}
				if !walk(n.children[i], append(prefix, byte(i))) {
					return false
				}
			}
			return true
		}
	}
	walk(t.root, make([]byte, 0, t.keyLen*2))
}

// insert returns the updated subtree and whether a new key was added (as
// opposed to replacing an existing value). nibs may point into the tree's
// scratch buffer, so any retained path is copied (cloneNibs).
func insert(n *node, nibs, value []byte) (*node, bool) {
	if n == nil {
		return &node{kind: kindLeaf, nibbles: cloneNibs(nibs), value: value}, true
	}
	n.clean = false
	switch n.kind {
	case kindLeaf:
		if bytes.Equal(n.nibbles, nibs) {
			n.value = value
			return n, false
		}
		p := commonPrefix(n.nibbles, nibs)
		branch := &node{kind: kindBranch}
		// Fixed-length keys guarantee divergence before either path is
		// exhausted, so both remainders are non-empty.
		old := &node{kind: kindLeaf, nibbles: n.nibbles[p+1:], value: n.value}
		branch.children[n.nibbles[p]] = old
		branch.children[nibs[p]] = &node{kind: kindLeaf, nibbles: cloneNibs(nibs[p+1:]), value: value}
		return wrapExt(nibs[:p], branch), true
	case kindExt:
		p := commonPrefix(n.nibbles, nibs)
		if p == len(n.nibbles) {
			child, added := insert(n.child, nibs[p:], value)
			n.child = child
			return n, added
		}
		// Split the extension at the divergence point.
		branch := &node{kind: kindBranch}
		branch.children[n.nibbles[p]] = wrapExt(n.nibbles[p+1:], n.child)
		branch.children[nibs[p]] = &node{kind: kindLeaf, nibbles: cloneNibs(nibs[p+1:]), value: value}
		return wrapExt(nibs[:p], branch), true
	default: // branch
		idx := nibs[0]
		child, added := insert(n.children[idx], nibs[1:], value)
		n.children[idx] = child
		return n, added
	}
}

// remove returns the updated (canonicalized) subtree and whether a key was
// actually removed.
func remove(n *node, nibs []byte) (*node, bool) {
	if n == nil {
		return nil, false
	}
	switch n.kind {
	case kindLeaf:
		if bytes.Equal(n.nibbles, nibs) {
			return nil, true
		}
		return n, false
	case kindExt:
		if !bytes.HasPrefix(nibs, n.nibbles) {
			return n, false
		}
		child, removed := remove(n.child, nibs[len(n.nibbles):])
		if !removed {
			return n, false
		}
		n.clean = false
		if child == nil {
			return nil, true
		}
		return mergeExt(n.nibbles, child), true
	default: // branch
		idx := nibs[0]
		child, removed := remove(n.children[idx], nibs[1:])
		if !removed {
			return n, false
		}
		n.clean = false
		n.children[idx] = child
		// Count the surviving children; collapse if only one remains.
		last := -1
		cnt := 0
		for i := 0; i < 16; i++ {
			if n.children[i] != nil {
				last = i
				cnt++
			}
		}
		if cnt >= 2 {
			return n, true
		}
		// cnt == 1: the branch is redundant; splice the nibble into the
		// surviving child. (cnt == 0 cannot happen: a branch always has at
		// least two children by construction.)
		return mergeExt([]byte{byte(last)}, n.children[last]), true
	}
}

// wrapExt wraps child in an extension node with the given path, avoiding
// empty extensions and merging nested extensions/leaves.
func wrapExt(nibs []byte, child *node) *node {
	if len(nibs) == 0 {
		return child
	}
	return mergeExt(nibs, child)
}

// mergeExt prepends nibs to child, fusing with leaf or extension children to
// maintain canonical form.
func mergeExt(nibs []byte, child *node) *node {
	switch child.kind {
	case kindLeaf:
		return &node{kind: kindLeaf, nibbles: concatNibs(nibs, child.nibbles), value: child.value}
	case kindExt:
		return &node{kind: kindExt, nibbles: concatNibs(nibs, child.nibbles), child: child.child}
	default:
		return &node{kind: kindExt, nibbles: concatNibs(nibs, nil), child: child}
	}
}

func concatNibs(a, b []byte) []byte {
	out := make([]byte, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func cloneNibs(nibs []byte) []byte {
	out := make([]byte, len(nibs))
	copy(out, nibs)
	return out
}

func commonPrefix(a, b []byte) int {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return i
}

// appendEncode appends the canonical byte encoding of a node to b. The
// format is byte-identical to the codec.Writer encoding proofs decode:
// uvarint tag, length-prefixed byte strings, raw 32-byte hashes.
func (n *node) appendEncode(b []byte) []byte {
	switch n.kind {
	case kindLeaf:
		b = binary.AppendUvarint(b, tagLeaf)
		b = binary.AppendUvarint(b, uint64(len(n.nibbles)))
		b = append(b, n.nibbles...)
		b = binary.AppendUvarint(b, uint64(len(n.value)))
		b = append(b, n.value...)
	case kindExt:
		b = binary.AppendUvarint(b, tagExt)
		b = binary.AppendUvarint(b, uint64(len(n.nibbles)))
		b = append(b, n.nibbles...)
		h := n.child.hashNode()
		b = append(b, h[:]...)
	default:
		b = binary.AppendUvarint(b, tagBranch)
		for i := 0; i < 16; i++ {
			if n.children[i] == nil {
				b = append(b, hashing.ZeroHash[:]...)
			} else {
				h := n.children[i].hashNode()
				b = append(b, h[:]...)
			}
		}
	}
	return b
}

// encode returns the canonical encoding of a clean node, hashing (and
// caching) it first if needed. The returned slice is the node's cache;
// callers must not retain or mutate it across tree mutations.
func (n *node) encode() []byte {
	if !n.clean {
		n.hashNode()
	}
	return n.enc
}

func (n *node) hashNode() hashing.Hash {
	if n.clean {
		return n.hash
	}
	n.enc = n.appendEncode(n.enc[:0])
	n.hash = hashing.Sum(n.enc)
	n.clean = true
	return n.hash
}

// keyNibbles expands key into the tree's scratch nibble buffer. The result
// is valid until the next keyNibbles call; retained paths must be copied.
func (t *Tree) keyNibbles(key []byte) []byte {
	need := len(key) * 2
	if cap(t.nibScratch) < need {
		t.nibScratch = make([]byte, need)
	}
	nibs := t.nibScratch[:need]
	for i, b := range key {
		nibs[i*2] = b >> 4
		nibs[i*2+1] = b & 0x0f
	}
	return nibs
}

// bytesToNibbles expands each byte into two hex nibbles (high first).
func bytesToNibbles(key []byte) []byte {
	out := make([]byte, len(key)*2)
	for i, b := range key {
		out[i*2] = b >> 4
		out[i*2+1] = b & 0x0f
	}
	return out
}

// nibblesToBytes packs nibbles back into bytes; the count must be even.
func nibblesToBytes(nibs []byte) []byte {
	out := make([]byte, len(nibs)/2)
	for i := range out {
		out[i] = nibs[i*2]<<4 | nibs[i*2+1]
	}
	return out
}
