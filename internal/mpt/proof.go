package mpt

import (
	"bytes"
	"fmt"

	"scmove/internal/codec"
	"scmove/internal/hashing"
	"scmove/internal/trie"
)

// Prove returns an encoded membership proof for key: the canonical encodings
// of every node on the path from the root to the key's leaf, with the branch
// directions taken. The proof is self-contained — verification reconstructs
// both the key and the value from the committed path.
func (t *Tree) Prove(key []byte) ([]byte, error) {
	if len(key) != t.keyLen {
		return nil, fmt.Errorf("%w: got %d want %d", trie.ErrKeyLength, len(key), t.keyLen)
	}
	nibs := t.keyNibbles(key)
	w := codec.NewWriter(512)
	var steps int
	body := codec.NewWriter(512)
	n := t.root
	for n != nil {
		body.WriteBytes(n.encode())
		steps++
		switch n.kind {
		case kindLeaf:
			if !bytes.Equal(n.nibbles, nibs) {
				return nil, fmt.Errorf("%w: key absent", trie.ErrInvalidProof)
			}
			w.WriteUvarint(uint64(steps))
			return append(w.Bytes(), body.Bytes()...), nil
		case kindExt:
			if !bytes.HasPrefix(nibs, n.nibbles) {
				return nil, fmt.Errorf("%w: key absent", trie.ErrInvalidProof)
			}
			nibs = nibs[len(n.nibbles):]
			n = n.child
		default: // branch
			if len(nibs) == 0 {
				return nil, fmt.Errorf("%w: key absent", trie.ErrInvalidProof)
			}
			body.WriteUvarint(uint64(nibs[0]))
			n, nibs = n.children[nibs[0]], nibs[1:]
		}
	}
	return nil, fmt.Errorf("%w: key absent", trie.ErrInvalidProof)
}

// VerifyProof checks an encoded membership proof against root and returns
// the proven key-value entry.
func VerifyProof(root hashing.Hash, proof []byte) (trie.ProvenEntry, error) {
	r := codec.NewReader(proof)
	steps := r.ReadUvarint()
	if steps == 0 || steps > 1<<16 {
		return trie.ProvenEntry{}, fmt.Errorf("%w: bad step count", trie.ErrInvalidProof)
	}
	expected := root
	var keyNibs []byte
	for i := uint64(0); i < steps; i++ {
		enc := r.ReadBytes()
		if r.Err() != nil {
			return trie.ProvenEntry{}, fmt.Errorf("%w: %v", trie.ErrInvalidProof, r.Err())
		}
		if hashing.Sum(enc) != expected {
			return trie.ProvenEntry{}, fmt.Errorf("%w: hash mismatch at step %d", trie.ErrInvalidProof, i)
		}
		last := i == steps-1
		nr := codec.NewReader(enc)
		switch tag := nr.ReadUvarint(); tag {
		case tagLeaf:
			if !last {
				return trie.ProvenEntry{}, fmt.Errorf("%w: interior leaf", trie.ErrInvalidProof)
			}
			nibs := nr.ReadBytes()
			value := nr.ReadBytes()
			if err := nr.Finish(); err != nil {
				return trie.ProvenEntry{}, fmt.Errorf("%w: %v", trie.ErrInvalidProof, err)
			}
			keyNibs = append(keyNibs, nibs...)
			if len(keyNibs)%2 != 0 {
				return trie.ProvenEntry{}, fmt.Errorf("%w: odd nibble count", trie.ErrInvalidProof)
			}
			if err := r.Finish(); err != nil {
				return trie.ProvenEntry{}, fmt.Errorf("%w: %v", trie.ErrInvalidProof, err)
			}
			return trie.ProvenEntry{Key: nibblesToBytes(keyNibs), Value: value}, nil
		case tagExt:
			if last {
				return trie.ProvenEntry{}, fmt.Errorf("%w: proof ends at extension", trie.ErrInvalidProof)
			}
			nibs := nr.ReadBytes()
			expected = nr.ReadHash()
			if err := nr.Finish(); err != nil {
				return trie.ProvenEntry{}, fmt.Errorf("%w: %v", trie.ErrInvalidProof, err)
			}
			keyNibs = append(keyNibs, nibs...)
		case tagBranch:
			if last {
				return trie.ProvenEntry{}, fmt.Errorf("%w: proof ends at branch", trie.ErrInvalidProof)
			}
			var hashes [16]hashing.Hash
			for j := 0; j < 16; j++ {
				hashes[j] = nr.ReadHash()
			}
			if err := nr.Finish(); err != nil {
				return trie.ProvenEntry{}, fmt.Errorf("%w: %v", trie.ErrInvalidProof, err)
			}
			dir := r.ReadUvarint()
			if r.Err() != nil || dir > 15 || hashes[dir].IsZero() {
				return trie.ProvenEntry{}, fmt.Errorf("%w: bad branch direction", trie.ErrInvalidProof)
			}
			expected = hashes[dir]
			keyNibs = append(keyNibs, byte(dir))
		default:
			return trie.ProvenEntry{}, fmt.Errorf("%w: unknown node tag %d", trie.ErrInvalidProof, tag)
		}
	}
	return trie.ProvenEntry{}, fmt.Errorf("%w: proof ended before leaf", trie.ErrInvalidProof)
}
