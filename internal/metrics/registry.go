package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Registry is the unified observability surface of one simulation run: the
// event Counters the chaos tooling already reports, point-in-time gauges
// (queue depths, in-flight messages), fixed-bucket latency Histograms over
// simulated time (the per-stage Move-protocol costs of Figs. 5–9), and an
// optional structured trace of Spans.
//
// Every method is nil-safe: a nil *Registry records nothing and costs one
// pointer comparison, so instrumented components take an optional registry
// and the layer is off by default. Recording never schedules events, draws
// randomness, or touches simulation state — enabling it cannot perturb
// simulated results.
//
// Simulation-driven registries are effectively single-threaded (all
// recording happens on the scheduler goroutine), but the front door
// records wall-clock samples from arbitrary RPC handler goroutines, so
// every recording method is additionally guarded by an internal mutex.
// Reading a *Histogram returned by Histogram() is only safe once
// concurrent recording has stopped (harnesses read after the run).
type Registry struct {
	mu       sync.Mutex
	counters *Counters
	gauges   map[string]float64
	hists    map[string]*Histogram
	spans    []Span
	trace    bool
}

// NewRegistry returns a registry with a fresh counter set.
func NewRegistry() *Registry { return NewRegistryWith(nil) }

// NewRegistryWith returns a registry folding an existing counter set (so a
// harness that already shares Counters gets one unified surface). A nil
// counters gets a fresh set.
func NewRegistryWith(counters *Counters) *Registry {
	if counters == nil {
		counters = NewCounters()
	}
	return &Registry{
		counters: counters,
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Histogram),
	}
}

// Enabled reports whether the registry records anything (false for nil).
func (r *Registry) Enabled() bool { return r != nil }

// Counters returns the folded counter set (nil for a nil registry).
func (r *Registry) Counters() *Counters {
	if r == nil {
		return nil
	}
	return r.counters
}

// Count adds n to the named event counter. Unlike Counters().Add it is
// nil-safe, so call sites instrumented with an optional registry need no
// guard of their own.
func (r *Registry) Count(name string, n uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters.Add(name, n)
	r.mu.Unlock()
}

// EnableTrace switches span retention on or off. Histograms observe spans
// either way; the trace additionally keeps every span for the JSONL dump.
func (r *Registry) EnableTrace(on bool) {
	if r != nil {
		r.trace = on
	}
}

// TraceEnabled reports whether spans are retained.
func (r *Registry) TraceEnabled() bool { return r != nil && r.trace }

// Observe records one latency sample into the named histogram (created
// with the simulated-time bucket layout on first use).
func (r *Registry) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.observeLocked(name, d, false)
	r.mu.Unlock()
}

// ObserveWall records one wall-clock latency sample into the named
// histogram, creating it with the microsecond-based wall-clock bucket
// layout on first use (see NewWallHistogram). A name observed through
// Observe first keeps its simulated-time layout.
func (r *Registry) ObserveWall(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.observeLocked(name, d, true)
	r.mu.Unlock()
}

func (r *Registry) observeLocked(name string, d time.Duration, wall bool) {
	h := r.hists[name]
	if h == nil {
		if wall {
			h = NewWallHistogram()
		} else {
			h = &Histogram{}
		}
		r.hists[name] = h
	}
	h.Observe(d)
}

// Histogram returns the named histogram, or nil if nothing was observed
// under that name (always nil on a nil registry). The returned pointer is
// only safe to read once concurrent recording has stopped.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[name]
}

// HistogramNames returns every histogram name in sorted order.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SetGauge sets the named gauge to v.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// MaxGauge raises the named gauge to v if v exceeds its current value
// (high-water marks: peak queue depth, peak in-flight messages).
func (r *Registry) MaxGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if cur, ok := r.gauges[name]; !ok || v > cur {
		r.gauges[name] = v
	}
	r.mu.Unlock()
}

// AddGauge adjusts the named gauge by delta (in-flight counts).
func (r *Registry) AddGauge(name string, delta float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] += delta
	r.mu.Unlock()
}

// Gauge returns the named gauge's value (zero if never set).
func (r *Registry) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// GaugeNames returns every gauge name in sorted order.
func (r *Registry) GaugeNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val string
}

// A builds an attribute.
func A(key, val string) Attr { return Attr{Key: key, Val: val} }

// Span is one traced interval (or, with Start == End, a point event) on
// the simulated timeline.
type Span struct {
	Name  string
	Start time.Duration
	End   time.Duration
	Attrs []Attr
}

// Dur returns the span's duration.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// Span records a completed interval: its duration feeds the histogram of
// the same name, and with tracing enabled the span is retained for the
// JSONL dump.
func (r *Registry) Span(name string, start, end time.Duration, attrs ...Attr) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.observeLocked(name, end-start, false)
	if r.trace {
		r.spans = append(r.spans, Span{Name: name, Start: start, End: end, Attrs: attrs})
	}
	r.mu.Unlock()
}

// Event records a point span (submission, retry, recovery, failure). It
// feeds no histogram — occurrences are already counted by Counters — but is
// retained in the trace.
func (r *Registry) Event(name string, at time.Duration, attrs ...Attr) {
	if r == nil || !r.trace {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, Span{Name: name, Start: at, End: at, Attrs: attrs})
	r.mu.Unlock()
}

// Spans returns the retained trace in emission order (simulated time order,
// since the simulation is single-threaded).
func (r *Registry) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// spanJSON is the JSONL wire form of one span. Field order is fixed and
// attrs marshal sorted by key, so dumps are byte-deterministic.
type spanJSON struct {
	Name    string            `json:"name"`
	StartNs int64             `json:"start_ns"`
	EndNs   int64             `json:"end_ns"`
	DurNs   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// WriteTrace dumps the retained spans as JSON Lines, one span per line.
func (r *Registry) WriteTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, s := range r.spans {
		rec := spanJSON{
			Name:    s.Name,
			StartNs: int64(s.Start),
			EndNs:   int64(s.End),
			DurNs:   int64(s.End - s.Start),
		}
		if len(s.Attrs) > 0 {
			rec.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				rec.Attrs[a.Key] = a.Val
			}
		}
		line, err := json.Marshal(&rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// StageTable renders every histogram as one row of a stage-latency table:
// count, p50/p95/p99, max, mean — the per-stage breakdown the paper's
// evaluation argues from.
func (r *Registry) StageTable() *Table {
	t := NewTable("stage", "count", "p50", "p95", "p99", "max", "mean")
	if r == nil {
		return t
	}
	for _, name := range r.HistogramNames() {
		s := r.hists[name].Summarize()
		t.AddRow(name, fmt.Sprintf("%d", s.Count),
			fmtSeconds(s.P50), fmtSeconds(s.P95), fmtSeconds(s.P99),
			fmtSeconds(s.Max), fmtSeconds(s.Mean))
	}
	return t
}

// GaugeTable renders the gauges as a two-column table.
func (r *Registry) GaugeTable() *Table {
	t := NewTable("gauge", "value")
	if r == nil {
		return t
	}
	for _, name := range r.GaugeNames() {
		t.AddRow(name, fmtGauge(r.gauges[name]))
	}
	return t
}

// Report renders the stage-latency and gauge tables (the piece harnesses
// print next to the counters table). Empty sections are omitted.
func (r *Registry) Report() string {
	if r == nil {
		return ""
	}
	out := ""
	if len(r.hists) > 0 {
		out += "Stage latency (simulated time)\n" + r.StageTable().String()
	}
	if len(r.gauges) > 0 {
		if out != "" {
			out += "\n"
		}
		out += "Gauges\n" + r.GaugeTable().String()
	}
	return out
}

// fmtSeconds renders a duration as seconds with one decimal, matching the
// figure tables.
func fmtSeconds(d time.Duration) string { return fmt.Sprintf("%.1fs", d.Seconds()) }

// fmtGauge renders a gauge value, dropping the fraction when integral.
func fmtGauge(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}
