package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if h.P50() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 100 samples, 1..100 seconds: quantiles must land near the rank with
	// bucket-resolution error (buckets double, so within a factor of 2).
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Second)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != time.Second || h.Max() != 100*time.Second {
		t.Fatalf("min/max = %s/%s", h.Min(), h.Max())
	}
	if mean := h.Mean(); mean != 50500*time.Millisecond {
		t.Fatalf("mean = %s", mean)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.50, 50 * time.Second}, {0.95, 95 * time.Second}, {0.99, 99 * time.Second}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Fatalf("q%.0f = %s, want within 2x of %s", c.q*100, got, c.want)
		}
	}
	if h.Quantile(1) != h.Max() || h.Quantile(0) != h.Min() {
		t.Fatal("quantile extremes must clamp to observed min/max")
	}
	// Single-sample histograms report that sample everywhere.
	one := &Histogram{}
	one.Observe(3 * time.Second)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := one.Quantile(q); got != 3*time.Second {
			t.Fatalf("single-sample q%.0f = %s", q*100, got)
		}
	}
}

func TestHistogramDeterministicAcrossOrder(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	samples := []time.Duration{time.Second, 90 * time.Second, 5 * time.Second, 42 * time.Millisecond}
	for _, d := range samples {
		a.Observe(d)
	}
	for i := len(samples) - 1; i >= 0; i-- {
		b.Observe(samples[i])
	}
	if a.Summarize() != b.Summarize() {
		t.Fatalf("summaries differ by insertion order: %v vs %v", a.Summarize(), b.Summarize())
	}
}

func TestRegistryCount(t *testing.T) {
	r := NewRegistry()
	r.Count("parallel.committed", 3)
	r.Count("parallel.committed", 2)
	if got := r.Counters().Get("parallel.committed"); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Observe("x", time.Second)
	r.Count("c", 1)
	r.Span("y", 0, time.Second)
	r.Event("z", time.Second)
	r.SetGauge("g", 1)
	r.MaxGauge("g", 2)
	r.AddGauge("g", 3)
	r.EnableTrace(true)
	if r.Enabled() || r.TraceEnabled() {
		t.Fatal("nil registry must report disabled")
	}
	if r.Counters() != nil || r.Histogram("x") != nil || r.Spans() != nil {
		t.Fatal("nil registry must return nil views")
	}
	if r.Gauge("g") != 0 || len(r.GaugeNames()) != 0 || len(r.HistogramNames()) != 0 {
		t.Fatal("nil registry must read as empty")
	}
	if err := r.WriteTrace(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if r.Report() != "" {
		t.Fatal("nil registry must render nothing")
	}
	if r.StageTable() == nil || r.GaugeTable() == nil {
		t.Fatal("tables must still render (headers only)")
	}
}

func TestRegistrySpansAndTrace(t *testing.T) {
	r := NewRegistry()
	// Spans feed histograms with or without tracing; only tracing retains them.
	r.Span("move1.commit", 0, 3*time.Second)
	if len(r.Spans()) != 0 {
		t.Fatal("spans must not be retained before EnableTrace")
	}
	r.EnableTrace(true)
	r.Span("move1.commit", 10*time.Second, 14*time.Second, A("chain", "1"))
	r.Event("move1.submit", 10*time.Second, A("attempt", "1"))
	if h := r.Histogram("move1.commit"); h == nil || h.Count() != 2 {
		t.Fatalf("histogram must see both spans, got %+v", r.Histogram("move1.commit"))
	}
	if h := r.Histogram("move1.submit"); h != nil {
		t.Fatal("events must not create histograms")
	}
	spans := r.Spans()
	if len(spans) != 2 || spans[0].Name != "move1.commit" || spans[1].Name != "move1.submit" {
		t.Fatalf("retained spans = %+v", spans)
	}
	if spans[0].Dur() != 4*time.Second || spans[1].Dur() != 0 {
		t.Fatal("span durations wrong")
	}

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace lines = %d: %q", len(lines), buf.String())
	}
	want := `{"name":"move1.commit","start_ns":10000000000,"end_ns":14000000000,"dur_ns":4000000000,"attrs":{"chain":"1"}}`
	if lines[0] != want {
		t.Fatalf("trace line = %s, want %s", lines[0], want)
	}

	// Two registries fed identically dump identical traces (determinism).
	r2 := NewRegistry()
	r2.EnableTrace(true)
	r2.Span("move1.commit", 10*time.Second, 14*time.Second, A("chain", "1"))
	r2.Event("move1.submit", 10*time.Second, A("attempt", "1"))
	var buf2 bytes.Buffer
	if err := r2.WriteTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if lines2 := strings.Split(strings.TrimRight(buf2.String(), "\n"), "\n"); lines2[0] != lines[0] {
		t.Fatal("identical spans must dump identical JSONL")
	}
}

func TestRegistryGaugesAndReport(t *testing.T) {
	r := NewRegistryWith(NewCounters())
	r.Counters().Inc("relay.retries")
	r.SetGauge("txpool.depth.1", 7)
	r.MaxGauge("txpool.peak.1", 3)
	r.MaxGauge("txpool.peak.1", 9)
	r.MaxGauge("txpool.peak.1", 5) // must not lower the high-water mark
	r.AddGauge("wan.inflight", 2)
	r.AddGauge("wan.inflight", -1)
	if r.Gauge("txpool.peak.1") != 9 || r.Gauge("wan.inflight") != 1 {
		t.Fatalf("gauges wrong: peak=%v inflight=%v", r.Gauge("txpool.peak.1"), r.Gauge("wan.inflight"))
	}
	r.Span("p.wait", 0, 16*time.Second)
	rep := r.Report()
	for _, want := range []string{"Stage latency", "p.wait", "16.0s", "Gauges", "txpool.depth.1", "7"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	if r.Counters().Get("relay.retries") != 1 {
		t.Fatal("folded counters must be shared")
	}
}
