package metrics

import (
	"fmt"
	"time"
)

// histBuckets is the fixed bucket layout every zero-value Histogram shares:
// upper bounds doubling from 1 ms up to ~18 hours, plus an implicit
// overflow bucket. Latencies in the simulator are simulated-clock
// durations — sub-millisecond stages do not occur (the fastest modeled
// link is 1 ms) and no experiment runs longer than a simulated day.
//
// Wall-clock front-door latencies (RPC round trips, loadgen submit→commit)
// live on a very different scale: most samples are well under a
// millisecond, and a run lasts minutes. NewWallHistogram keeps the same
// 26-bucket doubling shape but re-bases it at 1 µs (1µs << 25 ≈ 33.6 s
// before the overflow bucket), so microsecond-scale quantiles resolve
// instead of collapsing into the bottom bucket.
const (
	histBase       = time.Millisecond
	wallHistBase   = time.Microsecond
	histBucketBits = 26 // base << 25 is the last finite bound; index 26 is the overflow bucket
)

// bucketIndex returns the bucket whose upper bound is the smallest
// base<<i ≥ d (the overflow bucket for anything larger).
func bucketIndex(base, d time.Duration) int {
	for i := 0; i < histBucketBits; i++ {
		if d <= base<<i {
			return i
		}
	}
	return histBucketBits
}

// bucketBounds returns the (lower, upper] duration bounds of a bucket.
func bucketBounds(base time.Duration, i int) (time.Duration, time.Duration) {
	if i == 0 {
		return 0, base
	}
	if i >= histBucketBits {
		return base << (histBucketBits - 1), 1 << 62
	}
	return base << (i - 1), base << i
}

// Histogram is a fixed-bucket latency distribution: counts in
// exponentially sized buckets plus the exact sum, minimum, and maximum.
// Quantiles are estimated by linear interpolation inside the bucket the
// rank falls into, clamped by the exact extremes; everything is integer
// arithmetic on deterministic inputs, so two identical runs render
// identical summaries. The zero value is ready to use and carries the
// simulated-time layout (1 ms base); NewWallHistogram re-bases the same
// layout at 1 µs for wall-clock samples.
type Histogram struct {
	base   time.Duration // smallest bucket upper bound; 0 means histBase
	counts [histBucketBits + 1]uint64
	count  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// NewWallHistogram returns a histogram whose bucket layout starts at 1 µs,
// resolving the sub-millisecond latencies real-socket front doors produce.
func NewWallHistogram() *Histogram { return &Histogram{base: wallHistBase} }

// bucketBase returns the effective smallest bucket bound.
func (h *Histogram) bucketBase() time.Duration {
	if h.base == 0 {
		return histBase
	}
	return h.base
}

// Observe records one sample. Negative samples are clamped to zero (a
// defensive guard: stage boundaries are monotone simulated-clock readings).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(h.bucketBase(), d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest sample (zero when empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest sample (zero when empty).
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile estimates the q-th quantile (0 < q ≤ 1) from the bucket counts:
// it walks to the bucket containing the rank and interpolates linearly
// within it, clamping to the exact min/max so estimates never exceed the
// observed range.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var cum uint64
	for i := range h.counts {
		n := h.counts[i]
		if n == 0 {
			continue
		}
		if rank < cum+n {
			lo, hi := bucketBounds(h.bucketBase(), i)
			if lo < h.min {
				lo = h.min
			}
			if hi > h.max {
				hi = h.max
			}
			if hi <= lo {
				return hi
			}
			// Position of the rank inside this bucket, interpolated.
			frac := float64(rank-cum+1) / float64(n)
			return lo + time.Duration(float64(hi-lo)*frac)
		}
		cum += n
	}
	return h.max
}

// P50 returns the estimated median.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P95 returns the estimated 95th percentile.
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 returns the estimated 99th percentile.
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Summary is a flattened histogram snapshot: the quantile set the stage
// tables print and the performance snapshots serialize.
type Summary struct {
	Count uint64
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
	Mean  time.Duration
}

// Summarize extracts the quantile summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.count,
		P50:   h.P50(),
		P95:   h.P95(),
		P99:   h.P99(),
		Max:   h.max,
		Mean:  h.Mean(),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d p50=%s p95=%s p99=%s max=%s",
		s.Count, s.P50, s.P95, s.P99, s.Max)
}
