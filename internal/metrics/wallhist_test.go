package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// The zero-value Histogram is tuned for simulated time: its smallest
// bucket spans (0, 1ms], so every sub-millisecond wall-clock sample lands
// in bucket 0 and the interpolated quantiles are meaningless. The
// wall-clock layout re-bases the buckets at 1 µs, which keeps exponential
// quantile accuracy (within one power-of-two bucket) at µs scale.
func TestWallHistogramQuantileAccuracyAtMicrosecondScale(t *testing.T) {
	// Uniform samples 1..1000 µs: true p50 ≈ 500 µs, p95 ≈ 950 µs.
	wall := NewWallHistogram()
	sim := &Histogram{}
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * time.Microsecond
		wall.Observe(d)
		sim.Observe(d)
	}

	// Exponential buckets bound relative error by 2x: the estimate lives
	// in the same power-of-two bucket as the true quantile.
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	}
	for _, c := range checks {
		got := wall.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Errorf("wall Quantile(%v) = %v, want within 2x of %v", c.q, got, c.want)
		}
	}

	// Regression guard for the original defect: the simulated-time layout
	// collapses all 1000 sub-ms samples into bucket 0, so its p50 and p95
	// are indistinguishable (both interpolate across the same bucket and
	// land near max), while the wall layout separates them cleanly.
	if sim.counts[0] != 1000 {
		t.Fatalf("sim layout: bucket0 = %d, want all 1000 sub-ms samples", sim.counts[0])
	}
	if wallP50, wallP95 := wall.P50(), wall.P95(); wallP95 < wallP50*3/2 {
		t.Errorf("wall layout: p95 %v not separated from p50 %v", wallP95, wallP50)
	}
}

// ObserveWall creates µs-based histograms through the registry; Observe
// keeps the legacy simulated-time layout for the same registry.
func TestRegistryObserveWallLayout(t *testing.T) {
	r := NewRegistry()
	for i := 1; i <= 100; i++ {
		r.ObserveWall("wall", time.Duration(i)*10*time.Microsecond)
		r.Observe("sim", time.Duration(i)*10*time.Microsecond)
	}
	wall, sim := r.Histogram("wall"), r.Histogram("sim")
	if wall == nil || sim == nil {
		t.Fatal("histograms not recorded")
	}
	if wall.bucketBase() != wallHistBase {
		t.Errorf("wall base = %v, want %v", wall.bucketBase(), wallHistBase)
	}
	if sim.bucketBase() != histBase {
		t.Errorf("sim base = %v, want %v", sim.bucketBase(), histBase)
	}
	// True p50 of 10µs..1000µs uniform ≈ 500µs; the sim layout can only
	// answer ≥ bucket-0 interpolation, the wall layout resolves it.
	if got := wall.P50(); got < 250*time.Microsecond || got > 1000*time.Microsecond {
		t.Errorf("wall p50 = %v, want near 500µs", got)
	}
}

// Recording from many goroutines must be race-free (exercised with -race
// in `make race`): the RPC front door observes wall latencies from
// arbitrary handler goroutines.
func TestRegistryConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const goroutines, samples = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < samples; i++ {
				r.ObserveWall("rtt", time.Duration(rng.Intn(5000))*time.Microsecond)
				r.Count("reqs", 1)
				r.AddGauge("inflight", 1)
				r.AddGauge("inflight", -1)
			}
		}(int64(g))
	}
	wg.Wait()
	if got := r.Histogram("rtt").Count(); got != goroutines*samples {
		t.Errorf("rtt count = %d, want %d", got, goroutines*samples)
	}
	if got := r.Counters().Get("reqs"); got != goroutines*samples {
		t.Errorf("reqs = %d, want %d", got, goroutines*samples)
	}
	if got := r.Gauge("inflight"); got != 0 {
		t.Errorf("inflight = %v, want 0", got)
	}
}
