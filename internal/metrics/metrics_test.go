package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestTimelineSeriesAndRate(t *testing.T) {
	tl := NewTimeline(time.Second)
	tl.Record(0, 10)
	tl.Record(500*time.Millisecond, 10) // same bucket
	tl.Record(2*time.Second, 30)        // bucket 2; bucket 1 empty
	pts := tl.Series()
	if len(pts) != 3 {
		t.Fatalf("series = %d points", len(pts))
	}
	if pts[0].TPS != 20 || pts[1].TPS != 0 || pts[2].TPS != 30 {
		t.Fatalf("series = %+v", pts)
	}
	if tl.Total() != 50 {
		t.Fatalf("total = %d", tl.Total())
	}
	if got := tl.Rate(); got < 16.6 || got > 16.7 {
		t.Fatalf("rate = %v, want 50/3", got)
	}
}

func TestTimelineEmpty(t *testing.T) {
	tl := NewTimeline(time.Second)
	if tl.Series() != nil || tl.Rate() != 0 || tl.Total() != 0 {
		t.Fatal("empty timeline must be zero-valued")
	}
}

func TestLatenciesStats(t *testing.T) {
	l := NewLatencies()
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i) * time.Second)
	}
	if l.Len() != 100 {
		t.Fatalf("len = %d", l.Len())
	}
	if got := l.Mean(); got != 50500*time.Millisecond {
		t.Fatalf("mean = %v", got)
	}
	if got := l.Percentile(50); got != 50*time.Second {
		t.Fatalf("p50 = %v", got)
	}
	if got := l.Percentile(99); got != 99*time.Second {
		t.Fatalf("p99 = %v", got)
	}
}

func TestLatenciesCDF(t *testing.T) {
	l := NewLatencies()
	// Record in reverse to exercise sorting.
	for i := 10; i >= 1; i-- {
		l.Record(time.Duration(i) * time.Second)
	}
	cdf := l.CDF(5)
	if len(cdf) != 5 {
		t.Fatalf("cdf = %d points", len(cdf))
	}
	if cdf[4].Fraction != 1.0 || cdf[4].Latency != 10*time.Second {
		t.Fatalf("last point = %+v", cdf[4])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Latency < cdf[i-1].Latency || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatal("CDF must be monotone")
		}
	}
}

func TestFractionAbove(t *testing.T) {
	l := NewLatencies()
	for i := 1; i <= 10; i++ {
		l.Record(time.Duration(i) * time.Second)
	}
	// The paper's Fig. 7 observation: ~10 % of transactions above 30 s when
	// 10 % are cross-shard; here 30 % are above 7 s.
	if got := l.FractionAbove(7 * time.Second); got != 0.3 {
		t.Fatalf("fraction above 7s = %v", got)
	}
	if got := l.FractionAbove(time.Hour); got != 0 {
		t.Fatalf("fraction above 1h = %v", got)
	}
}

func TestLatenciesEmpty(t *testing.T) {
	l := NewLatencies()
	if l.Mean() != 0 || l.Percentile(50) != 0 || l.CDF(3) != nil || l.FractionAbove(0) != 0 {
		t.Fatal("empty recorder must be zero-valued")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("shards", "tx/s")
	tbl.AddRow(1, 37.5)
	tbl.AddRow(8, 152.25)
	out := tbl.String()
	if !strings.Contains(out, "shards") || !strings.Contains(out, "152.25") {
		t.Fatalf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
}
