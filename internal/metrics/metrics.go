// Package metrics collects the measurements the paper's evaluation reports:
// throughput timelines (Fig. 5 right), aggregate transactions per second
// (Figs. 5 left and 6), and latency distributions with CDF extraction
// (Fig. 7). All timestamps are simulated-clock readings.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Timeline counts events in fixed-width simulated-time buckets.
type Timeline struct {
	bucket time.Duration
	counts map[int64]int
}

// NewTimeline returns a timeline with the given bucket width.
func NewTimeline(bucket time.Duration) *Timeline {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &Timeline{bucket: bucket, counts: make(map[int64]int)}
}

// Record adds n events at the given simulated time.
func (t *Timeline) Record(at time.Duration, n int) {
	t.counts[int64(at/t.bucket)] += n
}

// Point is one timeline sample: events per second over one bucket.
type Point struct {
	At  time.Duration
	TPS float64
}

// Series returns the bucketed rate over time, including empty buckets
// between the first and last events.
func (t *Timeline) Series() []Point {
	if len(t.counts) == 0 {
		return nil
	}
	var lo, hi int64
	first := true
	for b := range t.counts {
		if first {
			lo, hi = b, b
			first = false
			continue
		}
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	out := make([]Point, 0, hi-lo+1)
	perSec := t.bucket.Seconds()
	for b := lo; b <= hi; b++ {
		out = append(out, Point{
			At:  time.Duration(b) * t.bucket,
			TPS: float64(t.counts[b]) / perSec,
		})
	}
	return out
}

// Total returns the total event count.
func (t *Timeline) Total() int {
	sum := 0
	for _, n := range t.counts {
		sum += n
	}
	return sum
}

// Rate returns the average events per second between the first and last
// bucket (the aggregate throughput of Figs. 5 and 6).
func (t *Timeline) Rate() float64 {
	pts := t.Series()
	if len(pts) == 0 {
		return 0
	}
	span := time.Duration(len(pts)) * t.bucket
	return float64(t.Total()) / span.Seconds()
}

// Latencies records a latency sample set.
type Latencies struct {
	samples []time.Duration
	sorted  bool
}

// NewLatencies returns an empty recorder.
func NewLatencies() *Latencies { return &Latencies{} }

// Record adds one sample.
func (l *Latencies) Record(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Len returns the sample count.
func (l *Latencies) Len() int { return len(l.samples) }

func (l *Latencies) sort() {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
}

// Mean returns the mean latency.
func (l *Latencies) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100).
func (l *Latencies) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	idx := int(p/100*float64(len(l.samples))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// CDFPoint is one point of a cumulative distribution function.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// CDF returns up to points evenly spaced CDF samples (Fig. 7's curves).
func (l *Latencies) CDF(points int) []CDFPoint {
	if len(l.samples) == 0 || points <= 0 {
		return nil
	}
	l.sort()
	if points > len(l.samples) {
		points = len(l.samples)
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		idx := i*len(l.samples)/points - 1
		out = append(out, CDFPoint{
			Latency:  l.samples[idx],
			Fraction: float64(idx+1) / float64(len(l.samples)),
		})
	}
	return out
}

// FractionAbove returns the share of samples exceeding d.
func (l *Latencies) FractionAbove(d time.Duration) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	idx := sort.Search(len(l.samples), func(i int) bool { return l.samples[i] > d })
	return float64(len(l.samples)-idx) / float64(len(l.samples))
}

// Table renders an aligned text table (the harness' human-readable output).
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
