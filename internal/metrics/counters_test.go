package metrics

import (
	"strings"
	"testing"
)

func TestCountersIncAddGet(t *testing.T) {
	c := NewCounters()
	if c.Get("missing") != 0 {
		t.Fatal("unset counter must read zero")
	}
	c.Inc("a")
	c.Inc("a")
	c.Add("b", 5)
	if c.Get("a") != 2 || c.Get("b") != 5 {
		t.Fatalf("a=%d b=%d", c.Get("a"), c.Get("b"))
	}
}

func TestCountersNamesSorted(t *testing.T) {
	c := NewCounters()
	c.Inc("z.late")
	c.Inc("a.early")
	c.Inc("m.mid")
	names := c.Names()
	if len(names) != 3 || names[0] != "a.early" || names[1] != "m.mid" || names[2] != "z.late" {
		t.Fatalf("names = %v", names)
	}
}

func TestCountersSnapshotIsCopy(t *testing.T) {
	c := NewCounters()
	c.Inc("x")
	snap := c.Snapshot()
	c.Inc("x")
	if snap["x"] != 1 || c.Get("x") != 2 {
		t.Fatal("snapshot must not track later increments")
	}
}

func TestCountersSumByPrefix(t *testing.T) {
	c := NewCounters()
	c.Add("relay.move1_retries", 3)
	c.Add("relay.move2_retries", 4)
	c.Add("wan.dropped", 100)
	if got := c.Sum("relay."); got != 7 {
		t.Fatalf("Sum(relay.) = %d", got)
	}
	if got := c.Sum("nope."); got != 0 {
		t.Fatalf("Sum(nope.) = %d", got)
	}
}

func TestCountersStringTable(t *testing.T) {
	c := NewCounters()
	c.Add("wan.dropped", 42)
	s := c.String()
	if !strings.Contains(s, "wan.dropped") || !strings.Contains(s, "42") {
		t.Fatalf("table output missing row: %q", s)
	}
}
