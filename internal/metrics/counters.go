package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a set of named monotonic event counters. The chaos tooling
// uses one shared set per universe to surface fault-injection and recovery
// events (message drops, duplicates, relayer retries, recoveries, timed-out
// moves) next to the throughput/latency metrics.
//
// A mutex guards the map: laned universes increment shared counters from
// concurrent per-chain wave workers. Addition commutes, so final values are
// deterministic even though increment order is not; reads that must be
// consistent (Snapshot, String) happen after the run, like everything else
// that inspects results.
type Counters struct {
	mu   sync.Mutex
	vals map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{vals: make(map[string]uint64)}
}

// Inc adds one to the named counter, creating it at zero first if needed.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Add adds n to the named counter.
func (c *Counters) Add(name string, n uint64) {
	c.mu.Lock()
	c.vals[name] += n
	c.mu.Unlock()
}

// Get returns the named counter's value (zero if never incremented).
func (c *Counters) Get(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[name]
}

// Names returns every counter name in sorted order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.vals))
	for name := range c.vals {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of the current counter values.
func (c *Counters) Snapshot() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.vals))
	for name, v := range c.vals {
		out[name] = v
	}
	return out
}

// Sum returns the total of every counter whose name starts with prefix
// (e.g. Sum("relay.") for all relayer events).
func (c *Counters) Sum(prefix string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum uint64
	for name, v := range c.vals {
		if strings.HasPrefix(name, prefix) {
			sum += v
		}
	}
	return sum
}

// String renders the counters as an aligned two-column table.
func (c *Counters) String() string {
	t := NewTable("counter", "value")
	for _, name := range c.Names() {
		t.AddRow(name, fmt.Sprintf("%d", c.Get(name)))
	}
	return t.String()
}
