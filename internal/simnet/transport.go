// The transport seam: consensus nodes speak to their peers through the
// minimal Transport interface rather than the concrete *Network. The
// deterministic discrete-event Network is the default implementation —
// nothing about its behaviour changes — and the TCP transport (tcp.go)
// carries the same messages over real loopback sockets for wall-clock
// experiments. The seam is exactly the surface consensus uses: register a
// handler, send a payload, administratively partition a node.
package simnet

// Transport delivers opaque payloads between registered nodes. Payloads
// cross a Transport by reference in the in-process implementations and as
// codec-encoded frames over sockets; senders must treat a payload as
// immutable once handed over.
type Transport interface {
	// Register adds a node and its delivery handler. Registering an
	// existing id replaces its handler (restart after a crash).
	Register(id NodeID, region Region, h Handler) error
	// Send delivers payload from one registered node to another,
	// asynchronously. Undeliverable messages (unknown peer, down node,
	// injected fault, broken socket) are dropped silently — consensus is
	// built to survive loss.
	Send(from, to NodeID, payload any)
	// SetNodeDown administratively isolates a node (crash simulation):
	// while down it neither receives nor sends.
	SetNodeDown(id NodeID, down bool)
}

// The deterministic network is the default Transport.
var _ Transport = (*Network)(nil)

// WireCodec encodes consensus payloads for byte-level transports. The
// discrete-event Network passes payloads by reference and never needs
// one; the TCP transport refuses to send a payload its codec does not
// know. Implementations live next to the message definitions (the
// tendermint package encodes its proposal and vote types).
type WireCodec interface {
	// EncodePayload serializes a payload, or errors on unknown types.
	EncodePayload(payload any) ([]byte, error)
	// DecodePayload parses what EncodePayload produced. Inputs arrive
	// from the network and must be treated as hostile: allocation stays
	// bounded by input length and malformed bytes error out.
	DecodePayload(b []byte) (any, error)
}
