package simnet

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"scmove/internal/metrics"
	"scmove/internal/simclock"
)

func TestDefaultTamperAlwaysChangesMessage(t *testing.T) {
	msg := []byte("length-prefixed wire message with some entropy 0123456789")
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		out := DefaultTamper(rng, msg)
		if bytes.Equal(out, msg) {
			t.Fatalf("seed %d: tamper returned the original message", seed)
		}
		if &out[:1][0] == &msg[:1][0] {
			t.Fatalf("seed %d: tamper aliased the input slice", seed)
		}
	}
	// The empty message still corrupts to something (there are no bytes to
	// flip or truncate, so it must extend).
	if out := DefaultTamper(rand.New(rand.NewSource(1)), nil); len(out) == 0 {
		t.Fatal("tampering an empty message produced an empty message")
	}
}

func TestDefaultTamperPreservesInput(t *testing.T) {
	msg := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]byte(nil), msg...)
	for seed := int64(0); seed < 50; seed++ {
		DefaultTamper(rand.New(rand.NewSource(seed)), msg)
		if !bytes.Equal(msg, orig) {
			t.Fatalf("seed %d: tamper mutated the input", seed)
		}
	}
}

// corruptionRun drives n byte-deliveries through a corrupting link and
// returns a full transcript: every delivered copy's bytes and corruption
// flag, the final stats, and the mirrored counter fingerprint.
func corruptionRun(t *testing.T, seed int64, n int) (string, LinkStats) {
	t.Helper()
	sched := simclock.New()
	link := NewLink(sched, 10*time.Millisecond,
		LinkFaults{DropRate: 0.1, DupRate: 0.1, CorruptRate: 0.3, JitterFrac: 0.1}, seed)
	counters := metrics.NewCounters()
	link.Observe(counters, "test")
	var transcript bytes.Buffer
	encodes := 0
	for i := 0; i < n; i++ {
		i := i
		msg := []byte(fmt.Sprintf("message-%03d", i))
		link.DeliverBytes(
			func() []byte { encodes++; return msg },
			func(b []byte, corrupted bool) {
				if !corrupted {
					// Clean copies carry no bytes; the receiver uses its
					// captured original.
					fmt.Fprintf(&transcript, "%d clean %q\n", i, msg)
					return
				}
				fmt.Fprintf(&transcript, "%d corrupt %q\n", i, b)
				link.NoteRejected()
			})
	}
	sched.Run()
	stats := link.Stats()
	if uint64(encodes) != stats.Corrupted {
		t.Fatalf("encode ran %d times for %d corruptions — clean copies must not serialize",
			encodes, stats.Corrupted)
	}
	fmt.Fprintf(&transcript, "stats=%+v\n", stats)
	for _, name := range []string{"test.delivered", "test.dropped", "test.duplicated",
		"test.corrupted", "test.rejected", "byzantine.corrupted", "byzantine.rejected"} {
		fmt.Fprintf(&transcript, "%s=%d\n", name, counters.Get(name))
	}
	return transcript.String(), stats
}

// TestLinkCorruptionDeterministicPerSeed is the determinism contract of the
// corruption fault: the same seed reproduces the exact delivery transcript —
// which copies are corrupted, the tampered bytes themselves, the stats, and
// the counter table — while a different seed produces a different stream.
func TestLinkCorruptionDeterministicPerSeed(t *testing.T) {
	a1, stats := corruptionRun(t, 42, 400)
	a2, _ := corruptionRun(t, 42, 400)
	if a1 != a2 {
		t.Fatal("same seed must reproduce the identical corruption transcript")
	}
	if b, _ := corruptionRun(t, 43, 400); b == a1 {
		t.Fatal("different seeds must produce different corruption streams")
	}
	if stats.Corrupted == 0 {
		t.Fatal("no copy was ever corrupted at CorruptRate=0.3")
	}
	if stats.Rejected != stats.Corrupted {
		t.Fatalf("every corrupted copy was rejected by the receiver: rejected=%d corrupted=%d",
			stats.Rejected, stats.Corrupted)
	}
	if stats.Delivered <= stats.Corrupted {
		t.Fatalf("clean copies must still flow: delivered=%d corrupted=%d",
			stats.Delivered, stats.Corrupted)
	}
}

// TestLinkCorruptionAcrossGOMAXPROCS pins byte-identical Link.Stats and
// counter fingerprints across GOMAXPROCS 1, 2, and NumCPU: the fault stream
// is a pure function of the seed, never of host scheduling.
func TestLinkCorruptionAcrossGOMAXPROCS(t *testing.T) {
	baseline := ""
	for _, p := range []int{1, 2, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(p)
		transcript, _ := corruptionRun(t, 7, 300)
		runtime.GOMAXPROCS(prev)
		if baseline == "" {
			baseline = transcript
		} else if transcript != baseline {
			t.Fatalf("GOMAXPROCS=%d: corruption transcript diverged", p)
		}
	}
}

// TestLinkZeroCorruptRateNeverCorrupts pins that CorruptRate 0 takes the
// exact non-corrupting path: no copy is flagged, and encode never runs.
func TestLinkZeroCorruptRateNeverCorrupts(t *testing.T) {
	sched := simclock.New()
	link := NewLink(sched, time.Millisecond, LinkFaults{DropRate: 0.2, DupRate: 0.2}, 9)
	if link.Corrupts() {
		t.Fatal("link without CorruptRate reports Corrupts()")
	}
	encodes := 0
	for i := 0; i < 100; i++ {
		link.DeliverBytes(
			func() []byte { encodes++; return []byte("x") },
			func(b []byte, corrupted bool) {
				if corrupted || b != nil {
					t.Fatal("clean link delivered a corrupted copy")
				}
			})
	}
	sched.Run()
	if encodes != 0 {
		t.Fatalf("encode ran %d times on a non-corrupting link", encodes)
	}
	if s := link.Stats(); s.Corrupted != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestNetworkCorruptionTampersTypedPayloads covers the WAN variant: typed
// payloads pass through the configured PayloadTamper at CorruptRate, the
// tampered value reaches the handler, and the fault is counted.
func TestNetworkCorruptionTampersTypedPayloads(t *testing.T) {
	sched := simclock.New()
	net := New(sched, Config{
		Seed:        11,
		CorruptRate: 0.5,
		Tamper: func(rng *rand.Rand, payload any) (any, bool) {
			return payload.(int) + 1000 + rng.Intn(10), true
		},
	})
	var got []int
	for _, id := range []NodeID{1, 2} {
		if err := net.Register(id, 0, func(_ NodeID, payload any) {
			got = append(got, payload.(int))
		}); err != nil {
			t.Fatal(err)
		}
	}
	counters := metrics.NewCounters()
	net.Observe(counters)
	for i := 0; i < 100; i++ {
		net.Send(1, 2, i)
	}
	sched.Run()
	if len(got) != 100 {
		t.Fatalf("delivered %d, want 100", len(got))
	}
	tampered := 0
	for _, v := range got {
		if v >= 1000 {
			tampered++
		}
	}
	stats := net.FaultStats()
	if uint64(tampered) != stats.Corrupted {
		t.Fatalf("handler saw %d tampered payloads, stats say %d", tampered, stats.Corrupted)
	}
	if stats.Corrupted == 0 || stats.Corrupted == 100 {
		t.Fatalf("corrupted = %d, want a strict subset at rate 0.5", stats.Corrupted)
	}
	if counters.Get("byzantine.corrupted") != stats.Corrupted {
		t.Fatalf("counter mirror = %d, stats = %d",
			counters.Get("byzantine.corrupted"), stats.Corrupted)
	}
}

// TestNetworkTamperDeclineLeavesPayload pins the PayloadTamper contract: a
// tamper that declines (ok=false) leaves the payload untouched and
// uncounted.
func TestNetworkTamperDeclineLeavesPayload(t *testing.T) {
	sched := simclock.New()
	net := New(sched, Config{
		Seed:        13,
		CorruptRate: 1.0,
		Tamper:      func(rng *rand.Rand, payload any) (any, bool) { return payload, false },
	})
	var got []any
	for _, id := range []NodeID{1, 2} {
		if err := net.Register(id, 0, func(_ NodeID, payload any) {
			got = append(got, payload)
		}); err != nil {
			t.Fatal(err)
		}
	}
	net.Send(1, 2, "untouchable")
	sched.Run()
	if len(got) != 1 || got[0] != "untouchable" {
		t.Fatalf("got = %v", got)
	}
	if s := net.FaultStats(); s.Corrupted != 0 {
		t.Fatalf("declined tampers must not count: %+v", s)
	}
}
