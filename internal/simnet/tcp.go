package simnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"scmove/internal/codec"
)

// TCP is a Transport carrying codec-encoded consensus messages over real
// loopback TCP sockets. Each registered node owns a listener on
// 127.0.0.1 (ephemeral port); a sender dials one connection per (from,
// to) pair on first use and keeps it, so per-link delivery stays FIFO
// like the in-process network. Frames are length-prefixed and bounded —
// the decoder treats every incoming byte as hostile.
//
// Unlike the discrete-event Network this transport is driven by the
// operating system: delivery order across links, latency, and
// interleaving are whatever the kernel produces. The deterministic path
// stays the default; TCP exists to measure the system against real
// hardware (ROADMAP item 4).
type TCP struct {
	codec    WireCodec
	dispatch func(func())
	maxFrame int

	mu     sync.Mutex
	nodes  map[NodeID]*tcpNode
	down   map[NodeID]bool
	conns  map[tcpLink]*tcpConn
	closed bool

	// Drop accounting (atomic: send and reader goroutines race on them).
	sent      atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64 // undeliverable sends: down/unknown peer, encode or socket failure
	rejected  atomic.Uint64 // hostile or malformed inbound frames
}

type tcpLink struct{ from, to NodeID }

type tcpNode struct {
	handler Handler
	ln      net.Listener
	addr    string
}

// tcpConn serializes writers on one directed link.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// DefaultMaxFrame bounds one frame: a full consensus proposal carrying a
// 2000-tx block is ~1 MB, so 64 MiB is generous without letting a hostile
// length prefix allocate unbounded memory.
const DefaultMaxFrame = 64 << 20

// NewTCP returns a TCP transport. codec encodes/decodes payloads;
// dispatch, if non-nil, funnels every delivery callback (it must run the
// function it is given, typically on a driver goroutine that serializes
// consensus work — simclock.Realtime.Post). A nil dispatch runs handlers
// inline on the per-connection reader goroutine. maxFrame ≤ 0 selects
// DefaultMaxFrame.
func NewTCP(wc WireCodec, dispatch func(func()), maxFrame int) *TCP {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &TCP{
		codec:    wc,
		dispatch: dispatch,
		maxFrame: maxFrame,
		nodes:    make(map[NodeID]*tcpNode),
		down:     make(map[NodeID]bool),
		conns:    make(map[tcpLink]*tcpConn),
	}
}

// Register starts a loopback listener for the node and begins accepting
// peer connections. The region is ignored — real sockets have real
// latencies. Re-registering replaces the handler but keeps the listener.
func (t *TCP) Register(id NodeID, _ Region, h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return errors.New("simnet: tcp transport closed")
	}
	if n, ok := t.nodes[id]; ok {
		n.handler = h
		return nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("simnet: tcp listen for node %d: %w", id, err)
	}
	node := &tcpNode{handler: h, ln: ln, addr: ln.Addr().String()}
	t.nodes[id] = node
	go t.acceptLoop(node)
	return nil
}

// Addr returns the node's listen address (tests dial it directly).
func (t *TCP) Addr(id NodeID) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[id]
	if !ok {
		return "", false
	}
	return n.addr, true
}

// SetNodeDown isolates or revives a node. Down nodes drop inbound frames
// at delivery and refuse to send; existing connections stay open (a
// partition, not a socket reset), matching the Network's semantics of an
// administrative crash.
func (t *TCP) SetNodeDown(id NodeID, down bool) {
	t.mu.Lock()
	t.down[id] = down
	t.mu.Unlock()
}

// Send encodes payload and writes one frame on the (from, to)
// connection, dialing it on first use. Failures of any kind drop the
// message — consensus tolerates loss — and are counted.
func (t *TCP) Send(from, to NodeID, payload any) {
	t.sent.Add(1)
	t.mu.Lock()
	if t.closed || t.down[from] || t.down[to] {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	dst, ok := t.nodes[to]
	if !ok {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	link := tcpLink{from, to}
	conn := t.conns[link]
	if conn == nil {
		conn = &tcpConn{}
		t.conns[link] = conn
	}
	t.mu.Unlock()

	body, err := t.codec.EncodePayload(payload)
	if err != nil {
		t.dropped.Add(1)
		return
	}
	frame := EncodeFrame(from, to, body)
	if len(frame) > t.maxFrame+frameHeaderSize {
		t.dropped.Add(1)
		return
	}

	// One writer at a time per link: the connection mutex both serializes
	// frames (FIFO per link, like the in-process network) and makes the
	// lazy dial race-free.
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if conn.c == nil {
		c, err := net.Dial("tcp", dst.addr)
		if err != nil {
			t.dropped.Add(1)
			return
		}
		conn.c = c
	}
	if _, err := conn.c.Write(frame); err != nil {
		conn.c.Close()
		conn.c = nil
		t.dropped.Add(1)
	}
}

// Stats returns cumulative (sent, delivered, dropped, rejected) counts.
func (t *TCP) Stats() (sent, delivered, dropped, rejected uint64) {
	return t.sent.Load(), t.delivered.Load(), t.dropped.Load(), t.rejected.Load()
}

// Close shuts every listener and connection down. In-flight reader
// goroutines drain on their own as their sockets error out.
func (t *TCP) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	var errs []error
	for id, n := range t.nodes {
		if err := n.ln.Close(); err != nil {
			errs = append(errs, fmt.Errorf("simnet: close listener %d: %w", id, err))
		}
	}
	for link, conn := range t.conns {
		conn.mu.Lock()
		if conn.c != nil {
			if err := conn.c.Close(); err != nil {
				errs = append(errs, fmt.Errorf("simnet: close link %d->%d: %w", link.from, link.to, err))
			}
			conn.c = nil
		}
		conn.mu.Unlock()
	}
	return errors.Join(errs...)
}

func (t *TCP) acceptLoop(node *tcpNode) {
	for {
		c, err := node.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go t.readLoop(node, c)
	}
}

// readLoop decodes frames off one inbound connection until it errors.
// Any malformed frame kills the connection: a peer that cannot frame
// correctly is hostile or broken, and resynchronizing inside a corrupted
// byte stream is not possible anyway.
func (t *TCP) readLoop(node *tcpNode, c net.Conn) {
	defer c.Close()
	for {
		body, err := ReadFrame(c, t.maxFrame)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				t.rejected.Add(1)
			}
			return
		}
		from, to, payloadBytes, err := DecodeFrame(body, t.maxFrame)
		if err != nil {
			t.rejected.Add(1)
			return
		}
		payload, err := t.codec.DecodePayload(payloadBytes)
		if err != nil {
			t.rejected.Add(1)
			return
		}
		t.deliver(node, from, to, payload)
	}
}

func (t *TCP) deliver(node *tcpNode, from, to NodeID, payload any) {
	t.mu.Lock()
	dst, ok := t.nodes[to]
	if !ok || dst != node || t.down[to] {
		// Misrouted (frame addressed to a node this listener does not
		// serve) or administratively down.
		t.mu.Unlock()
		t.rejected.Add(1)
		return
	}
	h := dst.handler
	t.mu.Unlock()
	t.delivered.Add(1)
	if t.dispatch != nil {
		t.dispatch(func() { h(from, payload) })
		return
	}
	h(from, payload)
}

// Frame format: a 4-byte big-endian length prefix over a codec body of
//
//	uvarint from | uvarint to | length-prefixed payload bytes
//
// The prefix is checked against maxFrame before any allocation, and the
// body decoder re-bounds the payload with ReadBytesMax, so a hostile
// length claim can never cost more memory than the attacker actually
// transmitted.
const frameHeaderSize = 4

// ErrFrameTooLarge reports a length prefix exceeding the frame bound.
var ErrFrameTooLarge = errors.New("simnet: frame exceeds size bound")

// EncodeFrame builds one wire frame.
func EncodeFrame(from, to NodeID, payload []byte) []byte {
	w := codec.NewWriter(len(payload) + 24)
	w.WriteUvarint(uint64(from))
	w.WriteUvarint(uint64(to))
	w.WriteBytes(payload)
	body := w.Bytes()
	frame := make([]byte, frameHeaderSize+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[frameHeaderSize:], body)
	return frame
}

// ReadFrame reads one length-prefixed frame body off r, refusing length
// claims above maxFrame before allocating anything. A clean EOF at a
// frame boundary returns io.EOF; a disconnect mid-prefix or mid-body
// returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxFrame int) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(maxFrame) {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	return body, nil
}

// DecodeFrame parses a frame body into its route and payload bytes. The
// payload slice aliases body.
func DecodeFrame(body []byte, maxFrame int) (from, to NodeID, payload []byte, err error) {
	r := codec.NewReader(body)
	from = NodeID(r.ReadUvarint())
	to = NodeID(r.ReadUvarint())
	payload = r.ReadBytesMax(maxFrame)
	if err := r.Finish(); err != nil {
		return 0, 0, nil, fmt.Errorf("simnet: decode frame: %w", err)
	}
	return from, to, payload, nil
}
