// Package simnet simulates the wide-area network of the paper's deployment:
// nodes placed in 14 cloud regions on four continents, with inter-region
// latencies modeled on the measurements the paper borrows from the Red
// Belly evaluation [27], plus deterministic jitter, message drops, and
// partitions for fault-injection tests.
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"scmove/internal/metrics"
	"scmove/internal/simclock"
)

// NodeID identifies a network endpoint.
type NodeID uint64

// Handler receives a delivered message.
type Handler func(from NodeID, payload any)

// Region is an index into the latency matrix.
type Region int

// RegionCount is the number of modeled regions.
const RegionCount = 14

// regionNames document the modeled placement (paper §VI: 14 regions on four
// continents).
var regionNames = [RegionCount]string{
	"us-east", "us-west", "canada", "sao-paulo",
	"ireland", "london", "frankfurt", "paris",
	"mumbai", "singapore", "tokyo", "seoul",
	"sydney", "osaka",
}

// Name returns the region's label.
func (r Region) Name() string {
	if r < 0 || r >= RegionCount {
		return "unknown"
	}
	return regionNames[r]
}

// oneWayMillis is the modeled one-way latency matrix in milliseconds,
// derived from public inter-region RTT measurements (values are RTT/2,
// rounded). Intra-region latency is 1 ms (LAN with emulated WAN delays).
var oneWayMillis = [RegionCount][RegionCount]int{
	{1, 31, 8, 57, 34, 37, 44, 39, 91, 106, 73, 89, 98, 75},
	{31, 1, 29, 86, 64, 68, 73, 69, 111, 85, 54, 67, 70, 56},
	{8, 29, 1, 63, 36, 41, 46, 42, 96, 108, 76, 92, 105, 78},
	{57, 86, 63, 1, 88, 93, 98, 94, 151, 163, 129, 145, 155, 131},
	{34, 64, 36, 88, 1, 6, 12, 9, 61, 87, 105, 120, 128, 107},
	{37, 68, 41, 93, 6, 1, 8, 5, 56, 83, 111, 125, 131, 113},
	{44, 73, 46, 98, 12, 8, 1, 4, 55, 81, 117, 131, 138, 119},
	{39, 69, 42, 94, 9, 5, 4, 1, 52, 80, 113, 127, 140, 115},
	{91, 111, 96, 151, 61, 56, 55, 52, 1, 32, 60, 77, 111, 62},
	{106, 85, 108, 163, 87, 83, 81, 80, 32, 1, 34, 49, 46, 36},
	{73, 54, 76, 129, 105, 111, 117, 113, 60, 34, 1, 17, 52, 5},
	{89, 67, 92, 145, 120, 125, 131, 127, 77, 49, 17, 1, 67, 15},
	{98, 70, 105, 155, 128, 131, 138, 140, 111, 46, 52, 67, 1, 54},
	{75, 56, 78, 131, 107, 113, 119, 115, 62, 36, 5, 15, 54, 1},
}

// Latency returns the modeled one-way delay between two regions.
func Latency(a, b Region) time.Duration {
	return time.Duration(oneWayMillis[a][b]) * time.Millisecond
}

// Config tunes network behavior.
type Config struct {
	// JitterFrac adds up to ±JitterFrac of the base latency, drawn from the
	// seeded RNG. Zero disables jitter.
	JitterFrac float64
	// DropRate is the probability a message is silently lost.
	DropRate float64
	// DupRate is the probability a message is delivered twice.
	DupRate float64
	// ReorderFrac is the probability a message is held back by an extra
	// random delay of up to MaxReorderDelay, letting later traffic overtake.
	ReorderFrac float64
	// MaxReorderDelay bounds the reordering hold-back (defaults to the base
	// latency when zero).
	MaxReorderDelay time.Duration
	// CorruptRate is the probability a delivered copy is tampered via the
	// network's Tamper hook. Copies with no Tamper installed, or that the
	// hook declines, are delivered intact.
	CorruptRate float64
	// Tamper corrupts an in-memory WAN payload (WAN messages are typed
	// values, not bytes, so corruption is protocol-aware). It receives a
	// per-corruption derived RNG and must not mutate the original payload.
	// It returns the corrupted payload and true, or (payload, false) for
	// message kinds it does not corrupt.
	Tamper PayloadTamper
	// Seed makes delivery timing reproducible.
	Seed int64
}

// PayloadTamper corrupts an in-memory WAN message. See Config.Tamper.
type PayloadTamper func(rng *rand.Rand, payload any) (any, bool)

// faults extracts the global per-message fault configuration.
func (c Config) faults() LinkFaults {
	return LinkFaults{
		DropRate:        c.DropRate,
		DupRate:         c.DupRate,
		JitterFrac:      c.JitterFrac,
		ReorderFrac:     c.ReorderFrac,
		MaxReorderDelay: c.MaxReorderDelay,
		CorruptRate:     c.CorruptRate,
	}
}

// Network delivers messages between registered nodes over the simulated
// clock. It is single-threaded, like everything on the scheduler.
type Network struct {
	sched simclock.Clock
	cfg   Config
	rng   *rand.Rand

	nodes      map[NodeID]*nodeInfo
	down       map[NodeID]bool
	cut        map[[2]NodeID]bool
	linkFaults map[[2]NodeID]LinkFaults

	delivered  uint64
	dropped    uint64
	duplicated uint64
	reordered  uint64
	corrupted  uint64

	counters *metrics.Counters
	reg      *metrics.Registry // optional; feeds in-flight gauges
	// gInflight/gPeak are the in-flight gauge names ("wan.inflight" by
	// default), precomputed so the per-message send/delivery paths never
	// build strings. Laned universes run one Network per chain and give
	// each a per-chain label, keeping gauge high-water marks lane-local
	// and thus deterministic under the parallel driver.
	gInflight, gPeak string
}

type nodeInfo struct {
	region  Region
	handler Handler
}

// New returns an empty network on the given clock (the global scheduler,
// or a per-chain lane in a laned universe — each consensus cluster's WAN
// traffic is confined to its own chain).
func New(sched simclock.Clock, cfg Config) *Network {
	return &Network{
		sched:      sched,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		nodes:      make(map[NodeID]*nodeInfo),
		down:       make(map[NodeID]bool),
		cut:        make(map[[2]NodeID]bool),
		linkFaults: make(map[[2]NodeID]LinkFaults),
		gInflight:  "wan.inflight",
		gPeak:      "wan.inflight.peak",
	}
}

// Observe mirrors the network's fault events into the shared counter set
// under the "wan." prefix.
func (n *Network) Observe(c *metrics.Counters) { n.counters = c }

// SetRegistry attaches an observability registry: the network then tracks
// the number of WAN messages in flight ("<label>.inflight") and its
// high-water mark ("<label>.inflight.peak"). Updates happen inside
// send/delivery paths that already run, so enabling them cannot perturb
// simulated results.
func (n *Network) SetRegistry(reg *metrics.Registry) { n.reg = reg }

// SetGaugeLabel overrides the gauge name prefix (default "wan"). Per-chain
// networks use "wan.<chain>" so their in-flight peaks never share a key.
func (n *Network) SetGaugeLabel(label string) {
	n.gInflight = label + ".inflight"
	n.gPeak = label + ".inflight.peak"
}

func (n *Network) count(event string, field *uint64) {
	*field++
	if n.counters != nil {
		n.counters.Inc("wan." + event)
	}
}

// Register adds a node in the given region. Registering an existing id
// replaces its handler (used to restart crashed nodes).
func (n *Network) Register(id NodeID, region Region, h Handler) error {
	if region < 0 || region >= RegionCount {
		return fmt.Errorf("simnet: invalid region %d", region)
	}
	if h == nil {
		return fmt.Errorf("simnet: nil handler for node %d", id)
	}
	n.nodes[id] = &nodeInfo{region: region, handler: h}
	return nil
}

// RegionOf returns the region a node was registered in.
func (n *Network) RegionOf(id NodeID) (Region, bool) {
	info, ok := n.nodes[id]
	if !ok {
		return 0, false
	}
	return info.region, true
}

// Send schedules delivery of payload from one node to another, applying the
// latency matrix, jitter, drops, partitions, and node crashes. Messages to
// unknown nodes are dropped. Sending to self delivers after the intra-
// region latency (loopback through the local stack).
func (n *Network) Send(from, to NodeID, payload any) {
	src, okFrom := n.nodes[from]
	dst, okTo := n.nodes[to]
	if !okFrom || !okTo {
		n.count("dropped", &n.dropped)
		return
	}
	if n.down[from] || n.cut[linkKey(from, to)] {
		n.count("dropped", &n.dropped)
		return
	}
	faults := n.cfg.faults()
	if override, ok := n.linkFaults[linkKey(from, to)]; ok {
		faults = override
	}
	if faults.DropRate > 0 && n.rng.Float64() < faults.DropRate {
		n.count("dropped", &n.dropped)
		return
	}
	copies := 1
	if faults.DupRate > 0 && n.rng.Float64() < faults.DupRate {
		copies = 2
		n.count("duplicated", &n.duplicated)
	}
	base := Latency(src.region, dst.region)
	for i := 0; i < copies; i++ {
		msg := payload
		if faults.CorruptRate > 0 && n.rng.Float64() < faults.CorruptRate {
			if n.cfg.Tamper != nil {
				// A derived per-corruption RNG keeps the network's fault
				// stream independent of how many draws the tamper makes
				// (which may depend on non-deterministic payload content).
				trng := rand.New(rand.NewSource(n.cfg.Seed ^ int64(n.corrupted)*0x6A09E667F3BCC909 ^ 0x2545F4914F6CDD1D))
				if tampered, ok := n.cfg.Tamper(trng, payload); ok {
					msg = tampered
					n.count("corrupted", &n.corrupted)
					if n.counters != nil {
						n.counters.Inc("byzantine.corrupted")
					}
				}
			}
		}
		delay := base
		if faults.JitterFrac > 0 {
			jitter := (n.rng.Float64()*2 - 1) * faults.JitterFrac
			delay = time.Duration(float64(delay) * (1 + jitter))
		}
		if faults.ReorderFrac > 0 && n.rng.Float64() < faults.ReorderFrac {
			max := faults.MaxReorderDelay
			if max <= 0 {
				max = base
			}
			if max > 0 {
				delay += time.Duration(n.rng.Int63n(int64(max) + 1))
			}
			n.count("reordered", &n.reordered)
		}
		if n.reg.Enabled() {
			n.reg.AddGauge(n.gInflight, 1)
			n.reg.MaxGauge(n.gPeak, n.reg.Gauge(n.gInflight))
		}
		n.sched.After(delay, func() {
			if n.reg.Enabled() {
				n.reg.AddGauge(n.gInflight, -1)
			}
			// Down-state and handler are re-checked at delivery time so crashes
			// that happen while the message is in flight take effect.
			info, ok := n.nodes[to]
			if !ok || n.down[to] {
				n.count("dropped", &n.dropped)
				return
			}
			n.count("delivered", &n.delivered)
			info.handler(from, msg)
		})
	}
}

// Broadcast sends payload from one node to every other registered node.
func (n *Network) Broadcast(from NodeID, payload any) {
	for id := range n.nodes {
		if id != from {
			n.Send(from, id, payload)
		}
	}
}

// SetNodeDown crashes or revives a node; a down node neither sends nor
// receives.
func (n *Network) SetNodeDown(id NodeID, down bool) {
	n.down[id] = down
}

// SetLinkCut severs or restores the (bidirectional) link between two nodes.
func (n *Network) SetLinkCut(a, b NodeID, cut bool) {
	n.cut[linkKey(a, b)] = cut
	n.cut[linkKey(b, a)] = cut
}

// SetLinkFaults overrides the fault configuration of the (bidirectional)
// link between two nodes, replacing the global Config faults for it.
func (n *Network) SetLinkFaults(a, b NodeID, f LinkFaults) {
	n.linkFaults[linkKey(a, b)] = f
	n.linkFaults[linkKey(b, a)] = f
}

// ClearLinkFaults removes a per-link fault override.
func (n *Network) ClearLinkFaults(a, b NodeID) {
	delete(n.linkFaults, linkKey(a, b))
	delete(n.linkFaults, linkKey(b, a))
}

// SchedulePartition cuts every link between the given group and the rest of
// the network at simulated time `at` and heals it at `healAt`. Nodes are
// resolved at fire time, so nodes registered after the call still partition.
func (n *Network) SchedulePartition(at, healAt time.Duration, group ...NodeID) {
	inGroup := make(map[NodeID]bool, len(group))
	for _, id := range group {
		inGroup[id] = true
	}
	setCut := func(cut bool) {
		for id := range n.nodes {
			if inGroup[id] {
				continue
			}
			for _, g := range group {
				n.SetLinkCut(g, id, cut)
			}
		}
	}
	n.sched.At(at, func() { setCut(true) })
	if healAt > at {
		n.sched.At(healAt, func() { setCut(false) })
	}
}

// ScheduleCrash takes a node down at simulated time `at` and restarts it at
// `restartAt`. A restartAt ≤ at leaves the node down permanently.
func (n *Network) ScheduleCrash(id NodeID, at, restartAt time.Duration) {
	n.sched.At(at, func() { n.SetNodeDown(id, true) })
	if restartAt > at {
		n.sched.At(restartAt, func() { n.SetNodeDown(id, false) })
	}
}

// Stats returns delivered and dropped message counts.
func (n *Network) Stats() (delivered, dropped uint64) {
	return n.delivered, n.dropped
}

// FaultStats returns the full delivery event counts, including duplicates
// and reordered messages.
func (n *Network) FaultStats() LinkStats {
	return LinkStats{
		Delivered:  n.delivered,
		Dropped:    n.dropped,
		Duplicated: n.duplicated,
		Reordered:  n.reordered,
		Corrupted:  n.corrupted,
	}
}

func linkKey(a, b NodeID) [2]NodeID { return [2]NodeID{a, b} }
