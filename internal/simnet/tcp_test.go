package simnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"scmove/internal/codec"
)

// stringCodec is a trivial WireCodec for transport tests: payloads are
// strings, encoded length-prefixed.
type stringCodec struct{}

func (stringCodec) EncodePayload(payload any) ([]byte, error) {
	s, ok := payload.(string)
	if !ok {
		return nil, fmt.Errorf("stringCodec: %T", payload)
	}
	w := codec.NewWriter(len(s) + 8)
	w.WriteString(s)
	return w.Bytes(), nil
}

func (stringCodec) DecodePayload(b []byte) (any, error) {
	r := codec.NewReader(b)
	s := r.ReadString()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("consensus message bytes")
	frame := EncodeFrame(7, 9, payload)
	body, err := ReadFrame(bytes.NewReader(frame), DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	from, to, got, err := DecodeFrame(body, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if from != 7 || to != 9 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: from=%d to=%d payload=%q", from, to, got)
	}
}

// An oversized length prefix must be refused before any allocation: a
// hostile peer claiming a 4 GiB frame costs four header bytes, not four
// gigabytes.
func TestFrameOversizedLengthPrefix(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0xFFFFFFFF)
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), DefaultMaxFrame); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	// One byte above the bound is refused; exactly at the bound is not.
	binary.BigEndian.PutUint32(hdr[:], 17)
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), 16); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge at bound+1", err)
	}
	body := append([]byte{0, 0, 0, 4}, []byte("abcd")...)
	if _, err := ReadFrame(bytes.NewReader(body), 4); err != nil {
		t.Fatalf("frame at exactly maxFrame refused: %v", err)
	}
}

// A frame whose body is shorter than its prefix claims (stream truncated
// by a disconnect) surfaces io.ErrUnexpectedEOF, not a hang or a panic.
func TestFrameTruncatedBody(t *testing.T) {
	frame := EncodeFrame(1, 2, []byte("full payload"))
	for cut := 1; cut < len(frame); cut++ {
		_, err := ReadFrame(bytes.NewReader(frame[:cut]), DefaultMaxFrame)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
	// Zero bytes is a clean EOF — the peer closed between frames.
	if _, err := ReadFrame(bytes.NewReader(nil), DefaultMaxFrame); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

// Mid-frame disconnect on a real connection: the writer sends a partial
// frame and closes; the reader must error out rather than wait forever.
func TestFrameMidFrameDisconnect(t *testing.T) {
	client, server := net.Pipe()
	frame := EncodeFrame(3, 4, bytes.Repeat([]byte{0xAB}, 256))
	go func() {
		client.Write(frame[:len(frame)/2])
		client.Close()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := ReadFrame(server, DefaultMaxFrame)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader hung on mid-frame disconnect")
	}
}

// DecodeFrame bounds its payload with ReadBytesMax: a body whose inner
// length claim exceeds the remaining bytes (or the bound) errors.
func TestDecodeFrameHostileBody(t *testing.T) {
	cases := [][]byte{
		nil,                   // empty body
		{0x01},                // from only
		{0x01, 0x02},          // missing payload length
		{0x01, 0x02, 0xFF},    // truncated uvarint
		{0x01, 0x02, 0x10, 0}, // payload length 16, one byte present
		append([]byte{0x01, 0x02}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01), // absurd length claim
	}
	for i, body := range cases {
		if _, _, _, err := DecodeFrame(body, DefaultMaxFrame); err == nil {
			t.Errorf("case %d: hostile body decoded cleanly", i)
		}
	}
	// Trailing garbage after a valid payload is an error too.
	frame := EncodeFrame(1, 2, []byte("x"))
	body := append(frame[frameHeaderSize:], 0xEE)
	if _, _, _, err := DecodeFrame(body, DefaultMaxFrame); err == nil {
		t.Error("trailing bytes decoded cleanly")
	}
}

// End-to-end delivery over real sockets: payloads arrive decoded, in
// per-link FIFO order, and a down node receives nothing.
func TestTCPTransportDelivery(t *testing.T) {
	tr := NewTCP(stringCodec{}, nil, 0)
	defer tr.Close()

	const n = 50
	var mu sync.Mutex
	got := make(map[NodeID][]string)
	deliveredCh := make(chan struct{}, 2*n)
	handler := func(self NodeID) Handler {
		return func(from NodeID, payload any) {
			mu.Lock()
			got[self] = append(got[self], payload.(string))
			mu.Unlock()
			deliveredCh <- struct{}{}
		}
	}
	for id := NodeID(1); id <= 3; id++ {
		if err := tr.Register(id, 0, handler(id)); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < n; i++ {
		tr.Send(1, 2, fmt.Sprintf("a%03d", i))
		tr.Send(3, 2, fmt.Sprintf("b%03d", i))
	}
	for i := 0; i < 2*n; i++ {
		select {
		case <-deliveredCh:
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out after %d deliveries", i)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	var as, bs []string
	for _, s := range got[2] {
		if s[0] == 'a' {
			as = append(as, s)
		} else {
			bs = append(bs, s)
		}
	}
	if len(as) != n || len(bs) != n {
		t.Fatalf("node 2 got %d+%d messages, want %d+%d", len(as), len(bs), n, n)
	}
	for i := 0; i < n; i++ {
		if as[i] != fmt.Sprintf("a%03d", i) || bs[i] != fmt.Sprintf("b%03d", i) {
			t.Fatalf("per-link FIFO violated at %d: %s %s", i, as[i], bs[i])
		}
	}
}

func TestTCPTransportDownNode(t *testing.T) {
	tr := NewTCP(stringCodec{}, nil, 0)
	defer tr.Close()
	delivered := make(chan string, 8)
	for id := NodeID(1); id <= 2; id++ {
		if err := tr.Register(id, 0, func(from NodeID, payload any) {
			delivered <- payload.(string)
		}); err != nil {
			t.Fatal(err)
		}
	}
	tr.SetNodeDown(2, true)
	tr.Send(1, 2, "while down")
	tr.SetNodeDown(2, false)
	tr.Send(1, 2, "after revive")
	select {
	case s := <-delivered:
		if s != "after revive" {
			t.Fatalf("delivered %q, want only the post-revive message", s)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("post-revive message not delivered")
	}
	select {
	case s := <-delivered:
		t.Fatalf("unexpected extra delivery %q", s)
	case <-time.After(50 * time.Millisecond):
	}
	_, _, dropped, _ := tr.Stats()
	if dropped == 0 {
		t.Error("down-node send not counted as dropped")
	}
}

// A hostile peer writing junk at a node's listener is rejected without
// crashing the transport, and well-formed traffic keeps flowing after.
func TestTCPTransportHostilePeer(t *testing.T) {
	tr := NewTCP(stringCodec{}, nil, 0)
	defer tr.Close()
	delivered := make(chan string, 8)
	for id := NodeID(1); id <= 2; id++ {
		if err := tr.Register(id, 0, func(from NodeID, payload any) {
			delivered <- payload.(string)
		}); err != nil {
			t.Fatal(err)
		}
	}
	addr, _ := tr.Addr(2)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Oversized claim followed by garbage.
	junk := make([]byte, 64)
	binary.BigEndian.PutUint32(junk, 0xFFFFFFF0)
	c.Write(junk)
	c.Close()

	tr.Send(1, 2, "still alive")
	select {
	case s := <-delivered:
		if s != "still alive" {
			t.Fatalf("delivered %q", s)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("transport wedged after hostile peer")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, _, rejected := tr.Stats(); rejected > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hostile frame not counted as rejected")
		}
		time.Sleep(time.Millisecond)
	}
}

// FuzzFrameDecode drives hostile bytes through the frame reader and body
// decoder: no panic, no unbounded allocation, and every accepted frame
// re-encodes to an equivalent decode (wired into `make fuzzsmoke`).
func FuzzFrameDecode(f *testing.F) {
	f.Add(EncodeFrame(1, 2, []byte("hello")))
	f.Add(EncodeFrame(0, 0, nil))
	f.Add([]byte{0, 0, 0, 4, 1, 2, 1, 0xAA})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 2, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 16
		body, err := ReadFrame(bytes.NewReader(data), maxFrame)
		if err != nil {
			return
		}
		from, to, payload, err := DecodeFrame(body, maxFrame)
		if err != nil {
			return
		}
		// Accepted frames survive a round trip.
		again := EncodeFrame(from, to, payload)
		body2, err := ReadFrame(bytes.NewReader(again), maxFrame)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		f2, t2, p2, err := DecodeFrame(body2, maxFrame)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if f2 != from || t2 != to || !bytes.Equal(p2, payload) {
			t.Fatalf("round trip mismatch: (%d,%d,%x) vs (%d,%d,%x)", from, to, payload, f2, t2, p2)
		}
	})
}
