package simnet

import (
	"math/rand"
	"time"

	"scmove/internal/metrics"
	"scmove/internal/simclock"
)

// LinkFaults configures probabilistic faults on one message path. All
// probabilities are per message; the zero value is a perfect link.
type LinkFaults struct {
	// DropRate is the probability a message is silently lost.
	DropRate float64
	// DupRate is the probability a message is delivered twice (the second
	// copy takes an independently jittered delay).
	DupRate float64
	// JitterFrac stretches or shrinks the base delay by up to ±JitterFrac.
	JitterFrac float64
	// ReorderFrac is the probability a message is held back by an extra
	// random delay of up to MaxReorderDelay, letting later messages overtake
	// it.
	ReorderFrac float64
	// MaxReorderDelay bounds the reordering hold-back (defaults to the base
	// delay when zero).
	MaxReorderDelay time.Duration
	// CorruptRate is the probability a delivered copy has its bytes tampered
	// in flight (bit flips, truncation, or junk extension). Corruption only
	// applies to byte-level deliveries (DeliverBytes); closure deliveries
	// have no wire representation to corrupt.
	CorruptRate float64
}

// active reports whether any fault is configured.
func (f LinkFaults) active() bool {
	return f.DropRate > 0 || f.DupRate > 0 || f.JitterFrac > 0 || f.ReorderFrac > 0 ||
		f.CorruptRate > 0
}

// LinkStats counts one link's delivery events.
type LinkStats struct {
	Delivered  uint64
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
	// Corrupted counts delivered copies whose bytes were tampered in flight.
	Corrupted uint64
	// Rejected counts corrupted copies the receiver refused at ingest
	// (decode failure or validation error reported via NoteRejected).
	Rejected uint64
}

// TamperFunc corrupts a message's bytes. It must treat msg as read-only and
// return a fresh slice; rng is a per-corruption derived RNG, so the number
// of draws a tamper makes cannot desynchronize the link's fault stream.
type TamperFunc func(rng *rand.Rand, msg []byte) []byte

// DefaultTamper flips bytes, truncates, or extends the message with junk,
// choosing uniformly between the three. It models the full range of wire
// corruption an adversarial relayer can apply without forging signatures.
func DefaultTamper(rng *rand.Rand, msg []byte) []byte {
	out := append([]byte(nil), msg...)
	if len(out) == 0 {
		return []byte{byte(rng.Intn(256))}
	}
	switch rng.Intn(3) {
	case 0: // flip 1-4 bytes (each XORed with a non-zero mask)
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
		}
	case 1: // truncate to a strict prefix
		out = out[:rng.Intn(len(out))]
	default: // extend with 1-16 junk bytes
		n := 1 + rng.Intn(16)
		for i := 0; i < n; i++ {
			out = append(out, byte(rng.Intn(256)))
		}
	}
	return out
}

// Link is a lossy unidirectional message path outside the validator WAN:
// the client-to-chain submission path and the inter-chain header relays use
// it. Faults are drawn from a seeded RNG so chaos runs are deterministic,
// and the link can be cut outright to model a partitioned relayer.
type Link struct {
	sched  simclock.Clock
	rng    *rand.Rand
	seed   int64
	base   time.Duration
	faults LinkFaults
	tamper TamperFunc
	cut    bool

	stats    LinkStats
	counters *metrics.Counters
	prefix   string

	reg       *metrics.Registry // optional; feeds in-flight gauges
	gInflight string
	gPeak     string
}

// NewLink returns a link with the given base one-way delay and fault
// configuration, drawing fault decisions from the seeded RNG. The clock
// decides where deliveries run: laned universes build each header-relay
// link on the destination chain's lane, so deliveries (which touch only
// that chain's header store) execute on its lane. Sends — and with them
// every RNG draw — must happen from global contexts in a laned universe so
// the fault stream stays deterministic.
func NewLink(sched simclock.Clock, base time.Duration, faults LinkFaults, seed int64) *Link {
	return &Link{
		sched:  sched,
		rng:    rand.New(rand.NewSource(seed)),
		seed:   seed,
		base:   base,
		faults: faults,
	}
}

// Observe mirrors the link's events into the shared counter set under
// prefix (e.g. "submit" yields "submit.dropped").
func (l *Link) Observe(c *metrics.Counters, prefix string) {
	l.counters = c
	l.prefix = prefix
}

// SetRegistry attaches an observability registry: the link then tracks its
// in-flight message count ("<prefix>.inflight") and high-water mark
// ("<prefix>.inflight.peak"). Call after Observe so the gauge names pick up
// the link's counter prefix.
func (l *Link) SetRegistry(reg *metrics.Registry) {
	l.reg = reg
	prefix := l.prefix
	if prefix == "" {
		prefix = "link"
	}
	l.gInflight = prefix + ".inflight"
	l.gPeak = prefix + ".inflight.peak"
}

// SetCut severs (true) or heals (false) the link. A cut link drops every
// message.
func (l *Link) SetCut(cut bool) { l.cut = cut }

// Cut reports whether the link is currently severed.
func (l *Link) Cut() bool { return l.cut }

// SetFaults replaces the fault configuration.
func (l *Link) SetFaults(f LinkFaults) { l.faults = f }

// SetTamper replaces the corruption function used when CorruptRate fires.
// A nil tamper falls back to DefaultTamper.
func (l *Link) SetTamper(t TamperFunc) { l.tamper = t }

// Corrupts reports whether the link can tamper message bytes; senders use
// it to decide whether a byte-level delivery path is needed at all.
func (l *Link) Corrupts() bool { return l.faults.CorruptRate > 0 }

// Stats returns the link's delivery counters.
func (l *Link) Stats() LinkStats { return l.stats }

// NoteRejected records that the receiver refused a corrupted copy at ingest.
// Callers must only invoke it for deterministic rejections (content derived
// from seeded state); see the byzantine design note in DESIGN.md §12.
func (l *Link) NoteRejected() {
	l.count("rejected", &l.stats.Rejected)
	if l.counters != nil {
		l.counters.Inc("byzantine.rejected")
	}
}

func (l *Link) count(event string, field *uint64) {
	*field++
	if l.counters != nil {
		l.counters.Inc(l.prefix + "." + event)
	}
}

// tamperRNG returns a fresh RNG for the idx-th corruption event on this
// link. Deriving a per-event RNG (instead of sharing l.rng) keeps the
// link's fault stream independent of how many draws a tamper makes, which
// may depend on non-deterministic content such as ECDSA signature lengths.
func (l *Link) tamperRNG(idx uint64) *rand.Rand {
	return rand.New(rand.NewSource(l.seed ^ int64(idx)*0x6A09E667F3BCC909 ^ 0x5DEECE66D))
}

// delay draws one delivery delay: base latency, ±jitter, plus an optional
// reordering hold-back.
func (l *Link) delay() time.Duration {
	d := l.base
	if l.faults.JitterFrac > 0 {
		jitter := (l.rng.Float64()*2 - 1) * l.faults.JitterFrac
		d = time.Duration(float64(d) * (1 + jitter))
	}
	if l.faults.ReorderFrac > 0 && l.rng.Float64() < l.faults.ReorderFrac {
		max := l.faults.MaxReorderDelay
		if max <= 0 {
			max = l.base
		}
		if max > 0 {
			d += time.Duration(l.rng.Int63n(int64(max) + 1))
		}
		l.count("reordered", &l.stats.Reordered)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// DeliverBytes schedules delivery of an encoded message across the link,
// applying the same drop/dup/delay faults as Deliver plus byte corruption.
// encode is invoked lazily — only for copies the link actually corrupts —
// so clean deliveries cost no serialization. For clean copies fn receives
// (nil, false) and the receiver should use its captured original message;
// for corrupted copies it receives the tampered bytes and must treat them
// as fully untrusted input.
func (l *Link) DeliverBytes(encode func() []byte, fn func(b []byte, corrupted bool)) {
	if l.cut || (l.faults.DropRate > 0 && l.rng.Float64() < l.faults.DropRate) {
		l.count("dropped", &l.stats.Dropped)
		return
	}
	copies := 1
	if l.faults.DupRate > 0 && l.rng.Float64() < l.faults.DupRate {
		copies = 2
		l.count("duplicated", &l.stats.Duplicated)
	}
	for i := 0; i < copies; i++ {
		var b []byte
		corrupted := false
		if l.faults.CorruptRate > 0 && l.rng.Float64() < l.faults.CorruptRate {
			corrupted = true
			tamper := l.tamper
			if tamper == nil {
				tamper = DefaultTamper
			}
			b = tamper(l.tamperRNG(l.stats.Corrupted), encode())
			l.count("corrupted", &l.stats.Corrupted)
			if l.counters != nil {
				l.counters.Inc("byzantine.corrupted")
			}
		}
		l.count("delivered", &l.stats.Delivered)
		deliver := func() { fn(b, corrupted) }
		if l.reg.Enabled() {
			l.reg.AddGauge(l.gInflight, 1)
			l.reg.MaxGauge(l.gPeak, l.reg.Gauge(l.gInflight))
			l.sched.After(l.delay(), func() {
				l.reg.AddGauge(l.gInflight, -1)
				deliver()
			})
			continue
		}
		l.sched.After(l.delay(), deliver)
	}
}

// Deliver schedules fn across the link: it may run never (drop or cut),
// once, or twice (duplication), each copy after an independently drawn
// delay.
func (l *Link) Deliver(fn func()) {
	if l.cut || (l.faults.DropRate > 0 && l.rng.Float64() < l.faults.DropRate) {
		l.count("dropped", &l.stats.Dropped)
		return
	}
	copies := 1
	if l.faults.DupRate > 0 && l.rng.Float64() < l.faults.DupRate {
		copies = 2
		l.count("duplicated", &l.stats.Duplicated)
	}
	for i := 0; i < copies; i++ {
		l.count("delivered", &l.stats.Delivered)
		if l.reg.Enabled() {
			l.reg.AddGauge(l.gInflight, 1)
			l.reg.MaxGauge(l.gPeak, l.reg.Gauge(l.gInflight))
			l.sched.After(l.delay(), func() {
				l.reg.AddGauge(l.gInflight, -1)
				fn()
			})
			continue
		}
		l.sched.After(l.delay(), fn)
	}
}
