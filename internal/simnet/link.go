package simnet

import (
	"math/rand"
	"time"

	"scmove/internal/metrics"
	"scmove/internal/simclock"
)

// LinkFaults configures probabilistic faults on one message path. All
// probabilities are per message; the zero value is a perfect link.
type LinkFaults struct {
	// DropRate is the probability a message is silently lost.
	DropRate float64
	// DupRate is the probability a message is delivered twice (the second
	// copy takes an independently jittered delay).
	DupRate float64
	// JitterFrac stretches or shrinks the base delay by up to ±JitterFrac.
	JitterFrac float64
	// ReorderFrac is the probability a message is held back by an extra
	// random delay of up to MaxReorderDelay, letting later messages overtake
	// it.
	ReorderFrac float64
	// MaxReorderDelay bounds the reordering hold-back (defaults to the base
	// delay when zero).
	MaxReorderDelay time.Duration
}

// active reports whether any fault is configured.
func (f LinkFaults) active() bool {
	return f.DropRate > 0 || f.DupRate > 0 || f.JitterFrac > 0 || f.ReorderFrac > 0
}

// LinkStats counts one link's delivery events.
type LinkStats struct {
	Delivered  uint64
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
}

// Link is a lossy unidirectional message path outside the validator WAN:
// the client-to-chain submission path and the inter-chain header relays use
// it. Faults are drawn from a seeded RNG so chaos runs are deterministic,
// and the link can be cut outright to model a partitioned relayer.
type Link struct {
	sched  *simclock.Scheduler
	rng    *rand.Rand
	base   time.Duration
	faults LinkFaults
	cut    bool

	stats    LinkStats
	counters *metrics.Counters
	prefix   string

	reg       *metrics.Registry // optional; feeds in-flight gauges
	gInflight string
	gPeak     string
}

// NewLink returns a link with the given base one-way delay and fault
// configuration, drawing fault decisions from the seeded RNG.
func NewLink(sched *simclock.Scheduler, base time.Duration, faults LinkFaults, seed int64) *Link {
	return &Link{
		sched:  sched,
		rng:    rand.New(rand.NewSource(seed)),
		base:   base,
		faults: faults,
	}
}

// Observe mirrors the link's events into the shared counter set under
// prefix (e.g. "submit" yields "submit.dropped").
func (l *Link) Observe(c *metrics.Counters, prefix string) {
	l.counters = c
	l.prefix = prefix
}

// SetRegistry attaches an observability registry: the link then tracks its
// in-flight message count ("<prefix>.inflight") and high-water mark
// ("<prefix>.inflight.peak"). Call after Observe so the gauge names pick up
// the link's counter prefix.
func (l *Link) SetRegistry(reg *metrics.Registry) {
	l.reg = reg
	prefix := l.prefix
	if prefix == "" {
		prefix = "link"
	}
	l.gInflight = prefix + ".inflight"
	l.gPeak = prefix + ".inflight.peak"
}

// SetCut severs (true) or heals (false) the link. A cut link drops every
// message.
func (l *Link) SetCut(cut bool) { l.cut = cut }

// Cut reports whether the link is currently severed.
func (l *Link) Cut() bool { return l.cut }

// SetFaults replaces the fault configuration.
func (l *Link) SetFaults(f LinkFaults) { l.faults = f }

// Stats returns the link's delivery counters.
func (l *Link) Stats() LinkStats { return l.stats }

func (l *Link) count(event string, field *uint64) {
	*field++
	if l.counters != nil {
		l.counters.Inc(l.prefix + "." + event)
	}
}

// delay draws one delivery delay: base latency, ±jitter, plus an optional
// reordering hold-back.
func (l *Link) delay() time.Duration {
	d := l.base
	if l.faults.JitterFrac > 0 {
		jitter := (l.rng.Float64()*2 - 1) * l.faults.JitterFrac
		d = time.Duration(float64(d) * (1 + jitter))
	}
	if l.faults.ReorderFrac > 0 && l.rng.Float64() < l.faults.ReorderFrac {
		max := l.faults.MaxReorderDelay
		if max <= 0 {
			max = l.base
		}
		if max > 0 {
			d += time.Duration(l.rng.Int63n(int64(max) + 1))
		}
		l.count("reordered", &l.stats.Reordered)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Deliver schedules fn across the link: it may run never (drop or cut),
// once, or twice (duplication), each copy after an independently drawn
// delay.
func (l *Link) Deliver(fn func()) {
	if l.cut || (l.faults.DropRate > 0 && l.rng.Float64() < l.faults.DropRate) {
		l.count("dropped", &l.stats.Dropped)
		return
	}
	copies := 1
	if l.faults.DupRate > 0 && l.rng.Float64() < l.faults.DupRate {
		copies = 2
		l.count("duplicated", &l.stats.Duplicated)
	}
	for i := 0; i < copies; i++ {
		l.count("delivered", &l.stats.Delivered)
		if l.reg.Enabled() {
			l.reg.AddGauge(l.gInflight, 1)
			l.reg.MaxGauge(l.gPeak, l.reg.Gauge(l.gInflight))
			l.sched.After(l.delay(), func() {
				l.reg.AddGauge(l.gInflight, -1)
				fn()
			})
			continue
		}
		l.sched.After(l.delay(), fn)
	}
}
