package simnet

import (
	"testing"
	"time"

	"scmove/internal/simclock"
)

type inbox struct {
	msgs []any
	at   []time.Duration
}

func setup(t *testing.T, cfg Config) (*simclock.Scheduler, *Network, map[NodeID]*inbox) {
	t.Helper()
	sched := simclock.New()
	net := New(sched, cfg)
	boxes := make(map[NodeID]*inbox)
	for id, region := range map[NodeID]Region{1: 0, 2: 4, 3: 10} {
		box := &inbox{}
		boxes[id] = box
		if err := net.Register(id, region, func(_ NodeID, payload any) {
			box.msgs = append(box.msgs, payload)
			box.at = append(box.at, sched.Now())
		}); err != nil {
			t.Fatal(err)
		}
	}
	return sched, net, boxes
}

func TestDeliveryWithMatrixLatency(t *testing.T) {
	sched, net, boxes := setup(t, Config{})
	net.Send(1, 2, "hello") // us-east -> ireland: 34 ms
	sched.Run()
	box := boxes[2]
	if len(box.msgs) != 1 || box.msgs[0] != "hello" {
		t.Fatalf("msgs = %v", box.msgs)
	}
	if box.at[0] != 34*time.Millisecond {
		t.Fatalf("delivered at %v, want 34ms", box.at[0])
	}
}

func TestLatencyMatrixSymmetricAndPositive(t *testing.T) {
	for a := Region(0); a < RegionCount; a++ {
		for b := Region(0); b < RegionCount; b++ {
			if Latency(a, b) != Latency(b, a) {
				t.Fatalf("asymmetric latency %s-%s", a.Name(), b.Name())
			}
			if Latency(a, b) <= 0 {
				t.Fatalf("non-positive latency %s-%s", a.Name(), b.Name())
			}
		}
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	sched, net, boxes := setup(t, Config{})
	net.Broadcast(1, "b")
	sched.Run()
	if len(boxes[1].msgs) != 0 {
		t.Fatal("sender must not receive its own broadcast")
	}
	if len(boxes[2].msgs) != 1 || len(boxes[3].msgs) != 1 {
		t.Fatal("all other nodes must receive the broadcast")
	}
}

func TestUnknownNodesDrop(t *testing.T) {
	sched, net, _ := setup(t, Config{})
	net.Send(1, 99, "x")
	net.Send(99, 1, "x")
	sched.Run()
	if _, dropped := net.Stats(); dropped != 2 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestNodeDown(t *testing.T) {
	sched, net, boxes := setup(t, Config{})
	net.SetNodeDown(2, true)
	net.Send(1, 2, "x") // receiver down
	net.Send(2, 3, "x") // sender down
	sched.Run()
	if len(boxes[2].msgs) != 0 || len(boxes[3].msgs) != 0 {
		t.Fatal("down node must not send or receive")
	}
	net.SetNodeDown(2, false)
	net.Send(1, 2, "y")
	sched.Run()
	if len(boxes[2].msgs) != 1 {
		t.Fatal("revived node must receive again")
	}
}

func TestCrashWhileInFlight(t *testing.T) {
	sched, net, boxes := setup(t, Config{})
	net.Send(1, 2, "x")
	// Crash the receiver before the message lands.
	sched.After(time.Millisecond, func() { net.SetNodeDown(2, true) })
	sched.Run()
	if len(boxes[2].msgs) != 0 {
		t.Fatal("message must not be delivered to a node that crashed in flight")
	}
}

func TestLinkCut(t *testing.T) {
	sched, net, boxes := setup(t, Config{})
	net.SetLinkCut(1, 2, true)
	net.Send(1, 2, "x")
	net.Send(2, 1, "x")
	net.Send(1, 3, "ok")
	sched.Run()
	if len(boxes[2].msgs) != 0 || len(boxes[1].msgs) != 0 {
		t.Fatal("cut link must drop both directions")
	}
	if len(boxes[3].msgs) != 1 {
		t.Fatal("other links must be unaffected")
	}
}

func TestDropRate(t *testing.T) {
	sched := simclock.New()
	net := New(sched, Config{DropRate: 1.0, Seed: 1})
	received := 0
	for _, id := range []NodeID{1, 2} {
		if err := net.Register(id, 0, func(NodeID, any) { received++ }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		net.Send(1, 2, i)
	}
	sched.Run()
	if received != 0 {
		t.Fatalf("received = %d with drop rate 1.0", received)
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) time.Duration {
		sched := simclock.New()
		net := New(sched, Config{JitterFrac: 0.2, Seed: seed})
		var at time.Duration
		for _, id := range []NodeID{1, 2} {
			if err := net.Register(id, Region(int(id)), func(NodeID, any) { at = sched.Now() }); err != nil {
				t.Fatal(err)
			}
		}
		net.Send(1, 2, "x")
		sched.Run()
		return at
	}
	if run(7) != run(7) {
		t.Fatal("same seed must give identical timing")
	}
	if run(7) == run(8) {
		t.Fatal("different seeds should differ (jitter active)")
	}
}

func TestRegisterValidation(t *testing.T) {
	net := New(simclock.New(), Config{})
	if err := net.Register(1, Region(99), func(NodeID, any) {}); err == nil {
		t.Fatal("invalid region must be rejected")
	}
	if err := net.Register(1, 0, nil); err == nil {
		t.Fatal("nil handler must be rejected")
	}
}
