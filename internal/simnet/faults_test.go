package simnet

import (
	"testing"
	"time"

	"scmove/internal/metrics"
	"scmove/internal/simclock"
)

func TestDuplicationDeliversTwice(t *testing.T) {
	sched, net, boxes := setup(t, Config{DupRate: 1.0, Seed: 3})
	net.Send(1, 2, "x")
	sched.Run()
	if len(boxes[2].msgs) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(boxes[2].msgs))
	}
	stats := net.FaultStats()
	if stats.Duplicated != 1 || stats.Delivered != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestReorderHoldsMessagesBack(t *testing.T) {
	// With ReorderFrac 1.0, every message gets an extra random delay on top
	// of the base latency; with enough messages later sends overtake earlier
	// ones.
	sched := simclock.New()
	net := New(sched, Config{ReorderFrac: 1.0, MaxReorderDelay: 500 * time.Millisecond, Seed: 5})
	var order []int
	for _, id := range []NodeID{1, 2} {
		if err := net.Register(id, 0, func(_ NodeID, payload any) {
			order = append(order, payload.(int))
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		net.Send(1, 2, i)
	}
	sched.Run()
	if len(order) != 20 {
		t.Fatalf("delivered %d, want 20", len(order))
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("reordering must let some later message overtake an earlier one")
	}
	if net.FaultStats().Reordered == 0 {
		t.Fatal("reordered counter must move")
	}
}

func TestPerLinkFaultOverride(t *testing.T) {
	// Global config is perfect; only the 1->2 link drops everything.
	sched, net, boxes := setup(t, Config{Seed: 1})
	net.SetLinkFaults(1, 2, LinkFaults{DropRate: 1.0})
	net.Send(1, 2, "dropped")
	net.Send(1, 3, "ok")
	sched.Run()
	if len(boxes[2].msgs) != 0 {
		t.Fatal("overridden link must drop")
	}
	if len(boxes[3].msgs) != 1 {
		t.Fatal("other links must use the global config")
	}
	net.ClearLinkFaults(1, 2)
	net.Send(1, 2, "healed")
	sched.Run()
	if len(boxes[2].msgs) != 1 {
		t.Fatal("cleared override must restore delivery")
	}
}

func TestSchedulePartitionCutsAndHeals(t *testing.T) {
	sched, net, boxes := setup(t, Config{})
	net.SchedulePartition(time.Second, 2*time.Second, 1)

	sched.After(1500*time.Millisecond, func() { net.Send(1, 2, "during") })
	sched.After(2500*time.Millisecond, func() { net.Send(1, 2, "after") })
	sched.Run()
	if len(boxes[2].msgs) != 1 || boxes[2].msgs[0] != "after" {
		t.Fatalf("msgs = %v: partition must drop, heal must restore", boxes[2].msgs)
	}
}

func TestScheduleCrashDownAndRestart(t *testing.T) {
	sched, net, boxes := setup(t, Config{})
	net.ScheduleCrash(2, time.Second, 2*time.Second)

	sched.After(1500*time.Millisecond, func() { net.Send(1, 2, "while-down") })
	sched.After(2500*time.Millisecond, func() { net.Send(1, 2, "after-restart") })
	sched.Run()
	if len(boxes[2].msgs) != 1 || boxes[2].msgs[0] != "after-restart" {
		t.Fatalf("msgs = %v: crash must drop, restart must restore", boxes[2].msgs)
	}
}

func TestNetworkObserveMirrorsCounters(t *testing.T) {
	sched, net, _ := setup(t, Config{DupRate: 1.0, Seed: 2})
	c := metrics.NewCounters()
	net.Observe(c)
	net.Send(1, 2, "x")
	net.Send(1, 99, "lost")
	sched.Run()
	if c.Get("wan.delivered") != 2 || c.Get("wan.duplicated") != 1 || c.Get("wan.dropped") != 1 {
		t.Fatalf("counters = %v", c.Snapshot())
	}
}

func TestLinkDeliversAfterBaseDelay(t *testing.T) {
	sched := simclock.New()
	link := NewLink(sched, 40*time.Millisecond, LinkFaults{}, 0)
	var at time.Duration
	link.Deliver(func() { at = sched.Now() })
	sched.Run()
	if at != 40*time.Millisecond {
		t.Fatalf("delivered at %v, want 40ms", at)
	}
}

func TestLinkDropAndDuplicate(t *testing.T) {
	sched := simclock.New()
	drop := NewLink(sched, time.Millisecond, LinkFaults{DropRate: 1.0}, 1)
	ran := 0
	drop.Deliver(func() { ran++ })
	sched.Run()
	if ran != 0 {
		t.Fatal("a fully lossy link must never deliver")
	}
	if drop.Stats().Dropped != 1 {
		t.Fatalf("stats = %+v", drop.Stats())
	}

	dup := NewLink(sched, time.Millisecond, LinkFaults{DupRate: 1.0}, 1)
	dup.Deliver(func() { ran++ })
	sched.Run()
	if ran != 2 {
		t.Fatalf("duplicating link ran fn %d times, want 2", ran)
	}
}

func TestLinkCutStopsDelivery(t *testing.T) {
	sched := simclock.New()
	link := NewLink(sched, time.Millisecond, LinkFaults{}, 0)
	ran := 0
	link.SetCut(true)
	if !link.Cut() {
		t.Fatal("Cut must report the severed state")
	}
	link.Deliver(func() { ran++ })
	link.SetCut(false)
	link.Deliver(func() { ran++ })
	sched.Run()
	if ran != 1 {
		t.Fatalf("ran = %d: cut must drop, heal must deliver", ran)
	}
}

func TestLinkDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		sched := simclock.New()
		link := NewLink(sched, 50*time.Millisecond,
			LinkFaults{DropRate: 0.3, DupRate: 0.3, JitterFrac: 0.2}, seed)
		var times []time.Duration
		for i := 0; i < 30; i++ {
			link.Deliver(func() { times = append(times, sched.Now()) })
		}
		sched.Run()
		return times
	}
	a, b := run(9), run(9)
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different timing at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLinkObserveMirrorsCounters(t *testing.T) {
	sched := simclock.New()
	c := metrics.NewCounters()
	link := NewLink(sched, time.Millisecond, LinkFaults{DupRate: 1.0}, 4)
	link.Observe(c, "submit")
	link.Deliver(func() {})
	sched.Run()
	if c.Get("submit.delivered") != 2 || c.Get("submit.duplicated") != 1 {
		t.Fatalf("counters = %v", c.Snapshot())
	}
}
