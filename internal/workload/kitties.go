package workload

import (
	"fmt"
	"math/rand"
	"time"

	"scmove/internal/contracts"
	"scmove/internal/core"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/relay"
	"scmove/internal/state"
	"scmove/internal/types"
	"scmove/internal/u256"
	"scmove/internal/universe"
)

// KittiesConfig parameterizes the ScalableKitties replay (§VII-A).
//
// The paper replays the real CryptoKitties transaction history; this
// reproduction synthesizes a trace with the same structure (promotional
// creations, sire approvals, breed + giveBirth pairs, the Fig. 4
// dependency DAG) — see DESIGN.md, substitutions. LocalityBias controls
// how often breeding partners share a shard, calibrated so the realized
// cross-shard rates match the paper's 5.9-7.9 % (§VII-A).
type KittiesConfig struct {
	Shards    int
	Users     int
	PromoCats int
	Breeds    int
	// LocalityBias is the probability that a breeding partner is drawn
	// from the first cat's shard.
	LocalityBias float64
	// OutstandingLimit caps in-flight transactions per shard (250 in the
	// paper: the client keeps up to that many outgoing transactions per
	// shard connection, Fig. 5 right).
	OutstandingLimit int
	// ShardCapacity caps transactions per block, modeling the ~35 tx/s a
	// 10-validator Burrow shard sustains in the paper's cluster.
	ShardCapacity int
	Seed          int64
	// MaxDuration aborts a replay that stops making progress.
	MaxDuration time.Duration
	// State, if non-zero, selects every shard's state-storage options
	// (backend kind, flat-cache sizing, storage-tree residency cap) — the
	// bounded-RSS replay runs on the file backend through this.
	State state.Options
}

// DefaultKittiesConfig returns a scaled-down replay preserving the paper's
// trace structure.
func DefaultKittiesConfig(shards int) KittiesConfig {
	return KittiesConfig{
		Shards:           shards,
		Users:            64,
		PromoCats:        300,
		Breeds:           900,
		LocalityBias:     0.93,
		OutstandingLimit: 250,
		ShardCapacity:    175,
		Seed:             5,
		MaxDuration:      4 * time.Hour,
	}
}

// KittiesResult aggregates the replay measurements.
type KittiesResult struct {
	Config KittiesConfig
	// Throughput is committed successful transactions per second over the
	// replay (Fig. 5 left).
	Throughput float64
	// Timeline is the committed-transaction rate over time (Fig. 5 right).
	Timeline *metrics.Timeline
	// CrossRate is the fraction of breed operations that needed a move
	// (the cross-blockchain transaction rates quoted in §VII-B).
	CrossRate float64
	// StarvedAt records, per shard, when its in-flight transaction count
	// first hit zero while work remained (the "limit reached" markers of
	// Fig. 5 right); absent shards never starved.
	StarvedAt map[hashing.ChainID]time.Duration
	// SimDuration is the simulated time the replay took.
	SimDuration time.Duration
	// PlannedOps is the number of operations the synthesizer emitted (it
	// skips infeasible pairings, e.g. when a user's cats are all siblings).
	PlannedOps                            int
	OpsCompleted, FailedOps, TxsCommitted int
}

// trace structures.

type opKind uint8

const (
	opPromo opKind = iota + 1
	opBreed
)

type traceOp struct {
	id         int
	kind       opKind
	cat        int // promo: the cat created
	catA, catB int // breed parents
	child      int
	waiting    int
	dependents []int
}

type traceCat struct {
	owner     int // user index
	homeShard int // promo cats: hash partition; children: birth shard
	createdBy int // op id
	parents   [2]int
	lastOp    int // last op touching this cat (serialization dep)
}

// synthesize builds the operation DAG.
//
// Cats live on their owner's shard (users operate where their contracts
// are), so breeding two of one's own cats is a single-shard affair with no
// siring approval, while breeding with another user's cat needs an
// approval and — whenever the owners live on different shards — a move.
// Only those cross operations serialize per cat; own-cat breeds touch no
// shared mutable state (pregnancies get fresh ids) and run concurrently,
// which is what gives the real trace its replay parallelism.
func synthesize(cfg KittiesConfig, rng *rand.Rand) ([]*traceOp, []*traceCat) {
	ops := make([]*traceOp, 0, cfg.PromoCats+cfg.Breeds)
	cats := make([]*traceCat, 0, cfg.PromoCats+cfg.Breeds)
	byOwner := make([][]int, cfg.Users)
	lastAny := make([]int, 0, cfg.PromoCats+cfg.Breeds)   // last op touching the cat
	lastCross := make([]int, 0, cfg.PromoCats+cfg.Breeds) // last cross op touching it

	ownerShard := func(owner int) int {
		return int(hashing.Sum([]byte{byte(owner), byte(owner >> 8), 0x05}).Bytes()[0]) % cfg.Shards
	}
	addDep := func(op *traceOp, dep int) {
		if dep < 0 {
			return
		}
		ops[dep].dependents = append(ops[dep].dependents, op.id)
		op.waiting++
	}

	for i := 0; i < cfg.PromoCats; i++ {
		owner := i % cfg.Users
		op := &traceOp{id: len(ops), kind: opPromo, cat: i}
		ops = append(ops, op)
		cats = append(cats, &traceCat{
			owner:     owner,
			homeShard: ownerShard(owner),
			createdBy: op.id,
			parents:   [2]int{-1, -1},
			lastOp:    op.id,
		})
		byOwner[owner] = append(byOwner[owner], i)
		lastAny = append(lastAny, op.id)
		lastCross = append(lastCross, -1)
	}

	pickFrom := func(pool []int, exclude int) int {
		for tries := 0; tries < 16; tries++ {
			c := pool[rng.Intn(len(pool))]
			if c != exclude {
				return c
			}
		}
		return -1
	}

	for b := 0; b < cfg.Breeds; b++ {
		owner := rng.Intn(cfg.Users)
		pool := byOwner[owner]
		if len(pool) < 1 {
			continue
		}
		a := pool[rng.Intn(len(pool))]
		own := rng.Float64() < cfg.LocalityBias && len(pool) >= 2
		var bIdx int
		if own {
			bIdx = pickFrom(pool, a)
		} else {
			other := rng.Intn(cfg.Users)
			if other == owner || len(byOwner[other]) == 0 {
				continue
			}
			bIdx = pickFrom(byOwner[other], a)
		}
		if bIdx < 0 || related(cats, a, bIdx) {
			continue
		}
		child := len(cats)
		op := &traceOp{id: len(ops), kind: opBreed, catA: a, catB: bIdx, child: child}
		ops = append(ops, op)
		if own {
			// Own-cat breed: wait only for the cats to exist and for any
			// pending cross operation that may be relocating them.
			deps := map[int]bool{
				cats[a].createdBy: true, cats[bIdx].createdBy: true,
			}
			if lastCross[a] >= 0 {
				deps[lastCross[a]] = true
			}
			if lastCross[bIdx] >= 0 {
				deps[lastCross[bIdx]] = true
			}
			for d := range deps {
				addDep(op, d)
			}
		} else {
			// Cross breed: approval and possibly a move — serialize with
			// everything touching either cat (the Fig. 4 chain).
			deps := map[int]bool{lastAny[a]: true, lastAny[bIdx]: true}
			for d := range deps {
				addDep(op, d)
			}
			lastCross[a], lastCross[bIdx] = op.id, op.id
		}
		lastAny[a], lastAny[bIdx] = op.id, op.id
		cats = append(cats, &traceCat{
			owner:     owner,
			homeShard: cats[a].homeShard,
			createdBy: op.id,
			parents:   [2]int{a, bIdx},
			lastOp:    op.id,
		})
		byOwner[owner] = append(byOwner[owner], child)
		lastAny = append(lastAny, op.id)
		lastCross = append(lastCross, -1)
	}
	return ops, cats
}

// related reports whether two cats share a parent or form a parent-child
// pair.
func related(cats []*traceCat, a, b int) bool {
	for _, pa := range cats[a].parents {
		if pa < 0 {
			continue
		}
		if pa == b {
			return true
		}
		for _, pb := range cats[b].parents {
			if pa == pb {
				return true
			}
		}
	}
	for _, pb := range cats[b].parents {
		if pb == a {
			return true
		}
	}
	return false
}

// runtime cat state.
type liveCat struct {
	addr  hashing.Address
	salt  uint64
	shard hashing.ChainID
}

type kittiesRun struct {
	cfg  KittiesConfig
	u    *universe.Universe
	rng  *rand.Rand
	res  *KittiesResult
	ops  []*traceOp
	cats []*traceCat
	live []liveCat

	registry  hashing.Address
	gameOwner *relay.Client

	ready       []int
	outstanding int
	inFlight    map[hashing.ChainID]int
	opsLeft     int
	crossBreeds int
	breeds      int
	startAt     time.Duration
}

// RunKitties replays a synthetic CryptoKitties trace over sharded chains.
func RunKitties(cfg KittiesConfig) (*KittiesResult, error) {
	if cfg.Shards < 1 || cfg.Users < 1 || cfg.PromoCats < 2 {
		return nil, fmt.Errorf("workload: invalid kitties config")
	}
	if cfg.OutstandingLimit <= 0 {
		cfg.OutstandingLimit = 250
	}
	if cfg.ShardCapacity <= 0 {
		cfg.ShardCapacity = 175
	}
	registryAddr := contracts.WellKnown("kitties-registry")
	ucfg := universe.ShardedConfig(cfg.Shards, cfg.Users+1)
	ucfg.State = cfg.State
	for i := range ucfg.Specs {
		ucfg.Specs[i].Config.MaxBlockTxs = cfg.ShardCapacity
	}
	gameOwnerKey := universeClientAddress(cfg.Users) // client index Users
	ucfg.ExtraGenesis = func(_ hashing.ChainID, db *state.DB) {
		contracts.GenesisKittyRegistry(db, registryAddr, gameOwnerKey)
	}
	u, err := universe.New(ucfg)
	if err != nil {
		return nil, err
	}
	defer u.Close()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ops, cats := synthesize(cfg, rng)
	r := &kittiesRun{
		cfg:  cfg,
		u:    u,
		rng:  rng,
		ops:  ops,
		cats: cats,
		live: make([]liveCat, len(cats)),
		res: &KittiesResult{
			Config:    cfg,
			Timeline:  metrics.NewTimeline(30 * time.Second),
			StarvedAt: make(map[hashing.ChainID]time.Duration),
		},
		registry:  registryAddr,
		gameOwner: u.Client(cfg.Users),
		inFlight:  make(map[hashing.ChainID]int),
		opsLeft:   len(ops),
	}
	u.Start()
	r.startAt = u.Sched.Now()
	r.res.PlannedOps = len(ops)

	for s := 0; s < cfg.Shards; s++ {
		c := u.Chain(shardID(s))
		c.OnBlock(func(_ *types.Block, receipts []*types.Receipt) {
			good := 0
			for _, rec := range receipts {
				if rec.Succeeded() {
					good++
				}
			}
			r.res.Timeline.Record(u.Sched.Now()-r.startAt, good)
			r.res.TxsCommitted += good
		})
	}

	for _, op := range ops {
		if op.waiting == 0 {
			r.ready = append(r.ready, op.id)
		}
	}
	r.pump()
	finished := u.RunUntil(func() bool { return r.opsLeft == 0 }, cfg.MaxDuration)
	r.res.SimDuration = u.Sched.Now() - r.startAt
	if r.res.SimDuration > 0 {
		r.res.Throughput = float64(r.res.TxsCommitted) / r.res.SimDuration.Seconds()
	}
	if r.breeds > 0 {
		r.res.CrossRate = float64(r.crossBreeds) / float64(r.breeds)
	}
	if !finished {
		return r.res, fmt.Errorf("workload: kitties replay stalled with %d ops left", r.opsLeft)
	}
	return r.res, nil
}

// universeClientAddress precomputes the address of the i-th universe client
// (deterministic key seeds).
func universeClientAddress(i int) hashing.Address {
	return universe.ClientKey(i).Address()
}

// pump submits ready operations while the outstanding-transaction budget
// allows (250 per shard, §VII-A).
func (r *kittiesRun) pump() {
	budget := r.cfg.OutstandingLimit * r.cfg.Shards
	for len(r.ready) > 0 && r.outstanding < budget {
		id := r.ready[0]
		r.ready = r.ready[1:]
		r.startOp(r.ops[id])
	}
	// Starvation markers (Fig. 5 right): once the DAG has no ready leaves,
	// a shard whose in-flight count dropped below its quota has "less
	// outgoing transactions than established at the beginning".
	if r.opsLeft > 0 && len(r.ready) == 0 {
		for s := 0; s < r.cfg.Shards; s++ {
			id := shardID(s)
			if r.inFlight[id] < r.cfg.OutstandingLimit {
				if _, seen := r.res.StarvedAt[id]; !seen {
					r.res.StarvedAt[id] = r.u.Sched.Now() - r.startAt
				}
			}
		}
	}
}

// track submits one transaction and wires accounting; fn runs on commit.
func (r *kittiesRun) track(cl *relay.Client, shard hashing.ChainID, to hashing.Address,
	data []byte, fn func(rec *types.Receipt)) {
	c := r.u.Chain(shard)
	txid, err := cl.Call(c, to, data, u256.Zero())
	if err != nil {
		fn(&types.Receipt{Status: types.ReceiptFailed, Err: err.Error()})
		return
	}
	r.outstanding++
	r.inFlight[shard]++
	c.NotifyTx(txid, func(rec *types.Receipt, _ *types.Block) {
		r.outstanding--
		r.inFlight[shard]--
		if !rec.Succeeded() && debugTrace != nil {
			debugTrace("tx on %s to %s failed: %s", shard, to, rec.Err)
		}
		fn(rec)
		r.pump()
	})
}

// startOp orchestrates one trace operation.
func (r *kittiesRun) startOp(op *traceOp) {
	switch op.kind {
	case opPromo:
		r.startPromo(op)
	case opBreed:
		r.startBreed(op)
	}
}

func (r *kittiesRun) startPromo(op *traceOp) {
	cat := r.cats[op.cat]
	shard := shardID(cat.homeShard)
	var genes evm.Word
	g := hashing.Sum([]byte{byte(op.cat), byte(op.cat >> 8), 0x9E})
	copy(genes[:], g[:])
	ownerAddr := r.u.Client(cat.owner).Address()
	r.track(r.gameOwner, shard, r.registry,
		contracts.EncodeCall("createPromoKitty", contracts.ArgWord(genes), contracts.ArgAddress(ownerAddr)),
		func(rec *types.Receipt) {
			if !rec.Succeeded() {
				r.opFailed(op)
				return
			}
			addr, ok := kittyFromLogs(rec)
			if !ok {
				r.opFailed(op)
				return
			}
			r.live[op.cat] = liveCat{addr: addr, shard: shard}
			r.resolveSalt(op.cat, shard)
			r.opDone(op)
		})
}

// resolveSalt reads the cat's salt via a state query (clients learn salts
// from the CreatedAccount-style events; a direct view keeps the replay
// simple).
func (r *kittiesRun) resolveSalt(cat int, shard hashing.ChainID) {
	ret, err := r.u.Chain(shard).StaticCall(r.gameOwner.Address(), r.live[cat].addr,
		contracts.EncodeCall("salt"))
	if err == nil {
		r.live[cat].salt = u256.FromBytes(ret).Uint64()
	}
}

func (r *kittiesRun) startBreed(op *traceOp) {
	a, b := &r.live[op.catA], &r.live[op.catB]
	if a.addr.IsZero() || b.addr.IsZero() {
		r.opFailed(op)
		return
	}
	r.breeds++
	if a.shard != b.shard {
		// Cross-shard breeding: move cat B to cat A's shard first (§V-B).
		r.crossBreeds++
		ownerB := r.u.Client(r.cats[op.catB].owner)
		dst := a.shard
		r.moveCat(ownerB, op.catB, dst, func(ok bool) {
			if !ok {
				r.opFailed(op)
				return
			}
			r.breedColocated(op)
		})
		return
	}
	r.breedColocated(op)
}

// moveCat moves a cat between shards, charging two transactions to the
// outstanding budget.
func (r *kittiesRun) moveCat(owner *relay.Client, cat int, dst hashing.ChainID, done func(bool)) {
	if r.live[cat].addr.IsZero() {
		// The cat was never created (its creating operation failed).
		done(false)
		return
	}
	src := r.live[cat].shard
	r.outstanding += 2
	r.inFlight[src]++
	r.inFlight[dst]++
	r.u.Mover(src, dst).Move(owner, r.live[cat].addr, core.MoveToInput(dst),
		func(res *relay.MoveResult) {
			r.outstanding -= 2
			r.inFlight[src]--
			r.inFlight[dst]--
			if res.Err != nil {
				done(false)
				r.pump()
				return
			}
			r.live[cat].shard = dst
			done(true)
			r.pump()
		})
}

// breedColocated runs approve (if needed), breed, and giveBirth on cat A's
// shard.
func (r *kittiesRun) breedColocated(op *traceOp) {
	catA, catB := r.cats[op.catA], r.cats[op.catB]
	shard := r.live[op.catA].shard
	ownerA := r.u.Client(catA.owner)
	breed := func() {
		data := contracts.EncodeCall("breed",
			contracts.ArgAddress(r.live[op.catA].addr), contracts.ArgUint(r.live[op.catA].salt),
			contracts.ArgAddress(r.live[op.catB].addr), contracts.ArgUint(r.live[op.catB].salt))
		r.track(ownerA, shard, r.registry, data, func(rec *types.Receipt) {
			if !rec.Succeeded() {
				r.opFailed(op)
				return
			}
			pregnancy, ok := pregnancyFromLogs(rec)
			if !ok {
				r.opFailed(op)
				return
			}
			r.track(ownerA, shard, r.registry,
				contracts.EncodeCall("giveBirth", contracts.ArgUint(pregnancy)),
				func(rec *types.Receipt) {
					if !rec.Succeeded() {
						r.opFailed(op)
						return
					}
					child, ok := kittyFromLogs(rec)
					if !ok {
						r.opFailed(op)
						return
					}
					r.live[op.child] = liveCat{addr: child, shard: shard}
					r.resolveSalt(op.child, shard)
					r.opDone(op)
				})
		})
	}
	if catA.owner != catB.owner {
		// Sire approval by B's owner first (Fig. 4's Tx3).
		ownerB := r.u.Client(catB.owner)
		r.track(ownerB, shard, r.live[op.catB].addr,
			contracts.EncodeCall("approveSiring", contracts.ArgAddress(r.live[op.catA].addr)),
			func(rec *types.Receipt) {
				if !rec.Succeeded() {
					r.opFailed(op)
					return
				}
				breed()
			})
		return
	}
	breed()
}

func (r *kittiesRun) opDone(op *traceOp) {
	r.opsLeft--
	r.res.OpsCompleted++
	r.releaseDependents(op)
}

func (r *kittiesRun) opFailed(op *traceOp) {
	if debugTrace != nil {
		debugTrace("op %d kind %d failed", op.id, op.kind)
	}
	r.opsLeft--
	r.res.FailedOps++
	// Dependents of a failed op are released too (they will fail fast if
	// their cats never materialized); the replay keeps going.
	r.releaseDependents(op)
}

func (r *kittiesRun) releaseDependents(op *traceOp) {
	for _, dep := range op.dependents {
		d := r.ops[dep]
		d.waiting--
		if d.waiting == 0 {
			r.ready = append(r.ready, d.id)
		}
	}
	r.pump()
}

func kittyFromLogs(rec *types.Receipt) (hashing.Address, bool) {
	for i := len(rec.Logs) - 1; i >= 0; i-- {
		log := rec.Logs[i]
		if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicKittyCreated {
			addr, err := contracts.AsAddress(log.Data)
			return addr, err == nil
		}
	}
	return hashing.Address{}, false
}

func pregnancyFromLogs(rec *types.Receipt) (uint64, bool) {
	for _, log := range rec.Logs {
		if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicPregnant {
			return u256.FromBytes(log.Data).Uint64(), true
		}
	}
	return 0, false
}
