// Package workload implements the paper's two evaluation workloads: the
// SCoin closed-loop token transfer benchmark with a controllable
// cross-shard rate and an optional conflict/retry mode (§VII-B, Figs. 6
// and 7), and the synthetic CryptoKitties trace replayed through a
// dependency DAG (§VII-A, Figs. 4 and 5).
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"scmove/internal/chain"
	"scmove/internal/contracts"
	"scmove/internal/core"
	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/relay"
	"scmove/internal/state"
	"scmove/internal/types"
	"scmove/internal/u256"
	"scmove/internal/universe"
)

// SCoinConfig parameterizes the token benchmark.
type SCoinConfig struct {
	Shards          int
	ClientsPerShard int
	// ReceiversPerShard is the number of pinned receiving accounts per
	// shard in the controlled (oracle) mode.
	ReceiversPerShard int
	// CrossFraction is the probability that an operation targets an account
	// on another shard (the x-axis of Fig. 6).
	CrossFraction float64
	// Duration is the measured window; a setup phase precedes it.
	Duration time.Duration
	// Retries enables the conflict mode of §VII-B1: clients target accounts
	// that themselves move, fail on conflicts, and retry after a random
	// 0-10 block backoff.
	Retries bool
	// ThinkTime is the maximum uniform pause between a client's operations
	// (decorrelates the closed loops from the block schedule). Defaults to
	// 2 s.
	ThinkTime time.Duration
	Seed      int64
}

// DefaultSCoinConfig returns a scaled-down version of the paper's setup
// (the paper runs 250 clients per shard; the default here keeps simulation
// time reasonable while preserving every trend).
func DefaultSCoinConfig(shards int, crossFraction float64) SCoinConfig {
	return SCoinConfig{
		Shards:            shards,
		ClientsPerShard:   250,
		ReceiversPerShard: 16,
		CrossFraction:     crossFraction,
		Duration:          5 * time.Minute,
		Seed:              11,
	}
}

// SCoinResult aggregates the benchmark measurements.
type SCoinResult struct {
	Config SCoinConfig
	// Throughput is committed successful transactions per second across all
	// shards during the measured window (the y-axis of Fig. 6).
	Throughput float64
	// OpsPerSec counts completed application operations (one transfer plus
	// any moves it required).
	OpsPerSec float64
	// Latency distributions (Fig. 7): all operations, single-shard only,
	// and cross-shard only.
	All, Single, Cross *metrics.Latencies
	// Timeline is the committed-transaction rate over time.
	Timeline *metrics.Timeline
	// RetryCounts histograms how often retried operations retried
	// (conflict mode): RetryCounts[1] ops retried once, etc.
	RetryCounts map[int]int
	// FailedOps counts operations abandoned after too many retries.
	FailedOps int
	// MeasuredCrossFraction is the realized share of cross-shard ops.
	MeasuredCrossFraction float64
}

// account is one movable SAccount tracked by the workload.
type account struct {
	addr  hashing.Address
	salt  uint64
	owner *relay.Client
	// shard is the account's current chain.
	shard hashing.ChainID
	// moving marks an account whose owner is mid-move (conflict source).
	moving bool
}

// scoinRun is the mutable benchmark state.
type scoinRun struct {
	cfg SCoinConfig
	u   *universe.Universe
	rng *rand.Rand

	tokenAddr hashing.Address
	senders   []*account // one per client
	receivers map[hashing.ChainID][]*account

	startAt, endAt time.Duration

	res        *SCoinResult
	opsDone    int
	crossOps   int
	maxRetries int
}

// RunSCoin executes the benchmark and returns its measurements.
func RunSCoin(cfg SCoinConfig) (*SCoinResult, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("workload: need at least one shard")
	}
	if cfg.ReceiversPerShard <= 0 {
		cfg.ReceiversPerShard = 16
	}
	ownerKey := contracts.WellKnown("scoin-owner")
	tokenAddr := contracts.WellKnown("scoin-factory")
	ucfg := universe.ShardedConfig(cfg.Shards, cfg.Shards*cfg.ClientsPerShard+cfg.Shards)
	ucfg.ExtraGenesis = func(_ hashing.ChainID, db *state.DB) {
		contracts.GenesisSCoin(db, tokenAddr, ownerKey, u256.FromUint64(1_000_000))
	}
	u, err := universe.New(ucfg)
	if err != nil {
		return nil, err
	}
	run := &scoinRun{
		cfg:       cfg,
		u:         u,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		tokenAddr: tokenAddr,
		receivers: make(map[hashing.ChainID][]*account),
		res: &SCoinResult{
			Config:      cfg,
			All:         metrics.NewLatencies(),
			Single:      metrics.NewLatencies(),
			Cross:       metrics.NewLatencies(),
			Timeline:    metrics.NewTimeline(10 * time.Second),
			RetryCounts: make(map[int]int),
		},
		maxRetries: 20,
	}
	u.Start()
	if err := run.setup(); err != nil {
		return nil, err
	}
	run.measure()
	return run.res, nil
}

// shardID maps a shard index to its chain id.
func shardID(i int) hashing.ChainID { return hashing.ChainID(i + 1) }

// setup creates every sender and receiver account on its home shard.
func (r *scoinRun) setup() error {
	cfg := r.cfg
	type pendingCreate struct {
		txid  hashing.Hash
		chain *chain.Chain
		apply func(addr hashing.Address, salt uint64)
	}
	var pending []pendingCreate

	submitNewAccount := func(cl *relay.Client, shard hashing.ChainID, apply func(hashing.Address, uint64)) error {
		txid, err := cl.Call(r.u.Chain(shard), r.tokenAddr, contracts.EncodeCall("newAccount"), u256.Zero())
		if err != nil {
			return err
		}
		pending = append(pending, pendingCreate{txid: txid, chain: r.u.Chain(shard), apply: apply})
		return nil
	}

	// Senders: client i lives on shard i % Shards.
	for i := 0; i < cfg.Shards*cfg.ClientsPerShard; i++ {
		cl := r.u.Client(i)
		shard := shardID(i % cfg.Shards)
		acct := &account{owner: cl, shard: shard}
		r.senders = append(r.senders, acct)
		if err := submitNewAccount(cl, shard, func(addr hashing.Address, salt uint64) {
			acct.addr, acct.salt = addr, salt
		}); err != nil {
			return err
		}
	}
	// Receivers: one dedicated owner client per shard owns all its pinned
	// receiving accounts.
	for s := 0; s < cfg.Shards; s++ {
		cl := r.u.Client(cfg.Shards*cfg.ClientsPerShard + s)
		shard := shardID(s)
		for j := 0; j < cfg.ReceiversPerShard; j++ {
			acct := &account{owner: cl, shard: shard}
			r.receivers[shard] = append(r.receivers[shard], acct)
			if err := submitNewAccount(cl, shard, func(addr hashing.Address, salt uint64) {
				acct.addr, acct.salt = addr, salt
			}); err != nil {
				return err
			}
		}
	}

	ok := r.u.RunUntil(func() bool {
		for _, p := range pending {
			if _, found := p.chain.Receipt(p.txid); !found {
				return false
			}
		}
		return true
	}, 10*time.Minute)
	if !ok {
		return fmt.Errorf("workload: account setup did not finish")
	}
	for _, p := range pending {
		rec, _ := p.chain.Receipt(p.txid)
		if !rec.Succeeded() {
			return fmt.Errorf("workload: newAccount failed: %s", rec.Err)
		}
		applied := false
		for _, log := range rec.Logs {
			if len(log.Topics) == 1 && log.Topics[0] == contracts.TopicCreatedAccount {
				addr, salt, err := contracts.DecodeNewAccountResult(log.Data)
				if err != nil {
					return err
				}
				p.apply(addr, salt)
				applied = true
			}
		}
		if !applied {
			return fmt.Errorf("workload: CreatedAccount event missing")
		}
	}
	return nil
}

// measure runs the closed loops for the configured duration.
func (r *scoinRun) measure() {
	r.startAt = r.u.Sched.Now()
	r.endAt = r.startAt + r.cfg.Duration

	// Count committed successful transactions per shard inside the window.
	for s := 0; s < r.cfg.Shards; s++ {
		c := r.u.Chain(shardID(s))
		c.OnBlock(func(b *types.Block, receipts []*types.Receipt) {
			now := r.u.Sched.Now()
			if now < r.startAt || now > r.endAt {
				return
			}
			good := 0
			for _, rec := range receipts {
				if rec.Succeeded() {
					good++
				}
			}
			r.res.Timeline.Record(now-r.startAt, good)
		})
	}
	for _, acct := range r.senders {
		r.nextOp(acct)
	}
	// Drain: run past the end so in-flight operations complete.
	r.u.RunUntil(func() bool { return r.u.Sched.Now() >= r.endAt+2*time.Minute }, r.cfg.Duration+10*time.Minute)

	window := r.cfg.Duration.Seconds()
	r.res.Throughput = float64(r.res.Timeline.Total()) / window
	r.res.OpsPerSec = float64(r.opsDone) / window
	if r.opsDone > 0 {
		r.res.MeasuredCrossFraction = float64(r.crossOps) / float64(r.opsDone)
	}
}

// nextOp schedules one closed-loop operation for the sender after a short
// random think time.
func (r *scoinRun) nextOp(acct *account) {
	think := r.cfg.ThinkTime
	if think <= 0 {
		think = 2 * time.Second
	}
	r.u.Sched.After(time.Duration(r.rng.Int63n(int64(think))), func() {
		r.startOp(acct)
	})
}

// startOp begins the operation itself.
func (r *scoinRun) startOp(acct *account) {
	if r.u.Sched.Now() >= r.endAt {
		return
	}
	cross := r.cfg.Shards > 1 && r.rng.Float64() < r.cfg.CrossFraction
	var targetShard hashing.ChainID
	if cross {
		for {
			targetShard = shardID(r.rng.Intn(r.cfg.Shards))
			if targetShard != acct.shard {
				break
			}
		}
	} else {
		targetShard = acct.shard
	}
	target := r.pickTarget(acct, targetShard)
	if target == nil {
		// No eligible target right now (conflict mode corner); retry soon.
		r.u.Sched.After(time.Second, func() { r.nextOp(acct) })
		return
	}
	op := &scoinOp{start: r.u.Sched.Now(), cross: cross}
	if debugTrace != nil {
		debugTrace("%v acct %s nextOp cross=%v curShard=%d targetShard=%d", r.u.Sched.Now(), acct.addr, cross, acct.shard, targetShard)
	}
	if targetShard == acct.shard {
		r.transfer(acct, target, op)
		return
	}
	// Cross-shard: move our account to the target's shard first (§VII-B).
	acct.moving = true
	r.u.Mover(acct.shard, targetShard).Move(acct.owner, acct.addr, core.MoveToInput(targetShard),
		func(res *relay.MoveResult) {
			acct.moving = false
			if res.Err != nil {
				if debugFail != nil {
					debugFail(res.Err)
				}
				r.opFailed(acct, op)
				return
			}
			acct.shard = targetShard
			r.transfer(acct, target, op)
		})
}

// pickTarget chooses the destination account on the given shard.
func (r *scoinRun) pickTarget(self *account, shard hashing.ChainID) *account {
	if !r.cfg.Retries {
		recv := r.receivers[shard]
		return recv[r.rng.Intn(len(recv))]
	}
	// Conflict mode: target other senders' accounts, which move around.
	// The client resolves the target's current shard from the Lc field of
	// the shard it last knew (§III-G(b)) — by construction our tracked
	// 'shard' field is that resolution, but it may be stale by execution
	// time, which is exactly the conflict the experiment provokes.
	for tries := 0; tries < 32; tries++ {
		cand := r.senders[r.rng.Intn(len(r.senders))]
		if cand != self && cand.shard == shard {
			return cand
		}
	}
	return nil
}

type scoinOp struct {
	start   time.Duration
	cross   bool
	retries int
}

// transfer submits the token transfer on the sender's current shard.
func (r *scoinRun) transfer(acct *account, target *account, op *scoinOp) {
	c := r.u.Chain(acct.shard)
	data := contracts.EncodeCall("transfer",
		contracts.ArgAddress(target.addr), contracts.ArgUint(target.salt),
		contracts.ArgU256(u256.FromUint64(1)))
	txid, err := acct.owner.Call(c, acct.addr, data, u256.Zero())
	if err != nil {
		r.opFailed(acct, op)
		return
	}
	c.NotifyTx(txid, func(rec *types.Receipt, _ *types.Block) {
		if rec.Succeeded() {
			r.opDone(acct, op)
			return
		}
		if !r.cfg.Retries || op.retries >= r.maxRetries {
			r.opFailed(acct, op)
			return
		}
		// Conflict: back off 0-10 blocks (5 s each) then retry against the
		// target's refreshed location (paper §VII-B1).
		op.retries++
		backoff := time.Duration(r.rng.Intn(11)) * 5 * time.Second
		r.u.Sched.After(backoff, func() { r.retryTransfer(acct, target, op) })
	})
}

// retryTransfer re-resolves the target's location and retries, moving our
// account after it if necessary. If the target is mid-move, the client can
// see the Move1 lock through Lc (§III-G(b)) and simply polls until the
// move completes instead of submitting a transaction doomed to fail.
func (r *scoinRun) retryTransfer(acct *account, target *account, op *scoinOp) {
	if target.moving {
		r.u.Sched.After(5*time.Second, func() { r.retryTransfer(acct, target, op) })
		return
	}
	if debugTrace != nil {
		debugTrace("%v acct %s retry #%d curShard=%d target %s targetShard=%d", r.u.Sched.Now(), acct.addr, op.retries, acct.shard, target.addr, target.shard)
	}
	if target.shard == acct.shard {
		r.transfer(acct, target, op)
		return
	}
	// Capture the destination now: the target may move again while our own
	// move is in flight, and the callback must record where *we* actually
	// went, not where the target is by then.
	dst := target.shard
	acct.moving = true
	r.u.Mover(acct.shard, dst).Move(acct.owner, acct.addr, core.MoveToInput(dst),
		func(res *relay.MoveResult) {
			acct.moving = false
			if res.Err != nil {
				if debugFail != nil {
					debugFail(res.Err)
				}
				r.opFailed(acct, op)
				return
			}
			acct.shard = dst
			r.transfer(acct, target, op)
		})
}

func (r *scoinRun) opDone(acct *account, op *scoinOp) {
	now := r.u.Sched.Now()
	if now >= r.startAt && now <= r.endAt {
		lat := now - op.start
		r.res.All.Record(lat)
		if op.cross {
			r.res.Cross.Record(lat)
			r.crossOps++
		} else {
			r.res.Single.Record(lat)
		}
		r.opsDone++
		if op.retries > 0 {
			r.res.RetryCounts[op.retries]++
		}
	}
	r.nextOp(acct)
}

func (r *scoinRun) opFailed(acct *account, op *scoinOp) {
	r.res.FailedOps++
	// Re-resolve where the account actually lives before the next op: a
	// failed move can leave client-side tracking stale. Any chain's Lc
	// field names the account's true home (§III-G(b)).
	r.resolveShard(acct)
	r.nextOp(acct)
}

// resolveShard refreshes the client's view of its account's location by
// reading the Lc field (every shard's tombstone points at the true home).
func (r *scoinRun) resolveShard(acct *account) {
	for s := 0; s < r.cfg.Shards; s++ {
		id := shardID(s)
		db := r.u.Chain(id).StateDB()
		if !db.Exists(acct.addr) {
			continue
		}
		if loc := db.GetLocation(acct.addr); loc == id {
			acct.shard = id
			return
		} else if r.u.Chain(loc) != nil && r.u.Chain(loc).StateDB().GetLocation(acct.addr) == loc {
			acct.shard = loc
			return
		}
	}
}

// debugFail is a temporary hook.
var debugFail func(err error)

// debugTrace, when set, receives workload event traces.
var debugTrace func(format string, args ...any)
