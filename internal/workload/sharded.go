package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"scmove/internal/contracts"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/relay"
	"scmove/internal/shard"
	"scmove/internal/state"
	"scmove/internal/types"
	"scmove/internal/u256"
	"scmove/internal/universe"
)

// ShardedScalingConfig parameterizes the 16–64-chain scaling workload: a
// congested home shard, a keyed user population spread across every shard,
// and the auto-migration policy engine deciding whether contracts follow
// their users.
type ShardedScalingConfig struct {
	// Chains is the shard count (the grid runs 4 / 16 / 64).
	Chains int
	// Validators per shard (0 keeps ShardedScaleConfig's default of 4).
	Validators int
	// Users is the synthetic keyed population funded at genesis.
	Users int
	// ActiveUsers drive traffic (default 4 per chain); the rest exist to
	// prove provisioning scales.
	ActiveUsers int
	// Contracts are all deployed on the first shard (default 2 per chain).
	Contracts int
	// Outstanding is each driver's closed-loop depth (default 8).
	Outstanding int
	// CrossPct of calls target a uniformly random contract instead of one
	// from the caller's own community (whose contracts the policy will
	// eventually park on the caller's home chain).
	CrossPct float64
	// ShardCapacity caps per-block transactions, making the single home
	// shard the bottleneck the policy can relieve (default 60, as in the
	// rebalance workload).
	ShardCapacity int
	// Policy enables the migration engine; off is the hot-shard baseline.
	Policy bool
	// Interval is the policy tick (default 20 s).
	Interval time.Duration
	// Warmup runs traffic (and the policy) before measurement starts: the
	// congested start stacks a deep backlog on the hot shard, and draining
	// it is a transient that would otherwise dominate the window at high
	// chain counts.
	Warmup time.Duration
	// Duration is the measured window (default 4 min).
	Duration time.Duration
	// ParallelTick selects the parallel per-tick driver; results are
	// bit-identical either way.
	ParallelTick bool
	// TickWorkers bounds the parallel driver's pool (0 = GOMAXPROCS).
	TickWorkers int
	Seed        int64
}

// DefaultShardedScalingConfig returns the grid cell for one chain count.
func DefaultShardedScalingConfig(chains int, policy bool) ShardedScalingConfig {
	return ShardedScalingConfig{
		Chains:        chains,
		Users:         1000 * chains,
		ActiveUsers:   4 * chains,
		Contracts:     2 * chains,
		Outstanding:   8,
		CrossPct:      0.1,
		ShardCapacity: 60,
		Policy:        policy,
		Interval:      20 * time.Second,
		Warmup:        3 * time.Minute,
		Duration:      4 * time.Minute,
		ParallelTick:  true,
		Seed:          31,
	}
}

// ShardedScalingResult reports one scaling run.
type ShardedScalingResult struct {
	Config ShardedScalingConfig
	// Committed counts successful contract calls inside the window;
	// Throughput is their rate over simulated time.
	Committed  uint64
	Throughput float64
	// Moves summarizes the engine's activity (zero with Policy off).
	Moves shard.Stats
	// FinalSpread is how many distinct chains host a contract at the end.
	FinalSpread int
	// PerChain is each shard's final block height, in configuration order.
	PerChain []uint64
	// Wall is the run's wall-clock cost (the parallel-tick speedup
	// numerator/denominator).
	Wall time.Duration
	// Fingerprint reduces everything simulated to a comparable string:
	// identical across serial/parallel drivers and any GOMAXPROCS.
	Fingerprint string
}

// RunShardedScaling builds a laned S-shard universe with a keyed user
// population, deploys every contract on the first shard, drives closed-loop
// user traffic, and (with Policy on) lets the migration engine spread the
// contracts to their callers' chains. It reports committed throughput and a
// determinism fingerprint.
func RunShardedScaling(cfg ShardedScalingConfig) (*ShardedScalingResult, error) {
	if cfg.Chains < 2 {
		return nil, fmt.Errorf("workload: sharded scaling needs at least two chains")
	}
	if cfg.ActiveUsers <= 0 {
		cfg.ActiveUsers = 4 * cfg.Chains
	}
	if cfg.Contracts <= 0 {
		cfg.Contracts = 2 * cfg.Chains
	}
	if cfg.Outstanding <= 0 {
		cfg.Outstanding = 8
	}
	if cfg.ShardCapacity <= 0 {
		cfg.ShardCapacity = 60
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 20 * time.Second
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 4 * time.Minute
	}
	if cfg.Users < cfg.ActiveUsers {
		cfg.Users = cfg.ActiveUsers
	}

	ucfg := universe.ShardedScaleConfig(cfg.Chains, cfg.Validators, cfg.Users)
	ucfg.Clients = cfg.Contracts // one deployer/owner client per contract
	// Active drivers submit wherever their contracts live, so they carry
	// gas money on every chain — the bulk population stays funded only at
	// home, which is what keeps provisioning linear.
	driverAddrs := make([]hashing.Address, cfg.ActiveUsers)
	for i := range driverAddrs {
		driverAddrs[i] = universe.UserKey(i).Address()
	}
	ucfg.ExtraGenesis = func(_ hashing.ChainID, db *state.DB) {
		for _, a := range driverAddrs {
			db.AddBalance(a, u256.FromUint64(1<<50))
		}
	}
	ucfg.ParallelTick = cfg.ParallelTick
	ucfg.TickWorkers = cfg.TickWorkers
	for i := range ucfg.Specs {
		ucfg.Specs[i].Config.MaxBlockTxs = cfg.ShardCapacity
	}
	wallStart := time.Now()
	u, err := universe.New(ucfg)
	if err != nil {
		return nil, err
	}
	defer u.Close()
	u.Start()

	res := &ShardedScalingResult{Config: cfg}
	order := u.ChainIDs()
	home := order[0]
	hot := u.Chain(home)

	// Deploy every contract on the home shard in one batched round: all
	// creates enter the pool together (per-sender nonce chains keep them
	// orderable) and commit within a few blocks.
	addrs := make([]hashing.Address, cfg.Contracts)
	owners := make([]*relay.Client, cfg.Contracts)
	{
		txids := make([]hashing.Hash, cfg.Contracts)
		for k := range addrs {
			owners[k] = u.Client(k)
			tx, err := owners[k].SignedCreate(hot,
				evm.NativeDeployment(contracts.StoreName,
					contracts.StoreConstructorArgs(owners[k].Address(), 1)), u256.Zero())
			if err != nil {
				return nil, err
			}
			owners[k].SubmitSigned(hot, tx)
			txids[k] = tx.ID()
		}
		ok := u.RunUntil(func() bool {
			for _, id := range txids {
				if _, found := hot.Receipt(id); !found {
					return false
				}
			}
			return true
		}, 10*time.Minute)
		if !ok {
			return nil, fmt.Errorf("workload: contract deployment timed out")
		}
		for k, id := range txids {
			rec, _ := hot.Receipt(id)
			if !rec.Succeeded() {
				return nil, fmt.Errorf("workload: deploy %d failed: %s", k, rec.Err)
			}
			addrs[k] = rec.Created
		}
	}

	// Active users: clients over re-derived keys, plus the caller-home map
	// the affinity policy resolves senders against.
	drivers := make([]*relay.Client, cfg.ActiveUsers)
	homes := make(map[hashing.Address]hashing.ChainID, cfg.ActiveUsers)
	for i := range drivers {
		drivers[i] = u.UserClient(i)
		homes[drivers[i].Address()] = u.UserHome(i)
	}

	// The migration engine (policy on) or a static locator (policy off).
	loc := func(k int) hashing.ChainID { return home }
	var eng *shard.Engine
	if cfg.Policy {
		ecfg := shard.Config{
			Clock: u.Sched,
			Mover: u.Mover,
			Home: func(addr hashing.Address) (hashing.ChainID, bool) {
				h, ok := homes[addr]
				return h, ok
			},
			Interval: cfg.Interval,
			Policy: &shard.Hysteresis{
				Inner: &shard.Greedy{
					Affinity:  true,
					Dominance: 0.5,
					MinTxs:    2,
					Capacity:  2 * cfg.ShardCapacity,
					MaxMoves:  16,
				},
				Sustain:  2,
				Cooldown: 3,
			},
			Counters: u.Counters(),
			Registry: u.Metrics(),
		}
		for _, id := range u.ChainIDs() {
			ecfg.Chains = append(ecfg.Chains, u.Chain(id))
		}
		eng = shard.New(ecfg)
		for k, addr := range addrs {
			eng.Track(addr, home, owners[k])
		}
		eng.Start()
		loc = func(k int) hashing.ChainID { return eng.Location(addrs[k]) }
	}

	// Closed-loop drivers. User i's community is the contracts k ≡ i mod S:
	// their callers all live on chain order[k mod S], which is where the
	// affinity policy will eventually park them. CrossPct of calls go to a
	// uniformly random contract instead.
	startAt := u.Sched.Now() + cfg.Warmup
	endAt := startAt + cfg.Duration
	var committed uint64
	S := cfg.Chains
	for i := range drivers {
		i := i
		cl := drivers[i]
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		var fire func()
		fire = func() {
			if u.Sched.Now() >= endAt {
				return
			}
			k := i%S + S*rng.Intn(cfg.Contracts/S)
			if cfg.CrossPct > 0 && rng.Float64() < cfg.CrossPct {
				k = rng.Intn(cfg.Contracts)
			}
			if eng != nil && eng.IsMoving(addrs[k]) {
				// The contract is locked mid-move; don't burn block space on
				// a call that must fail.
				u.Sched.After(time.Second, fire)
				return
			}
			c := u.Chain(loc(k))
			txid, err := cl.Call(c, addrs[k],
				contracts.EncodeCall("get", contracts.ArgUint(0)), u256.Zero())
			if err != nil {
				// Submission refused (e.g. pool full): back off and retry.
				u.Sched.After(time.Second, fire)
				return
			}
			c.NotifyTx(txid, func(rec *types.Receipt, _ *types.Block) {
				if now := u.Sched.Now(); rec.Succeeded() && now > startAt && now <= endAt {
					committed++
				}
				fire()
			})
		}
		for n := 0; n < cfg.Outstanding; n++ {
			fire()
		}
	}

	u.RunUntil(func() bool { return u.Sched.Now() >= endAt }, cfg.Warmup+cfg.Duration+time.Minute)
	if eng != nil {
		// Let in-flight migrations settle before reading final locations.
		u.RunUntil(func() bool { return eng.Moving() == 0 }, 10*time.Minute)
		res.Moves = eng.Stats()
		eng.Stop()
	}

	res.Committed = committed
	res.Throughput = float64(committed) / cfg.Duration.Seconds()
	spread := make(map[hashing.ChainID]bool)
	for k := range addrs {
		spread[loc(k)] = true
	}
	res.FinalSpread = len(spread)
	for _, id := range order {
		res.PerChain = append(res.PerChain, u.Chain(id).Head().Height)
	}
	res.Wall = time.Since(wallStart)
	res.Fingerprint = shardedFingerprint(u, res, addrs, loc)
	return res, nil
}

// shardedFingerprint reduces the run to everything simulated: committed
// count, per-chain heights and state roots, final contract locations, move
// stats, and the deterministic counters. Process-level caches and
// intra-block executor stats (sendercache.*, parallel.*, schedule.*) are
// excluded — they vary with GOMAXPROCS without affecting simulated results.
func shardedFingerprint(u *universe.Universe, res *ShardedScalingResult,
	addrs []hashing.Address, loc func(int) hashing.ChainID) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "committed=%d moves=%d/%d/%d\n",
		res.Committed, res.Moves.Issued, res.Moves.Completed, res.Moves.Failed)
	for i, id := range u.ChainIDs() {
		h := u.Chain(id).Head()
		fmt.Fprintf(&sb, "chain %s h=%d root=%s\n", id, res.PerChain[i], h.StateRoot)
	}
	for k := range addrs {
		fmt.Fprintf(&sb, "loc %d=%s\n", k, loc(k))
	}
	snap := u.Counters().Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		if strings.HasPrefix(name, "sendercache.") ||
			strings.HasPrefix(name, "parallel.") ||
			strings.HasPrefix(name, "schedule.") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "%s=%d\n", name, snap[name])
	}
	return sb.String()
}
