package workload

import (
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestKittiesReplayCrossGOMAXPROCSDeterminism replays the same seeded trace
// serially and with the parallel signing/recovery/commit pipeline enabled,
// and requires identical simulated outcomes: deferred signing fixes tx ids
// before any event can order on them, sender recovery and subtree hashing
// land by input position, so parallelism may only change wall clock.
func TestKittiesReplayCrossGOMAXPROCSDeterminism(t *testing.T) {
	run := func(procs int) *KittiesResult {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		res, err := RunKitties(KittiesConfig{
			Shards: 2, Users: 8, PromoCats: 30, Breeds: 60,
			LocalityBias: 0.9, OutstandingLimit: 100, Seed: 11, MaxDuration: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	want := run(1)
	for _, procs := range []int{2, runtime.NumCPU()} {
		got := run(procs)
		if got.Throughput != want.Throughput || got.SimDuration != want.SimDuration {
			t.Fatalf("GOMAXPROCS=%d: throughput %v/%v, duration %v/%v",
				procs, got.Throughput, want.Throughput, got.SimDuration, want.SimDuration)
		}
		if got.TxsCommitted != want.TxsCommitted || got.OpsCompleted != want.OpsCompleted ||
			got.FailedOps != want.FailedOps || got.CrossRate != want.CrossRate {
			t.Fatalf("GOMAXPROCS=%d: counts diverge: %+v vs %+v", procs, got, want)
		}
		if !reflect.DeepEqual(got.Timeline.Series(), want.Timeline.Series()) {
			t.Fatalf("GOMAXPROCS=%d: committed-tx timeline diverges", procs)
		}
		if !reflect.DeepEqual(got.StarvedAt, want.StarvedAt) {
			t.Fatalf("GOMAXPROCS=%d: starvation markers diverge", procs)
		}
	}
}
