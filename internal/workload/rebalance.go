package workload

import (
	"fmt"
	"time"

	"scmove/internal/contracts"
	"scmove/internal/core"
	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/relay"
	"scmove/internal/types"
	"scmove/internal/u256"
	"scmove/internal/universe"
)

// RebalanceConfig parameterizes the load-balancing extension: the paper's
// conclusion names "decentralized load balancing smart contracts for
// sharded blockchains" as the natural next step on top of the Move
// primitive (§X); this workload implements and measures a centralized
// version of that policy.
type RebalanceConfig struct {
	Shards int
	// Contracts are deployed (all on shard 1, the hot spot) and hammered by
	// one closed-loop client each.
	Contracts int
	// Interval is how often the rebalancer inspects shard load.
	Interval time.Duration
	// Duration is the measured window.
	Duration time.Duration
	// Enabled turns the rebalancer on; with it off the run is the
	// hot-shard baseline.
	Enabled bool
	Seed    int64
	// ShardCapacity models the per-block execution budget (as in the
	// kitties replay).
	ShardCapacity int
}

// DefaultRebalanceConfig returns the demo configuration.
func DefaultRebalanceConfig(shards int, enabled bool) RebalanceConfig {
	return RebalanceConfig{
		Shards:    shards,
		Contracts: 120,
		Interval:  30 * time.Second,
		Duration:  6 * time.Minute,
		Enabled:   enabled,
		Seed:      21,
		// Low per-block capacity makes the single hot shard the bottleneck
		// (the §IV-B congestion scenario); spreading contracts then pays.
		ShardCapacity: 60,
	}
}

// RebalanceResult reports the run.
type RebalanceResult struct {
	Config RebalanceConfig
	// Throughput is committed successful txs/s over the window.
	Throughput float64
	// Timeline shows throughput recovering as contracts spread out.
	Timeline *metrics.Timeline
	// MovesIssued counts rebalancing migrations.
	MovesIssued int
	// FinalDistribution is the contract count per shard at the end.
	FinalDistribution map[hashing.ChainID]int
}

// rebalanceState tracks one managed contract.
type rebalanceContract struct {
	addr   hashing.Address
	shard  hashing.ChainID
	moving bool
	owner  *relay.Client
}

// RunRebalance measures a hot shard with and without Move-based load
// balancing: all contracts start on shard 1; the rebalancer migrates
// contracts from the most- to the least-loaded shard every Interval.
func RunRebalance(cfg RebalanceConfig) (*RebalanceResult, error) {
	if cfg.Shards < 2 {
		return nil, fmt.Errorf("workload: rebalancing needs at least two shards")
	}
	ucfg := universe.ShardedConfig(cfg.Shards, cfg.Contracts+1)
	for i := range ucfg.Specs {
		ucfg.Specs[i].Config.MaxBlockTxs = cfg.ShardCapacity
	}
	u, err := universe.New(ucfg)
	if err != nil {
		return nil, err
	}
	u.Start()

	res := &RebalanceResult{
		Config:            cfg,
		Timeline:          metrics.NewTimeline(30 * time.Second),
		FinalDistribution: make(map[hashing.ChainID]int),
	}

	// Deploy every contract on shard 1 (the congestion scenario of §IV-B:
	// "as shards get congested and fees increase, users are tempted to
	// move their contracts to underused shards").
	cts := make([]*rebalanceContract, cfg.Contracts)
	hot := u.Chain(1)
	for i := range cts {
		cl := u.Client(i)
		addr, err := u.MustDeploy(cl, hot, contracts.StoreName,
			contracts.StoreConstructorArgs(cl.Address(), 1), u256.Zero(), 20*time.Minute)
		if err != nil {
			return nil, err
		}
		cts[i] = &rebalanceContract{addr: addr, shard: 1, owner: cl}
	}

	startAt := u.Sched.Now()
	endAt := startAt + cfg.Duration
	for s := 0; s < cfg.Shards; s++ {
		c := u.Chain(hashing.ChainID(s + 1))
		c.OnBlock(func(_ *types.Block, receipts []*types.Receipt) {
			now := u.Sched.Now()
			if now < startAt || now > endAt {
				return
			}
			good := 0
			for _, rec := range receipts {
				if rec.Succeeded() {
					good++
				}
			}
			res.Timeline.Record(now-startAt, good)
		})
	}

	// Closed-loop writers, one per contract.
	var drive func(ct *rebalanceContract, i uint64)
	drive = func(ct *rebalanceContract, i uint64) {
		if u.Sched.Now() >= endAt {
			return
		}
		if ct.moving {
			u.Sched.After(time.Second, func() { drive(ct, i) })
			return
		}
		c := u.Chain(ct.shard)
		var v [32]byte
		v[31] = byte(i%250) + 1
		txid, err := ct.owner.Call(c, ct.addr,
			contracts.EncodeCall("set", contracts.ArgUint(0), contracts.ArgWord(v)), u256.Zero())
		if err != nil {
			return
		}
		c.NotifyTx(txid, func(*types.Receipt, *types.Block) { drive(ct, i+1) })
	}
	for _, ct := range cts {
		drive(ct, 0)
	}

	// The rebalancer: every Interval, move one batch of contracts from the
	// most-loaded shard to the least-loaded one.
	if cfg.Enabled {
		var tick func()
		tick = func() {
			if u.Sched.Now() >= endAt {
				return
			}
			counts := make(map[hashing.ChainID]int, cfg.Shards)
			for _, ct := range cts {
				counts[ct.shard]++
			}
			hotID, coldID := hashing.ChainID(1), hashing.ChainID(1)
			for s := 0; s < cfg.Shards; s++ {
				id := hashing.ChainID(s + 1)
				if counts[id] > counts[hotID] {
					hotID = id
				}
				if counts[id] < counts[coldID] {
					coldID = id
				}
			}
			// Move enough contracts to halve the imbalance, a few at a time.
			quota := (counts[hotID] - counts[coldID]) / 2
			if quota > 16 {
				quota = 16
			}
			for _, ct := range cts {
				if quota == 0 {
					break
				}
				if ct.shard != hotID || ct.moving {
					continue
				}
				quota--
				ct.moving = true
				dst := coldID
				res.MovesIssued++
				u.Mover(ct.shard, dst).Move(ct.owner, ct.addr, core.MoveToInput(dst),
					func(r *relay.MoveResult) {
						ct.moving = false
						if r.Err == nil {
							ct.shard = dst
						}
					})
			}
			u.Sched.After(cfg.Interval, tick)
		}
		u.Sched.After(cfg.Interval, tick)
	}

	u.RunUntil(func() bool { return u.Sched.Now() >= endAt+time.Minute }, cfg.Duration+20*time.Minute)
	res.Throughput = float64(res.Timeline.Total()) / cfg.Duration.Seconds()
	for _, ct := range cts {
		res.FinalDistribution[ct.shard]++
	}
	return res, nil
}
