package workload

import (
	"fmt"
	"time"

	"scmove/internal/contracts"
	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/relay"
	"scmove/internal/shard"
	"scmove/internal/types"
	"scmove/internal/u256"
	"scmove/internal/universe"
)

// RebalanceConfig parameterizes the load-balancing extension: the paper's
// conclusion names "decentralized load balancing smart contracts for
// sharded blockchains" as the natural next step on top of the Move
// primitive (§X); this workload drives the shard.Engine's load-shedding
// policy against a congested shard and measures the recovery.
type RebalanceConfig struct {
	Shards int
	// Contracts are deployed (all on shard 1, the hot spot) and hammered by
	// one closed-loop client each.
	Contracts int
	// Interval is how often the rebalancer inspects shard load.
	Interval time.Duration
	// Duration is the measured window.
	Duration time.Duration
	// Enabled turns the rebalancer on; with it off the run is the
	// hot-shard baseline.
	Enabled bool
	Seed    int64
	// ShardCapacity models the per-block execution budget (as in the
	// kitties replay).
	ShardCapacity int
}

// DefaultRebalanceConfig returns the demo configuration.
func DefaultRebalanceConfig(shards int, enabled bool) RebalanceConfig {
	return RebalanceConfig{
		Shards:    shards,
		Contracts: 120,
		Interval:  30 * time.Second,
		Duration:  6 * time.Minute,
		Enabled:   enabled,
		Seed:      21,
		// Low per-block capacity makes the single hot shard the bottleneck
		// (the §IV-B congestion scenario); spreading contracts then pays.
		ShardCapacity: 60,
	}
}

// RebalanceResult reports the run.
type RebalanceResult struct {
	Config RebalanceConfig
	// Throughput is committed successful txs/s over the window.
	Throughput float64
	// Timeline shows throughput recovering as contracts spread out.
	Timeline *metrics.Timeline
	// MovesIssued counts rebalancing migrations.
	MovesIssued int
	// FinalDistribution is the contract count per shard at the end.
	FinalDistribution map[hashing.ChainID]int
}

// rebalanceContract tracks one managed contract.
type rebalanceContract struct {
	addr  hashing.Address
	owner *relay.Client
}

// RunRebalance measures a hot shard with and without Move-based load
// balancing: all contracts start on shard 1; the shard.Engine's greedy
// load-shedding policy migrates contracts from the deepest transaction
// pool to the shallowest every Interval. This is the same engine and
// policy code path the scaling experiments run — the workload only differs
// in traffic shape.
func RunRebalance(cfg RebalanceConfig) (*RebalanceResult, error) {
	if cfg.Shards < 2 {
		return nil, fmt.Errorf("workload: rebalancing needs at least two shards")
	}
	ucfg := universe.ShardedConfig(cfg.Shards, cfg.Contracts+1)
	for i := range ucfg.Specs {
		ucfg.Specs[i].Config.MaxBlockTxs = cfg.ShardCapacity
	}
	u, err := universe.New(ucfg)
	if err != nil {
		return nil, err
	}
	u.Start()

	res := &RebalanceResult{
		Config:            cfg,
		Timeline:          metrics.NewTimeline(30 * time.Second),
		FinalDistribution: make(map[hashing.ChainID]int),
	}

	// Deploy every contract on shard 1 (the congestion scenario of §IV-B:
	// "as shards get congested and fees increase, users are tempted to
	// move their contracts to underused shards").
	cts := make([]*rebalanceContract, cfg.Contracts)
	hot := u.Chain(1)
	for i := range cts {
		cl := u.Client(i)
		addr, err := u.MustDeploy(cl, hot, contracts.StoreName,
			contracts.StoreConstructorArgs(cl.Address(), 1), u256.Zero(), 20*time.Minute)
		if err != nil {
			return nil, err
		}
		cts[i] = &rebalanceContract{addr: addr, owner: cl}
	}

	startAt := u.Sched.Now()
	endAt := startAt + cfg.Duration
	for s := 0; s < cfg.Shards; s++ {
		c := u.Chain(hashing.ChainID(s + 1))
		c.OnBlock(func(_ *types.Block, receipts []*types.Receipt) {
			now := u.Sched.Now()
			if now < startAt || now > endAt {
				return
			}
			good := 0
			for _, rec := range receipts {
				if rec.Succeeded() {
					good++
				}
			}
			res.Timeline.Record(now-startAt, good)
		})
	}

	// The rebalancer is the shared migration engine under its pure
	// load-shedding policy (no caller-home affinity — the clients here are
	// not homed anywhere).
	var eng *shard.Engine
	loc := func(ct *rebalanceContract) hashing.ChainID { return 1 }
	if cfg.Enabled {
		ecfg := shard.Config{
			Clock:    u.Sched,
			Mover:    u.Mover,
			Interval: cfg.Interval,
			Policy:   &shard.Greedy{Capacity: cfg.ShardCapacity, MaxMoves: 16},
			Counters: u.Counters(),
			Registry: u.Metrics(),
		}
		for _, id := range u.ChainIDs() {
			ecfg.Chains = append(ecfg.Chains, u.Chain(id))
		}
		eng = shard.New(ecfg)
		for _, ct := range cts {
			eng.Track(ct.addr, 1, ct.owner)
		}
		eng.Start()
		loc = func(ct *rebalanceContract) hashing.ChainID { return eng.Location(ct.addr) }
	}

	// Closed-loop writers, one per contract; traffic follows the contract
	// and pauses while it is mid-move.
	var drive func(ct *rebalanceContract, i uint64)
	drive = func(ct *rebalanceContract, i uint64) {
		if u.Sched.Now() >= endAt {
			return
		}
		if eng != nil && eng.IsMoving(ct.addr) {
			u.Sched.After(time.Second, func() { drive(ct, i) })
			return
		}
		c := u.Chain(loc(ct))
		var v [32]byte
		v[31] = byte(i%250) + 1
		txid, err := ct.owner.Call(c, ct.addr,
			contracts.EncodeCall("set", contracts.ArgUint(0), contracts.ArgWord(v)), u256.Zero())
		if err != nil {
			return
		}
		c.NotifyTx(txid, func(*types.Receipt, *types.Block) { drive(ct, i+1) })
	}
	for _, ct := range cts {
		drive(ct, 0)
	}

	u.RunUntil(func() bool { return u.Sched.Now() >= endAt+time.Minute }, cfg.Duration+20*time.Minute)
	res.Throughput = float64(res.Timeline.Total()) / cfg.Duration.Seconds()
	if eng != nil {
		res.MovesIssued = int(eng.Stats().Issued)
		eng.Stop()
	}
	for _, ct := range cts {
		res.FinalDistribution[loc(ct)]++
	}
	return res, nil
}
