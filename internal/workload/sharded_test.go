package workload

import (
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// TestShardedScalingCrossGOMAXPROCSDeterminism pins the parallel-tick
// driver's central claim: a 16-chain policy-on scaling cell produces a
// bit-identical fingerprint (state roots, contract locations, move stats,
// deterministic counters) whether ticks run serially or on the worker
// pool, at every GOMAXPROCS. Wired into `make detsmoke`.
func TestShardedScalingCrossGOMAXPROCSDeterminism(t *testing.T) {
	cell := func(parallel bool, procs int) string {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		cfg := DefaultShardedScalingConfig(16, true)
		cfg.Users = 320 // provisioning scale has its own gate (shardsmoke)
		cfg.Duration = 2 * time.Minute
		cfg.ParallelTick = parallel
		res, err := RunShardedScaling(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Moves.Completed == 0 {
			t.Fatal("cell completed no migrations; determinism check would be vacuous")
		}
		return res.Fingerprint
	}
	want := cell(false, 1)
	procs := []int{1, 2, runtime.NumCPU()}
	seen := map[int]bool{}
	for _, p := range procs {
		if seen[p] {
			continue
		}
		seen[p] = true
		if got := cell(true, p); got != want {
			t.Fatalf("parallel driver at GOMAXPROCS=%d diverged from serial:\nserial:\n%.800s\n\nparallel:\n%.800s", p, want, got)
		}
	}
}

// TestShardedScalingPolicyGain pins the experiment's headline: with every
// contract deployed on one congested shard, turning the migration engine
// on spreads contracts toward their callers and raises committed
// throughput.
func TestShardedScalingPolicyGain(t *testing.T) {
	run := func(policy bool) *ShardedScalingResult {
		cfg := DefaultShardedScalingConfig(4, policy)
		cfg.Users = 64
		cfg.Duration = 3 * time.Minute
		res, err := RunShardedScaling(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run(false)
	on := run(true)
	if off.FinalSpread != 1 {
		t.Fatalf("baseline spread = %d, want 1 (all contracts stay on the hot shard)", off.FinalSpread)
	}
	if on.Moves.Completed == 0 {
		t.Fatal("policy run completed no migrations")
	}
	if on.FinalSpread < 2 {
		t.Fatalf("policy run spread = %d, want >= 2", on.FinalSpread)
	}
	if on.Committed <= off.Committed {
		t.Fatalf("policy gain = %d/%d <= 1; migration should relieve the hot shard",
			on.Committed, off.Committed)
	}
	t.Logf("policy gain %.2f (%d vs %d committed), %d moves, spread %d",
		float64(on.Committed)/float64(off.Committed), on.Committed, off.Committed,
		on.Moves.Completed, on.FinalSpread)
}

// TestShardSmoke is the full-scale gate behind `make shardsmoke`: a
// 64-chain universe with a 100k keyed-user population (SCMOVE_SHARDSMOKE_USERS
// scales it up to the 1M target), lazy relay mesh, parallel-tick driver, and
// the migration engine live. The run must complete with migrations landing.
func TestShardSmoke(t *testing.T) {
	if os.Getenv("SCMOVE_SHARDSMOKE") == "" {
		t.Skip("set SCMOVE_SHARDSMOKE=1 (make shardsmoke) to run")
	}
	users := 100_000
	if s := os.Getenv("SCMOVE_SHARDSMOKE_USERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad SCMOVE_SHARDSMOKE_USERS %q", s)
		}
		users = n
	}
	cfg := DefaultShardedScalingConfig(64, true)
	cfg.Users = users
	cfg.Duration = 3 * time.Minute
	res, err := RunShardedScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	if res.Moves.Completed == 0 {
		t.Fatal("policy completed no migrations at 64 chains")
	}
	if res.FinalSpread < 2 {
		t.Fatalf("contracts never left the hot shard (spread %d)", res.FinalSpread)
	}
	t.Logf("64 chains, %d users: %d committed (%.1f tx/s sim), %d/%d moves, spread %d, wall %s",
		users, res.Committed, res.Throughput, res.Moves.Completed, res.Moves.Issued,
		res.FinalSpread, res.Wall.Round(time.Millisecond))
}
