package workload

import (
	"math/rand"
	"testing"
	"time"
)

func TestSCoinControlledTwoShards(t *testing.T) {
	res, err := RunSCoin(SCoinConfig{
		Shards: 2, ClientsPerShard: 20, ReceiversPerShard: 4,
		CrossFraction: 0.10, Duration: 2 * time.Minute, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedOps != 0 {
		t.Fatalf("failed ops = %d", res.FailedOps)
	}
	if res.Throughput <= 0 || res.OpsPerSec <= 0 {
		t.Fatalf("throughput = %v ops/s = %v", res.Throughput, res.OpsPerSec)
	}
	// The realized cross rate tracks the configured one.
	if res.MeasuredCrossFraction < 0.03 || res.MeasuredCrossFraction > 0.25 {
		t.Fatalf("cross fraction = %v, want ≈0.10", res.MeasuredCrossFraction)
	}
	// Paper §VII-B: single-shard ≈7 s, cross-shard ≈34 s — cross is the
	// five-block sequence (Move1 + two-block proof wait + Move2 + transfer).
	single, cross := res.Single.Mean(), res.Cross.Mean()
	if single < 3*time.Second || single > 12*time.Second {
		t.Errorf("single-shard mean = %v, want ≈7 s", single)
	}
	if cross < 20*time.Second || cross > 50*time.Second {
		t.Errorf("cross-shard mean = %v, want ≈34 s", cross)
	}
	if cross < 3*single {
		t.Errorf("cross (%v) must be several times single (%v)", cross, single)
	}
}

func TestSCoinSingleShardHasNoCrossOps(t *testing.T) {
	res, err := RunSCoin(SCoinConfig{
		Shards: 1, ClientsPerShard: 10, ReceiversPerShard: 4,
		CrossFraction: 0.30, Duration: time.Minute, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cross.Len() != 0 || res.MeasuredCrossFraction != 0 {
		t.Fatal("one shard cannot have cross-shard operations")
	}
	if res.Single.Len() == 0 {
		t.Fatal("single-shard ops must complete")
	}
}

func TestSCoinThroughputGrowsWithShards(t *testing.T) {
	run := func(shards int) float64 {
		res, err := RunSCoin(SCoinConfig{
			Shards: shards, ClientsPerShard: 15, ReceiversPerShard: 4,
			CrossFraction: 0.05, Duration: 2 * time.Minute, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	t1, t4 := run(1), run(4)
	// Fig. 6's headline: throughput grows with the shard count.
	if t4 < 2.5*t1 {
		t.Fatalf("4 shards (%.1f tx/s) must far exceed 1 shard (%.1f tx/s)", t4, t1)
	}
}

func TestSCoinRetriesSkew(t *testing.T) {
	res, err := RunSCoin(SCoinConfig{
		Shards: 4, ClientsPerShard: 25, ReceiversPerShard: 4,
		CrossFraction: 0.10, Duration: 3 * time.Minute, Retries: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedOps != 0 {
		t.Fatalf("abandoned ops = %d", res.FailedOps)
	}
	total := 0
	for _, n := range res.RetryCounts {
		total += n
	}
	if total == 0 {
		t.Fatal("conflict mode must produce retries")
	}
	// §VII-B1: the retry distribution is highly skewed — most retried
	// operations retried exactly once.
	if res.RetryCounts[1]*2 < total {
		t.Errorf("retry skew: once=%d of %d (%v)", res.RetryCounts[1], total, res.RetryCounts)
	}
	// Conflict mode has strictly higher latency than the oracle mode would
	// (Fig. 7 left vs right): sanity floor only.
	if res.All.Mean() < res.Single.Mean() {
		t.Error("latency accounting inconsistent")
	}
}

func TestKittiesReplayCompletes(t *testing.T) {
	res, err := RunKitties(KittiesConfig{
		Shards: 2, Users: 16, PromoCats: 60, Breeds: 150,
		LocalityBias: 0.93, OutstandingLimit: 100, Seed: 5, MaxDuration: 2 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedOps != 0 {
		t.Fatalf("failed ops = %d", res.FailedOps)
	}
	if res.OpsCompleted != res.PlannedOps {
		t.Fatalf("ops completed = %d of %d", res.OpsCompleted, res.PlannedOps)
	}
	if res.PlannedOps < 150 {
		t.Fatalf("planned ops = %d, trace too small", res.PlannedOps)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput must be positive")
	}
	// Every replayed transaction succeeded (the paper's requirement).
	if res.CrossRate <= 0 || res.CrossRate > 0.5 {
		t.Fatalf("cross rate = %v", res.CrossRate)
	}
}

func TestKittiesSingleShardHasNoCrossBreeds(t *testing.T) {
	res, err := RunKitties(KittiesConfig{
		Shards: 1, Users: 8, PromoCats: 30, Breeds: 60,
		LocalityBias: 0.9, OutstandingLimit: 100, Seed: 6, MaxDuration: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossRate != 0 {
		t.Fatalf("cross rate on one shard = %v", res.CrossRate)
	}
}

func TestSynthesizeDAGProperties(t *testing.T) {
	cfg := KittiesConfig{Shards: 4, Users: 20, PromoCats: 100, Breeds: 400, LocalityBias: 0.9}
	rng := rand.New(rand.NewSource(1))
	ops, cats := synthesize(cfg, rng)

	if len(ops) < cfg.PromoCats {
		t.Fatal("all promos must be emitted")
	}
	// Dependencies always point backwards: the DAG is acyclic by id order.
	for _, op := range ops {
		for _, dep := range op.dependents {
			if dep <= op.id {
				t.Fatalf("dependent %d not after op %d", dep, op.id)
			}
		}
	}
	// No breed pairs siblings or parent-child (the replay must succeed).
	for _, op := range ops {
		if op.kind != opBreed {
			continue
		}
		if related(cats, op.catA, op.catB) || op.catA == op.catB {
			t.Fatalf("op %d breeds related cats", op.id)
		}
	}
	// Children record their parents.
	for i := cfg.PromoCats; i < len(cats); i++ {
		if cats[i].parents[0] < 0 || cats[i].parents[1] < 0 {
			t.Fatalf("child %d has no parents", i)
		}
	}
	// Determinism: same seed, same trace.
	ops2, _ := synthesize(cfg, rand.New(rand.NewSource(1)))
	if len(ops2) != len(ops) {
		t.Fatal("synthesis must be deterministic")
	}
}

func TestSCoinRejectsBadConfig(t *testing.T) {
	if _, err := RunSCoin(SCoinConfig{Shards: 0}); err == nil {
		t.Fatal("zero shards must be rejected")
	}
	if _, err := RunKitties(KittiesConfig{Shards: 0}); err == nil {
		t.Fatal("zero shards must be rejected")
	}
}

func TestRebalancerSpreadsLoadAndRaisesThroughput(t *testing.T) {
	run := func(enabled bool) *RebalanceResult {
		res, err := RunRebalance(RebalanceConfig{
			Shards: 4, Contracts: 120, Interval: 20 * time.Second,
			Duration: 5 * time.Minute, Enabled: enabled, Seed: 21, ShardCapacity: 60,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(false)
	bal := run(true)
	// The paper's §IV-B scenario: moving contracts off the congested shard
	// must recover throughput.
	if bal.Throughput < 1.3*base.Throughput {
		t.Errorf("rebalanced %.1f tx/s must clearly beat hot-shard %.1f tx/s",
			bal.Throughput, base.Throughput)
	}
	if bal.MovesIssued == 0 {
		t.Error("rebalancer must issue moves")
	}
	// Contracts end up spread across shards.
	if len(bal.FinalDistribution) < 3 {
		t.Errorf("distribution = %v", bal.FinalDistribution)
	}
	if len(base.FinalDistribution) != 1 {
		t.Errorf("baseline must stay on one shard: %v", base.FinalDistribution)
	}
}
