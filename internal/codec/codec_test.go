package codec

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"scmove/internal/hashing"
)

func TestRoundTripAllTypes(t *testing.T) {
	w := NewWriter(64)
	w.WriteUvarint(300)
	w.WriteUint64(1 << 40)
	w.WriteBool(true)
	w.WriteBool(false)
	w.WriteBytes([]byte{1, 2, 3})
	w.WriteString("hello")
	h := hashing.Sum([]byte("h"))
	w.WriteHash(h)
	var a hashing.Address
	a[0] = 0xaa
	w.WriteAddress(a)
	var word [32]byte
	word[31] = 7
	w.WriteWord(word)

	r := NewReader(w.Bytes())
	if got := r.ReadUvarint(); got != 300 {
		t.Errorf("uvarint = %d", got)
	}
	if got := r.ReadUint64(); got != 1<<40 {
		t.Errorf("uint64 = %d", got)
	}
	if !r.ReadBool() || r.ReadBool() {
		t.Error("bool round-trip failed")
	}
	if got := r.ReadBytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("bytes = %x", got)
	}
	if got := r.ReadString(); got != "hello" {
		t.Errorf("string = %q", got)
	}
	if got := r.ReadHash(); got != h {
		t.Errorf("hash = %s", got)
	}
	if got := r.ReadAddress(); got != a {
		t.Errorf("address = %s", got)
	}
	if got := r.ReadWord(); got != word {
		t.Errorf("word = %x", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedInput(t *testing.T) {
	w := NewWriter(8)
	w.WriteUint64(42)
	r := NewReader(w.Bytes()[:4])
	_ = r.ReadUint64()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", r.Err())
	}
}

func TestLengthPrefixOverflow(t *testing.T) {
	// A length prefix claiming more bytes than remain must not panic.
	w := NewWriter(8)
	w.WriteUvarint(1 << 30)
	r := NewReader(w.Bytes())
	if got := r.ReadBytes(); got != nil {
		t.Fatalf("expected nil, got %d bytes", len(got))
	}
	if !errors.Is(r.Err(), ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", r.Err())
	}
}

func TestErrorsStick(t *testing.T) {
	r := NewReader(nil)
	_ = r.ReadUint64() // fails
	_ = r.ReadBool()   // must stay failed, return zero
	if r.Err() == nil {
		t.Fatal("error must stick")
	}
}

func TestFinishDetectsTrailingBytes(t *testing.T) {
	w := NewWriter(4)
	w.WriteBool(true)
	w.WriteBool(true)
	r := NewReader(w.Bytes())
	_ = r.ReadBool()
	if err := r.Finish(); err == nil {
		t.Fatal("Finish must reject trailing bytes")
	}
}

func TestReadBytesReturnsCopy(t *testing.T) {
	w := NewWriter(8)
	w.WriteBytes([]byte{9, 9, 9})
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.ReadBytes()
	buf[1] = 0 // mutate underlying buffer
	if got[0] != 9 {
		t.Fatal("ReadBytes must return an independent copy")
	}
}

func TestPropertyBytesRoundTrip(t *testing.T) {
	f := func(chunks [][]byte) bool {
		w := NewWriter(64)
		for _, c := range chunks {
			w.WriteBytes(c)
		}
		r := NewReader(w.Bytes())
		for _, c := range chunks {
			got := r.ReadBytes()
			if len(got) != len(c) || (len(c) > 0 && !bytes.Equal(got, c)) {
				return false
			}
		}
		return r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUvarintRoundTrip(t *testing.T) {
	f := func(vs []uint64) bool {
		w := NewWriter(64)
		for _, v := range vs {
			w.WriteUvarint(v)
		}
		r := NewReader(w.Bytes())
		for _, v := range vs {
			if r.ReadUvarint() != v {
				return false
			}
		}
		return r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
