// Package codec implements the deterministic binary encoding used for
// everything that is hashed or proved: accounts, transactions, block
// headers, trie nodes, and Merkle proofs.
//
// The format is a simple length-prefixed concatenation (unsigned varints
// for integers and lengths). Determinism — the same logical value always
// encodes to the same bytes — is the only property the Move protocol needs
// from its wire format; this replaces RLP (Ethereum) and Amino (Burrow).
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"scmove/internal/hashing"
)

// Errors returned by the reader.
var (
	ErrTruncated = errors.New("codec: truncated input")
	ErrOverflow  = errors.New("codec: length prefix overflows input")
)

// Writer accumulates an encoding. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded bytes. The returned slice aliases the writer's
// buffer; callers must not retain it across further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// WriteUvarint appends an unsigned varint.
func (w *Writer) WriteUvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// WriteUint64 appends a fixed-width big-endian 64-bit integer.
func (w *Writer) WriteUint64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// WriteBool appends a boolean as a single byte.
func (w *Writer) WriteBool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// WriteBytes appends a length-prefixed byte string.
func (w *Writer) WriteBytes(b []byte) {
	w.WriteUvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// WriteString appends a length-prefixed string.
func (w *Writer) WriteString(s string) {
	w.WriteUvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// WriteHash appends a fixed-width hash.
func (w *Writer) WriteHash(h hashing.Hash) {
	w.buf = append(w.buf, h[:]...)
}

// WriteAddress appends a fixed-width address.
func (w *Writer) WriteAddress(a hashing.Address) {
	w.buf = append(w.buf, a[:]...)
}

// WriteWord appends a fixed 32-byte word.
func (w *Writer) WriteWord(word [32]byte) {
	w.buf = append(w.buf, word[:]...)
}

// Reader decodes an encoding produced by Writer.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps buf for decoding. The reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decode error encountered, if any. All read methods
// return zero values after an error, so callers may check once at the end.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(err error) { //nolint:unparam
	if r.err == nil {
		r.err = err
	}
}

// ReadUvarint reads an unsigned varint.
func (r *Reader) ReadUvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// ReadUint64 reads a fixed-width big-endian 64-bit integer.
func (r *Reader) ReadUint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// ReadBool reads a boolean byte.
func (r *Reader) ReadBool() bool {
	b := r.take(1)
	return b != nil && b[0] != 0
}

// ReadBytes reads a length-prefixed byte string, returning a copy.
//
// Allocation is bounded by the remaining input, never by the claimed
// length: a hostile 2^60 prefix fails with ErrOverflow before any memory
// proportional to the claim is touched. This invariant is what lets every
// decoder built on Reader face adversarial bytes safely.
func (r *Reader) ReadBytes() []byte {
	n := r.ReadUvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrOverflow)
		return nil
	}
	b := r.take(int(n))
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// ReadBytesMax reads a length-prefixed byte string whose length must not
// exceed max; longer claims fail with ErrOverflow before allocating.
// Decoders use it to enforce semantic field bounds (a signature, a code
// blob) on top of Reader's structural remaining-input bound.
func (r *Reader) ReadBytesMax(max int) []byte {
	if r.err != nil {
		return nil
	}
	// Peek the prefix without committing so the overflow error wins over a
	// misleading ErrTruncated from a partial read.
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return nil
	}
	if max >= 0 && v > uint64(max) {
		r.fail(ErrOverflow)
		return nil
	}
	return r.ReadBytes()
}

// CapCount bounds a claimed element count by what the remaining input could
// possibly hold, given a minimum encoded size per element. Decoders use it
// to size slice preallocations so a corrupted count prefix costs
// O(remaining), never O(claimed).
func (r *Reader) CapCount(claimed uint64, minEntrySize int) int {
	if minEntrySize < 1 {
		minEntrySize = 1
	}
	max := uint64(r.Remaining() / minEntrySize)
	if claimed > max {
		return int(max)
	}
	return int(claimed)
}

// ReadString reads a length-prefixed string.
func (r *Reader) ReadString() string { return string(r.ReadBytes()) }

// ReadHash reads a fixed-width hash.
func (r *Reader) ReadHash() hashing.Hash {
	b := r.take(hashing.HashSize)
	if b == nil {
		return hashing.Hash{}
	}
	return hashing.HashFromBytes(b)
}

// ReadAddress reads a fixed-width address.
func (r *Reader) ReadAddress() hashing.Address {
	b := r.take(hashing.AddressSize)
	if b == nil {
		return hashing.Address{}
	}
	var a hashing.Address
	copy(a[:], b)
	return a
}

// ReadWord reads a fixed 32-byte word.
func (r *Reader) ReadWord() [32]byte {
	var word [32]byte
	b := r.take(32)
	if b != nil {
		copy(word[:], b)
	}
	return word
}

// Finish returns an error unless the input was fully and cleanly consumed.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("codec: %d trailing bytes", r.Remaining())
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}
