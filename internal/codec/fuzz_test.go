package codec

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReaderRoundTrip encodes fuzz-chosen values with Writer and decodes
// them with Reader: the round trip must be lossless and Finish must report
// clean consumption.
func FuzzReaderRoundTrip(f *testing.F) {
	f.Add(uint64(0), true, []byte(nil), "")
	f.Add(uint64(1<<63), false, []byte{1, 2, 3}, "hello")
	f.Add(uint64(300), true, bytes.Repeat([]byte{0xAA}, 200), "varint boundary")
	f.Fuzz(func(t *testing.T, u uint64, b bool, blob []byte, s string) {
		w := NewWriter(32 + len(blob) + len(s))
		w.WriteUvarint(u)
		w.WriteUint64(u)
		w.WriteBool(b)
		w.WriteBytes(blob)
		w.WriteString(s)
		enc := w.Bytes()

		r := NewReader(enc)
		if got := r.ReadUvarint(); got != u {
			t.Fatalf("uvarint: %d != %d", got, u)
		}
		if got := r.ReadUint64(); got != u {
			t.Fatalf("uint64: %d != %d", got, u)
		}
		if got := r.ReadBool(); got != b {
			t.Fatalf("bool: %v != %v", got, b)
		}
		if got := r.ReadBytes(); !bytes.Equal(got, blob) {
			t.Fatalf("bytes: %x != %x", got, blob)
		}
		if got := r.ReadString(); got != s {
			t.Fatalf("string: %q != %q", got, s)
		}
		if err := r.Finish(); err != nil {
			t.Fatalf("finish: %v", err)
		}

		// Every strict prefix must fail — the encoding carries no padding.
		for cut := 0; cut < len(enc); cut++ {
			pr := NewReader(enc[:cut])
			pr.ReadUvarint()
			pr.ReadUint64()
			pr.ReadBool()
			pr.ReadBytes()
			pr.ReadString()
			if pr.Err() == nil && pr.Finish() == nil {
				t.Fatalf("prefix %d/%d decoded cleanly", cut, len(enc))
			}
		}
	})
}

// FuzzReaderHostile runs the full read API over arbitrary bytes: no input
// may panic, out-of-input reads must yield zero values with a sticky error,
// and no returned slice may exceed the input length (the allocation bound).
func FuzzReaderHostile(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0x80}) // incomplete varint
	f.Add(binary.AppendUvarint(nil, 1<<60))
	f.Add(append(binary.AppendUvarint(nil, 5), 1, 2, 3, 4, 5))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		if b := r.ReadBytes(); len(b) > len(data) {
			t.Fatalf("ReadBytes returned %d bytes from %d input", len(b), len(data))
		}
		if b := r.ReadBytesMax(16); len(b) > 16 {
			t.Fatalf("ReadBytesMax(16) returned %d bytes", len(b))
		}
		r.ReadUvarint()
		r.ReadUint64()
		r.ReadBool()
		r.ReadHash()
		r.ReadAddress()
		r.ReadWord()
		if n := r.CapCount(r.ReadUvarint(), 8); n > len(data) {
			t.Fatalf("CapCount %d exceeds input %d", n, len(data))
		}
		if r.Remaining() > len(data) {
			t.Fatalf("Remaining %d exceeds input %d", r.Remaining(), len(data))
		}
		_ = r.Finish()
	})
}
