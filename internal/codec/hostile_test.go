package codec

import (
	"encoding/binary"
	"errors"
	"runtime"
	"testing"
)

// TestReadBytesHostileLengthPrefix is the allocation-bound regression test:
// a length prefix claiming 2^60 bytes over a tiny input must fail with
// ErrOverflow without allocating anything proportional to the claim —
// allocation is O(remaining input), never O(claimed).
func TestReadBytesHostileLengthPrefix(t *testing.T) {
	hostile := binary.AppendUvarint(nil, 1<<60)
	hostile = append(hostile, "tiny"...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < 1000; i++ {
		r := NewReader(hostile)
		if b := r.ReadBytes(); b != nil {
			t.Fatalf("hostile prefix yielded %d bytes", len(b))
		}
		if !errors.Is(r.Err(), ErrOverflow) {
			t.Fatalf("err = %v, want ErrOverflow", r.Err())
		}
	}
	runtime.ReadMemStats(&after)
	// 1000 iterations of a claimed 2^60-byte read: if allocation scaled
	// with the claim this would be ~2^70 bytes. Allow generous slack for
	// the reader structs themselves.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Fatalf("hostile reads allocated %d bytes — allocation must be bounded by remaining input", grew)
	}
}

// TestReadBytesMaxHostilePrefix pins the same bound for the semantic-cap
// variant, in both failure orders: a claim above max fails with ErrOverflow
// even when the input could hold it, and a truncated prefix stays
// ErrTruncated.
func TestReadBytesMaxHostilePrefix(t *testing.T) {
	w := NewWriter(64)
	w.WriteBytes(make([]byte, 48))
	r := NewReader(w.Bytes())
	if b := r.ReadBytesMax(16); b != nil {
		t.Fatalf("over-max claim yielded %d bytes", len(b))
	}
	if !errors.Is(r.Err(), ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", r.Err())
	}

	r = NewReader(binary.AppendUvarint(nil, 1<<60))
	if b := r.ReadBytesMax(1 << 30); b != nil {
		t.Fatal("hostile claim above max yielded bytes")
	}
	if !errors.Is(r.Err(), ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", r.Err())
	}

	r = NewReader(nil)
	if b := r.ReadBytesMax(16); b != nil {
		t.Fatal("empty input yielded bytes")
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}
}

// TestCapCountBoundsPreallocation pins CapCount: claims are clamped to what
// the remaining input could possibly hold.
func TestCapCountBoundsPreallocation(t *testing.T) {
	r := NewReader(make([]byte, 64))
	if got := r.CapCount(1<<60, 16); got != 4 {
		t.Fatalf("CapCount(2^60, 16) over 64 bytes = %d, want 4", got)
	}
	if got := r.CapCount(2, 16); got != 2 {
		t.Fatalf("honest claim clamped: got %d, want 2", got)
	}
	if got := r.CapCount(1<<60, 0); got != 64 {
		t.Fatalf("CapCount with minEntrySize 0 = %d, want 64 (treated as 1)", got)
	}
}
