package simclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Timers scheduled through the ordinary scheduler API fire when the wall
// clock reaches them, and Posts from other goroutines interleave safely
// on the Run goroutine.
func TestRealtimeRunsTimersAndPosts(t *testing.T) {
	s := New()
	d := NewRealtime(s)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.Run(stop)
	}()

	var ticks atomic.Int32
	var reschedule func()
	fired := make(chan struct{}, 64)
	reschedule = func() {
		s.After(5*time.Millisecond, func() {
			ticks.Add(1)
			fired <- struct{}{}
			reschedule()
		})
	}
	// The timer chain must be planted via Post: Run owns the scheduler.
	d.Post(reschedule)

	var posted atomic.Int32
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 25; i++ {
				d.Post(func() { posted.Add(1) })
				time.Sleep(time.Millisecond)
			}
		}()
	}

	deadline := time.After(10 * time.Second)
	for ticks.Load() < 5 || posted.Load() < 100 {
		select {
		case <-fired:
		case <-time.After(20 * time.Millisecond):
		case <-deadline:
			t.Fatalf("ticks=%d posted=%d before deadline", ticks.Load(), posted.Load())
		}
	}
	close(stop)
	wg.Wait()
}

// Events execute serialized: two posted closures never run concurrently,
// which is what lets scheduler-driven components stay lock-free inside.
func TestRealtimeSerializesEvents(t *testing.T) {
	s := New()
	d := NewRealtime(s)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		d.Run(stop)
		close(done)
	}()

	var inside atomic.Int32
	var overlap atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d.Post(func() {
					if inside.Add(1) != 1 {
						overlap.Store(true)
					}
					inside.Add(-1)
				})
			}
		}()
	}
	wg.Wait()
	// Drain: post a sentinel and wait for it; all earlier posts ran first
	// (the scheduler is FIFO at equal times and wall time only grows).
	sentinel := make(chan struct{})
	d.Post(func() { close(sentinel) })
	select {
	case <-sentinel:
	case <-time.After(10 * time.Second):
		t.Fatal("sentinel never ran")
	}
	if overlap.Load() {
		t.Fatal("two events ran concurrently")
	}
	close(stop)
	<-done
}
