package simclock

import (
	"runtime"
	"sync"
	"time"
)

// Clock is the scheduling surface subsystems depend on. Both the Scheduler
// (global events) and a Lane (per-chain events) implement it, so a
// consensus cluster, WAN instance, or block producer can be wired onto
// either without knowing whether the universe is laned.
type Clock interface {
	Now() time.Duration
	NowUnix() uint64
	At(t time.Duration, fn func())
	After(d time.Duration, fn func())
}

// Lane is a per-chain scheduling handle. Events scheduled through a lane
// are tagged as confined to it: they touch only that lane's state (one
// chain, its consensus cluster, and its WAN instance) plus thread-safe
// commutative sinks such as counters. RunUntilParallel exploits the tag to
// execute same-timestamp events of distinct lanes concurrently; the plain
// serial driver ignores it, so a laned simulation runs bit-identically
// under either driver.
//
// A lane is owned by exactly one wave worker goroutine at a time; outside
// waves every method runs on the driver goroutine. Lane methods must only
// be called from that lane's own events (or from global contexts).
type Lane struct {
	s *Scheduler
	// curSlot is the batch-slot index of the lane event currently
	// executing; valid only while a wave is active. The wave worker sets it
	// before invoking each of the lane's events, so children scheduled
	// during the event land in the slot's staging buffer.
	curSlot int
}

// NewLane returns a fresh lane handle on this scheduler.
func (s *Scheduler) NewLane() *Lane {
	l := &Lane{s: s}
	s.lanes = append(s.lanes, l)
	return l
}

// Now returns the current simulated time.
func (l *Lane) Now() time.Duration { return l.s.now }

// NowUnix returns the simulated time as unix-style seconds.
func (l *Lane) NowUnix() uint64 { return l.s.NowUnix() }

// At schedules fn at absolute time t as an event confined to this lane.
// During a wave the event is staged in the current slot's buffer and
// merged into the heap in slot order after the wave joins — exactly the
// sequence numbers a serial run would have assigned.
func (l *Lane) At(t time.Duration, fn func()) {
	if w := l.s.wave; w != nil {
		if t < l.s.now {
			t = l.s.now
		}
		w.staged[l.curSlot] = append(w.staged[l.curSlot], stagedEvent{at: t, fn: fn, lane: l})
		return
	}
	l.s.insert(t, fn, l)
}

// After schedules fn to run d from now on this lane.
func (l *Lane) After(d time.Duration, fn func()) { l.At(l.s.now+d, fn) }

// Post schedules fn as a global event at the current simulated time: the
// escape hatch for work started inside a lane event that must touch
// cross-lane state (block listeners feeding header relays, movers, and
// workload callbacks). Under the parallel driver globals are barriers, so
// the posted work runs strictly after every event of the current wave.
func (l *Lane) Post(fn func()) {
	if w := l.s.wave; w != nil {
		w.staged[l.curSlot] = append(w.staged[l.curSlot], stagedEvent{at: l.s.now, fn: fn, lane: nil})
		return
	}
	l.s.insert(l.s.now, fn, nil)
}

// stagedEvent is one event scheduled during a wave, pending merge.
type stagedEvent struct {
	at   time.Duration
	fn   func()
	lane *Lane
}

// waveState buffers events scheduled while a multi-lane wave executes.
// staged is indexed by batch-slot: each slot is written only by the single
// goroutine running that slot's lane, so no locking is needed.
type waveState struct {
	staged [][]stagedEvent
}

// RunUntilParallel executes events with time ≤ deadline like RunUntil, but
// within each timestamp, maximal runs of consecutive lane-tagged events
// ("waves") execute concurrently on at most workers goroutines (one per
// lane; workers ≤ 0 means GOMAXPROCS). Global events are serial barriers
// between waves. Per-lane event order is preserved, and events scheduled
// during a wave are merged in batch-slot order with sequentially assigned
// sequence numbers — the exact heap state a serial RunUntil would have
// produced. Provided lane events touch only lane-local state plus
// commutative thread-safe sinks, the simulation is therefore bit-identical
// to the serial driver at any worker count.
func (s *Scheduler) RunUntilParallel(deadline time.Duration, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var batch []event
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		t := s.queue[0].at
		s.now = t
		// Pop every event already queued at t, in seq order. Events
		// scheduled at t during this batch form the next batch.
		batch = batch[:0]
		for len(s.queue) > 0 && s.queue[0].at == t {
			batch = append(batch, s.pop())
		}
		for i := 0; i < len(batch); {
			if batch[i].lane == nil {
				batch[i].fn()
				batch[i].fn = nil
				i++
				continue
			}
			j := i + 1
			for j < len(batch) && batch[j].lane != nil {
				j++
			}
			s.runWave(batch[i:j], workers)
			for k := i; k < j; k++ {
				batch[k].fn = nil
			}
			i = j
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// runWave executes one maximal run of lane-tagged same-timestamp events.
// Slots of the same lane run in order on one goroutine; distinct lanes run
// concurrently. The single-lane case — the overwhelmingly common one, since
// most timestamps carry one chain's traffic — executes inline on the
// driver goroutine with direct scheduling, which is equivalent ordering
// with zero staging overhead.
func (s *Scheduler) runWave(slots []event, workers int) {
	single := true
	for i := 1; i < len(slots); i++ {
		if slots[i].lane != slots[0].lane {
			single = false
			break
		}
	}
	if single {
		for i := range slots {
			slots[i].fn()
		}
		return
	}

	// Group slot indices by lane, in first-appearance order.
	laneOrder := make([]*Lane, 0, 8)
	laneSlots := make(map[*Lane][]int, 8)
	for i := range slots {
		ln := slots[i].lane
		if _, ok := laneSlots[ln]; !ok {
			laneOrder = append(laneOrder, ln)
		}
		laneSlots[ln] = append(laneSlots[ln], i)
	}

	wave := &waveState{staged: make([][]stagedEvent, len(slots))}
	s.wave = wave
	if workers > len(laneOrder) {
		workers = len(laneOrder)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Round-robin lane assignment: worker w owns lanes w, w+workers, …
			// Assignment cannot affect results — lanes are independent and
			// staging is per-slot — it only balances load.
			for li := w; li < len(laneOrder); li += workers {
				ln := laneOrder[li]
				for _, si := range laneSlots[ln] {
					ln.curSlot = si
					slots[si].fn()
				}
			}
		}(w)
	}
	wg.Wait()
	s.wave = nil
	// Merge staged children in slot order: sequence numbers are assigned in
	// exactly the order a serial execution of the slots would have.
	for _, staged := range wave.staged {
		for _, st := range staged {
			s.insert(st.at, st.fn, st.lane)
		}
	}
}

// pop removes and returns the heap minimum without running it.
func (s *Scheduler) pop() event {
	ev := s.queue[0]
	last := len(s.queue) - 1
	s.queue[0] = s.queue[last]
	s.queue[last] = event{} // release the closure for GC
	s.queue = s.queue[:last]
	if last > 0 {
		s.siftDown(0)
	}
	return ev
}
