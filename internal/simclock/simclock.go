// Package simclock implements a deterministic discrete-event scheduler.
//
// The paper's evaluation runs on an 80-machine cluster with emulated WAN
// latencies and waits out real block intervals (5 s Tendermint, 15 s
// Ethereum). This reproduction replays the same protocols in simulated
// time: every node action is an event on one totally-ordered timeline, so
// a multi-hour experiment executes in milliseconds and is reproducible
// bit-for-bit. Latency and throughput numbers reported by the benchmarks
// are simulated-clock readings.
package simclock

import (
	"container/heap"
	"time"
)

// Scheduler is a discrete-event clock. The zero value is ready to use.
// It is not safe for concurrent use: the whole simulation is single-
// threaded by design, which is what makes runs deterministic.
type Scheduler struct {
	now    time.Duration
	queue  eventQueue
	nextID uint64
}

// New returns an empty scheduler at time zero.
func New() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time since the simulation epoch.
func (s *Scheduler) Now() time.Duration { return s.now }

// NowUnix returns the simulated time as unix-style seconds (block
// timestamps use this form).
func (s *Scheduler) NowUnix() uint64 { return uint64(s.now / time.Second) }

// At schedules fn to run at absolute simulated time t. Events scheduled in
// the past run at the current time, in scheduling order.
func (s *Scheduler) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.nextID++
	heap.Push(&s.queue, &event{at: t, seq: s.nextID, fn: fn})
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d time.Duration, fn func()) {
	s.At(s.now+d, fn)
}

// Step runs the next event, if any, advancing the clock to its time.
func (s *Scheduler) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	ev, ok := heap.Pop(&s.queue).(*event)
	if !ok {
		return false
	}
	s.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then sets the clock to the
// deadline. Events scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	for s.queue.Len() > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return s.queue.Len() }

type event struct {
	at  time.Duration
	seq uint64 // tie-break: FIFO among same-time events
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
