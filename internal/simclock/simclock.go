// Package simclock implements a deterministic discrete-event scheduler.
//
// The paper's evaluation runs on an 80-machine cluster with emulated WAN
// latencies and waits out real block intervals (5 s Tendermint, 15 s
// Ethereum). This reproduction replays the same protocols in simulated
// time: every node action is an event on one totally-ordered timeline, so
// a multi-hour experiment executes in milliseconds and is reproducible
// bit-for-bit. Latency and throughput numbers reported by the benchmarks
// are simulated-clock readings.
package simclock

import (
	"time"
)

// Scheduler is a discrete-event clock. The zero value is ready to use.
// It is not safe for concurrent use: the simulation timeline is single-
// threaded by design, which is what makes runs deterministic. The one
// structured exception is RunUntilParallel (lane.go), which executes
// same-timestamp events of distinct lanes on a bounded worker pool while
// reproducing the serial pop order bit for bit.
//
// The event queue is a hand-rolled binary heap over event values (not
// pointers), so scheduling an event allocates nothing beyond amortized
// slice growth — the scheduler sits on every hot path of the simulator.
type Scheduler struct {
	now    time.Duration
	queue  []event
	nextID uint64

	lanes []*Lane
	wave  *waveState // non-nil while a multi-lane wave executes
}

// New returns an empty scheduler at time zero.
func New() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time since the simulation epoch.
func (s *Scheduler) Now() time.Duration { return s.now }

// NowUnix returns the simulated time as unix-style seconds (block
// timestamps use this form).
func (s *Scheduler) NowUnix() uint64 { return uint64(s.now / time.Second) }

// At schedules fn to run at absolute simulated time t. Events scheduled in
// the past run at the current time, in scheduling order. Events scheduled
// through the Scheduler directly are global: the parallel driver treats
// them as barriers between lane waves, so calling At from inside a lane
// event is a design violation and panics while a wave is executing.
func (s *Scheduler) At(t time.Duration, fn func()) {
	if s.wave != nil {
		panic("simclock: Scheduler.At called during a parallel wave (lane events must schedule through their Lane)")
	}
	s.insert(t, fn, nil)
}

// insert places one event on the heap with the given lane tag.
func (s *Scheduler) insert(t time.Duration, fn func(), lane *Lane) {
	if t < s.now {
		t = s.now
	}
	s.nextID++
	s.queue = append(s.queue, event{at: t, seq: s.nextID, fn: fn, lane: lane})
	s.siftUp(len(s.queue) - 1)
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d time.Duration, fn func()) {
	s.At(s.now+d, fn)
}

// Step runs the next event, if any, advancing the clock to its time.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := s.pop()
	s.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then sets the clock to the
// deadline. Events scheduled beyond the deadline remain queued.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// NextAt peeks at the earliest queued event's time without running it.
// The realtime driver uses it to decide how long to sleep on the wall
// clock before the next due event.
func (s *Scheduler) NextAt() (time.Duration, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

type event struct {
	at  time.Duration
	seq uint64 // tie-break: FIFO among same-time events
	fn  func()
	// lane is the chain lane the event is confined to, or nil for global
	// events. Plain RunUntil ignores the tag entirely; RunUntilParallel
	// executes runs of consecutive same-timestamp lane events concurrently.
	lane *Lane
}

// less orders events by time, then scheduling order. The (at, seq) pair is
// a strict total order, so the pop sequence — and with it simulation
// determinism — is independent of the heap's internal layout.
func (s *Scheduler) less(i, j int) bool {
	if s.queue[i].at != s.queue[j].at {
		return s.queue[i].at < s.queue[j].at
	}
	return s.queue[i].seq < s.queue[j].seq
}

func (s *Scheduler) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.queue[i], s.queue[parent] = s.queue[parent], s.queue[i]
		i = parent
	}
}

func (s *Scheduler) siftDown(i int) {
	n := len(s.queue)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && s.less(right, left) {
			min = right
		}
		if !s.less(min, i) {
			return
		}
		s.queue[i], s.queue[min] = s.queue[min], s.queue[i]
		i = min
	}
}
