// Realtime driver: runs a discrete-event Scheduler against the wall
// clock. The discrete-event mode executes every queued event as fast as
// possible with simulated time jumping between events; the realtime
// driver instead anchors the scheduler's timeline to the wall clock, so
// an event scheduled at simulated time T runs when the wall clock reaches
// anchor+T. Consensus timers, block intervals, and link delays written
// against the scheduler API then play out in real time without any
// changes to the components — the same code runs bit-identically under
// the deterministic driver and approximately (wall-clock jitter, real
// goroutine interleaving) under this one.
package simclock

import (
	"sync"
	"time"
)

// Realtime pumps a Scheduler's events on one goroutine (Run) while
// accepting externally-posted work from any goroutine (Post). All
// scheduler access is serialized under an internal mutex, so components
// driven by the scheduler remain effectively single-threaded — exactly
// the execution model the deterministic driver provides, minus the
// determinism (arrival order now depends on the wall clock).
type Realtime struct {
	mu     sync.Mutex
	s      *Scheduler
	anchor time.Time // wall-clock instant corresponding to simulated time zero
	wake   chan struct{}
}

// NewRealtime wraps a scheduler, anchoring its current simulated time to
// the present wall-clock instant.
func NewRealtime(s *Scheduler) *Realtime {
	return &Realtime{
		s:      s,
		anchor: time.Now().Add(-s.Now()),
		wake:   make(chan struct{}, 1),
	}
}

// Elapsed returns the wall-clock time elapsed on the scheduler's
// timeline (the "current simulated time" a posted event is stamped with).
func (d *Realtime) Elapsed() time.Duration { return time.Since(d.anchor) }

// Post schedules fn at the current wall-clock position of the timeline
// and wakes the Run loop. It is safe from any goroutine and is the only
// correct way to inject work (RPC submissions, TCP deliveries) into
// scheduler-driven components while Run is active: fn executes on the
// Run goroutine, serialized with every scheduler event.
func (d *Realtime) Post(fn func()) {
	d.mu.Lock()
	d.s.At(d.Elapsed(), fn)
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Run executes due events until stop is closed. Between events it sleeps
// on the wall clock — until the next queued event's time, or until a Post
// wakes it. Call it from exactly one goroutine.
func (d *Realtime) Run(stop <-chan struct{}) {
	for {
		// Drain everything due at the current wall-clock position. The
		// batch bound keeps one pathological event storm from starving the
		// stop channel forever.
		d.mu.Lock()
		for i := 0; i < 4096; i++ {
			at, ok := d.s.NextAt()
			if !ok || at > d.Elapsed() {
				break
			}
			d.s.Step()
		}
		next, ok := d.s.NextAt()
		d.mu.Unlock()

		var wait time.Duration
		if ok {
			wait = next - d.Elapsed()
			if wait <= 0 {
				// More work already due (event storm or time passed while
				// draining) — yield to the stop/wake check without sleeping.
				select {
				case <-stop:
					return
				default:
				}
				continue
			}
		} else {
			wait = time.Hour // idle; a Post will wake us long before
		}
		timer := time.NewTimer(wait)
		select {
		case <-stop:
			timer.Stop()
			return
		case <-d.wake:
			timer.Stop()
		case <-timer.C:
		}
	}
}
