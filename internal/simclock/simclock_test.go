package simclock

import (
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.After(3*time.Second, func() { order = append(order, 3) })
	s.After(1*time.Second, func() { order = append(order, 1) })
	s.After(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO broken: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var fired []time.Duration
	s.After(time.Second, func() {
		fired = append(fired, s.Now())
		s.After(time.Second, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	s := New()
	ran := 0
	s.After(1*time.Second, func() { ran++ })
	s.After(5*time.Second, func() { ran++ })
	s.RunUntil(2 * time.Second)
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("now = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run()
	if ran != 2 {
		t.Fatal("remaining event must still run")
	}
}

func TestPastEventsRunNow(t *testing.T) {
	s := New()
	s.After(10*time.Second, func() {})
	s.Run()
	fired := time.Duration(-1)
	s.At(time.Second, func() { fired = s.Now() }) // in the past
	s.Run()
	if fired != 10*time.Second {
		t.Fatalf("past event fired at %v", fired)
	}
}

func TestNowUnix(t *testing.T) {
	s := New()
	s.After(90*time.Second, func() {})
	s.Run()
	if s.NowUnix() != 90 {
		t.Fatalf("unix = %d", s.NowUnix())
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("empty queue must not step")
	}
}
