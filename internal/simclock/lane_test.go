package simclock

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// laneSim builds a randomized lane workload: nLanes lanes each run
// self-rescheduling chains of events that append to a per-lane log and
// occasionally Post global events that append to a shared log. The final
// logs fully determine the execution order, so comparing them between the
// serial and parallel drivers (at several worker counts) proves
// bit-identical scheduling.
func laneSim(t *testing.T, parallel bool, workers int) (perLane []string, global string) {
	t.Helper()
	s := New()
	const nLanes = 5
	lanes := make([]*Lane, nLanes)
	logs := make([]string, nLanes)
	var mu sync.Mutex // guards the global log (a commutative sink it is not — Posts run serially)
	for i := range lanes {
		lanes[i] = s.NewLane()
	}
	for i := range lanes {
		i := i
		rng := rand.New(rand.NewSource(int64(i + 1)))
		var tick func(step int)
		tick = func(step int) {
			logs[i] += fmt.Sprintf("%d@%d ", step, s.Now()/time.Millisecond)
			if step >= 40 {
				return
			}
			// Occasionally hand work to the global timeline, like a block
			// listener would.
			if step%7 == 0 {
				lanes[i].Post(func() {
					mu.Lock()
					global += fmt.Sprintf("L%d:%d ", i, step)
					mu.Unlock()
					// Globals may schedule back onto any lane.
					lanes[(i+1)%nLanes].After(time.Duration(step)*time.Millisecond, func() {})
				})
			}
			lanes[i].After(time.Duration(1+rng.Intn(9))*time.Millisecond, func() { tick(step + 1) })
		}
		// All lanes start aligned so every early timestamp is a multi-lane wave.
		lanes[i].At(10*time.Millisecond, func() { tick(0) })
	}
	// A recurring pure global event interleaved between waves.
	var beat func()
	beat = func() {
		mu.Lock()
		global += "g "
		mu.Unlock()
		if s.Now() < 300*time.Millisecond {
			s.After(25*time.Millisecond, beat)
		}
	}
	s.After(10*time.Millisecond, beat)

	if parallel {
		s.RunUntilParallel(time.Second, workers)
	} else {
		s.RunUntil(time.Second)
	}
	return logs, global
}

// TestRunUntilParallelMatchesSerial proves the parallel per-tick driver
// reproduces the serial scheduler's execution order exactly, at several
// worker counts, on a randomized workload of aligned multi-lane waves,
// global barriers, and cross-lane rescheduling.
func TestRunUntilParallelMatchesSerial(t *testing.T) {
	wantLogs, wantGlobal := laneSim(t, false, 0)
	for _, workers := range []int{1, 2, 3, 8} {
		gotLogs, gotGlobal := laneSim(t, true, workers)
		if gotGlobal != wantGlobal {
			t.Fatalf("workers=%d: global order diverged\nserial:   %s\nparallel: %s", workers, wantGlobal, gotGlobal)
		}
		for i := range wantLogs {
			if gotLogs[i] != wantLogs[i] {
				t.Fatalf("workers=%d: lane %d order diverged\nserial:   %s\nparallel: %s", workers, i, wantLogs[i], gotLogs[i])
			}
		}
	}
}

// TestLaneWavePreservesSlotOrderForStagedChildren pins the merge rule:
// children staged during a wave get sequence numbers in batch-slot order,
// so two lanes scheduling at the same future time fire in the order their
// parents were scheduled, not in lane-completion order.
func TestLaneWavePreservesSlotOrderForStagedChildren(t *testing.T) {
	s := New()
	a, b := s.NewLane(), s.NewLane()
	var order string
	// Slot 0 (lane a) stages global x; slot 1 (lane b) stages global y.
	// Globals run serially in sequence order, so the merge must yield x
	// before y regardless of which lane's goroutine finished first.
	a.At(time.Millisecond, func() {
		a.Post(func() { order += "x" })
	})
	b.At(time.Millisecond, func() {
		b.Post(func() { order += "y" })
	})
	s.RunUntilParallel(time.Second, 4)
	if order != "xy" {
		t.Fatalf("staged children ran out of slot order: %q", order)
	}
}

// TestSchedulerAtPanicsDuringWave pins the purity assertion: a lane event
// reaching for the global scheduler mid-wave is a design violation.
func TestSchedulerAtPanicsDuringWave(t *testing.T) {
	s := New()
	a, b := s.NewLane(), s.NewLane()
	var recovered any
	a.At(time.Millisecond, func() {
		defer func() { recovered = recover() }()
		s.At(2*time.Millisecond, func() {})
	})
	b.At(time.Millisecond, func() {})
	s.RunUntilParallel(time.Second, 4)
	if recovered == nil {
		t.Fatal("Scheduler.At inside a wave did not panic")
	}
}

// TestLaneSerialDriverIgnoresTags checks a laned workload runs unchanged
// under the plain serial driver (lane tags are inert there).
func TestLaneSerialDriverIgnoresTags(t *testing.T) {
	s := New()
	l := s.NewLane()
	var got string
	l.At(2*time.Millisecond, func() { got += "b" })
	s.At(time.Millisecond, func() { got += "a" })
	l.After(3*time.Millisecond, func() { got += "c" })
	s.RunUntil(time.Second)
	if got != "abc" {
		t.Fatalf("serial driver order: %q", got)
	}
	if s.Now() != time.Second {
		t.Fatalf("clock not advanced to deadline: %v", s.Now())
	}
}
