package chain

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"scmove/internal/evm"
	"scmove/internal/evm/asm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/metrics"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// execFingerprint reduces a run's counter table to the simulated events:
// the parallel.*/schedule.* families describe the host's execution strategy
// (how many lanes, waves, aborts) and legitimately differ between engines
// and GOMAXPROCS settings; sendercache.* is process-wide and polluted by
// other tests. Everything else must be bit-identical across engines.
func execFingerprint(reg *metrics.Registry) string {
	snap := reg.Counters().Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		if strings.HasPrefix(name, "parallel.") || strings.HasPrefix(name, "schedule.") ||
			strings.HasPrefix(name, "sendercache.") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		fmt.Fprintf(&sb, "%s=%d\n", name, snap[name])
	}
	return sb.String()
}

// TestApplyBlockScheduledDifferential is the serial-identity gate of the
// conflict-aware scheduler, run three ways: the same randomized traffic —
// conflicts, failures, forgeries, duplicates, self-destructs, chaotic block
// sizes — must produce bit-identical roots, header hashes, receipts, and
// simulated-counter fingerprints whether executed by the serial loop, the
// optimistic engine, or the scheduled engine, at every GOMAXPROCS. The
// scheduler learns patterns as blocks commit, so later blocks of one run
// exercise the predicted path while early ones exercise learning barriers.
func TestApplyBlockScheduledDifferential(t *testing.T) {
	for _, cfgOf := range []func(hashing.ChainID) Config{ethConfig, burrowConfig} {
		cfg := cfgOf(1)
		name := cfg.TreeKind.String()
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				serialCfg := cfg
				serialCfg.ParallelThreshold = -1
				wantRoots, wantHeaders, wantRecs, serialReg := runFuzzChain(t, serialCfg, buildFuzzTraffic(t, seed, cfg.ChainID))
				wantFP := execFingerprint(serialReg)

				optCfg := cfg
				optCfg.ParallelThreshold = 1
				optCfg.Strategy = StrategyOptimistic
				schedCfg := cfg
				schedCfg.ParallelThreshold = 1
				schedCfg.Strategy = StrategyScheduled

				for _, procs := range []int{1, 2, 4, runtime.NumCPU()} {
					for _, variant := range []struct {
						name string
						cfg  Config
					}{{"optimistic", optCfg}, {"scheduled", schedCfg}} {
						prev := runtime.GOMAXPROCS(procs)
						roots, headers, recs, reg := runFuzzChain(t, variant.cfg, buildFuzzTraffic(t, seed, cfg.ChainID))
						runtime.GOMAXPROCS(prev)
						if !reflect.DeepEqual(roots, wantRoots) {
							t.Fatalf("seed %d %s GOMAXPROCS=%d: state roots diverge", seed, variant.name, procs)
						}
						if !reflect.DeepEqual(headers, wantHeaders) {
							t.Fatalf("seed %d %s GOMAXPROCS=%d: header hashes diverge", seed, variant.name, procs)
						}
						if !reflect.DeepEqual(recs, wantRecs) {
							t.Fatalf("seed %d %s GOMAXPROCS=%d: receipts diverge", seed, variant.name, procs)
						}
						if fp := execFingerprint(reg); fp != wantFP {
							t.Fatalf("seed %d %s GOMAXPROCS=%d: counter fingerprint diverges:\n%s\nwant:\n%s",
								seed, variant.name, procs, fp, wantFP)
						}
						counters := reg.Counters()
						engaged := counters.Get("parallel.blocks") + counters.Get("schedule.blocks")
						if procs >= 2 && engaged == 0 {
							t.Fatalf("seed %d %s GOMAXPROCS=%d: executor never engaged", seed, variant.name, procs)
						}
						if procs == 1 && engaged != 0 {
							t.Fatalf("seed %d %s: executor must stay off at GOMAXPROCS=1", seed, variant.name)
						}
						if variant.name == "scheduled" && procs >= 2 && counters.Get("schedule.waves") == 0 {
							t.Fatalf("seed %d GOMAXPROCS=%d: no waves planned", seed, procs)
						}
					}
				}
			}
		})
	}
}

// TestScheduledConflictingNoStorm pins the headline fix: a fully-conflicting
// block (every call read-modify-writes one slot) under the scheduler must
// not degenerate into an abort/re-exec storm. After one learning block the
// planner predicts the conflicts, serializes the transactions into
// singleton waves, and executes them with zero aborts and zero serial
// re-executions — re-execs ≤ true conflicts trivially, since the true
// conflicts are resolved by ordering, not by failure.
func TestScheduledConflictingNoStorm(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	senders := make([]*keys.KeyPair, 16)
	for i := range senders {
		senders[i] = keys.Deterministic(uint64(i + 1))
	}
	mkBlock := func(nonce uint64) []*types.Transaction {
		var txs []*types.Transaction
		for _, kp := range senders {
			tx := signedCall(t, kp, 1, nonce, fuzzRMWAddr, nil, 0)
			dec, err := types.DecodeTransaction(tx.Encode())
			if err != nil {
				t.Fatal(err)
			}
			txs = append(txs, dec)
		}
		return txs
	}
	run := func(threshold int) ([]hashing.Hash, *metrics.Registry) {
		cfg := ethConfig(1)
		cfg.ParallelThreshold = threshold
		c := newChain(t, cfg, nil, senders[0])
		db := c.StateDB()
		for _, kp := range senders[1:] {
			db.AddBalance(kp.Address(), u256.FromUint64(fund))
		}
		db.CreateContract(fuzzRMWAddr, fuzzRMWCode)
		db.Commit()
		reg := metrics.NewRegistry()
		c.SetObserver(reg, func() time.Duration { return 0 })
		var roots []hashing.Hash
		// Block 1 is all learning barriers (cold cache); the storm assertion
		// below is about the predicted block 2.
		for blk := uint64(0); blk < 2; blk++ {
			b, _ := c.ApplyBlock(mkBlock(blk), 100+blk, ProposerAddress(1, 0))
			root, _ := c.RootAt(b.Header.Height)
			roots = append(roots, root)
		}
		return roots, reg
	}

	wantRoots, _ := run(-1)
	roots, reg := run(1)
	if !reflect.DeepEqual(roots, wantRoots) {
		t.Fatal("scheduled conflicting blocks diverge from serial execution")
	}
	c := reg.Counters()
	if c.Get("schedule.blocks") != 2 {
		t.Fatalf("schedule.blocks = %d, want 2", c.Get("schedule.blocks"))
	}
	if got := c.Get("schedule.aborted"); got != 0 {
		t.Fatalf("conflicting workload aborted %d speculations; the plan must serialize them instead", got)
	}
	if got := c.Get("schedule.reexecuted"); got != 0 {
		t.Fatalf("conflicting workload re-executed %d txs serially after aborts, want 0", got)
	}
	if got := c.Get("schedule.learned"); got != uint64(len(senders)) {
		t.Fatalf("schedule.learned = %d, want %d (block 1 only)", got, len(senders))
	}
	if got := c.Get("schedule.cache.hits"); got < uint64(len(senders)) {
		t.Fatalf("schedule.cache.hits = %d, want >= %d (block 2 predicted)", got, len(senders))
	}
}

// Kitties breeding contract (PAPER.md Fig. 4 shape): calldata carries three
// slot numbers [parent1, parent2, child]; the call reads both parents'
// genomes, derives the child genome, and stores it. A breeding tournament
// is therefore an explicit dependency DAG: generation g reads what
// generation g-1 wrote.
var (
	breedAddr = hashing.AddressFromBytes([]byte{0xD7})
	breedCode = asm.MustAssemble(
		"PUSH1 0 CALLDATALOAD SLOAD PUSH1 32 CALLDATALOAD SLOAD ADD PUSH1 1 ADD PUSH1 64 CALLDATALOAD SSTORE STOP")
)

func breedData(p1, p2, child uint64) []byte {
	data := make([]byte, 96)
	binary.BigEndian.PutUint64(data[24:32], p1)
	binary.BigEndian.PutUint64(data[56:64], p2)
	binary.BigEndian.PutUint64(data[88:96], child)
	return data
}

// buildKittiesBlocks returns a warmup block (one breed teaching the access
// pattern) and a 4-generation × 32-breed tournament block: generation 1
// breeds the 64 genesis promo kitties pairwise, later generations breed the
// previous generation's children. 128 distinct senders, so only the data
// DAG orders the transactions.
func buildKittiesBlocks(t *testing.T, senders []*keys.KeyPair) [][]*types.Transaction {
	t.Helper()
	push := func(txs []*types.Transaction, tx *types.Transaction) []*types.Transaction {
		dec, err := types.DecodeTransaction(tx.Encode())
		if err != nil {
			t.Fatal(err)
		}
		return append(txs, dec)
	}
	warmup := push(nil, signedCall(t, senders[0], 1, 0, breedAddr, breedData(1, 2, 999), 0))
	var dag []*types.Transaction
	for gen := 1; gen <= 4; gen++ {
		for j := 0; j < 32; j++ {
			var p1, p2 uint64
			if gen == 1 {
				p1, p2 = uint64(2*j+1), uint64(2*j+2)
			} else {
				p1 = uint64(100*(gen-1) + j)
				p2 = uint64(100*(gen-1) + (j+1)%32)
			}
			child := uint64(100*gen + j)
			s := senders[1+32*(gen-1)+j]
			dag = push(dag, signedCall(t, s, 1, 0, breedAddr, breedData(p1, p2, child), 0))
		}
	}
	return [][]*types.Transaction{warmup, dag}
}

// runKittiesChain executes the warmup + tournament blocks and returns the
// final root plus the registry.
func runKittiesChain(t *testing.T, cfg Config, senders []*keys.KeyPair) (hashing.Hash, *metrics.Registry) {
	t.Helper()
	c := newChain(t, cfg, nil, senders[0])
	db := c.StateDB()
	for _, kp := range senders[1:] {
		db.AddBalance(kp.Address(), u256.FromUint64(fund))
	}
	db.CreateContract(breedAddr, breedCode)
	for i := uint64(1); i <= 64; i++ {
		var key, val evm.Word
		binary.BigEndian.PutUint64(key[24:32], i)
		binary.BigEndian.PutUint64(val[24:32], 1000+i)
		db.SetStorage(breedAddr, key, val)
	}
	db.Commit()
	reg := metrics.NewRegistry()
	c.SetObserver(reg, func() time.Duration { return 0 })
	var root hashing.Hash
	for i, blk := range buildKittiesBlocks(t, senders) {
		b, _ := c.ApplyBlock(blk, uint64(100+i), ProposerAddress(1, 0))
		root, _ = c.RootAt(b.Header.Height)
	}
	return root, reg
}

// TestScheduledKittiesDAG is the acceptance gate of the tentpole: on the
// Kitties breeding DAG the scheduler must commit every transaction
// speculatively (the plan levelizes the DAG into 4 wide waves), strictly
// more than the optimistic engine manages (its lanes execute later
// generations against pre-block state, abort, and fall back serial), with
// roots bit-identical to serial execution for all three engines.
func TestScheduledKittiesDAG(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	senders := make([]*keys.KeyPair, 129)
	for i := range senders {
		senders[i] = keys.Deterministic(uint64(i + 1))
	}

	serialCfg := ethConfig(1)
	serialCfg.ParallelThreshold = -1
	wantRoot, _ := runKittiesChain(t, serialCfg, senders)

	optCfg := ethConfig(1)
	optCfg.ParallelThreshold = 1
	optCfg.Strategy = StrategyOptimistic
	optRoot, optReg := runKittiesChain(t, optCfg, senders)
	if optRoot != wantRoot {
		t.Fatal("optimistic kitties root diverges from serial")
	}

	schedCfg := ethConfig(1)
	schedCfg.ParallelThreshold = 1
	schedCfg.Strategy = StrategyScheduled
	schedRoot, schedReg := runKittiesChain(t, schedCfg, senders)
	if schedRoot != wantRoot {
		t.Fatal("scheduled kitties root diverges from serial")
	}

	sc := schedReg.Counters()
	oc := optReg.Counters()
	if got := sc.Get("schedule.committed"); got != 128 {
		t.Fatalf("scheduled speculative commits = %d, want all 128 (aborted=%d learned=%d direct=%d waves=%d)",
			got, sc.Get("schedule.aborted"), sc.Get("schedule.learned"), sc.Get("schedule.direct"), sc.Get("schedule.waves"))
	}
	if got := sc.Get("schedule.aborted"); got != 0 {
		t.Fatalf("scheduled kitties aborted %d speculations, want 0", got)
	}
	if sched, opt := sc.Get("schedule.committed"), oc.Get("parallel.committed"); sched <= opt {
		t.Fatalf("scheduled must out-commit optimistic on the DAG: scheduled=%d optimistic=%d", sched, opt)
	}
}
