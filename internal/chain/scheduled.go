package chain

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"scmove/internal/chain/schedule"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/state"
	"scmove/internal/types"
)

// ParallelStrategy selects the parallel block executor used once a block
// clears the ParallelThreshold gate. Results are bit-identical to the
// serial loop under every strategy, by construction and by the three-way
// differential fuzz.
type ParallelStrategy int

const (
	// StrategyScheduled (the default) plans conflict-free waves from
	// learned per-contract access patterns and only speculates where the
	// plan says it is safe, with read-set validation as the safety net.
	StrategyScheduled ParallelStrategy = iota
	// StrategyOptimistic is the PR-5 engine: speculate everything, validate
	// in order, re-execute serially on conflict.
	StrategyOptimistic
)

// scheduleStats summarizes one scheduled ApplyBlock. Like parallelStats,
// every count is decided by the single-threaded plan/commit path as a pure
// function of (state, block, GOMAXPROCS) — never of lane timing.
type scheduleStats struct {
	lanes      int // widest worker count used by any wave (0: serial block)
	waves      int
	maxWidth   int
	speculated int // transactions executed on lanes in multi-tx waves
	committed  int // speculations that validated clean
	aborted    int // speculations rejected by validation (= mispredicts)
	reexecuted int // aborted transactions re-run in block order
	learned    int // cache-miss singletons executed on a learning view
	direct     int // barrier singletons run directly on the canonical DB
	cacheHits  uint64
	cacheMiss  uint64
	validation time.Duration
}

// applyBlockScheduled executes a block as a sequence of conflict-free
// waves. The planner predicts each transaction's access keys from the
// symbolic pattern cache; waves are contiguous index ranges, so execution
// strictly alternates:
//
//   - Execute: every transaction of wave w runs on its own state.View over
//     c.db, across work-stealing workers. c.db is frozen during the wave —
//     waves 1..w-1 are fully committed, so the base state is exactly what
//     a serial loop would present to the wave's first transaction.
//   - Commit: in block order, each view validates its read set against
//     c.db. The plan said wave-mates are disjoint, so with a correct
//     prediction validation always passes and the buffered writes flush
//     straight into c.db. A mispredicted access fails validation and the
//     transaction re-executes in place — block order, exact base — which
//     *is* the serial semantics; its actual access set then relearns the
//     contract's pattern.
//
// Single-transaction waves skip speculation entirely: their base state is
// exact, so they run inline with no validation — cache-miss transactions
// on a fresh view to learn their pattern, barriers (Move2, creates,
// duplicates, volatile contracts) directly on c.db. A fully-conflicting
// block therefore degenerates to the plain serial loop plus pattern
// lookups: no aborts, no re-exec storm.
func (c *Chain) applyBlockScheduled(txs []*types.Transaction, blockCtx evm.BlockContext) ([]*types.Receipt, scheduleStats) {
	n := len(txs)
	plan := c.planner.Plan(txs, blockCtx.Coinbase, c.db.GetCodeHash)
	recs := make([]*types.Receipt, n)
	views := make([]*state.View, n)
	st := scheduleStats{
		waves:     plan.Waves(),
		cacheHits: plan.Hits,
		cacheMiss: plan.Misses,
	}

	for w := 0; w < plan.Waves(); w++ {
		start, end := plan.Wave(w)
		width := end - start
		if width > st.maxWidth {
			st.maxWidth = width
		}
		if width == 1 {
			i := start
			switch plan.Mode[i] {
			case schedule.ModeLearn:
				v := state.NewView(c.db)
				recs[i] = c.applyTx(v, txs[i], blockCtx)
				v.ApplyTo(c.db)
				c.learn(plan.CodeHash[i], txs[i], blockCtx, recs[i], v)
				st.learned++
			default:
				// Barriers and singleton speculative waves: the base state
				// is exact, so run directly on the canonical DB.
				recs[i] = c.applyTx(c.db, txs[i], blockCtx)
				st.direct++
			}
			continue
		}

		workers := runtime.GOMAXPROCS(0)
		if workers > width {
			workers = width
		}
		if workers > st.lanes {
			st.lanes = workers
		}
		var cursor atomic.Int64
		cursor.Store(int64(start))
		var wg sync.WaitGroup
		work := func() {
			for {
				i := int(cursor.Add(1)) - 1
				if i >= end {
					return
				}
				v := state.NewView(c.db)
				recs[i] = c.applyTx(v, txs[i], blockCtx)
				views[i] = v
			}
		}
		wg.Add(workers - 1)
		for l := 0; l < workers-1; l++ {
			go func() {
				defer wg.Done()
				work()
			}()
		}
		work()
		wg.Wait()

		for i := start; i < end; i++ {
			v := views[i]
			views[i] = nil
			st.speculated++
			t0 := time.Now()
			ok := v.Validate(c.db)
			st.validation += time.Since(t0)
			if ok {
				v.ApplyTo(c.db)
				st.committed++
				continue
			}
			// Mispredict: some wave-mate that committed before us wrote a
			// key we read. Re-execute here, in block order on the exact
			// base, and relearn the contract's real access set.
			st.aborted++
			rv := state.NewView(c.db)
			recs[i] = c.applyTx(rv, txs[i], blockCtx)
			rv.ApplyTo(c.db)
			c.learn(plan.CodeHash[i], txs[i], blockCtx, recs[i], rv)
			st.reexecuted++
		}
	}

	receipts := make([]*types.Receipt, 0, n)
	receipts = append(receipts, recs...)
	return receipts, st
}

// learn records a call transaction's actual access set into the pattern
// cache. Only successful executions teach: an early failure (bad nonce,
// insufficient funds) never reaches the contract, so its access set says
// nothing about the code.
func (c *Chain) learn(codeHash hashing.Hash, tx *types.Transaction, blockCtx evm.BlockContext, rec *types.Receipt, v *state.View) {
	if codeHash.IsZero() || rec.Status != types.ReceiptSuccess {
		return
	}
	sender, err := tx.Sender()
	if err != nil {
		return
	}
	c.planner.Cache().Learn(codeHash, sender, tx.To, blockCtx.Coinbase, tx.Data, v)
}

// observeScheduled records one scheduled block's statistics on the
// observability registry. Counter values are deterministic for a given
// simulation at fixed GOMAXPROCS; like parallel.*, the schedule.* family is
// host-strategy telemetry and is excluded from cross-GOMAXPROCS
// fingerprints. The validation histogram observes wall-clock time and is
// diagnostic only.
func (c *Chain) observeScheduled(st scheduleStats) {
	if c.reg == nil || st.waves == 0 {
		return
	}
	c.reg.Count("schedule.blocks", 1)
	c.reg.Count("schedule.waves", uint64(st.waves))
	c.reg.Count("schedule.speculated", uint64(st.speculated))
	c.reg.Count("schedule.committed", uint64(st.committed))
	c.reg.Count("schedule.aborted", uint64(st.aborted))
	c.reg.Count("schedule.mispredicts", uint64(st.aborted))
	c.reg.Count("schedule.reexecuted", uint64(st.reexecuted))
	c.reg.Count("schedule.learned", uint64(st.learned))
	c.reg.Count("schedule.direct", uint64(st.direct))
	c.reg.Count("schedule.cache.hits", st.cacheHits)
	c.reg.Count("schedule.cache.misses", st.cacheMiss)
	id := c.cfg.ChainID.String()
	c.reg.MaxGauge("schedule.width."+id, float64(st.maxWidth))
	c.reg.MaxGauge("schedule.lanes."+id, float64(st.lanes))
	c.reg.Observe("schedule.validate."+id, st.validation)
}
