// Package chain implements a blockchain node's ledger and execution layer:
// genesis, transaction application through the EVM (including Move2
// verification and recreation), block assembly with the chain's state-root
// rule, receipts, and block subscriptions. Consensus drivers (BFT and PoW)
// in this package decide *when* ApplyBlock runs.
package chain

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"scmove/internal/chain/schedule"
	"scmove/internal/codec"
	"scmove/internal/core"
	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/state"
	"scmove/internal/state/backend"
	"scmove/internal/trie"
	"scmove/internal/txpool"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// Config describes one blockchain.
type Config struct {
	ChainID  hashing.ChainID
	TreeKind trie.Kind
	Schedule evm.Schedule
	// BlockGasLimit caps the gas of one block.
	BlockGasLimit uint64
	// MaxBlockTxs caps the transactions per block.
	MaxBlockTxs int
	// LaggingStateRoot marks Tendermint-style chains whose header at h+1
	// carries the state root of h (§VI).
	LaggingStateRoot bool
	// BlockInterval is the target block spacing (5 s BFT / 15 s PoW).
	BlockInterval time.Duration
	// ConfirmationDepth is the p peers must wait before trusting a header.
	ConfirmationDepth uint64
	// Natives is the native contract registry (may be nil).
	Natives *evm.Registry
	// PoolLimit bounds the pending transaction pool.
	PoolLimit int
	// ParallelThreshold is the minimum block size ApplyBlock executes with
	// the parallel executor (spawning lanes for a couple of transactions
	// costs more than it saves). 0 means DefaultParallelThreshold; negative
	// disables parallel execution entirely. Results are bit-identical
	// either way.
	ParallelThreshold int
	// Strategy selects the parallel executor: conflict-aware scheduled
	// waves (the zero value, the default) or PR-5 blind optimistic
	// speculation. Results are bit-identical under both.
	Strategy ParallelStrategy
	// State tunes the state database's storage layer: backend selection
	// (in-memory trees or the bounded-RSS log-structured file store), flat
	// read-cache sizing, and the retained-root window for historical
	// proofs. The zero value keeps the historical in-memory behaviour.
	State state.Options
}

// Params returns the interoperability parameters peers configure (§IV-A).
func (c Config) Params() core.ChainParams {
	return core.ChainParams{
		ID:                c.ChainID,
		TreeKind:          c.TreeKind,
		ConfirmationDepth: c.ConfirmationDepth,
		LaggingStateRoot:  c.LaggingStateRoot,
	}
}

// BlockListener observes committed blocks.
type BlockListener func(block *types.Block, receipts []*types.Receipt)

// Chain is the ledger of one blockchain. Under the discrete-event
// simulator every access arrives on the scheduler goroutine; the RPC front
// door additionally reads (and submits) from arbitrary handler goroutines
// while the consensus driver commits blocks, so ledger state is guarded by
// an internal RWMutex:
//
//   - ApplyBlock holds the write lock from execution through commit and
//     index updates, releasing it before block listeners and tx waiters
//     fire (listeners call back into chain accessors — the header relay
//     reads HeaderAt of the very chain that committed).
//   - Read accessors (Head, HeaderAt, BlockAt, RootAt, Receipt, TxHeight)
//     take the read lock; internal unlocked variants serve the execution
//     path, which already holds the write lock.
//   - Query* and StaticCall take the full write lock even though they are
//     logically reads: state.DB reads mutate working-set and flat-cache
//     structures. Historical Query*At reads are served between blocks by
//     construction — the lock excludes a concurrent mid-block Commit.
//   - SubmitTx/SubmitTxs take no chain lock at all; the pool has its own.
//     Lock order is chain.mu before pool.mu (ProposeBatch), never the
//     reverse.
type Chain struct {
	cfg     Config
	db      *state.DB
	headers *core.HeaderStore

	mu        sync.RWMutex
	blocks    []*types.Block // height-indexed, genesis at 0
	rootsAt   []hashing.Hash // state root after executing height i
	receipts  map[hashing.Hash]*types.Receipt
	txHeights map[hashing.Hash]uint64
	pool      *txpool.Pool
	listeners []BlockListener
	txWaiters map[hashing.Hash][]TxListener

	// planner holds the conflict scheduler's access-pattern cache and wave
	// scratch for the StrategyScheduled executor.
	planner *schedule.Planner

	// Optional observability (SetObserver): block-interval histogram, block
	// commit trace events, and pool-depth gauges. The chain cannot see the
	// scheduler, so the harness supplies the simulated-clock reading.
	reg         *metrics.Registry
	nowFn       func() time.Duration
	lastBlockAt time.Duration
	gDepth      string // "txpool.depth.<chain>"
	gPeak       string // "txpool.peak.<chain>"
	hInterval   string // "block.interval.<chain>"

	// dispatch, when set, receives the closure that fires block listeners
	// and tx waiters after ApplyBlock commits. Laned universes route it to
	// the chain lane's Post so cross-chain callbacks (header relays, client
	// nonce bookkeeping, workload drivers) run as global events between
	// waves instead of inside a concurrent wave slot. Nil fires inline.
	dispatch func(func())
}

// TxListener observes one transaction's execution.
type TxListener func(rec *types.Receipt, block *types.Block)

// New creates a chain with the given peer header store and genesis
// allocation function (may be nil).
func New(cfg Config, headers *core.HeaderStore, genesis func(db *state.DB)) (*Chain, error) {
	db, err := state.NewDBWith(cfg.ChainID, cfg.TreeKind, cfg.State)
	if err != nil {
		return nil, fmt.Errorf("chain %s: %w", cfg.ChainID, err)
	}
	if genesis != nil {
		genesis(db)
	}
	root := db.Commit()
	genesisHeader := &types.Header{
		ChainID:   cfg.ChainID,
		Height:    0,
		StateRoot: root,
		TxRoot:    types.TxRoot(nil),
		GasLimit:  cfg.BlockGasLimit,
	}
	if cfg.LaggingStateRoot {
		// Header h carries the root of h-1; the genesis header has none.
		genesisHeader.StateRoot = hashing.ZeroHash
	}
	return &Chain{
		cfg:       cfg,
		db:        db,
		headers:   headers,
		blocks:    []*types.Block{{Header: genesisHeader}},
		rootsAt:   []hashing.Hash{root},
		receipts:  make(map[hashing.Hash]*types.Receipt),
		txHeights: make(map[hashing.Hash]uint64),
		pool:      txpool.New(cfg.ChainID, cfg.PoolLimit),
		txWaiters: make(map[hashing.Hash][]TxListener),
		planner:   schedule.NewPlanner(schedule.DefaultCacheSize),
	}, nil
}

// Config returns the chain configuration.
func (c *Chain) Config() Config { return c.cfg }

// ChainID returns the chain identifier.
func (c *Chain) ChainID() hashing.ChainID { return c.cfg.ChainID }

// StateDB exposes the chain's world state (used by proof builders and
// experiment harnesses; a real node would guard this behind RPC).
func (c *Chain) StateDB() *state.DB { return c.db }

// Headers returns the chain's light-client view of its peers.
func (c *Chain) Headers() *core.HeaderStore { return c.headers }

// Head returns the current head header.
func (c *Chain) Head() *types.Header {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.head()
}

// head is Head without locking, for callers already holding c.mu.
func (c *Chain) head() *types.Header { return c.blocks[len(c.blocks)-1].Header }

// HeaderAt returns the header at a height.
func (c *Chain) HeaderAt(height uint64) (*types.Header, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.headerAt(height)
}

// headerAt is HeaderAt without locking.
func (c *Chain) headerAt(height uint64) (*types.Header, bool) {
	if height >= uint64(len(c.blocks)) {
		return nil, false
	}
	return c.blocks[height].Header, true
}

// BlockAt returns the block at a height.
func (c *Chain) BlockAt(height uint64) (*types.Block, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if height >= uint64(len(c.blocks)) {
		return nil, false
	}
	return c.blocks[height], true
}

// Close releases the state database's backend resources (file handles of
// the log-structured store). The chain must not be used afterwards.
func (c *Chain) Close() error { return c.db.Close() }

// Move2ProofAt assembles the Move2 payload for a locked contract against
// the committed state at a past height, as long as that height's root is
// inside the state backend's retained-root window. The proof bytes are
// bit-identical to what BuildMoveProof produced when that height was the
// head — the trees are canonical, so the historical rebuild is exact.
func (c *Chain) Move2ProofAt(contract hashing.Address, height uint64) (*types.Move2Payload, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	root, ok := c.rootAt(height)
	if !ok {
		return nil, fmt.Errorf("chain %s: no root at height %d", c.cfg.ChainID, height)
	}
	return core.BuildMoveProofAt(c.db, contract, height, root)
}

// RootAt returns the state root after executing the block at a height.
func (c *Chain) RootAt(height uint64) (hashing.Hash, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rootAt(height)
}

// rootAt is RootAt without locking.
func (c *Chain) rootAt(height uint64) (hashing.Hash, bool) {
	if height >= uint64(len(c.rootsAt)) {
		return hashing.Hash{}, false
	}
	return c.rootsAt[height], true
}

// Receipt returns the receipt of an executed transaction.
func (c *Chain) Receipt(id hashing.Hash) (*types.Receipt, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.receipts[id]
	return r, ok
}

// TxHeight returns the height at which a transaction executed.
func (c *Chain) TxHeight(id hashing.Hash) (uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h, ok := c.txHeights[id]
	return h, ok
}

// StaticCall runs a read-only contract call against the current state (the
// equivalent of an RPC eth_call; experiment harnesses and examples use it
// to read contract views without a transaction). It takes the write lock:
// EVM reads warm state-DB caches.
func (c *Chain) StaticCall(from, to hashing.Address, input []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	head := c.head()
	blockCtx := evm.BlockContext{
		ChainID:   c.cfg.ChainID,
		Number:    head.Height,
		Time:      head.Time,
		GasLimit:  c.cfg.BlockGasLimit,
		BlockHash: c.blockHashFn(),
	}
	vm := evm.New(c.cfg.Schedule, c.db, blockCtx, evm.TxContext{Origin: from}, c.cfg.Natives)
	ret, _, err := vm.StaticCall(from, to, input, c.cfg.BlockGasLimit)
	return ret, err
}

// SetObserver attaches an observability registry and a simulated-clock
// reading function (the chain never sees the scheduler directly). The chain
// then feeds a per-chain block-interval histogram, a block.commit trace
// event per committed block, and txpool depth/peak gauges. Recording only
// reads state the chain already computed, so enabling it cannot change
// simulated results. A nil registry detaches.
func (c *Chain) SetObserver(reg *metrics.Registry, now func() time.Duration) {
	c.reg = reg
	c.nowFn = now
	if reg == nil || now == nil {
		c.reg, c.nowFn = nil, nil
		return
	}
	id := c.cfg.ChainID.String()
	c.gDepth = "txpool.depth." + id
	c.gPeak = "txpool.peak." + id
	c.hInterval = "block.interval." + id
	c.lastBlockAt = now()
}

// SetDispatcher routes ApplyBlock's post-commit listener and waiter fires
// through d instead of invoking them inline. Laned universes pass the chain
// lane's Post so callbacks that touch other chains or shared client state
// run serially on the global timeline — in both the serial and parallel
// drivers, keeping their event streams identical. A nil d restores inline
// firing.
func (c *Chain) SetDispatcher(d func(func())) { c.dispatch = d }

// observePoolDepth refreshes the pool-depth gauge and its high-water mark.
func (c *Chain) observePoolDepth() {
	if c.reg == nil {
		return
	}
	depth := float64(c.pool.Len())
	c.reg.SetGauge(c.gDepth, depth)
	c.reg.MaxGauge(c.gPeak, depth)
}

// SubmitTx admits a transaction to the pending pool.
func (c *Chain) SubmitTx(tx *types.Transaction) error {
	err := c.pool.Add(tx)
	c.observePoolDepth()
	return err
}

// SubmitTxs admits a batch of transactions, recovering all senders on the
// crypto worker pool first; admission decisions and order are identical to
// calling SubmitTx in a loop. One error slot is returned per transaction.
func (c *Chain) SubmitTxs(txs []*types.Transaction) []error {
	errs := c.pool.AddBatch(txs)
	c.observePoolDepth()
	return errs
}

// PendingTxs returns the pool size.
func (c *Chain) PendingTxs() int { return c.pool.Len() }

// OnBlock registers a committed-block listener.
func (c *Chain) OnBlock(l BlockListener) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.listeners = append(c.listeners, l)
}

// NotifyTx registers a one-shot listener fired when the transaction with
// the given id executes. If it already executed, the listener fires
// immediately (outside the chain lock, like every listener invocation).
func (c *Chain) NotifyTx(id hashing.Hash, l TxListener) {
	c.mu.Lock()
	rec, ok := c.receipts[id]
	if !ok {
		c.txWaiters[id] = append(c.txWaiters[id], l)
		c.mu.Unlock()
		return
	}
	block := c.blocks[c.txHeights[id]]
	c.mu.Unlock()
	l(rec, block)
}

// ProposeBatch selects the next block's transactions from the pool.
// The chain lock covers the pool's nonceOf callbacks into the state DB
// (nonce reads warm DB caches); lock order chain.mu → pool.mu.
func (c *Chain) ProposeBatch() []*types.Transaction {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pool.NextBatch(c.cfg.MaxBlockTxs, c.db.GetNonce)
}

// ApplyBlock executes txs as the next block at simulated unix time now,
// proposed by the given address, and commits it. The write lock is held
// from execution through commit and index updates; listeners and waiters
// fire after it is released, so they can freely call back into the chain.
func (c *Chain) ApplyBlock(txs []*types.Transaction, now uint64, proposer hashing.Address) (*types.Block, []*types.Receipt) {
	c.mu.Lock()
	height := c.head().Height + 1
	blockCtx := evm.BlockContext{
		ChainID:   c.cfg.ChainID,
		Number:    height,
		Time:      now,
		Coinbase:  proposer,
		GasLimit:  c.cfg.BlockGasLimit,
		BlockHash: c.blockHashFn(),
	}
	receipts := make([]*types.Receipt, 0, len(txs))
	var pstats parallelStats
	var sstats scheduleStats
	switch {
	case len(txs) == 0:
		// Empty block: nothing to recover, execute, or evict.
	case c.parallelEligible(len(txs)):
		// Pre-recover every sender on the crypto worker pool (see the
		// serial branch), then run the configured parallel executor:
		// conflict-aware waves by default, or the PR-5 optimistic engine.
		// Both are bit-identical to the loop below by construction.
		types.RecoverSenders(txs)
		if c.cfg.Strategy == StrategyOptimistic {
			receipts, pstats = c.applyBlockParallel(txs, blockCtx)
		} else {
			receipts, sstats = c.applyBlockScheduled(txs, blockCtx)
		}
	default:
		// Pre-recover every sender on the crypto worker pool before the
		// serial execution loop. Recovery is pure per transaction and
		// results land in input order, so execution below observes exactly
		// what it would have computed inline — this only moves the ECDSA
		// work off the critical path (and, for consensus-decoded copies,
		// usually finds it already in the sender cache). Failures are
		// re-surfaced by applyTx's own Sender call, which by then is a
		// memoized lookup.
		types.RecoverSenders(txs)
		for _, tx := range txs {
			receipts = append(receipts, c.applyTx(c.db, tx, blockCtx))
		}
	}
	var gasUsed uint64
	for _, rec := range receipts {
		gasUsed += rec.GasUsed
	}
	root := c.db.Commit()
	c.rootsAt = append(c.rootsAt, root)

	headerRoot := root
	if c.cfg.LaggingStateRoot {
		headerRoot = c.rootsAt[height-1]
	}
	header := &types.Header{
		ChainID:    c.cfg.ChainID,
		Height:     height,
		ParentHash: c.head().Hash(),
		StateRoot:  headerRoot,
		TxRoot:     types.TxRoot(txs),
		Time:       now,
		Proposer:   proposer,
		GasUsed:    gasUsed,
		GasLimit:   c.cfg.BlockGasLimit,
	}
	block := &types.Block{Header: header, Txs: txs}
	c.blocks = append(c.blocks, block)
	// Evict included transactions from the pool only now: proposals select
	// without consuming, so a failed consensus round cannot lose traffic.
	// Empty blocks have nothing to evict.
	for _, tx := range txs {
		c.pool.Remove(tx.ID())
	}
	for _, rec := range receipts {
		c.receipts[rec.TxID] = rec
		c.txHeights[rec.TxID] = height
	}
	// Snapshot listeners and collect fired waiters under the lock, then
	// release it before invoking any callback: the header relay's listener
	// reads HeaderAt of this very chain, and waiters may register new ones.
	listeners := c.listeners
	var fired []struct {
		l   TxListener
		rec *types.Receipt
	}
	for _, rec := range receipts {
		if waiters, ok := c.txWaiters[rec.TxID]; ok {
			delete(c.txWaiters, rec.TxID)
			for _, l := range waiters {
				fired = append(fired, struct {
					l   TxListener
					rec *types.Receipt
				}{l, rec})
			}
		}
	}
	c.mu.Unlock()
	fire := func() {
		for _, l := range listeners {
			l(block, receipts)
		}
		for _, f := range fired {
			f.l(f.rec, block)
		}
	}
	if c.dispatch != nil && (len(listeners) > 0 || len(fired) > 0) {
		c.dispatch(fire)
	} else {
		fire()
	}
	c.observeParallel(pstats)
	c.observeScheduled(sstats)
	c.observeBlock(block)
	return block, receipts
}

// observeBlock records the block-level observability signals: the interval
// since the previous commit, a block.commit trace event, and the post-
// eviction pool depth.
func (c *Chain) observeBlock(block *types.Block) {
	if c.reg == nil || c.nowFn == nil {
		return
	}
	at := c.nowFn()
	c.reg.Span(c.hInterval, c.lastBlockAt, at)
	c.lastBlockAt = at
	if c.reg.TraceEnabled() {
		c.reg.Event("block.commit", at,
			metrics.A("chain", c.cfg.ChainID.String()),
			metrics.A("height", strconv.FormatUint(block.Header.Height, 10)),
			metrics.A("txs", strconv.Itoa(len(block.Txs))),
			metrics.A("gas", strconv.FormatUint(block.Header.GasUsed, 10)))
	}
	c.observePoolDepth()
}

// blockHashFn returns the EVM BLOCKHASH resolver. It reads headers without
// locking: every caller (ApplyBlock execution, StaticCall) already holds
// c.mu, and an RLock here would self-deadlock against the held write lock.
func (c *Chain) blockHashFn() func(uint64) hashing.Hash {
	return func(height uint64) hashing.Hash {
		h, ok := c.headerAt(height)
		if !ok {
			return hashing.ZeroHash
		}
		return h.Hash()
	}
}

// execState is the state surface transaction application drives: the
// interpreter's view plus Move2 recreation. Both the chain's canonical DB
// and the speculative views of the parallel executor implement it.
type execState interface {
	evm.ExecState
	core.MoveState
}

// applyTx executes one transaction against st, charging fees and producing
// a receipt. Failed transactions still pay for the gas they consumed. With
// st == c.db this is exactly the serial execution path; the parallel
// scheduler passes speculative views and commit overlays instead, and the
// receipt it keeps is byte-identical by construction.
func (c *Chain) applyTx(st execState, tx *types.Transaction, blockCtx evm.BlockContext) *types.Receipt {
	rec := &types.Receipt{TxID: tx.ID(), Status: types.ReceiptFailed}
	// Authenticate before touching state: executing on a trusted tx.From
	// would let a forged From spend any account's balance. Sender memoizes
	// through the process-wide cache, so for the overwhelmingly common case
	// (admitted via the pool, or pre-recovered by ApplyBlock) this is a
	// lookup, not an ECDSA verification.
	sender, err := tx.Sender()
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	sched := &c.cfg.Schedule

	if got := st.GetNonce(sender); tx.Nonce != got {
		rec.Err = fmt.Sprintf("bad nonce %d, account at %d", tx.Nonce, got)
		return rec
	}
	intrinsic := sched.IntrinsicGas(tx.Data, tx.Kind == types.TxCreate)
	if intrinsic > tx.GasLimit {
		rec.Err = "intrinsic gas exceeds limit"
		return rec
	}
	fee := u256.FromUint64(tx.GasLimit).Mul(tx.GasPrice)
	if st.GetBalance(sender).Lt(fee.Add(tx.Value)) {
		rec.Err = "insufficient funds for gas * price + value"
		return rec
	}
	st.SubBalance(sender, fee)
	if tx.Kind != types.TxCreate {
		// For creates, vm.Create consumes the nonce itself (the deployed
		// address is derived from it); bumping here would double-count.
		st.SetNonce(sender, tx.Nonce+1)
	}

	vm := evm.New(c.cfg.Schedule, st, blockCtx,
		evm.TxContext{Origin: sender, GasPrice: tx.GasPrice}, c.cfg.Natives)
	gas := tx.GasLimit - intrinsic

	var (
		gasLeft uint64
		execErr error
	)
	switch tx.Kind {
	case types.TxCall:
		_, gasLeft, execErr = vm.Call(sender, tx.To, tx.Data, tx.Value, gas)
	case types.TxCreate:
		rec.Created, gasLeft, execErr = vm.Create(sender, tx.Data, tx.Value, gas)
	case types.TxMove2:
		gasLeft, execErr = c.applyMove2(vm, st, tx, gas)
	default:
		execErr = fmt.Errorf("unknown tx kind %d", tx.Kind)
	}

	rec.GasUsed = tx.GasLimit - gasLeft
	refund := u256.FromUint64(gasLeft).Mul(tx.GasPrice)
	st.AddBalance(sender, refund)
	st.AddBalance(blockCtx.Coinbase, u256.FromUint64(rec.GasUsed).Mul(tx.GasPrice))
	rec.Logs = st.TakeLogs()
	if execErr != nil {
		rec.Err = execErr.Error()
		rec.Status = types.ReceiptFailed
		rec.Created = hashing.ZeroAddress
	} else {
		rec.Status = types.ReceiptSuccess
	}
	return rec
}

// applyMove2 charges the recreation gas of Alg. 1 (contract creation plus
// one SSTORE per storage entry plus proof verification), verifies the
// payload, imports the contract, and runs moveFinish(·).
func (c *Chain) applyMove2(vm *evm.EVM, st execState, tx *types.Transaction, gas uint64) (uint64, error) {
	if !tx.Value.IsZero() {
		return gas, errors.New("move2 transaction must not carry value")
	}
	p := tx.Move2
	cost := c.move2Gas(p)
	if cost > gas {
		return 0, fmt.Errorf("%w: move2 needs %d", evm.ErrOutOfGas, cost)
	}
	gas -= cost
	snap := st.Snapshot()
	acct, err := core.VerifyMove2(c.cfg.ChainID, st, c.headers, p)
	if err != nil {
		return gas, err
	}
	core.ApplyMove2(st, p, acct)
	// moveFinish(·): the custom completion routine (Alg. 1 line 13). Its
	// failure aborts the whole Move2.
	_, left, err := vm.Call(tx.From, p.Contract, core.MoveFinishInput, u256.Zero(), gas)
	if err != nil {
		st.RevertToSnapshot(snap)
		return left, fmt.Errorf("moveFinish: %w", err)
	}
	return left, nil
}

// move2Gas prices a Move2 payload: contract recreation (Create base +
// per-byte code deposit where the schedule charges it), one storage write
// per recreated entry, and hashing work proportional to the proof size.
func (c *Chain) move2Gas(p *types.Move2Payload) uint64 {
	s := &c.cfg.Schedule
	codeSize := evm.BillableCodeSize(c.cfg.Natives, p.Code)
	proofWords := uint64(len(p.AccountProof)+31) / 32
	return s.Create +
		s.CodeByte*codeSize +
		s.SStoreSet*uint64(len(p.Storage)) +
		s.Sha3 + s.Sha3Word*proofWords
}

// QueryHead returns the head header together with the state root after
// executing it, read atomically under the chain lock. On LaggingStateRoot
// chains the header's own StateRoot field trails by one block, so RPC
// clients need this pairing rather than the raw header.
func (c *Chain) QueryHead() (*types.Header, hashing.Hash) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	head := c.head()
	root, _ := c.rootAt(head.Height)
	return head, root
}

// QueryAccount returns addr's account record at the head state. It takes
// the write lock even though it is logically a read: state-DB reads warm
// working-set and flat-cache structures.
func (c *Chain) QueryAccount(addr hashing.Address) (state.Account, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.db.GetAccount(addr)
}

// QueryStorage returns one storage slot of addr at the head state.
func (c *Chain) QueryStorage(addr hashing.Address, key evm.Word) evm.Word {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.db.GetStorage(addr, key)
}

// QueryAccountAt returns addr's account record as of the committed state
// at a past height, as long as that height's root is inside the state
// backend's retained-root window. Historical reads are only valid between
// blocks; holding the chain lock excludes a concurrent mid-block commit.
func (c *Chain) QueryAccountAt(addr hashing.Address, height uint64) (state.Account, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	root, ok := c.rootAt(height)
	if !ok {
		return state.Account{}, false, fmt.Errorf("chain %s: no root at height %d", c.cfg.ChainID, height)
	}
	return c.db.GetAccountAt(addr, root)
}

// QueryStorageAt returns one storage slot of addr as of the committed
// state at a past height inside the retained-root window.
func (c *Chain) QueryStorageAt(addr hashing.Address, key evm.Word, height uint64) (evm.Word, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	root, ok := c.rootAt(height)
	if !ok {
		return evm.Word{}, fmt.Errorf("chain %s: no root at height %d", c.cfg.ChainID, height)
	}
	r, err := c.db.OpenAt(root)
	if err != nil {
		return evm.Word{}, err
	}
	val, _ := r.Slot(backend.SlotKey{Addr: addr, Key: key})
	return val, nil
}

// EncodeTxList serializes a consensus payload (the proposed tx batch).
func EncodeTxList(txs []*types.Transaction) []byte {
	w := codec.NewWriter(256 * (len(txs) + 1))
	w.WriteUvarint(uint64(len(txs)))
	for _, tx := range txs {
		w.WriteBytes(tx.Encode())
	}
	return w.Bytes()
}

// DecodeTxList parses a consensus payload.
func DecodeTxList(b []byte) ([]*types.Transaction, error) {
	r := codec.NewReader(b)
	n := r.ReadUvarint()
	if n > 1<<20 {
		return nil, errors.New("chain: oversized tx list")
	}
	// Bound preallocation by the remaining input (a tx encoding is at least
	// ~100 bytes; 8 is a safe floor), so a corrupted count prefix costs
	// O(remaining) memory rather than O(claimed).
	txs := make([]*types.Transaction, 0, r.CapCount(n, 8))
	for i := uint64(0); i < n; i++ {
		enc := r.ReadBytes()
		if r.Err() != nil {
			return nil, r.Err()
		}
		tx, err := types.DecodeTransaction(enc)
		if err != nil {
			return nil, err
		}
		txs = append(txs, tx)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return txs, nil
}
