package chain

import (
	"encoding/binary"
	"fmt"
	"time"

	"scmove/internal/codec"
	"scmove/internal/hashing"
	"scmove/internal/metrics"
	"scmove/internal/pow"
	"scmove/internal/simclock"
	"scmove/internal/simnet"
	"scmove/internal/tendermint"
	"scmove/internal/types"
)

// ProposerAddress derives a deterministic address for a chain's validator
// or miner by index (simulation identities; fee recipients).
func ProposerAddress(chain hashing.ChainID, index int) hashing.Address {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(chain))
	binary.BigEndian.PutUint64(buf[8:], uint64(index))
	return hashing.AddressFromHash(hashing.SumTagged(0xbb, buf[:]))
}

// BFTNode runs a chain under Tendermint consensus: the validator cluster
// agrees on each transaction batch over the simulated WAN, and the chain
// executes the decided batch once per height.
type BFTNode struct {
	Chain   *Chain
	Cluster *tendermint.Cluster
	sched   simclock.Clock
	app     *bftApp
}

// bftApp adapts Chain to the tendermint.App interface.
type bftApp struct {
	chain    *Chain
	sched    simclock.Clock
	counters *metrics.Counters
}

func (a *bftApp) Propose(height uint64) []byte {
	return EncodeTxList(a.chain.ProposeBatch())
}

func (a *bftApp) Commit(height uint64, payload []byte) {
	proposer := ProposerAddress(a.chain.ChainID(), int(height)%10)
	txs, err := DecodeTxList(payload)
	if err != nil {
		// An undecodable payload reached quorum: a Byzantine proposer (or a
		// coordinated corruption) got junk decided. Safety holds — every
		// validator decided the same bytes, and every replica's DecodeTxList
		// fails identically — so commit an empty block, record the event,
		// and keep producing blocks rather than stalling or panicking. The
		// selected-but-uncommitted transactions stay in the pool for the
		// next height.
		if a.counters != nil {
			a.counters.Inc("byzantine.badpayload.committed")
		}
		txs = nil
	}
	a.chain.ApplyBlock(txs, a.sched.NowUnix(), proposer)
}

// NewBFTNode creates a chain with a validator cluster of len(ids) members
// placed in the given regions. The transport seam decides what carries
// consensus traffic: the deterministic discrete-event network by default,
// or real TCP sockets for wall-clock runs. Call Start to begin producing
// blocks.
func NewBFTNode(sched simclock.Clock, net simnet.Transport, c *Chain,
	cfg tendermint.Config, ids []simnet.NodeID, regions []simnet.Region) (*BFTNode, error) {
	app := &bftApp{chain: c, sched: sched}
	cluster, err := tendermint.NewCluster(sched, net, app, cfg, ids, regions)
	if err != nil {
		return nil, fmt.Errorf("bft node: %w", err)
	}
	return &BFTNode{Chain: c, Cluster: cluster, sched: sched, app: app}, nil
}

// Start launches consensus.
func (n *BFTNode) Start() { n.Cluster.Start() }

// Observe mirrors the node's Byzantine-resilience events (equivocation
// evidence from the cluster, bad committed payloads from the app) into the
// shared counter set.
func (n *BFTNode) Observe(c *metrics.Counters) {
	n.Cluster.Observe(c)
	n.app.counters = c
}

// PoWNode runs a chain under simulated proof-of-work: blocks are produced
// at exponentially distributed intervals (15 s mean in the paper's
// configuration) by a rotating set of miners.
type PoWNode struct {
	Chain *Chain
	sched simclock.Clock
	timer *pow.Timer

	minerCount int
	nextMiner  int
	stopped    bool
}

// NewPoWNode creates a PoW-driven chain with the given miner count and a
// seeded block timer.
func NewPoWNode(sched simclock.Clock, c *Chain, seed int64, minerCount int) *PoWNode {
	if minerCount <= 0 {
		minerCount = 1
	}
	return &PoWNode{
		Chain:      c,
		sched:      sched,
		timer:      pow.NewTimer(seed, c.cfg.BlockInterval),
		minerCount: minerCount,
	}
}

// Start schedules block production.
func (n *PoWNode) Start() { n.scheduleNext() }

// Stop halts block production after the next tick.
func (n *PoWNode) Stop() { n.stopped = true }

func (n *PoWNode) scheduleNext() {
	n.sched.After(n.timer.Next(), func() {
		if n.stopped {
			return
		}
		miner := ProposerAddress(n.Chain.ChainID(), n.nextMiner)
		n.nextMiner = (n.nextMiner + 1) % n.minerCount
		n.Chain.ApplyBlock(n.Chain.ProposeBatch(), n.sched.NowUnix(), miner)
		n.scheduleNext()
	})
}

// ConnectHeaderRelay wires the light-client header feed from src to dst:
// every block committed on src is relayed (header plus head height) to
// dst's header store after the given network delay. Miners/validators of
// interoperating chains run exactly this kind of relay (paper §IV-A).
func ConnectHeaderRelay(sched simclock.Clock, src, dst *Chain, delay time.Duration) {
	ConnectHeaderRelayVia(src, dst, simnet.NewLink(sched, delay, simnet.LinkFaults{}, 0), 1)
}

// ConnectHeaderRelayVia wires the header feed from src to dst through a
// (possibly lossy) link. Each committed block relays the last `window`
// headers plus the head height, so a dropped relay message heals as soon as
// any later one gets through — the retransmission behaviour real IBC
// relayers implement. Use a window comfortably larger than the longest
// outage, in blocks, the deployment should ride out.
func ConnectHeaderRelayVia(src, dst *Chain, link *simnet.Link, window int) {
	if window < 1 {
		window = 1
	}
	src.OnBlock(func(b *types.Block, _ []*types.Receipt) {
		head := b.Header.Height
		lo := uint64(1)
		if head > uint64(window) {
			lo = head - uint64(window) + 1
		}
		headers := make([]*types.Header, 0, head-lo+1)
		for h := lo; h <= head; h++ {
			if hdr, ok := src.HeaderAt(h); ok {
				headers = append(headers, hdr)
			}
		}
		if link.Corrupts() {
			// Corrupting links carry the wire encoding: clean copies still
			// skip serialization (encode runs lazily, only for tampered
			// copies), while corrupted copies go through the full untrusted
			// decode + ingest path and are counted and dropped on rejection.
			link.DeliverBytes(
				func() []byte { return encodeHeaderRelay(src.ChainID(), head, headers) },
				func(raw []byte, corrupted bool) {
					if !corrupted {
						if err := dst.Headers().Update(src.ChainID(), headers, head); err != nil {
							panic(fmt.Sprintf("chain: header relay %s->%s: %v", src.ChainID(), dst.ChainID(), err))
						}
						return
					}
					cid, rHead, rHeaders, err := decodeHeaderRelay(raw)
					if err != nil {
						link.NoteRejected()
						return
					}
					if err := dst.Headers().Update(cid, rHeaders, rHead); err != nil {
						link.NoteRejected()
					}
				})
			return
		}
		link.Deliver(func() {
			// Errors indicate a misconfigured relay (unknown chain); the
			// universe wiring registers params up front, so drop silently
			// is never expected — surface loudly.
			if err := dst.Headers().Update(src.ChainID(), headers, head); err != nil {
				panic(fmt.Sprintf("chain: header relay %s->%s: %v", src.ChainID(), dst.ChainID(), err))
			}
		})
	})
}

// encodeHeaderRelay serializes one relay message: source chain id, head
// height, and the relayed header window.
func encodeHeaderRelay(chain hashing.ChainID, head uint64, headers []*types.Header) []byte {
	w := codec.NewWriter(32 + 192*len(headers))
	w.WriteUvarint(uint64(chain))
	w.WriteUvarint(head)
	w.WriteUvarint(uint64(len(headers)))
	for _, h := range headers {
		w.WriteBytes(h.Encode())
	}
	return w.Bytes()
}

// decodeHeaderRelay parses an untrusted relay message.
func decodeHeaderRelay(b []byte) (hashing.ChainID, uint64, []*types.Header, error) {
	r := codec.NewReader(b)
	chain := hashing.ChainID(r.ReadUvarint())
	head := r.ReadUvarint()
	n := r.ReadUvarint()
	headers := make([]*types.Header, 0, r.CapCount(n, 16))
	for i := uint64(0); i < n; i++ {
		enc := r.ReadBytes()
		if r.Err() != nil {
			return 0, 0, nil, r.Err()
		}
		h, err := types.DecodeHeader(enc)
		if err != nil {
			return 0, 0, nil, err
		}
		headers = append(headers, h)
	}
	if err := r.Finish(); err != nil {
		return 0, 0, nil, err
	}
	return chain, head, headers, nil
}
