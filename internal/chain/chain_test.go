package chain

import (
	"strings"
	"testing"

	"scmove/internal/core"
	"scmove/internal/evm"
	"scmove/internal/evm/asm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/state"
	"scmove/internal/trie"
	"scmove/internal/types"
	"scmove/internal/u256"
)

const fund = 1_000_000_000_000

func ethConfig(id hashing.ChainID) Config {
	return Config{
		ChainID:           id,
		TreeKind:          trie.KindMPT,
		Schedule:          evm.EthereumSchedule(),
		BlockGasLimit:     30_000_000,
		MaxBlockTxs:       200,
		ConfirmationDepth: 6,
		PoolLimit:         10_000,
	}
}

func burrowConfig(id hashing.ChainID) Config {
	return Config{
		ChainID:           id,
		TreeKind:          trie.KindIAVL,
		Schedule:          evm.BurrowSchedule(),
		BlockGasLimit:     30_000_000,
		MaxBlockTxs:       200,
		LaggingStateRoot:  true,
		ConfirmationDepth: 2,
		PoolLimit:         10_000,
	}
}

func newChain(t *testing.T, cfg Config, peers []core.ChainParams, kp *keys.KeyPair) *Chain {
	t.Helper()
	hs := core.NewHeaderStore(peers...)
	c, err := New(cfg, hs, func(db *state.DB) {
		db.AddBalance(kp.Address(), u256.FromUint64(fund))
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func signedCall(t *testing.T, kp *keys.KeyPair, chainID hashing.ChainID, nonce uint64,
	to hashing.Address, data []byte, value uint64) *types.Transaction {
	t.Helper()
	tx := &types.Transaction{
		ChainID:  chainID,
		Nonce:    nonce,
		Kind:     types.TxCall,
		To:       to,
		Value:    u256.FromUint64(value),
		GasLimit: 1_000_000,
		GasPrice: u256.FromUint64(2),
		Data:     data,
	}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestTransferTxMovesValueAndFees(t *testing.T) {
	kp := keys.Deterministic(1)
	c := newChain(t, ethConfig(1), nil, kp)
	to := hashing.AddressFromBytes([]byte{0x77})
	proposer := ProposerAddress(1, 0)

	tx := signedCall(t, kp, 1, 0, to, nil, 500)
	if err := c.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	block, receipts := c.ApplyBlock(c.ProposeBatch(), 100, proposer)
	if len(receipts) != 1 || !receipts[0].Succeeded() {
		t.Fatalf("receipts = %+v", receipts)
	}
	rec := receipts[0]
	sched := evm.EthereumSchedule()
	if rec.GasUsed != sched.TxBase {
		t.Fatalf("gas used = %d, want %d", rec.GasUsed, sched.TxBase)
	}
	db := c.StateDB()
	if got := db.GetBalance(to); !got.Eq(u256.FromUint64(500)) {
		t.Fatalf("recipient = %s", got)
	}
	feePaid := u256.FromUint64(rec.GasUsed).Mul(u256.FromUint64(2))
	wantSender := u256.FromUint64(fund).Sub(u256.FromUint64(500)).Sub(feePaid)
	if got := db.GetBalance(kp.Address()); !got.Eq(wantSender) {
		t.Fatalf("sender = %s, want %s", got, wantSender)
	}
	if got := db.GetBalance(proposer); !got.Eq(feePaid) {
		t.Fatalf("proposer fees = %s, want %s", got, feePaid)
	}
	if db.GetNonce(kp.Address()) != 1 {
		t.Fatal("nonce must advance")
	}
	if block.Header.Height != 1 || block.Header.GasUsed != rec.GasUsed {
		t.Fatalf("header %+v", block.Header)
	}
}

func TestFailedTxChargesGas(t *testing.T) {
	kp := keys.Deterministic(1)
	c := newChain(t, ethConfig(1), nil, kp)
	reverting := hashing.AddressFromBytes([]byte{0x99})
	c.StateDB().CreateContract(reverting, asm.MustAssemble(`
		PUSH1 0
		PUSH1 0
		REVERT
	`))
	c.StateDB().Commit()

	tx := signedCall(t, kp, 1, 0, reverting, nil, 0)
	if err := c.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	_, receipts := c.ApplyBlock(c.ProposeBatch(), 100, ProposerAddress(1, 0))
	rec := receipts[0]
	if rec.Succeeded() {
		t.Fatal("reverting call must fail")
	}
	if rec.GasUsed == 0 {
		t.Fatal("failed tx must still pay gas")
	}
	if !strings.Contains(rec.Err, "reverted") {
		t.Fatalf("err = %q", rec.Err)
	}
	if c.StateDB().GetNonce(kp.Address()) != 1 {
		t.Fatal("nonce must advance on failure")
	}
}

func TestCreateTxDeploys(t *testing.T) {
	kp := keys.Deterministic(1)
	c := newChain(t, ethConfig(1), nil, kp)
	code := asm.MustAssemble("PUSH1 1 PUSH1 0 SSTORE STOP")
	tx := &types.Transaction{
		ChainID:  1,
		Nonce:    0,
		Kind:     types.TxCreate,
		GasLimit: 1_000_000,
		GasPrice: u256.FromUint64(2),
		Data:     code,
	}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	_, receipts := c.ApplyBlock(c.ProposeBatch(), 100, ProposerAddress(1, 0))
	rec := receipts[0]
	if !rec.Succeeded() || rec.Created.IsZero() {
		t.Fatalf("receipt %+v", rec)
	}
	if len(c.StateDB().GetCode(rec.Created)) != len(code) {
		t.Fatal("code must be deployed")
	}
}

func TestBadNonceFailsWithoutFee(t *testing.T) {
	kp := keys.Deterministic(1)
	c := newChain(t, ethConfig(1), nil, kp)
	tx := signedCall(t, kp, 1, 7, hashing.AddressFromBytes([]byte{1}), nil, 0)
	rec := c.applyTx(c.StateDB(), tx, evm.BlockContext{ChainID: 1, GasLimit: 30_000_000})
	if rec.Succeeded() || rec.GasUsed != 0 {
		t.Fatalf("receipt %+v", rec)
	}
	if got := c.StateDB().GetBalance(kp.Address()); !got.Eq(u256.FromUint64(fund)) {
		t.Fatal("bad-nonce tx must not charge")
	}
}

func TestHeaderRootRule(t *testing.T) {
	kp := keys.Deterministic(1)
	// Non-lagging: header h carries the root after h.
	eth := newChain(t, ethConfig(1), nil, kp)
	b1, _ := eth.ApplyBlock(nil, 10, ProposerAddress(1, 0))
	r1, _ := eth.RootAt(1)
	if b1.Header.StateRoot != r1 {
		t.Fatal("eth-like header must carry its own block's root")
	}
	// Lagging: header h carries the root after h-1.
	bur := newChain(t, burrowConfig(2), nil, kp)
	tx := signedCall(t, kp, 2, 0, hashing.AddressFromBytes([]byte{3}), nil, 5)
	if err := bur.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	bb1, _ := bur.ApplyBlock(bur.ProposeBatch(), 10, ProposerAddress(2, 0))
	bb2, _ := bur.ApplyBlock(nil, 15, ProposerAddress(2, 0))
	r0, _ := bur.RootAt(0)
	br1, _ := bur.RootAt(1)
	if bb1.Header.StateRoot != r0 {
		t.Fatal("lagging header 1 must carry the genesis root")
	}
	if bb2.Header.StateRoot != br1 {
		t.Fatal("lagging header 2 must carry height 1's root")
	}
	if br1 == r0 {
		t.Fatal("the transfer must have changed the root")
	}
}

func TestNotifyTx(t *testing.T) {
	kp := keys.Deterministic(1)
	c := newChain(t, ethConfig(1), nil, kp)
	tx := signedCall(t, kp, 1, 0, hashing.AddressFromBytes([]byte{1}), nil, 1)
	fired := 0
	c.NotifyTx(tx.ID(), func(rec *types.Receipt, b *types.Block) {
		fired++
		if !rec.Succeeded() || b.Header.Height != 1 {
			t.Errorf("rec %+v height %d", rec, b.Header.Height)
		}
	})
	if err := c.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	c.ApplyBlock(c.ProposeBatch(), 10, ProposerAddress(1, 0))
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// Late registration fires immediately.
	c.NotifyTx(tx.ID(), func(*types.Receipt, *types.Block) { fired++ })
	if fired != 2 {
		t.Fatal("late NotifyTx must fire immediately")
	}
}

// movableCode is a minimal Listing-1-style contract: called on chain 1,
// its moveTo routine moves it to chain 2; called on chain 2 (including the
// moveFinish invocation) it is a no-op.
func movableCode() []byte {
	return asm.MustAssemble(`
		CHAINID
		PUSH1 2
		EQ
		PUSH @done
		JUMPI
		PUSH1 2
		MOVE
	@done:
		JUMPDEST
		STOP
	`)
}

// TestCrossChainMoveThroughBlocks drives a full Move1/Move2 through block
// execution on two heterogeneous chains with manually relayed headers.
func TestCrossChainMoveThroughBlocks(t *testing.T) {
	kp := keys.Deterministic(1)
	cfg1, cfg2 := ethConfig(1), burrowConfig(2)
	src := newChain(t, cfg1, []core.ChainParams{cfg2.Params()}, kp)
	dst := newChain(t, cfg2, []core.ChainParams{cfg1.Params()}, kp)

	contract := hashing.AddressFromBytes([]byte{0xcc})
	src.StateDB().CreateContract(contract, movableCode())
	src.StateDB().SetStorage(contract, [32]byte{31: 1}, [32]byte{31: 42})
	src.StateDB().Commit()

	// Move1: call the contract; its code executes MOVE(2).
	move1 := signedCall(t, kp, 1, 0, contract, core.MoveToInput(2), 0)
	if err := src.SubmitTx(move1); err != nil {
		t.Fatal(err)
	}
	block1, receipts := src.ApplyBlock(src.ProposeBatch(), 10, ProposerAddress(1, 0))
	if !receipts[0].Succeeded() {
		t.Fatalf("move1 failed: %s", receipts[0].Err)
	}
	if src.StateDB().GetLocation(contract) != 2 {
		t.Fatal("contract must be locked towards chain 2")
	}

	// Build the proof at the Move1 height.
	payload, err := core.BuildMoveProof(src.StateDB(), contract, block1.Header.Height)
	if err != nil {
		t.Fatal(err)
	}

	// Mine p more blocks on the source and relay all headers to dst.
	for i := 0; i < int(cfg1.ConfirmationDepth); i++ {
		src.ApplyBlock(nil, uint64(20+i), ProposerAddress(1, 0))
	}
	var headers []*types.Header
	for h := uint64(0); h <= src.Head().Height; h++ {
		hdr, _ := src.HeaderAt(h)
		headers = append(headers, hdr)
	}
	if err := dst.Headers().Update(1, headers, src.Head().Height); err != nil {
		t.Fatal(err)
	}

	// Move2 on the target chain.
	move2 := &types.Transaction{
		ChainID:  2,
		Nonce:    0,
		Kind:     types.TxMove2,
		GasLimit: 10_000_000,
		GasPrice: u256.FromUint64(2),
		Move2:    payload,
	}
	if err := move2.Sign(kp); err != nil {
		t.Fatal(err)
	}
	if err := dst.SubmitTx(move2); err != nil {
		t.Fatal(err)
	}
	_, receipts = dst.ApplyBlock(dst.ProposeBatch(), 200, ProposerAddress(2, 0))
	if !receipts[0].Succeeded() {
		t.Fatalf("move2 failed: %s", receipts[0].Err)
	}
	if dst.StateDB().GetLocation(contract) != 2 {
		t.Fatal("contract must now live on chain 2")
	}
	if got := dst.StateDB().GetStorage(contract, [32]byte{31: 1}); got != ([32]byte{31: 42}) {
		t.Fatal("storage must be recreated on chain 2")
	}

	// Replaying the same Move2 must fail on the move nonce.
	replay := &types.Transaction{
		ChainID:  2,
		Nonce:    1,
		Kind:     types.TxMove2,
		GasLimit: 10_000_000,
		GasPrice: u256.FromUint64(2),
		Move2:    payload,
	}
	if err := replay.Sign(kp); err != nil {
		t.Fatal(err)
	}
	if err := dst.SubmitTx(replay); err != nil {
		t.Fatal(err)
	}
	_, receipts = dst.ApplyBlock(dst.ProposeBatch(), 210, ProposerAddress(2, 0))
	if receipts[0].Succeeded() {
		t.Fatal("replayed Move2 must fail")
	}
	if !strings.Contains(receipts[0].Err, "nonce") {
		t.Fatalf("err = %q", receipts[0].Err)
	}
}

func TestMove2GasGrowsWithState(t *testing.T) {
	kp := keys.Deterministic(1)
	cfg := ethConfig(1)
	c := newChain(t, cfg, nil, kp)
	mk := func(n int) *types.Move2Payload {
		entries := make([]types.StorageEntry, n)
		for i := range entries {
			entries[i] = types.StorageEntry{Key: [32]byte{byte(i), 1}, Value: [32]byte{1}}
		}
		return &types.Move2Payload{Storage: entries, Code: []byte("some contract code")}
	}
	g1 := c.move2Gas(mk(1))
	g10 := c.move2Gas(mk(10))
	g100 := c.move2Gas(mk(100))
	sched := cfg.Schedule
	if g10-g1 != 9*sched.SStoreSet || g100-g10 != 90*sched.SStoreSet {
		t.Fatalf("gas must grow linearly in entries: %d %d %d", g1, g10, g100)
	}
}

func TestTxListRoundTrip(t *testing.T) {
	kp := keys.Deterministic(1)
	var txs []*types.Transaction
	for n := uint64(0); n < 5; n++ {
		txs = append(txs, signedCall(t, kp, 1, n, hashing.AddressFromBytes([]byte{1}), []byte("d"), 0))
	}
	decoded, err := DecodeTxList(EncodeTxList(txs))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 5 {
		t.Fatalf("decoded %d", len(decoded))
	}
	for i := range txs {
		if decoded[i].ID() != txs[i].ID() {
			t.Fatal("ids must survive")
		}
	}
	if _, err := DecodeTxList([]byte{0xff}); err == nil {
		t.Fatal("garbage must not decode")
	}
	empty, err := DecodeTxList(EncodeTxList(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty list: %v %d", err, len(empty))
	}
}
