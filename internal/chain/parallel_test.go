package chain

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// forgedFromTx signs a transaction with kp, then rewrites From to another
// address: the signature is genuine but no longer matches the claimed
// sender (and, since From is covered by the id, no longer the content).
func forgedFromTx(t *testing.T, kp *keys.KeyPair, chainID hashing.ChainID) *types.Transaction {
	t.Helper()
	tx := signedCall(t, kp, chainID, 0, hashing.AddressFromBytes([]byte{0x55}), nil, 100)
	forged, err := types.DecodeTransaction(tx.Encode())
	if err != nil {
		t.Fatal(err)
	}
	forged.From = hashing.AddressFromBytes([]byte{0xAA})
	return forged
}

func TestForgedFromRejectedAtAdmissionAndApply(t *testing.T) {
	kp := keys.Deterministic(1)
	victim := hashing.AddressFromBytes([]byte{0xAA})
	c := newChain(t, ethConfig(1), nil, kp)
	c.StateDB().AddBalance(victim, u256.FromUint64(fund))
	c.StateDB().Commit()

	forged := forgedFromTx(t, kp, 1)

	// Layer 1: the pool must refuse it.
	if err := c.SubmitTx(forged); !errors.Is(err, types.ErrBadTxSignature) {
		t.Fatalf("admission error = %v, want ErrBadTxSignature", err)
	}
	if c.PendingTxs() != 0 {
		t.Fatal("forged tx must not be pending")
	}

	// Layer 2: a proposer that bypasses the pool (byzantine, or a decoded
	// block from a peer) must not execute it either — the victim's balance
	// cannot move.
	_, receipts := c.ApplyBlock([]*types.Transaction{forged}, 100, ProposerAddress(1, 0))
	if len(receipts) != 1 || receipts[0].Succeeded() {
		t.Fatalf("receipts = %+v", receipts)
	}
	if receipts[0].GasUsed != 0 {
		t.Fatal("unauthenticated tx must not charge gas")
	}
	if got := c.StateDB().GetBalance(victim); !got.Eq(u256.FromUint64(fund)) {
		t.Fatalf("victim balance = %s, forged From must not spend it", got)
	}
}

func TestAddBatchMatchesSequentialAdd(t *testing.T) {
	kpA := keys.Deterministic(1)
	kpB := keys.Deterministic(2)
	mk := func(c *Chain) []*types.Transaction {
		txs := []*types.Transaction{
			signedCall(t, kpA, 1, 0, hashing.AddressFromBytes([]byte{1}), nil, 1),
			signedCall(t, kpB, 1, 0, hashing.AddressFromBytes([]byte{2}), nil, 2),
			signedCall(t, kpA, 1, 1, hashing.AddressFromBytes([]byte{3}), nil, 3),
		}
		txs = append(txs, forgedFromTx(t, kpA, 1)) // must be rejected
		txs = append(txs, txs[0])                  // duplicate
		return txs
	}

	serial := newChain(t, ethConfig(1), nil, kpA)
	serial.StateDB().AddBalance(kpB.Address(), u256.FromUint64(fund))
	serial.StateDB().Commit()
	var serialErrs []bool
	for _, tx := range mk(serial) {
		serialErrs = append(serialErrs, serial.SubmitTx(tx) != nil)
	}

	batch := newChain(t, ethConfig(1), nil, kpA)
	batch.StateDB().AddBalance(kpB.Address(), u256.FromUint64(fund))
	batch.StateDB().Commit()
	var batchErrs []bool
	for _, err := range batch.SubmitTxs(mk(batch)) {
		batchErrs = append(batchErrs, err != nil)
	}

	if !reflect.DeepEqual(serialErrs, batchErrs) {
		t.Fatalf("batch admission %v, serial %v", batchErrs, serialErrs)
	}
	if serial.PendingTxs() != batch.PendingTxs() {
		t.Fatalf("pending %d vs %d", batch.PendingTxs(), serial.PendingTxs())
	}
}

// TestApplyBlockParallelDeterminism commits the same traffic serially
// (GOMAXPROCS=1, every parallel path falls back inline) and with parallel
// pre-recovery and commit hashing, and requires bit-identical headers,
// roots, and receipts.
func TestApplyBlockParallelDeterminism(t *testing.T) {
	run := func(procs int) (roots []hashing.Hash, headers []hashing.Hash, receipts []*types.Receipt) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		kps := []*keys.KeyPair{keys.Deterministic(1), keys.Deterministic(2), keys.Deterministic(3)}
		c := newChain(t, ethConfig(1), nil, kps[0])
		for _, kp := range kps[1:] {
			c.StateDB().AddBalance(kp.Address(), u256.FromUint64(fund))
		}
		c.StateDB().Commit()
		for block := 0; block < 3; block++ {
			var txs []*types.Transaction
			for i, kp := range kps {
				tx := signedCall(t, kp, 1, uint64(block), hashing.AddressFromBytes([]byte{byte(10 + i)}), nil, uint64(block*10+i+1))
				// Decode to strip memos, as consensus-delivered blocks do.
				dec, err := types.DecodeTransaction(tx.Encode())
				if err != nil {
					t.Fatal(err)
				}
				txs = append(txs, dec)
			}
			b, recs := c.ApplyBlock(txs, uint64(100+block), ProposerAddress(1, 0))
			root, _ := c.RootAt(b.Header.Height)
			roots = append(roots, root)
			headers = append(headers, b.Header.Hash())
			receipts = append(receipts, recs...)
		}
		return
	}

	wantRoots, wantHeaders, wantRecs := run(1)
	for _, procs := range []int{2, runtime.NumCPU()} {
		roots, headers, recs := run(procs)
		if !reflect.DeepEqual(roots, wantRoots) {
			t.Fatalf("GOMAXPROCS=%d: state roots diverge", procs)
		}
		if !reflect.DeepEqual(headers, wantHeaders) {
			t.Fatalf("GOMAXPROCS=%d: header hashes diverge", procs)
		}
		if !reflect.DeepEqual(recs, wantRecs) {
			t.Fatalf("GOMAXPROCS=%d: receipts diverge", procs)
		}
	}
}
