package chain

import (
	"bytes"
	"testing"

	"scmove/internal/core"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/state"
	"scmove/internal/state/backend"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// TestMove2ProofAtHistoricalRoot locks a contract via Move1, buries the
// Move1 block under later blocks (so the live state root has moved on), and
// then rebuilds the Move2 payload from the retained-root window. The
// historical payload must be byte-identical to the one built when the Move1
// root was the head, and must still be accepted by the target chain. Runs
// against both the memory and the file state backend — the file run
// exercises the reverse-diff overlay over the log-structured store.
func TestMove2ProofAtHistoricalRoot(t *testing.T) {
	t.Run("memory", func(t *testing.T) {
		testMove2ProofAt(t, state.Options{})
	})
	t.Run("file", func(t *testing.T) {
		testMove2ProofAt(t, state.Options{Backend: backend.KindFile, Dir: t.TempDir()})
	})
}

func testMove2ProofAt(t *testing.T, srcState state.Options) {
	kp := keys.Deterministic(1)
	cfg1, cfg2 := ethConfig(1), burrowConfig(2)
	cfg1.State = srcState
	src := newChain(t, cfg1, []core.ChainParams{cfg2.Params()}, kp)
	defer src.Close()
	dst := newChain(t, cfg2, []core.ChainParams{cfg1.Params()}, kp)

	contract := hashing.AddressFromBytes([]byte{0xcc})
	src.StateDB().CreateContract(contract, movableCode())
	src.StateDB().SetStorage(contract, [32]byte{31: 1}, [32]byte{31: 42})
	src.StateDB().Commit()

	move1 := signedCall(t, kp, 1, 0, contract, core.MoveToInput(2), 0)
	if err := src.SubmitTx(move1); err != nil {
		t.Fatal(err)
	}
	block1, receipts := src.ApplyBlock(src.ProposeBatch(), 10, ProposerAddress(1, 0))
	if !receipts[0].Succeeded() {
		t.Fatalf("move1 failed: %s", receipts[0].Err)
	}

	// The reference payload, built while block1's root is the head.
	head, err := core.BuildMoveProof(src.StateDB(), contract, block1.Header.Height)
	if err != nil {
		t.Fatal(err)
	}

	// Bury the Move1 root under the confirmation depth's worth of blocks.
	// Other accounts keep changing (fees, proposer credit), so the head
	// root diverges from block1's — the historical path has real work to do.
	for i := 0; i < int(cfg1.ConfirmationDepth); i++ {
		pay := signedCall(t, kp, 1, uint64(1+i), hashing.AddressFromBytes([]byte{0xee}), nil, 1000)
		if err := src.SubmitTx(pay); err != nil {
			t.Fatal(err)
		}
		src.ApplyBlock(src.ProposeBatch(), uint64(20+i), ProposerAddress(1, 0))
	}
	r1, _ := src.RootAt(block1.Header.Height)
	if headRoot, _ := src.RootAt(src.Head().Height); headRoot == r1 {
		t.Fatal("test needs the head root to have moved past the proof root")
	}

	hist, err := src.Move2ProofAt(contract, block1.Header.Height)
	if err != nil {
		t.Fatalf("Move2ProofAt: %v", err)
	}
	if !bytes.Equal(types.EncodeMove2Payload(hist), types.EncodeMove2Payload(head)) {
		t.Fatalf("historical payload differs from the one built at head:\n head %x\n hist %x",
			types.EncodeMove2Payload(head), types.EncodeMove2Payload(hist))
	}

	// A proof at a never-executed height must fail cleanly.
	if _, err := src.Move2ProofAt(contract, src.Head().Height+100); err == nil {
		t.Fatal("Move2ProofAt accepted an unknown height")
	}

	// The historically rebuilt payload must clear full Move2 verification
	// on the target chain.
	var headers []*types.Header
	for h := uint64(0); h <= src.Head().Height; h++ {
		hdr, _ := src.HeaderAt(h)
		headers = append(headers, hdr)
	}
	if err := dst.Headers().Update(1, headers, src.Head().Height); err != nil {
		t.Fatal(err)
	}
	move2 := &types.Transaction{
		ChainID:  2,
		Nonce:    0,
		Kind:     types.TxMove2,
		GasLimit: 10_000_000,
		GasPrice: u256.FromUint64(2),
		Move2:    hist,
	}
	if err := move2.Sign(kp); err != nil {
		t.Fatal(err)
	}
	if err := dst.SubmitTx(move2); err != nil {
		t.Fatal(err)
	}
	_, receipts = dst.ApplyBlock(dst.ProposeBatch(), 200, ProposerAddress(2, 0))
	if !receipts[0].Succeeded() {
		t.Fatalf("move2 with historical proof failed: %s", receipts[0].Err)
	}
	if dst.StateDB().GetLocation(contract) != 2 {
		t.Fatal("contract must now live on chain 2")
	}
}
