package schedule

import (
	"scmove/internal/hashing"
	"scmove/internal/types"
)

// ExecMode says how the executor should run one planned transaction.
type ExecMode uint8

const (
	// ModeSpeculate: predicted accesses; execute on a speculative view in
	// its wave, validate at commit.
	ModeSpeculate ExecMode = iota
	// ModeLearn: no usable pattern; execute alone on a fresh view (exact
	// base, no validation needed) and learn the pattern from its accesses.
	ModeLearn
	// ModeDirect: never predicted and nothing to learn (Move2, creates,
	// duplicate pointers, unauthenticated senders, volatile contracts);
	// execute alone, directly on the canonical state.
	ModeDirect
)

// Plan is one block's wave partition. Waves are monotone in block index —
// wave w occupies the contiguous index range [Ends[w-1], Ends[w]) — so the
// executor alternates strictly between "execute one wave in parallel" and
// "commit it in order", and every wave starts from exactly the state a
// serial loop would present to its first transaction. The slices are owned
// by the Planner and reused on the next Plan call.
type Plan struct {
	// Ends[w] is the end index (exclusive) of wave w.
	Ends []int
	// Mode per transaction. Learn/Direct transactions are always alone in
	// their wave.
	Mode []ExecMode
	// CodeHash per transaction (zero for transfers/creates/Move2): the
	// pattern-cache key the executor relearns under after a mispredict.
	CodeHash []hashing.Hash
	// Hits/Misses are the pattern-cache lookups this plan performed.
	Hits, Misses uint64
}

// Waves returns the number of waves.
func (p *Plan) Waves() int { return len(p.Ends) }

// Wave returns the index range [start, end) of wave w.
func (p *Plan) Wave(w int) (int, int) {
	start := 0
	if w > 0 {
		start = p.Ends[w-1]
	}
	return start, p.Ends[w]
}

// waveInfo tracks, per key, the highest wave that read, wrote, or
// delta-adjusted it so far.
type waveInfo struct {
	read, write, delta int
}

// Planner computes wave partitions. It owns all scratch state, so planning
// a block of a size seen before performs zero heap allocations (the
// AllocsPerRun guard in schedule_test.go pins this); it is single-threaded
// like the chain that owns it.
type Planner struct {
	cache *Cache

	// Reusable scratch, sized to the largest block seen.
	plan  Plan
	keys  []Key  // flat predicted-key buffer
	modes []Mode // parallel to keys
	last  map[Key]waveInfo
	seen  map[*types.Transaction]struct{}
}

// NewPlanner returns a planner with a pattern cache bounded to cacheSize
// (0 means DefaultCacheSize).
func NewPlanner(cacheSize int) *Planner {
	return &Planner{
		cache: NewCache(cacheSize),
		last:  make(map[Key]waveInfo),
		seen:  make(map[*types.Transaction]struct{}),
	}
}

// Cache exposes the planner's pattern cache (the executor learns into it).
func (pl *Planner) Cache() *Cache { return pl.cache }

// Plan partitions txs into conflict-free waves. codeHashOf resolves a
// contract address against the pre-block state (safe: planning runs
// single-threaded before any lane starts). coinbase is the block proposer,
// whose universal fee credit is excluded from conflict tracking.
//
// Per transaction the planner predicts a key set: the standard frame every
// call touches (sender meta+balance read/write, callee meta read, callee
// balance delta when value moves) plus the instantiated symbolic pattern of
// the callee's code hash. The transaction's wave is one past the highest
// wave holding a conflicting access to any of its keys, clamped to be
// monotone in block index so waves stay contiguous; transactions with no
// usable prediction (cache miss, volatile contract, Move2, create,
// duplicate pointer, bad signature) become single-transaction barrier
// waves. Same-sender nonce chains order automatically through the sender
// account keys.
func (pl *Planner) Plan(txs []*types.Transaction, coinbase hashing.Address, codeHashOf func(hashing.Address) hashing.Hash) *Plan {
	n := len(txs)
	p := &pl.plan
	p.Ends = p.Ends[:0]
	p.Mode = p.Mode[:0]
	p.CodeHash = p.CodeHash[:0]
	p.Hits, p.Misses = 0, 0
	pl.keys = pl.keys[:0]
	pl.modes = pl.modes[:0]
	clear(pl.last)
	clear(pl.seen)

	prevWave := 0 // wave of tx i-1 (1-based; 0 = before the block)
	for i := 0; i < n; i++ {
		tx := txs[i]
		mode := ModeSpeculate
		var codeHash hashing.Hash
		keyStart := len(pl.keys)

		_, dup := pl.seen[tx]
		if !dup {
			pl.seen[tx] = struct{}{}
		}
		sender, err := tx.Sender()
		switch {
		case dup, err != nil, tx.Kind != types.TxCall:
			// Duplicate pointers share memoization state; creates derive
			// addresses from evolving nonces; Move2 imports via the header
			// store; failed auth writes nothing but stays serial for
			// simplicity. All are barriers.
			mode = ModeDirect
		default:
			codeHash = codeHashOf(tx.To)
			if codeHash.IsZero() {
				// Plain value transfer: fully predictable without a pattern.
				pl.pushStdKeys(sender, tx.To, !tx.Value.IsZero())
			} else if pat, ok := pl.cache.lookup(codeHash); !ok {
				p.Misses++
				mode = ModeLearn
			} else {
				p.Hits++
				if pat.volatile {
					mode = ModeDirect
				} else {
					pl.pushStdKeys(sender, tx.To, !tx.Value.IsZero())
					for j := range pat.entries {
						e := &pat.entries[j]
						pl.keys = append(pl.keys, e.instantiate(sender, tx.To, tx.Data))
						pl.modes = append(pl.modes, e.mode)
					}
				}
			}
		}

		wave := prevWave // monotone floor
		if mode != ModeSpeculate {
			// Barrier: alone in its wave, strictly after everything before.
			wave = prevWave + 1
			pl.keys = pl.keys[:keyStart]
			pl.modes = pl.modes[:keyStart]
			pl.appendTx(p, wave, mode, codeHash)
			prevWave = wave
			continue
		}
		if wave == 0 {
			wave = 1
		}
		for j := keyStart; j < len(pl.keys); j++ {
			info := pl.last[pl.keys[j]]
			m := pl.modes[j]
			w := 0
			if m&ModeWrite != 0 {
				w = maxInt(info.read, maxInt(info.write, info.delta))
			} else {
				if m&ModeRead != 0 {
					w = maxInt(info.write, info.delta)
				}
				if m&ModeDelta != 0 {
					w = maxInt(w, maxInt(info.write, info.read))
				}
			}
			if w >= wave {
				wave = w + 1
			}
		}
		// A barrier wave holds exactly one transaction: if the predecessor
		// was one, start strictly after it (ordinary predecessors only
		// require monotonicity, so sharing their wave is fine).
		if i > 0 && p.Mode[i-1] != ModeSpeculate && wave <= prevWave {
			wave = prevWave + 1
		}
		for j := keyStart; j < len(pl.keys); j++ {
			info := pl.last[pl.keys[j]]
			m := pl.modes[j]
			if m&ModeRead != 0 && wave > info.read {
				info.read = wave
			}
			if m&ModeWrite != 0 && wave > info.write {
				info.write = wave
			}
			if m&ModeDelta != 0 && wave > info.delta {
				info.delta = wave
			}
			pl.last[pl.keys[j]] = info
		}
		pl.appendTx(p, wave, mode, codeHash)
		prevWave = wave
	}
	return p
}

// appendTx records tx i's wave assignment, extending Ends so that waves
// stay contiguous ranges (wave numbers are 1-based and monotone).
func (pl *Planner) appendTx(p *Plan, wave int, mode ExecMode, codeHash hashing.Hash) {
	i := len(p.Mode)
	p.Mode = append(p.Mode, mode)
	p.CodeHash = append(p.CodeHash, codeHash)
	for len(p.Ends) < wave {
		p.Ends = append(p.Ends, i)
	}
	p.Ends[wave-1] = i + 1
}

// pushStdKeys predicts the frame every call/transfer touches: the sender's
// metadata (nonce check and bump) and balance (fee check, debit, refund),
// the callee's metadata (code lookup), and — when value moves — a
// commutative delta on the callee's balance.
func (pl *Planner) pushStdKeys(sender, to hashing.Address, hasValue bool) {
	pl.keys = append(pl.keys,
		Key{Addr: sender, Kind: kindMeta},
		Key{Addr: sender, Kind: kindBal},
		Key{Addr: to, Kind: kindMeta},
	)
	pl.modes = append(pl.modes, ModeRead|ModeWrite, ModeRead|ModeWrite|ModeDelta, ModeRead)
	if hasValue {
		pl.keys = append(pl.keys, Key{Addr: to, Kind: kindBal})
		pl.modes = append(pl.modes, ModeDelta)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
