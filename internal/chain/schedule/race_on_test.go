//go:build race

package schedule

// raceEnabled reports whether the race detector is active. The AllocsPerRun
// guard is skipped under -race: race instrumentation inserts its own heap
// allocations (shadow state for map and slice operations), so the
// zero-allocation property only holds for uninstrumented builds.
const raceEnabled = true
