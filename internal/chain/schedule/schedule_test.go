package schedule

import (
	"testing"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// fakeAccess is a hand-built read/write set standing in for a *state.View.
type fakeAccess struct {
	accts []fakeAcct
	slots []fakeSlot
}

type fakeAcct struct {
	addr                                          hashing.Address
	metaRead, metaWrite, balRead, balWrite, delta bool
}

type fakeSlot struct {
	addr          hashing.Address
	key           evm.Word
	read, written bool
}

func (f *fakeAccess) Accesses(
	acct func(addr hashing.Address, metaRead, metaWrite, balRead, balWrite, balDelta bool),
	slot func(addr hashing.Address, key evm.Word, read, written bool),
) {
	for _, a := range f.accts {
		acct(a.addr, a.metaRead, a.metaWrite, a.balRead, a.balWrite, a.delta)
	}
	for _, s := range f.slots {
		slot(s.addr, s.key, s.read, s.written)
	}
}

func wordOf(n uint64) evm.Word {
	var w evm.Word
	w[31] = byte(n)
	w[30] = byte(n >> 8)
	return w
}

func addrOf(n byte) hashing.Address { return hashing.AddressFromBytes([]byte{n}) }

func callerWord(a hashing.Address) evm.Word {
	var w evm.Word
	copy(w[12:], a[:])
	return w
}

var (
	testCode  = hashing.Sum([]byte{0xEE})
	testSelf  = addrOf(0xC0)
	testCoin  = addrOf(0xFE)
	testOther = addrOf(0x33)
)

// TestCacheSymbolization: storage keys equal to the caller's address word
// or to a calldata word must be learned symbolically and re-instantiate
// against a *different* transaction's sender and calldata; unrelated keys
// stay literal. The coinbase's delta-only balance credit must be dropped.
func TestCacheSymbolization(t *testing.T) {
	sender := addrOf(0x11)
	data := make([]byte, 64)
	data[31] = 0x42 // param word 0
	data[63] = 0x43 // param word 1

	src := &fakeAccess{
		accts: []fakeAcct{
			{addr: sender, metaRead: true, metaWrite: true, balRead: true, delta: true},
			{addr: testSelf, metaRead: true},
			{addr: testCoin, delta: true},    // dropped: universal fee credit
			{addr: testOther, balRead: true}, // literal third-party account
		},
		slots: []fakeSlot{
			{addr: testSelf, key: callerWord(sender), read: true, written: true},
			{addr: testSelf, key: wordOf(0x42), read: true}, // == param 0
			{addr: testSelf, key: wordOf(7), written: true}, // literal
		},
	}
	c := NewCache(0)
	c.Learn(testCode, sender, testSelf, testCoin, data, src)
	p, ok := c.patterns[testCode]
	if !ok || p.volatile {
		t.Fatalf("pattern not learned: %+v", p)
	}

	counts := map[symKind]int{}
	for _, e := range p.entries {
		if e.kind == kindSlot {
			counts[e.slotSym]++
		}
		if e.addr == testCoin {
			t.Fatalf("delta-only coinbase access must be dropped: %+v", e)
		}
	}
	if counts[symSender] != 1 || counts[symParam] != 1 || counts[symLit] != 1 {
		t.Fatalf("slot symbolization wrong: %+v", p.entries)
	}

	// Re-instantiate against a different sender and calldata: the symbolic
	// entries must follow, the literal one must not move.
	sender2 := addrOf(0x99)
	data2 := make([]byte, 64)
	data2[31] = 0x77
	for _, e := range p.entries {
		if e.kind != kindSlot {
			continue
		}
		k := e.instantiate(sender2, testSelf, data2)
		switch e.slotSym {
		case symSender:
			if k.Slot != callerWord(sender2) {
				t.Fatalf("sender-symbolic slot did not follow the sender: %x", k.Slot)
			}
		case symParam:
			if k.Slot != wordOf(0x77) {
				t.Fatalf("param-symbolic slot did not follow calldata: %x", k.Slot)
			}
		default:
			if k.Slot != wordOf(7) {
				t.Fatalf("literal slot moved: %x", k.Slot)
			}
		}
	}
}

// TestCacheVolatileAfterStrikes: a contract whose relearned shape keeps
// changing must be marked volatile after volatileStrikes changes, and a
// pattern larger than maxPatternEntries must be volatile immediately.
func TestCacheVolatileAfterStrikes(t *testing.T) {
	c := NewCache(0)
	sender := addrOf(0x11)
	for i := 0; i <= volatileStrikes; i++ {
		src := &fakeAccess{slots: []fakeSlot{{addr: testSelf, key: wordOf(uint64(100 + i)), written: true}}}
		c.Learn(testCode, sender, testSelf, testCoin, nil, src)
	}
	if p := c.patterns[testCode]; !p.volatile {
		t.Fatalf("shape-shifting contract not volatile after %d strikes (strikes=%d)", volatileStrikes, p.strikes)
	}

	big := &fakeAccess{}
	for i := 0; i < maxPatternEntries+1; i++ {
		big.slots = append(big.slots, fakeSlot{addr: testSelf, key: wordOf(uint64(i + 1)), written: true})
	}
	c2 := NewCache(0)
	c2.Learn(testCode, sender, testSelf, testCoin, nil, big)
	if p := c2.patterns[testCode]; !p.volatile {
		t.Fatal("oversized pattern must be volatile")
	}
}

// TestCacheFIFOEviction: at capacity the oldest inserted pattern is evicted
// — deterministically, regardless of lookup order.
func TestCacheFIFOEviction(t *testing.T) {
	c := NewCache(2)
	sender := addrOf(0x11)
	src := &fakeAccess{slots: []fakeSlot{{addr: testSelf, key: wordOf(1), read: true}}}
	h1, h2, h3 := hashing.Sum([]byte{1}), hashing.Sum([]byte{2}), hashing.Sum([]byte{3})
	c.Learn(h1, sender, testSelf, testCoin, nil, src)
	c.Learn(h2, sender, testSelf, testCoin, nil, src)
	c.Learn(h3, sender, testSelf, testCoin, nil, src)
	if c.Len() != 2 {
		t.Fatalf("cache size %d, want 2", c.Len())
	}
	if _, ok := c.patterns[h1]; ok {
		t.Fatal("oldest pattern must be evicted first")
	}
	if _, ok := c.patterns[h3]; !ok {
		t.Fatal("newest pattern missing")
	}
}

// --- planner tests --------------------------------------------------------

func plannerTx(t *testing.T, kp *keys.KeyPair, nonce uint64, kind types.TxKind, to hashing.Address, data []byte) *types.Transaction {
	t.Helper()
	tx := &types.Transaction{
		ChainID:  1,
		Nonce:    nonce,
		Kind:     kind,
		To:       to,
		GasLimit: 1_000_000,
		GasPrice: u256.FromUint64(1),
		Data:     data,
	}
	if err := tx.Sign(kp); err != nil {
		t.Fatal(err)
	}
	return tx
}

// checkPlanShape validates the structural invariants every plan must hold:
// contiguous waves covering all transactions, and barriers alone in theirs.
func checkPlanShape(t *testing.T, p *Plan, n int) {
	t.Helper()
	if len(p.Mode) != n || len(p.CodeHash) != n {
		t.Fatalf("plan covers %d/%d txs", len(p.Mode), n)
	}
	prev := 0
	for w := 0; w < p.Waves(); w++ {
		start, end := p.Wave(w)
		if start != prev || end <= start {
			t.Fatalf("wave %d = [%d,%d) not contiguous after %d", w, start, end, prev)
		}
		prev = end
		for i := start; i < end; i++ {
			if p.Mode[i] != ModeSpeculate && end-start != 1 {
				t.Fatalf("barrier tx %d shares wave %d of width %d", i, w, end-start)
			}
		}
	}
	if prev != n {
		t.Fatalf("waves cover %d of %d txs", prev, n)
	}
}

// TestPlanWaves covers the planner end to end: disjoint transfers share one
// wave, same-sender chains serialize, a shared literal slot serializes its
// callers while a caller-keyed slot keeps them parallel, and cache misses,
// creates, and duplicate pointers become singleton barrier waves.
func TestPlanWaves(t *testing.T) {
	contract := addrOf(0xC0)
	contractHash := hashing.Sum([]byte{0xAA})
	codeHashOf := func(a hashing.Address) hashing.Hash {
		if a == contract {
			return contractHash
		}
		return hashing.Hash{}
	}
	coin := addrOf(0xFE)
	kp := func(i uint64) *keys.KeyPair { return keys.Deterministic(i) }

	t.Run("disjoint transfers one wave", func(t *testing.T) {
		pl := NewPlanner(0)
		var txs []*types.Transaction
		for i := uint64(1); i <= 6; i++ {
			txs = append(txs, plannerTx(t, kp(i), 0, types.TxCall, addrOf(byte(0x40+i)), nil))
		}
		p := pl.Plan(txs, coin, codeHashOf)
		checkPlanShape(t, p, len(txs))
		if p.Waves() != 1 {
			t.Fatalf("disjoint transfers need 1 wave, got %d", p.Waves())
		}
	})

	t.Run("same-sender chain serializes", func(t *testing.T) {
		pl := NewPlanner(0)
		var txs []*types.Transaction
		for n := uint64(0); n < 4; n++ {
			txs = append(txs, plannerTx(t, kp(1), n, types.TxCall, addrOf(0x41), nil))
		}
		p := pl.Plan(txs, coin, codeHashOf)
		checkPlanShape(t, p, len(txs))
		if p.Waves() != 4 {
			t.Fatalf("nonce chain needs 4 waves, got %d", p.Waves())
		}
	})

	t.Run("literal slot serializes, sender slot does not", func(t *testing.T) {
		pl := NewPlanner(0)
		sender := kp(1).Address()
		pl.Cache().Learn(contractHash, sender, contract, coin, nil, &fakeAccess{
			slots: []fakeSlot{{addr: contract, key: callerWord(sender), read: true, written: true}},
		})
		var txs []*types.Transaction
		for i := uint64(1); i <= 5; i++ {
			txs = append(txs, plannerTx(t, kp(i), 0, types.TxCall, contract, nil))
		}
		p := pl.Plan(txs, coin, codeHashOf)
		checkPlanShape(t, p, len(txs))
		if p.Waves() != 1 {
			t.Fatalf("caller-keyed contract should plan 1 wave, got %d", p.Waves())
		}
		if p.Hits != 5 || p.Misses != 0 {
			t.Fatalf("hits=%d misses=%d", p.Hits, p.Misses)
		}

		pl2 := NewPlanner(0)
		pl2.Cache().Learn(contractHash, sender, contract, coin, nil, &fakeAccess{
			slots: []fakeSlot{{addr: contract, key: wordOf(0), read: true, written: true}},
		})
		p2 := pl2.Plan(txs, coin, codeHashOf)
		checkPlanShape(t, p2, len(txs))
		if p2.Waves() != 5 {
			t.Fatalf("shared-slot contract must serialize into 5 waves, got %d", p2.Waves())
		}
	})

	t.Run("barriers", func(t *testing.T) {
		pl := NewPlanner(0)
		miss := plannerTx(t, kp(1), 0, types.TxCall, contract, nil) // unknown hash: learn
		create := plannerTx(t, kp(2), 0, types.TxCreate, hashing.Address{}, []byte{0x00})
		dup := plannerTx(t, kp(3), 0, types.TxCall, addrOf(0x41), nil)
		after := plannerTx(t, kp(4), 0, types.TxCall, addrOf(0x42), nil)
		txs := []*types.Transaction{miss, create, dup, dup, after}
		p := pl.Plan(txs, coin, codeHashOf)
		checkPlanShape(t, p, len(txs))
		if p.Mode[0] != ModeLearn {
			t.Fatalf("cache miss must learn, got %v", p.Mode[0])
		}
		if p.Mode[1] != ModeDirect || p.Mode[3] != ModeDirect {
			t.Fatalf("create/duplicate must be direct: %v", p.Mode)
		}
		if p.Mode[2] != ModeSpeculate || p.Mode[4] != ModeSpeculate {
			t.Fatalf("plain transfers must speculate: %v", p.Mode)
		}
		if p.Misses != 1 {
			t.Fatalf("misses=%d", p.Misses)
		}
		// Every barrier is its own wave and each successor of a barrier
		// starts strictly later, so this block is fully serialized.
		if p.Waves() != 5 {
			t.Fatalf("barrier-heavy block planned %d waves: %v", p.Waves(), p.Ends)
		}
	})
}

// TestPlanZeroAllocHitPath is the satellite guard: once the pattern cache
// is warm and the planner's scratch has grown to the block size, planning
// is O(txs) with zero heap allocations — no per-wave slices, no map churn.
func TestPlanZeroAllocHitPath(t *testing.T) {
	contract := addrOf(0xC0)
	contractHash := hashing.Sum([]byte{0xAA})
	codeHashOf := func(a hashing.Address) hashing.Hash {
		if a == contract {
			return contractHash
		}
		return hashing.Hash{}
	}
	coin := addrOf(0xFE)

	if raceEnabled {
		t.Skip("race instrumentation allocates; zero-alloc holds only uninstrumented")
	}

	pl := NewPlanner(0)
	teach := keys.Deterministic(1).Address()
	pl.Cache().Learn(contractHash, teach, contract, coin, nil, &fakeAccess{
		slots: []fakeSlot{
			{addr: contract, key: callerWord(teach), read: true, written: true},
			{addr: contract, key: wordOf(0x42), read: true},
		},
	})

	var txs []*types.Transaction
	for i := uint64(1); i <= 64; i++ {
		to := contract
		if i%4 == 0 {
			to = addrOf(byte(0x40 + i)) // sprinkle transfers between the calls
		}
		txs = append(txs, plannerTx(t, keys.Deterministic(i), 0, types.TxCall, to, nil))
	}
	// Warm: memoize senders, grow the scratch slices and map buckets.
	pl.Plan(txs, coin, codeHashOf)
	pl.Plan(txs, coin, codeHashOf)

	allocs := testing.AllocsPerRun(100, func() {
		pl.Plan(txs, coin, codeHashOf)
	})
	if allocs != 0 {
		t.Fatalf("warm Plan allocates %.1f objects per block, want 0", allocs)
	}
}
