//go:build !race

package schedule

// raceEnabled reports whether the race detector is active; see race_on_test.go.
const raceEnabled = false
