// Package schedule implements the deterministic conflict-aware block
// scheduler: a bounded cache of per-contract access patterns learned from
// prior executions, and a planner that partitions a block's transactions
// into conflict-free waves the parallel executor can run without blind
// speculation. Patterns are *symbolic* — a storage key observed to equal
// the caller's address word or a calldata word is stored as that symbol,
// not as the literal value — so one learned pattern predicts the accesses
// of every future caller of the same code.
package schedule

import (
	"scmove/internal/evm"
	"scmove/internal/hashing"
)

// Mode is the access-mode bitmask of one predicted key.
type Mode uint8

const (
	// ModeRead observes the value: conflicts with writes and deltas.
	ModeRead Mode = 1 << iota
	// ModeWrite replaces the value: conflicts with everything.
	ModeWrite
	// ModeDelta is a commutative balance adjustment: deltas commute with
	// each other, so two deltas to one key never conflict, but a delta
	// conflicts with a read (the read observes the sum) and with a write.
	ModeDelta
)

// keyKind splits an account into independently-tracked conflict domains:
// balance deltas (the coinbase credit every transaction performs, plain
// value transfers) must not serialize against metadata reads (the code
// lookup every call performs).
type keyKind uint8

const (
	// kindMeta covers existence, nonce, code, location, and move-nonce.
	kindMeta keyKind = iota
	// kindBal covers the balance.
	kindBal
	// kindSlot is one storage slot.
	kindSlot
)

// Key identifies one predicted state access at conflict granularity.
type Key struct {
	Addr hashing.Address
	Slot evm.Word // kindSlot only
	Kind keyKind
}

// symKind says how a learned address or storage key generalizes.
type symKind uint8

const (
	symLit    symKind = iota // the literal value, every caller
	symSender                // the transaction sender (CALLER-keyed storage)
	symSelf                  // the called contract (tx.To)
	symParam                 // the 32-byte calldata word at offset 32·param
)

// patEntry is one symbolic access in a learned pattern.
type patEntry struct {
	kind    keyKind
	addrSym symKind // symLit | symSender | symSelf
	addr    hashing.Address
	slotSym symKind // kindSlot only: symLit | symSender | symParam
	slot    evm.Word
	param   int
	mode    Mode
}

// pattern is the learned access set of one contract code hash.
type pattern struct {
	entries []patEntry
	// strikes counts consecutive relearns that produced a different
	// symbolic shape; volatile contracts stop being predicted.
	strikes  int
	volatile bool
}

const (
	// DefaultCacheSize bounds the per-chain pattern cache (FIFO eviction,
	// deterministic: insertion order is execution order).
	DefaultCacheSize = 1024
	// maxPatternEntries caps one pattern; contracts that touch more state
	// than this per call are marked volatile rather than tracked.
	maxPatternEntries = 64
	// maxParamWords bounds how deep into calldata symbolization looks.
	maxParamWords = 8
	// volatileStrikes is how many consecutive shape-changing relearns mark
	// a contract volatile (never predicted again).
	volatileStrikes = 3
)

// Cache is the bounded code-hash → access-pattern store. It is owned by a
// single chain and never accessed concurrently.
type Cache struct {
	limit    int
	patterns map[hashing.Hash]*pattern
	fifo     []hashing.Hash // insertion order, for deterministic eviction
	hits     uint64
	misses   uint64
}

// NewCache returns a pattern cache bounded to limit entries (0 means
// DefaultCacheSize).
func NewCache(limit int) *Cache {
	if limit <= 0 {
		limit = DefaultCacheSize
	}
	return &Cache{
		limit:    limit,
		patterns: make(map[hashing.Hash]*pattern),
	}
}

// Len returns the number of cached patterns.
func (c *Cache) Len() int { return len(c.patterns) }

// lookup returns the pattern for a code hash, counting hit/miss.
func (c *Cache) lookup(codeHash hashing.Hash) (*pattern, bool) {
	p, ok := c.patterns[codeHash]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return p, ok
}

// wordIsAddr reports whether w is a 20-byte address right-aligned in a
// 32-byte word (the CALLER push convention) matching a.
func wordIsAddr(w evm.Word, a hashing.Address) bool {
	for i := 0; i < 12; i++ {
		if w[i] != 0 {
			return false
		}
	}
	return a == hashing.Address(w[12:32])
}

// calldataWord returns the 32-byte word at offset 32·i of data, zero-padded
// like CALLDATALOAD.
func calldataWord(data []byte, i int) evm.Word {
	var w evm.Word
	off := i * 32
	if off < len(data) {
		copy(w[:], data[off:])
	}
	return w
}

// symbolizeSlot generalizes one observed storage key against the
// transaction that produced it. Priority is fixed (sender, then calldata
// words low offset first, then literal) so relearning the same behaviour
// yields the same symbolic shape.
func symbolizeSlot(key evm.Word, sender hashing.Address, data []byte) (symKind, int) {
	if wordIsAddr(key, sender) {
		return symSender, 0
	}
	words := (len(data) + 31) / 32
	if words > maxParamWords {
		words = maxParamWords
	}
	for i := 0; i < words; i++ {
		if key == calldataWord(data, i) {
			return symParam, i
		}
	}
	return symLit, 0
}

// symbolizeAddr generalizes one observed account address.
func symbolizeAddr(addr, sender, self hashing.Address) symKind {
	switch addr {
	case sender:
		return symSender
	case self:
		return symSelf
	}
	return symLit
}

// instantiate resolves a symbolic entry against a concrete transaction.
func (e *patEntry) instantiate(sender, self hashing.Address, data []byte) Key {
	k := Key{Kind: e.kind}
	switch e.addrSym {
	case symSender:
		k.Addr = sender
	case symSelf:
		k.Addr = self
	default:
		k.Addr = e.addr
	}
	if e.kind == kindSlot {
		switch e.slotSym {
		case symSender:
			copy(k.Slot[12:], sender[:])
		case symParam:
			k.Slot = calldataWord(data, e.param)
		default:
			k.Slot = e.slot
		}
	}
	return k
}

// accessSource is the recorded read/write set of one executed transaction
// (implemented by *state.View via its Accesses method).
type accessSource interface {
	Accesses(
		acct func(addr hashing.Address, metaRead, metaWrite, balRead, balWrite, balDelta bool),
		slot func(addr hashing.Address, key evm.Word, read, written bool),
	)
}

// Learn records (or re-records) the access pattern of codeHash from the
// read/write set of one executed call transaction. sender/self/data are the
// transaction facts the symbolizer generalizes against; coinbase accesses
// that are pure balance deltas are dropped (every transaction credits the
// coinbase, and deltas never conflict, so tracking them only bloats
// patterns). If relearning produces a different symbolic shape than what
// was cached, the contract accrues a strike; volatileStrikes consecutive
// shape changes mark it volatile and it is never predicted again.
func (c *Cache) Learn(codeHash hashing.Hash, sender, self, coinbase hashing.Address, data []byte, src accessSource) {
	if codeHash.IsZero() {
		return
	}
	old := c.patterns[codeHash]
	if old != nil && old.volatile {
		return
	}
	entries := make([]patEntry, 0, 8)
	overflow := false
	src.Accesses(
		func(addr hashing.Address, metaRead, metaWrite, balRead, balWrite, balDelta bool) {
			var metaMode, balMode Mode
			if metaRead {
				metaMode |= ModeRead
			}
			if metaWrite {
				metaMode |= ModeWrite
			}
			if balRead {
				balMode |= ModeRead
			}
			if balWrite {
				balMode |= ModeWrite
			}
			if balDelta {
				balMode |= ModeDelta
			}
			if addr == coinbase && metaMode == 0 && balMode == ModeDelta {
				return // universal coinbase credit, never a conflict
			}
			sym := symbolizeAddr(addr, sender, self)
			lit := addr
			if sym != symLit {
				lit = hashing.Address{}
			}
			if metaMode != 0 {
				entries = append(entries, patEntry{kind: kindMeta, addrSym: sym, addr: lit, mode: metaMode})
			}
			if balMode != 0 {
				entries = append(entries, patEntry{kind: kindBal, addrSym: sym, addr: lit, mode: balMode})
			}
		},
		func(addr hashing.Address, key evm.Word, read, written bool) {
			var mode Mode
			if read {
				mode |= ModeRead
			}
			if written {
				mode |= ModeWrite
			}
			if mode == 0 {
				return
			}
			aSym := symbolizeAddr(addr, sender, self)
			lit := addr
			if aSym != symLit {
				lit = hashing.Address{}
			}
			sSym, param := symbolizeSlot(key, sender, data)
			e := patEntry{kind: kindSlot, addrSym: aSym, addr: lit, slotSym: sSym, param: param, mode: mode}
			if sSym == symLit {
				e.slot = key
			}
			entries = append(entries, e)
		},
	)
	if len(entries) > maxPatternEntries {
		overflow = true
	}

	if old == nil {
		p := &pattern{entries: entries, volatile: overflow}
		c.insert(codeHash, p)
		return
	}
	if overflow {
		old.volatile = true
		return
	}
	if sameShape(old.entries, entries) {
		old.strikes = 0
		return
	}
	old.strikes++
	old.entries = entries
	if old.strikes >= volatileStrikes {
		old.volatile = true
	}
}

// insert stores a new pattern, evicting the oldest entry at capacity.
func (c *Cache) insert(codeHash hashing.Hash, p *pattern) {
	if len(c.patterns) >= c.limit {
		oldest := c.fifo[0]
		c.fifo = c.fifo[1:]
		delete(c.patterns, oldest)
	}
	c.patterns[codeHash] = p
	c.fifo = append(c.fifo, codeHash)
}

// sameShape reports whether two learned access sets are symbolically
// identical. Order matters: both sets come from Accesses iteration of
// equivalent executions, but map order varies, so compare as multisets via
// a quadratic scan (patterns are ≤ maxPatternEntries).
func sameShape(a, b []patEntry) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
outer:
	for i := range a {
		for j := range b {
			if !used[j] && a[i] == b[j] {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}
