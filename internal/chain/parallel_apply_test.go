package chain

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"scmove/internal/evm/asm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/metrics"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// Pre-deployed fuzz contracts. rmw is maximally conflicting: every call
// read-modify-writes slot 0. disjoint writes a caller-keyed slot, so calls
// from different senders never conflict. boom self-destructs on first call
// (later calls hit a code-less account and degrade to transfers).
var (
	fuzzRMWAddr      = hashing.AddressFromBytes([]byte{0xC1})
	fuzzDisjointAddr = hashing.AddressFromBytes([]byte{0xC2})
	fuzzBoomAddr     = hashing.AddressFromBytes([]byte{0xC3})

	fuzzRMWCode      = asm.MustAssemble("PUSH1 0 SLOAD PUSH1 1 ADD PUSH1 0 SSTORE STOP")
	fuzzDisjointCode = asm.MustAssemble("PUSH1 0 CALLDATALOAD CALLER SSTORE STOP")
	fuzzBoomCode     = asm.MustAssemble("CALLER SELFDESTRUCT")
)

func fuzzSenders() []*keys.KeyPair {
	kps := make([]*keys.KeyPair, 8)
	for i := range kps {
		kps[i] = keys.Deterministic(uint64(i + 1))
	}
	return kps
}

// buildFuzzTraffic deterministically generates ~120 transactions — valid
// transfers (some to the coinbase), conflicting and disjoint contract calls,
// creates, self-destruct calls, bad nonces, underfunded value sends, forged
// senders, and duplicated pointers — then chunks them into random block
// batches including empty and sub-threshold ones. Every transaction is
// decoded from its wire form so no run inherits memoized senders, and
// duplicate pointers stay duplicates.
func buildFuzzTraffic(t *testing.T, seed int64, chainID hashing.ChainID) [][]*types.Transaction {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	kps := fuzzSenders()
	nonces := make([]uint64, len(kps))

	var txs []*types.Transaction
	push := func(tx *types.Transaction) {
		dec, err := types.DecodeTransaction(tx.Encode())
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, dec)
	}

	for len(txs) < 120 {
		s := rng.Intn(len(kps))
		kp := kps[s]
		switch rng.Intn(12) {
		case 0, 1: // plain transfer
			to := hashing.AddressFromBytes([]byte{byte(rng.Intn(20) + 1)})
			push(signedCall(t, kp, chainID, nonces[s], to, nil, uint64(rng.Intn(500)+1)))
			nonces[s]++
		case 2: // transfer straight to the coinbase (conflicts with every fee credit base)
			push(signedCall(t, kp, chainID, nonces[s], ProposerAddress(chainID, 0), nil, uint64(rng.Intn(100)+1)))
			nonces[s]++
		case 3, 4: // read-modify-write on the shared slot
			push(signedCall(t, kp, chainID, nonces[s], fuzzRMWAddr, nil, 0))
			nonces[s]++
		case 5, 6: // caller-keyed disjoint write
			var data [32]byte
			data[31] = byte(rng.Intn(200) + 1)
			push(signedCall(t, kp, chainID, nonces[s], fuzzDisjointAddr, data[:], 0))
			nonces[s]++
		case 7: // bad nonce: fails before charging
			push(signedCall(t, kp, chainID, nonces[s]+7, hashing.AddressFromBytes([]byte{9}), nil, 1))
		case 8: // insufficient funds for value
			push(signedCall(t, kp, chainID, nonces[s], hashing.AddressFromBytes([]byte{9}), nil, 10*fund))
		case 9: // forged sender: authentication failure path
			push(forgedFromTx(t, kp, chainID))
		case 10: // contract creation
			tx := &types.Transaction{
				ChainID:  chainID,
				Nonce:    nonces[s],
				Kind:     types.TxCreate,
				GasLimit: 1_000_000,
				GasPrice: u256.FromUint64(2),
				Data:     asm.MustAssemble("PUSH1 7 PUSH1 3 SSTORE STOP"),
			}
			if err := tx.Sign(kp); err != nil {
				t.Fatal(err)
			}
			push(tx)
			nonces[s]++
		case 11: // SELFDESTRUCT target
			push(signedCall(t, kp, chainID, nonces[s], fuzzBoomAddr, nil, uint64(rng.Intn(10))))
			nonces[s]++
		}
		if len(txs) > 0 && rng.Intn(10) == 0 {
			// Duplicate pointer: same *Transaction twice in the stream. The
			// second execution sees a consumed nonce and fails identically on
			// both engines; in one block it also exercises the skip list.
			txs = append(txs, txs[len(txs)-1])
		}
	}

	var blocks [][]*types.Transaction
	for i := 0; i < len(txs); {
		n := rng.Intn(13) // 0..12: empty, sub-threshold, and full batches
		if i+n > len(txs) {
			n = len(txs) - i
		}
		blocks = append(blocks, txs[i:i+n])
		i += n
	}
	return blocks
}

// runFuzzChain replays the block stream on a fresh chain and returns every
// commit root, header hash, and receipt, plus the observability registry.
func runFuzzChain(t *testing.T, cfg Config, blocks [][]*types.Transaction) ([]hashing.Hash, []hashing.Hash, []*types.Receipt, *metrics.Registry) {
	t.Helper()
	kps := fuzzSenders()
	c := newChain(t, cfg, nil, kps[0])
	db := c.StateDB()
	for _, kp := range kps[1:] {
		db.AddBalance(kp.Address(), u256.FromUint64(fund))
	}
	db.CreateContract(fuzzRMWAddr, fuzzRMWCode)
	db.CreateContract(fuzzDisjointAddr, fuzzDisjointCode)
	db.CreateContract(fuzzBoomAddr, fuzzBoomCode)
	db.Commit()
	reg := metrics.NewRegistry()
	c.SetObserver(reg, func() time.Duration { return 0 })

	var roots, headers []hashing.Hash
	var receipts []*types.Receipt
	for i, blk := range blocks {
		b, recs := c.ApplyBlock(blk, uint64(1000+i), ProposerAddress(cfg.ChainID, 0))
		root, _ := c.RootAt(b.Header.Height)
		roots = append(roots, root)
		headers = append(headers, b.Header.Hash())
		receipts = append(receipts, recs...)
	}
	return roots, headers, receipts, reg
}

// TestApplyBlockParallelDifferential is the serial-identity gate of the
// optimistic executor: the same randomized traffic — conflicts, failures,
// forgeries, duplicates, self-destructs, chaotic block sizes — must produce
// bit-identical roots, header hashes, and receipts whether executed by the
// serial loop or by the parallel scheduler at any GOMAXPROCS.
func TestApplyBlockParallelDifferential(t *testing.T) {
	for _, cfgOf := range []func(hashing.ChainID) Config{ethConfig, burrowConfig} {
		cfg := cfgOf(1)
		name := cfg.TreeKind.String()
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				serialCfg := cfg
				serialCfg.ParallelThreshold = -1 // force the serial loop
				wantRoots, wantHeaders, wantRecs, _ := runFuzzChain(t, serialCfg, buildFuzzTraffic(t, seed, cfg.ChainID))

				parCfg := cfg
				parCfg.ParallelThreshold = 1 // parallelize every non-empty block
				parCfg.Strategy = StrategyOptimistic
				for _, procs := range []int{1, 2, 4, runtime.NumCPU()} {
					prev := runtime.GOMAXPROCS(procs)
					roots, headers, recs, reg := runFuzzChain(t, parCfg, buildFuzzTraffic(t, seed, cfg.ChainID))
					runtime.GOMAXPROCS(prev)
					if !reflect.DeepEqual(roots, wantRoots) {
						t.Fatalf("seed %d GOMAXPROCS=%d: state roots diverge", seed, procs)
					}
					if !reflect.DeepEqual(headers, wantHeaders) {
						t.Fatalf("seed %d GOMAXPROCS=%d: header hashes diverge", seed, procs)
					}
					if !reflect.DeepEqual(recs, wantRecs) {
						t.Fatalf("seed %d GOMAXPROCS=%d: receipts diverge", seed, procs)
					}
					counters := reg.Counters()
					if procs >= 2 && counters.Get("parallel.blocks") == 0 {
						t.Fatalf("seed %d GOMAXPROCS=%d: scheduler never engaged", seed, procs)
					}
					if procs == 1 && counters.Get("parallel.blocks") != 0 {
						t.Fatalf("seed %d: scheduler must stay off at GOMAXPROCS=1", seed)
					}
					if got, want := counters.Get("parallel.committed")+counters.Get("parallel.reexecuted"),
						counters.Get("parallel.blocks"); want > 0 && got == 0 {
						t.Fatalf("seed %d GOMAXPROCS=%d: no commits recorded", seed, procs)
					}
				}
			}
		})
	}
}

// TestApplyBlockEmptyFastPath: an empty batch must not enter recovery or the
// scheduler, and must still commit a block (possibly with an unchanged root).
func TestApplyBlockEmptyFastPath(t *testing.T) {
	kp := keys.Deterministic(1)
	cfg := ethConfig(1)
	cfg.ParallelThreshold = 1
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	c := newChain(t, cfg, nil, kp)
	reg := metrics.NewRegistry()
	c.SetObserver(reg, func() time.Duration { return 0 })
	root0, _ := c.RootAt(0)

	block, receipts := c.ApplyBlock(nil, 100, ProposerAddress(1, 0))
	if len(receipts) != 0 {
		t.Fatalf("empty block produced receipts: %+v", receipts)
	}
	if block.Header.Height != 1 || block.Header.GasUsed != 0 {
		t.Fatalf("header %+v", block.Header)
	}
	if root, _ := c.RootAt(1); root != root0 {
		t.Fatal("empty block must not change state")
	}
	if reg.Counters().Get("parallel.blocks") != 0 {
		t.Fatal("empty block must skip the scheduler")
	}
}

// TestParallelThresholdGating: sub-threshold blocks run serially, at- or
// above-threshold ones engage the scheduler; a negative threshold disables
// it outright.
func TestParallelThresholdGating(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	run := func(threshold, txCount int) uint64 {
		kp := keys.Deterministic(1)
		cfg := ethConfig(1)
		cfg.ParallelThreshold = threshold
		cfg.Strategy = StrategyOptimistic
		c := newChain(t, cfg, nil, kp)
		reg := metrics.NewRegistry()
		c.SetObserver(reg, func() time.Duration { return 0 })
		var txs []*types.Transaction
		for i := 0; i < txCount; i++ {
			txs = append(txs, signedCall(t, kp, 1, uint64(i), hashing.AddressFromBytes([]byte{7}), nil, 1))
		}
		c.ApplyBlock(txs, 100, ProposerAddress(1, 0))
		return reg.Counters().Get("parallel.blocks")
	}

	if got := run(0, DefaultParallelThreshold-1); got != 0 {
		t.Fatalf("sub-threshold block engaged the scheduler (%d)", got)
	}
	if got := run(0, DefaultParallelThreshold); got != 1 {
		t.Fatalf("at-threshold block must engage the scheduler (%d)", got)
	}
	if got := run(-1, 20); got != 0 {
		t.Fatalf("negative threshold must disable the scheduler (%d)", got)
	}
}

// TestParallelAbortFallback drives a fully-conflicting block large enough to
// trip the bounded-abort cutoff and checks both the counters and the result:
// the block must still match serial execution exactly.
func TestParallelAbortFallback(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	mkTxs := func() []*types.Transaction {
		kp := keys.Deterministic(1)
		var txs []*types.Transaction
		for i := 0; i < 3*abortFallback; i++ {
			tx := signedCall(t, kp, 1, uint64(i), fuzzRMWAddr, nil, 0)
			dec, err := types.DecodeTransaction(tx.Encode())
			if err != nil {
				t.Fatal(err)
			}
			txs = append(txs, dec)
		}
		return txs
	}
	run := func(threshold int) (hashing.Hash, *metrics.Registry) {
		kp := keys.Deterministic(1)
		cfg := ethConfig(1)
		cfg.ParallelThreshold = threshold
		cfg.Strategy = StrategyOptimistic
		c := newChain(t, cfg, nil, kp)
		c.StateDB().CreateContract(fuzzRMWAddr, fuzzRMWCode)
		c.StateDB().Commit()
		reg := metrics.NewRegistry()
		c.SetObserver(reg, func() time.Duration { return 0 })
		b, _ := c.ApplyBlock(mkTxs(), 100, ProposerAddress(1, 0))
		root, _ := c.RootAt(b.Header.Height)
		return root, reg
	}

	wantRoot, _ := run(-1)
	root, reg := run(1)
	if root != wantRoot {
		t.Fatal("conflicting block diverges from serial execution")
	}
	c := reg.Counters()
	if c.Get("parallel.cutoffs") == 0 {
		t.Fatalf("RMW chain must trip the abort cutoff: aborted=%d reexecuted=%d",
			c.Get("parallel.aborted"), c.Get("parallel.reexecuted"))
	}
	if c.Get("parallel.aborted") < abortFallback {
		t.Fatalf("aborted = %d, want >= %d", c.Get("parallel.aborted"), abortFallback)
	}
}

// TestParallelPerTargetCutoff pins the cutoff's granularity: a hot-contract
// abort storm at the front of a block must stop speculation only for that
// contract, not for the unrelated disjoint transactions behind it. Under
// the old 8-consecutive-global cutoff the disjoint tail was forced onto
// the serial path; per-target, every disjoint transaction still commits
// speculatively and exactly one cutoff fires.
func TestParallelPerTargetCutoff(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const hot = 2*abortFallback + 1 // 1 commit + 8 aborts trip the cutoff, 8 ride serial
	const cold = 16
	mkTxs := func() []*types.Transaction {
		var txs []*types.Transaction
		push := func(tx *types.Transaction) {
			dec, err := types.DecodeTransaction(tx.Encode())
			if err != nil {
				t.Fatal(err)
			}
			txs = append(txs, dec)
		}
		for i := 0; i < hot; i++ {
			push(signedCall(t, keys.Deterministic(uint64(i+1)), 1, 0, fuzzRMWAddr, nil, 0))
		}
		for i := 0; i < cold; i++ {
			var data [32]byte
			data[31] = byte(i + 1)
			push(signedCall(t, keys.Deterministic(uint64(hot+i+1)), 1, 0, fuzzDisjointAddr, data[:], 0))
		}
		return txs
	}
	run := func(threshold int) (hashing.Hash, *metrics.Registry) {
		cfg := ethConfig(1)
		cfg.ParallelThreshold = threshold
		cfg.Strategy = StrategyOptimistic
		c := newChain(t, cfg, nil, keys.Deterministic(1))
		db := c.StateDB()
		for i := 2; i <= hot+cold; i++ {
			db.AddBalance(keys.Deterministic(uint64(i)).Address(), u256.FromUint64(fund))
		}
		db.CreateContract(fuzzRMWAddr, fuzzRMWCode)
		db.CreateContract(fuzzDisjointAddr, fuzzDisjointCode)
		db.Commit()
		reg := metrics.NewRegistry()
		c.SetObserver(reg, func() time.Duration { return 0 })
		b, _ := c.ApplyBlock(mkTxs(), 100, ProposerAddress(1, 0))
		root, _ := c.RootAt(b.Header.Height)
		return root, reg
	}

	wantRoot, _ := run(-1)
	root, reg := run(1)
	if root != wantRoot {
		t.Fatal("per-target cutoff block diverges from serial execution")
	}
	c := reg.Counters()
	if got := c.Get("parallel.cutoffs"); got != 1 {
		t.Fatalf("parallel.cutoffs = %d, want exactly 1 (the hot contract)", got)
	}
	// The first hot transaction and every disjoint transaction commit
	// speculatively; only the hot tail rides the serial path.
	if got, want := c.Get("parallel.committed"), uint64(cold+1); got != want {
		t.Fatalf("parallel.committed = %d, want %d (disjoint txs must not be cut off)", got, want)
	}
	if got, want := c.Get("parallel.reexecuted"), uint64(hot-1); got != want {
		t.Fatalf("parallel.reexecuted = %d, want %d (hot tail only)", got, want)
	}
}
