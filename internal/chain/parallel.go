package chain

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/state"
	"scmove/internal/types"
)

// DefaultParallelThreshold is the block size below which ApplyBlock stays
// serial when Config.ParallelThreshold is zero: spawning lanes for a couple
// of transactions costs more than the lanes can save.
const DefaultParallelThreshold = 4

// abortFallback is the bounded-abort cutoff: after this many consecutive
// failed validations *of one target* (the called contract or transfer
// recipient; the sender for creates) the commit thread stops consuming
// speculative results for that target for the rest of the block and runs
// its transactions exactly like the serial loop (on the commit overlay).
// A hot-contract storm therefore degrades only itself: unrelated disjoint
// transactions in the same block keep speculating and committing. The
// bound is counted by the in-order commit thread, so it is deterministic
// for a given block and state, independent of lane timing.
const abortFallback = 8

// cutoffKey buckets a transaction for the bounded-abort cutoff: the
// contract (or recipient) it calls, or the creator for deploys. Every
// field read is deterministic — no recovered state is involved.
func cutoffKey(tx *types.Transaction) hashing.Address {
	if tx.Kind == types.TxCreate {
		return tx.From
	}
	return tx.To
}

// parallelStats summarizes one parallel ApplyBlock for the observability
// registry. All counts are taken by the in-order commit thread and are a
// pure function of (state, block, GOMAXPROCS) — never of thread timing.
type parallelStats struct {
	lanes      int           // speculation goroutines spawned (0: serial block)
	speculated int           // speculative views the commit thread validated
	committed  int           // views that validated clean and were applied
	aborted    int           // views rejected by read-set validation
	reexecuted int           // transactions re-run serially in block order
	skipped    int           // never speculated (Move2, duplicate pointers)
	cutoffs    int           // times the bounded-abort fallback engaged
	validation time.Duration // wall-clock spent in read-set validation
}

// parallelEligible reports whether ApplyBlock should use the optimistic
// scheduler for a block of n transactions.
func (c *Chain) parallelEligible(n int) bool {
	if runtime.GOMAXPROCS(0) < 2 {
		return false
	}
	th := c.cfg.ParallelThreshold
	if th == 0 {
		th = DefaultParallelThreshold
	}
	return th > 0 && n >= th
}

// applyBlockParallel executes a block with optimistic concurrency control,
// Block-STM style, producing receipts and state bit-identical to the serial
// loop in ApplyBlock:
//
//   - Speculation: lanes (GOMAXPROCS-1 goroutines, work-stealing off an
//     atomic cursor) execute each transaction on its own state.View over
//     the frozen c.db, recording per-field read sets and buffering writes.
//     c.db is never mutated while lanes run — views read it through the
//     DB's shared non-caching read path.
//   - Ordered commit: this goroutine consumes results in block order. Each
//     view is validated against the commit view cv (a View over c.db that
//     accumulates all writes committed so far, i.e. exactly the state a
//     serial loop would present to this transaction). A clean validation
//     proves the speculative execution read precisely what serial
//     execution would have read, so its buffered writes and receipt are
//     adopted as-is; otherwise the transaction is re-executed serially on
//     cv, which *is* the serial semantics at that position.
//   - Fallback: after abortFallback consecutive aborts *of one cutoff
//     target* the commit thread ignores speculation for that target for
//     the rest of the block (its lanes drain without executing), degrading
//     just that hot spot to the plain serial loop while unrelated
//     transactions keep speculating.
//
// Move2 transactions are never speculated (they read the shared header
// store and import accounts); duplicated transaction pointers within one
// block are speculated only once (Sender/ID memoization is per-object and
// unsynchronized). Both re-execute serially on cv like any aborted lane.
//
// Only after every lane has finished does the accumulated commit view flush
// into c.db, so the parent stays frozen for the whole speculation phase.
func (c *Chain) applyBlockParallel(txs []*types.Transaction, blockCtx evm.BlockContext) ([]*types.Receipt, parallelStats) {
	n := len(txs)
	lanes := runtime.GOMAXPROCS(0) - 1
	if lanes > n {
		lanes = n
	}
	if lanes < 1 {
		lanes = 1
	}

	skip := make([]bool, n)
	seen := make(map[*types.Transaction]struct{}, n)
	for i, tx := range txs {
		if _, dup := seen[tx]; dup || tx.Kind == types.TxMove2 {
			skip[i] = true
			continue
		}
		seen[tx] = struct{}{}
	}

	views := make([]*state.View, n)
	recs := make([]*types.Receipt, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}

	// stopped is the lane-visible cutoff set: targets whose speculation the
	// commit thread gave up on. It is monotonic (keys are only ever added)
	// and written only by the commit thread, which keeps its own local
	// mirror for deterministic reads; lanes merely use it to stop wasting
	// work, so the race between a lane's Load and the commit thread's Store
	// can only affect whether a doomed view exists — never what commits.
	var stopped sync.Map
	var cursor atomic.Int64
	for l := 0; l < lanes; l++ {
		go func() {
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if _, s := stopped.Load(cutoffKey(txs[i])); !skip[i] && !s {
					v := state.NewView(c.db)
					recs[i] = c.applyTx(v, txs[i], blockCtx)
					views[i] = v
				}
				close(done[i])
			}
		}()
	}

	// cv accumulates committed writes over the frozen c.db; it is what the
	// serial loop's c.db would look like before each transaction.
	cv := state.NewView(c.db)
	receipts := make([]*types.Receipt, 0, n)
	st := parallelStats{lanes: lanes}
	streaks := make(map[hashing.Address]int)
	cut := make(map[hashing.Address]bool) // commit thread's mirror of stopped
	for i := range txs {
		// Wait even when the result will be ignored: the commit thread may
		// not touch a transaction object while a lane still owns it.
		<-done[i]
		key := cutoffKey(txs[i])
		// When cut[key] is false here, no Store for key has happened yet
		// (the commit thread is the only writer and mirrors every Store into
		// cut before processing later transactions), so the lane cannot have
		// seen it either: views[i] is non-nil for every non-skipped tx. When
		// cut[key] is true the view may or may not exist depending on lane
		// timing, so it is deterministically ignored.
		if v := views[i]; v != nil && !cut[key] {
			st.speculated++
			t0 := time.Now()
			ok := v.Validate(cv)
			st.validation += time.Since(t0)
			if ok {
				v.ApplyTo(cv)
				receipts = append(receipts, recs[i])
				st.committed++
				streaks[key] = 0
				continue
			}
			st.aborted++
			if streaks[key]++; streaks[key] >= abortFallback {
				st.cutoffs++
				cut[key] = true
				stopped.Store(key, struct{}{})
			}
		} else if skip[i] {
			st.skipped++
		}
		receipts = append(receipts, c.applyTx(cv, txs[i], blockCtx))
		st.reexecuted++
	}
	// Every done channel has been consumed, so no lane is still executing;
	// the parent is safe to mutate again.
	cv.ApplyTo(c.db)
	return receipts, st
}

// observeParallel records one parallel block's scheduler statistics. The
// stats are computed whether or not a registry is attached, and recording
// only copies them, so observability cannot perturb execution. Counter
// values are deterministic for a given simulation at fixed GOMAXPROCS; the
// validation histogram observes wall-clock time and is diagnostic only.
func (c *Chain) observeParallel(st parallelStats) {
	if c.reg == nil || st.lanes == 0 {
		return
	}
	c.reg.Count("parallel.blocks", 1)
	c.reg.Count("parallel.speculated", uint64(st.speculated))
	c.reg.Count("parallel.committed", uint64(st.committed))
	c.reg.Count("parallel.aborted", uint64(st.aborted))
	c.reg.Count("parallel.reexecuted", uint64(st.reexecuted))
	c.reg.Count("parallel.skipped", uint64(st.skipped))
	c.reg.Count("parallel.cutoffs", uint64(st.cutoffs))
	id := c.cfg.ChainID.String()
	c.reg.SetGauge("parallel.lanes."+id, float64(st.lanes))
	c.reg.Observe("parallel.validate."+id, st.validation)
}
