package trees_test

import (
	"encoding/binary"
	"fmt"
	"testing"

	"scmove/internal/trees"
	"scmove/internal/trie"
)

func benchTree(b *testing.B, kind trie.Kind, size int) trie.Tree {
	b.Helper()
	t := trees.MustNew(kind, 8)
	for i := 0; i < size; i++ {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(i)*2654435761)
		if err := t.Set(k[:], []byte(fmt.Sprintf("value-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	t.RootHash() // settle hash caches
	return t
}

func forKinds(b *testing.B, fn func(b *testing.B, kind trie.Kind)) {
	for _, kind := range []trie.Kind{trie.KindMPT, trie.KindIAVL} {
		b.Run(kind.String(), func(b *testing.B) { fn(b, kind) })
	}
}

func BenchmarkTreeSet(b *testing.B) {
	forKinds(b, func(b *testing.B, kind trie.Kind) {
		t := benchTree(b, kind, 10_000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var k [8]byte
			binary.BigEndian.PutUint64(k[:], uint64(i))
			if err := t.Set(k[:], []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTreeGet(b *testing.B) {
	forKinds(b, func(b *testing.B, kind trie.Kind) {
		t := benchTree(b, kind, 10_000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var k [8]byte
			binary.BigEndian.PutUint64(k[:], uint64(i%10_000)*2654435761)
			t.Get(k[:])
		}
	})
}

func BenchmarkTreeRootAfterWrite(b *testing.B) {
	forKinds(b, func(b *testing.B, kind trie.Kind) {
		t := benchTree(b, kind, 10_000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var k [8]byte
			binary.BigEndian.PutUint64(k[:], uint64(i%10_000)*2654435761)
			if err := t.Set(k[:], []byte{byte(i), 1}); err != nil {
				b.Fatal(err)
			}
			t.RootHash()
		}
	})
}

func BenchmarkTreeProve(b *testing.B) {
	forKinds(b, func(b *testing.B, kind trie.Kind) {
		t := benchTree(b, kind, 10_000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var k [8]byte
			binary.BigEndian.PutUint64(k[:], uint64(i%10_000)*2654435761)
			if _, err := t.Prove(k[:]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkProofVerify(b *testing.B) {
	forKinds(b, func(b *testing.B, kind trie.Kind) {
		t := benchTree(b, kind, 10_000)
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], 42*2654435761)
		proof, err := t.Prove(k[:])
		if err != nil {
			b.Fatal(err)
		}
		root := t.RootHash()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := trees.VerifyProof(kind, root, proof); err != nil {
				b.Fatal(err)
			}
		}
	})
}
