// Package trees constructs and verifies the concrete state-tree
// implementations by kind. It exists so that packages which need "a tree of
// the chain's configured kind" (state, core) do not depend on the individual
// implementations.
package trees

import (
	"fmt"

	"scmove/internal/hashing"
	"scmove/internal/iavl"
	"scmove/internal/mpt"
	"scmove/internal/trie"
)

// New returns an empty tree of the given kind with fixed keyLen-byte keys.
func New(kind trie.Kind, keyLen int) (trie.Tree, error) {
	switch kind {
	case trie.KindMPT:
		return mpt.New(keyLen), nil
	case trie.KindIAVL:
		return iavl.New(keyLen), nil
	default:
		return nil, fmt.Errorf("trees: unknown tree kind %d", kind)
	}
}

// MustNew is New for statically-known kinds; it panics on unknown kinds.
func MustNew(kind trie.Kind, keyLen int) trie.Tree {
	t, err := New(kind, keyLen)
	if err != nil {
		panic(err)
	}
	return t
}

// VerifyProof verifies an encoded membership proof produced by a tree of the
// given kind against root, returning the proven entry.
func VerifyProof(kind trie.Kind, root hashing.Hash, proof []byte) (trie.ProvenEntry, error) {
	switch kind {
	case trie.KindMPT:
		return mpt.VerifyProof(root, proof)
	case trie.KindIAVL:
		return iavl.VerifyProof(root, proof)
	default:
		return trie.ProvenEntry{}, fmt.Errorf("trees: unknown tree kind %d", kind)
	}
}
