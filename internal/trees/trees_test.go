// Package trees_test runs a single conformance suite over both state-tree
// implementations: model-based property tests against a plain map, proof
// round-trips, canonical-root checks, and adversarial proof mutations.
package trees_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"scmove/internal/hashing"
	"scmove/internal/trees"
	"scmove/internal/trie"
)

const testKeyLen = 8

var kinds = []trie.Kind{trie.KindMPT, trie.KindIAVL}

func key(i uint64) []byte {
	var k [testKeyLen]byte
	binary.BigEndian.PutUint64(k[:], i)
	return k[:]
}

func val(s string) []byte { return []byte(s) }

func forEachKind(t *testing.T, fn func(t *testing.T, kind trie.Kind)) {
	t.Helper()
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) { fn(t, kind) })
	}
}

func TestEmptyTree(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind trie.Kind) {
		tr := trees.MustNew(kind, testKeyLen)
		if tr.Len() != 0 {
			t.Error("empty tree must have length 0")
		}
		if !tr.RootHash().IsZero() {
			t.Error("empty tree must hash to zero")
		}
		if _, ok := tr.Get(key(1)); ok {
			t.Error("Get on empty tree must miss")
		}
		if _, err := tr.Prove(key(1)); !errors.Is(err, trie.ErrInvalidProof) {
			t.Errorf("Prove on empty tree: want ErrInvalidProof, got %v", err)
		}
	})
}

func TestSetGetDelete(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind trie.Kind) {
		tr := trees.MustNew(kind, testKeyLen)
		for i := uint64(0); i < 100; i++ {
			if err := tr.Set(key(i), val(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if tr.Len() != 100 {
			t.Fatalf("Len = %d, want 100", tr.Len())
		}
		for i := uint64(0); i < 100; i++ {
			got, ok := tr.Get(key(i))
			if !ok || string(got) != fmt.Sprintf("v%d", i) {
				t.Fatalf("Get(%d) = %q, %v", i, got, ok)
			}
		}
		// Overwrite does not change the count.
		if err := tr.Set(key(5), val("new")); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != 100 {
			t.Fatalf("Len after overwrite = %d", tr.Len())
		}
		if got, _ := tr.Get(key(5)); string(got) != "new" {
			t.Fatalf("overwritten value = %q", got)
		}
		// Delete half.
		for i := uint64(0); i < 100; i += 2 {
			if err := tr.Delete(key(i)); err != nil {
				t.Fatal(err)
			}
		}
		if tr.Len() != 50 {
			t.Fatalf("Len after deletes = %d", tr.Len())
		}
		for i := uint64(0); i < 100; i++ {
			_, ok := tr.Get(key(i))
			if want := i%2 == 1; ok != want {
				t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
			}
		}
		// Deleting an absent key is a no-op.
		if err := tr.Delete(key(0)); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != 50 {
			t.Fatal("deleting absent key must not change length")
		}
	})
}

func TestKeyLengthEnforced(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind trie.Kind) {
		tr := trees.MustNew(kind, testKeyLen)
		if err := tr.Set([]byte{1, 2}, val("x")); !errors.Is(err, trie.ErrKeyLength) {
			t.Errorf("Set short key: want ErrKeyLength, got %v", err)
		}
		if err := tr.Delete([]byte{1, 2}); !errors.Is(err, trie.ErrKeyLength) {
			t.Errorf("Delete short key: want ErrKeyLength, got %v", err)
		}
		if _, err := tr.Prove([]byte{1, 2}); !errors.Is(err, trie.ErrKeyLength) {
			t.Errorf("Prove short key: want ErrKeyLength, got %v", err)
		}
	})
}

// TestCanonicalRoot is the property the Move protocol depends on: the root
// hash is a function of the contents only, not of the operation history.
func TestCanonicalRoot(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind trie.Kind) {
		rng := rand.New(rand.NewSource(7))
		for round := 0; round < 20; round++ {
			// Build contents via a random interleaving of sets and deletes.
			a := trees.MustNew(kind, testKeyLen)
			model := map[string]string{}
			for op := 0; op < 300; op++ {
				k := key(uint64(rng.Intn(60)))
				if rng.Intn(3) == 0 {
					if err := a.Delete(k); err != nil {
						t.Fatal(err)
					}
					delete(model, string(k))
				} else {
					v := fmt.Sprintf("v%d", rng.Intn(1000))
					if err := a.Set(k, val(v)); err != nil {
						t.Fatal(err)
					}
					model[string(k)] = v
				}
			}
			// Rebuild fresh from the surviving contents, in random order.
			b := trees.MustNew(kind, testKeyLen)
			ks := make([]string, 0, len(model))
			for k := range model {
				ks = append(ks, k)
			}
			rng.Shuffle(len(ks), func(i, j int) { ks[i], ks[j] = ks[j], ks[i] })
			for _, k := range ks {
				if err := b.Set([]byte(k), val(model[k])); err != nil {
					t.Fatal(err)
				}
			}
			if a.RootHash() != b.RootHash() {
				t.Fatalf("round %d: history-dependent root: %s vs %s",
					round, a.RootHash(), b.RootHash())
			}
			if a.Len() != len(model) {
				t.Fatalf("round %d: Len = %d, model %d", round, a.Len(), len(model))
			}
		}
	})
}

func TestRootChangesWithContents(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind trie.Kind) {
		tr := trees.MustNew(kind, testKeyLen)
		if err := tr.Set(key(1), val("a")); err != nil {
			t.Fatal(err)
		}
		r1 := tr.RootHash()
		if err := tr.Set(key(1), val("b")); err != nil {
			t.Fatal(err)
		}
		r2 := tr.RootHash()
		if r1 == r2 {
			t.Fatal("changing a value must change the root")
		}
		if err := tr.Set(key(2), val("c")); err != nil {
			t.Fatal(err)
		}
		if tr.RootHash() == r2 {
			t.Fatal("adding a key must change the root")
		}
	})
}

func TestIterateSortedAndComplete(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind trie.Kind) {
		tr := trees.MustNew(kind, testKeyLen)
		rng := rand.New(rand.NewSource(3))
		model := map[string]string{}
		for i := 0; i < 200; i++ {
			k := key(rng.Uint64() % 500)
			v := fmt.Sprintf("v%d", i)
			if err := tr.Set(k, val(v)); err != nil {
				t.Fatal(err)
			}
			model[string(k)] = v
		}
		var gotKeys []string
		tr.Iterate(func(k, v []byte) bool {
			gotKeys = append(gotKeys, string(k))
			if model[string(k)] != string(v) {
				t.Fatalf("Iterate value mismatch at %x", k)
			}
			return true
		})
		if len(gotKeys) != len(model) {
			t.Fatalf("Iterate visited %d, want %d", len(gotKeys), len(model))
		}
		if !sort.StringsAreSorted(gotKeys) {
			t.Fatal("Iterate must visit keys in ascending order")
		}
		// Early termination.
		visits := 0
		tr.Iterate(func(_, _ []byte) bool {
			visits++
			return visits < 5
		})
		if visits != 5 {
			t.Fatalf("early-stop Iterate visited %d", visits)
		}
	})
}

func TestProofRoundTrip(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind trie.Kind) {
		tr := trees.MustNew(kind, testKeyLen)
		for i := uint64(0); i < 128; i++ {
			if err := tr.Set(key(i*7), val(fmt.Sprintf("value-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		root := tr.RootHash()
		for i := uint64(0); i < 128; i++ {
			proof, err := tr.Prove(key(i * 7))
			if err != nil {
				t.Fatalf("Prove(%d): %v", i, err)
			}
			entry, err := trees.VerifyProof(kind, root, proof)
			if err != nil {
				t.Fatalf("VerifyProof(%d): %v", i, err)
			}
			if !bytes.Equal(entry.Key, key(i*7)) {
				t.Fatalf("proved key %x, want %x", entry.Key, key(i*7))
			}
			if string(entry.Value) != fmt.Sprintf("value-%d", i) {
				t.Fatalf("proved value %q", entry.Value)
			}
		}
	})
}

func TestProofRejectsWrongRoot(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind trie.Kind) {
		tr := trees.MustNew(kind, testKeyLen)
		for i := uint64(0); i < 32; i++ {
			if err := tr.Set(key(i), val("v")); err != nil {
				t.Fatal(err)
			}
		}
		proof, err := tr.Prove(key(3))
		if err != nil {
			t.Fatal(err)
		}
		badRoot := hashing.Sum([]byte("not the root"))
		if _, err := trees.VerifyProof(kind, badRoot, proof); !errors.Is(err, trie.ErrInvalidProof) {
			t.Fatalf("want ErrInvalidProof, got %v", err)
		}
	})
}

// TestProofRejectsStaleProof models the replay scenario of paper Fig. 2:
// a proof built before an update must not verify against the new root.
func TestProofRejectsStaleProof(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind trie.Kind) {
		tr := trees.MustNew(kind, testKeyLen)
		for i := uint64(0); i < 32; i++ {
			if err := tr.Set(key(i), val("old")); err != nil {
				t.Fatal(err)
			}
		}
		staleProof, err := tr.Prove(key(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Set(key(3), val("new")); err != nil {
			t.Fatal(err)
		}
		if _, err := trees.VerifyProof(kind, tr.RootHash(), staleProof); !errors.Is(err, trie.ErrInvalidProof) {
			t.Fatalf("stale proof must not verify, got %v", err)
		}
	})
}

func TestProofRejectsBitFlips(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind trie.Kind) {
		tr := trees.MustNew(kind, testKeyLen)
		for i := uint64(0); i < 64; i++ {
			if err := tr.Set(key(i), val(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		root := tr.RootHash()
		proof, err := tr.Prove(key(17))
		if err != nil {
			t.Fatal(err)
		}
		// Any single-bit flip anywhere in the proof must either fail
		// verification or still prove the same entry (flips in unreachable
		// padding are impossible here since the codec is tight).
		for pos := 0; pos < len(proof); pos++ {
			for bit := 0; bit < 8; bit++ {
				mutated := append([]byte{}, proof...)
				mutated[pos] ^= 1 << bit
				entry, err := trees.VerifyProof(kind, root, mutated)
				if err != nil {
					continue
				}
				if !bytes.Equal(entry.Key, key(17)) || string(entry.Value) != "v17" {
					t.Fatalf("bit flip at %d/%d forged entry key=%x value=%q",
						pos, bit, entry.Key, entry.Value)
				}
			}
		}
	})
}

func TestProofTruncationRejected(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind trie.Kind) {
		tr := trees.MustNew(kind, testKeyLen)
		for i := uint64(0); i < 64; i++ {
			if err := tr.Set(key(i), val("v")); err != nil {
				t.Fatal(err)
			}
		}
		root := tr.RootHash()
		proof, err := tr.Prove(key(9))
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(proof); cut++ {
			if _, err := trees.VerifyProof(kind, root, proof[:cut]); err == nil {
				t.Fatalf("truncated proof (%d bytes) must not verify", cut)
			}
		}
	})
}

func TestRandomModelEquivalence(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind trie.Kind) {
		rng := rand.New(rand.NewSource(99))
		tr := trees.MustNew(kind, testKeyLen)
		model := map[string]string{}
		for op := 0; op < 5000; op++ {
			k := key(rng.Uint64() % 256)
			switch rng.Intn(4) {
			case 0:
				if err := tr.Delete(k); err != nil {
					t.Fatal(err)
				}
				delete(model, string(k))
			case 1:
				got, ok := tr.Get(k)
				want, wantOK := model[string(k)]
				if ok != wantOK || (ok && string(got) != want) {
					t.Fatalf("op %d: Get mismatch", op)
				}
			default:
				v := fmt.Sprintf("v%d", rng.Intn(10000))
				if err := tr.Set(k, val(v)); err != nil {
					t.Fatal(err)
				}
				model[string(k)] = v
			}
			if tr.Len() != len(model) {
				t.Fatalf("op %d: Len %d != model %d", op, tr.Len(), len(model))
			}
		}
		// Every surviving key must be provable against the final root.
		root := tr.RootHash()
		for k, v := range model {
			proof, err := tr.Prove([]byte(k))
			if err != nil {
				t.Fatalf("Prove(%x): %v", k, err)
			}
			entry, err := trees.VerifyProof(kind, root, proof)
			if err != nil || string(entry.Value) != v {
				t.Fatalf("VerifyProof(%x): %v", k, err)
			}
		}
	})
}

func TestUnknownKind(t *testing.T) {
	if _, err := trees.New(trie.Kind(99), 8); err == nil {
		t.Fatal("unknown kind must error")
	}
	if _, err := trees.VerifyProof(trie.Kind(99), hashing.Hash{}, nil); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestTreeKindsProduceDistinctRoots(t *testing.T) {
	// Sanity: the two tree kinds commit differently, so a proof from one
	// cannot be confused with the other.
	a := trees.MustNew(trie.KindMPT, testKeyLen)
	b := trees.MustNew(trie.KindIAVL, testKeyLen)
	for i := uint64(0); i < 16; i++ {
		if err := a.Set(key(i), val("v")); err != nil {
			t.Fatal(err)
		}
		if err := b.Set(key(i), val("v")); err != nil {
			t.Fatal(err)
		}
	}
	if a.RootHash() == b.RootHash() {
		t.Fatal("tree kinds must not share roots")
	}
}
