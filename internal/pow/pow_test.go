package pow

import (
	"errors"
	"testing"
	"time"

	"scmove/internal/hashing"
	"scmove/internal/types"
	"scmove/internal/u256"
)

func genesis() *types.Header {
	return &types.Header{ChainID: 1, Height: 0, Difficulty: u256.FromUint64(1)}
}

func child(parent *types.Header, nonce uint64) *types.Header {
	return &types.Header{
		ChainID:    parent.ChainID,
		Height:     parent.Height + 1,
		ParentHash: parent.Hash(),
		Difficulty: u256.FromUint64(1),
		Nonce:      nonce,
	}
}

func TestLinearChainGrowth(t *testing.T) {
	g := genesis()
	c := NewHeaderChain(g)
	cur := g
	for i := 0; i < 5; i++ {
		next := child(cur, uint64(i))
		reorg, err := c.Add(next)
		if err != nil {
			t.Fatal(err)
		}
		if reorg {
			t.Fatal("extending the head is not a reorg")
		}
		cur = next
	}
	if c.Head().Height != 5 {
		t.Fatalf("head height = %d", c.Head().Height)
	}
	if h, ok := c.CanonicalAt(3); !ok || h.Height != 3 {
		t.Fatal("canonical lookup failed")
	}
}

func TestForkChoiceHeaviestWins(t *testing.T) {
	g := genesis()
	c := NewHeaderChain(g)
	// Branch A: two blocks. Branch B: one block, then extended to three.
	a1 := child(g, 1)
	a2 := child(a1, 2)
	b1 := child(g, 100)
	b2 := child(b1, 101)
	b3 := child(b2, 102)

	mustAdd(t, c, a1, false)
	mustAdd(t, c, a2, false)
	mustAdd(t, c, b1, false) // shorter branch: no reorg
	if c.Head().Hash() != a2.Hash() {
		t.Fatal("head must stay on the heavier branch")
	}
	mustAdd(t, c, b2, false) // tie: first seen (A) wins
	if c.Head().Hash() != a2.Hash() {
		t.Fatal("tie must keep the first-seen head")
	}
	reorg, err := c.Add(b3)
	if err != nil {
		t.Fatal(err)
	}
	if !reorg {
		t.Fatal("overtaking branch must reorg")
	}
	if c.Head().Hash() != b3.Hash() {
		t.Fatal("head must switch to the heavier branch")
	}
	// Canonical view now follows branch B.
	h1, ok := c.CanonicalAt(1)
	if !ok || h1.Hash() != b1.Hash() {
		t.Fatal("canonical height 1 must be b1 after the reorg")
	}
}

func mustAdd(t *testing.T, c *HeaderChain, h *types.Header, wantReorg bool) {
	t.Helper()
	reorg, err := c.Add(h)
	if err != nil {
		t.Fatal(err)
	}
	if reorg != wantReorg {
		t.Fatalf("reorg = %v, want %v", reorg, wantReorg)
	}
}

func TestConfirmations(t *testing.T) {
	g := genesis()
	c := NewHeaderChain(g)
	b1 := child(g, 1)
	b2 := child(b1, 2)
	b3 := child(b2, 3)
	for _, h := range []*types.Header{b1, b2, b3} {
		if _, err := c.Add(h); err != nil {
			t.Fatal(err)
		}
	}
	if d, ok := c.Confirmations(b1.Hash()); !ok || d != 2 {
		t.Fatalf("confirmations(b1) = %d,%v", d, ok)
	}
	if d, ok := c.Confirmations(b3.Hash()); !ok || d != 0 {
		t.Fatalf("confirmations(head) = %d,%v", d, ok)
	}
	// A non-canonical header has no confirmation depth.
	orphan := child(g, 99)
	if _, err := c.Add(orphan); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Confirmations(orphan.Hash()); ok {
		t.Fatal("orphan must not be canonical")
	}
}

func TestAddValidation(t *testing.T) {
	g := genesis()
	c := NewHeaderChain(g)
	if _, err := c.Add(g); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
	orphan := &types.Header{Height: 5, ParentHash: hashing.Sum([]byte("missing")), Difficulty: u256.FromUint64(1)}
	if _, err := c.Add(orphan); !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("want ErrUnknownParent, got %v", err)
	}
	bad := child(g, 1)
	bad.Height = 7
	if _, err := c.Add(bad); !errors.Is(err, ErrBadHeight) {
		t.Fatalf("want ErrBadHeight, got %v", err)
	}
}

func TestTimerMeanApproximation(t *testing.T) {
	timer := NewTimer(42, 15*time.Second)
	var total time.Duration
	const samples = 5000
	for i := 0; i < samples; i++ {
		d := timer.Next()
		if d <= 0 {
			t.Fatal("non-positive interval")
		}
		total += d
	}
	mean := total / samples
	if mean < 13*time.Second || mean > 17*time.Second {
		t.Fatalf("sample mean = %v, want ≈15 s", mean)
	}
}

func TestTimerDeterministic(t *testing.T) {
	a, b := NewTimer(7, time.Second), NewTimer(7, time.Second)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give the same sequence")
		}
	}
}

func TestTimerClamping(t *testing.T) {
	timer := NewTimer(1, 15*time.Second)
	for i := 0; i < 10000; i++ {
		d := timer.Next()
		if d < 150*time.Millisecond || d > 150*time.Second {
			t.Fatalf("interval %v outside clamp bounds", d)
		}
	}
}
