// Package pow implements the proof-of-work substrate of the Ethereum-like
// chain: exponentially distributed block discovery (15 s mean in the
// paper's configuration, §VI), a header tree with heaviest-chain fork
// choice, and confirmation-depth queries — the reason interoperating
// chains configure the parameter p of §IV-A.
//
// Mining is simulated: instead of hashing, the time until the next block is
// drawn from the exponential distribution that real PoW difficulty targets
// induce. Fork choice and reorgs are real.
package pow

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"scmove/internal/hashing"
	"scmove/internal/types"
	"scmove/internal/u256"
)

// Errors returned by the header chain.
var (
	ErrUnknownParent  = errors.New("pow: unknown parent header")
	ErrDuplicate      = errors.New("pow: duplicate header")
	ErrBadHeight      = errors.New("pow: height does not extend parent")
	ErrBadDifficulty = errors.New("pow: invalid difficulty")
	ErrWrongChain    = errors.New("pow: header belongs to another chain")
	ErrBadTime       = errors.New("pow: header time before parent")
)

// HeaderChain is a block-header tree with heaviest-chain (total difficulty)
// fork choice.
type HeaderChain struct {
	headers map[hashing.Hash]*types.Header
	parent  map[hashing.Hash]hashing.Hash
	total   map[hashing.Hash]*u256.Int

	genesis hashing.Hash
	head    hashing.Hash
}

// NewHeaderChain starts a chain from the given genesis header.
func NewHeaderChain(genesis *types.Header) *HeaderChain {
	gh := genesis.Hash()
	td := genesis.Difficulty
	return &HeaderChain{
		headers: map[hashing.Hash]*types.Header{gh: genesis},
		parent:  map[hashing.Hash]hashing.Hash{},
		total:   map[hashing.Hash]*u256.Int{gh: &td},
		genesis: gh,
		head:    gh,
	}
}

// Add inserts a header. It returns whether the canonical head changed to a
// different branch (a reorg; simply extending the head is not a reorg).
//
// Headers are untrusted input (a relayer or peer controls them): besides
// the structural parent/height checks, Add rejects wrong-chain headers,
// zero difficulty (a corrupted difficulty word would otherwise poison the
// total-difficulty fork choice), and time regressions against the parent.
func (c *HeaderChain) Add(h *types.Header) (reorg bool, err error) {
	hh := h.Hash()
	if _, dup := c.headers[hh]; dup {
		return false, ErrDuplicate
	}
	parent, ok := c.headers[h.ParentHash]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownParent, h.ParentHash)
	}
	if h.ChainID != parent.ChainID {
		return false, fmt.Errorf("%w: %s extends %s", ErrWrongChain, h.ChainID, parent.ChainID)
	}
	if h.Height != parent.Height+1 {
		return false, fmt.Errorf("%w: %d after %d", ErrBadHeight, h.Height, parent.Height)
	}
	if h.Difficulty.IsZero() {
		return false, fmt.Errorf("%w: zero difficulty at height %d", ErrBadDifficulty, h.Height)
	}
	if h.Time < parent.Time {
		return false, fmt.Errorf("%w: %d before parent %d", ErrBadTime, h.Time, parent.Time)
	}
	oldHead := c.head
	c.headers[hh] = h
	c.parent[hh] = h.ParentHash
	td := c.total[h.ParentHash].Add(h.Difficulty)
	c.total[hh] = &td

	// Heaviest chain wins; first-seen wins ties (as in Ethereum clients).
	if td.Gt(*c.total[c.head]) {
		c.head = hh
		return h.ParentHash != oldHead, nil
	}
	return false, nil
}

// Head returns the canonical head header.
func (c *HeaderChain) Head() *types.Header { return c.headers[c.head] }

// Get returns a header by hash.
func (c *HeaderChain) Get(h hashing.Hash) (*types.Header, bool) {
	header, ok := c.headers[h]
	return header, ok
}

// CanonicalAt returns the canonical header at the given height.
func (c *HeaderChain) CanonicalAt(height uint64) (*types.Header, bool) {
	cur := c.head
	for {
		h := c.headers[cur]
		if h.Height == height {
			return h, true
		}
		if h.Height < height || cur == c.genesis {
			return nil, false
		}
		cur = c.parent[cur]
	}
}

// Confirmations returns how many blocks deep a header is below the head
// (0 for the head itself), or false if the header is not canonical.
func (c *HeaderChain) Confirmations(h hashing.Hash) (uint64, bool) {
	header, ok := c.headers[h]
	if !ok {
		return 0, false
	}
	canon, ok := c.CanonicalAt(header.Height)
	if !ok || canon.Hash() != h {
		return 0, false
	}
	return c.Head().Height - header.Height, true
}

// Len returns the number of known headers (including the genesis).
func (c *HeaderChain) Len() int { return len(c.headers) }

// Timer draws block discovery intervals from the exponential distribution
// with the configured mean, seeded for reproducibility.
type Timer struct {
	rng  *rand.Rand
	mean time.Duration
}

// NewTimer returns a timer with the given mean block interval.
func NewTimer(seed int64, mean time.Duration) *Timer {
	return &Timer{rng: rand.New(rand.NewSource(seed)), mean: mean}
}

// Next returns the time until the next block is found. Samples are clamped
// to [1%, 10×] of the mean to keep simulations responsive under extreme
// draws.
func (t *Timer) Next() time.Duration {
	d := time.Duration(t.rng.ExpFloat64() * float64(t.mean))
	min := t.mean / 100
	max := 10 * t.mean
	return time.Duration(math.Min(math.Max(float64(d), float64(min)), float64(max)))
}

// Mean returns the configured mean interval.
func (t *Timer) Mean() time.Duration { return t.mean }
