package state

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/state/backend"
	"scmove/internal/trees"
	"scmove/internal/trie"
	"scmove/internal/u256"
)

// Options tunes the state database's storage layer. The zero value is the
// historical behaviour: in-memory trees, default flat-cache sizes, and the
// default retained-root window.
type Options struct {
	// Backend selects where the flat state (account records and storage
	// slots) authoritatively lives: the in-memory trees themselves
	// (KindMemory, the default) or a log-structured file store (KindFile).
	Backend backend.Kind
	// Dir is the file backend's directory (required for KindFile).
	Dir string
	// RetainRoots is how many committed roots OpenAt/ProveAccountAt serve
	// (0 = backend.DefaultRetainRoots).
	RetainRoots int
	// FlatAccounts / FlatSlots bound the flat-state read cache
	// (0 = backend defaults).
	FlatAccounts, FlatSlots int
	// DisableFlatCache turns the flat cache off entirely (differential
	// testing; reads then always walk the trees).
	DisableFlatCache bool
	// StorageTreeLimit caps the number of resident per-account storage
	// trees when the backend is persistent: after each commit, the least
	// recently touched clean trees beyond the cap are dropped and rebuilt
	// from the backend on demand. 0 keeps every tree resident.
	StorageTreeLimit int
}

// DB is the mutable world state of one chain. It implements evm.StateAccess
// with snapshot/revert journaling, and commits into an authenticated account
// tree of the chain's configured kind for headers and Merkle proofs.
//
// Reads are layered: the per-block decoded working set, then the bounded
// flat-state cache (no tree walk), then the authenticated trees, then — for
// storage of accounts whose tree is not resident — the backend. Commits
// flush the trees and the backend together, so state roots are bit-identical
// across backends by construction.
//
// DB is not safe for concurrent use; each chain node owns one.
type DB struct {
	chainID hashing.ChainID
	kind    trie.Kind
	opts    Options

	accountTree trie.Tree                     // addr -> Account.Encode()
	storage     map[hashing.Address]trie.Tree // live storage trees
	codes       map[hashing.Hash][]byte       // content-addressed code
	cache       map[hashing.Address]*Account  // decoded working set (released on Commit)
	dirty       map[hashing.Address]struct{}  // accounts to flush on Commit
	dirtyOrder  []hashing.Address             // dirty addresses, insertion order (sorted at Commit)

	flat *backend.FlatCache[Account] // nil when disabled
	back backend.Backend

	// slotDelta records, per block, the committed pre-image of every
	// storage slot written since the last Commit (first write wins), so the
	// commit batch and the retained-root reverse diffs are exact.
	slotDelta map[backend.SlotKey]prevSlot
	// slotKeyScratch is the reusable sort scratch for appendSlotChanges.
	slotKeyScratch []backend.SlotKey
	// newCodes lists code hashes first seen since the last Commit, so a
	// persistent backend can store the blobs.
	newCodes []hashing.Hash

	// storageTouch drives storage-tree eviction under a persistent
	// backend: least recently touched clean trees go first.
	storageTouch map[hashing.Address]uint64
	touchSeq     uint64

	// histRoot/histTree memoize the last account tree rebuilt for a
	// historical proof, so proving several accounts at one root is O(N)
	// once, not per call.
	histRoot hashing.Hash
	histTree trie.Tree

	lastRoot hashing.Hash // root of the last Commit

	logs    []*evm.Log
	journal journal
}

type prevSlot struct {
	val     backend.Word
	existed bool
}

var _ evm.StateAccess = (*DB)(nil)
var _ backend.TreeSource = (*DB)(nil)

// NewDB returns an empty state for the given chain, using the chain's state
// tree kind for commitments and proofs, the in-memory backend, and default
// flat-cache sizing.
func NewDB(chainID hashing.ChainID, kind trie.Kind) (*DB, error) {
	return NewDBWith(chainID, kind, Options{})
}

// NewDBWith returns an empty state with explicit storage-layer options.
func NewDBWith(chainID hashing.ChainID, kind trie.Kind, opts Options) (*DB, error) {
	db, err := newDBCore(chainID, kind, opts)
	if err != nil {
		return nil, err
	}
	if opts.Backend == backend.KindFile {
		if fb, ok := db.back.(*backend.File); ok && fb.LiveKeys() > 0 {
			return nil, fmt.Errorf("new state: %s is not empty (use OpenDB to reopen)", opts.Dir)
		}
	}
	return db, nil
}

// OpenDB reopens a state database from a persistent backend's directory,
// rebuilding the authenticated account tree (and, lazily, the storage
// trees) from the flat records. The rebuilt tree's root must equal the
// store's last committed root — canonical trees make the check exact.
func OpenDB(chainID hashing.ChainID, kind trie.Kind, opts Options) (*DB, error) {
	if opts.Backend != backend.KindFile {
		return nil, fmt.Errorf("open state: backend %s is not persistent", opts.Backend)
	}
	db, err := newDBCore(chainID, kind, opts)
	if err != nil {
		return nil, err
	}
	db.back.IterateAccounts(func(addr hashing.Address, enc []byte) bool {
		if err == nil {
			err = db.accountTree.Set(addr[:], enc)
		}
		return err == nil
	})
	if err != nil {
		db.Close()
		return nil, fmt.Errorf("open state: rebuild account tree: %w", err)
	}
	if cs, ok := db.back.(backend.CodeStore); ok {
		cs.IterateCodes(func(h hashing.Hash, code []byte) bool {
			db.codes[h] = code
			return true
		})
	}
	if want, ok := db.back.LatestRoot(); ok {
		if got := db.accountTree.RootHash(); got != want {
			db.Close()
			return nil, fmt.Errorf("open state: rebuilt root %s, store committed %s", got, want)
		}
		db.lastRoot = want
	}
	return db, nil
}

func newDBCore(chainID hashing.ChainID, kind trie.Kind, opts Options) (*DB, error) {
	accountTree, err := trees.New(kind, hashing.AddressSize)
	if err != nil {
		return nil, fmt.Errorf("new state: %w", err)
	}
	db := &DB{
		chainID:      chainID,
		kind:         kind,
		opts:         opts,
		accountTree:  accountTree,
		storage:      make(map[hashing.Address]trie.Tree),
		codes:        make(map[hashing.Hash][]byte),
		cache:        make(map[hashing.Address]*Account),
		dirty:        make(map[hashing.Address]struct{}),
		slotDelta:    make(map[backend.SlotKey]prevSlot),
		storageTouch: make(map[hashing.Address]uint64),
	}
	if !opts.DisableFlatCache {
		db.flat = backend.NewFlatCache[Account](opts.FlatAccounts, opts.FlatSlots)
	}
	switch opts.Backend {
	case backend.KindMemory:
		db.back = backend.NewMemory(db, opts.RetainRoots)
	case backend.KindFile:
		if opts.Dir == "" {
			return nil, fmt.Errorf("new state: file backend needs a directory")
		}
		fb, err := backend.OpenFile(opts.Dir, opts.RetainRoots)
		if err != nil {
			return nil, err
		}
		db.back = fb
	default:
		return nil, fmt.Errorf("new state: unknown backend kind %d", opts.Backend)
	}
	return db, nil
}

// ChainID returns the chain this state belongs to.
func (db *DB) ChainID() hashing.ChainID { return db.chainID }

// TreeKind returns the state tree kind used for commitments.
func (db *DB) TreeKind() trie.Kind { return db.kind }

// Backend exposes the flat-state backend (benchmarks, conformance tests,
// and rebuild tooling read it directly).
func (db *DB) Backend() backend.Backend { return db.back }

// Close releases the backend's resources (file handles for the
// log-structured store). The DB must not be used afterwards.
func (db *DB) Close() error { return db.back.Close() }

// AccountTree implements backend.TreeSource.
func (db *DB) AccountTree() trie.Tree { return db.accountTree }

// StorageTreeAt implements backend.TreeSource.
func (db *DB) StorageTreeAt(addr hashing.Address) (trie.Tree, bool) {
	t, ok := db.storage[addr]
	return t, ok
}

// FlatCacheStats returns the flat cache's hit/miss counters (both zero when
// the cache is disabled).
func (db *DB) FlatCacheStats() (hits, misses uint64) {
	if db.flat == nil {
		return 0, 0
	}
	return db.flat.Stats()
}

// DropCaches empties the decoded working set and the flat cache (cold-read
// benchmarking and memory-pressure hooks). Committed state is unaffected.
func (db *DB) DropCaches() {
	db.cache = make(map[hashing.Address]*Account)
	if db.flat != nil {
		db.flat = backend.NewFlatCache[Account](db.opts.FlatAccounts, db.opts.FlatSlots)
	}
}

// account returns the cached working copy of addr, loading it through the
// flat cache (no tree walk on a hit) or from the account tree on first
// touch. Returns nil if the account does not exist.
func (db *DB) account(addr hashing.Address) *Account {
	if acct, ok := db.cache[addr]; ok {
		return acct
	}
	if db.flat != nil {
		if acct, exists, known := db.flat.Account(addr); known {
			if !exists {
				db.cache[addr] = nil
				return nil
			}
			cp := acct
			db.cache[addr] = &cp
			return &cp
		}
	}
	// Slice a local copy for the tree walk: addr[:] through the interface
	// call would move the parameter itself to the heap and cost the warm
	// cache-hit paths above an allocation per read.
	treeKey := addr
	enc, ok := db.accountTree.Get(treeKey[:])
	if !ok {
		db.cache[addr] = nil
		if db.flat != nil {
			db.flat.PutAccount(addr, Account{}, false)
		}
		return nil
	}
	acct, err := DecodeAccount(enc)
	if err != nil {
		// The tree only ever stores Encode() output; a decode failure is a
		// corrupted-state invariant violation.
		panic(fmt.Sprintf("state: corrupt account record for %s: %v", addr, err))
	}
	if db.flat != nil {
		db.flat.PutAccount(addr, acct, true)
	}
	db.cache[addr] = &acct
	return &acct
}

// sharedGet reads a tree without mutating it, so concurrent readers are
// safe while the tree is frozen. Both shipped tree kinds implement
// trie.SharedReader; the plain-Get fallback keeps hypothetical third kinds
// working in single-reader contexts.
func sharedGet(t trie.Tree, key []byte) ([]byte, bool) {
	if sr, ok := t.(trie.SharedReader); ok {
		return sr.GetShared(key)
	}
	return t.Get(key)
}

// sharedAccount returns a copy of addr's record without installing cache
// entries (account() negative-caches misses, which would race — the flat
// cache's LRU splicing likewise). Safe for concurrent readers while the DB
// itself is quiescent — the contract the parallel executor upholds during
// its speculation phase.
func (db *DB) sharedAccount(addr hashing.Address) (Account, bool) {
	if acct, ok := db.cache[addr]; ok {
		if acct == nil {
			return Account{}, false
		}
		return *acct, true
	}
	enc, ok := sharedGet(db.accountTree, addr[:])
	if !ok {
		return Account{}, false
	}
	acct, err := DecodeAccount(enc)
	if err != nil {
		panic(fmt.Sprintf("state: corrupt account record for %s: %v", addr, err))
	}
	return acct, true
}

// sharedStorage reads one storage slot under the same frozen-DB contract as
// sharedAccount. Storage of accounts whose tree was evicted (persistent
// backends only) reads through the backend — those accounts are clean by
// construction, so the committed value is the live one.
func (db *DB) sharedStorage(addr hashing.Address, key evm.Word) (evm.Word, bool) {
	t, ok := db.storage[addr]
	if !ok {
		if db.back.Persistent() {
			v, ok := db.back.Slot(backend.SlotKey{Addr: addr, Key: key})
			return evm.Word(v), ok
		}
		return evm.Word{}, false
	}
	v, ok := sharedGet(t, key[:])
	if !ok {
		return evm.Word{}, false
	}
	var w evm.Word
	copy(w[:], v)
	return w, true
}

// sharedCode reads the content-addressed code store (append-only between
// commits, so concurrent reads are safe while the DB is quiescent).
func (db *DB) sharedCode(h hashing.Hash) []byte { return db.codes[h] }

// mutable returns the working copy of addr, creating the account if absent,
// and journals the previous version for revert.
func (db *DB) mutable(addr hashing.Address) *Account {
	acct := db.account(addr)
	db.journal.append(journalEntry{kind: jAccount, addr: addr, prevAccount: cloneAccount(acct)})
	if acct == nil {
		acct = &Account{Location: db.chainID}
		db.cache[addr] = acct
	}
	db.markDirty(addr)
	return acct
}

// markDirty records addr for the next Commit. The order list is kept in
// insertion order and sorted once at Commit — a million-account genesis
// made the old keep-it-sorted insertion (O(n) memmove per new address)
// quadratic.
func (db *DB) markDirty(addr hashing.Address) {
	if _, ok := db.dirty[addr]; ok {
		return
	}
	db.dirty[addr] = struct{}{}
	db.dirtyOrder = append(db.dirtyOrder, addr)
}

func cloneAccount(a *Account) *Account {
	if a == nil {
		return nil
	}
	cp := *a
	return &cp
}

// Exists implements evm.StateAccess.
func (db *DB) Exists(addr hashing.Address) bool {
	return db.account(addr) != nil
}

// CreateContract implements evm.StateAccess.
func (db *DB) CreateContract(addr hashing.Address, code []byte) {
	acct := db.mutable(addr)
	codeCopy := make([]byte, len(code))
	copy(codeCopy, code)
	h := hashing.Sum(codeCopy)
	if _, ok := db.codes[h]; !ok {
		db.journal.append(journalEntry{kind: jCode, codeHash: h})
		db.codes[h] = codeCopy
		db.newCodes = append(db.newCodes, h)
	}
	acct.CodeHash = h
	acct.Location = db.chainID
}

// GetBalance implements evm.StateAccess.
func (db *DB) GetBalance(addr hashing.Address) u256.Int {
	if acct := db.account(addr); acct != nil {
		return acct.Balance
	}
	return u256.Zero()
}

// AddBalance implements evm.StateAccess.
func (db *DB) AddBalance(addr hashing.Address, amount u256.Int) {
	acct := db.mutable(addr)
	acct.Balance = acct.Balance.Add(amount)
}

// SubBalance implements evm.StateAccess. Callers check sufficiency first
// (evm.transfer); going below zero wraps and is a caller bug.
func (db *DB) SubBalance(addr hashing.Address, amount u256.Int) {
	acct := db.mutable(addr)
	acct.Balance = acct.Balance.Sub(amount)
}

// GetNonce implements evm.StateAccess.
func (db *DB) GetNonce(addr hashing.Address) uint64 {
	if acct := db.account(addr); acct != nil {
		return acct.Nonce
	}
	return 0
}

// SetNonce implements evm.StateAccess.
func (db *DB) SetNonce(addr hashing.Address, nonce uint64) {
	db.mutable(addr).Nonce = nonce
}

// GetCode implements evm.StateAccess.
func (db *DB) GetCode(addr hashing.Address) []byte {
	acct := db.account(addr)
	if acct == nil || acct.CodeHash.IsZero() {
		return nil
	}
	return db.codes[acct.CodeHash]
}

// CodeByHash returns code from the content-addressed store.
func (db *DB) CodeByHash(h hashing.Hash) ([]byte, bool) {
	code, ok := db.codes[h]
	return code, ok
}

// GetCodeHash implements evm.StateAccess.
func (db *DB) GetCodeHash(addr hashing.Address) hashing.Hash {
	if acct := db.account(addr); acct != nil {
		return acct.CodeHash
	}
	return hashing.ZeroHash
}

// storageTree returns the live storage tree for addr, creating it lazily —
// and, under a persistent backend, rebuilding an evicted tree from the
// backend's flat slots (the tree is canonical, so the rebuild reproduces
// the committed storage root bit for bit).
func (db *DB) storageTree(addr hashing.Address) trie.Tree {
	db.touchStorage(addr)
	if t, ok := db.storage[addr]; ok {
		return t
	}
	t := trees.MustNew(db.kind, 32)
	if db.back.Persistent() {
		db.back.IterateStorage(addr, func(key, val backend.Word) bool {
			if err := t.Set(key[:], val[:]); err != nil {
				panic(fmt.Sprintf("state: storage rebuild: %v", err))
			}
			return true
		})
	}
	db.storage[addr] = t
	return t
}

// touchStorage refreshes addr's eviction recency.
func (db *DB) touchStorage(addr hashing.Address) {
	if db.opts.StorageTreeLimit <= 0 || !db.back.Persistent() {
		return
	}
	db.touchSeq++
	db.storageTouch[addr] = db.touchSeq
}

// GetStorage implements evm.StateAccess. The flat cache serves warm reads
// with no tree walk and no allocation; misses fall back to the live tree
// (or, for accounts whose tree is not resident, the backend) and populate
// the cache.
func (db *DB) GetStorage(addr hashing.Address, key evm.Word) evm.Word {
	sk := backend.SlotKey{Addr: addr, Key: key}
	if db.flat != nil {
		if v, exists, known := db.flat.Slot(sk); known {
			if !exists {
				return evm.Word{}
			}
			return evm.Word(v)
		}
	}
	var w evm.Word
	var ok bool
	if t, resident := db.storage[addr]; resident {
		// Local copy for the same reason as in account(): key[:] through
		// the Tree interface would heap-allocate the parameter and tax the
		// flat-cache hit path above.
		treeKey := key
		var v []byte
		v, ok = t.Get(treeKey[:])
		copy(w[:], v)
	} else if db.back.Persistent() {
		var v backend.Word
		v, ok = db.back.Slot(sk)
		w = evm.Word(v)
	}
	if db.flat != nil {
		db.flat.PutSlot(sk, backend.Word(w), ok)
	}
	return w
}

// SetStorage implements evm.StateAccess; storing the zero word deletes.
func (db *DB) SetStorage(addr hashing.Address, key, value evm.Word) {
	// One tree lookup feeds the journal entry, the existence check, and the
	// per-block committed pre-image.
	t := db.storageTree(addr)
	prevBytes, hadPrev := t.Get(key[:])
	var prev evm.Word
	copy(prev[:], prevBytes)
	db.journal.append(journalEntry{
		kind: jStorage, addr: addr, key: key, prevValue: prev, prevExisted: hadPrev,
	})
	sk := backend.SlotKey{Addr: addr, Key: key}
	if _, seen := db.slotDelta[sk]; !seen {
		// First write this block: the live value still is the committed one.
		db.slotDelta[sk] = prevSlot{val: backend.Word(prev), existed: hadPrev}
	}
	db.markDirty(addr)
	var zero evm.Word
	if value == zero {
		// Fixed-length keys are enforced at this boundary, so errors are
		// impossible; check anyway to honor the Tree contract.
		if err := t.Delete(key[:]); err != nil {
			panic(fmt.Sprintf("state: storage delete: %v", err))
		}
		if db.flat != nil {
			db.flat.UpdateSlot(sk, backend.Word{}, false)
		}
		return
	}
	if err := t.Set(key[:], value[:]); err != nil {
		panic(fmt.Sprintf("state: storage set: %v", err))
	}
	if db.flat != nil {
		db.flat.UpdateSlot(sk, backend.Word(value), true)
	}
}

// GetLocation implements evm.StateAccess. Absent accounts are implicitly
// local: they have never moved anywhere.
func (db *DB) GetLocation(addr hashing.Address) hashing.ChainID {
	if acct := db.account(addr); acct != nil && acct.Location != 0 {
		return acct.Location
	}
	return db.chainID
}

// SetLocation implements evm.StateAccess.
func (db *DB) SetLocation(addr hashing.Address, chain hashing.ChainID) {
	db.mutable(addr).Location = chain
}

// GetMoveNonce implements evm.StateAccess.
func (db *DB) GetMoveNonce(addr hashing.Address) uint64 {
	if acct := db.account(addr); acct != nil {
		return acct.MoveNonce
	}
	return 0
}

// SetMoveNonce implements evm.StateAccess.
func (db *DB) SetMoveNonce(addr hashing.Address, nonce uint64) {
	db.mutable(addr).MoveNonce = nonce
}

// DeleteAccount implements evm.StateAccess (SELFDESTRUCT).
func (db *DB) DeleteAccount(addr hashing.Address) {
	db.journal.append(journalEntry{
		kind:        jAccount,
		addr:        addr,
		prevAccount: cloneAccount(db.account(addr)),
	})
	db.journalStorageWipe(addr)
	db.cache[addr] = nil
	db.markDirty(addr)
	db.storage[addr] = trees.MustNew(db.kind, 32)
	if db.flat != nil {
		db.flat.WipeStorage(addr)
	}
}

// journalStorageWipe records every live storage entry of addr so a revert
// can restore them, and folds the wiped slots into the per-block committed
// pre-image set. Evicted trees are rebuilt first: their entries must enter
// the journal too.
func (db *DB) journalStorageWipe(addr hashing.Address) {
	t := db.storageTree(addr)
	t.Iterate(func(k, v []byte) bool {
		var key, value evm.Word
		copy(key[:], k)
		copy(value[:], v)
		db.journal.append(journalEntry{
			kind: jStorage, addr: addr, key: key, prevValue: value, prevExisted: true,
		})
		sk := backend.SlotKey{Addr: addr, Key: key}
		if _, seen := db.slotDelta[sk]; !seen {
			db.slotDelta[sk] = prevSlot{val: backend.Word(value), existed: true}
		}
		return true
	})
}

// AddLog implements evm.StateAccess.
func (db *DB) AddLog(log *evm.Log) {
	db.journal.append(journalEntry{kind: jLog})
	db.logs = append(db.logs, log)
}

// TakeLogs returns and clears the accumulated logs (called per transaction).
func (db *DB) TakeLogs() []*evm.Log {
	logs := db.logs
	db.logs = nil
	return logs
}

// Snapshot implements evm.StateAccess.
func (db *DB) Snapshot() int { return db.journal.len() }

// RevertToSnapshot implements evm.StateAccess.
func (db *DB) RevertToSnapshot(id int) {
	db.journal.revert(db, id)
}

// DiscardJournal forgets undo history (called after each committed tx; the
// journal must not grow across transactions).
func (db *DB) DiscardJournal() { db.journal.reset() }

// Commit flushes dirty accounts into the account tree and the backend, and
// returns the state root. The journal is discarded: committed state cannot
// be reverted. The decoded working set is released (it would otherwise grow
// monotonically across blocks); the flat cache carries the hot set forward.
func (db *DB) Commit() hashing.Hash {
	// Hash dirty storage trees on the worker pool first. Each tree is an
	// independent object and a root hash is a pure function of contents, so
	// this only warms the per-node hash caches the serial flush below will
	// read — it cannot change what the flush computes.
	db.warmStorageRoots()
	// markDirty appends in first-touch order; sort once for the
	// deterministic flush (map iteration is randomized).
	sort.Slice(db.dirtyOrder, func(i, j int) bool {
		return bytes.Compare(db.dirtyOrder[i][:], db.dirtyOrder[j][:]) < 0
	})
	batch := db.buildBatch()
	for i, addr := range db.dirtyOrder {
		acct, inCache := db.cache[addr]
		if !inCache {
			// Dirty without a working-set entry: the address was touched
			// only through SetStorage (storage writes alone never
			// materialize the record). Load the committed record so the
			// flush updates its storage root instead of mistaking the
			// missing entry for a deletion.
			acct = db.account(addr)
		}
		if acct == nil {
			db.dropCommittedAccount(addr)
			continue
		}
		if t, ok := db.storage[addr]; ok {
			acct.StorageRoot = t.RootHash()
		}
		if acct.isEmpty(db.chainID) {
			db.dropCommittedAccount(addr)
			continue
		}
		enc := acct.Encode()
		batch.Accounts[i].Cur = enc
		if err := db.accountTree.Set(addr[:], enc); err != nil {
			panic(fmt.Sprintf("state: commit set: %v", err))
		}
		if db.flat != nil {
			db.flat.PutAccount(addr, *acct, true)
		}
	}
	// Drop no-op account transitions (created then deleted in one block, or
	// dirtied but restored by a revert): they would pollute the reverse
	// diffs and append dead file records for nothing.
	liveAccs := batch.Accounts[:0]
	for _, ac := range batch.Accounts {
		if ac.Prev == nil && ac.Cur == nil {
			continue
		}
		if bytes.Equal(ac.Prev, ac.Cur) {
			continue
		}
		liveAccs = append(liveAccs, ac)
	}
	batch.Accounts = liveAccs
	// Materialize the slot delta only now, after the flush: an account
	// deleted at commit has just lost its storage tree, so its slots read
	// back as gone and the batch records their deletion.
	db.appendSlotChanges(&batch)
	clear(db.dirty)
	db.dirtyOrder = db.dirtyOrder[:0]
	clear(db.slotDelta)
	db.newCodes = db.newCodes[:0]
	db.journal.reset()
	// Release the decoded working set: entries are either dirty (now
	// flushed into the tree and the flat cache) or clean read-throughs the
	// flat cache still holds.
	clear(db.cache)
	// The account tree itself fans dirty-subtree hashing out when it can;
	// HashParallel is specified to equal RootHash bit for bit.
	var root hashing.Hash
	if ph, ok := db.accountTree.(trie.ParallelHasher); ok {
		root = ph.HashParallel(keys.SharedPool())
	} else {
		root = db.accountTree.RootHash()
	}
	if err := db.back.Commit(root, batch); err != nil {
		panic(fmt.Sprintf("state: backend commit: %v", err))
	}
	db.lastRoot = root
	db.evictStorageTrees()
	return root
}

// buildBatch assembles the account and code half of the commit batch:
// previous account encodings (captured before the tree flush) and new code
// blobs. Cur fields of account changes are filled in by the flush loop;
// slot changes are appended afterwards by appendSlotChanges.
func (db *DB) buildBatch() backend.Batch {
	batch := backend.Batch{
		Accounts: make([]backend.AccountChange, len(db.dirtyOrder)),
	}
	// Previous encodings are copied into one shared arena instead of one
	// allocation each. The arena must be fresh per commit — the backend's
	// reverse-diff history retains the slices for the whole retention
	// window. A growth reallocation strands earlier slices on the old
	// backing array, which stays correct: those bytes are never rewritten.
	var arena []byte
	for i, addr := range db.dirtyOrder {
		batch.Accounts[i].Addr = addr
		if prev, ok := db.accountTree.Get(addr[:]); ok {
			off := len(arena)
			arena = append(arena, prev...)
			batch.Accounts[i].Prev = arena[off:len(arena):len(arena)]
		}
	}
	for _, h := range db.newCodes {
		if code, ok := db.codes[h]; ok { // reverted codes are gone from the map
			batch.Codes = append(batch.Codes, backend.CodeBlob{Hash: h, Code: code})
		}
	}
	return batch
}

// dropCommittedAccount removes a deleted (or empty) account's record and
// every trace of its storage: the committed tree entry, the resident
// storage tree, and the flat-cache lines. Slots the backend still holds
// are deleted by the slot delta, which is materialized after this runs and
// reads the now-missing tree as all-gone. Without the teardown, storage
// written after an in-block DeleteAccount would outlive the account in the
// resident tree but not in a rebuilt one — the backends would disagree the
// moment the address is recreated.
func (db *DB) dropCommittedAccount(addr hashing.Address) {
	if err := db.accountTree.Delete(addr[:]); err != nil {
		panic(fmt.Sprintf("state: commit delete: %v", err))
	}
	delete(db.storage, addr)
	delete(db.storageTouch, addr)
	if db.flat != nil {
		db.flat.DropAccount(addr)
		db.flat.WipeStorage(addr)
	}
}

// appendSlotChanges turns the per-block slot pre-image map into the sorted
// slot changes of the commit batch. Called after the account flush so
// commit-time deletions read back as missing slots.
func (db *DB) appendSlotChanges(batch *backend.Batch) {
	if len(db.slotDelta) > 0 {
		// The key scratch is reused across commits (keys are values, nothing
		// retains them); the change slice is presized to skip growth copies.
		keys := db.slotKeyScratch[:0]
		if cap(keys) < len(db.slotDelta) {
			keys = make([]backend.SlotKey, 0, len(db.slotDelta))
		}
		for sk := range db.slotDelta {
			keys = append(keys, sk)
		}
		if batch.Slots == nil {
			batch.Slots = make([]backend.SlotChange, 0, len(db.slotDelta))
		}
		sort.Slice(keys, func(i, j int) bool {
			if c := bytes.Compare(keys[i].Addr[:], keys[j].Addr[:]); c != 0 {
				return c < 0
			}
			return bytes.Compare(keys[i].Key[:], keys[j].Key[:]) < 0
		})
		for _, sk := range keys {
			prev := db.slotDelta[sk]
			var cur backend.Word
			var exists bool
			if t, ok := db.storage[sk.Addr]; ok {
				if v, found := t.Get(sk.Key[:]); found {
					copy(cur[:], v)
					exists = true
				}
			}
			if exists == prev.existed && cur == prev.val {
				continue // written, then restored to the committed value
			}
			batch.Slots = append(batch.Slots, backend.SlotChange{
				Key: sk, Prev: prev.val, Cur: cur,
				PrevExisted: prev.existed, CurExists: exists,
			})
		}
		db.slotKeyScratch = keys
	}
}

// evictStorageTrees drops the least recently touched clean storage trees
// beyond the configured cap. Only meaningful with a persistent backend
// (the trees are rebuilt from its flat slots on demand); eviction order is
// deterministic (touch sequence, then address).
func (db *DB) evictStorageTrees() {
	limit := db.opts.StorageTreeLimit
	if limit <= 0 || !db.back.Persistent() || len(db.storage) <= limit {
		return
	}
	type candidate struct {
		addr hashing.Address
		seq  uint64
	}
	cands := make([]candidate, 0, len(db.storage))
	for addr := range db.storage {
		cands = append(cands, candidate{addr: addr, seq: db.storageTouch[addr]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].seq != cands[j].seq {
			return cands[i].seq < cands[j].seq
		}
		return bytes.Compare(cands[i].addr[:], cands[j].addr[:]) < 0
	})
	for _, c := range cands[:len(db.storage)-limit] {
		delete(db.storage, c.addr)
		delete(db.storageTouch, c.addr)
	}
}

// warmStorageRoots pre-hashes the storage trees of dirty live accounts on
// the shared worker pool. Trees of distinct accounts share no nodes, and
// each worker runs the ordinary serial RootHash, so parallelism here moves
// work without reordering or changing any result; with one CPU (or fewer
// than two trees to hash) the serial flush simply does the hashing itself.
func (db *DB) warmStorageRoots() {
	if runtime.GOMAXPROCS(0) == 1 {
		return
	}
	var tasks []trie.Tree
	for _, addr := range db.dirtyOrder {
		if db.cache[addr] == nil {
			continue
		}
		if t, ok := db.storage[addr]; ok {
			tasks = append(tasks, t)
		}
	}
	if len(tasks) < 2 {
		return
	}
	pool := keys.SharedPool()
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		pool.Go(func() {
			defer wg.Done()
			t.RootHash()
		})
	}
	wg.Wait()
}

// Root returns the last committed state root without flushing.
func (db *DB) Root() hashing.Hash { return db.accountTree.RootHash() }

// GetAccount returns a copy of the committed-or-cached account record.
func (db *DB) GetAccount(addr hashing.Address) (Account, bool) {
	acct := db.account(addr)
	if acct == nil {
		return Account{}, false
	}
	cp := *acct
	if t, ok := db.storage[addr]; ok {
		cp.StorageRoot = t.RootHash()
	}
	return cp, true
}

// ProveAccount returns the membership proof of addr's record in the account
// tree, valid against the root of the last Commit. The account must have
// been committed.
func (db *DB) ProveAccount(addr hashing.Address) ([]byte, error) {
	return db.accountTree.Prove(addr[:])
}

// StorageEntries returns all storage of addr in ascending key order — the
// state payload V of a move proof (paper Alg. 1, Move2). Accounts whose
// tree is not resident read straight from the backend.
func (db *DB) StorageEntries(addr hashing.Address) []StorageEntry {
	t, ok := db.storage[addr]
	if !ok {
		if !db.back.Persistent() {
			return nil
		}
		var out []StorageEntry
		db.back.IterateStorage(addr, func(key, val backend.Word) bool {
			out = append(out, StorageEntry{Key: evm.Word(key), Value: evm.Word(val)})
			return true
		})
		return out
	}
	out := make([]StorageEntry, 0, t.Len())
	t.Iterate(func(k, v []byte) bool {
		var e StorageEntry
		copy(e.Key[:], k)
		copy(e.Value[:], v)
		out = append(out, e)
		return true
	})
	return out
}

// StorageEntry is one storage key-value pair of a contract.
type StorageEntry struct {
	Key   evm.Word
	Value evm.Word
}

// ImportAccount installs a full account record (Move2 recreation). The
// caller has verified proofs; this writes through the normal journaled path
// so a failing transaction rolls everything back.
func (db *DB) ImportAccount(addr hashing.Address, acct Account, code []byte, entries []StorageEntry) {
	working := db.mutable(addr)
	working.Nonce = acct.Nonce
	working.Balance = acct.Balance
	working.MoveNonce = acct.MoveNonce
	working.Location = db.chainID
	if len(code) > 0 {
		codeCopy := make([]byte, len(code))
		copy(codeCopy, code)
		h := hashing.Sum(codeCopy)
		if _, ok := db.codes[h]; !ok {
			db.journal.append(journalEntry{kind: jCode, codeHash: h})
			db.codes[h] = codeCopy
			db.newCodes = append(db.newCodes, h)
		}
		working.CodeHash = h
	}
	for _, e := range entries {
		db.SetStorage(addr, e.Key, e.Value)
	}
}

// PruneStale removes the storage and code reference of a contract that has
// moved away, keeping the account tombstone (location + move nonce) that
// replay protection needs (paper §III-G(c)). It fails if the contract is
// still local.
func (db *DB) PruneStale(addr hashing.Address) error {
	acct := db.account(addr)
	if acct == nil {
		return fmt.Errorf("state: prune %s: no such account", addr)
	}
	if acct.Location == db.chainID || acct.Location == 0 {
		return fmt.Errorf("state: prune %s: contract is still local", addr)
	}
	working := db.mutable(addr)
	db.journalStorageWipe(addr)
	db.storage[addr] = trees.MustNew(db.kind, 32)
	if db.flat != nil {
		db.flat.WipeStorage(addr)
	}
	working.CodeHash = hashing.ZeroHash
	working.StorageRoot = hashing.ZeroHash
	working.Balance = u256.Zero()
	return nil
}

// AccountCount returns the number of accounts in the committed tree.
func (db *DB) AccountCount() int { return db.accountTree.Len() }
