package state

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/trees"
	"scmove/internal/trie"
	"scmove/internal/u256"
)

// DB is the mutable world state of one chain. It implements evm.StateAccess
// with snapshot/revert journaling, and commits into an authenticated account
// tree of the chain's configured kind for headers and Merkle proofs.
//
// DB is not safe for concurrent use; each chain node owns one.
type DB struct {
	chainID hashing.ChainID
	kind    trie.Kind

	accountTree trie.Tree                     // addr -> Account.Encode()
	storage     map[hashing.Address]trie.Tree // live storage trees
	codes       map[hashing.Hash][]byte       // content-addressed code
	cache       map[hashing.Address]*Account  // decoded working set
	dirty       map[hashing.Address]struct{}  // accounts to flush on Commit
	dirtyOrder  []hashing.Address             // dirty addresses, kept sorted

	logs    []*evm.Log
	journal journal
}

var _ evm.StateAccess = (*DB)(nil)

// NewDB returns an empty state for the given chain, using the chain's state
// tree kind for commitments and proofs.
func NewDB(chainID hashing.ChainID, kind trie.Kind) (*DB, error) {
	accountTree, err := trees.New(kind, hashing.AddressSize)
	if err != nil {
		return nil, fmt.Errorf("new state: %w", err)
	}
	return &DB{
		chainID:     chainID,
		kind:        kind,
		accountTree: accountTree,
		storage:     make(map[hashing.Address]trie.Tree),
		codes:       make(map[hashing.Hash][]byte),
		cache:       make(map[hashing.Address]*Account),
		dirty:       make(map[hashing.Address]struct{}),
	}, nil
}

// ChainID returns the chain this state belongs to.
func (db *DB) ChainID() hashing.ChainID { return db.chainID }

// TreeKind returns the state tree kind used for commitments.
func (db *DB) TreeKind() trie.Kind { return db.kind }

// account returns the cached working copy of addr, loading it from the
// account tree on first touch. Returns nil if the account does not exist.
func (db *DB) account(addr hashing.Address) *Account {
	if acct, ok := db.cache[addr]; ok {
		return acct
	}
	enc, ok := db.accountTree.Get(addr[:])
	if !ok {
		db.cache[addr] = nil
		return nil
	}
	acct, err := DecodeAccount(enc)
	if err != nil {
		// The tree only ever stores Encode() output; a decode failure is a
		// corrupted-state invariant violation.
		panic(fmt.Sprintf("state: corrupt account record for %s: %v", addr, err))
	}
	db.cache[addr] = &acct
	return &acct
}

// sharedGet reads a tree without mutating it, so concurrent readers are
// safe while the tree is frozen. Both shipped tree kinds implement
// trie.SharedReader; the plain-Get fallback keeps hypothetical third kinds
// working in single-reader contexts.
func sharedGet(t trie.Tree, key []byte) ([]byte, bool) {
	if sr, ok := t.(trie.SharedReader); ok {
		return sr.GetShared(key)
	}
	return t.Get(key)
}

// sharedAccount returns a copy of addr's record without installing cache
// entries (account() negative-caches misses, which would race). Safe for
// concurrent readers while the DB itself is quiescent — the contract the
// parallel executor upholds during its speculation phase.
func (db *DB) sharedAccount(addr hashing.Address) (Account, bool) {
	if acct, ok := db.cache[addr]; ok {
		if acct == nil {
			return Account{}, false
		}
		return *acct, true
	}
	enc, ok := sharedGet(db.accountTree, addr[:])
	if !ok {
		return Account{}, false
	}
	acct, err := DecodeAccount(enc)
	if err != nil {
		panic(fmt.Sprintf("state: corrupt account record for %s: %v", addr, err))
	}
	return acct, true
}

// sharedStorage reads one storage slot under the same frozen-DB contract as
// sharedAccount.
func (db *DB) sharedStorage(addr hashing.Address, key evm.Word) (evm.Word, bool) {
	t, ok := db.storage[addr]
	if !ok {
		return evm.Word{}, false
	}
	v, ok := sharedGet(t, key[:])
	if !ok {
		return evm.Word{}, false
	}
	var w evm.Word
	copy(w[:], v)
	return w, true
}

// sharedCode reads the content-addressed code store (append-only between
// commits, so concurrent reads are safe while the DB is quiescent).
func (db *DB) sharedCode(h hashing.Hash) []byte { return db.codes[h] }

// mutable returns the working copy of addr, creating the account if absent,
// and journals the previous version for revert.
func (db *DB) mutable(addr hashing.Address) *Account {
	acct := db.account(addr)
	db.journal.append(journalEntry{kind: jAccount, addr: addr, prevAccount: cloneAccount(acct)})
	if acct == nil {
		acct = &Account{Location: db.chainID}
		db.cache[addr] = acct
	}
	db.markDirty(addr)
	return acct
}

// markDirty records addr for the next Commit, maintaining dirtyOrder as a
// sorted list so Commit flushes deterministically without re-sorting the
// whole dirty set from scratch.
func (db *DB) markDirty(addr hashing.Address) {
	if _, ok := db.dirty[addr]; ok {
		return
	}
	db.dirty[addr] = struct{}{}
	i := sort.Search(len(db.dirtyOrder), func(i int) bool {
		return bytes.Compare(db.dirtyOrder[i][:], addr[:]) >= 0
	})
	db.dirtyOrder = append(db.dirtyOrder, hashing.Address{})
	copy(db.dirtyOrder[i+1:], db.dirtyOrder[i:])
	db.dirtyOrder[i] = addr
}

func cloneAccount(a *Account) *Account {
	if a == nil {
		return nil
	}
	cp := *a
	return &cp
}

// Exists implements evm.StateAccess.
func (db *DB) Exists(addr hashing.Address) bool {
	return db.account(addr) != nil
}

// CreateContract implements evm.StateAccess.
func (db *DB) CreateContract(addr hashing.Address, code []byte) {
	acct := db.mutable(addr)
	codeCopy := make([]byte, len(code))
	copy(codeCopy, code)
	h := hashing.Sum(codeCopy)
	if _, ok := db.codes[h]; !ok {
		db.journal.append(journalEntry{kind: jCode, codeHash: h})
		db.codes[h] = codeCopy
	}
	acct.CodeHash = h
	acct.Location = db.chainID
}

// GetBalance implements evm.StateAccess.
func (db *DB) GetBalance(addr hashing.Address) u256.Int {
	if acct := db.account(addr); acct != nil {
		return acct.Balance
	}
	return u256.Zero()
}

// AddBalance implements evm.StateAccess.
func (db *DB) AddBalance(addr hashing.Address, amount u256.Int) {
	acct := db.mutable(addr)
	acct.Balance = acct.Balance.Add(amount)
}

// SubBalance implements evm.StateAccess. Callers check sufficiency first
// (evm.transfer); going below zero wraps and is a caller bug.
func (db *DB) SubBalance(addr hashing.Address, amount u256.Int) {
	acct := db.mutable(addr)
	acct.Balance = acct.Balance.Sub(amount)
}

// GetNonce implements evm.StateAccess.
func (db *DB) GetNonce(addr hashing.Address) uint64 {
	if acct := db.account(addr); acct != nil {
		return acct.Nonce
	}
	return 0
}

// SetNonce implements evm.StateAccess.
func (db *DB) SetNonce(addr hashing.Address, nonce uint64) {
	db.mutable(addr).Nonce = nonce
}

// GetCode implements evm.StateAccess.
func (db *DB) GetCode(addr hashing.Address) []byte {
	acct := db.account(addr)
	if acct == nil || acct.CodeHash.IsZero() {
		return nil
	}
	return db.codes[acct.CodeHash]
}

// CodeByHash returns code from the content-addressed store.
func (db *DB) CodeByHash(h hashing.Hash) ([]byte, bool) {
	code, ok := db.codes[h]
	return code, ok
}

// GetCodeHash implements evm.StateAccess.
func (db *DB) GetCodeHash(addr hashing.Address) hashing.Hash {
	if acct := db.account(addr); acct != nil {
		return acct.CodeHash
	}
	return hashing.ZeroHash
}

// storageTree returns the live storage tree for addr, creating it lazily.
func (db *DB) storageTree(addr hashing.Address) trie.Tree {
	if t, ok := db.storage[addr]; ok {
		return t
	}
	t := trees.MustNew(db.kind, 32)
	db.storage[addr] = t
	return t
}

// GetStorage implements evm.StateAccess.
func (db *DB) GetStorage(addr hashing.Address, key evm.Word) evm.Word {
	t, ok := db.storage[addr]
	if !ok {
		return evm.Word{}
	}
	v, ok := t.Get(key[:])
	if !ok {
		return evm.Word{}
	}
	var w evm.Word
	copy(w[:], v)
	return w
}

// SetStorage implements evm.StateAccess; storing the zero word deletes.
func (db *DB) SetStorage(addr hashing.Address, key, value evm.Word) {
	// One tree lookup feeds both the journal entry and the existence check.
	t := db.storageTree(addr)
	prevBytes, hadPrev := t.Get(key[:])
	var prev evm.Word
	copy(prev[:], prevBytes)
	db.journal.append(journalEntry{
		kind: jStorage, addr: addr, key: key, prevValue: prev, prevExisted: hadPrev,
	})
	db.markDirty(addr)
	var zero evm.Word
	if value == zero {
		// Fixed-length keys are enforced at this boundary, so errors are
		// impossible; check anyway to honor the Tree contract.
		if err := t.Delete(key[:]); err != nil {
			panic(fmt.Sprintf("state: storage delete: %v", err))
		}
		return
	}
	if err := t.Set(key[:], value[:]); err != nil {
		panic(fmt.Sprintf("state: storage set: %v", err))
	}
}

// GetLocation implements evm.StateAccess. Absent accounts are implicitly
// local: they have never moved anywhere.
func (db *DB) GetLocation(addr hashing.Address) hashing.ChainID {
	if acct := db.account(addr); acct != nil && acct.Location != 0 {
		return acct.Location
	}
	return db.chainID
}

// SetLocation implements evm.StateAccess.
func (db *DB) SetLocation(addr hashing.Address, chain hashing.ChainID) {
	db.mutable(addr).Location = chain
}

// GetMoveNonce implements evm.StateAccess.
func (db *DB) GetMoveNonce(addr hashing.Address) uint64 {
	if acct := db.account(addr); acct != nil {
		return acct.MoveNonce
	}
	return 0
}

// SetMoveNonce implements evm.StateAccess.
func (db *DB) SetMoveNonce(addr hashing.Address, nonce uint64) {
	db.mutable(addr).MoveNonce = nonce
}

// DeleteAccount implements evm.StateAccess (SELFDESTRUCT).
func (db *DB) DeleteAccount(addr hashing.Address) {
	db.journal.append(journalEntry{
		kind:        jAccount,
		addr:        addr,
		prevAccount: cloneAccount(db.account(addr)),
	})
	db.journalStorageWipe(addr)
	db.cache[addr] = nil
	db.markDirty(addr)
	db.storage[addr] = trees.MustNew(db.kind, 32)
}

// journalStorageWipe records every live storage entry of addr so a revert
// can restore them.
func (db *DB) journalStorageWipe(addr hashing.Address) {
	t, ok := db.storage[addr]
	if !ok {
		return
	}
	t.Iterate(func(k, v []byte) bool {
		var key, value evm.Word
		copy(key[:], k)
		copy(value[:], v)
		db.journal.append(journalEntry{
			kind: jStorage, addr: addr, key: key, prevValue: value, prevExisted: true,
		})
		return true
	})
}

// AddLog implements evm.StateAccess.
func (db *DB) AddLog(log *evm.Log) {
	db.journal.append(journalEntry{kind: jLog})
	db.logs = append(db.logs, log)
}

// TakeLogs returns and clears the accumulated logs (called per transaction).
func (db *DB) TakeLogs() []*evm.Log {
	logs := db.logs
	db.logs = nil
	return logs
}

// Snapshot implements evm.StateAccess.
func (db *DB) Snapshot() int { return db.journal.len() }

// RevertToSnapshot implements evm.StateAccess.
func (db *DB) RevertToSnapshot(id int) {
	db.journal.revert(db, id)
}

// DiscardJournal forgets undo history (called after each committed tx; the
// journal must not grow across transactions).
func (db *DB) DiscardJournal() { db.journal.reset() }

// Commit flushes dirty accounts into the account tree and returns the state
// root. The journal is discarded: committed state cannot be reverted.
func (db *DB) Commit() hashing.Hash {
	// Hash dirty storage trees on the worker pool first. Each tree is an
	// independent object and a root hash is a pure function of contents, so
	// this only warms the per-node hash caches the serial flush below will
	// read — it cannot change what the flush computes.
	db.warmStorageRoots()
	// dirtyOrder is maintained sorted by markDirty, so the deterministic
	// flush order comes for free (map iteration is randomized).
	for _, addr := range db.dirtyOrder {
		acct := db.cache[addr]
		if acct == nil {
			if err := db.accountTree.Delete(addr[:]); err != nil {
				panic(fmt.Sprintf("state: commit delete: %v", err))
			}
			continue
		}
		if t, ok := db.storage[addr]; ok {
			acct.StorageRoot = t.RootHash()
		}
		if acct.isEmpty(db.chainID) {
			if err := db.accountTree.Delete(addr[:]); err != nil {
				panic(fmt.Sprintf("state: commit delete: %v", err))
			}
			continue
		}
		if err := db.accountTree.Set(addr[:], acct.Encode()); err != nil {
			panic(fmt.Sprintf("state: commit set: %v", err))
		}
	}
	clear(db.dirty)
	db.dirtyOrder = db.dirtyOrder[:0]
	db.journal.reset()
	// The account tree itself fans dirty-subtree hashing out when it can;
	// HashParallel is specified to equal RootHash bit for bit.
	if ph, ok := db.accountTree.(trie.ParallelHasher); ok {
		return ph.HashParallel(keys.SharedPool())
	}
	return db.accountTree.RootHash()
}

// warmStorageRoots pre-hashes the storage trees of dirty live accounts on
// the shared worker pool. Trees of distinct accounts share no nodes, and
// each worker runs the ordinary serial RootHash, so parallelism here moves
// work without reordering or changing any result; with one CPU (or fewer
// than two trees to hash) the serial flush simply does the hashing itself.
func (db *DB) warmStorageRoots() {
	if runtime.GOMAXPROCS(0) == 1 {
		return
	}
	var tasks []trie.Tree
	for _, addr := range db.dirtyOrder {
		if db.cache[addr] == nil {
			continue
		}
		if t, ok := db.storage[addr]; ok {
			tasks = append(tasks, t)
		}
	}
	if len(tasks) < 2 {
		return
	}
	pool := keys.SharedPool()
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		pool.Go(func() {
			defer wg.Done()
			t.RootHash()
		})
	}
	wg.Wait()
}

// Root returns the last committed state root without flushing.
func (db *DB) Root() hashing.Hash { return db.accountTree.RootHash() }

// GetAccount returns a copy of the committed-or-cached account record.
func (db *DB) GetAccount(addr hashing.Address) (Account, bool) {
	acct := db.account(addr)
	if acct == nil {
		return Account{}, false
	}
	cp := *acct
	if t, ok := db.storage[addr]; ok {
		cp.StorageRoot = t.RootHash()
	}
	return cp, true
}

// ProveAccount returns the membership proof of addr's record in the account
// tree, valid against the root of the last Commit. The account must have
// been committed.
func (db *DB) ProveAccount(addr hashing.Address) ([]byte, error) {
	return db.accountTree.Prove(addr[:])
}

// StorageEntries returns all storage of addr in ascending key order — the
// state payload V of a move proof (paper Alg. 1, Move2).
func (db *DB) StorageEntries(addr hashing.Address) []StorageEntry {
	t, ok := db.storage[addr]
	if !ok {
		return nil
	}
	out := make([]StorageEntry, 0, t.Len())
	t.Iterate(func(k, v []byte) bool {
		var e StorageEntry
		copy(e.Key[:], k)
		copy(e.Value[:], v)
		out = append(out, e)
		return true
	})
	return out
}

// StorageEntry is one storage key-value pair of a contract.
type StorageEntry struct {
	Key   evm.Word
	Value evm.Word
}

// ImportAccount installs a full account record (Move2 recreation). The
// caller has verified proofs; this writes through the normal journaled path
// so a failing transaction rolls everything back.
func (db *DB) ImportAccount(addr hashing.Address, acct Account, code []byte, entries []StorageEntry) {
	working := db.mutable(addr)
	working.Nonce = acct.Nonce
	working.Balance = acct.Balance
	working.MoveNonce = acct.MoveNonce
	working.Location = db.chainID
	if len(code) > 0 {
		codeCopy := make([]byte, len(code))
		copy(codeCopy, code)
		h := hashing.Sum(codeCopy)
		if _, ok := db.codes[h]; !ok {
			db.journal.append(journalEntry{kind: jCode, codeHash: h})
			db.codes[h] = codeCopy
		}
		working.CodeHash = h
	}
	for _, e := range entries {
		db.SetStorage(addr, e.Key, e.Value)
	}
}

// PruneStale removes the storage and code reference of a contract that has
// moved away, keeping the account tombstone (location + move nonce) that
// replay protection needs (paper §III-G(c)). It fails if the contract is
// still local.
func (db *DB) PruneStale(addr hashing.Address) error {
	acct := db.account(addr)
	if acct == nil {
		return fmt.Errorf("state: prune %s: no such account", addr)
	}
	if acct.Location == db.chainID || acct.Location == 0 {
		return fmt.Errorf("state: prune %s: contract is still local", addr)
	}
	working := db.mutable(addr)
	db.journalStorageWipe(addr)
	db.storage[addr] = trees.MustNew(db.kind, 32)
	working.CodeHash = hashing.ZeroHash
	working.StorageRoot = hashing.ZeroHash
	working.Balance = u256.Zero()
	return nil
}

// AccountCount returns the number of accounts in the committed tree.
func (db *DB) AccountCount() int { return db.accountTree.Len() }
