package state

import (
	"testing"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/trie"
	"scmove/internal/u256"
)

const localChain = hashing.ChainID(1)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := NewDB(localChain, trie.KindMPT)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func addr(b byte) hashing.Address {
	var a hashing.Address
	a[0] = b
	return a
}

func word(b byte) evm.Word {
	var w evm.Word
	w[31] = b
	return w
}

func TestAccountRoundTrip(t *testing.T) {
	a := Account{
		Nonce:       7,
		Balance:     u256.FromUint64(1234),
		CodeHash:    hashing.Sum([]byte("code")),
		StorageRoot: hashing.Sum([]byte("root")),
		Location:    hashing.ChainID(3),
		MoveNonce:   9,
	}
	got, err := DecodeAccount(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, a)
	}
}

func TestDecodeAccountRejectsGarbage(t *testing.T) {
	if _, err := DecodeAccount([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestBalanceNonce(t *testing.T) {
	db := newTestDB(t)
	a := addr(1)
	if !db.GetBalance(a).IsZero() || db.GetNonce(a) != 0 {
		t.Fatal("fresh account must be zero")
	}
	db.AddBalance(a, u256.FromUint64(100))
	db.SubBalance(a, u256.FromUint64(30))
	db.SetNonce(a, 5)
	if got := db.GetBalance(a); !got.Eq(u256.FromUint64(70)) {
		t.Fatalf("balance = %s", got)
	}
	if db.GetNonce(a) != 5 {
		t.Fatalf("nonce = %d", db.GetNonce(a))
	}
	if !db.Exists(a) {
		t.Fatal("touched account must exist")
	}
}

func TestStorageSetGetDelete(t *testing.T) {
	db := newTestDB(t)
	a := addr(1)
	db.SetStorage(a, word(1), word(9))
	if got := db.GetStorage(a, word(1)); got != word(9) {
		t.Fatalf("storage = %x", got)
	}
	// Zero value deletes.
	db.SetStorage(a, word(1), evm.Word{})
	if got := db.GetStorage(a, word(1)); got != (evm.Word{}) {
		t.Fatalf("deleted storage = %x", got)
	}
	if len(db.StorageEntries(a)) != 0 {
		t.Fatal("no entries expected after delete")
	}
}

func TestSnapshotRevert(t *testing.T) {
	db := newTestDB(t)
	a, b := addr(1), addr(2)
	db.AddBalance(a, u256.FromUint64(50))
	db.SetStorage(a, word(1), word(1))

	snap := db.Snapshot()
	db.AddBalance(a, u256.FromUint64(100))
	db.SetStorage(a, word(1), word(2))
	db.SetStorage(a, word(2), word(3))
	db.SetNonce(b, 9)
	db.CreateContract(b, []byte("some code"))
	db.AddLog(&evm.Log{Address: a})
	db.SetLocation(a, hashing.ChainID(7))
	db.SetMoveNonce(a, 3)

	db.RevertToSnapshot(snap)

	if got := db.GetBalance(a); !got.Eq(u256.FromUint64(50)) {
		t.Fatalf("balance after revert = %s", got)
	}
	if got := db.GetStorage(a, word(1)); got != word(1) {
		t.Fatalf("storage[1] after revert = %x", got)
	}
	if got := db.GetStorage(a, word(2)); got != (evm.Word{}) {
		t.Fatalf("storage[2] after revert = %x", got)
	}
	if db.Exists(b) {
		t.Fatal("account b must not exist after revert")
	}
	if len(db.GetCode(b)) != 0 {
		t.Fatal("code must be gone after revert")
	}
	if logs := db.TakeLogs(); len(logs) != 0 {
		t.Fatalf("logs after revert = %d", len(logs))
	}
	if db.GetLocation(a) != localChain {
		t.Fatal("location must revert to local")
	}
	if db.GetMoveNonce(a) != 0 {
		t.Fatal("move nonce must revert")
	}
}

func TestNestedSnapshots(t *testing.T) {
	db := newTestDB(t)
	a := addr(1)
	db.SetStorage(a, word(1), word(1))
	s1 := db.Snapshot()
	db.SetStorage(a, word(1), word(2))
	s2 := db.Snapshot()
	db.SetStorage(a, word(1), word(3))
	db.RevertToSnapshot(s2)
	if got := db.GetStorage(a, word(1)); got != word(2) {
		t.Fatalf("after inner revert = %x", got)
	}
	db.RevertToSnapshot(s1)
	if got := db.GetStorage(a, word(1)); got != word(1) {
		t.Fatalf("after outer revert = %x", got)
	}
}

func TestCommitRootReflectsContents(t *testing.T) {
	db := newTestDB(t)
	a := addr(1)
	db.AddBalance(a, u256.FromUint64(10))
	r1 := db.Commit()
	if r1.IsZero() {
		t.Fatal("root must be non-zero after commit")
	}
	// Identical content on a fresh DB commits to the same root.
	db2 := newTestDB(t)
	db2.AddBalance(a, u256.FromUint64(10))
	if r2 := db2.Commit(); r2 != r1 {
		t.Fatalf("equal state, different roots: %s vs %s", r1, r2)
	}
	// Changing state changes the root.
	db.AddBalance(a, u256.FromUint64(1))
	if db.Commit() == r1 {
		t.Fatal("root must change with balance")
	}
}

func TestCommitIncludesStorageRoot(t *testing.T) {
	db := newTestDB(t)
	a := addr(1)
	db.CreateContract(a, []byte("c"))
	db.SetStorage(a, word(1), word(1))
	r1 := db.Commit()
	db.SetStorage(a, word(1), word(2))
	if db.Commit() == r1 {
		t.Fatal("storage change must change the state root")
	}
}

func TestEmptyAccountOmittedFromTree(t *testing.T) {
	db := newTestDB(t)
	a := addr(1)
	db.AddBalance(a, u256.FromUint64(5))
	db.SubBalance(a, u256.FromUint64(5))
	db.Commit()
	if db.AccountCount() != 0 {
		t.Fatalf("empty account committed: count=%d", db.AccountCount())
	}
}

func TestProveAccountAfterCommit(t *testing.T) {
	db := newTestDB(t)
	a := addr(1)
	db.AddBalance(a, u256.FromUint64(10))
	root := db.Commit()
	proof, err := db.ProveAccount(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof) == 0 || root.IsZero() {
		t.Fatal("expected proof and root")
	}
}

func TestLocationDefaultsToLocal(t *testing.T) {
	db := newTestDB(t)
	if db.GetLocation(addr(9)) != localChain {
		t.Fatal("absent accounts are implicitly local")
	}
	db.SetLocation(addr(9), hashing.ChainID(4))
	if db.GetLocation(addr(9)) != hashing.ChainID(4) {
		t.Fatal("explicit location must stick")
	}
}

func TestImportAccount(t *testing.T) {
	db := newTestDB(t)
	a := addr(3)
	code := []byte("imported code")
	entries := []StorageEntry{{Key: word(1), Value: word(7)}, {Key: word(2), Value: word(8)}}
	db.ImportAccount(a, Account{
		Nonce: 2, Balance: u256.FromUint64(99), MoveNonce: 4,
	}, code, entries)

	acct, ok := db.GetAccount(a)
	if !ok {
		t.Fatal("account must exist")
	}
	if acct.Nonce != 2 || !acct.Balance.Eq(u256.FromUint64(99)) || acct.MoveNonce != 4 {
		t.Fatalf("imported account %+v", acct)
	}
	if acct.Location != localChain {
		t.Fatal("imported account must be local")
	}
	if string(db.GetCode(a)) != string(code) {
		t.Fatal("code mismatch")
	}
	if db.GetStorage(a, word(2)) != word(8) {
		t.Fatal("storage mismatch")
	}
}

func TestImportAccountRevertable(t *testing.T) {
	db := newTestDB(t)
	a := addr(3)
	snap := db.Snapshot()
	db.ImportAccount(a, Account{Nonce: 1}, []byte("c"), []StorageEntry{{Key: word(1), Value: word(1)}})
	db.RevertToSnapshot(snap)
	if db.Exists(a) {
		t.Fatal("import must roll back")
	}
	if db.GetStorage(a, word(1)) != (evm.Word{}) {
		t.Fatal("imported storage must roll back")
	}
}

func TestPruneStale(t *testing.T) {
	db := newTestDB(t)
	a := addr(5)
	db.CreateContract(a, []byte("code"))
	db.SetStorage(a, word(1), word(1))
	db.AddBalance(a, u256.FromUint64(10))
	db.SetMoveNonce(a, 3)

	// Still local: prune must refuse.
	if err := db.PruneStale(a); err == nil {
		t.Fatal("pruning a local contract must fail")
	}
	db.SetLocation(a, hashing.ChainID(2))
	if err := db.PruneStale(a); err != nil {
		t.Fatal(err)
	}
	if len(db.GetCode(a)) != 0 || len(db.StorageEntries(a)) != 0 {
		t.Fatal("prune must drop code and storage")
	}
	if !db.GetBalance(a).IsZero() {
		t.Fatal("prune must zero the locked balance")
	}
	// The tombstone keeps the replay-protection state (Fig. 2).
	if db.GetMoveNonce(a) != 3 {
		t.Fatal("prune must keep the move nonce")
	}
	if db.GetLocation(a) != hashing.ChainID(2) {
		t.Fatal("prune must keep the location")
	}
}

func TestDeleteAccount(t *testing.T) {
	db := newTestDB(t)
	a := addr(6)
	db.CreateContract(a, []byte("code"))
	db.SetStorage(a, word(1), word(2))
	snap := db.Snapshot()
	db.DeleteAccount(a)
	if db.Exists(a) || db.GetStorage(a, word(1)) != (evm.Word{}) {
		t.Fatal("delete must clear the account")
	}
	db.RevertToSnapshot(snap)
	if !db.Exists(a) || db.GetStorage(a, word(1)) != word(2) {
		t.Fatal("delete must be revertable")
	}
}

func TestTakeLogsClears(t *testing.T) {
	db := newTestDB(t)
	db.AddLog(&evm.Log{Address: addr(1)})
	db.AddLog(&evm.Log{Address: addr(2)})
	if got := db.TakeLogs(); len(got) != 2 {
		t.Fatalf("TakeLogs = %d", len(got))
	}
	if got := db.TakeLogs(); len(got) != 0 {
		t.Fatalf("second TakeLogs = %d", len(got))
	}
}

func TestCommitDeterministicAcrossDirtyOrder(t *testing.T) {
	// Commit sorts dirty accounts; two DBs touched in different orders must
	// produce the same root.
	db1 := newTestDB(t)
	db2 := newTestDB(t)
	for i := 0; i < 20; i++ {
		db1.AddBalance(addr(byte(i)), u256.FromUint64(uint64(i+1)))
	}
	for i := 19; i >= 0; i-- {
		db2.AddBalance(addr(byte(i)), u256.FromUint64(uint64(i+1)))
	}
	if db1.Commit() != db2.Commit() {
		t.Fatal("commit order must not affect the root")
	}
}
