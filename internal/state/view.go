package state

import (
	"bytes"
	"sort"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// View is a speculative overlay over a frozen parent DB: the unit of
// optimistic concurrency in the parallel block executor. Each transaction
// lane executes against its own View, which records the parent values the
// transaction observed (its read set, at account-field and storage-slot
// granularity) and buffers every write in an overlay the parent never sees.
//
// After speculation, Validate replays the read set against the state the
// transaction would actually have executed on in block order; if every
// observed value still matches, ApplyTo replays the buffered writes through
// the normal StateAccess setters, reproducing bit-for-bit what serial
// execution would have written. Many Views may read one parent concurrently
// (via the DB's shared read path) as long as nothing mutates the parent.
//
// Balances are special-cased: AddBalance/SubBalance accumulate commutative
// deltas without observing the parent, so the coinbase fee credit every
// transaction performs does not serialize whole blocks. Only GetBalance
// materializes a parent read.
type View struct {
	db       *DB
	accounts map[hashing.Address]*viewAccount
	slots    map[viewSlotKey]*viewSlot
	logs     []*evm.Log
	undo     []viewUndo
	// epochCounter feeds acctWrites.epoch on wipes. It is monotonic across
	// reverts so a revived wipe can never resurrect slot writes that were
	// rolled back with an earlier one.
	epochCounter int
}

var _ evm.ExecState = (*View)(nil)

// NewView returns an empty overlay over db. The parent must stay frozen
// (no writes, no cache-installing reads) for the lifetime of the view.
func NewView(db *DB) *View {
	return &View{
		db:       db,
		accounts: make(map[hashing.Address]*viewAccount),
		slots:    make(map[viewSlotKey]*viewSlot),
	}
}

type viewSlotKey struct {
	addr hashing.Address
	key  evm.Word
}

// acctWrites is the per-account write overlay. It is the only part of a
// viewAccount that snapshots roll back: read sets must survive reverts,
// because a reverted subcall still observed the parent values it read.
type acctWrites struct {
	// wiped disables parent fall-through entirely (DeleteAccount). epoch
	// identifies the wipe generation; slot writes from older generations
	// are dead.
	wiped bool
	epoch int

	nonceSet bool
	nonce    uint64

	// balSet replaces the parent balance with balBase (wipes and Move2
	// imports). balAdd/balSub accumulate commutative deltas on top of
	// whichever base applies; wrapping mod 2^256 composes exactly like the
	// serial Add/Sub sequence.
	balSet     bool
	balBase    u256.Int
	balTouched bool
	balAdd     u256.Int
	balSub     u256.Int

	codeSet  bool
	code     []byte
	codeHash hashing.Hash

	locSet bool
	loc    hashing.ChainID

	moveSet   bool
	moveNonce uint64
}

// written reports whether the overlay carries any account-creating write —
// the touches that make a serial mutable() call bring the account into
// existence.
func (w *acctWrites) written() bool {
	return w.nonceSet || w.balSet || w.balTouched || w.codeSet || w.locSet || w.moveSet
}

type viewAccount struct {
	// Parent observation, loaded at most once: the parent is frozen while
	// the view lives, so one snapshot serves every field read.
	parentLoaded bool
	parentExists bool
	parent       Account

	// Read set: which parent fields the transaction observed. Never rolled
	// back.
	readExists bool
	readNonce  bool
	readBal    bool
	readCode   bool
	readLoc    bool
	readMove   bool

	w acctWrites
}

// slotWrites is the rollback unit of one storage slot.
type slotWrites struct {
	written bool
	val     evm.Word
	epoch   int
}

type viewSlot struct {
	// read/parentVal record the observed parent value; never rolled back.
	read      bool
	parentVal evm.Word
	w         slotWrites
}

// viewUndo is one journal entry: the pre-mutation write overlay of an
// account or slot, or a log append.
type viewUndo struct {
	kind uint8
	addr hashing.Address
	key  evm.Word
	acct acctWrites
	slot slotWrites
}

const (
	undoAccount uint8 = iota
	undoSlot
	undoLog
)

// acct returns the overlay entry for addr, creating an empty one. Creating
// an entry alone observes and writes nothing.
func (v *View) acct(addr hashing.Address) *viewAccount {
	a, ok := v.accounts[addr]
	if !ok {
		a = &viewAccount{}
		v.accounts[addr] = a
	}
	return a
}

// mutate journals addr's current write overlay and returns the entry.
func (v *View) mutate(addr hashing.Address) *viewAccount {
	a := v.acct(addr)
	v.undo = append(v.undo, viewUndo{kind: undoAccount, addr: addr, acct: a.w})
	return a
}

// load snapshots the parent record on first fall-through read.
func (v *View) load(a *viewAccount, addr hashing.Address) {
	if !a.parentLoaded {
		a.parent, a.parentExists = v.db.sharedAccount(addr)
		a.parentLoaded = true
	}
}

// Exists implements evm.StateAccess.
func (v *View) Exists(addr hashing.Address) bool {
	a := v.acct(addr)
	if a.w.written() {
		return true
	}
	if a.w.wiped {
		return false
	}
	v.load(a, addr)
	a.readExists = true
	return a.parentExists
}

// GetNonce implements evm.StateAccess.
func (v *View) GetNonce(addr hashing.Address) uint64 {
	a := v.acct(addr)
	if a.w.nonceSet {
		return a.w.nonce
	}
	if a.w.wiped {
		return 0
	}
	v.load(a, addr)
	a.readNonce = true
	return a.parent.Nonce
}

// SetNonce implements evm.StateAccess.
func (v *View) SetNonce(addr hashing.Address, nonce uint64) {
	a := v.mutate(addr)
	a.w.nonceSet, a.w.nonce = true, nonce
}

// GetBalance implements evm.StateAccess.
func (v *View) GetBalance(addr hashing.Address) u256.Int {
	a := v.acct(addr)
	base := u256.Zero()
	switch {
	case a.w.balSet:
		base = a.w.balBase
	case a.w.wiped:
		// zero base, no parent read
	default:
		v.load(a, addr)
		a.readBal = true
		base = a.parent.Balance
	}
	return base.Add(a.w.balAdd).Sub(a.w.balSub)
}

// AddBalance implements evm.StateAccess as a commutative delta: no parent
// value is observed, so concurrent credits to one account never conflict.
func (v *View) AddBalance(addr hashing.Address, amount u256.Int) {
	a := v.mutate(addr)
	a.w.balTouched = true
	a.w.balAdd = a.w.balAdd.Add(amount)
}

// SubBalance implements evm.StateAccess (see AddBalance).
func (v *View) SubBalance(addr hashing.Address, amount u256.Int) {
	a := v.mutate(addr)
	a.w.balTouched = true
	a.w.balSub = a.w.balSub.Add(amount)
}

// GetCode implements evm.StateAccess.
func (v *View) GetCode(addr hashing.Address) []byte {
	a := v.acct(addr)
	if a.w.codeSet {
		return a.w.code
	}
	if a.w.wiped {
		return nil
	}
	v.load(a, addr)
	a.readCode = true
	if a.parent.CodeHash.IsZero() {
		return nil
	}
	return v.db.sharedCode(a.parent.CodeHash)
}

// GetCodeHash implements evm.StateAccess.
func (v *View) GetCodeHash(addr hashing.Address) hashing.Hash {
	a := v.acct(addr)
	if a.w.codeSet {
		return a.w.codeHash
	}
	if a.w.wiped {
		return hashing.ZeroHash
	}
	v.load(a, addr)
	a.readCode = true
	return a.parent.CodeHash
}

// CreateContract implements evm.StateAccess.
func (v *View) CreateContract(addr hashing.Address, code []byte) {
	a := v.mutate(addr)
	codeCopy := make([]byte, len(code))
	copy(codeCopy, code)
	a.w.codeSet = true
	a.w.code = codeCopy
	a.w.codeHash = hashing.Sum(codeCopy)
	a.w.locSet = true
	a.w.loc = v.db.chainID
}

// GetStorage implements evm.StateAccess.
func (v *View) GetStorage(addr hashing.Address, key evm.Word) evm.Word {
	a := v.acct(addr)
	k := viewSlotKey{addr, key}
	s := v.slots[k]
	if s != nil && s.w.written && s.w.epoch == a.w.epoch {
		return s.w.val
	}
	if a.w.wiped {
		return evm.Word{}
	}
	if s == nil {
		s = &viewSlot{}
		v.slots[k] = s
	}
	if !s.read {
		s.parentVal, _ = v.db.sharedStorage(addr, key)
		s.read = true
	}
	return s.parentVal
}

// SetStorage implements evm.StateAccess. Like the serial DB, a storage
// write alone does not bring the account into existence.
func (v *View) SetStorage(addr hashing.Address, key, value evm.Word) {
	a := v.acct(addr)
	k := viewSlotKey{addr, key}
	s := v.slots[k]
	if s == nil {
		s = &viewSlot{}
		v.slots[k] = s
	}
	v.undo = append(v.undo, viewUndo{kind: undoSlot, addr: addr, key: key, slot: s.w})
	s.w = slotWrites{written: true, val: value, epoch: a.w.epoch}
}

// GetLocation implements evm.StateAccess.
func (v *View) GetLocation(addr hashing.Address) hashing.ChainID {
	a := v.acct(addr)
	if a.w.locSet {
		if a.w.loc != 0 {
			return a.w.loc
		}
		return v.db.chainID
	}
	if a.w.wiped {
		return v.db.chainID
	}
	v.load(a, addr)
	a.readLoc = true
	return v.observedLocation(a)
}

// observedLocation applies the absent-is-local default to the parent
// snapshot (mirrors DB.GetLocation).
func (v *View) observedLocation(a *viewAccount) hashing.ChainID {
	if a.parentExists && a.parent.Location != 0 {
		return a.parent.Location
	}
	return v.db.chainID
}

// SetLocation implements evm.StateAccess.
func (v *View) SetLocation(addr hashing.Address, chain hashing.ChainID) {
	a := v.mutate(addr)
	a.w.locSet, a.w.loc = true, chain
}

// GetMoveNonce implements evm.StateAccess.
func (v *View) GetMoveNonce(addr hashing.Address) uint64 {
	a := v.acct(addr)
	if a.w.moveSet {
		return a.w.moveNonce
	}
	if a.w.wiped {
		return 0
	}
	v.load(a, addr)
	a.readMove = true
	return a.parent.MoveNonce
}

// SetMoveNonce implements evm.StateAccess.
func (v *View) SetMoveNonce(addr hashing.Address, nonce uint64) {
	a := v.mutate(addr)
	a.w.moveSet, a.w.moveNonce = true, nonce
}

// DeleteAccount implements evm.StateAccess (SELFDESTRUCT): the overlay
// forgets every pending write and shields all parent fields, and a fresh
// epoch kills the account's buffered storage writes.
func (v *View) DeleteAccount(addr hashing.Address) {
	a := v.mutate(addr)
	v.epochCounter++
	a.w = acctWrites{wiped: true, epoch: v.epochCounter}
}

// ImportAccount installs a full account record (Move2 recreation), matching
// DB.ImportAccount field for field.
func (v *View) ImportAccount(addr hashing.Address, acct Account, code []byte, entries []StorageEntry) {
	a := v.mutate(addr)
	a.w.nonceSet, a.w.nonce = true, acct.Nonce
	a.w.balSet, a.w.balBase = true, acct.Balance
	a.w.balTouched, a.w.balAdd, a.w.balSub = false, u256.Zero(), u256.Zero()
	a.w.moveSet, a.w.moveNonce = true, acct.MoveNonce
	a.w.locSet, a.w.loc = true, v.db.chainID
	if len(code) > 0 {
		codeCopy := make([]byte, len(code))
		copy(codeCopy, code)
		a.w.codeSet, a.w.code, a.w.codeHash = true, codeCopy, hashing.Sum(codeCopy)
	}
	for _, e := range entries {
		v.SetStorage(addr, e.Key, e.Value)
	}
}

// AddLog implements evm.StateAccess.
func (v *View) AddLog(log *evm.Log) {
	v.undo = append(v.undo, viewUndo{kind: undoLog})
	v.logs = append(v.logs, log)
}

// TakeLogs returns and clears the accumulated logs (evm.ExecState).
func (v *View) TakeLogs() []*evm.Log {
	logs := v.logs
	v.logs = nil
	return logs
}

// Snapshot implements evm.StateAccess.
func (v *View) Snapshot() int { return len(v.undo) }

// RevertToSnapshot implements evm.StateAccess. Only write overlays roll
// back; recorded reads persist, because a reverted subcall still observed
// them and validation must re-check everything the execution path saw.
func (v *View) RevertToSnapshot(id int) {
	for i := len(v.undo) - 1; i >= id; i-- {
		u := v.undo[i]
		switch u.kind {
		case undoAccount:
			v.accounts[u.addr].w = u.acct
		case undoSlot:
			v.slots[viewSlotKey{u.addr, u.key}].w = u.slot
		case undoLog:
			v.logs = v.logs[:len(v.logs)-1]
		}
	}
	v.undo = v.undo[:id]
}

// Accesses reports the view's recorded read/write set at the granularity
// the conflict scheduler tracks: per account, whether metadata (existence,
// nonce, code, location, move-nonce) was read or written, and whether the
// balance was read, replaced, or delta-adjusted; per storage slot, whether
// it was read and whether a write survives (writes buried by a later
// account wipe are dead and not reported — the wipe itself surfaces as a
// metadata write). Iteration order is map order: callers must not depend
// on it.
func (v *View) Accesses(
	acct func(addr hashing.Address, metaRead, metaWrite, balRead, balWrite, balDelta bool),
	slot func(addr hashing.Address, key evm.Word, read, written bool),
) {
	for addr, a := range v.accounts {
		metaRead := a.readExists || a.readNonce || a.readCode || a.readLoc || a.readMove
		metaWrite := a.w.wiped || a.w.nonceSet || a.w.codeSet || a.w.locSet || a.w.moveSet
		if metaRead || metaWrite || a.readBal || a.w.balSet || a.w.balTouched {
			acct(addr, metaRead, metaWrite, a.readBal, a.w.balSet, a.w.balTouched)
		}
	}
	for k, s := range v.slots {
		written := s.w.written
		if a, ok := v.accounts[k.addr]; ok && s.w.epoch != a.w.epoch {
			written = false
		}
		if s.read || written {
			slot(k.addr, k.key, s.read, written)
		}
	}
}

// Validate re-reads every recorded parent observation through st — the
// state the transaction would actually execute on in block order — and
// reports whether all of them still hold. When it returns true, replaying
// the speculative execution on st would read exactly the values the lane
// read, so the buffered writes and the receipt are byte-identical to a
// serial re-execution.
func (v *View) Validate(st evm.StateAccess) bool {
	for addr, a := range v.accounts {
		if a.readExists && st.Exists(addr) != a.parentExists {
			return false
		}
		if a.readNonce && st.GetNonce(addr) != a.parent.Nonce {
			return false
		}
		if a.readBal && !st.GetBalance(addr).Eq(a.parent.Balance) {
			return false
		}
		if a.readCode && st.GetCodeHash(addr) != a.parent.CodeHash {
			return false
		}
		if a.readLoc && st.GetLocation(addr) != v.observedLocation(a) {
			return false
		}
		if a.readMove && st.GetMoveNonce(addr) != a.parent.MoveNonce {
			return false
		}
	}
	for k, s := range v.slots {
		if s.read && st.GetStorage(k.addr, k.key) != s.parentVal {
			return false
		}
	}
	return true
}

// ApplyTo replays the final write overlay into st through the ordinary
// setters, in sorted (address, key) order so the flush is deterministic.
// Field-granular replay reproduces exactly the records serial execution
// would have produced — including account-creation side effects (zero-delta
// balance touches) and SELFDESTRUCT wipes. Logs are not replayed: the
// transaction's receipt already carries them.
func (v *View) ApplyTo(st evm.StateAccess) {
	addrs := make([]hashing.Address, 0, len(v.accounts))
	for addr, a := range v.accounts {
		if a.w.written() || a.w.wiped {
			addrs = append(addrs, addr)
		}
	}
	sort.Slice(addrs, func(i, j int) bool {
		return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
	})
	for _, addr := range addrs {
		w := &v.accounts[addr].w
		if w.wiped {
			st.DeleteAccount(addr)
		}
		if w.codeSet {
			st.CreateContract(addr, w.code)
		}
		if w.nonceSet {
			st.SetNonce(addr, w.nonce)
		}
		if w.balSet {
			// Absolute base (wipe/import): displace whatever st holds.
			cur := st.GetBalance(addr)
			st.SubBalance(addr, cur)
			st.AddBalance(addr, w.balBase.Add(w.balAdd).Sub(w.balSub))
		} else if w.balTouched {
			st.AddBalance(addr, w.balAdd)
			st.SubBalance(addr, w.balSub)
		}
		if w.moveSet {
			st.SetMoveNonce(addr, w.moveNonce)
		}
		if w.locSet {
			st.SetLocation(addr, w.loc)
		}
	}
	keys := make([]viewSlotKey, 0, len(v.slots))
	for k, s := range v.slots {
		if !s.w.written {
			continue
		}
		if a, ok := v.accounts[k.addr]; ok && s.w.epoch != a.w.epoch {
			continue // buried by a later wipe
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if c := bytes.Compare(keys[i].addr[:], keys[j].addr[:]); c != 0 {
			return c < 0
		}
		return bytes.Compare(keys[i].key[:], keys[j].key[:]) < 0
	})
	for _, k := range keys {
		st.SetStorage(k.addr, k.key, v.slots[k].w.val)
	}
}
