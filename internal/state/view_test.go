package state

import (
	"math/rand"
	"testing"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/trie"
	"scmove/internal/u256"
)

// seedParent loads a handful of committed accounts into db: an EOA with
// balance and nonce, a contract with code and storage, a moved account, and
// one with a move nonce.
func seedParent(t *testing.T, db *DB) hashing.Hash {
	t.Helper()
	db.AddBalance(addr(1), u256.FromUint64(1_000_000))
	db.SetNonce(addr(1), 7)
	db.CreateContract(addr(2), []byte{0x60, 0x00})
	db.SetStorage(addr(2), word(1), word(42))
	db.SetStorage(addr(2), word(2), word(43))
	db.SetLocation(addr(3), hashing.ChainID(9))
	db.AddBalance(addr(3), u256.FromUint64(5))
	db.SetMoveNonce(addr(4), 3)
	db.DiscardJournal()
	return db.Commit()
}

// TestViewRevertNeverLeaksToParent is the isolation property: no sequence of
// writes and reverts on a view may touch the parent DB, and a fully
// reverted view must apply nothing.
func TestViewRevertNeverLeaksToParent(t *testing.T) {
	db := newTestDB(t)
	root0 := seedParent(t, db)

	v := NewView(db)
	snap := v.Snapshot()
	v.AddBalance(addr(1), u256.FromUint64(99))
	v.SubBalance(addr(1), u256.FromUint64(1))
	v.SetNonce(addr(1), 100)
	v.CreateContract(addr(5), []byte{1, 2, 3})
	v.SetStorage(addr(2), word(1), word(77))
	v.DeleteAccount(addr(2))
	v.ImportAccount(addr(6), Account{Nonce: 1, Balance: u256.FromUint64(10)},
		[]byte{9}, []StorageEntry{{Key: word(1), Value: word(2)}})
	v.AddLog(&evm.Log{Address: addr(1)})
	v.RevertToSnapshot(snap)

	if got := db.Commit(); got != root0 {
		t.Fatalf("parent root changed under a reverted view: %s != %s", got, root0)
	}
	if db.Snapshot() != 0 {
		t.Fatal("view ops grew the parent journal")
	}
	// A fully reverted view must flush nothing.
	v.ApplyTo(db)
	if got := db.Commit(); got != root0 {
		t.Fatalf("reverted view applied writes: %s != %s", got, root0)
	}
	if logs := v.TakeLogs(); len(logs) != 0 {
		t.Fatalf("reverted view kept %d logs", len(logs))
	}
}

// TestViewReadSetSurvivesRevert: reads recorded inside a reverted subcall
// must still be validated — the reverted execution path observed them and
// they influenced control flow.
func TestViewReadSetSurvivesRevert(t *testing.T) {
	db := newTestDB(t)
	seedParent(t, db)

	observe := func(v *View) {
		v.Exists(addr(8)) // absent account
		_ = v.GetBalance(addr(1))
		_ = v.GetNonce(addr(1))
		_ = v.GetCodeHash(addr(2))
		_ = v.GetStorage(addr(2), word(1))
		_ = v.GetLocation(addr(3))
		_ = v.GetMoveNonce(addr(4))
	}

	newObserved := func() *View {
		v := NewView(db)
		snap := v.Snapshot()
		observe(v)
		v.SetStorage(addr(2), word(1), word(99)) // some reverted write too
		v.RevertToSnapshot(snap)
		return v
	}

	if v := newObserved(); !v.Validate(NewView(db)) {
		t.Fatal("validation must pass against an unchanged parent")
	}

	// Each single observed field changing must fail validation, even though
	// every observation happened inside a reverted snapshot.
	conflicts := []func(cv *View){
		func(cv *View) { cv.AddBalance(addr(8), u256.FromUint64(1)) }, // Exists flips
		func(cv *View) { cv.AddBalance(addr(1), u256.FromUint64(1)) },
		func(cv *View) { cv.SetNonce(addr(1), 8) },
		func(cv *View) { cv.CreateContract(addr(2), []byte{0xFE}) },
		func(cv *View) { cv.SetStorage(addr(2), word(1), word(7)) },
		func(cv *View) { cv.SetLocation(addr(3), hashing.ChainID(2)) },
		func(cv *View) { cv.SetMoveNonce(addr(4), 4) },
	}
	for i, mutate := range conflicts {
		cv := NewView(db)
		mutate(cv)
		if newObserved().Validate(cv) {
			t.Fatalf("conflict %d not detected after revert", i)
		}
	}
}

// TestViewImportAccountMatchesDB: a Move2 import through a view and ApplyTo
// must commit to the same root as the same import straight into a DB.
func TestViewImportAccountMatchesDB(t *testing.T) {
	acct := Account{Nonce: 5, Balance: u256.FromUint64(777), MoveNonce: 2}
	code := []byte{0x60, 0x01}
	entries := []StorageEntry{{Key: word(1), Value: word(11)}, {Key: word(3), Value: word(33)}}

	direct := newTestDB(t)
	seedParent(t, direct)
	direct.ImportAccount(addr(9), acct, code, entries)
	wantRoot := direct.Commit()

	viewed := newTestDB(t)
	seedParent(t, viewed)
	v := NewView(viewed)
	v.ImportAccount(addr(9), acct, code, entries)
	v.ApplyTo(viewed)
	if got := viewed.Commit(); got != wantRoot {
		t.Fatalf("import via view diverges: %s != %s", got, wantRoot)
	}
}

// TestViewPropertyDifferentialRandomOps drives a DB directly and a View (over
// an identically seeded parent) through the same random operation stream —
// including nested snapshot/revert pairs, SELFDESTRUCT wipes, re-creation
// after wipes, and Move2 imports — comparing every observable getter after
// each revert, and the committed state roots after the view flushes.
func TestViewPropertyDifferentialRandomOps(t *testing.T) {
	for _, kind := range []trie.Kind{trie.KindMPT, trie.KindIAVL} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			serial, err := NewDB(localChain, kind)
			if err != nil {
				t.Fatal(err)
			}
			parent, err := NewDB(localChain, kind)
			if err != nil {
				t.Fatal(err)
			}
			seedParent(t, serial)
			seedParent(t, parent)
			v := NewView(parent)

			rng := rand.New(rand.NewSource(424242))
			addrOf := func() hashing.Address { return addr(byte(rng.Intn(12))) }
			wordOf := func() evm.Word { return word(byte(rng.Intn(8))) }

			check := func(step int) {
				t.Helper()
				for i := 0; i < 12; i++ {
					a := addr(byte(i))
					if got, want := v.Exists(a), serial.Exists(a); got != want {
						t.Fatalf("step %d: %s exists %v != %v", step, a, got, want)
					}
					if got, want := v.GetBalance(a), serial.GetBalance(a); !got.Eq(want) {
						t.Fatalf("step %d: %s balance %s != %s", step, a, got, want)
					}
					if got, want := v.GetNonce(a), serial.GetNonce(a); got != want {
						t.Fatalf("step %d: %s nonce %d != %d", step, a, got, want)
					}
					if got, want := string(v.GetCode(a)), string(serial.GetCode(a)); got != want {
						t.Fatalf("step %d: %s code %x != %x", step, a, got, want)
					}
					if got, want := v.GetCodeHash(a), serial.GetCodeHash(a); got != want {
						t.Fatalf("step %d: %s code hash %s != %s", step, a, got, want)
					}
					if got, want := v.GetLocation(a), serial.GetLocation(a); got != want {
						t.Fatalf("step %d: %s location %s != %s", step, a, got, want)
					}
					if got, want := v.GetMoveNonce(a), serial.GetMoveNonce(a); got != want {
						t.Fatalf("step %d: %s move nonce %d != %d", step, a, got, want)
					}
					for k := byte(0); k < 8; k++ {
						if got, want := v.GetStorage(a, word(k)), serial.GetStorage(a, word(k)); got != want {
							t.Fatalf("step %d: %s storage[%d] %x != %x", step, a, k, got, want)
						}
					}
				}
			}

			type frame struct{ vs, ds int }
			var stack []frame
			for step := 0; step < 6000; step++ {
				switch rng.Intn(13) {
				case 0:
					if len(stack) < 4 {
						stack = append(stack, frame{vs: v.Snapshot(), ds: serial.Snapshot()})
					}
				case 1:
					if len(stack) > 0 {
						f := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						v.RevertToSnapshot(f.vs)
						serial.RevertToSnapshot(f.ds)
						check(step)
					}
				case 2:
					a, amt := addrOf(), u256.FromUint64(uint64(rng.Intn(1000)))
					v.AddBalance(a, amt)
					serial.AddBalance(a, amt)
				case 3:
					a := addrOf()
					if bal := serial.GetBalance(a); !bal.IsZero() {
						amt := u256.FromUint64(uint64(rng.Intn(int(bal.Uint64()))) + 1)
						v.SubBalance(a, amt)
						serial.SubBalance(a, amt)
					}
				case 4:
					a, n := addrOf(), uint64(rng.Intn(100))
					v.SetNonce(a, n)
					serial.SetNonce(a, n)
				case 5, 6:
					a, k, val := addrOf(), wordOf(), wordOf()
					v.SetStorage(a, k, val)
					serial.SetStorage(a, k, val)
				case 7:
					a, code := addrOf(), []byte{byte(rng.Intn(200) + 1)}
					v.CreateContract(a, code)
					serial.CreateContract(a, code)
				case 8:
					a, loc := addrOf(), hashing.ChainID(rng.Intn(3)+1)
					v.SetLocation(a, loc)
					serial.SetLocation(a, loc)
				case 9:
					a, n := addrOf(), uint64(rng.Intn(10))
					v.SetMoveNonce(a, n)
					serial.SetMoveNonce(a, n)
				case 10:
					l := &evm.Log{Address: addrOf()}
					v.AddLog(l)
					serial.AddLog(l)
				case 11:
					a := addrOf()
					v.DeleteAccount(a)
					serial.DeleteAccount(a)
				case 12:
					a := addrOf()
					acct := Account{
						Nonce:     uint64(rng.Intn(50)),
						Balance:   u256.FromUint64(uint64(rng.Intn(10_000))),
						MoveNonce: uint64(rng.Intn(5)),
					}
					code := []byte{byte(rng.Intn(200) + 1)}
					entries := []StorageEntry{{Key: wordOf(), Value: word(byte(rng.Intn(7) + 1))}}
					v.ImportAccount(a, acct, code, entries)
					serial.ImportAccount(a, acct, code, entries)
				}
			}
			check(6000)
			if got, want := len(v.TakeLogs()), len(serial.TakeLogs()); got != want {
				t.Fatalf("view logs %d != %d", got, want)
			}
			v.ApplyTo(parent)
			if got, want := parent.Commit(), serial.Commit(); got != want {
				t.Fatalf("flushed view root diverges from serial: %s != %s", got, want)
			}
		})
	}
}

// TestViewWipeThenRecreate pins the SELFDESTRUCT-and-recreate corner: the
// wipe must bury earlier buffered storage, re-creation must start from a
// clean record, and the flushed result must match serial execution.
func TestViewWipeThenRecreate(t *testing.T) {
	serial := newTestDB(t)
	parent := newTestDB(t)
	seedParent(t, serial)
	seedParent(t, parent)

	run := func(st evm.StateAccess) {
		st.SetStorage(addr(2), word(5), word(55)) // buffered pre-wipe write
		st.DeleteAccount(addr(2))
		if got := st.GetStorage(addr(2), word(5)); got != (evm.Word{}) {
			t.Fatalf("wipe must bury the pre-wipe write, got %x", got)
		}
		if got := st.GetStorage(addr(2), word(1)); got != (evm.Word{}) {
			t.Fatalf("wipe must shield parent storage, got %x", got)
		}
		if st.Exists(addr(2)) {
			t.Fatal("wiped account must not exist")
		}
		st.CreateContract(addr(2), []byte{0xAA})
		st.SetStorage(addr(2), word(6), word(66))
	}
	v := NewView(parent)
	run(v)
	run(serial)

	v.ApplyTo(parent)
	if got, want := parent.Commit(), serial.Commit(); got != want {
		t.Fatalf("wipe/recreate diverges: %s != %s", got, want)
	}
}

// TestViewAccessesGranularity pins the read/write set Accesses exports for
// the conflict scheduler: reads and writes land in the right conflict
// domain (metadata, balance, slot), balance deltas are distinguished from
// balance replacement, untouched accounts are silent, and slot writes
// buried by a later account wipe are not reported (the wipe itself shows
// up as a metadata write).
func TestViewAccessesGranularity(t *testing.T) {
	db := newTestDB(t)
	seedParent(t, db)

	v := NewView(db)
	_ = v.GetNonce(addr(1))                   // metadata read
	v.AddBalance(addr(1), u256.FromUint64(5)) // commutative delta, no read
	v.SetNonce(addr(1), 8)                    // metadata write
	_ = v.GetBalance(addr(3))                 // balance read
	v.SetStorage(addr(2), word(1), word(9))   // blind slot write
	_ = v.GetStorage(addr(2), word(2))        // slot read

	// Wipe burial: the first write is dead under the DeleteAccount epoch,
	// the second survives because it happens after the wipe.
	v.CreateContract(addr(5), []byte{1})
	v.SetStorage(addr(5), word(1), word(1))
	v.DeleteAccount(addr(5))
	v.SetStorage(addr(5), word(2), word(2))

	type acctFlags struct{ metaRead, metaWrite, balRead, balWrite, balDelta bool }
	type slotFlags struct{ read, written bool }
	accts := map[hashing.Address]acctFlags{}
	slots := map[[2]interface{}]slotFlags{}
	v.Accesses(
		func(a hashing.Address, mr, mw, br, bw, bd bool) {
			accts[a] = acctFlags{mr, mw, br, bw, bd}
		},
		func(a hashing.Address, k evm.Word, r, w bool) {
			slots[[2]interface{}{a, k}] = slotFlags{r, w}
		},
	)

	if got := accts[addr(1)]; !got.metaRead || !got.metaWrite || !got.balDelta || got.balWrite || got.balRead {
		t.Fatalf("addr1 flags %+v", got)
	}
	if got := accts[addr(3)]; !got.balRead || got.metaWrite || got.balWrite || got.balDelta {
		t.Fatalf("addr3 flags %+v", got)
	}
	if got := accts[addr(5)]; !got.metaWrite {
		t.Fatalf("wiped addr5 must report a metadata write: %+v", got)
	}
	if _, ok := accts[addr(4)]; ok {
		t.Fatal("untouched account reported")
	}
	if got := slots[[2]interface{}{addr(2), word(1)}]; got.read || !got.written {
		t.Fatalf("blind write flags %+v", got)
	}
	if got := slots[[2]interface{}{addr(2), word(2)}]; !got.read || got.written {
		t.Fatalf("read-only slot flags %+v", got)
	}
	if got, ok := slots[[2]interface{}{addr(5), word(1)}]; ok && got.written {
		t.Fatalf("wipe-buried slot write reported: %+v", got)
	}
	if got := slots[[2]interface{}{addr(5), word(2)}]; !got.written {
		t.Fatalf("post-wipe slot write lost: %+v", got)
	}
}
