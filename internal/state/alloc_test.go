package state

import (
	"testing"

	"scmove/internal/u256"
)

// TestCommitReleasesWorkingSet pins the Commit contract that the decoded
// per-block working set does not accumulate across blocks: a long-running
// node's RSS would otherwise grow with every address ever touched.
func TestCommitReleasesWorkingSet(t *testing.T) {
	db := newTestDB(t)
	for i := byte(1); i <= 20; i++ {
		db.AddBalance(addr(i), u256.FromUint64(uint64(i)))
		db.SetStorage(addr(i), word(1), word(i))
	}
	if len(db.cache) == 0 {
		t.Fatal("working set empty before commit")
	}
	db.Commit()
	if len(db.cache) != 0 {
		t.Fatalf("working set holds %d entries after commit", len(db.cache))
	}
	if len(db.slotDelta) != 0 {
		t.Fatalf("slot delta holds %d entries after commit", len(db.slotDelta))
	}
	// Reads still see the committed values (now through the flat cache).
	if got := db.GetBalance(addr(5)); got.Cmp(u256.FromUint64(5)) != 0 {
		t.Fatalf("balance after release: %v", got)
	}
	if got := db.GetStorage(addr(5), word(1)); got != word(5) {
		t.Fatalf("storage after release: %x", got)
	}
}

// TestWarmFlatCacheReadsZeroAlloc guards the whole point of the flat cache:
// a warm storage or balance read must not walk a tree and must not allocate.
func TestWarmFlatCacheReadsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under -race")
	}
	db := newTestDB(t)
	a := addr(1)
	db.AddBalance(a, u256.FromUint64(100))
	db.SetStorage(a, word(1), word(42))
	db.Commit()

	// Warm both cache lines: the first post-commit read re-decodes the
	// account into the working set and populates the flat slot line.
	db.GetBalance(a)
	db.GetStorage(a, word(1))

	if avg := testing.AllocsPerRun(200, func() {
		if db.GetStorage(a, word(1)) != word(42) {
			t.Fatal("wrong storage value")
		}
	}); avg != 0 {
		t.Fatalf("warm GetStorage allocates %.1f per call", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if db.GetBalance(a).IsZero() {
			t.Fatal("wrong balance")
		}
	}); avg != 0 {
		t.Fatalf("warm GetBalance allocates %.1f per call", avg)
	}

	hits, _ := db.FlatCacheStats()
	if hits == 0 {
		t.Fatal("flat cache never hit")
	}
}
