package state

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"testing"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/keys"
	"scmove/internal/trees"
	"scmove/internal/trie"
	"scmove/internal/u256"
)

// buildDirtyState creates a DB with many dirty accounts and storage trees,
// deterministic in its inputs.
func buildDirtyState(t *testing.T, kind trie.Kind, accounts, slots int) *DB {
	t.Helper()
	db, err := NewDB(1, kind)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < accounts; a++ {
		var raw [8]byte
		binary.BigEndian.PutUint64(raw[:], uint64(a+1))
		addr := hashing.AddressFromBytes(raw[:])
		db.AddBalance(addr, u256.FromUint64(uint64(1000+a)))
		db.SetNonce(addr, uint64(a))
		for s := 0; s < slots; s++ {
			var key, val evm.Word
			key[31] = byte(s + 1)
			val[0] = byte(a + 1)
			val[31] = byte(s + 1)
			db.SetStorage(addr, key, val)
		}
	}
	return db
}

func TestCommitParallelMatchesSerial(t *testing.T) {
	for _, kind := range []trie.Kind{trie.KindMPT, trie.KindIAVL} {
		t.Run(kind.String(), func(t *testing.T) {
			commit := func(procs int) hashing.Hash {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				db := buildDirtyState(t, kind, 24, 6)
				return db.Commit()
			}
			want := commit(1)
			for _, procs := range []int{2, runtime.NumCPU()} {
				if got := commit(procs); got != want {
					t.Fatalf("GOMAXPROCS=%d root %s, serial %s", procs, got, want)
				}
			}
		})
	}
}

// TestHashParallelMatchesRootHashAndProofs drives both tree kinds through
// interleaved mutations, comparing HashParallel against a serially hashed
// twin — roots and membership proofs must be byte-identical, since proofs
// are built from the same per-node caches the parallel pass fills.
func TestHashParallelMatchesRootHashAndProofs(t *testing.T) {
	for _, kind := range []trie.Kind{trie.KindMPT, trie.KindIAVL} {
		t.Run(kind.String(), func(t *testing.T) {
			parallelT := trees.MustNew(kind, 8)
			serialT := trees.MustNew(kind, 8)
			ph, ok := parallelT.(trie.ParallelHasher)
			if !ok {
				t.Fatalf("%s tree does not implement trie.ParallelHasher", kind)
			}
			pool := keys.SharedPool()
			prev := runtime.GOMAXPROCS(runtime.NumCPU())
			defer runtime.GOMAXPROCS(prev)

			key := func(i int) []byte {
				var k [8]byte
				binary.BigEndian.PutUint64(k[:], uint64(i*2654435761))
				return k[:]
			}
			for round := 0; round < 4; round++ {
				for i := 0; i < 200; i++ {
					k := key(i)
					v := []byte(fmt.Sprintf("r%d-v%d", round, i))
					if err := parallelT.Set(k, v); err != nil {
						t.Fatal(err)
					}
					if err := serialT.Set(k, v); err != nil {
						t.Fatal(err)
					}
				}
				for i := round; i < 200; i += 7 {
					if err := parallelT.Delete(key(i)); err != nil {
						t.Fatal(err)
					}
					if err := serialT.Delete(key(i)); err != nil {
						t.Fatal(err)
					}
				}
				proot := ph.HashParallel(pool)
				sroot := serialT.RootHash()
				if proot != sroot {
					t.Fatalf("round %d: parallel root %s, serial %s", round, proot, sroot)
				}
				if proot != parallelT.RootHash() {
					t.Fatal("HashParallel must equal the tree's own RootHash")
				}
				for i := 1; i < 200; i += 13 {
					k := key(i)
					pp, perr := parallelT.Prove(k)
					sp, serr := serialT.Prove(k)
					if (perr == nil) != (serr == nil) {
						t.Fatalf("round %d key %d: proof errors diverge: %v vs %v", round, i, perr, serr)
					}
					if !bytes.Equal(pp, sp) {
						t.Fatalf("round %d key %d: proofs diverge", round, i)
					}
				}
			}
		})
	}
}
