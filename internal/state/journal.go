package state

import (
	"fmt"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/state/backend"
)

// journal records inverse operations so transaction execution can roll back
// to any snapshot (evm.StateAccess.Snapshot/RevertToSnapshot).
type journal struct {
	entries []journalEntry
}

type journalKind uint8

const (
	jAccount journalKind = iota + 1 // restore a full account record
	jStorage                        // restore one storage slot
	jCode                           // forget a code blob added to the store
	jLog                            // drop the most recent log
)

type journalEntry struct {
	kind journalKind
	addr hashing.Address

	prevAccount *Account // jAccount: nil means the account did not exist
	key         evm.Word // jStorage
	prevValue   evm.Word // jStorage
	prevExisted bool     // jStorage
	codeHash    hashing.Hash
}

func (j *journal) append(e journalEntry) { j.entries = append(j.entries, e) }

func (j *journal) len() int { return len(j.entries) }

func (j *journal) reset() { j.entries = j.entries[:0] }

// revert undoes entries down to length id, newest first.
func (j *journal) revert(db *DB, id int) {
	for i := len(j.entries) - 1; i >= id; i-- {
		e := j.entries[i]
		switch e.kind {
		case jAccount:
			if e.prevAccount == nil {
				db.cache[e.addr] = nil
			} else {
				cp := *e.prevAccount
				db.cache[e.addr] = &cp
			}
		case jStorage:
			t := db.storageTree(e.addr)
			if e.prevExisted {
				if err := t.Set(e.key[:], e.prevValue[:]); err != nil {
					panic(fmt.Sprintf("state: journal revert set: %v", err))
				}
			} else {
				if err := t.Delete(e.key[:]); err != nil {
					panic(fmt.Sprintf("state: journal revert delete: %v", err))
				}
			}
			// The flat cache mirrors the live tree; write the restored
			// value through so a revert cannot leave a stale hit behind.
			if db.flat != nil {
				db.flat.UpdateSlot(backend.SlotKey{Addr: e.addr, Key: e.key}, e.prevValue, e.prevExisted)
			}
		case jCode:
			delete(db.codes, e.codeHash)
		case jLog:
			db.logs = db.logs[:len(db.logs)-1]
		}
	}
	j.entries = j.entries[:id]
}
