package state

import (
	"fmt"

	"scmove/internal/hashing"
	"scmove/internal/state/backend"
	"scmove/internal/trees"
	"scmove/internal/trie"
)

// Historical access: the backend retains reverse diffs for the last K
// committed roots, and these methods serve reads and Merkle proofs as of
// any retained root — the hook Move2 proof generation at a confirmed
// (rather than latest) height builds on. All of them are only valid
// between blocks: mid-block the live trees hold uncommitted writes and the
// memory backend reads straight from them.

// RetainedRoots lists the committed roots historical reads currently
// serve, oldest first.
func (db *DB) RetainedRoots() []hashing.Hash { return db.back.RetainedRoots() }

// OpenAt returns a read-only flat view of the state at a retained
// committed root. The view is valid until the next Commit.
func (db *DB) OpenAt(root hashing.Hash) (backend.Reader, error) {
	return db.back.OpenAt(root)
}

// GetAccountAt returns addr's committed record as of a retained root.
func (db *DB) GetAccountAt(addr hashing.Address, root hashing.Hash) (Account, bool, error) {
	if root == db.lastRoot {
		if enc, ok := db.accountTree.Get(addr[:]); ok {
			acct, err := DecodeAccount(enc)
			if err != nil {
				return Account{}, false, err
			}
			return acct, true, nil
		}
		return Account{}, false, nil
	}
	r, err := db.back.OpenAt(root)
	if err != nil {
		return Account{}, false, err
	}
	enc, ok := r.Account(addr)
	if !ok {
		return Account{}, false, nil
	}
	acct, err := DecodeAccount(enc)
	if err != nil {
		return Account{}, false, err
	}
	return acct, true, nil
}

// ProveAccountAt returns the membership proof of addr in the account tree
// as of a retained root. Proof bytes are bit-identical to what ProveAccount
// returned when that root was current: the trees are canonical, so a tree
// rebuilt from the historical flat view is the tree that existed then.
func (db *DB) ProveAccountAt(addr hashing.Address, root hashing.Hash) ([]byte, error) {
	t, err := db.historicalTree(root)
	if err != nil {
		return nil, err
	}
	return t.Prove(addr[:])
}

// StorageEntriesAt returns addr's full storage, ascending by key, as of a
// retained root — the historical state payload V of a move proof.
func (db *DB) StorageEntriesAt(addr hashing.Address, root hashing.Hash) ([]StorageEntry, error) {
	if root == db.lastRoot {
		return db.StorageEntries(addr), nil
	}
	r, err := db.back.OpenAt(root)
	if err != nil {
		return nil, err
	}
	var out []StorageEntry
	r.IterateStorage(addr, func(key, val backend.Word) bool {
		out = append(out, StorageEntry{Key: key, Value: val})
		return true
	})
	return out, nil
}

// historicalTree returns the account tree as of a retained root: the live
// tree when root is current, else a tree rebuilt from the backend's
// historical flat view. The last rebuild is memoized, so proving many
// accounts at one root pays the O(N) rebuild once.
func (db *DB) historicalTree(root hashing.Hash) (trie.Tree, error) {
	if root == db.lastRoot {
		return db.accountTree, nil
	}
	if db.histTree != nil && db.histRoot == root {
		return db.histTree, nil
	}
	r, err := db.back.OpenAt(root)
	if err != nil {
		return nil, err
	}
	t, err := trees.New(db.kind, hashing.AddressSize)
	if err != nil {
		return nil, err
	}
	r.IterateAccounts(func(addr hashing.Address, enc []byte) bool {
		if err == nil {
			err = t.Set(addr[:], enc)
		}
		return err == nil
	})
	if err != nil {
		return nil, fmt.Errorf("state: historical tree at %s: %w", root, err)
	}
	if got := t.RootHash(); got != root {
		// The reverse diffs failed to reproduce the committed state — a
		// bookkeeping invariant violation, not a caller error.
		return nil, fmt.Errorf("state: historical tree at %s rebuilt to %s", root, got)
	}
	db.histRoot, db.histTree = root, t
	return t, nil
}
