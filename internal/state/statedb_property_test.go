package state

import (
	"math/rand"
	"testing"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/trie"
	"scmove/internal/u256"
)

// modelAccount mirrors the observable state of one account.
type modelAccount struct {
	balance  uint64
	nonce    uint64
	code     string
	location hashing.ChainID
	moveN    uint64
	storage  map[evm.Word]evm.Word
}

type model struct {
	accounts map[hashing.Address]*modelAccount
	logs     int
}

func newModel() *model {
	return &model{accounts: make(map[hashing.Address]*modelAccount)}
}

func (m *model) clone() *model {
	out := newModel()
	out.logs = m.logs
	for a, acct := range m.accounts {
		cp := *acct
		cp.storage = make(map[evm.Word]evm.Word, len(acct.storage))
		for k, v := range acct.storage {
			cp.storage[k] = v
		}
		out.accounts[a] = &cp
	}
	return out
}

func (m *model) get(a hashing.Address) *modelAccount {
	acct, ok := m.accounts[a]
	if !ok {
		acct = &modelAccount{storage: make(map[evm.Word]evm.Word)}
		m.accounts[a] = acct
	}
	return acct
}

// TestStatePropertyRandomOpsWithSnapshots drives the journaled DB and a
// plain in-memory model through the same random operation stream, including
// nested snapshot/revert pairs, and checks observational equivalence after
// every revert and at the end — for both tree kinds.
func TestStatePropertyRandomOpsWithSnapshots(t *testing.T) {
	for _, kind := range []trie.Kind{trie.KindMPT, trie.KindIAVL} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(12345))
			db, err := NewDB(localChain, kind)
			if err != nil {
				t.Fatal(err)
			}
			m := newModel()

			type frame struct {
				snap  int
				model *model
			}
			var stack []frame

			addrOf := func() hashing.Address { return addr(byte(rng.Intn(12))) }
			wordOf := func() evm.Word { return word(byte(rng.Intn(8))) }

			check := func(step int) {
				t.Helper()
				for i := 0; i < 12; i++ {
					a := addr(byte(i))
					want, exists := m.accounts[a]
					if !exists {
						if db.Exists(a) {
							t.Fatalf("step %d: %s exists in db only", step, a)
						}
						continue
					}
					if got := db.GetBalance(a).Uint64(); got != want.balance {
						t.Fatalf("step %d: %s balance %d != %d", step, a, got, want.balance)
					}
					if got := db.GetNonce(a); got != want.nonce {
						t.Fatalf("step %d: %s nonce %d != %d", step, a, got, want.nonce)
					}
					if got := string(db.GetCode(a)); got != want.code {
						t.Fatalf("step %d: %s code %q != %q", step, a, got, want.code)
					}
					wantLoc := want.location
					if wantLoc == 0 {
						wantLoc = localChain
					}
					if got := db.GetLocation(a); got != wantLoc {
						t.Fatalf("step %d: %s location %s != %s", step, a, got, wantLoc)
					}
					if got := db.GetMoveNonce(a); got != want.moveN {
						t.Fatalf("step %d: %s move nonce %d != %d", step, a, got, want.moveN)
					}
					for k := byte(0); k < 8; k++ {
						got := db.GetStorage(a, word(k))
						if want.storage[word(k)] != got {
							t.Fatalf("step %d: %s storage[%d] %x != %x",
								step, a, k, got, want.storage[word(k)])
						}
					}
				}
			}

			for step := 0; step < 4000; step++ {
				switch rng.Intn(12) {
				case 0: // snapshot
					if len(stack) < 4 {
						stack = append(stack, frame{snap: db.Snapshot(), model: m.clone()})
					}
				case 1: // revert
					if len(stack) > 0 {
						f := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						db.RevertToSnapshot(f.snap)
						m = f.model
						check(step)
					}
				case 2:
					a := addrOf()
					amt := uint64(rng.Intn(1000))
					db.AddBalance(a, u256.FromUint64(amt))
					m.get(a).balance += amt
				case 3:
					a := addrOf()
					if bal := m.get(a).balance; bal > 0 {
						amt := uint64(rng.Intn(int(bal))) + 1
						if amt > bal {
							amt = bal
						}
						db.SubBalance(a, u256.FromUint64(amt))
						m.get(a).balance -= amt
					}
				case 4:
					a := addrOf()
					n := uint64(rng.Intn(100))
					db.SetNonce(a, n)
					m.get(a).nonce = n
				case 5, 6:
					a, k, v := addrOf(), wordOf(), wordOf()
					db.SetStorage(a, k, v)
					if v == (evm.Word{}) {
						delete(m.get(a).storage, k)
					} else {
						m.get(a).storage[k] = v
					}
				case 7:
					a := addrOf()
					code := []byte{byte(rng.Intn(200) + 1)}
					db.CreateContract(a, code)
					acct := m.get(a)
					acct.code = string(code)
					acct.location = localChain
				case 8:
					a := addrOf()
					loc := hashing.ChainID(rng.Intn(3) + 1)
					db.SetLocation(a, loc)
					m.get(a).location = loc
				case 9:
					a := addrOf()
					n := uint64(rng.Intn(10))
					db.SetMoveNonce(a, n)
					acct := m.get(a)
					acct.moveN = n
				case 10:
					db.AddLog(&evm.Log{Address: addrOf()})
					m.logs++
				case 11:
					a := addrOf()
					if _, exists := m.accounts[a]; exists {
						db.DeleteAccount(a)
						delete(m.accounts, a)
					}
				}
			}
			check(4000)
			if got := len(db.TakeLogs()); got != m.logs {
				t.Fatalf("logs %d != %d", got, m.logs)
			}
			// Committing after the run must produce the same root as a fresh
			// DB loaded with the surviving contents (canonical commitment).
			db.Commit()
			fresh, err := NewDB(localChain, kind)
			if err != nil {
				t.Fatal(err)
			}
			for a, acct := range m.accounts {
				if acct.balance > 0 {
					fresh.AddBalance(a, u256.FromUint64(acct.balance))
				}
				if acct.nonce > 0 {
					fresh.SetNonce(a, acct.nonce)
				}
				if acct.code != "" {
					fresh.CreateContract(a, []byte(acct.code))
				}
				if acct.location != 0 {
					fresh.SetLocation(a, acct.location)
				}
				if acct.moveN > 0 {
					fresh.SetMoveNonce(a, acct.moveN)
				}
				for k, v := range acct.storage {
					fresh.SetStorage(a, k, v)
				}
			}
			if a, b := db.Commit(), fresh.Commit(); a != b {
				t.Fatalf("history-dependent commit root: %s vs %s", a, b)
			}
		})
	}
}
