package state

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"scmove/internal/evm"
	"scmove/internal/hashing"
	"scmove/internal/state/backend"
	"scmove/internal/trie"
	"scmove/internal/u256"
)

// The conformance suite drives every backend configuration through one
// identical randomized block script and asserts they are indistinguishable:
// same roots after every commit, same account records, same storage, same
// proof bytes, same historical snapshots, and (for the file backend) the
// same state again after a close-and-reopen. Any divergence between the
// in-memory trees, the log-structured file store, and the flat cache is a
// consensus bug, so this is a detsmoke test.

type confConfig struct {
	name string
	opts Options
}

func conformanceConfigs(t *testing.T) []confConfig {
	t.Helper()
	return []confConfig{
		{name: "memory_flat", opts: Options{}},
		{name: "memory_noflat", opts: Options{DisableFlatCache: true}},
		{name: "file_flat", opts: Options{
			Backend: backend.KindFile,
			Dir:     t.TempDir(),
			// A tiny flat cache and tree cap force eviction, LRU reuse,
			// and backend rebuild paths that generous defaults never hit.
			FlatAccounts:     8,
			FlatSlots:        16,
			StorageTreeLimit: 2,
		}},
		{name: "file_noflat", opts: Options{
			Backend:          backend.KindFile,
			Dir:              t.TempDir(),
			DisableFlatCache: true,
			StorageTreeLimit: 2,
		}},
	}
}

// confOp is one scripted state mutation, generated once and applied to
// every database so all configurations see bit-identical traffic.
type confOp func(db *DB)

type confScript struct {
	blocks [][]confOp
	pool   []hashing.Address
	slots  []evm.Word
}

func genConformanceScript(seed int64, blocks, opsPerBlock int) confScript {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]hashing.Address, 24)
	for i := range pool {
		h := hashing.Sum([]byte{byte(i), 0xA5})
		copy(pool[i][:], h[:])
	}
	slots := make([]evm.Word, 8)
	for i := range slots {
		slots[i] = word(byte(i + 1))
	}
	s := confScript{pool: pool, slots: slots}

	var genOp func(depth int) confOp
	genOp = func(depth int) confOp {
		addr := pool[rng.Intn(len(pool))]
		switch k := rng.Intn(12); {
		case k <= 2: // balance traffic
			amt := u256.FromUint64(uint64(rng.Intn(1000) + 1))
			if rng.Intn(2) == 0 {
				return func(db *DB) { db.AddBalance(addr, amt) }
			}
			return func(db *DB) {
				if db.GetBalance(addr).Cmp(amt) >= 0 {
					db.SubBalance(addr, amt)
				}
			}
		case k <= 4: // storage writes, including zero (deletes)
			key := slots[rng.Intn(len(slots))]
			val := word(byte(rng.Intn(5))) // 0 = delete
			return func(db *DB) { db.SetStorage(addr, key, val) }
		case k == 5:
			n := uint64(rng.Intn(100))
			return func(db *DB) { db.SetNonce(addr, n) }
		case k == 6:
			code := []byte{0xFE, byte(rng.Intn(8))}
			return func(db *DB) {
				if !db.Exists(addr) {
					db.CreateContract(addr, code)
				}
			}
		case k == 7:
			return func(db *DB) {
				if db.Exists(addr) {
					db.DeleteAccount(addr)
				}
			}
		case k == 8: // lock to a remote chain, sometimes prune
			loc := hashing.ChainID(rng.Intn(3) + 1)
			prune := rng.Intn(2) == 0
			nonce := uint64(rng.Intn(50) + 1)
			return func(db *DB) {
				if !db.Exists(addr) {
					return
				}
				db.SetLocation(addr, loc)
				db.SetMoveNonce(addr, nonce)
				if prune && loc != db.ChainID() {
					if err := db.PruneStale(addr); err != nil {
						panic(fmt.Sprintf("prune %s: %v", addr, err))
					}
				}
			}
		case k == 9: // Move2-style import
			acct := Account{
				Nonce:     uint64(rng.Intn(20)),
				Balance:   u256.FromUint64(uint64(rng.Intn(5000))),
				MoveNonce: uint64(rng.Intn(9) + 1),
			}
			code := []byte{0xCC, byte(rng.Intn(4))}
			entries := []StorageEntry{
				{Key: slots[rng.Intn(len(slots))], Value: word(byte(rng.Intn(4) + 1))},
				{Key: slots[rng.Intn(len(slots))], Value: word(byte(rng.Intn(4) + 1))},
			}
			return func(db *DB) { db.ImportAccount(addr, acct, code, entries) }
		default: // snapshot, nested ops, revert — exercises journal + flat write-through
			if depth > 1 {
				key := slots[rng.Intn(len(slots))]
				val := word(byte(rng.Intn(5)))
				return func(db *DB) { db.SetStorage(addr, key, val) }
			}
			inner := make([]confOp, rng.Intn(4)+1)
			for i := range inner {
				inner[i] = genOp(depth + 1)
			}
			keep := rng.Intn(3) == 0
			return func(db *DB) {
				snap := db.Snapshot()
				for _, op := range inner {
					op(db)
				}
				if !keep {
					db.RevertToSnapshot(snap)
				}
			}
		}
	}

	for b := 0; b < blocks; b++ {
		ops := make([]confOp, opsPerBlock)
		for i := range ops {
			ops[i] = genOp(0)
		}
		s.blocks = append(s.blocks, ops)
	}
	return s
}

// confSnapshot is what we remember about one committed root to later check
// the historical (OpenAt) read path against what was true at the head.
type confSnapshot struct {
	root     hashing.Hash
	accounts map[hashing.Address]Account
	present  map[hashing.Address]bool
	proofs   map[hashing.Address][]byte
}

func takeConfSnapshot(t *testing.T, db *DB, root hashing.Hash, pool []hashing.Address) confSnapshot {
	t.Helper()
	snap := confSnapshot{
		root:     root,
		accounts: make(map[hashing.Address]Account),
		present:  make(map[hashing.Address]bool),
		proofs:   make(map[hashing.Address][]byte),
	}
	for _, a := range pool {
		acct, ok := db.GetAccount(a)
		snap.present[a] = ok
		if !ok {
			continue
		}
		snap.accounts[a] = acct
		proof, err := db.ProveAccount(a)
		if err != nil {
			t.Fatalf("prove %s at head: %v", a, err)
		}
		snap.proofs[a] = proof
	}
	return snap
}

func TestBackendConformanceDifferential(t *testing.T) {
	for _, kind := range []trie.Kind{trie.KindMPT, trie.KindIAVL} {
		t.Run(kind.String(), func(t *testing.T) {
			testBackendConformance(t, kind, int64(0xC04F)+int64(kind))
		})
	}
}

func testBackendConformance(t *testing.T, kind trie.Kind, seed int64) {
	configs := conformanceConfigs(t)
	dbs := make([]*DB, len(configs))
	for i, cfg := range configs {
		db, err := NewDBWith(localChain, kind, cfg.opts)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		dbs[i] = db
	}

	script := genConformanceScript(seed, 12, 40)
	ref := dbs[0]
	var snaps []confSnapshot

	for b, ops := range script.blocks {
		for _, db := range dbs {
			for _, op := range ops {
				op(db)
			}
		}
		root := ref.Commit()
		for i, db := range dbs[1:] {
			if got := db.Commit(); got != root {
				t.Fatalf("block %d: %s root %s, %s root %s",
					b, configs[0].name, root, configs[i+1].name, got)
			}
		}
		// Every read surface must agree at the new head.
		for _, a := range script.pool {
			want, wantOK := ref.GetAccount(a)
			for i, db := range dbs[1:] {
				got, ok := db.GetAccount(a)
				if ok != wantOK || got != want {
					t.Fatalf("block %d: account %s: %s=(%+v,%v) %s=(%+v,%v)",
						b, a, configs[0].name, want, wantOK, configs[i+1].name, got, ok)
				}
			}
			for _, k := range script.slots {
				wantV := ref.GetStorage(a, k)
				for i, db := range dbs[1:] {
					if got := db.GetStorage(a, k); got != wantV {
						t.Fatalf("block %d: slot %s/%x: %s=%x %s=%x",
							b, a, k, configs[0].name, wantV, configs[i+1].name, got)
					}
				}
			}
			if wantOK {
				proof, err := ref.ProveAccount(a)
				if err != nil {
					t.Fatalf("block %d: prove %s: %v", b, a, err)
				}
				for i, db := range dbs[1:] {
					got, err := db.ProveAccount(a)
					if err != nil {
						t.Fatalf("block %d: %s prove %s: %v", b, configs[i+1].name, a, err)
					}
					if !bytes.Equal(got, proof) {
						t.Fatalf("block %d: proof bytes diverge for %s between %s and %s",
							b, a, configs[0].name, configs[i+1].name)
					}
				}
				wantEntries := ref.StorageEntries(a)
				for i, db := range dbs[1:] {
					gotEntries := db.StorageEntries(a)
					if len(gotEntries) != len(wantEntries) {
						t.Fatalf("block %d: %s storage payload of %s has %d entries, %s has %d",
							b, configs[0].name, a, len(wantEntries), configs[i+1].name, len(gotEntries))
					}
					for j := range wantEntries {
						if gotEntries[j] != wantEntries[j] {
							t.Fatalf("block %d: storage payload of %s diverges at %d", b, a, j)
						}
					}
				}
			}
		}
		snaps = append(snaps, takeConfSnapshot(t, ref, root, script.pool))
	}

	// Historical reads: every retained root must replay to exactly what the
	// head looked like when that root was committed, on every backend.
	retained := make(map[hashing.Hash]bool)
	for _, r := range ref.RetainedRoots() {
		retained[r] = true
	}
	if len(retained) == 0 {
		t.Fatal("no retained roots after 12 commits")
	}
	checked := 0
	for _, snap := range snaps {
		if !retained[snap.root] {
			continue
		}
		checked++
		for di, db := range dbs {
			for _, a := range script.pool {
				acct, ok, err := db.GetAccountAt(a, snap.root)
				if err != nil {
					t.Fatalf("%s: GetAccountAt(%s, %s): %v", configs[di].name, a, snap.root, err)
				}
				if ok != snap.present[a] || (ok && acct != snap.accounts[a]) {
					t.Fatalf("%s: historical account %s at %s: got (%+v,%v), head saw (%+v,%v)",
						configs[di].name, a, snap.root, acct, ok, snap.accounts[a], snap.present[a])
				}
				if !ok {
					continue
				}
				proof, err := db.ProveAccountAt(a, snap.root)
				if err != nil {
					t.Fatalf("%s: ProveAccountAt(%s, %s): %v", configs[di].name, a, snap.root, err)
				}
				if !bytes.Equal(proof, snap.proofs[a]) {
					t.Fatalf("%s: historical proof for %s at %s differs from the proof built at head",
						configs[di].name, a, snap.root)
				}
			}
		}
	}
	if checked < 2 {
		t.Fatalf("only %d retained roots overlapped the recorded snapshots", checked)
	}
	if _, err := ref.OpenAt(hashing.Sum([]byte("never-committed"))); err == nil {
		t.Fatal("OpenAt accepted an unknown root")
	}

	// File backends must come back bit-identical after close + reopen.
	lastRoot := snaps[len(snaps)-1].root
	for i, cfg := range configs {
		if cfg.opts.Backend != backend.KindFile {
			continue
		}
		if err := dbs[i].Close(); err != nil {
			t.Fatalf("%s: close: %v", cfg.name, err)
		}
		re, err := OpenDB(localChain, kind, cfg.opts)
		if err != nil {
			t.Fatalf("%s: reopen: %v", cfg.name, err)
		}
		if got := re.Root(); got != lastRoot {
			t.Fatalf("%s: reopened root %s, committed %s", cfg.name, got, lastRoot)
		}
		final := snaps[len(snaps)-1]
		for _, a := range script.pool {
			acct, ok := re.GetAccount(a)
			if ok != final.present[a] || (ok && acct != final.accounts[a]) {
				t.Fatalf("%s: reopened account %s: got (%+v,%v), want (%+v,%v)",
					cfg.name, a, acct, ok, final.accounts[a], final.present[a])
			}
			if !ok {
				continue
			}
			proof, err := re.ProveAccount(a)
			if err != nil {
				t.Fatalf("%s: reopened prove %s: %v", cfg.name, a, err)
			}
			if !bytes.Equal(proof, final.proofs[a]) {
				t.Fatalf("%s: reopened proof for %s differs", cfg.name, a)
			}
			if !bytes.Equal(re.GetCode(a), dbs[0].GetCode(a)) {
				t.Fatalf("%s: reopened code for %s differs", cfg.name, a)
			}
		}
		if err := re.Close(); err != nil {
			t.Fatalf("%s: close reopened: %v", cfg.name, err)
		}
		dbs[i] = nil
	}
}
