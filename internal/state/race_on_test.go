//go:build race

package state

// raceEnabled reports whether the race detector is active. AllocsPerRun
// assertions are skipped under -race: its instrumentation allocates on
// paths that are allocation-free in a normal build.
const raceEnabled = true
