// Package state implements the journaled world state of one blockchain:
// accounts with the Move protocol's location field Lc and move nonce,
// per-account storage trees, content-addressed code, snapshot/revert
// journaling for transaction execution, and commitment into the chain's
// authenticated state tree.
package state

import (
	"fmt"

	"scmove/internal/codec"
	"scmove/internal/hashing"
	"scmove/internal/u256"
)

// Account is the persistent record of one account or contract.
//
// Location is the paper's Lc field (§III-C): the chain the account currently
// resides on. A contract whose Location differs from the local chain is
// locked — readable, not writable. MoveNonce increments on every Move1 and
// is the replay-protection counter of Fig. 2; the record is kept as a
// tombstone after the contract departs so the high-water mark survives.
type Account struct {
	Nonce       uint64
	Balance     u256.Int
	CodeHash    hashing.Hash
	StorageRoot hashing.Hash
	Location    hashing.ChainID
	MoveNonce   uint64
}

// Encode returns the canonical encoding committed into the account tree and
// carried inside move proofs.
func (a *Account) Encode() []byte {
	w := codec.NewWriter(96)
	w.WriteUvarint(a.Nonce)
	w.WriteWord(a.Balance.Bytes32())
	w.WriteHash(a.CodeHash)
	w.WriteHash(a.StorageRoot)
	w.WriteUvarint(uint64(a.Location))
	w.WriteUvarint(a.MoveNonce)
	return w.Bytes()
}

// DecodeAccount parses an account record encoded with Encode.
func DecodeAccount(b []byte) (Account, error) {
	r := codec.NewReader(b)
	var a Account
	a.Nonce = r.ReadUvarint()
	bal := r.ReadWord()
	a.Balance = u256.FromBytes(bal[:])
	a.CodeHash = r.ReadHash()
	a.StorageRoot = r.ReadHash()
	a.Location = hashing.ChainID(r.ReadUvarint())
	a.MoveNonce = r.ReadUvarint()
	if err := r.Finish(); err != nil {
		return Account{}, fmt.Errorf("decode account: %w", err)
	}
	return a, nil
}

// isEmpty reports whether the record carries no information and can be
// omitted from the state tree.
func (a *Account) isEmpty(localChain hashing.ChainID) bool {
	return a.Nonce == 0 &&
		a.Balance.IsZero() &&
		a.CodeHash.IsZero() &&
		a.StorageRoot.IsZero() &&
		(a.Location == localChain || a.Location == 0) &&
		a.MoveNonce == 0
}
