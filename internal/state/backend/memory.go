package backend

import (
	"scmove/internal/hashing"
	"scmove/internal/trie"
)

// TreeSource exposes the owner's live authenticated trees to the memory
// backend, which serves flat reads straight from them instead of keeping a
// second copy of the data. state.DB implements it.
type TreeSource interface {
	// AccountTree returns the committed account tree (addr -> record).
	AccountTree() trie.Tree
	// StorageTreeAt returns addr's live storage tree if one is resident.
	StorageTreeAt(addr hashing.Address) (trie.Tree, bool)
}

// Memory is the tree-backed backend: the pre-backend in-memory behaviour
// refactored behind the Backend interface. It owns no data of its own
// beyond the retained-root reverse-diff ring; Account and Slot walk the
// owner's trees. Reads reflect committed state while the owner is between
// blocks — the contract under which OpenAt and rebuild paths run.
type Memory struct {
	src  TreeSource
	hist *history
}

var _ Backend = (*Memory)(nil)

// NewMemory returns a memory backend over the owner's trees, retaining
// reverse diffs for the last retain committed roots (0 = DefaultRetainRoots).
func NewMemory(src TreeSource, retain int) *Memory {
	return &Memory{src: src, hist: newHistory(retain)}
}

// Account implements Reader.
func (m *Memory) Account(addr hashing.Address) ([]byte, bool) {
	return m.src.AccountTree().Get(addr[:])
}

// Slot implements Reader.
func (m *Memory) Slot(k SlotKey) (Word, bool) {
	t, ok := m.src.StorageTreeAt(k.Addr)
	if !ok {
		return Word{}, false
	}
	v, ok := t.Get(k.Key[:])
	if !ok {
		return Word{}, false
	}
	var w Word
	copy(w[:], v)
	return w, true
}

// IterateAccounts implements Reader.
func (m *Memory) IterateAccounts(fn func(addr hashing.Address, enc []byte) bool) {
	m.src.AccountTree().Iterate(func(k, v []byte) bool {
		var addr hashing.Address
		copy(addr[:], k)
		return fn(addr, v)
	})
}

// IterateStorage implements Reader.
func (m *Memory) IterateStorage(addr hashing.Address, fn func(key, val Word) bool) {
	t, ok := m.src.StorageTreeAt(addr)
	if !ok {
		return
	}
	t.Iterate(func(k, v []byte) bool {
		var key, val Word
		copy(key[:], k)
		copy(val[:], v)
		return fn(key, val)
	})
}

// Commit implements Backend. The trees already hold the new values (the
// owner flushed them before calling); only the reverse diff is recorded.
func (m *Memory) Commit(root hashing.Hash, batch Batch) error {
	m.hist.record(root, batch)
	return nil
}

// LatestRoot implements Backend.
func (m *Memory) LatestRoot() (hashing.Hash, bool) { return m.hist.latestRoot() }

// RetainedRoots implements Backend.
func (m *Memory) RetainedRoots() []hashing.Hash { return m.hist.retainedRoots() }

// OpenAt implements Backend.
func (m *Memory) OpenAt(root hashing.Hash) (Reader, error) {
	ov, err := m.hist.overlayAt(root)
	if err != nil {
		return nil, err
	}
	return &histReader{base: m, ov: ov}, nil
}

// Kind implements Backend.
func (m *Memory) Kind() Kind { return KindMemory }

// Persistent implements Backend: the trees are the only copy, so they must
// stay resident.
func (m *Memory) Persistent() bool { return false }

// Close implements Backend.
func (m *Memory) Close() error { return nil }
