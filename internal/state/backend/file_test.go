package backend

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"scmove/internal/hashing"
)

func tAddr(b byte) hashing.Address {
	var a hashing.Address
	a[0] = b
	return a
}

func tWord(b byte) Word {
	var w Word
	w[31] = b
	return w
}

func tRoot(b byte) hashing.Hash {
	return hashing.Sum([]byte{b})
}

func accountBatch(pairs ...any) Batch {
	var b Batch
	for i := 0; i < len(pairs); i += 2 {
		addr := pairs[i].(hashing.Address)
		var cur []byte
		if pairs[i+1] != nil {
			cur = pairs[i+1].([]byte)
		}
		b.Accounts = append(b.Accounts, AccountChange{Addr: addr, Cur: cur})
	}
	return b
}

func TestFileCommitReadReopen(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	codeHash := hashing.Sum([]byte("code"))
	batch := accountBatch(tAddr(1), []byte("acct-1"), tAddr(2), []byte("acct-2"))
	batch.Slots = []SlotChange{
		{Key: SlotKey{Addr: tAddr(1), Key: tWord(7)}, Cur: tWord(42), CurExists: true},
	}
	batch.Codes = []CodeBlob{{Hash: codeHash, Code: []byte("code")}}
	if err := f.Commit(tRoot(1), batch); err != nil {
		t.Fatal(err)
	}

	if v, ok := f.Account(tAddr(1)); !ok || string(v) != "acct-1" {
		t.Fatalf("account 1: %q %v", v, ok)
	}
	if v, ok := f.Slot(SlotKey{Addr: tAddr(1), Key: tWord(7)}); !ok || v != tWord(42) {
		t.Fatalf("slot: %x %v", v, ok)
	}
	if c, ok := f.Code(codeHash); !ok || string(c) != "code" {
		t.Fatalf("code: %q %v", c, ok)
	}
	if _, ok := f.Account(tAddr(9)); ok {
		t.Fatal("phantom account")
	}

	// Overwrite, delete, and a second root.
	batch2 := accountBatch(tAddr(1), []byte("acct-1v2"), tAddr(2), nil)
	batch2.Slots = []SlotChange{
		{Key: SlotKey{Addr: tAddr(1), Key: tWord(7)}, Prev: tWord(42), PrevExisted: true},
	}
	if err := f.Commit(tRoot(2), batch2); err != nil {
		t.Fatal(err)
	}
	if v, ok := f.Account(tAddr(1)); !ok || string(v) != "acct-1v2" {
		t.Fatalf("account 1 after overwrite: %q %v", v, ok)
	}
	if _, ok := f.Account(tAddr(2)); ok {
		t.Fatal("deleted account still readable")
	}
	if _, ok := f.Slot(SlotKey{Addr: tAddr(1), Key: tWord(7)}); ok {
		t.Fatal("deleted slot still readable")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if root, ok := re.LatestRoot(); !ok || root != tRoot(2) {
		t.Fatalf("reopened root %s %v, want %s", root, ok, tRoot(2))
	}
	if v, ok := re.Account(tAddr(1)); !ok || string(v) != "acct-1v2" {
		t.Fatalf("reopened account: %q %v", v, ok)
	}
	if _, ok := re.Account(tAddr(2)); ok {
		t.Fatal("reopened deleted account")
	}
	if c, ok := re.Code(codeHash); !ok || string(c) != "code" {
		t.Fatalf("reopened code: %q %v", c, ok)
	}
	var accounts []hashing.Address
	re.IterateAccounts(func(a hashing.Address, enc []byte) bool {
		accounts = append(accounts, a)
		return true
	})
	if len(accounts) != 1 || accounts[0] != tAddr(1) {
		t.Fatalf("reopened account set: %v", accounts)
	}
}

func TestFileTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(tRoot(1), accountBatch(tAddr(1), []byte("durable"))); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: half a record lands on disk.
	path := segmentPath(dir, 0)
	a2 := tAddr(2)
	torn := appendRecord(nil, recAccount, a2[:], []byte("lost"))
	file, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write(torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}
	file.Close()

	re, err := OpenFile(dir, 0)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if v, ok := re.Account(tAddr(1)); !ok || string(v) != "durable" {
		t.Fatalf("durable record lost: %q %v", v, ok)
	}
	if _, ok := re.Account(tAddr(2)); ok {
		t.Fatal("torn record surfaced")
	}
	if root, ok := re.LatestRoot(); !ok || root != tRoot(1) {
		t.Fatalf("root after torn tail: %s %v", root, ok)
	}
	// The store must keep accepting commits after truncating the tail.
	if err := re.Commit(tRoot(2), accountBatch(tAddr(3), []byte("after"))); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if v, ok := re2.Account(tAddr(3)); !ok || string(v) != "after" {
		t.Fatalf("post-recovery commit lost: %q %v", v, ok)
	}
}

func TestFileCorruptionLosesOnlySuffix(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(tRoot(1), accountBatch(tAddr(1), []byte("first"))); err != nil {
		t.Fatal(err)
	}
	mark := f.written
	if err := f.Commit(tRoot(2), accountBatch(tAddr(2), []byte("second"))); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Flip a byte inside the second commit: everything after the corruption
	// is discarded, everything before survives.
	path := segmentPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[mark+3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(dir, 0)
	if err != nil {
		t.Fatalf("reopen with corrupt suffix: %v", err)
	}
	defer re.Close()
	if v, ok := re.Account(tAddr(1)); !ok || string(v) != "first" {
		t.Fatalf("prefix record lost: %q %v", v, ok)
	}
	if _, ok := re.Account(tAddr(2)); ok {
		t.Fatal("corrupt record surfaced")
	}
	if root, ok := re.LatestRoot(); !ok || root != tRoot(1) {
		t.Fatalf("root rolled to %s %v, want first commit", root, ok)
	}
}

func TestFileCompaction(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.CompactMinBytes = 1
	// Overwrite the same key until dead bytes outweigh live ones.
	var root byte
	for i := 0; i < 8; i++ {
		root++
		if err := f.Commit(tRoot(root), accountBatch(tAddr(1), bytes.Repeat([]byte{byte(i)}, 64))); err != nil {
			t.Fatal(err)
		}
	}
	live, dead := f.SegmentBytes()
	if dead != 0 {
		t.Fatalf("compaction never ran: live=%d dead=%d", live, dead)
	}
	if f.LiveKeys() != 1 {
		t.Fatalf("live keys after compaction: %d", f.LiveKeys())
	}
	ids, err := segmentIDs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("old segments not deleted: %v", ids)
	}
	if v, ok := f.Account(tAddr(1)); !ok || !bytes.Equal(v, bytes.Repeat([]byte{7}, 64)) {
		t.Fatalf("value after compaction: %x %v", v, ok)
	}
	// Commits keep working into the compacted segment, and a reopen sees
	// the full live set plus the re-asserted root.
	if err := f.Commit(tRoot(root+1), accountBatch(tAddr(2), []byte("post"))); err != nil {
		t.Fatal(err)
	}
	f.Close()
	re, err := OpenFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if r, ok := re.LatestRoot(); !ok || r != tRoot(root+1) {
		t.Fatalf("root after compacted reopen: %s %v", r, ok)
	}
	if v, ok := re.Account(tAddr(1)); !ok || !bytes.Equal(v, bytes.Repeat([]byte{7}, 64)) {
		t.Fatalf("compacted value lost on reopen: %x %v", v, ok)
	}
	if v, ok := re.Account(tAddr(2)); !ok || string(v) != "post" {
		t.Fatalf("post-compaction commit lost: %q %v", v, ok)
	}
}

func TestFileOpenAtHistory(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := byte(1); i <= 4; i++ {
		b := accountBatch(tAddr(1), []byte{'v', i})
		if i > 1 {
			b.Accounts[0].Prev = []byte{'v', i - 1}
		}
		b.Slots = []SlotChange{{
			Key: SlotKey{Addr: tAddr(1), Key: tWord(1)},
			Prev: tWord(i - 1), Cur: tWord(i),
			PrevExisted: i > 1, CurExists: true,
		}}
		if err := f.Commit(tRoot(i), b); err != nil {
			t.Fatal(err)
		}
	}
	roots := f.RetainedRoots()
	if len(roots) != 2 {
		t.Fatalf("retained %d roots, want 2", len(roots))
	}
	r, err := f.OpenAt(tRoot(3))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Account(tAddr(1)); !ok || string(v) != "v\x03" {
		t.Fatalf("historical account: %q %v", v, ok)
	}
	if v, ok := r.Slot(SlotKey{Addr: tAddr(1), Key: tWord(1)}); !ok || v != tWord(3) {
		t.Fatalf("historical slot: %x %v", v, ok)
	}
	if _, err := f.OpenAt(tRoot(1)); !errors.Is(err, ErrRootNotRetained) {
		t.Fatalf("expired root error: %v", err)
	}
	if _, err := f.OpenAt(tRoot(99)); !errors.Is(err, ErrRootNotRetained) {
		t.Fatalf("unknown root error: %v", err)
	}
}
