package backend

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"scmove/internal/hashing"
)

// Segment record format (little-endian, crc-terminated):
//
//	kind    1 byte
//	key     20 bytes (account records) | 52 bytes (slot records) | 32 bytes (commit marker root)
//	value   uvarint length + bytes (recAccount and recSlot only)
//	crc32   4 bytes, IEEE, over everything above
//
// The decoder is a hostile-input boundary: segment files survive crashes
// and may be truncated or corrupted, so every length is validated against
// the remaining input before any allocation (the PR-6 codec rule) and every
// record carries a checksum. A decode failure never panics.

// Record kinds.
const (
	recAccount    = 0x01 // account record upsert
	recAccountDel = 0x02 // account tombstone
	recSlot       = 0x03 // storage slot upsert (value is exactly wordSize bytes)
	recSlotDel    = 0x04 // storage slot tombstone
	recCommit     = 0x05 // commit marker carrying the new state root
	recCode       = 0x06 // content-addressed code blob (key is its hash)
)

const (
	wordSize = 32
	addrSize = hashing.AddressSize
	slotSize = addrSize + wordSize
	crcSize  = 4

	// maxRecordValue bounds one record's value length. Account records are
	// ~100 bytes and slots exactly 32; the cap only exists so a corrupted
	// length prefix cannot demand an absurd allocation.
	maxRecordValue = 1 << 16
)

// Segment decode errors.
var (
	// ErrShortRecord reports a record extending past the end of the input
	// (a torn tail write, or a corrupted length).
	ErrShortRecord = errors.New("backend: truncated segment record")
	// ErrBadRecord reports a structurally invalid record.
	ErrBadRecord = errors.New("backend: invalid segment record")
	// ErrBadChecksum reports a record whose payload does not match its crc.
	ErrBadChecksum = errors.New("backend: segment record checksum mismatch")
)

var crcTable = crc32.IEEETable

// record is one decoded segment record. Key and Value alias the input.
type record struct {
	Kind  byte
	Key   []byte // addr, addr+slot, or root depending on Kind
	Value []byte // recAccount / recSlot only
}

// appendRecord appends one encoded record (including its checksum) to dst.
func appendRecord(dst []byte, kind byte, key, value []byte) []byte {
	start := len(dst)
	dst = append(dst, kind)
	dst = append(dst, key...)
	if kind == recAccount || kind == recSlot || kind == recCode {
		dst = binary.AppendUvarint(dst, uint64(len(value)))
		dst = append(dst, value...)
	}
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// decodeRecord decodes the first record of b, returning it and the number
// of input bytes it consumed. The returned slices alias b.
func decodeRecord(b []byte) (record, int, error) {
	if len(b) == 0 {
		return record{}, 0, ErrShortRecord
	}
	kind := b[0]
	n := 1
	var keyLen int
	switch kind {
	case recAccount, recAccountDel:
		keyLen = addrSize
	case recSlot, recSlotDel:
		keyLen = slotSize
	case recCommit, recCode:
		keyLen = hashing.HashSize
	default:
		return record{}, 0, fmt.Errorf("%w: unknown kind 0x%02x", ErrBadRecord, kind)
	}
	if len(b) < n+keyLen {
		return record{}, 0, ErrShortRecord
	}
	rec := record{Kind: kind, Key: b[n : n+keyLen]}
	n += keyLen
	if kind == recAccount || kind == recSlot || kind == recCode {
		vlen, vn := binary.Uvarint(b[n:])
		if vn <= 0 {
			return record{}, 0, ErrShortRecord
		}
		n += vn
		if vlen > maxRecordValue {
			return record{}, 0, fmt.Errorf("%w: value length %d exceeds cap", ErrBadRecord, vlen)
		}
		if kind == recSlot && vlen != wordSize {
			return record{}, 0, fmt.Errorf("%w: slot value length %d", ErrBadRecord, vlen)
		}
		if kind == recAccount && vlen == 0 {
			return record{}, 0, fmt.Errorf("%w: empty account record", ErrBadRecord)
		}
		if uint64(len(b)-n) < vlen {
			return record{}, 0, ErrShortRecord
		}
		rec.Value = b[n : n+int(vlen)]
		n += int(vlen)
	}
	if len(b) < n+crcSize {
		return record{}, 0, ErrShortRecord
	}
	want := binary.LittleEndian.Uint32(b[n : n+crcSize])
	if crc32.Checksum(b[:n], crcTable) != want {
		return record{}, 0, ErrBadChecksum
	}
	return rec, n + crcSize, nil
}

// valueOffset returns where a record's value bytes start relative to the
// record start (so the index can point straight at them).
func valueOffset(rec record) int {
	// kind byte + key + uvarint(len(value))
	return 1 + len(rec.Key) + uvarintLen(uint64(len(rec.Value)))
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
