// Package backend abstracts where one chain's flat state — encoded account
// records and raw storage slots — lives. The authenticated mpt/iavl trees
// remain the commitment structure (roots and Merkle proofs are computed
// from them and are bit-identical across backends); a Backend is the
// authoritative, restartable copy of the same data underneath them:
//
//   - Memory wraps the live in-memory trees themselves (the pre-backend
//     behaviour, zero duplication).
//   - File is a stdlib-only log-structured store (append-only segment
//     files, in-memory index, periodic compaction) for bounded-RSS
//     operation and crash-restart recovery.
//
// Both retain reverse diffs for the last K committed roots, so a read-only
// view of the flat state at any recent root can be opened (OpenAt) — the
// hook historical Move2 proof generation builds on.
package backend

import (
	"errors"

	"scmove/internal/hashing"
)

// Kind selects a backend implementation.
type Kind uint8

// Supported backend kinds.
const (
	// KindMemory serves flat reads from the live in-memory trees.
	KindMemory Kind = iota
	// KindFile serves flat reads from a log-structured segment store.
	KindFile
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindMemory:
		return "memory"
	case KindFile:
		return "file"
	default:
		return "unknown"
	}
}

// Word is one raw 32-byte storage value.
type Word = [32]byte

// SlotKey identifies one storage slot of one account.
type SlotKey struct {
	Addr hashing.Address
	Key  Word
}

// AccountChange is one account's transition in a commit batch. Nil encodings
// mean the record is absent on that side.
type AccountChange struct {
	Addr hashing.Address
	Prev []byte
	Cur  []byte
}

// SlotChange is one storage slot's transition in a commit batch.
type SlotChange struct {
	Key                    SlotKey
	Prev, Cur              Word
	PrevExisted, CurExists bool
}

// CodeBlob is one content-addressed code blob first referenced in a commit
// batch. Code is immutable and append-only, so blobs carry no reverse diff.
type CodeBlob struct {
	Hash hashing.Hash
	Code []byte
}

// Batch is the flat delta of one committed block: every account whose
// record changed and every storage slot whose committed value changed,
// each with its previous value (the reverse diff OpenAt is built from),
// plus any new code blobs. Accounts and Slots are sorted by address /
// (address, key).
type Batch struct {
	Accounts []AccountChange
	Slots    []SlotChange
	Codes    []CodeBlob
}

// Reader is a read-only view of flat state. Implementations are safe for
// concurrent readers while no Commit is running.
type Reader interface {
	// Account returns the encoded account record of addr.
	Account(addr hashing.Address) ([]byte, bool)
	// Slot returns the committed value of one storage slot.
	Slot(k SlotKey) (Word, bool)
	// IterateAccounts visits (addr, encoded record) in ascending address
	// order until fn returns false.
	IterateAccounts(fn func(addr hashing.Address, enc []byte) bool)
	// IterateStorage visits addr's slots in ascending key order until fn
	// returns false.
	IterateStorage(addr hashing.Address, fn func(key, val Word) bool)
}

// Backend is the authoritative flat store behind one chain's state DB.
// Implementations are not safe for concurrent mutation; the owning DB
// serializes Commit against reads, matching its own single-writer contract.
type Backend interface {
	Reader

	// Commit applies one committed block's flat delta under its new state
	// root, retaining the reverse diff for OpenAt.
	Commit(root hashing.Hash, batch Batch) error
	// LatestRoot returns the most recently committed root.
	LatestRoot() (hashing.Hash, bool)
	// RetainedRoots lists the committed roots OpenAt currently serves,
	// oldest first (the newest entry is the latest committed root).
	RetainedRoots() []hashing.Hash
	// OpenAt returns a read-only flat view as of a retained committed
	// root. The view is valid until the next Commit.
	OpenAt(root hashing.Hash) (Reader, error)
	// Kind reports the backend implementation.
	Kind() Kind
	// Persistent reports whether the backend holds its own copy of the
	// data (true for the file store), i.e. whether the live trees above it
	// may be evicted and rebuilt from it.
	Persistent() bool
	// Close releases resources. The backend must not be used afterwards.
	Close() error
}

// CodeStore is implemented by backends that persist code blobs (the file
// store); a reopen reads the code table back through it. The memory backend
// does not implement it — the owner's code map is the only copy there.
type CodeStore interface {
	// Code returns the blob with the given content hash.
	Code(h hashing.Hash) ([]byte, bool)
	// IterateCodes visits every stored blob in ascending hash order.
	IterateCodes(fn func(h hashing.Hash, code []byte) bool)
}

// ErrRootNotRetained reports an OpenAt root outside the retained window.
var ErrRootNotRetained = errors.New("backend: root not retained")

// DefaultRetainRoots is the number of committed roots retained for OpenAt
// when the owner does not configure one. It comfortably covers the paper's
// confirmation depths (p = 2 BFT, p = 6 PoW) plus proof-building slack.
const DefaultRetainRoots = 8
