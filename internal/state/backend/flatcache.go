package backend

import "scmove/internal/hashing"

// FlatCache is the flat-state read accelerator: a bounded LRU of decoded
// account records and raw storage slots, so hot reads skip the trie walk
// (and its hashing-adjacent node chasing) entirely. It is an exact mirror,
// not a heuristic one — the owning DB write-throughs every mutation that
// could make an entry stale:
//
//   - account entries mirror the *committed* account tree: populated on
//     tree loads, rewritten from the commit dirty-set (the precise
//     invalidation the statedb already tracks);
//   - slot entries mirror the *live* storage trees: write-through on
//     SetStorage and on journal revert, with per-address wipe epochs
//     covering whole-storage deletion (SELFDESTRUCT, stale-state pruning).
//
// Warm hits are zero-alloc: entries are recycled through an embedded free
// list, and lookups only splice intrusive list links. Not safe for
// concurrent use; the speculative read paths of the parallel executor
// bypass the cache for exactly that reason.
// The account value type A is the owner's decoded record (state.Account),
// kept generic so this package stays importable from the state package.
type FlatCache[A any] struct {
	accounts *lru[hashing.Address, accVal[A]]
	slots    *lru[SlotKey, slotVal]
	epochs   map[hashing.Address]uint32 // storage wipe epoch per address
	hits     uint64
	misses   uint64
}

// accVal is one cached account read result. exists=false caches a
// confirmed miss (reads of absent accounts are common and cost a full tree
// walk each time otherwise).
type accVal[A any] struct {
	acct   A
	exists bool
}

type slotVal struct {
	val    Word
	exists bool
	epoch  uint32
}

// Default flat-cache capacities: enough for the hot set of the heaviest
// shipped workloads while staying a bounded O(1)-per-chain cost. Sizing is
// deliberately modest — a cache line costs ~165 bytes with map overhead,
// and workloads with one-shot reads (replay-style scans) only ever churn
// the LRU tail, so extra capacity would buy hit rate for no one.
const (
	DefaultFlatAccounts = 2048
	DefaultFlatSlots    = 4096
)

// NewFlatCache returns a cache holding up to maxAccounts account records
// and maxSlots storage slots (0 selects the defaults).
func NewFlatCache[A any](maxAccounts, maxSlots int) *FlatCache[A] {
	if maxAccounts <= 0 {
		maxAccounts = DefaultFlatAccounts
	}
	if maxSlots <= 0 {
		maxSlots = DefaultFlatSlots
	}
	return &FlatCache[A]{
		accounts: newLRU[hashing.Address, accVal[A]](maxAccounts),
		slots:    newLRU[SlotKey, slotVal](maxSlots),
		epochs:   make(map[hashing.Address]uint32),
	}
}

// Account returns the cached committed record of addr. The middle result
// reports whether the account exists; the last whether the cache knew.
func (c *FlatCache[A]) Account(addr hashing.Address) (A, bool, bool) {
	rec, ok := c.accounts.get(addr)
	if !ok {
		c.misses++
		var zero A
		return zero, false, false
	}
	c.hits++
	return rec.acct, rec.exists, true
}

// PutAccount caches the committed record of addr.
func (c *FlatCache[A]) PutAccount(addr hashing.Address, acct A, exists bool) {
	c.accounts.put(addr, accVal[A]{acct: acct, exists: exists})
}

// DropAccount forgets addr's record (used when a commit deletes it — a
// negative PutAccount would also be correct, but tombstones of dead
// accounts are not worth cache slots).
func (c *FlatCache[A]) DropAccount(addr hashing.Address) {
	c.accounts.drop(addr)
}

// Slot returns the cached live value of one storage slot. The middle
// result reports whether the slot is set; the last whether the cache knew.
func (c *FlatCache[A]) Slot(k SlotKey) (Word, bool, bool) {
	v, ok := c.slots.get(k)
	if !ok || v.epoch != c.epochs[k.Addr] {
		c.misses++
		return Word{}, false, false
	}
	c.hits++
	return v.val, v.exists, true
}

// PutSlot caches the live value of one storage slot (exists=false caches a
// confirmed empty slot).
func (c *FlatCache[A]) PutSlot(k SlotKey, val Word, exists bool) {
	c.slots.put(k, slotVal{val: val, exists: exists, epoch: c.epochs[k.Addr]})
}

// UpdateSlot refreshes k only if it is already cached. Write paths use this
// instead of PutSlot so write-only slots never earn a cache line (a slot
// enters the cache when a read proves it hot); a missed update just leaves
// the cache not knowing the slot, which the next read repairs.
func (c *FlatCache[A]) UpdateSlot(k SlotKey, val Word, exists bool) {
	c.slots.update(k, slotVal{val: val, exists: exists, epoch: c.epochs[k.Addr]})
}

// WipeStorage invalidates every cached slot of addr in O(1) by bumping the
// address's epoch; stale entries age out of the LRU naturally.
func (c *FlatCache[A]) WipeStorage(addr hashing.Address) {
	c.epochs[addr]++
}

// Stats returns the hit/miss counts since creation.
func (c *FlatCache[A]) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Len returns the resident entry counts.
func (c *FlatCache[A]) Len() (accounts, slots int) {
	return c.accounts.len(), c.slots.len()
}

// lru is a bounded map + intrusive doubly-linked recency list. Entries are
// pre-linked through a free list so steady-state churn allocates nothing
// beyond the map's own bucket reuse.
type lru[K comparable, V any] struct {
	max     int
	entries map[K]*lruEntry[K, V]
	head    *lruEntry[K, V] // most recent
	tail    *lruEntry[K, V] // least recent
	free    *lruEntry[K, V]
	chunk   []lruEntry[K, V] // bulk-allocated fresh entries, handed out one by one
}

type lruEntry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruEntry[K, V]
}

func newLRU[K comparable, V any](max int) *lru[K, V] {
	// No capacity hint: hinting max would zero whole bucket arrays up
	// front, taxing every DB construction (and every short-lived chain)
	// for a cache that may never fill. Growth amortizes on caches that do.
	return &lru[K, V]{max: max, entries: make(map[K]*lruEntry[K, V])}
}

func (l *lru[K, V]) len() int { return len(l.entries) }

func (l *lru[K, V]) get(k K) (V, bool) {
	e, ok := l.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	l.touch(e)
	return e.val, true
}

// update rewrites k in place when present and reports whether it was.
func (l *lru[K, V]) update(k K, v V) bool {
	e, ok := l.entries[k]
	if !ok {
		return false
	}
	e.val = v
	l.touch(e)
	return true
}

func (l *lru[K, V]) put(k K, v V) {
	if e, ok := l.entries[k]; ok {
		e.val = v
		l.touch(e)
		return
	}
	var e *lruEntry[K, V]
	switch {
	case len(l.entries) >= l.max:
		e = l.tail
		l.unlink(e)
		delete(l.entries, e.key)
	case l.free != nil:
		e = l.free
		l.free = e.next
		e.next = nil
	default:
		// Fresh entries come from bulk chunks: a cold cache warming up
		// costs one allocation per chunk, not one per key.
		if len(l.chunk) == 0 {
			n := l.max - len(l.entries)
			if n > 64 {
				n = 64
			}
			l.chunk = make([]lruEntry[K, V], n)
		}
		e = &l.chunk[0]
		l.chunk = l.chunk[1:]
	}
	e.key, e.val = k, v
	l.entries[k] = e
	l.pushFront(e)
}

func (l *lru[K, V]) drop(k K) {
	e, ok := l.entries[k]
	if !ok {
		return
	}
	l.unlink(e)
	delete(l.entries, k)
	var zeroK K
	var zeroV V
	e.key, e.val = zeroK, zeroV
	e.next = l.free
	e.prev = nil
	l.free = e
}

func (l *lru[K, V]) touch(e *lruEntry[K, V]) {
	if l.head == e {
		return
	}
	l.unlink(e)
	l.pushFront(e)
}

func (l *lru[K, V]) pushFront(e *lruEntry[K, V]) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *lru[K, V]) unlink(e *lruEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
