package backend

import (
	"bytes"
	"testing"

	"scmove/internal/hashing"
)

// FuzzSegmentDecode drives the segment-record decoder with hostile input:
// truncated records, corrupted length prefixes, bad checksums, unknown
// kinds. The decoder is the crash-recovery boundary — whatever a torn or
// bit-flipped segment file contains, it must reject cleanly, never panic,
// never over-read, and anything it does accept must re-encode to an
// equivalent record.
func FuzzSegmentDecode(f *testing.F) {
	addr := tAddr(7)
	var slotKey [slotSize]byte
	copy(slotKey[:addrSize], addr[:])
	slotKey[addrSize+31] = 3
	root := hashing.Sum([]byte("root"))

	acctRec := appendRecord(nil, recAccount, addr[:], []byte("account-payload"))
	slotVal := tWord(9)
	slotRec := appendRecord(nil, recSlot, slotKey[:], slotVal[:])
	codeRec := appendRecord(nil, recCode, root[:], []byte{0xFE, 0x01})

	f.Add(acctRec)
	f.Add(slotRec)
	f.Add(codeRec)
	f.Add(appendRecord(nil, recAccountDel, addr[:], nil))
	f.Add(appendRecord(nil, recSlotDel, slotKey[:], nil))
	f.Add(appendRecord(nil, recCommit, root[:], nil))
	f.Add(appendRecord(acctRec, recSlot, slotKey[:], slotVal[:])) // two records back to back
	f.Add(acctRec[:len(acctRec)-3])                               // torn tail
	f.Add(acctRec[:1+addrSize])                                   // cut at the length prefix
	corrupt := bytes.Clone(slotRec)
	corrupt[len(corrupt)-1] ^= 0xFF // bad checksum
	f.Add(corrupt)
	f.Add([]byte{0x7F})                                     // unknown kind
	f.Add([]byte{recAccount, 0x01, 0xFF, 0xFF, 0xFF, 0x0F}) // absurd length claim
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Walk the input like segment replay does: decode until error.
		off := 0
		for off < len(data) {
			rec, n, err := decodeRecord(data[off:])
			if err != nil {
				break
			}
			if n <= 0 || off+n > len(data) {
				t.Fatalf("decode consumed %d of %d remaining bytes", n, len(data)-off)
			}
			switch rec.Kind {
			case recAccount, recAccountDel:
				if len(rec.Key) != addrSize {
					t.Fatalf("account key length %d", len(rec.Key))
				}
			case recSlot, recSlotDel:
				if len(rec.Key) != slotSize {
					t.Fatalf("slot key length %d", len(rec.Key))
				}
			case recCommit, recCode:
				if len(rec.Key) != hashing.HashSize {
					t.Fatalf("hash key length %d", len(rec.Key))
				}
			default:
				t.Fatalf("decoder accepted unknown kind 0x%02x", rec.Kind)
			}
			if rec.Kind == recSlot && len(rec.Value) != wordSize {
				t.Fatalf("slot value length %d", len(rec.Value))
			}
			if len(rec.Value) > maxRecordValue {
				t.Fatalf("value length %d exceeds cap", len(rec.Value))
			}
			// An accepted record must survive a re-encode/re-decode round
			// trip bit for bit in its semantic fields. (Byte equality with
			// the input is not required: Uvarint tolerates non-minimal
			// length prefixes.)
			re := appendRecord(nil, rec.Kind, rec.Key, rec.Value)
			rec2, n2, err := decodeRecord(re)
			if err != nil {
				t.Fatalf("re-decode of accepted record failed: %v", err)
			}
			if n2 != len(re) || rec2.Kind != rec.Kind ||
				!bytes.Equal(rec2.Key, rec.Key) || !bytes.Equal(rec2.Value, rec.Value) {
				t.Fatalf("round trip mismatch: %+v vs %+v", rec, rec2)
			}
			off += n
		}
	})
}
